package eva

import "testing"

func TestOrderByEndToEnd(t *testing.T) {
	sys := openSystem(t, ModeEVA)
	res, err := sys.Exec(`SELECT id, area FROM video CROSS APPLY FasterRCNNResnet50(frame)
		WHERE id < 400 AND label = 'car' ORDER BY area DESC, id ASC LIMIT 5`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows.Len() == 0 {
		t.Skip("no cars in range")
	}
	for r := 1; r < res.Rows.Len(); r++ {
		if res.Rows.At(r-1, 1).Float() < res.Rows.At(r, 1).Float() {
			t.Fatalf("row %d: areas not descending", r)
		}
	}
	// ORDER BY after GROUP BY orders the aggregate output.
	res, err = sys.Exec(`SELECT id, COUNT(*) AS n FROM video CROSS APPLY FasterRCNNResnet50(frame)
		WHERE id < 400 AND label = 'car' GROUP BY id ORDER BY n DESC LIMIT 3`)
	if err != nil {
		t.Fatal(err)
	}
	for r := 1; r < res.Rows.Len(); r++ {
		if res.Rows.At(r-1, 1).Int() < res.Rows.At(r, 1).Int() {
			t.Fatalf("group counts not descending at row %d", r)
		}
	}
	// Unknown ORDER BY column errors at plan time.
	if _, err := sys.Exec("SELECT id FROM video WHERE id < 5 ORDER BY ghost"); err == nil {
		t.Error("unknown ORDER BY column should error")
	}
}
