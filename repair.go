package eva

import (
	"fmt"
	"math"
	"sort"

	"eva/internal/faults"
	"eva/internal/optimizer"
	"eva/internal/parser"
	"eva/internal/storage"
	"eva/internal/symbolic"
	"eva/internal/udf"
)

// Self-healing view storage, stages 2 and 3 (DESIGN.md §15): storage
// quarantines corrupt log ranges and keeps serving the salvaged rows
// (stage 1, internal/storage); this file turns a quarantine into a
// *symbolic repair* — the survived keys shrink the UDF's aggregated
// predicate, so the optimizer's DIFF residual re-plans exactly the
// lost tuples — and drives the background scrubber that finds silent
// corruption before a query does.

// Re-exported storage types for inspecting self-healing state.
type (
	// Quarantine records what corruption salvage lost and kept for one
	// view; see System.ViewQuarantine.
	Quarantine = storage.Quarantine
	// ScrubFinding is one view's result from a scrub pass.
	ScrubFinding = storage.ScrubResult
	// ScrubberStats counts background scrub passes and degradations.
	ScrubberStats = storage.ScrubStats
)

// ScrubReport is the outcome of one full scrub pass over every view.
type ScrubReport struct {
	// Views is the number of views verified.
	Views int
	// Quarantined is how many views hold a quarantine after the pass.
	Quarantined int
	// Findings holds the per-view results that need attention: fresh
	// corruption, standing quarantines, or verification errors.
	Findings []ScrubFinding
}

// RepairRecord is the outcome of repairing one quarantined view.
type RepairRecord struct {
	// View is the view name.
	View string
	// Ranges is how many lost id ranges were recomputed.
	Ranges int
	// RowsBefore/RowsAfter are the view's row counts around the repair.
	RowsBefore, RowsAfter int
	// Deferred is true when the view's keys are not id-granular (e.g. a
	// scalar UDF keyed by bounding box): the aggregated predicate was
	// retracted, so subsequent queries recompute and re-store lazily,
	// but no standalone repair query can be synthesized.
	Deferred bool
	// Compacted is true when the log was rewritten into a fresh
	// generation (quarantine cleared).
	Compacted bool
	// CompactBytesBefore/After are the log footprints around that
	// rewrite — before includes quarantined dead ranges, after is the
	// fresh generation (live records only).
	CompactBytesBefore, CompactBytesAfter int64
	// Err is the failure that left the repair pending, if any; the task
	// stays queued and the next Repair retries it.
	Err string
}

// RepairReport is the outcome of one System.Repair call.
type RepairReport struct {
	Records []RepairRecord
}

// repairTask is one pending symbolic repair, registered when a scrub
// pass (or a reopen) quarantines a view.
type repairTask struct {
	sig udf.Signature
	// lost is the DIFF residual: the part of the aggregated predicate
	// the view can no longer back with verified rows.
	lost symbolic.DNF
	// idOnly marks views keyed exactly by frame id, for which lost can
	// be enumerated as id ranges and repaired by synthesized queries.
	idOnly bool
}

// Scrub runs one full verification pass over every materialized view:
// each log is re-read from disk and every record re-hashed — including
// inside the clean sidecar's trusted prefix, whose open-time fast path
// is deliberately blind to bitrot. Corrupt records are quarantined,
// the affected rows dropped from serving, and a symbolic repair task
// registered so Repair (or simply the next query) recomputes exactly
// what was lost. The pass quiesces statement execution: executors hold
// per-batch view snapshots, so state under a running query never
// changes out from under it.
func (s *System) Scrub() (ScrubReport, error) {
	s.qmu.Lock()
	defer s.qmu.Unlock()
	if s.closed {
		return ScrubReport{}, ErrClosed
	}
	return s.scrubPassLocked(), nil
}

// scrubPassLocked verifies every view and registers repair tasks for
// new quarantines. Callers hold qmu for writing.
func (s *System) scrubPassLocked() ScrubReport {
	results := s.store.VerifyViews()
	rep := ScrubReport{Views: len(results)}
	for _, r := range results {
		if r.Quar != nil {
			rep.Quarantined++
		}
		if r.Err != "" || !r.Clean {
			rep.Findings = append(rep.Findings, r)
		}
		if r.FoundCorruption {
			s.quarantineDetected(r.Name)
		}
	}
	return rep
}

// quarantineDetected shrinks the view's aggregated predicate to what
// the salvaged rows still prove and queues the DIFF residual for
// repair. Views whose signature has no predicate state yet (a fresh
// System reopening corrupt files) need nothing: their aggregated
// predicate is already FALSE, so normal queries recompute and
// re-append lazily — appends are idempotent per key.
func (s *System) quarantineDetected(view string) {
	entry, ok := s.mgr().EntryByView(view)
	if !ok || entry.Agg.IsFalse() {
		return
	}
	v := s.store.View(view)
	if v == nil {
		return
	}
	kc := entry.Sig.KeyColumns()
	idOnly := len(kc) == 1 && kc[0] == "id"
	// For id-keyed views the survived keys translate exactly into an
	// id-interval predicate. Other key shapes (scalar UDFs keyed by
	// bounding box) get the conservative claim — FALSE — because a
	// surviving id may still have lost sibling keys in another record;
	// retracting everything keeps the symbolic layer truthful and lets
	// per-key probing reuse whatever actually survived.
	survived := symbolic.False()
	if idOnly {
		survived = survivedIDDNF(v)
	}
	lost := symbolic.Diff(survived, entry.Agg)
	s.mgr().Constrain(entry.Sig, survived)
	if lost.IsFalse() {
		return
	}
	s.repairMu.Lock()
	if s.repairs == nil {
		s.repairs = map[string]repairTask{}
	}
	s.repairs[view] = repairTask{sig: entry.Sig, lost: lost, idOnly: idOnly}
	s.repairMu.Unlock()
}

// survivedIDDNF renders the view's surviving processed-key id ranges
// as a DNF over the "id" term.
func survivedIDDNF(v *storage.View) symbolic.DNF {
	ranges, ok := v.SurvivedIDRanges()
	if !ok || len(ranges) == 0 {
		return symbolic.False()
	}
	ivs := make([]symbolic.Interval, 0, len(ranges))
	for _, r := range ranges {
		ivs = append(ivs, symbolic.Interval{Lo: float64(r.Lo), Hi: float64(r.Hi)})
	}
	return symbolic.FromConjuncts(symbolic.NewConjunct().
		WithConstraint("id", symbolic.NumConstraint(symbolic.NewIntervalSet(ivs...))))
}

// lostIDRanges enumerates the finite integer id ranges a lost residual
// covers. Frame ids are 0-based, so a residual unbounded below — the
// shape every `id < N` aggregate leaves after a total loss — is
// enumerable from 0; conjuncts unbounded *above* cannot be enumerated
// and heal lazily through normal queries instead.
func lostIDRanges(lost symbolic.DNF) []storage.IDRange {
	var out []storage.IDRange
	for _, c := range lost.Conjuncts() {
		con, ok := c.Constraint("id")
		if !ok || !con.Numeric {
			continue
		}
		for _, iv := range con.Ivs.Intervals() {
			lo, hi := iv.Lo, iv.Hi
			loOpen := iv.LoOpen
			if math.IsInf(lo, -1) {
				// Clamping to the first frame makes the bound closed:
				// id 0 itself is part of the residual.
				lo, loOpen = 0, false
			}
			if math.IsInf(hi, 0) {
				continue
			}
			l := int64(math.Ceil(lo))
			if loOpen && lo == math.Trunc(lo) {
				l++
			}
			h := int64(math.Floor(hi))
			if iv.HiOpen && hi == math.Trunc(hi) {
				h--
			}
			if l > h {
				continue
			}
			out = append(out, storage.IDRange{Lo: l, Hi: h})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Lo < out[j].Lo })
	// Merge overlaps so a residual split across conjuncts repairs once.
	merged := out[:0]
	for _, r := range out {
		if n := len(merged); n > 0 && r.Lo <= merged[n-1].Hi+1 {
			if r.Hi > merged[n-1].Hi {
				merged[n-1].Hi = r.Hi
			}
			continue
		}
		merged = append(merged, r)
	}
	return merged
}

// Repair recomputes every quarantined view's lost rows through the
// normal reuse machinery and compacts the healed log into a fresh
// generation. For views keyed by frame id, each lost range becomes a
// synthesized query over exactly that range: the shrunk aggregated
// predicate makes the optimizer's DIFF residual equal the hole, the
// executor re-evaluates the UDF for the missing keys, and the STORE
// path re-appends them. Repair is idempotent — appends are per-key
// idempotent and a failed range leaves its task queued for the next
// call — and crash-safe: compaction's old generation stays
// authoritative until the new one's checksums verify on disk.
func (s *System) Repair() (RepairReport, error) {
	s.qmu.RLock()
	defer s.qmu.RUnlock()
	if s.closed {
		return RepairReport{}, ErrClosed
	}
	s.repairMu.Lock()
	tasks := make(map[string]repairTask, len(s.repairs))
	for n, t := range s.repairs {
		tasks[n] = t
	}
	s.repairMu.Unlock()
	// Repair every view with a queued task, plus any view carrying a
	// standing quarantine without one (corruption found at reopen heals
	// lazily through normal queries — predicate state restarts at FALSE
	// — but the fragmented log still wants compacting).
	nameSet := map[string]struct{}{}
	for n := range tasks {
		nameSet[n] = struct{}{}
	}
	for _, n := range s.store.Views() {
		if v := s.store.View(n); v != nil && v.Quarantine() != nil {
			nameSet[n] = struct{}{}
		}
	}
	names := make([]string, 0, len(nameSet))
	for n := range nameSet {
		names = append(names, n)
	}
	sort.Strings(names)

	var rep RepairReport
	for _, name := range names {
		task, hasTask := tasks[name]
		rec := RepairRecord{View: name}
		v := s.store.View(name)
		if v == nil {
			// The view was dropped; nothing left to repair.
			s.clearRepair(name)
			continue
		}
		rec.RowsBefore = v.Rows()
		if hasTask && task.idOnly {
			rec.Err = s.repairRanges(name, task, &rec)
		} else if hasTask {
			rec.Deferred = true
		}
		if rec.Err == "" {
			if cres, err := v.Compact(); err != nil {
				rec.Err = err.Error()
			} else {
				rec.Compacted = true
				rec.CompactBytesBefore = cres.BytesBefore
				rec.CompactBytesAfter = cres.BytesAfter
				s.scrubber.AddFreed(cres.BytesBefore - cres.BytesAfter)
				s.clearRepair(name)
			}
		}
		rec.RowsAfter = v.Rows()
		rep.Records = append(rep.Records, rec)
	}
	return rep, nil
}

// repairRanges recomputes each lost id range with a synthesized query.
// Returns the first failure ("" on success); the task stays queued on
// failure so Repair retries.
func (s *System) repairRanges(view string, task repairTask, rec *RepairRecord) string {
	ranges := lostIDRanges(task.lost)
	rec.Ranges = len(ranges)
	inj := s.eng.Injector()
	for i, r := range ranges {
		// The repair site models a failure or kill between ranges: a
		// transient leaves the task queued for the next Repair call, so
		// repair converges range by range.
		if err := inj.CheckEval(faults.SiteViewRepair(view), uint64(i), 1); err != nil {
			return fmt.Errorf("eva: repair %s: %w", view, err).Error()
		}
		q := fmt.Sprintf(
			"SELECT COUNT(*) AS n FROM %s CROSS APPLY %s(frame) WHERE id >= %d AND id <= %d",
			task.sig.Table, task.sig.Name, r.Lo, r.Hi)
		stmt, err := parser.Parse(q)
		if err != nil {
			return fmt.Errorf("eva: repair %s: %w", view, err).Error()
		}
		sel, ok := stmt.(*parser.SelectStmt)
		if !ok {
			return fmt.Sprintf("eva: repair %s: synthesized statement is %T", view, stmt)
		}
		// Repair always runs the full reuse pipeline regardless of the
		// system mode: the point is to re-materialize the view, which
		// only EVA-mode planning stores.
		if _, err := s.eng.Execute(sel, optimizer.EVAMode()); err != nil {
			return fmt.Errorf("eva: repair %s range [%d,%d]: %w", view, r.Lo, r.Hi, err).Error()
		}
	}
	return ""
}

// clearRepair removes a completed (or moot) repair task.
func (s *System) clearRepair(view string) {
	s.repairMu.Lock()
	delete(s.repairs, view)
	s.repairMu.Unlock()
}

// PendingRepairs returns the names of views with queued repair tasks,
// sorted.
func (s *System) PendingRepairs() []string {
	s.repairMu.Lock()
	defer s.repairMu.Unlock()
	out := make([]string, 0, len(s.repairs))
	for n := range s.repairs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ViewQuarantine returns the named view's quarantine record, or nil
// when the view does not exist or its log is whole.
func (s *System) ViewQuarantine(view string) *Quarantine {
	v := s.store.View(view)
	if v == nil {
		return nil
	}
	return v.Quarantine()
}

// ScrubberStats snapshots the background scrubber's counters (zero
// when Config.ScrubInterval is 0).
func (s *System) ScrubberStats() ScrubberStats {
	if s.scrubber == nil {
		return ScrubberStats{}
	}
	return s.scrubber.Stats()
}
