package eva

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"eva/internal/faults"
	"eva/internal/storage"
	"eva/internal/vision"
)

// sweepWorkload is the query mix replayed under every fault schedule:
// a logical-UDF query (degradable across physical models), two
// physical-model queries that overlap (exercising view reuse and the
// set cover), a predicate UDF, and a partially covered range.
var sweepWorkload = []string{
	`SELECT id, label FROM video CROSS APPLY ObjectDetector(frame) WHERE id < 120 AND label = 'car'`,
	`SELECT id FROM video CROSS APPLY FasterRCNNResnet50(frame) WHERE id < 200`,
	`SELECT id, label FROM video CROSS APPLY FasterRCNNResnet50(frame)
		WHERE id < 260 AND label = 'car' AND ColorDet(frame, bbox) = 'Gray'`,
	`SELECT id FROM video CROSS APPLY ObjectDetector(frame) WHERE id >= 60 AND id < 180`,
}

// chaosRegimes are the four fault regimes the sweep and the chaos
// differential matrix replay; installRegime maps a (regime, seed) pair
// to the injector rules both harnesses share.
var chaosRegimes = []string{"transient", "permanent", "crash", "deadline"}

func installRegime(inj *faults.Injector, regime string, seed uint64) {
	switch regime {
	case "transient":
		inj.Rule(faults.SiteUDFAny, faults.Rule{Kind: faults.Transient, Prob: 0.08})
		inj.Rule(faults.SiteViewWriteAny, faults.Rule{Kind: faults.Transient, Prob: 0.05})
	case "permanent":
		inj.Rule(faults.SiteUDF(vision.YoloTiny), faults.Rule{Kind: faults.Permanent, Prob: 1})
	case "crash":
		inj.Rule(faults.SiteViewWriteAny, faults.Rule{
			Kind: faults.Crash, Prob: 0.2, ShortWrite: int(seed * 13 % 97),
		})
	case "deadline":
		inj.Rule(faults.SiteDeadline, faults.Rule{Kind: faults.Permanent, At: []int{10}})
	}
}

// runSweepWorkload executes the workload, returning per-query row
// counts (-1 for a failed query) and errors.
func runSweepWorkload(t *testing.T, sys *System) ([]int, []error) {
	t.Helper()
	rows := make([]int, len(sweepWorkload))
	errs := make([]error, len(sweepWorkload))
	for i, q := range sweepWorkload {
		res, err := sys.Exec(q)
		if err != nil {
			rows[i], errs[i] = -1, err
			continue
		}
		rows[i] = res.Rows.Len()
	}
	return rows, errs
}

// TestFaultSweep replays the workload under 24 deterministic fault
// schedules spanning four regimes. The resilience contract:
//
//   - transient regimes must be fully absorbed by retry — results
//     byte-equal to the fault-free baseline;
//   - permanent model faults must degrade to a fallback model, never
//     fail the query;
//   - storage crash faults may fail queries, but only with clean
//     wrapped errors, and the on-disk views must reopen uncorrupted;
//   - injected deadline expiry must surface as ErrDeadlineExceeded.
//
// Nothing may panic anywhere in the sweep.
func TestFaultSweep(t *testing.T) {
	base := openSystem(t, ModeEVA)
	baseRows, baseErrs := runSweepWorkload(t, base)
	for i, err := range baseErrs {
		if err != nil {
			t.Fatalf("baseline query %d failed: %v", i, err)
		}
	}
	baseViews := base.ViewRows()

	// The sweep runs once serial and once at Workers=8. Fault decisions
	// are pure functions of (seed, site, call identity) — not draws
	// from a shared stream — so the injected schedule, every outcome
	// and the final view state must be identical at any worker setting;
	// TestChaosDifferentialMatrix checks the byte-level version of this
	// claim over the testdata scripts.
	const seeds = 24
	injectedTotal := 0
	for _, workers := range []int{1, 8} {
		for seed := uint64(1); seed <= seeds; seed++ {
			regime := chaosRegimes[seed%4]
			t.Run(fmt.Sprintf("workers%d/%s-seed%d", workers, regime, seed), func(t *testing.T) {
				dir := t.TempDir()
				sys, err := Open(Config{Dir: dir, Mode: ModeEVA, Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				defer sys.Close()
				if err := sys.LoadVideo("video", "jackson"); err != nil {
					t.Fatal(err)
				}
				inj := faults.New(seed)
				installRegime(inj, regime, seed)
				sys.InjectFaults(inj)

				rows, errs := runSweepWorkload(t, sys)

				switch regime {
				case "transient":
					// Retry must absorb every transient fault: identical
					// results, identical materialized state.
					for i, err := range errs {
						if err != nil {
							t.Errorf("query %d failed under transient faults: %v", i, err)
						} else if rows[i] != baseRows[i] {
							t.Errorf("query %d rows = %d, baseline %d", i, rows[i], baseRows[i])
						}
					}
					views := sys.ViewRows()
					if len(views) != len(baseViews) {
						t.Errorf("views = %v, baseline %v", views, baseViews)
					}
					for name, n := range baseViews {
						if views[name] != n {
							t.Errorf("view %s rows = %d, baseline %d", name, views[name], n)
						}
					}
				case "permanent":
					// The logical queries degrade to FasterRCNN50; the
					// explicitly bound queries never touch YoloTiny.
					for i, err := range errs {
						if err != nil {
							t.Errorf("query %d did not degrade: %v", i, err)
						}
					}
					if res, err := sys.Exec(sweepWorkload[0]); err != nil {
						t.Errorf("post-trip logical query failed: %v", err)
					} else if res.Report.DetectorEval != vision.FasterRCNN50 {
						t.Errorf("degraded eval = %s, want %s", res.Report.DetectorEval, vision.FasterRCNN50)
					}
				case "crash":
					// Queries may fail, but only with a clean error that
					// carries the injected fault or the dead-view refusal.
					for i, err := range errs {
						if err == nil {
							continue
						}
						if _, ok := faults.AsFault(err); !ok &&
							!strings.Contains(err.Error(), "simulated crash") {
							t.Errorf("query %d unclean error: %v", i, err)
						}
					}
					// Reopening the storage directory must replay every
					// view log without error (torn tails truncate cleanly).
					re, err := storage.Open(dir)
					if err != nil {
						t.Fatalf("reopen after crash faults: %v", err)
					}
					for _, name := range re.Views() {
						if v := re.View(name); v.Rows() < 0 {
							t.Errorf("view %s corrupt after reopen", name)
						}
					}
				case "deadline":
					hits := 0
					for i, err := range errs {
						if err == nil {
							continue
						}
						if !errors.Is(err, ErrDeadlineExceeded) {
							t.Errorf("query %d error = %v, want deadline expiry", i, err)
						}
						_ = i
						hits++
					}
					if hits != 1 {
						t.Errorf("deadline fault killed %d queries, want exactly 1", hits)
					}
				}
				injectedTotal += inj.Injected()
			})
		}
	}
	if injectedTotal == 0 {
		t.Fatal("sweep injected no faults — schedules are vacuous")
	}
}

// TestQueryDeadlineConfig drives Config.QueryDeadline through the
// public API: a tiny simulated budget aborts the scan cleanly, and the
// same query completes once the budget is lifted.
func TestQueryDeadlineConfig(t *testing.T) {
	sys, err := Open(Config{Dir: t.TempDir(), QueryDeadline: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if err := sys.LoadVideo("video", "jackson"); err != nil {
		t.Fatal(err)
	}
	_, err = sys.Exec(`SELECT id FROM video WHERE id < 500`)
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", err)
	}
	sys.eng.Deadline = 0
	res, err := sys.Exec(`SELECT id FROM video WHERE id < 500`)
	if err != nil || res.Rows.Len() != 500 {
		t.Fatalf("unlimited rerun: %v rows, err %v", res, err)
	}
}
