// Custom UDFs: modular vs monolithic (§3.3). The analyst defines a
// monolithic GrayNissan UDF with CREATE UDF (Listing 2) plus a Go
// implementation, runs it, and then gets full reuse on a repeat — but
// the modular composition (CarType + ColorDet) is what lets a later
// "gray Toyota" query reuse half its work.
//
//	go run ./examples/custom_udf
package main

import (
	"errors"
	"fmt"
	"log"

	"eva"
)

func main() {
	sys, err := eva.Open(eva.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()
	if _, err := sys.Exec(`LOAD VIDEO 'medium-ua-detrac' INTO video`); err != nil {
		log.Fatal(err)
	}

	// Define the monolithic UDF per Listing 2 and register its Go
	// implementation (composing the two builtin classifiers).
	_, err = sys.Exec(`CREATE UDF GrayNissan
		INPUT  = (frame NDARRAY UINT8(3, ANYDIM, ANYDIM), bbox TEXT)
		OUTPUT = (graynissan_out BOOLEAN)
		IMPL   = 'examples/custom_udf/main.go'
		LOGICAL_TYPE = GrayNissan
		PROPERTIES = ('COST_MS' = '11')`)
	if err != nil {
		log.Fatal(err)
	}
	sys.RegisterScalarImpl("GrayNissan", func(args []eva.Datum) (eva.Datum, error) {
		if len(args) != 2 {
			return eva.Datum{}, errors.New("GrayNissan expects (frame, bbox)")
		}
		// A monolithic model would answer both questions in one pass;
		// the simulation composes the two ground-truth classifiers.
		frame, bbox := args[0], args[1]
		vt, err := classify(sys, "CarType", frame, bbox)
		if err != nil {
			return eva.Datum{}, err
		}
		color, err := classify(sys, "ColorDet", frame, bbox)
		if err != nil {
			return eva.Datum{}, err
		}
		return eva.NewBool(vt == "Nissan" && color == "Gray"), nil
	})

	run := func(label, sql string) {
		res, err := sys.Exec(sql)
		if err != nil {
			log.Fatalf("%s: %v", label, err)
		}
		fmt.Printf("%-22s %5d rows, simulated %8s\n", label, res.Rows.Len(), res.SimTime.Round(1e9))
	}

	fmt.Println("monolithic UDF: reused only on exact repeats")
	run("GrayNissan #1", `SELECT id FROM video CROSS APPLY FasterRCNNResnet50(frame)
		WHERE id < 1500 AND label = 'car' AND GrayNissan(frame, bbox) = TRUE`)
	run("GrayNissan #2", `SELECT id FROM video CROSS APPLY FasterRCNNResnet50(frame)
		WHERE id < 1500 AND label = 'car' AND GrayNissan(frame, bbox) = TRUE`)

	fmt.Println("\nmodular UDFs: gray Nissans now, gray Toyotas later — ColorDet reused")
	run("modular gray Nissan", `SELECT id FROM video CROSS APPLY FasterRCNNResnet50(frame)
		WHERE id < 1500 AND label = 'car' AND CarType(frame, bbox) = 'Nissan'
		AND ColorDet(frame, bbox) = 'Gray'`)
	run("modular gray Toyota", `SELECT id FROM video CROSS APPLY FasterRCNNResnet50(frame)
		WHERE id < 1500 AND label = 'car' AND CarType(frame, bbox) = 'Toyota'
		AND ColorDet(frame, bbox) = 'Gray'`)

	fmt.Printf("\nhit percentage: %.1f%%\n", sys.HitPercentage())
}

// classify runs a builtin classifier through a throwaway query-less
// path: here we simply call the UDF implementations the same way the
// engine would. (A production monolithic UDF would run its own model.)
func classify(sys *eva.System, udf string, frame, bbox eva.Datum) (string, error) {
	out, err := sys.EvalScalarUDF(udf, []eva.Datum{frame, bbox})
	if err != nil {
		return "", err
	}
	return out.Str(), nil
}
