// Quickstart: open an EVA system, load a synthetic video, and watch
// the second, refined query get served from materialized UDF results.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"eva"
)

func main() {
	sys, err := eva.Open(eva.Config{}) // temporary storage, full EVA mode
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	if _, err := sys.Exec(`LOAD VIDEO 'jackson' INTO video`); err != nil {
		log.Fatal(err)
	}

	// First query: every frame in the range runs the object detector.
	q1 := `SELECT id, label, area FROM video
	       CROSS APPLY FasterRCNNResnet50(frame)
	       WHERE id < 2000 AND label = 'car'`
	res1, err := sys.Exec(q1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Q1: %d cars found, simulated %s\n", res1.Rows.Len(), res1.SimTime.Round(1e9))
	fmt.Printf("    breakdown: %s\n", res1.Breakdown)

	// Refinement: the analyst zooms in. The detector results for
	// frames [0, 2000) are already materialized, so only the new
	// frames [2000, 3000) are evaluated.
	q2 := `SELECT id, label, area FROM video
	       CROSS APPLY FasterRCNNResnet50(frame)
	       WHERE id < 3000 AND label = 'car' AND area > 0.2`
	res2, err := sys.Exec(q2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Q2: %d large cars found, simulated %s (vs %s cold)\n",
		res2.Rows.Len(), res2.SimTime.Round(1e9), res1.SimTime.Round(1e9))
	fmt.Printf("    breakdown: %s\n", res2.Breakdown)

	fmt.Printf("\nhit percentage so far: %.1f%%\n", sys.HitPercentage())
	fmt.Printf("materialized views: %.2f MiB on disk\n", float64(sys.ViewFootprint())/(1<<20))
}
