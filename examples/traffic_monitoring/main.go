// Traffic monitoring: the cross-application reuse scenario (Listing 1,
// Q4). A planner counts vehicles per frame with a *logical*
// ObjectDetector at LOW accuracy; because a tracking application
// already materialized high-accuracy FasterRCNN results over the same
// region, Algorithm 2's set-cover picks that view instead of running
// YoloTiny — reuse across applications with different accuracy needs.
//
//	go run ./examples/traffic_monitoring
package main

import (
	"fmt"
	"log"

	"eva"
)

func main() {
	sys, err := eva.Open(eva.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()
	if _, err := sys.Exec(`LOAD VIDEO 'medium-ua-detrac' INTO video`); err != nil {
		log.Fatal(err)
	}

	// Application 1: vehicle tracking with a high-accuracy detector.
	fmt.Println("tracking app: materializing high-accuracy detections ...")
	res, err := sys.Exec(`SELECT id, bbox FROM video
		CROSS APPLY FasterRCNNResnet50(frame)
		WHERE id < 3000 AND label = 'car'`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d detections, simulated %s\n", res.Rows.Len(), res.SimTime.Round(1e9))

	// Application 2: traffic monitoring. A LOW-accuracy logical
	// detector would normally bind to YoloTiny — but the optimizer
	// reuses the materialized high-accuracy results instead.
	fmt.Println("\ntraffic app: per-frame vehicle counts at LOW accuracy")
	res, err = sys.Exec(`SELECT id, COUNT(*) AS vehicles FROM video
		CROSS APPLY ObjectDetector(frame) ACCURACY 'LOW'
		WHERE id < 3000 AND label = 'car' AND area > 0.15
		GROUP BY id LIMIT 10`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(eva.Format(res.Rows))
	fmt.Printf("simulated %s — detector sources chosen: %v (eval model: %s)\n",
		res.SimTime.Round(1e9), res.Report.DetectorSources, res.Report.DetectorEval)

	stats := sys.UDFCounters()
	fmt.Printf("\nYoloTiny evaluations: %d (reused the FasterRCNN view instead)\n",
		stats["yolotiny"].Evaluated)
	fmt.Printf("hit percentage: %.1f%%\n", sys.HitPercentage())
}
