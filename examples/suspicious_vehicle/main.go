// Suspicious-vehicle tracking: the motivating scenario of the paper's
// Listing 1. A law-enforcement analyst iteratively refines a search —
// first all SUV-like vehicles at night, then red ones, then a
// plate-number sweep over the whole video — and every refinement
// reuses the expensive UDF results of the previous step.
//
//	go run ./examples/suspicious_vehicle
package main

import (
	"fmt"
	"log"

	"eva"
)

func main() {
	sys, err := eva.Open(eva.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	if _, err := sys.Exec(`LOAD VIDEO 'medium-ua-detrac' INTO video`); err != nil {
		log.Fatal(err)
	}

	run := func(label, sql string) *eva.Result {
		res, err := sys.Exec(sql)
		if err != nil {
			log.Fatalf("%s: %v", label, err)
		}
		fmt.Printf("%-3s %5d rows   simulated %8s   [%s]\n",
			label, res.Rows.Len(), res.SimTime.Round(1e9), res.Breakdown)
		return res
	}

	fmt.Println("Q1: the witness recalls a Nissan seen early in the video")
	run("Q1", `SELECT id, bbox, ColorDet(frame, bbox) FROM video
	           CROSS APPLY FasterRCNNResnet50(frame)
	           WHERE id < 4000 AND label = 'car' AND area > 0.3
	           AND CarType(frame, bbox) = 'Nissan'`)

	fmt.Println("\nQ2: now they remember it was gray — narrow the search")
	run("Q2", `SELECT id, bbox, License(frame, bbox) FROM video
	           CROSS APPLY FasterRCNNResnet50(frame)
	           WHERE id >= 1000 AND id < 4000 AND label = 'car' AND area > 0.3
	           AND ColorDet(frame, bbox) = 'Gray'
	           AND CarType(frame, bbox) = 'Nissan'`)

	fmt.Println("\nQ3: a plate fragment! sweep a wider range for it")
	res := run("Q3", `SELECT id, bbox FROM video
	           CROSS APPLY FasterRCNNResnet50(frame)
	           WHERE id < 6000 AND label = 'car' AND area > 0.15
	           AND License(frame, bbox) = 'XYZ60'`)

	if res.Rows.Len() > 0 {
		fmt.Printf("\nsuspect vehicle sighted in %d frames; first at id=%v\n",
			res.Rows.Len(), res.Rows.At(0, 0))
	} else {
		fmt.Println("\nno sighting in this range — the analyst would widen the sweep")
	}

	fmt.Printf("\nsession hit percentage: %.1f%%\n", sys.HitPercentage())
	for name, st := range sys.UDFCounters() {
		fmt.Printf("  %-22s demanded %6d, evaluated %6d, reused %6d\n",
			name, st.Total, st.Evaluated, st.Reused)
	}
}
