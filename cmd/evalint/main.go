// Command evalint runs eva's project-specific static analyzers over
// the module: exhaustive-switch, guarded-by, no-panic,
// error-discipline, tracked-goroutine, walltime, mapiter, hotalloc,
// and faultsite (see internal/lint). It is stdlib-only — packages are
// loaded with go/parser and go/types directly.
//
// Usage:
//
//	evalint                # analyze the whole module (./...)
//	evalint ./...          # same
//	evalint -json ./...    # machine-readable findings on stdout
//	evalint internal/exec  # analyze one package directory
//	evalint internal/lint/testdata/src/nopanic/...   # fixture subtree
//
// Diagnostics print as file:line:col: analyzer: message (or, with
// -json, as a JSON array of {file, line, col, analyzer, message}
// objects), and the exit status is non-zero when any are found.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"eva/internal/lint"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "evalint:", err)
		os.Exit(2)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("evalint", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array instead of file:line:col lines")
	if err := fs.Parse(args); err != nil {
		return err
	}
	root, err := lint.FindModuleRoot(".")
	if err != nil {
		return err
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	// Patterns are given relative to the working directory; the loader
	// resolves them relative to the module root.
	for i, p := range patterns {
		if p == "./..." || p == "..." {
			continue
		}
		abs, err := filepath.Abs(p)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(root, abs)
		if err != nil {
			return err
		}
		patterns[i] = filepath.ToSlash(rel)
	}

	u, targets, err := lint.Load(root, patterns)
	if err != nil {
		return err
	}
	diags := lint.Run(u, targets, lint.DefaultAnalyzers(u.ModulePath))
	for i := range diags {
		diags[i] = relDiag(root, diags[i])
	}
	if *jsonOut {
		if err := lint.WriteJSON(os.Stdout, diags); err != nil {
			return err
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
	return nil
}

// relDiag shortens absolute fixture paths to module-relative ones for
// readable output.
func relDiag(root string, d lint.Diagnostic) lint.Diagnostic {
	if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil && !filepath.IsAbs(rel) {
		d.Pos.Filename = rel
	}
	return d
}
