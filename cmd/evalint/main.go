// Command evalint runs eva's project-specific static analyzers over
// the module: exhaustive-switch, guarded-by, no-panic, and
// error-discipline (see internal/lint). It is stdlib-only — packages
// are loaded with go/parser and go/types directly.
//
// Usage:
//
//	evalint                # analyze the whole module (./...)
//	evalint ./...          # same
//	evalint internal/exec  # analyze one package directory
//	evalint internal/lint/testdata/src/nopanic/...   # fixture subtree
//
// Diagnostics print as file:line:col: analyzer: message, and the exit
// status is non-zero when any are found.
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"eva/internal/lint"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "evalint:", err)
		os.Exit(2)
	}
}

func run(args []string) error {
	root, err := lint.FindModuleRoot(".")
	if err != nil {
		return err
	}
	patterns := args
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	// Patterns are given relative to the working directory; the loader
	// resolves them relative to the module root.
	for i, p := range patterns {
		if p == "./..." || p == "..." {
			continue
		}
		abs, err := filepath.Abs(p)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(root, abs)
		if err != nil {
			return err
		}
		patterns[i] = filepath.ToSlash(rel)
	}

	u, targets, err := lint.Load(root, patterns)
	if err != nil {
		return err
	}
	diags := lint.Run(u, targets, lint.DefaultAnalyzers(u.ModulePath))
	for _, d := range diags {
		fmt.Println(relDiag(root, d))
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
	return nil
}

// relDiag shortens absolute fixture paths to module-relative ones for
// readable output.
func relDiag(root string, d lint.Diagnostic) string {
	if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil && !filepath.IsAbs(rel) {
		d.Pos.Filename = rel
	}
	return d.String()
}
