// Command vbench regenerates the paper's tables and figures over the
// synthetic datasets. By default it runs every experiment at full
// scale (the paper's dataset sizes) and prints each result next to the
// paper's headline numbers.
//
// Usage:
//
//	vbench [-exp table2|table3|...|all] [-scale 0.1] [-list]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"eva/internal/vbench"
)

func main() {
	exp := flag.String("exp", "all", "experiment id to run (or 'all')")
	scale := flag.Float64("scale", 1.0, "dataset scale factor in (0, 1]; 1.0 = paper-sized")
	list := flag.Bool("list", false, "list experiments and exit")
	parallelJSON := flag.String("parallel-json", "", "run the parallel scan+UDF benchmark and write its JSON baseline to this path (e.g. BENCH_parallel.json)")
	chaosJSON := flag.String("chaos-json", "", "run the chaos differential benchmark and write its JSON baseline to this path (e.g. BENCH_chaos.json)")
	serverJSON := flag.String("server-json", "", "run the multi-session serving-layer load benchmark and write its JSON baseline to this path (e.g. BENCH_server.json)")
	ingestJSON := flag.String("ingest-json", "", "run the streaming-ingestion benchmark and write its JSON baseline to this path (e.g. BENCH_ingest.json)")
	allocJSON := flag.String("alloc-json", "", "run the pooled-batch allocation benchmark and write its JSON baseline to this path (e.g. BENCH_alloc.json)")
	scrubJSON := flag.String("scrub-json", "", "run the view scrub/repair benchmark and write its JSON baseline to this path (e.g. BENCH_scrub.json)")
	evictJSON := flag.String("evict-json", "", "run the disk-pressure eviction benchmark and write its JSON baseline to this path (e.g. BENCH_evict.json)")
	flag.Parse()

	if *list {
		for _, e := range vbench.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	if *parallelJSON != "" {
		res, err := vbench.RunParallelBench(vbench.DefaultParallelBench())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		data, err := res.JSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.WriteFile(*parallelJSON, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *parallelJSON)
		return
	}

	if *chaosJSON != "" {
		res, err := vbench.RunChaosBench(vbench.DefaultChaosBench())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		data, err := res.JSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.WriteFile(*chaosJSON, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *chaosJSON)
		return
	}

	if *serverJSON != "" {
		res, err := vbench.RunServerBench(vbench.DefaultServerBench())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		data, err := res.JSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.WriteFile(*serverJSON, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *serverJSON)
		return
	}

	if *ingestJSON != "" {
		res, err := vbench.RunIngestBench(vbench.DefaultIngestBench())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		data, err := res.JSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.WriteFile(*ingestJSON, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *ingestJSON)
		return
	}

	if *allocJSON != "" {
		res, err := vbench.RunAllocBench(vbench.DefaultAllocBench())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		data, err := res.JSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.WriteFile(*allocJSON, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *allocJSON)
		return
	}

	if *scrubJSON != "" {
		res, err := vbench.RunScrubBench()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		data, err := res.JSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.WriteFile(*scrubJSON, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *scrubJSON)
		return
	}

	if *evictJSON != "" {
		res, err := vbench.RunEvictBench()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		data, err := res.JSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.WriteFile(*evictJSON, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *evictJSON)
		return
	}

	cfg := vbench.ExpConfig{Scale: *scale}
	var exps []vbench.Experiment
	if *exp == "all" {
		exps = vbench.Experiments()
	} else {
		e, err := vbench.ExperimentByID(*exp)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		exps = []vbench.Experiment{e}
	}

	for _, e := range exps {
		fmt.Printf("=== %s ===\n", e.Title)
		fmt.Printf("paper: %s\n\n", e.Paper)
		start := time.Now()
		out, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Print(out)
		fmt.Printf("\n(%s wall)\n\n", time.Since(start).Round(time.Millisecond))
	}
}
