// Command evaql is an interactive EVA-QL shell and script runner.
//
// Usage:
//
//	evaql                      # interactive shell (temporary storage)
//	evaql -dir ./data          # persistent storage directory
//	evaql -mode noreuse        # run as one of the baselines
//	evaql -f script.sql        # execute a script and exit
//	echo "SELECT ..." | evaql  # execute stdin
//
// The shell prints result tables, per-statement simulated time, and
// the reuse breakdown; `\plan` toggles plan display, `\stats` prints
// the cumulative reuse counters, and `\q` exits.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"eva"
)

func main() {
	dir := flag.String("dir", "", "storage directory (empty = temporary)")
	mode := flag.String("mode", string(eva.ModeEVA), "system mode: eva | noreuse | hashstash | funcache")
	file := flag.String("f", "", "execute the EVA-QL script and exit")
	flag.Parse()

	sys, err := eva.Open(eva.Config{Dir: *dir, Mode: eva.SystemMode(*mode)})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer sys.Close()

	if *file != "" {
		src, err := os.ReadFile(*file)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := runStatements(sys, string(src), false); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	// When Stat fails we cannot tell a terminal from a pipe; default to
	// non-interactive so scripted input still executes cleanly.
	interactive := false
	if stat, err := os.Stdin.Stat(); err == nil {
		interactive = (stat.Mode() & os.ModeCharDevice) != 0
	}
	if interactive {
		fmt.Println("EVA-QL shell — reproducing EVA (SIGMOD 2022). \\q quits, \\plan toggles plans, \\stats shows reuse counters.")
		fmt.Printf("mode: %s   datasets: %s\n", *mode, strings.Join(sortedDatasets(), ", "))
	}

	showPlan := false
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := func() {
		if interactive {
			if buf.Len() == 0 {
				fmt.Print("eva> ")
			} else {
				fmt.Print("...> ")
			}
		}
	}
	prompt()
	for scanner.Scan() {
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		switch trimmed {
		case "\\q", "\\quit", "exit":
			return
		case "\\plan":
			showPlan = !showPlan
			fmt.Printf("plan display: %v\n", showPlan)
			prompt()
			continue
		case "\\stats":
			printStats(sys)
			prompt()
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if strings.Contains(line, ";") {
			src := buf.String()
			buf.Reset()
			if err := runStatements(sys, src, showPlan); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
			}
		}
		prompt()
	}
	// Flush a trailing statement without a semicolon.
	if strings.TrimSpace(buf.String()) != "" {
		if err := runStatements(sys, buf.String(), showPlan); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
		}
	}
}

func runStatements(sys *eva.System, src string, showPlan bool) error {
	res, err := sys.ExecScript(src)
	if err != nil {
		return err
	}
	if res == nil {
		return nil
	}
	if showPlan && res.PlanText != "" {
		fmt.Println(res.PlanText)
	}
	switch {
	case res.Rows != nil && len(res.Rows.Schema()) == 1 && res.Rows.Schema()[0].Name == "plan":
		// EXPLAIN output: print the plan text untruncated.
		fmt.Print(res.PlanText)
	case res.Rows != nil && len(res.Rows.Schema()) > 0:
		fmt.Print(eva.Format(res.Rows))
	}
	fmt.Printf("simulated %s (wall %s)  [%s]\n",
		res.SimTime.Round(1e6), res.WallTime.Round(1e6), res.Breakdown)
	return nil
}

func printStats(sys *eva.System) {
	fmt.Printf("hit percentage: %.2f%%\n", sys.HitPercentage())
	fmt.Printf("view footprint: %.1f MiB\n", float64(sys.ViewFootprint())/(1<<20))
	counters := sys.UDFCounters()
	names := make([]string, 0, len(counters))
	for n := range counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		st := counters[n]
		fmt.Printf("  %-22s DI=%-8d TI=%-8d reused=%-8d evaluated=%d\n", n, st.Distinct, st.Total, st.Reused, st.Evaluated)
	}
}

func sortedDatasets() []string {
	ds := eva.Datasets()
	sort.Strings(ds)
	return ds
}
