package eva

import (
	"errors"
	"fmt"
	"regexp"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"eva/internal/faults"
	"eva/internal/parser"
	"eva/internal/testutil"
)

// The multi-client chaos matrix is the serving layer's executable
// contract: N concurrent sessions — each with its own virtual clock,
// circuit breakers and deterministic fault schedule — run every
// testdata script against one shared System, and every session's
// digest (rows, errors, optimizer reports, per-statement breakdowns,
// fault event log) must byte-match the same session run alone on a
// fresh System. The shared view store must end up holding exactly the
// union of the solo runs' materialized rows: nothing lost, nothing
// computed twice.

// serverChaosSeeds is the number of seeded schedules per script; each
// seed maps to a regime via chaosRegimes[seed%4], as in the
// single-client chaos matrix.
const serverChaosSeeds = 8

// serverChaosSessions is how many concurrent sessions each matrix cell
// runs. Sessions use disjoint tables (video_s0, video_s1, ...), so
// table-qualified UDF signatures keep their views disjoint and every
// per-session observable is deterministic.
const serverChaosSessions = 3

var sessionTableRe = regexp.MustCompile(`\bvideo\b`)

// sessionScript rewrites a testdata script to address session k's
// private table.
func sessionScript(src string, k int) string {
	return sessionTableRe.ReplaceAllString(src, fmt.Sprintf("video_s%d", k))
}

// sessionInjector builds session k's deterministic fault schedule for
// one matrix cell.
func sessionInjector(seed uint64, k int, regime string) *faults.Injector {
	s := seed + uint64(k)*31
	inj := faults.New(s)
	installRegime(inj, regime, s)
	return inj
}

// runSessionDigest executes a script through one Session and digests
// everything the session can observe, including its injector's
// canonical fault log.
func runSessionDigest(t *testing.T, sess *Session, src string, inj *faults.Injector) string {
	t.Helper()
	stmts, err := parser.ParseAll(src)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	for i, stmt := range stmts {
		res, err := sess.ExecStmt(stmt)
		fmt.Fprintf(&out, "== statement %d ==\n", i+1)
		if err != nil {
			fmt.Fprintf(&out, "error: %v\n", err)
			continue
		}
		if res.Rows != nil && len(res.Rows.Schema()) > 0 {
			out.WriteString(Format(res.Rows))
		}
		writeReportDigest(&out, res.Report)
		fmt.Fprintf(&out, "simtime: %d\n", res.SimTime)
		writeBreakdownDigest(&out, res.Breakdown)
	}
	fmt.Fprintf(&out, "session simtime: %d\n", sess.SimulatedTime())
	if inj != nil {
		for _, ev := range inj.EventsSorted() {
			fmt.Fprintf(&out, "fault %+v\n", ev)
		}
		fmt.Fprintf(&out, "injected: %d\n", inj.Injected())
	}
	return out.String()
}

// runSoloSession runs session k's rewritten script alone on a fresh
// System, returning its digest and the views it materialized.
func runSoloSession(t *testing.T, src string, cfg Config, seed uint64, regime string, k int) (string, map[string]int) {
	t.Helper()
	cfg.Dir = t.TempDir()
	sys, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	sess := sys.NewSession()
	inj := sessionInjector(seed, k, regime)
	sess.InjectFaults(inj)
	digest := runSessionDigest(t, sess, sessionScript(src, k), inj)
	return digest, sys.ViewRows()
}

// TestMultiSessionChaosMatrix: every script × seeded fault schedules ×
// Workers {1, 2, 8}, with serverChaosSessions concurrent sessions per
// cell. Each session's digest must byte-match its solo run at
// Workers=1 (proving both session isolation and worker-count
// invariance at once), and the shared store must hold exactly the
// union of the solo runs' view rows.
func TestMultiSessionChaosMatrix(t *testing.T) {
	seeds := serverChaosSeeds
	if testing.Short() {
		seeds = 2
	}
	injected := 0
	for name, src := range chaosScripts(t) {
		t.Run(name, func(t *testing.T) {
			for seed := uint64(1); seed <= uint64(seeds); seed++ {
				regime := chaosRegimes[seed%4]
				t.Run(fmt.Sprintf("%s-seed%d", regime, seed), func(t *testing.T) {
					solo := make([]string, serverChaosSessions)
					wantViews := map[string]int{}
					for k := range solo {
						digest, views := runSoloSession(t, src, Config{Workers: 1}, seed, regime, k)
						solo[k] = digest
						injected += strings.Count(digest, "\nfault ")
						for v, n := range views {
							if _, dup := wantViews[v]; dup {
								t.Fatalf("session %d view %s collides with another session's", k, v)
							}
							wantViews[v] = n
						}
					}
					for _, w := range []int{1, 2, 8} {
						sys, err := Open(Config{Dir: t.TempDir(), Workers: w})
						if err != nil {
							t.Fatal(err)
						}
						digests := make([]string, serverChaosSessions)
						var wg sync.WaitGroup
						for k := 0; k < serverChaosSessions; k++ {
							wg.Add(1)
							go func(k int) {
								defer wg.Done()
								sess := sys.NewSession()
								inj := sessionInjector(seed, k, regime)
								sess.InjectFaults(inj)
								digests[k] = runSessionDigest(t, sess, sessionScript(src, k), inj)
							}(k)
						}
						wg.Wait()
						for k, got := range digests {
							if got != solo[k] {
								t.Errorf("workers=%d session %d digest diverged from its solo run\n%s",
									w, k, digestDiff(solo[k], got))
							}
						}
						gotViews := sys.ViewRows()
						for v, n := range wantViews {
							if gotViews[v] != n {
								t.Errorf("workers=%d view %s has %d rows, solo union says %d",
									w, v, gotViews[v], n)
							}
						}
						for v := range gotViews {
							if _, ok := wantViews[v]; !ok {
								t.Errorf("workers=%d unexpected view %s materialized", w, v)
							}
						}
						sys.Close()
					}
				})
			}
		})
	}
	if injected == 0 {
		t.Error("multi-session chaos matrix injected no faults — schedules are vacuous")
	}
}

// TestSharedViewSingleflight: several sessions race the same cold
// query on the same table. The per-(view, key) claims protocol must
// ensure each distinct UDF invocation is evaluated exactly once
// system-wide — the racing sessions wait and reuse instead of
// recomputing — and every session sees the identical result.
func TestSharedViewSingleflight(t *testing.T) {
	const q = `SELECT id, label FROM video CROSS APPLY FasterRCNNResnet50(frame) WHERE id < 60`

	// Solo baseline: evaluation count and result of one cold run.
	base := openSystem(t, ModeEVA)
	bres, err := base.NewSession().Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	want := Format(bres.Rows)
	wantEval := base.UDFCounters()["fasterrcnnresnet50"].Evaluated
	if wantEval == 0 {
		t.Fatal("baseline evaluated nothing")
	}

	sys := openSystem(t, ModeEVA)
	const clients = 4
	results := make([]string, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := sys.NewSession().Exec(q)
			if err != nil {
				errs[i] = err
				return
			}
			results[i] = Format(res.Rows)
		}(i)
	}
	wg.Wait()
	for i := 0; i < clients; i++ {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
		if results[i] != want {
			t.Errorf("client %d result diverged from the solo run", i)
		}
	}
	got := sys.UDFCounters()["fasterrcnnresnet50"]
	if got.Evaluated != wantEval {
		t.Errorf("%d clients evaluated %d invocations, solo run evaluated %d — double compute",
			clients, got.Evaluated, wantEval)
	}
	if got.Reused == 0 {
		t.Error("racing clients recorded no reuse")
	}
	for v, n := range base.ViewRows() {
		if m := sys.ViewRows()[v]; m != n {
			t.Errorf("view %s: %d rows after race, solo run has %d", v, m, n)
		}
	}
}

// blockingUDF registers a custom scalar UDF whose first evaluation
// signals `started` and then blocks until `release` is closed; later
// evaluations pass straight through. It gives admission tests a query
// that deterministically holds its concurrency token.
func blockingUDF(t *testing.T, sys *System) (started, release chan struct{}) {
	t.Helper()
	if _, err := sys.Exec(`CREATE UDF Gate
		INPUT = (frame BYTES, bbox TEXT) OUTPUT = (gate_out BOOLEAN)
		IMPL = 'test' PROPERTIES = ('COST_MS' = '3')`); err != nil {
		t.Fatal(err)
	}
	started = make(chan struct{})
	release = make(chan struct{})
	var once sync.Once
	sys.RegisterScalarImpl("Gate", func(args []Datum) (Datum, error) {
		once.Do(func() { close(started) })
		<-release
		return NewBool(true), nil
	})
	return started, release
}

const gateQuery = `SELECT id FROM video CROSS APPLY FasterRCNNResnet50(frame)
	WHERE id < 40 AND label = 'car' AND Gate(frame, bbox) = TRUE`

// TestAdmissionOverloadTyped: with one concurrency token and no queue,
// a query arriving while another runs is shed immediately with the
// typed ErrOverloaded — nothing executes, and the stats record the
// shed.
func TestAdmissionOverloadTyped(t *testing.T) {
	sys, err := Open(Config{Dir: t.TempDir(), MaxConcurrent: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	if err := sys.LoadVideo("video", "jackson"); err != nil {
		t.Fatal(err)
	}
	started, release := blockingUDF(t, sys)

	done := make(chan error, 1)
	go func() {
		_, err := sys.NewSession().Exec(gateQuery)
		done <- err
	}()
	<-started

	if _, err := sys.NewSession().Exec(`SELECT id FROM video WHERE id < 5`); !errors.Is(err, ErrOverloaded) {
		t.Errorf("saturated exec error = %v, want ErrOverloaded", err)
	}

	close(release)
	if err := <-done; err != nil {
		t.Fatalf("gated query: %v", err)
	}
	st := sys.AdmissionStats()
	if st.ShedOverload != 1 || st.Admitted == 0 {
		t.Errorf("stats = %+v, want 1 overload shed and >0 admitted", st)
	}
}

// TestAdmissionQueueTimeoutTyped: a queued query whose virtual-clock
// wait budget elapses before a token frees is shed with the typed
// ErrQueueTimeout when the running query completes and advances the
// admission clock past its deadline.
func TestAdmissionQueueTimeoutTyped(t *testing.T) {
	sys, err := Open(Config{
		Dir: t.TempDir(), MaxConcurrent: 1,
		AdmissionQueueDepth: 1, QueueTimeout: time.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	if err := sys.LoadVideo("video", "jackson"); err != nil {
		t.Fatal(err)
	}
	started, release := blockingUDF(t, sys)

	holder := make(chan error, 1)
	go func() {
		_, err := sys.NewSession().Exec(gateQuery)
		holder <- err
	}()
	<-started

	queued := make(chan error, 1)
	go func() {
		_, err := sys.NewSession().Exec(`SELECT id FROM video WHERE id < 5`)
		queued <- err
	}()
	// Release the token only after the second query is demonstrably
	// queued; its 1ns virtual budget then expires on the holder's
	// release, which charges the gated query's simulated cost.
	for sys.AdmissionStats().Queued == 0 {
		time.Sleep(time.Millisecond)
	}
	close(release)

	if err := <-holder; err != nil {
		t.Fatalf("gated query: %v", err)
	}
	if err := <-queued; !errors.Is(err, ErrQueueTimeout) {
		t.Errorf("queued exec error = %v, want ErrQueueTimeout", err)
	}
	if st := sys.AdmissionStats(); st.ShedTimeout != 1 {
		t.Errorf("stats = %+v, want 1 timeout shed", st)
	}
}

// TestMemoryBudgetTyped: an impossible budget aborts with the typed
// ErrMemoryBudget; a finite but workable budget degrades instead and
// returns exactly the unlimited run's rows. Both the System path and
// the Session path enforce the budget.
func TestMemoryBudgetTyped(t *testing.T) {
	const q = `SELECT id, seconds FROM video WHERE id < 200`

	free := openSystem(t, ModeEVA)
	want, err := free.Exec(q)
	if err != nil {
		t.Fatal(err)
	}

	tiny, err := Open(Config{Dir: t.TempDir(), MemoryBudget: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tiny.Close() })
	if err := tiny.LoadVideo("video", "jackson"); err != nil {
		t.Fatal(err)
	}
	if _, err := tiny.Exec(q); !errors.Is(err, ErrMemoryBudget) {
		t.Errorf("System exec error = %v, want ErrMemoryBudget", err)
	}
	if _, err := tiny.NewSession().Exec(q); !errors.Is(err, ErrMemoryBudget) {
		t.Errorf("Session exec error = %v, want ErrMemoryBudget", err)
	}

	// 1 MiB forces scan batches to shrink well below the default width
	// for frame columns but sits far above the 16-row floor: the query
	// degrades and completes bit-identically.
	small, err := Open(Config{Dir: t.TempDir(), MemoryBudget: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { small.Close() })
	if err := small.LoadVideo("video", "jackson"); err != nil {
		t.Fatal(err)
	}
	res, err := small.NewSession().Exec(q)
	if err != nil {
		t.Fatalf("workable budget aborted: %v", err)
	}
	if Format(res.Rows) != Format(want.Rows) {
		t.Error("degraded run's rows diverge from the unlimited run")
	}
}

// TestCloseDrainsInFlight: Close must wait for in-flight statements,
// succeed idempotently, reject later statements from the System and
// from Sessions with ErrClosed, and leave no goroutines behind.
func TestCloseDrainsInFlight(t *testing.T) {
	before := runtime.NumGoroutine()
	sys, err := Open(Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.LoadVideo("video", "jackson"); err != nil {
		t.Fatal(err)
	}
	started, release := blockingUDF(t, sys)

	inflight := make(chan error, 1)
	go func() {
		_, err := sys.NewSession().Exec(gateQuery)
		inflight <- err
	}()
	<-started

	closed := make(chan error, 1)
	go func() { closed <- sys.Close() }()
	select {
	case err := <-closed:
		t.Fatalf("Close returned (%v) with a query in flight", err)
	case <-time.After(50 * time.Millisecond):
	}

	close(release)
	if err := <-inflight; err != nil {
		t.Errorf("in-flight query failed during Close: %v", err)
	}
	if err := <-closed; err != nil {
		t.Errorf("Close: %v", err)
	}
	if err := sys.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	if _, err := sys.Exec(`SELECT id FROM video WHERE id < 5`); !errors.Is(err, ErrClosed) {
		t.Errorf("System exec after Close = %v, want ErrClosed", err)
	}
	if _, err := sys.NewSession().Exec(`SELECT id FROM video WHERE id < 5`); !errors.Is(err, ErrClosed) {
		t.Errorf("Session exec after Close = %v, want ErrClosed", err)
	}
	sess := sys.NewSession()
	if err := sess.Close(); err != nil {
		t.Errorf("session Close: %v", err)
	}
	if _, err := sess.Exec(`SELECT id FROM video WHERE id < 5`); !errors.Is(err, ErrClosed) {
		t.Errorf("exec on closed Session = %v, want ErrClosed", err)
	}
	testutil.CheckNoGoroutineLeak(t, before)
}
