package eva

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"testing"

	"eva/internal/faults"
)

// The ingest chaos matrix is the streaming analogue of the query-path
// matrix in chaos_test.go: every standing-query script under
// testdata/standing runs through a kill-point sweep — a deterministic
// crash injected at the k-th live append, checkpoint write or alert
// notification — followed by a reopen of the same storage directory
// and a resumed ingest of the remaining frames. The resumed run's
// final standing-query state (checkpoint LSN, window counts, alert
// set) must byte-match an uninterrupted baseline: increments replay
// exactly-once from the durable checkpoint, never twice, never
// skipped. Each (script, seed) cell also runs at Workers 1, 2 and 8,
// and the full digest — final state plus the canonical injected-fault
// event log — must be byte-identical across the three, because the
// ingest pump serializes append → increment → checkpoint → notify
// regardless of intra-query parallelism.

// ingestChaosSeeds spans the kill-point grid: site = [append,
// checkpoint, notify][seed%3], arrival ordinal = 1 + seed/3, so 18
// seeds cover six ordinals per site family.
const ingestChaosSeeds = 18

// standingSpec is one named standing query from a script.
type standingSpec struct {
	name      string
	threshold int64
	sql       string
}

// standingScript is one parsed testdata/standing/*.sq file.
type standingScript struct {
	name    string
	frames  int
	window  int64
	cadence int64
	batch   int
	dataset Dataset
	queries []standingSpec
}

// loadStandingScripts parses every script under testdata/standing.
// Directive lines ("-- key: value") set stream parameters; each
// "-- query: <name> threshold=<k>" directive is followed by the
// query's SQL, terminated by a semicolon.
func loadStandingScripts(t *testing.T) []standingScript {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join("testdata", "standing", "*.sq"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no standing scripts: %v", err)
	}
	sort.Strings(paths)
	var scripts []standingScript
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		sc := standingScript{
			name: strings.TrimSuffix(filepath.Base(path), ".sq"),
		}
		ds := Dataset{Width: 320, Height: 240}
		var cur *standingSpec
		var sql strings.Builder
		flush := func() {
			if cur != nil {
				cur.sql = strings.TrimSuffix(strings.TrimSpace(sql.String()), ";")
				sc.queries = append(sc.queries, *cur)
				cur = nil
				sql.Reset()
			}
		}
		for _, line := range strings.Split(string(data), "\n") {
			trimmed := strings.TrimSpace(line)
			if rest, ok := strings.CutPrefix(trimmed, "--"); ok {
				key, val, found := strings.Cut(strings.TrimSpace(rest), ":")
				if !found {
					continue // prose comment
				}
				val = strings.TrimSpace(val)
				switch strings.TrimSpace(key) {
				case "frames":
					sc.frames = atoiT(t, path, val)
				case "window":
					sc.window = int64(atoiT(t, path, val))
				case "cadence":
					sc.cadence = int64(atoiT(t, path, val))
				case "batch":
					sc.batch = atoiT(t, path, val)
				case "density":
					ds.Density = float64(atoiT(t, path, val))
				case "dataset-seed":
					ds.Seed = uint64(atoiT(t, path, val))
				case "query":
					flush()
					name, thr, found := strings.Cut(val, " threshold=")
					if !found {
						t.Fatalf("%s: bad query directive %q", path, val)
					}
					cur = &standingSpec{
						name:      strings.TrimSpace(name),
						threshold: int64(atoiT(t, path, thr)),
					}
				}
				continue
			}
			if cur != nil && trimmed != "" {
				sql.WriteString(line)
				sql.WriteString("\n")
			}
		}
		flush()
		if sc.frames == 0 || sc.window == 0 || sc.batch == 0 || len(sc.queries) == 0 {
			t.Fatalf("%s: incomplete script: %+v", path, sc)
		}
		ds.Name = sc.name
		ds.Frames = sc.frames
		sc.dataset = ds
		scripts = append(scripts, sc)
	}
	return scripts
}

func atoiT(t *testing.T, path, s string) int {
	t.Helper()
	n, err := strconv.Atoi(strings.TrimSpace(s))
	if err != nil {
		t.Fatalf("%s: bad number %q", path, s)
	}
	return n
}

// openScriptStream opens a System on dir and attaches the script's
// stream and standing queries. DegradeHighWater stays 0 so cadence
// degradation never perturbs the chaos cells' schedules.
func openScriptStream(t *testing.T, sc standingScript, dir string, workers int) (*System, *Stream) {
	t.Helper()
	sys, err := Open(Config{Dir: dir, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	stream, err := sys.OpenStream(StreamConfig{
		Table:         "traffic",
		Dataset:       sc.dataset,
		CadenceFrames: sc.cadence,
	})
	if err != nil {
		sys.Close()
		t.Fatal(err)
	}
	for _, q := range sc.queries {
		if _, err := stream.RegisterStandingQuery(q.name, q.sql, sc.window, q.threshold, nil); err != nil {
			sys.Close()
			t.Fatalf("register %s: %v", q.name, err)
		}
	}
	return sys, stream
}

// ingestAll pushes the script's remaining frames in its batch size,
// stopping early if the stream dies, then drains. It returns the
// terminal error, if any.
func ingestAll(stream *Stream, sc standingScript) error {
	left := sc.frames - int(stream.Stats().Watermark)
	for left > 0 {
		n := sc.batch
		if n > left {
			n = left
		}
		if err := stream.Ingest(n); err != nil {
			return err
		}
		left -= n
	}
	return stream.Drain()
}

// ingestStateDigest renders everything a resumed run must reproduce:
// per standing query (sorted by name) the checkpoint LSN, the sorted
// window counts and the alert set. Virtual-clock totals and delivery
// counters are deliberately excluded — a killed-and-resumed run pays
// for retries and re-executed deltas and may have delivered alerts
// before dying, but must converge to the same analytical state.
func ingestStateDigest(stream *Stream) string {
	queries := stream.StandingQueries()
	sort.Slice(queries, func(a, b int) bool { return queries[a].Name() < queries[b].Name() })
	var out strings.Builder
	for _, q := range queries {
		fmt.Fprintf(&out, "query %s: lsn=%d\n", q.Name(), q.LastLSN())
		wins := q.Windows()
		keys := make([]int64, 0, len(wins))
		for w := range wins { // lint:unordered sorted below
			keys = append(keys, w)
		}
		sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
		for _, w := range keys {
			fmt.Fprintf(&out, "  window %d: %d\n", w, wins[w])
		}
		for _, a := range q.Alerts() {
			fmt.Fprintf(&out, "  alert %+v\n", a)
		}
	}
	return out.String()
}

// faultEventsDigest renders the canonical injected-fault event log.
func faultEventsDigest(inj *faults.Injector) string {
	var out strings.Builder
	for _, ev := range inj.EventsSorted() {
		fmt.Fprintf(&out, "fault %s kind=%v call=%d id=%d\n", ev.Site, ev.Kind, ev.Call, ev.ID)
	}
	return out.String()
}

// killRule builds the cell's crash rule: seed%3 picks the site family
// (append / checkpoint on the first query / notify on the first
// query), 1+seed/3 the arrival ordinal, and the seed also varies the
// torn-write length at write sites.
func killRule(sc standingScript, seed int) (site string, rule faults.Rule) {
	ord := 1 + seed/3
	rule = faults.Rule{Kind: faults.Crash, At: []int{ord}, ShortWrite: seed}
	switch seed % 3 {
	case 0:
		return faults.SiteIngestAppend("traffic"), rule
	case 1:
		return faults.SiteIngestCheckpoint(sc.queries[0].name), rule
	default:
		return faults.SiteIngestNotify(sc.queries[0].name), rule
	}
}

// runIngestBaseline runs the script uninterrupted and returns the
// final-state digest.
func runIngestBaseline(t *testing.T, sc standingScript, workers int) string {
	t.Helper()
	sys, stream := openScriptStream(t, sc, t.TempDir(), workers)
	defer sys.Close()
	if err := ingestAll(stream, sc); err != nil {
		t.Fatalf("baseline ingest: %v", err)
	}
	state := ingestStateDigest(stream)
	if err := sys.Close(); err != nil {
		t.Fatalf("baseline close: %v", err)
	}
	return state
}

// runIngestKillResume runs one chaos cell: ingest under the seed's
// kill rule until the stream dies (or finishes, for ordinals past the
// run's horizon), close, reopen the same directory, re-register and
// resume. It returns the resumed final-state digest, the fault-event
// digest of the killed phase, and the injection count.
func runIngestKillResume(t *testing.T, sc standingScript, workers, seed int) (state, events string, injected int) {
	t.Helper()
	dir := t.TempDir()

	sys, stream := openScriptStream(t, sc, dir, workers)
	inj := faults.New(uint64(seed))
	site, rule := killRule(sc, seed)
	inj.Rule(site, rule)
	stream.InjectFaults(inj)
	if err := ingestAll(stream, sc); err != nil && !faults.IsCrash(err) {
		t.Fatalf("killed phase: unexpected error: %v", err)
	}
	injected = inj.Injected()
	killedSim := stream.SimulatedTime()
	sys.Close() // a dead stream may surface its crash again; discard

	sys2, stream2 := openScriptStream(t, sc, dir, workers)
	defer sys2.Close()
	if err := ingestAll(stream2, sc); err != nil {
		t.Fatalf("resume ingest: %v", err)
	}
	resumedSim := stream2.SimulatedTime()
	// The fault schedule and both phases' virtual-clock totals must be
	// worker-invariant, even though the resumed run's clock legitimately
	// differs from the uninterrupted baseline's (it re-executes the
	// in-flight increment and pays retry backoff).
	events = faultEventsDigest(inj) +
		fmt.Sprintf("simtime killed: %d [%s]\nsimtime resumed: %d [%s]\n",
			killedSim.Total(), killedSim, resumedSim.Total(), resumedSim)
	state = ingestStateDigest(stream2)
	if err := sys2.Close(); err != nil {
		t.Fatalf("resume close: %v", err)
	}
	return state, events, injected
}

// TestIngestChaos is the kill-point × seed × Workers matrix. Every
// resumed run must byte-match the uninterrupted baseline's final
// state, every cell must agree across Workers on state and fault
// schedule, and the matrix as a whole must actually inject faults.
func TestIngestChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos matrix is slow")
	}
	total := 0
	for _, sc := range loadStandingScripts(t) {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			baseline := runIngestBaseline(t, sc, 1)
			for seed := 0; seed < ingestChaosSeeds; seed++ {
				var refState, refEvents string
				for i, workers := range []int{1, 2, 8} {
					state, events, injected := runIngestKillResume(t, sc, workers, seed)
					total += injected
					if state != baseline {
						t.Fatalf("seed=%d workers=%d: resumed state diverged from baseline\n-- resumed --\n%s-- baseline --\n%s",
							seed, workers, state, baseline)
					}
					if i == 0 {
						refState, refEvents = state, events
						continue
					}
					if state != refState || events != refEvents {
						t.Fatalf("seed=%d workers=%d: cell diverged from workers=1\n-- events --\n%s-- ref events --\n%s",
							seed, workers, events, refEvents)
					}
				}
			}
		})
	}
	if !t.Failed() && total == 0 {
		t.Fatal("chaos matrix never injected a fault")
	}
}
