module eva

go 1.23
