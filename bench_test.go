// Benchmarks regenerating every table and figure of the paper's
// evaluation (§5). Each benchmark runs its experiment end-to-end —
// workload generation, optimization, execution, metric collection — at
// a reduced dataset scale so the full suite finishes in minutes, and
// reports the headline simulated metrics via b.ReportMetric. Full
// paper-scale runs are produced by `go run ./cmd/vbench`.
//
// Set EVA_BENCH_SCALE (0 < s ≤ 1, default 0.05) to change the scale.
package eva_test

import (
	"fmt"
	"os"
	"strconv"
	"testing"
	"time"

	"eva"
	"eva/internal/symbolic"
	"eva/internal/vbench"
	"eva/internal/vision"
)

func benchScale() float64 {
	if v := os.Getenv("EVA_BENCH_SCALE"); v != "" {
		if s, err := strconv.ParseFloat(v, 64); err == nil && s > 0 && s <= 1 {
			return s
		}
	}
	return 0.05
}

func benchCfg() vbench.ExpConfig { return vbench.ExpConfig{Scale: benchScale()} }

func scaled(ds vision.Dataset) vision.Dataset {
	s := benchScale()
	ds.Frames = int(float64(ds.Frames) * s)
	if ds.Frames < 100 {
		ds.Frames = 100
	}
	return ds
}

// runExperiment executes a registered experiment b.N times.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	exp, err := vbench.ExperimentByID(id)
	if err != nil {
		b.Fatal(err)
	}
	cfg := benchCfg()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Tables ---

func BenchmarkTable2HitPercentage(b *testing.B) {
	ds := scaled(vision.MediumUADetrac)
	for i := 0; i < b.N; i++ {
		var hits []float64
		for _, wl := range []vbench.Workload{vbench.LowWorkload(ds), vbench.HighWorkload(ds)} {
			for _, mode := range []eva.SystemMode{eva.ModeHashStash, eva.ModeFunCache, eva.ModeEVA} {
				m, err := vbench.RunWorkload(mode, wl, vbench.Options{})
				if err != nil {
					b.Fatal(err)
				}
				hits = append(hits, m.HitPct)
			}
		}
		if i == 0 {
			b.ReportMetric(hits[2], "low-eva-hit-%")
			b.ReportMetric(hits[5], "high-eva-hit-%")
		}
	}
}

func BenchmarkTable3UDFStatistics(b *testing.B) {
	ds := scaled(vision.MediumUADetrac)
	for i := 0; i < b.N; i++ {
		m, err := vbench.RunWorkload(eva.ModeNoReuse, vbench.HighWorkload(ds), vbench.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			det := m.UDFStats["fasterrcnnresnet50"]
			b.ReportMetric(float64(det.Total)/float64(det.Distinct), "detector-TI/DI")
			b.ReportMetric(vbench.SpeedupBound(m.UDFStats, profileCost), "eq7-bound-x")
		}
	}
}

func profileCost(name string) time.Duration {
	p, err := vision.ProfileFor(name)
	if err != nil {
		return time.Millisecond
	}
	return p.Cost
}

func BenchmarkTable4QueryBreakdown(b *testing.B) { runExperiment(b, "table4") }

func BenchmarkTable5ModelStats(b *testing.B) { runExperiment(b, "table5") }

// --- Figures ---

func BenchmarkFig5WorkloadSpeedup(b *testing.B) {
	ds := scaled(vision.MediumUADetrac)
	wl := vbench.HighWorkload(ds)
	for i := 0; i < b.N; i++ {
		nr, err := vbench.RunWorkload(eva.ModeNoReuse, wl, vbench.Options{})
		if err != nil {
			b.Fatal(err)
		}
		ev, err := vbench.RunWorkload(eva.ModeEVA, wl, vbench.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(ev.Speedup(nr), "eva-speedup-x")
		}
	}
}

func BenchmarkFig6TimeBreakdown(b *testing.B) { runExperiment(b, "fig6") }

func BenchmarkFig7SymbolicReduction(b *testing.B) {
	ds := scaled(vision.MediumUADetrac)
	wl := vbench.HighWorkload(ds)
	for i := 0; i < b.N; i++ {
		points, err := vbench.Fig7Points(wl)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			maxEVA, maxSim := 0, 0
			for _, p := range points {
				if p.EVAAtoms > maxEVA {
					maxEVA = p.EVAAtoms
				}
				if p.SimplifyAtoms > maxSim {
					maxSim = p.SimplifyAtoms
				}
			}
			b.ReportMetric(float64(maxEVA), "eva-max-atoms")
			b.ReportMetric(float64(maxSim), "simplify-max-atoms")
		}
	}
}

func BenchmarkFig8OrderOfQueries(b *testing.B) { runExperiment(b, "fig8") }

func BenchmarkFig9PredicateReordering(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		rows, err := vbench.Fig9Rows(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			best := 0.0
			for _, r := range rows {
				if r.Speedup > best {
					best = r.Speedup
				}
			}
			b.ReportMetric(best, "best-reorder-speedup-x")
		}
	}
}

func BenchmarkFig10LogicalUDFReuse(b *testing.B) { runExperiment(b, "fig10") }

func BenchmarkFig11VideoContent(b *testing.B) {
	ds := scaled(vision.Jackson)
	wl := vbench.HighWorkload(ds)
	for i := 0; i < b.N; i++ {
		nr, err := vbench.RunWorkload(eva.ModeNoReuse, wl, vbench.Options{})
		if err != nil {
			b.Fatal(err)
		}
		ev, err := vbench.RunWorkload(eva.ModeEVA, wl, vbench.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(ev.Speedup(nr), "jackson-eva-speedup-x")
		}
	}
}

func BenchmarkFig12VideoLength(b *testing.B) { runExperiment(b, "fig12") }

func BenchmarkFilterComplement(b *testing.B) { runExperiment(b, "filters") }

func BenchmarkStorageFootprint(b *testing.B) {
	ds := scaled(vision.MediumUADetrac)
	wl := vbench.HighWorkload(ds)
	for i := 0; i < b.N; i++ {
		m, err := vbench.RunWorkload(eva.ModeEVA, wl, vbench.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(100*float64(m.ViewBytes)/float64(m.VideoVirtualBytes), "overhead-%")
		}
	}
}

// --- Micro-benchmarks of the core machinery ---

func BenchmarkSymbolicInterDiffUnion(b *testing.B) {
	sys, err := eva.Open(eva.Config{})
	if err != nil {
		b.Fatal(err)
	}
	defer sys.Close()
	_ = sys
	p1 := rangePred(b, 0, 10000)
	p2 := rangePred(b, 7500, 12000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		symbolic.Inter(p1, p2)
		symbolic.Diff(p1, p2)
		symbolic.Union(p1, p2)
	}
}

func rangePred(b *testing.B, lo, hi float64) symbolic.DNF {
	b.Helper()
	d := symbolic.FromConjuncts(
		symbolic.NewConjunct().
			WithConstraint("id", symbolic.NumConstraint(symbolic.NewIntervalSet(
				symbolic.Interval{Lo: lo, Hi: hi, HiOpen: true}))).
			WithConstraint("label", symbolic.CatConstraint(symbolic.NewCatSet("car"))),
	)
	return d
}

// BenchmarkParallelScanUDF measures the parallel pipelined executor
// on a latency-bound scan+UDF workload (a blocking scalar UDF models
// NN-inference RPCs) at several worker counts. Wall-clock ns/op should
// drop near-linearly with workers while the simulated time — asserted
// inside RunParallelBench — stays byte-identical. The committed
// baseline lives in BENCH_parallel.json (refresh with
// `go run ./cmd/vbench -parallel-json BENCH_parallel.json`).
func BenchmarkParallelScanUDF(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := vbench.ParallelBenchConfig{
				Frames:  100,
				Sleep:   2 * time.Millisecond,
				Iters:   1,
				Workers: []int{workers},
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := vbench.RunParallelBench(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(float64(res.Cells[0].NsPerOp), "wall-ns/udf-op")
				}
			}
		})
	}
}

func BenchmarkSingleQueryColdVsWarm(b *testing.B) {
	sys, err := eva.Open(eva.Config{})
	if err != nil {
		b.Fatal(err)
	}
	defer sys.Close()
	if err := sys.LoadDataset("video", scaled(vision.MediumUADetrac)); err != nil {
		b.Fatal(err)
	}
	q := `SELECT id, bbox FROM video CROSS APPLY FasterRCNNResnet50(frame)
	      WHERE id < 300 AND label = 'car' AND CarType(frame, bbox) = 'Nissan'`
	if _, err := sys.Exec(q); err != nil {
		b.Fatal(err) // cold run materializes
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Exec(q); err != nil {
			b.Fatal(err)
		}
	}
}
