package eva

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"eva/internal/faults"
	"eva/internal/parser"
)

// The chaos differential matrix extends the serial-vs-parallel harness
// of differential_test.go to fault-injected execution: every testdata
// script runs under seeded fault schedules spanning all four regimes
// (transient, permanent, crash, deadline), and every parallel cell
// must produce a byte-identical digest — including per-statement
// errors, the canonical injected-fault event log, materialized view
// state and virtual-clock totals — to the serial run with the same
// seed. This is the executable proof that unpinning the parallel
// engine under fault injection (call-identity-keyed decisions,
// frozen breaker snapshots, serial-order outcome commits) preserved
// the determinism contract.

// chaosSeeds is the number of seeded schedules per script; each seed
// maps to one regime via chaosRegimes[seed%4], as in TestFaultSweep.
const chaosSeeds = 24

// runChaosDigest executes a whole script in a fresh system under the
// given fault regime, returning a digest of everything observable.
// Unlike the fault-free harness, statements may fail: the error text
// joins the digest (it must be deterministic too) and execution
// continues, mirroring an exploratory session that shrugs off a
// failed query.
func runChaosDigest(t *testing.T, src string, cfg Config, seed uint64, regime string) string {
	t.Helper()
	cfg.Dir = t.TempDir()
	sys, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	var inj *faults.Injector
	if regime != "" {
		inj = faults.New(seed)
		installRegime(inj, regime, seed)
		sys.InjectFaults(inj)
	}

	stmts, err := parser.ParseAll(src)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	for i, stmt := range stmts {
		res, err := sys.ExecStmt(stmt)
		fmt.Fprintf(&out, "== statement %d ==\n", i+1)
		if err != nil {
			fmt.Fprintf(&out, "error: %v\n", err)
			continue
		}
		if res.Rows != nil && len(res.Rows.Schema()) > 0 {
			out.WriteString(Format(res.Rows))
		}
		writeReportDigest(&out, res.Report)
		fmt.Fprintf(&out, "simtime: %d\n", res.SimTime)
		writeBreakdownDigest(&out, res.Breakdown)
	}
	views := sys.ViewRows()
	names := make([]string, 0, len(views))
	for n := range views {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&out, "view %s: %d rows\n", n, views[n])
	}
	counters := sys.UDFCounters()
	cnames := make([]string, 0, len(counters))
	for n := range counters {
		cnames = append(cnames, n)
	}
	sort.Strings(cnames)
	for _, n := range cnames {
		fmt.Fprintf(&out, "udf %s: %+v\n", n, counters[n])
	}
	fmt.Fprintf(&out, "hit%%: %.6f\ntotal simtime: %d\n", sys.HitPercentage(), sys.SimulatedTime())
	if inj != nil {
		for _, ev := range inj.EventsSorted() {
			fmt.Fprintf(&out, "fault %+v\n", ev)
		}
		fmt.Fprintf(&out, "injected: %d\n", inj.Injected())
	}
	return out.String()
}

// chaosScripts loads every testdata script source.
func chaosScripts(t *testing.T) map[string]string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join("testdata", "scripts", "*.sql"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no scripts found: %v", err)
	}
	srcs := map[string]string{}
	for _, p := range paths {
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		srcs[filepath.Base(p)] = string(b)
	}
	return srcs
}

// TestChaosDifferentialMatrix: every script × every seeded fault
// schedule × Workers {1,2,8} — parallel digests must be byte-identical
// to serial. Runs a reduced seed set under -short.
func TestChaosDifferentialMatrix(t *testing.T) {
	seeds := chaosSeeds
	if testing.Short() {
		seeds = 6
	}
	injected := 0
	for name, src := range chaosScripts(t) {
		t.Run(name, func(t *testing.T) {
			for seed := uint64(1); seed <= uint64(seeds); seed++ {
				regime := chaosRegimes[seed%4]
				t.Run(fmt.Sprintf("%s-seed%d", regime, seed), func(t *testing.T) {
					baseline := runChaosDigest(t, src, Config{Workers: 1}, seed, regime)
					injected += strings.Count(baseline, "\nfault ")
					for _, w := range []int{2, 8} {
						got := runChaosDigest(t, src, Config{Workers: w}, seed, regime)
						if got != baseline {
							t.Errorf("workers=%d digest diverged from serial\n%s",
								w, digestDiff(baseline, got))
						}
					}
				})
			}
		})
	}
	if injected == 0 {
		t.Error("chaos matrix injected no faults — schedules are vacuous")
	}
}

// TestFunCacheParallelDifferential: the FunCache baseline — formerly
// pinned serial because its hit/miss accounting was order-sensitive —
// must now produce byte-identical fault-free digests at every worker
// count (per-key singleflight makes eval/store counts and charged miss
// costs order-independent).
func TestFunCacheParallelDifferential(t *testing.T) {
	for name, src := range chaosScripts(t) {
		t.Run(name, func(t *testing.T) {
			baseline := runChaosDigest(t, src, Config{Mode: ModeFunCache, Workers: 1}, 0, "")
			for _, w := range []int{2, 8} {
				got := runChaosDigest(t, src, Config{Mode: ModeFunCache, Workers: w}, 0, "")
				if got != baseline {
					t.Errorf("workers=%d FunCache digest diverged from serial\n%s",
						w, digestDiff(baseline, got))
				}
			}
		})
	}
}

// TestChaosPoolingDifferential extends the pooling invariance of
// TestPoolingDifferential to fault-injected execution: under every
// regime, the pooled runs at Workers {1,2,8} must byte-match the
// unpooled serial run with the same seed — recycled batches cannot
// perturb the injected schedule, retry charges, breaker trips or
// error text. Runs a reduced seed set under -short.
func TestChaosPoolingDifferential(t *testing.T) {
	seeds := 8
	if testing.Short() {
		seeds = 4
	}
	injected := 0
	for name, src := range chaosScripts(t) {
		t.Run(name, func(t *testing.T) {
			for seed := uint64(1); seed <= uint64(seeds); seed++ {
				regime := chaosRegimes[seed%4]
				t.Run(fmt.Sprintf("%s-seed%d", regime, seed), func(t *testing.T) {
					baseline := runChaosDigest(t, src,
						Config{Workers: 1, DisablePooling: true}, seed, regime)
					injected += strings.Count(baseline, "\nfault ")
					for _, w := range []int{1, 2, 8} {
						got := runChaosDigest(t, src, Config{Workers: w}, seed, regime)
						if got != baseline {
							t.Errorf("pooled workers=%d digest diverged from unpooled serial\n%s",
								w, digestDiff(baseline, got))
						}
					}
				})
			}
		})
	}
	if injected == 0 {
		t.Error("pooling chaos matrix injected no faults — schedules are vacuous")
	}
}

// TestFunCachePoolingDifferential: pooled FunCache runs must
// byte-match the unpooled serial FunCache baseline — the tuple cache
// retains detector output batches, so this is the regime where a
// recycled batch aliasing cached state would surface first.
func TestFunCachePoolingDifferential(t *testing.T) {
	for name, src := range chaosScripts(t) {
		t.Run(name, func(t *testing.T) {
			baseline := runChaosDigest(t, src,
				Config{Mode: ModeFunCache, Workers: 1, DisablePooling: true}, 0, "")
			for _, w := range []int{1, 2, 8} {
				got := runChaosDigest(t, src, Config{Mode: ModeFunCache, Workers: w}, 0, "")
				if got != baseline {
					t.Errorf("pooled workers=%d FunCache digest diverged from unpooled serial\n%s",
						w, digestDiff(baseline, got))
				}
			}
		})
	}
}

// TestFunCacheFaultSmoke: FunCache under fault injection at Workers=8
// is exempt from the byte-identity matrix — breaker-commit attribution
// among same-identity rows can legitimately vary with the singleflight
// claimant — but it must never panic, must surface only clean wrapped
// errors, and the system must stay usable afterwards.
func TestFunCacheFaultSmoke(t *testing.T) {
	src := chaosScripts(t)["reuse_flow.sql"]
	if src == "" {
		t.Fatal("reuse_flow.sql missing")
	}
	for seed := uint64(1); seed <= 4; seed++ {
		regime := chaosRegimes[seed%4]
		t.Run(regime, func(t *testing.T) {
			sys, err := Open(Config{Dir: t.TempDir(), Mode: ModeFunCache, Workers: 8})
			if err != nil {
				t.Fatal(err)
			}
			defer sys.Close()
			inj := faults.New(seed)
			installRegime(inj, regime, seed)
			sys.InjectFaults(inj)
			stmts, err := parser.ParseAll(src)
			if err != nil {
				t.Fatal(err)
			}
			for i, stmt := range stmts {
				if _, err := sys.ExecStmt(stmt); err != nil &&
					!strings.Contains(err.Error(), "fault") &&
					!strings.Contains(err.Error(), "crash") &&
					!strings.Contains(err.Error(), "deadline") &&
					!strings.Contains(err.Error(), "unavailable") &&
					!strings.Contains(err.Error(), "failed") {
					t.Errorf("statement %d: unclean error under %s faults: %v", i+1, regime, err)
				}
			}
		})
	}
}
