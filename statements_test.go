package eva

import (
	"strings"
	"sync"
	"testing"
)

func TestExplainDoesNotExecuteOrCommit(t *testing.T) {
	sys := openSystem(t, ModeEVA)
	res, err := sys.Exec(`EXPLAIN SELECT id FROM video CROSS APPLY FasterRCNNResnet50(frame)
		WHERE id < 50 AND label = 'car' AND CarType(frame, bbox) = 'Nissan'`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.PlanText, "CrossApply(FasterRCNNResnet50") ||
		!strings.Contains(res.PlanText, "ScalarApply(CarType") {
		t.Errorf("plan text:\n%s", res.PlanText)
	}
	if res.Rows.Len() == 0 {
		t.Error("EXPLAIN should return plan rows")
	}
	// Nothing ran and nothing was committed.
	if stats := sys.UDFCounters(); len(stats) != 0 {
		t.Errorf("EXPLAIN executed UDFs: %v", stats)
	}
	// A real run right after still treats the detector as cold: all 50
	// frames are evaluated (EXPLAIN didn't poison the aggregated
	// predicate into claiming coverage).
	if _, err := sys.Exec(`SELECT id FROM video CROSS APPLY FasterRCNNResnet50(frame) WHERE id < 50`); err != nil {
		t.Fatal(err)
	}
	if evals := sys.UDFCounters()["fasterrcnnresnet50"].Evaluated; evals != 50 {
		t.Errorf("post-EXPLAIN run evaluated %d frames, want 50", evals)
	}
}

func TestExplainAnalyzeReportsOperatorStats(t *testing.T) {
	sys := openSystem(t, ModeEVA)
	res, err := sys.Exec(`EXPLAIN ANALYZE SELECT id, label FROM video
		CROSS APPLY FasterRCNNResnet50(frame) WHERE id < 30 AND label = 'car'`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.PlanText, "rows=") || !strings.Contains(res.PlanText, "Scan(video") {
		t.Errorf("analyze output:\n%s", res.PlanText)
	}
	// ANALYZE actually executed: the detector ran on all 30 frames.
	if evals := sys.UDFCounters()["fasterrcnnresnet50"].Evaluated; evals != 30 {
		t.Errorf("EXPLAIN ANALYZE evaluated %d frames, want 30", evals)
	}
	// The scan row count appears in the trace.
	if !strings.Contains(res.PlanText, "rows=30") {
		t.Errorf("scan rows missing from trace:\n%s", res.PlanText)
	}
}

func TestDropViewsResetsReuse(t *testing.T) {
	sys := openSystem(t, ModeEVA)
	q := "SELECT id FROM video CROSS APPLY FasterRCNNResnet50(frame) WHERE id < 40"
	if _, err := sys.Exec(q); err != nil {
		t.Fatal(err)
	}
	if sys.ViewFootprint() == 0 {
		t.Fatal("no views materialized")
	}
	if _, err := sys.Exec("DROP VIEWS"); err != nil {
		t.Fatal(err)
	}
	if sys.ViewFootprint() != 0 {
		t.Error("views not dropped")
	}
	// The next run is cold again (aggregated predicates reset too).
	before := sys.UDFCounters()["fasterrcnnresnet50"].Evaluated
	if _, err := sys.Exec(q); err != nil {
		t.Fatal(err)
	}
	after := sys.UDFCounters()["fasterrcnnresnet50"].Evaluated
	if after-before != 40 {
		t.Errorf("post-drop run evaluated %d frames, want 40", after-before)
	}
}

func TestConcurrentQueries(t *testing.T) {
	sys := openSystem(t, ModeEVA)
	// Warm a shared view so concurrent readers hit it.
	if _, err := sys.Exec("SELECT id FROM video CROSS APPLY FasterRCNNResnet50(frame) WHERE id < 200"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lo := i * 30
			q := "SELECT id, label FROM video CROSS APPLY FasterRCNNResnet50(frame) WHERE id >= " +
				itoa(lo) + " AND id < " + itoa(lo+60) + " AND label = 'car'"
			if _, err := sys.Exec(q); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// All results must still agree with a fresh system.
	res, err := sys.Exec("SELECT id FROM video CROSS APPLY FasterRCNNResnet50(frame) WHERE id < 270 AND label = 'car'")
	if err != nil {
		t.Fatal(err)
	}
	fresh := openSystem(t, ModeNoReuse)
	want, err := fresh.Exec("SELECT id FROM video CROSS APPLY FasterRCNNResnet50(frame) WHERE id < 270 AND label = 'car'")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows.Len() != want.Rows.Len() {
		t.Errorf("post-concurrency rows = %d, want %d", res.Rows.Len(), want.Rows.Len())
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

// TestUDFFailureLeavesConsistentState injects a UDF failure mid-query
// and verifies the system recovers: the error surfaces, and a repaired
// re-run neither duplicates rows nor reuses poisoned results.
func TestUDFFailureLeavesConsistentState(t *testing.T) {
	sys := openSystem(t, ModeEVA)
	if _, err := sys.Exec(`CREATE UDF Flaky
		INPUT = (frame BYTES, bbox TEXT) OUTPUT = (flaky_out BOOLEAN)
		IMPL = 'test' PROPERTIES = ('COST_MS' = '3')`); err != nil {
		t.Fatal(err)
	}
	calls := 0
	fail := true
	sys.RegisterScalarImpl("Flaky", func(args []Datum) (Datum, error) {
		calls++
		if fail && calls > 5 {
			return Datum{}, errFlaky
		}
		return NewBool(true), nil
	})
	q := `SELECT id FROM video CROSS APPLY FasterRCNNResnet50(frame)
	      WHERE id < 400 AND label = 'car' AND Flaky(frame, bbox) = TRUE`
	if _, err := sys.Exec(q); err == nil {
		t.Fatal("query with failing UDF should error")
	}
	// Repair the UDF and re-run: results are complete and keys that
	// succeeded before the failure are not re-evaluated twice into the
	// view (idempotent appends).
	fail = false
	res, err := sys.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	again, err := sys.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows.Len() != again.Rows.Len() {
		t.Errorf("rows changed across re-runs: %d vs %d", res.Rows.Len(), again.Rows.Len())
	}
}

var errFlaky = &flakyError{}

type flakyError struct{}

func (*flakyError) Error() string { return "flaky UDF: injected failure" }
