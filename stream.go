package eva

import (
	"eva/internal/faults"
	"eva/internal/ingest"
	"eva/internal/simclock"
)

// Streaming ingestion types re-exported from internal/ingest.
type (
	// StandingQuery is a registered SELECT incrementally maintained
	// over a stream from a durable checkpoint.
	StandingQuery = ingest.StandingQuery
	// StreamAlert is one standing-query window notification.
	StreamAlert = ingest.Alert
	// StreamStats snapshots a stream's ingest counters.
	StreamStats = ingest.Stats
)

// Typed streaming errors; test with errors.Is.
var (
	// ErrFrameShed is returned by TryIngest when the ingest queue is
	// full even after standing-query degradation.
	ErrFrameShed = ingest.ErrFrameShed
	// ErrStreamClosed rejects operations on a closed stream.
	ErrStreamClosed = ingest.ErrStreamClosed
	// ErrStreamDead rejects operations after a simulated crash killed
	// the stream; reopen the System on the same Dir to recover.
	ErrStreamDead = ingest.ErrStreamDead
)

// StreamConfig configures a live video table opened with OpenStream.
type StreamConfig struct {
	// Table is the live table name.
	Table string
	// Dataset bounds the stream: its Frames field is the capacity.
	Dataset Dataset
	// QueueDepth bounds the ingest queue in batches (default 16); a
	// full queue blocks Ingest and sheds TryIngest with ErrFrameShed.
	QueueDepth int
	// CadenceFrames is the standing-query refresh cadence (default 8).
	CadenceFrames int64
	// DegradeHighWater is the backlog at which standing-query cadence
	// degrades (doubles) before any frame is shed. 0 disables.
	DegradeHighWater int
	// MemoryBudget caps each delta execution's materialized bytes;
	// 0 inherits Config.MemoryBudget.
	MemoryBudget int64
}

// Stream is a live video table with crash-safe streaming ingestion:
// producers append frames over (virtual) time, standing queries extend
// their materialized views incrementally from durable checkpoints, and
// a crash at any point resumes exactly-once after reopening the System
// on the same directory. See DESIGN.md §12 for the failure model.
type Stream struct {
	st *ingest.Stream
}

// OpenStream opens (or, on an existing storage directory, recovers) a
// live table and starts its ingestion pump. The Stream is owned by the
// System: Close-ing the System drains and closes it.
func (s *System) OpenStream(cfg StreamConfig) (*Stream, error) {
	s.qmu.RLock()
	defer s.qmu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	budget := cfg.MemoryBudget
	if budget == 0 {
		budget = s.cfg.MemoryBudget
	}
	st, err := ingest.OpenStream(ingest.Config{
		Engine:           s.eng,
		Table:            cfg.Table,
		Dataset:          cfg.Dataset,
		QueueDepth:       cfg.QueueDepth,
		CadenceFrames:    cfg.CadenceFrames,
		DegradeHighWater: cfg.DegradeHighWater,
		MemoryBudget:     budget,
	})
	if err != nil {
		return nil, err
	}
	w := &Stream{st: st}
	s.smu.Lock()
	s.streams = append(s.streams, w)
	s.smu.Unlock()
	return w, nil
}

// Ingest enqueues n frames, blocking while the queue is full. It
// returns once the batch is queued; durability failures surface on
// later calls and on Drain.
func (st *Stream) Ingest(n int) error { return st.st.Ingest(n) }

// TryIngest enqueues n frames without blocking; a full queue sheds the
// batch with ErrFrameShed.
func (st *Stream) TryIngest(n int) error { return st.st.TryIngest(n) }

// Drain waits until everything queued so far is durable and every
// standing query has advanced to the watermark. It returns the
// stream's terminal error, if any.
func (st *Stream) Drain() error { return st.st.Drain() }

// Close stops the stream, draining queued work first. Idempotent; the
// System also closes its streams on System.Close.
func (st *Stream) Close() error { return st.st.Close() }

// RegisterStandingQuery attaches a standing SELECT: result rows are
// counted per tumbling window of windowFrames frames, and the first
// time a window reaches threshold an alert fires (onAlert may be nil).
// A previous incarnation's checkpoint under the same name is recovered.
func (st *Stream) RegisterStandingQuery(name, sql string, windowFrames, threshold int64, onAlert func(StreamAlert)) (*StandingQuery, error) {
	return st.st.Register(name, sql, windowFrames, threshold, onAlert)
}

// InjectFaults installs the stream's deterministic fault injector
// (appends, checkpoints, notifications, and standing-query deltas).
func (st *Stream) InjectFaults(inj *faults.Injector) { st.st.SetInjector(inj) }

// Stats snapshots the stream's ingest counters.
func (st *Stream) Stats() StreamStats { return st.st.Stats() }

// StandingQueries returns the registered standing queries.
func (st *Stream) StandingQueries() []*StandingQuery { return st.st.Queries() }

// SimulatedTime returns the ingest-side virtual time breakdown.
func (st *Stream) SimulatedTime() simclock.Breakdown { return st.st.SimulatedTime() }

// closeStreams drains and closes every stream opened on this System.
func (s *System) closeStreams() error {
	s.smu.Lock()
	streams := s.streams
	s.streams = nil
	s.smu.Unlock()
	var first error
	for _, st := range streams {
		if err := st.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
