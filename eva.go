// Package eva is a video database management system (VDBMS) that
// accelerates exploratory video analytics by automatically
// materializing and reusing the results of expensive deep-learning
// UDFs, reproducing "EVA: A Symbolic Approach to Accelerating
// Exploratory Video Analytics with Materialized Views" (SIGMOD 2022).
//
// A System owns a catalog, a storage engine, a UDF runtime, and the
// Cascades-style optimizer with the semantic reuse algorithm. Clients
// speak EVA-QL:
//
//	sys, _ := eva.Open(eva.Config{})
//	defer sys.Close()
//	sys.Exec(`LOAD VIDEO 'medium-ua-detrac' INTO video`)
//	res, _ := sys.Exec(`SELECT id, bbox FROM video
//	    CROSS APPLY FasterRCNNResnet50(frame)
//	    WHERE id < 1000 AND label = 'car'
//	    AND CarType(frame, bbox) = 'Nissan'`)
//	fmt.Println(res.Rows.Len())
//
// Repeated and refined queries reuse the materialized UDF results of
// earlier ones; Result.Breakdown reports where the (simulated) time
// went.
package eva

import (
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"eva/internal/baselines"
	"eva/internal/catalog"
	"eva/internal/core"
	"eva/internal/costs"
	"eva/internal/exec"
	"eva/internal/faults"
	"eva/internal/optimizer"
	"eva/internal/parser"
	"eva/internal/plan"
	"eva/internal/server"
	"eva/internal/simclock"
	"eva/internal/storage"
	"eva/internal/types"
	"eva/internal/udf"
	"eva/internal/vision"
)

// Re-exported value types so callers outside this module can hold and
// inspect results without importing internal packages.
type (
	// Batch is a columnar result set.
	Batch = types.Batch
	// Schema describes result columns.
	Schema = types.Schema
	// Datum is a single scalar value.
	Datum = types.Datum
	// Breakdown is the per-category simulated-time accounting.
	Breakdown = simclock.Breakdown
	// UDFStats are per-UDF demand/reuse counters.
	UDFStats = udf.Stats
	// OptimizerReport exposes the optimizer's reuse decisions.
	OptimizerReport = optimizer.Report
	// PredInfo is the per-UDF symbolic analysis in an OptimizerReport.
	PredInfo = optimizer.PredInfo
	// ScalarFunc implements a custom scalar UDF in Go.
	ScalarFunc = udf.ScalarFunc
	// Dataset describes a synthetic video dataset.
	Dataset = vision.Dataset
	// PoolStats is a snapshot of batch-pool traffic (hits, misses,
	// puts); see System.PoolStats.
	PoolStats = types.PoolStats
)

// SystemMode selects the reuse strategy — EVA or one of the paper's
// baselines (§5.1).
type SystemMode string

// System modes.
const (
	// ModeEVA is the full system: symbolic reuse, materialization-aware
	// reordering, logical UDF reuse.
	ModeEVA SystemMode = "eva"
	// ModeNoReuse disables all reuse.
	ModeNoReuse SystemMode = "noreuse"
	// ModeHashStash reimplements the HashStash baseline: operator-level
	// (sub-plan) reuse via a recycler graph — detector outputs are
	// reused, predicate-level UDFs are not, and ranking is canonical.
	ModeHashStash SystemMode = "hashstash"
	// ModeFunCache reimplements tuple-level function caching with
	// xxHash argument keys inside the execution engine.
	ModeFunCache SystemMode = "funcache"
)

// Config configures a System.
type Config struct {
	// Dir is the storage directory; empty means a fresh temporary
	// directory removed on Close.
	Dir string
	// Mode selects the reuse strategy; default ModeEVA.
	Mode SystemMode
	// BatchSize overrides the scan batch size (frames).
	BatchSize int
	// DisableReduction turns off Algorithm 1 predicate reduction
	// (ablation studies).
	DisableReduction bool
	// CanonicalRanking forces the Eq. 2 ranking function even in EVA
	// mode (the Fig. 9 comparison).
	CanonicalRanking bool
	// MinCostLogical forces Min-Cost logical UDF binding even in EVA
	// mode (the Fig. 10 baselines).
	MinCostLogical bool
	// FuzzyReuse enables the §6 extension: scalar UDF results keyed by
	// bounding boxes are reused across detector models when boxes for
	// the same object nearly coincide. Approximate by construction.
	FuzzyReuse bool
	// QueryDeadline bounds each query's *simulated* execution time;
	// a query whose virtual-clock charges exceed the budget aborts
	// with ErrDeadlineExceeded. Zero means unlimited.
	QueryDeadline time.Duration
	// Workers enables the parallel pipelined executor: scan, filter
	// and apply stages run concurrently behind bounded channels, and
	// UDF invocations within a batch evaluate across a worker pool of
	// this size. 0 or 1 runs the classic serial engine. Results,
	// optimizer reports and simulated-time totals are byte-identical
	// at every setting; only wall-clock time changes. This holds under
	// fault injection and ModeFunCache too: fault decisions are keyed
	// by call identity rather than draw order, so the injected
	// schedule — and every downstream retry, breaker trip and
	// degradation — replays identically at any worker count (runs with
	// an injector or a deadline do skip pipeline stages, keeping only
	// the apply worker pool, so aborts cannot charge prefetched work).
	Workers int
	// MaxConcurrent bounds the number of queries executing at once
	// across the System and all of its Sessions. 0 disables admission
	// control entirely (unlimited, no queueing, no shedding).
	MaxConcurrent int
	// AdmissionQueueDepth bounds how many queries may wait for a
	// concurrency token when MaxConcurrent is saturated; a query
	// arriving to a full queue is shed immediately with ErrOverloaded.
	// 0 means shed as soon as MaxConcurrent is reached.
	AdmissionQueueDepth int
	// QueueTimeout is the *virtual-clock* wait budget of a queued
	// query: the admission clock advances by each finishing query's
	// simulated cost, and a waiter whose budget elapses is shed with
	// ErrQueueTimeout. 0 means queued queries time out at the next
	// query completion.
	QueueTimeout time.Duration
	// MemoryBudget caps each query's estimated materialized bytes
	// (scan batches in flight, sort buffers, view-append staging). The
	// executor degrades first — halves scan batches, flushes view
	// staging early — and aborts with ErrMemoryBudget only when the
	// floor still does not fit. 0 means unlimited.
	MemoryBudget int64
	// DisablePooling turns off the pooled columnar batch lifecycle
	// (DESIGN.md §13): every operator allocates fresh batches instead
	// of recycling them through the engine's BatchPool. Results are
	// byte-identical either way; the knob exists for the differential
	// suite and for allocation-profiling comparisons.
	DisablePooling bool
	// ScrubInterval enables the background view scrubber (DESIGN.md
	// §15) with this *virtual-time* cadence: whenever at least this
	// much simulated time has elapsed since the last pass, the next
	// statement completion triggers a full checksum re-verification of
	// every materialized view (quarantining corrupt records for
	// symbolic repair). Under admission-control saturation the cadence
	// degrades (doubles, bounded at 8×) instead of competing with
	// queries. 0 disables the scrubber; System.Scrub always works.
	ScrubInterval time.Duration
	// DiskBudgetBytes caps the total on-disk bytes of every durable
	// artifact — view logs and their sidecars, ingest watermark and
	// checkpoint logs (DESIGN.md §16). When an append does not fit, the
	// engine degrades along the reclaim ladder (compact fragmented
	// logs, then evict whole cold views, lowest benefit first) and
	// retries; only when nothing evictable remains does the query fail
	// with ErrDiskBudget. Evicted views re-materialize automatically
	// through the ordinary optimizer path on the next query that needs
	// them. 0 means unlimited (usage still tracked; see StorageStats).
	DiskBudgetBytes int64
	// EvictInterval enables the background evictor with this
	// *virtual-time* cadence: whenever the disk budget sits above its
	// high-water mark (90%), the next due pass reclaims down to 70%,
	// smoothing disk pressure out of the append hot path. 0 disables
	// background eviction; the synchronous evict-retry path still runs.
	EvictInterval time.Duration
}

// ErrDeadlineExceeded is returned (wrapped) by Exec when a query
// exhausts Config.QueryDeadline; test with errors.Is.
var ErrDeadlineExceeded = exec.ErrDeadlineExceeded

// Typed serving-layer errors; test with errors.Is.
var (
	// ErrClosed is returned by Exec on a closed System or Session.
	ErrClosed = errors.New("eva: system closed")
	// ErrOverloaded is returned when the admission queue is full: the
	// query was shed immediately, nothing executed.
	ErrOverloaded = server.ErrOverloaded
	// ErrQueueTimeout is returned when a queued query's virtual-clock
	// wait budget elapsed before a concurrency token freed up.
	ErrQueueTimeout = server.ErrQueueTimeout
	// ErrMemoryBudget is returned (wrapped) when a query exceeds
	// Config.MemoryBudget even after degradation.
	ErrMemoryBudget = server.ErrMemoryBudget
	// ErrDiskBudget is returned (wrapped) when a durable write exceeds
	// Config.DiskBudgetBytes even after the eviction ladder ran dry.
	ErrDiskBudget = storage.ErrDiskBudget
)

// AdmissionStats is a snapshot of admission-control outcomes:
// admitted/shed counts and virtual queue-wait percentiles.
type AdmissionStats = server.Stats

// Result is the outcome of executing one statement.
type Result struct {
	// Rows holds the result rows (possibly empty for DDL).
	Rows *Batch
	// PlanText is the physical plan, for EXPLAIN-style inspection.
	PlanText string
	// Report is the optimizer's reuse analysis for SELECTs.
	Report OptimizerReport
	// Breakdown is the simulated time spent by this statement.
	Breakdown Breakdown
	// SimTime is Breakdown.Total().
	SimTime time.Duration
	// WallTime is the real execution time.
	WallTime time.Duration
}

// System is an EVA instance: the public facade over the semantic reuse
// engine of internal/core. One System serves any number of concurrent
// Sessions (see NewSession); queries from the System itself and from
// every Session pass the same admission controller.
type System struct {
	cfg     Config
	tempDir string

	eng   *core.Engine
	store *storage.Engine
	ctl   *server.Controller // nil when admission control is off
	// scrubber is the background view-verification loop; nil when
	// Config.ScrubInterval is 0.
	scrubber *storage.Scrubber
	// evictor is the background disk-pressure reclaim loop; nil when
	// Config.EvictInterval is 0.
	evictor *storage.Scrubber

	// qmu is the lifecycle lock: every executing statement holds it
	// for reading, Close takes it for writing to drain in-flight
	// queries before tearing state down.
	qmu sync.RWMutex
	// closed flips once; statements arriving after see ErrClosed.
	// guarded by qmu.
	closed bool

	closeOnce sync.Once
	closeErr  error

	recMu sync.Mutex
	// rec is the HashStash recycler graph, swapped on DropViews.
	// guarded by recMu.
	rec *baselines.Recycler

	smu sync.Mutex
	// streams tracks live ingest streams so Close drains them before
	// tearing storage down. guarded by smu.
	streams []*Stream

	repairMu sync.Mutex
	// repairs holds the pending symbolic repair task per quarantined
	// view, queued by scrub detections and drained by System.Repair.
	// guarded by repairMu.
	repairs map[string]repairTask
}

// Internal accessors keeping the method bodies readable.
func (s *System) cat() *catalog.Catalog  { return s.eng.Catalog }
func (s *System) rt() *udf.Runtime       { return s.eng.Runtime }
func (s *System) mgr() *udf.Manager      { return s.eng.Manager }
func (s *System) clock() *simclock.Clock { return s.eng.Clock }

// Open creates a System.
func Open(cfg Config) (*System, error) {
	if cfg.Mode == "" {
		cfg.Mode = ModeEVA
	}
	dir := cfg.Dir
	temp := ""
	if dir == "" {
		d, err := os.MkdirTemp("", "eva-*")
		if err != nil {
			return nil, err
		}
		dir, temp = d, d
	}
	store, err := storage.Open(dir)
	if err != nil {
		return nil, err
	}
	eng := core.New(store, cfg.BatchSize)
	eng.Runtime.SetFunCache(cfg.Mode == ModeFunCache)
	eng.Deadline = cfg.QueryDeadline
	eng.Workers = cfg.Workers
	if !cfg.DisablePooling {
		eng.Pool = types.NewBatchPool()
	}
	s := &System{
		cfg: cfg, tempDir: temp,
		eng:   eng,
		store: store,
		rec:   baselines.NewRecycler(),
	}
	if cfg.DiskBudgetBytes > 0 {
		store.SetBudget(storage.NewDiskBudget(cfg.DiskBudgetBytes))
	}
	// The eviction policy is installed unconditionally: injected
	// disk:full faults drive the reclaim ladder even without a budget,
	// and the upcall must retract the evicted view's predicate either
	// way.
	store.SetEvictPolicy(s.benefitRank, s.viewEvicted)
	store.SetRetryCharge(func(attempt int) {
		s.clock().Charge(simclock.CatRetry, costs.RetryBackoff(attempt))
	})
	if cfg.MaxConcurrent > 0 {
		s.ctl = server.NewController(server.Config{
			MaxConcurrent: cfg.MaxConcurrent,
			QueueDepth:    cfg.AdmissionQueueDepth,
			QueueTimeout:  cfg.QueueTimeout,
		})
	}
	if cfg.ScrubInterval > 0 {
		// The scrubber runs on the engine's virtual clock: statement
		// completions nudge it (ExecStmt), it checks whether a full
		// cadence has elapsed, and a due pass quiesces statements
		// (qmu writer) before re-verifying every view.
		s.scrubber = storage.NewScrubber(storage.ScrubConfig{
			Interval: cfg.ScrubInterval,
			Now:      s.clock().Total,
			Busy:     s.ctl.Busy,
			Pass: func() {
				s.qmu.Lock()
				defer s.qmu.Unlock()
				if s.closed {
					return
				}
				s.scrubPassLocked()
			},
		})
	}
	if cfg.EvictInterval > 0 {
		// The background evictor reuses the scrubber chassis: virtual
		// cadence, statement-completion nudges, busy-aware degradation.
		// Its pass quiesces statements so an eviction never races an
		// executing query's view snapshot.
		s.evictor = storage.NewScrubber(storage.ScrubConfig{
			Interval: cfg.EvictInterval,
			Now:      s.clock().Total,
			Busy:     s.ctl.Busy,
			Pass: func() {
				s.qmu.Lock()
				defer s.qmu.Unlock()
				if s.closed {
					return
				}
				s.store.ReclaimOverHighWater()
			},
		})
	}
	return s, nil
}

// Close drains in-flight queries, closes the storage engine, and
// removes the storage directory when it was temporary. Idempotent and
// safe to call concurrently with executing statements: statements that
// began before Close complete normally, statements arriving after fail
// with ErrClosed.
func (s *System) Close() error {
	s.closeOnce.Do(func() {
		s.markClosed()
		// The scrubber stops after markClosed so an in-flight pass
		// either finished before the flag flipped or sees closed and
		// returns; its goroutine is joined before storage goes away.
		if s.scrubber != nil {
			s.scrubber.Close()
		}
		if s.evictor != nil {
			s.evictor.Close()
		}
		err := s.closeStreams()
		if serr := s.store.Close(); err == nil {
			err = serr
		}
		if s.tempDir != "" {
			if rerr := os.RemoveAll(s.tempDir); err == nil {
				err = rerr
			}
		}
		s.closeErr = err
	})
	return s.closeErr
}

// markClosed waits for every in-flight statement (they hold qmu for
// reading) and flips the closed flag.
func (s *System) markClosed() {
	s.qmu.Lock()
	defer s.qmu.Unlock()
	s.closed = true
}

// optimizerMode maps the system mode onto optimizer knobs.
func (s *System) optimizerMode() optimizer.Mode {
	var m optimizer.Mode
	switch s.cfg.Mode {
	case ModeEVA:
		m = optimizer.EVAMode()
	case ModeHashStash:
		m = optimizer.Mode{Reuse: true, ReuseScalarUDFs: false, Ranking: optimizer.RankCanonical, Logical: optimizer.LogicalMinCost}
	case ModeFunCache, ModeNoReuse:
		m = optimizer.NoReuseMode()
	default:
		m = optimizer.EVAMode()
	}
	m.DisableReduction = s.cfg.DisableReduction
	m.FuzzyBBox = s.cfg.FuzzyReuse
	if s.cfg.CanonicalRanking {
		m.Ranking = optimizer.RankCanonical
	}
	if s.cfg.MinCostLogical {
		m.Logical = optimizer.LogicalMinCost
		if s.cfg.Mode == ModeNoReuse {
			m.Logical = optimizer.LogicalMinCostNoReuse
		}
	}
	return m
}

// ViewRows reports the number of materialized result rows per view —
// the convergence metric of Fig. 8(b). The snapshot is taken under one
// engine lock, so it is safe (and consistent in its name set) against
// queries creating views concurrently.
func (s *System) ViewRows() map[string]int {
	return s.store.ViewRowCounts()
}

// AdmissionStats snapshots the admission controller's outcomes. Zero
// when admission control is off.
func (s *System) AdmissionStats() AdmissionStats {
	return s.ctl.Stats()
}

// Exec parses and executes one EVA-QL statement.
func (s *System) Exec(sql string) (*Result, error) {
	stmt, err := parser.Parse(sql)
	if err != nil {
		return nil, err
	}
	return s.ExecStmt(stmt)
}

// ExecScript executes a semicolon-separated script, returning the last
// statement's result.
func (s *System) ExecScript(sql string) (*Result, error) {
	stmts, err := parser.ParseAll(sql)
	if err != nil {
		return nil, err
	}
	var last *Result
	for _, stmt := range stmts {
		last, err = s.ExecStmt(stmt)
		if err != nil {
			return nil, err
		}
	}
	return last, nil
}

// ExecStmt executes one parsed statement. Under admission control
// (Config.MaxConcurrent) the statement first acquires a concurrency
// token — possibly shedding with ErrOverloaded or ErrQueueTimeout —
// and its simulated cost advances the admission clock on completion.
func (s *System) ExecStmt(stmt parser.Statement) (*Result, error) {
	s.qmu.RLock()
	defer s.qmu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	g, err := s.ctl.Admit()
	if err != nil {
		return nil, err
	}
	start := time.Now()
	snap := s.clock().Snapshot()
	res, err := s.dispatch(stmt)
	bd := s.clock().Since(snap)
	g.Release(bd.Total())
	if s.scrubber != nil {
		// Virtual time just advanced; let the scrubber check whether a
		// pass is due (non-blocking — the pass itself waits for qmu,
		// which this statement still holds for reading, so it can only
		// start once in-flight statements drain).
		s.scrubber.Nudge()
	}
	if s.evictor != nil {
		s.evictor.Nudge()
	}
	if err != nil {
		return nil, err
	}
	if res == nil {
		res = &Result{}
	}
	res.Breakdown = bd
	res.SimTime = bd.Total()
	res.WallTime = time.Since(start)
	return res, nil
}

// dispatch routes one parsed statement to its handler. Shared by the
// System path (global clock) and, for non-SELECT statements, by the
// Session path.
func (s *System) dispatch(stmt parser.Statement) (*Result, error) {
	switch st := stmt.(type) {
	case *parser.SelectStmt:
		return s.execSelect(st)
	case *parser.LoadStmt:
		return nil, s.LoadVideo(st.Table, st.Dataset)
	case *parser.CreateUDFStmt:
		return nil, s.createUDF(st)
	case *parser.ShowStmt:
		return s.execShow(st)
	case *parser.ExplainStmt:
		return s.execExplain(st)
	case *parser.DropViewsStmt:
		return nil, s.DropViews()
	default:
		return nil, fmt.Errorf("eva: unsupported statement %T", stmt)
	}
}

func (s *System) execSelect(stmt *parser.SelectStmt) (*Result, error) {
	mode := s.optimizerMode()
	table := strings.ToLower(stmt.From)
	if s.cfg.Mode == ModeHashStash {
		// HashStash: the recycler graph sub-tree-matches the query's
		// apply operator against previously materialized outputs; the
		// coverage callback implements its all-or-nothing reuse rule.
		mode.TableCovered = func(udfName string, lo, hi int64) bool {
			return s.recCovered(recyclerKey(table, udfName), lo, hi)
		}
	}
	var (
		out *core.Outcome
		err error
	)
	if s.cfg.MemoryBudget > 0 {
		out, err = s.eng.ExecuteWith(stmt, mode, core.ExecOpts{
			Budget: server.NewMemBudget(s.cfg.MemoryBudget),
		})
	} else {
		out, err = s.eng.Execute(stmt, mode)
	}
	if err != nil {
		return nil, err
	}
	if s.cfg.Mode == ModeHashStash && out.Report.DetectorEval != "" {
		// Register the freshly materialized operator output.
		s.recAdd(recyclerKey(table, out.Report.DetectorEval), out.Report.ScanLo, out.Report.ScanHi)
	}
	return &Result{Rows: out.Rows, PlanText: plan.Explain(out.Plan), Report: out.Report}, nil
}

func recyclerKey(table, udfName string) string {
	return "apply:" + strings.ToLower(udfName) + "@scan:" + table
}

// recCovered, recAdd and recReset guard the HashStash recycler, which
// DropViews swaps out from under concurrent queries.
func (s *System) recCovered(key string, lo, hi int64) bool {
	s.recMu.Lock()
	defer s.recMu.Unlock()
	return s.rec.Covered(key, lo, hi)
}

func (s *System) recAdd(key string, lo, hi int64) {
	s.recMu.Lock()
	defer s.recMu.Unlock()
	s.rec.Add(key, lo, hi)
}

func (s *System) recReset() {
	s.recMu.Lock()
	defer s.recMu.Unlock()
	s.rec = baselines.NewRecycler()
}

// execExplain optimizes without mutating reuse state; with ANALYZE it
// also executes the plan (normally, with commits) and reports
// per-operator statistics.
func (s *System) execExplain(st *parser.ExplainStmt) (*Result, error) {
	mode := s.optimizerMode()
	var (
		text   string
		report optimizer.Report
	)
	if st.Analyze {
		out, err := s.eng.ExecuteTraced(st.Select, mode)
		if err != nil {
			return nil, err
		}
		text, report = out.Trace.String(), out.Report
	} else {
		optRes, err := s.eng.Plan(st.Select, mode)
		if err != nil {
			return nil, err
		}
		text, report = plan.Explain(optRes.Plan), optRes.Report
	}
	sch := types.MustSchema(types.Column{Name: "plan", Kind: types.KindString})
	rows := types.NewBatch(sch)
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		rows.MustAppendRow(types.NewString(line))
	}
	return &Result{Rows: rows, PlanText: text, Report: report}, nil
}

// DropViews discards all materialized UDF results and resets the
// aggregated predicates — a clean reuse slate.
func (s *System) DropViews() error {
	if err := s.store.DropViews(); err != nil {
		return err
	}
	s.mgr().Reset()
	s.recReset()
	return nil
}

// LoadVideo registers a built-in synthetic dataset as a video table.
func (s *System) LoadVideo(table, dataset string) error {
	ds, err := vision.DatasetByName(dataset)
	if err != nil {
		return err
	}
	return s.LoadDataset(table, ds)
}

// LoadDataset registers an arbitrary dataset descriptor as a table.
func (s *System) LoadDataset(table string, ds vision.Dataset) error {
	if _, err := s.cat().RegisterVideo(table, ds); err != nil {
		return err
	}
	if _, err := s.store.CreateVideo(table, ds); err != nil {
		return err
	}
	return nil
}

// createUDF registers a UDF from a CREATE UDF statement (Listing 2).
func (s *System) createUDF(st *parser.CreateUDFStmt) error {
	if s.cat().HasUDF(st.Name) && !st.OrReplace {
		return fmt.Errorf("eva: UDF %q already exists (use CREATE OR REPLACE)", st.Name)
	}
	var outs types.Schema
	for _, c := range st.Outputs {
		outs = append(outs, types.Column{Name: c.Name, Kind: c.Kind})
	}
	var inputs []string
	for _, c := range st.Inputs {
		inputs = append(inputs, c.Name)
	}
	acc := vision.AccuracyHigh
	if a, ok := st.Properties["ACCURACY"]; ok {
		lvl, err := vision.ParseAccuracy(a)
		if err != nil {
			return err
		}
		acc = lvl
	}
	cost := 10 * time.Millisecond
	if c, ok := st.Properties["COST_MS"]; ok {
		var ms float64
		if _, err := fmt.Sscanf(c, "%f", &ms); err != nil {
			return fmt.Errorf("eva: bad COST_MS %q", c)
		}
		cost = time.Duration(ms * float64(time.Millisecond))
	}
	logical := st.LogicalType
	if logical == "" {
		logical = st.Name
	}
	kind := catalog.KindScalarUDF
	if len(outs) > 1 {
		kind = catalog.KindTableUDF
	}
	return s.cat().RegisterUDF(&catalog.UDF{
		Name: st.Name, Kind: kind, LogicalType: logical, Accuracy: acc,
		Cost: cost, Inputs: inputs, Outputs: outs, Impl: st.Impl,
		Expensive: cost >= 500*time.Microsecond,
	})
}

func (s *System) execShow(st *parser.ShowStmt) (*Result, error) {
	sch := types.MustSchema(types.Column{Name: "name", Kind: types.KindString})
	b := types.NewBatch(sch)
	switch st.What {
	case "TABLES":
		for _, n := range s.cat().Tables() {
			b.MustAppendRow(types.NewString(n))
		}
	case "VIEWS":
		for _, n := range s.store.Views() {
			b.MustAppendRow(types.NewString(n))
		}
	case "UDFS":
		for _, n := range []string{vision.YoloTiny, vision.FasterRCNN50, vision.FasterRCNN101, "CarType", "ColorDet", "License", "VehicleFilter", "Area"} {
			if s.cat().HasUDF(n) {
				b.MustAppendRow(types.NewString(n))
			}
		}
	default:
		return nil, fmt.Errorf("eva: SHOW %s not supported (TABLES, VIEWS, UDFS)", st.What)
	}
	return &Result{Rows: b}, nil
}

// RegisterScalarImpl installs a Go implementation for a CREATE'd UDF.
func (s *System) RegisterScalarImpl(name string, fn ScalarFunc) {
	s.rt().RegisterImpl(name, fn)
}

// InjectFaults installs a deterministic fault injector across the
// engine's fault sites — UDF evaluation, view-log writes, and the
// executor's deadline checks (nil disables injection). Resilience
// sweeps and in-module tools use it; see internal/faults.
func (s *System) InjectFaults(inj *faults.Injector) {
	s.eng.SetFaults(inj)
}

// EvalScalarUDF evaluates a scalar UDF directly (outside any query),
// charging its profiled cost. Custom UDF implementations may use it to
// compose builtin models.
func (s *System) EvalScalarUDF(name string, args []Datum) (Datum, error) {
	return s.rt().EvalScalar(name, args)
}

// Datum constructors re-exported for custom UDF implementations.
var (
	// NewBool wraps a boolean datum.
	NewBool = types.NewBool
	// NewInt wraps an integer datum.
	NewInt = types.NewInt
	// NewFloat wraps a float datum.
	NewFloat = types.NewFloat
	// NewString wraps a string datum.
	NewString = types.NewString
	// NewBytes wraps a byte-slice datum.
	NewBytes = types.NewBytes
)

// Recycle returns a Result's row batch to the engine's batch pool once
// the caller is done reading it. Optional: callers that skip it leave
// the batch to the garbage collector, which is always safe. After
// Recycle the batch must not be read again.
func (s *System) Recycle(b *Batch) { s.eng.Recycle(b) }

// PoolStats snapshots the engine's batch-pool counters. Zero when
// pooling is disabled.
func (s *System) PoolStats() PoolStats {
	if s.eng.Pool == nil {
		return PoolStats{}
	}
	return s.eng.Pool.Stats()
}

// HitPercentage returns Table 2's metric for the work so far.
func (s *System) HitPercentage() float64 { return s.rt().HitPercentage() }

// UDFCounters returns per-UDF demand/reuse statistics (Table 3).
func (s *System) UDFCounters() map[string]UDFStats { return s.rt().CounterSnapshot() }

// ViewFootprint returns the total on-disk bytes of materialized views
// (§5.2 storage overhead).
func (s *System) ViewFootprint() int64 { return s.store.TotalViewFootprint() }

// DatasetVirtualBytes returns the simulated decoded size of a loaded
// video table.
func (s *System) DatasetVirtualBytes(table string) (int64, error) {
	v, err := s.store.Video(table)
	if err != nil {
		return 0, err
	}
	return v.VirtualBytes(), nil
}

// SimulatedTime returns the total simulated time charged so far.
func (s *System) SimulatedTime() time.Duration { return s.clock().Total() }

// SimulatedBreakdown returns the per-category simulated time so far.
func (s *System) SimulatedBreakdown() Breakdown {
	return s.clock().Since(simclock.Snapshot{})
}

// ResetMetrics clears counters and the clock but keeps materialized
// state (used between measurement phases). It waits out in-flight
// queries, so the clock and the UDF counters reset as one atomic
// point — a reset can never land between a query's clock charges and
// its counter updates.
func (s *System) ResetMetrics() {
	s.qmu.Lock()
	defer s.qmu.Unlock()
	s.clock().Reset()
	s.rt().ResetCounters()
}

// Format renders a result batch as an aligned table.
func Format(b *Batch) string { return exec.FormatBatch(b) }

// Datasets lists the built-in dataset names.
func Datasets() []string {
	var out []string
	for n := range vision.Datasets() {
		out = append(out, n)
	}
	return out
}
