package eva

import (
	"strings"
	"sync"
	"time"

	"eva/internal/core"
	"eva/internal/faults"
	"eva/internal/parser"
	"eva/internal/plan"
	"eva/internal/server"
	"eva/internal/simclock"
	"eva/internal/udf"
)

// Session is one client's view of a shared System. Sessions run
// concurrently against the same catalog, UDF runtime and materialized
// views; each session carries its own virtual clock, its own circuit
// breakers and fault schedule (a udf.Domain), and a fresh per-query
// memory budget. Concurrent sessions share views safely: a key being
// evaluated by one session is claimed, so another session needing it
// waits and then reuses the materialized rows instead of recomputing
// them.
//
// A Session is owned by one client goroutine; its methods serialize
// against each other but not against other sessions. All sessions
// pass the System's admission controller.
type Session struct {
	sys    *System
	clock  *simclock.Clock
	domain *udf.Domain

	mu sync.Mutex
	// inj is this session's deterministic fault injector. guarded by mu.
	inj *faults.Injector
	// closed rejects further statements with ErrClosed. guarded by mu.
	closed bool
}

// NewSession opens a session over the System. Sessions are cheap:
// closing one releases no shared state, and any number may be open.
func (s *System) NewSession() *Session {
	clock := &simclock.Clock{}
	return &Session{
		sys:    s,
		clock:  clock,
		domain: s.rt().NewDomain(clock),
	}
}

// InjectFaults installs this session's deterministic fault injector:
// its UDF evaluations and view-log writes draw from this schedule
// (other sessions are unaffected). nil disables injection.
func (sess *Session) InjectFaults(inj *faults.Injector) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	sess.inj = inj
	sess.domain.SetInjector(inj)
}

// injector returns the session injector under the session lock.
func (sess *Session) injector() *faults.Injector {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	return sess.inj
}

// Close marks the session closed; subsequent statements fail with
// ErrClosed. It does not affect the System or other sessions.
func (sess *Session) Close() error {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	sess.closed = true
	return nil
}

// begin gates one statement: session must be open, system must be
// open, and the admission controller must grant a token. On success
// the caller holds the system's query read-lock and the grant.
func (sess *Session) begin() (*server.Grant, error) {
	sess.mu.Lock()
	closed := sess.closed
	sess.mu.Unlock()
	if closed {
		return nil, ErrClosed
	}
	sess.sys.qmu.RLock()
	if sess.sys.closed {
		sess.sys.qmu.RUnlock()
		return nil, ErrClosed
	}
	g, err := sess.sys.ctl.Admit()
	if err != nil {
		sess.sys.qmu.RUnlock()
		return nil, err
	}
	return g, nil
}

// Exec parses and executes one EVA-QL statement in this session.
func (sess *Session) Exec(sql string) (*Result, error) {
	stmt, err := parser.Parse(sql)
	if err != nil {
		return nil, err
	}
	return sess.ExecStmt(stmt)
}

// ExecScript executes a semicolon-separated script, returning the
// last statement's result.
func (sess *Session) ExecScript(sql string) (*Result, error) {
	stmts, err := parser.ParseAll(sql)
	if err != nil {
		return nil, err
	}
	var last *Result
	for _, stmt := range stmts {
		last, err = sess.ExecStmt(stmt)
		if err != nil {
			return nil, err
		}
	}
	return last, nil
}

// ExecStmt executes one parsed statement in this session: admission
// first (ErrOverloaded / ErrQueueTimeout shed without executing),
// then execution charged to the session clock, whose per-statement
// total both feeds the admission clock and is folded into the
// System's global clock (sums commute, so the global totals are
// schedule-independent).
func (sess *Session) ExecStmt(stmt parser.Statement) (*Result, error) {
	g, err := sess.begin()
	if err != nil {
		return nil, err
	}
	defer sess.sys.qmu.RUnlock()
	start := time.Now()
	snap := sess.clock.Snapshot()
	res, err := sess.dispatch(stmt)
	bd := sess.clock.Since(snap)
	g.Release(bd.Total())
	sess.sys.mergeBreakdown(bd)
	if err != nil {
		return nil, err
	}
	if res == nil {
		res = &Result{}
	}
	res.Breakdown = bd
	res.SimTime = bd.Total()
	res.WallTime = time.Since(start)
	return res, nil
}

// dispatch routes SELECTs through the session execution path; every
// other statement kind acts on shared state and reuses the System's
// handlers.
func (sess *Session) dispatch(stmt parser.Statement) (*Result, error) {
	if st, ok := stmt.(*parser.SelectStmt); ok {
		return sess.execSelect(st)
	}
	return sess.sys.dispatch(stmt)
}

func (sess *Session) execSelect(stmt *parser.SelectStmt) (*Result, error) {
	s := sess.sys
	mode := s.optimizerMode()
	table := strings.ToLower(stmt.From)
	if s.cfg.Mode == ModeHashStash {
		mode.TableCovered = func(udfName string, lo, hi int64) bool {
			return s.recCovered(recyclerKey(table, udfName), lo, hi)
		}
	}
	out, err := s.eng.ExecuteWith(stmt, mode, core.ExecOpts{
		Clock:    sess.clock,
		Domain:   sess.domain,
		Faults:   sess.injector(),
		Budget:   server.NewMemBudget(s.cfg.MemoryBudget),
		Sessions: true,
	})
	if err != nil {
		return nil, err
	}
	if s.cfg.Mode == ModeHashStash && out.Report.DetectorEval != "" {
		s.recAdd(recyclerKey(table, out.Report.DetectorEval), out.Report.ScanLo, out.Report.ScanHi)
	}
	return &Result{Rows: out.Rows, PlanText: plan.Explain(out.Plan), Report: out.Report}, nil
}

// SimulatedTime returns the session clock's total.
func (sess *Session) SimulatedTime() time.Duration { return sess.clock.Total() }

// mergeBreakdown folds one session statement's charges into the
// global clock, category by category. Charges are sums, so concurrent
// merges commute and System.SimulatedTime stays the sum of all work
// ever done, regardless of session interleaving.
func (s *System) mergeBreakdown(bd Breakdown) {
	for cat, d := range bd {
		s.clock().Charge(cat, d)
	}
}
