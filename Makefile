GO ?= go

.PHONY: build test race lint check bench faults-stress differential chaos server-stress ingest-chaos cover fuzz-smoke alloc pool-safety scrub evict

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# lint runs the project-specific static-analysis suite (exhaustive
# switches over sealed types, guarded-by locking, panic-free query
# path, error discipline). See DESIGN.md "Static analysis & invariants".
lint:
	$(GO) run ./cmd/evalint ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...

# faults-stress exercises the resilience machinery: the 24-seed fault
# sweep and the crash-recovery kill-point matrix under the race
# detector, then short fuzz smokes over the view-log replay and datum
# decoders. See DESIGN.md "Failure model & resilience".
faults-stress:
	$(GO) test -race -run 'TestFaultSweep|TestQueryDeadlineConfig' .
	$(GO) test -race -run 'TestViewCrashRecovery|TestViewAppendRollback|TestViewChecksum' ./internal/storage/
	$(GO) test -run=^$$ -fuzz=FuzzViewReplay -fuzztime=5s ./internal/storage/
	$(GO) test -run=^$$ -fuzz=FuzzDecodeDatum -fuzztime=5s ./internal/types/

# differential runs the serial-vs-parallel harness under the race
# detector: every testdata script at Workers ∈ {1,2,8} × BatchSize ∈
# {1,7,256} must produce byte-identical results, reports and virtual
# time, and the pooled-batch lifecycle must byte-match unpooled
# execution at every worker count. See DESIGN.md "Parallel execution"
# and "Pooled batch lifecycle".
differential:
	$(GO) test -race -run 'TestDifferentialMatrix|TestPoolingDifferential' .

# chaos runs the fault-injected differential matrix under the race
# detector: every testdata script × 24 seeded fault schedules (four
# regimes) × Workers ∈ {1,2,8} must produce byte-identical digests —
# results, error texts, reports, views, fault event logs and virtual
# time — plus the FunCache parallel differential and fault smoke.
# See DESIGN.md "Failure model & resilience".
chaos:
	$(GO) test -race -run 'TestChaosDifferentialMatrix|TestFunCacheParallelDifferential|TestFunCacheFaultSmoke|TestChaosPoolingDifferential|TestFunCachePoolingDifferential' .

# server-stress runs the serving layer's verification under the race
# detector: the multi-session chaos matrix (every testdata script ×
# seeded fault regimes × Workers ∈ {1,2,8}, N concurrent sessions each
# byte-matching its solo run), the shared-view singleflight race, the
# typed admission/budget error paths, draining Close, and cross-session
# reuse determinism. See DESIGN.md "Multi-session serving layer".
server-stress:
	$(GO) test -race -run 'TestMultiSessionChaosMatrix|TestSharedViewSingleflight|TestAdmissionOverloadTyped|TestAdmissionQueueTimeoutTyped|TestMemoryBudgetTyped|TestCloseDrainsInFlight|TestCrossSessionReuseDeterminism' .
	$(GO) test -race ./internal/server/

# ingest-chaos runs the streaming-ingestion kill-point matrix under
# the race detector: every standing-query script under
# testdata/standing × 18 seeded kill-points (a crash at the k-th live
# append, checkpoint write or alert notification) × Workers ∈ {1,2,8};
# every killed-and-resumed run must byte-match the uninterrupted
# baseline's standing-query state (exactly-once replay from the
# checkpoint), and each cell's fault schedule must be identical across
# worker counts. Also runs the ingest unit suite (checkpoint log fuzz,
# backpressure ordering, goroutine-leak) under the race detector.
# See DESIGN.md "Streaming ingestion".
ingest-chaos:
	$(GO) test -race -run TestIngestChaos .
	$(GO) test -race ./internal/ingest/

# cover enforces a coverage floor on the packages at the heart of the
# correctness argument: the executor (parallel merge, pipelining,
# view maintenance), the symbolic algebra (Algorithm 1), and the
# static-analysis suite that machine-checks the engine's invariants.
COVER_FLOOR ?= 85
cover:
	@for pkg in ./internal/exec ./internal/symbolic ./internal/lint; do \
		out=$$($(GO) test -cover $$pkg | tail -1); \
		pct=$$(echo "$$out" | sed -n 's/.*coverage: \([0-9.]*\)%.*/\1/p'); \
		if [ -z "$$pct" ]; then echo "no coverage for $$pkg: $$out"; exit 1; fi; \
		ok=$$(awk -v p="$$pct" -v f="$(COVER_FLOOR)" 'BEGIN{print (p>=f)?1:0}'); \
		if [ "$$ok" != 1 ]; then \
			echo "coverage $$pct% of $$pkg below floor $(COVER_FLOOR)%"; exit 1; fi; \
		echo "coverage $$pkg: $$pct% (floor $(COVER_FLOOR)%)"; \
	done

# fuzz-smoke gives the property-based targets a short budget: the
# Algorithm 1 reducer against its truth-table oracle, the fault
# injector's site matcher against an independent reference, and the
# batch-pool lifecycle against a non-pooled oracle (with poisoning on,
# so use-after-Put aliasing trips immediately).
fuzz-smoke:
	$(GO) test -run=^$$ -fuzz=FuzzReduce -fuzztime=5s ./internal/symbolic/
	$(GO) test -run=^$$ -fuzz=FuzzSiteMatch -fuzztime=5s ./internal/faults/
	$(GO) test -run=^$$ -fuzz=FuzzBatchPoolLifecycle -fuzztime=5s ./internal/types/

# alloc is the allocation-regression gate on the pooled hot path
# (DESIGN.md "Pooled batch lifecycle"): the warm view-served
# scan→filter→apply pipeline must stay at ~0 allocs/row (measured as a
# marginal between two scan lengths), and the committed
# BENCH_alloc.json baseline must satisfy the same gate with all
# pooled/unpooled matrix digests identical. Runs without -race: the
# race detector perturbs allocation counts (the test skips itself).
alloc:
	$(GO) test -run 'TestWarmPathAllocsPerRow|TestAllocBaselineCommitted' .

# scrub runs the self-healing view storage matrix under the race
# detector: every view-building testdata script × corruption sites
# (header, mid-record, tail, clean-sidecar) × Workers ∈ {1,2,8} must
# scrub, symbolically repair and re-converge to the byte-identical
# uncorrupted digests; crash kill-points during repair, re-append and
# compaction commit must leave the view recoverable; plus the storage
# layer's Verify/Scrubber/salvage/compaction unit suite. See
# DESIGN.md "Self-healing view storage".
scrub:
	$(GO) test -race -run 'TestScrubCorruptionMatrix|TestRepairCrashKillPoints|TestRepairRecomputesInteriorHole|TestBackgroundScrubberHeals' .
	$(GO) test -race -run 'TestVerify|TestScrubber|TestSalvage|TestCompact' ./internal/storage/

# evict runs the disk-pressure survival matrix under the race
# detector: view-building testdata scripts × storage-budget levels ×
# injected ENOSPC schedules × Workers ∈ {1,2,8} must answer
# baseline-identical rows with no surviving tombstones; plus the
# storage layer's budget/eviction/log-retention unit suite (kill-point
# sweep, evict-retry, tail-log truncation) and the checkpoint
# retention tests. See DESIGN.md "Disk-pressure survival".
evict:
	$(GO) test -race -run TestEvictChaosMatrix .
	$(GO) test -race -run 'TestEvict|TestDiskBudget|TestDiskFull|TestReclaim|TestBudgetDenial|TestWatermarkLogRetention|TestOpenTailLog' ./internal/storage/
	$(GO) test -race -run TestCheckpoint ./internal/ingest/

# pool-safety runs the BatchPool's ownership test suite with poison
# mode compiled in (-tags evadebug): typed double-Put panics, poisoned
# use-after-Put reads, the 8-goroutine stress under the race detector,
# and the whole engine suite with every recycled batch poisoned.
pool-safety:
	$(GO) test -race ./internal/types/
	$(GO) test -tags evadebug ./internal/types/ ./internal/exec/ .

# check is the full verification gate: formatting, vet, the evalint
# suite, a clean build, the test suite under the race detector, the
# serial-vs-parallel differential matrix, the chaos differential
# matrix, the multi-session serving-layer stress, the streaming
# ingest kill-point matrix, the self-healing scrub matrix, the
# disk-pressure evict matrix, the coverage floor, the
# fault-injection stress pass, the allocation
# gate, the pool-safety suite and the fuzz smokes.
check:
	@fmtout=$$(gofmt -l .); if [ -n "$$fmtout" ]; then \
		echo "gofmt needed on:"; echo "$$fmtout"; exit 1; fi
	$(GO) vet ./...
	$(GO) run ./cmd/evalint ./...
	$(GO) build ./...
	$(GO) test -race ./...
	$(MAKE) differential
	$(MAKE) chaos
	$(MAKE) server-stress
	$(MAKE) ingest-chaos
	$(MAKE) scrub
	$(MAKE) evict
	$(MAKE) cover
	$(MAKE) faults-stress
	$(MAKE) alloc
	$(MAKE) pool-safety
	$(MAKE) fuzz-smoke
