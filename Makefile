GO ?= go

.PHONY: build test race lint check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# lint runs the project-specific static-analysis suite (exhaustive
# switches over sealed types, guarded-by locking, panic-free query
# path, error discipline). See DESIGN.md "Static analysis & invariants".
lint:
	$(GO) run ./cmd/evalint ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...

# check is the full verification gate: formatting, vet, the evalint
# suite, a clean build, and the test suite under the race detector.
check:
	@fmtout=$$(gofmt -l .); if [ -n "$$fmtout" ]; then \
		echo "gofmt needed on:"; echo "$$fmtout"; exit 1; fi
	$(GO) vet ./...
	$(GO) run ./cmd/evalint ./...
	$(GO) build ./...
	$(GO) test -race ./...
