GO ?= go

.PHONY: build test race lint check bench faults-stress

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# lint runs the project-specific static-analysis suite (exhaustive
# switches over sealed types, guarded-by locking, panic-free query
# path, error discipline). See DESIGN.md "Static analysis & invariants".
lint:
	$(GO) run ./cmd/evalint ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...

# faults-stress exercises the resilience machinery: the 24-seed fault
# sweep and the crash-recovery kill-point matrix under the race
# detector, then short fuzz smokes over the view-log replay and datum
# decoders. See DESIGN.md "Failure model & resilience".
faults-stress:
	$(GO) test -race -run 'TestFaultSweep|TestQueryDeadlineConfig' .
	$(GO) test -race -run 'TestViewCrashRecovery|TestViewAppendRollback|TestViewChecksum' ./internal/storage/
	$(GO) test -run=^$$ -fuzz=FuzzViewReplay -fuzztime=5s ./internal/storage/
	$(GO) test -run=^$$ -fuzz=FuzzDecodeDatum -fuzztime=5s ./internal/types/

# check is the full verification gate: formatting, vet, the evalint
# suite, a clean build, the test suite under the race detector, and
# the fault-injection stress pass.
check:
	@fmtout=$$(gofmt -l .); if [ -n "$$fmtout" ]; then \
		echo "gofmt needed on:"; echo "$$fmtout"; exit 1; fi
	$(GO) vet ./...
	$(GO) run ./cmd/evalint ./...
	$(GO) build ./...
	$(GO) test -race ./...
	$(MAKE) faults-stress
