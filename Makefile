GO ?= go

.PHONY: build test race lint check bench faults-stress differential chaos server-stress ingest-chaos cover fuzz-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# lint runs the project-specific static-analysis suite (exhaustive
# switches over sealed types, guarded-by locking, panic-free query
# path, error discipline). See DESIGN.md "Static analysis & invariants".
lint:
	$(GO) run ./cmd/evalint ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...

# faults-stress exercises the resilience machinery: the 24-seed fault
# sweep and the crash-recovery kill-point matrix under the race
# detector, then short fuzz smokes over the view-log replay and datum
# decoders. See DESIGN.md "Failure model & resilience".
faults-stress:
	$(GO) test -race -run 'TestFaultSweep|TestQueryDeadlineConfig' .
	$(GO) test -race -run 'TestViewCrashRecovery|TestViewAppendRollback|TestViewChecksum' ./internal/storage/
	$(GO) test -run=^$$ -fuzz=FuzzViewReplay -fuzztime=5s ./internal/storage/
	$(GO) test -run=^$$ -fuzz=FuzzDecodeDatum -fuzztime=5s ./internal/types/

# differential runs the serial-vs-parallel harness under the race
# detector: every testdata script at Workers ∈ {1,2,8} × BatchSize ∈
# {1,7,256} must produce byte-identical results, reports and virtual
# time. See DESIGN.md "Parallel execution".
differential:
	$(GO) test -race -run TestDifferentialMatrix .

# chaos runs the fault-injected differential matrix under the race
# detector: every testdata script × 24 seeded fault schedules (four
# regimes) × Workers ∈ {1,2,8} must produce byte-identical digests —
# results, error texts, reports, views, fault event logs and virtual
# time — plus the FunCache parallel differential and fault smoke.
# See DESIGN.md "Failure model & resilience".
chaos:
	$(GO) test -race -run 'TestChaosDifferentialMatrix|TestFunCacheParallelDifferential|TestFunCacheFaultSmoke' .

# server-stress runs the serving layer's verification under the race
# detector: the multi-session chaos matrix (every testdata script ×
# seeded fault regimes × Workers ∈ {1,2,8}, N concurrent sessions each
# byte-matching its solo run), the shared-view singleflight race, the
# typed admission/budget error paths, draining Close, and cross-session
# reuse determinism. See DESIGN.md "Multi-session serving layer".
server-stress:
	$(GO) test -race -run 'TestMultiSessionChaosMatrix|TestSharedViewSingleflight|TestAdmissionOverloadTyped|TestAdmissionQueueTimeoutTyped|TestMemoryBudgetTyped|TestCloseDrainsInFlight|TestCrossSessionReuseDeterminism' .
	$(GO) test -race ./internal/server/

# ingest-chaos runs the streaming-ingestion kill-point matrix under
# the race detector: every standing-query script under
# testdata/standing × 18 seeded kill-points (a crash at the k-th live
# append, checkpoint write or alert notification) × Workers ∈ {1,2,8};
# every killed-and-resumed run must byte-match the uninterrupted
# baseline's standing-query state (exactly-once replay from the
# checkpoint), and each cell's fault schedule must be identical across
# worker counts. Also runs the ingest unit suite (checkpoint log fuzz,
# backpressure ordering, goroutine-leak) under the race detector.
# See DESIGN.md "Streaming ingestion".
ingest-chaos:
	$(GO) test -race -run TestIngestChaos .
	$(GO) test -race ./internal/ingest/

# cover enforces a coverage floor on the packages at the heart of the
# correctness argument: the executor (parallel merge, pipelining,
# view maintenance), the symbolic algebra (Algorithm 1), and the
# static-analysis suite that machine-checks the engine's invariants.
COVER_FLOOR ?= 85
cover:
	@for pkg in ./internal/exec ./internal/symbolic ./internal/lint; do \
		out=$$($(GO) test -cover $$pkg | tail -1); \
		pct=$$(echo "$$out" | sed -n 's/.*coverage: \([0-9.]*\)%.*/\1/p'); \
		if [ -z "$$pct" ]; then echo "no coverage for $$pkg: $$out"; exit 1; fi; \
		ok=$$(awk -v p="$$pct" -v f="$(COVER_FLOOR)" 'BEGIN{print (p>=f)?1:0}'); \
		if [ "$$ok" != 1 ]; then \
			echo "coverage $$pct% of $$pkg below floor $(COVER_FLOOR)%"; exit 1; fi; \
		echo "coverage $$pkg: $$pct% (floor $(COVER_FLOOR)%)"; \
	done

# fuzz-smoke gives the property-based targets a short budget: the
# Algorithm 1 reducer against its truth-table oracle, and the fault
# injector's site matcher against an independent reference.
fuzz-smoke:
	$(GO) test -run=^$$ -fuzz=FuzzReduce -fuzztime=5s ./internal/symbolic/
	$(GO) test -run=^$$ -fuzz=FuzzSiteMatch -fuzztime=5s ./internal/faults/

# check is the full verification gate: formatting, vet, the evalint
# suite, a clean build, the test suite under the race detector, the
# serial-vs-parallel differential matrix, the chaos differential
# matrix, the multi-session serving-layer stress, the streaming
# ingest kill-point matrix, the coverage floor, the fault-injection
# stress pass and the fuzz smokes.
check:
	@fmtout=$$(gofmt -l .); if [ -n "$$fmtout" ]; then \
		echo "gofmt needed on:"; echo "$$fmtout"; exit 1; fi
	$(GO) vet ./...
	$(GO) run ./cmd/evalint ./...
	$(GO) build ./...
	$(GO) test -race ./...
	$(MAKE) differential
	$(MAKE) chaos
	$(MAKE) server-stress
	$(MAKE) ingest-chaos
	$(MAKE) cover
	$(MAKE) faults-stress
	$(MAKE) fuzz-smoke
