package eva

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"eva/internal/parser"
)

var updateGolden = flag.Bool("update", false, "rewrite golden script outputs")

// TestGoldenScripts runs every testdata/scripts/*.sql through a fresh
// EVA system and compares each SELECT's formatted result set against
// the checked-in golden file. The synthetic world and virtual clock
// are fully deterministic, so outputs are byte-stable across machines.
func TestGoldenScripts(t *testing.T) {
	scripts, err := filepath.Glob(filepath.Join("testdata", "scripts", "*.sql"))
	if err != nil || len(scripts) == 0 {
		t.Fatalf("no scripts found: %v", err)
	}
	for _, script := range scripts {
		script := script
		t.Run(filepath.Base(script), func(t *testing.T) {
			src, err := os.ReadFile(script)
			if err != nil {
				t.Fatal(err)
			}
			sys, err := Open(Config{Dir: t.TempDir()})
			if err != nil {
				t.Fatal(err)
			}
			defer sys.Close()

			stmts, err := parser.ParseAll(string(src))
			if err != nil {
				t.Fatal(err)
			}
			var out strings.Builder
			for i, stmt := range stmts {
				res, err := sys.ExecStmt(stmt)
				if err != nil {
					t.Fatalf("statement %d: %v", i+1, err)
				}
				if res.Rows == nil || len(res.Rows.Schema()) == 0 {
					continue
				}
				fmt.Fprintf(&out, "-- statement %d (simulated %s)\n", i+1, res.SimTime.Round(1e6))
				out.WriteString(Format(res.Rows))
				out.WriteByte('\n')
			}

			golden := strings.TrimSuffix(script, ".sql") + ".golden"
			if *updateGolden {
				if err := os.WriteFile(golden, []byte(out.String()), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if out.String() != string(want) {
				t.Errorf("output diverged from %s\n--- got ---\n%s\n--- want ---\n%s", golden, out.String(), want)
			}
		})
	}
}
