// Package xxhash implements the 64-bit xxHash algorithm (XXH64).
//
// The FunCache baseline in the paper keys its tuple-level result cache
// with 128-bit xxHash values of the UDF input arguments; this package is
// the from-scratch substrate for that baseline (we expose the 64-bit
// variant twice with independent seeds to form a 128-bit key).
package xxhash

import "encoding/binary"

const (
	prime1 uint64 = 0x9E3779B185EBCA87
	prime2 uint64 = 0xC2B2AE3D27D4EB4F
	prime3 uint64 = 0x165667B19E3779F9
	prime4 uint64 = 0x85EBCA77C2B2AE63
	prime5 uint64 = 0x27D4EB2F165667C5
)

func rol(x uint64, r uint) uint64 { return x<<r | x>>(64-r) }

func round(acc, input uint64) uint64 {
	acc += input * prime2
	acc = rol(acc, 31)
	acc *= prime1
	return acc
}

func mergeRound(acc, val uint64) uint64 {
	val = round(0, val)
	acc ^= val
	acc = acc*prime1 + prime4
	return acc
}

// Sum64 computes the XXH64 hash of b with the given seed.
func Sum64(b []byte, seed uint64) uint64 {
	n := len(b)
	var h uint64

	if n >= 32 {
		v1 := seed + prime1 + prime2
		v2 := seed + prime2
		v3 := seed
		v4 := seed - prime1
		for len(b) >= 32 {
			v1 = round(v1, binary.LittleEndian.Uint64(b[0:8]))
			v2 = round(v2, binary.LittleEndian.Uint64(b[8:16]))
			v3 = round(v3, binary.LittleEndian.Uint64(b[16:24]))
			v4 = round(v4, binary.LittleEndian.Uint64(b[24:32]))
			b = b[32:]
		}
		h = rol(v1, 1) + rol(v2, 7) + rol(v3, 12) + rol(v4, 18)
		h = mergeRound(h, v1)
		h = mergeRound(h, v2)
		h = mergeRound(h, v3)
		h = mergeRound(h, v4)
	} else {
		h = seed + prime5
	}

	h += uint64(n)

	for len(b) >= 8 {
		h ^= round(0, binary.LittleEndian.Uint64(b[0:8]))
		h = rol(h, 27)*prime1 + prime4
		b = b[8:]
	}
	if len(b) >= 4 {
		h ^= uint64(binary.LittleEndian.Uint32(b[0:4])) * prime1
		h = rol(h, 23)*prime2 + prime3
		b = b[4:]
	}
	for _, c := range b {
		h ^= uint64(c) * prime5
		h = rol(h, 11) * prime1
	}

	h ^= h >> 33
	h *= prime2
	h ^= h >> 29
	h *= prime3
	h ^= h >> 32
	return h
}

// Key128 is a 128-bit cache key formed from two independently seeded
// XXH64 passes, mirroring the paper's use of 128-bit xxHash values.
type Key128 struct {
	Hi, Lo uint64
}

// Sum128 computes a 128-bit key for b.
func Sum128(b []byte) Key128 {
	return Key128{Hi: Sum64(b, 0), Lo: Sum64(b, 0x9747b28c9747b28c)}
}
