package xxhash

import (
	"testing"
	"testing/quick"
)

// Reference vectors from the canonical xxHash implementation
// (github.com/Cyan4973/xxHash), seed 0.
func TestSum64KnownVectors(t *testing.T) {
	tests := []struct {
		in   string
		seed uint64
		want uint64
	}{
		{"", 0, 0xef46db3751d8e999},
		{"a", 0, 0xd24ec4f1a98c6e5b},
		{"abc", 0, 0x44bc2cf5ad770999},
		{"message digest", 0, 0x066ed728fceeb3be},
		{"abcdefghijklmnopqrstuvwxyz", 0, 0xcfe1f278fa89835c},
		{"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789", 0, 0xaaa46907d3047814},
		{"12345678901234567890123456789012345678901234567890123456789012345678901234567890", 0, 0xe04a477f19ee145d},
	}
	for _, tt := range tests {
		if got := Sum64([]byte(tt.in), tt.seed); got != tt.want {
			t.Errorf("Sum64(%q, %d) = %#x, want %#x", tt.in, tt.seed, got, tt.want)
		}
	}
}

func TestSum64SeedChangesHash(t *testing.T) {
	in := []byte("night-street")
	if Sum64(in, 0) == Sum64(in, 1) {
		t.Error("different seeds produced identical hashes")
	}
}

func TestSum64Deterministic(t *testing.T) {
	f := func(b []byte, seed uint64) bool {
		return Sum64(b, seed) == Sum64(b, seed)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSum64PrefixSensitivity(t *testing.T) {
	// Flipping any single byte should change the hash (with overwhelming
	// probability); test across the size regimes (tail, 4-byte, 8-byte,
	// and 32-byte stripe paths).
	for _, n := range []int{1, 3, 4, 7, 8, 15, 31, 32, 33, 63, 100} {
		base := make([]byte, n)
		for i := range base {
			base[i] = byte(i * 7)
		}
		h0 := Sum64(base, 0)
		for i := 0; i < n; i++ {
			mut := make([]byte, n)
			copy(mut, base)
			mut[i] ^= 0xff
			if Sum64(mut, 0) == h0 {
				t.Errorf("len %d: flipping byte %d did not change hash", n, i)
			}
		}
	}
}

func TestSum128Components(t *testing.T) {
	k := Sum128([]byte("abc"))
	if k.Hi != Sum64([]byte("abc"), 0) {
		t.Error("Hi half should be seed-0 XXH64")
	}
	if k.Hi == k.Lo {
		t.Error("halves should be independent")
	}
	if k != Sum128([]byte("abc")) {
		t.Error("Sum128 not deterministic")
	}
	if k == Sum128([]byte("abd")) {
		t.Error("Sum128 collision on near inputs")
	}
}

func BenchmarkSum64_1K(b *testing.B) {
	buf := make([]byte, 1024)
	for i := range buf {
		buf[i] = byte(i)
	}
	b.SetBytes(int64(len(buf)))
	for i := 0; i < b.N; i++ {
		Sum64(buf, 0)
	}
}
