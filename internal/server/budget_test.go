package server

import (
	"errors"
	"testing"
)

func TestMemBudgetChargeReleasePeak(t *testing.T) {
	b := NewMemBudget(100)
	if !b.Charge(60) {
		t.Fatal("charge 60 of 100 failed")
	}
	if b.Charge(50) {
		t.Fatal("charge 50 over limit succeeded")
	}
	if !b.Charge(40) {
		t.Fatal("charge to exactly the limit failed")
	}
	if b.Peak() != 100 {
		t.Fatalf("peak = %d, want 100", b.Peak())
	}
	b.Release(100)
	if !b.Charge(100) {
		t.Fatal("charge after release failed")
	}
	b.Release(1000) // over-release clamps at zero
	if !b.Charge(100) {
		t.Fatal("charge after over-release failed")
	}
}

func TestMemBudgetDegradeAndExceeded(t *testing.T) {
	b := NewMemBudget(10)
	b.NoteDegrade()
	b.NoteDegrade()
	if b.Degrades() != 2 {
		t.Fatalf("degrades = %d, want 2", b.Degrades())
	}
	err := b.Exceeded("sort buffer", 64)
	if !errors.Is(err, ErrMemoryBudget) {
		t.Fatalf("exceeded error = %v, want ErrMemoryBudget", err)
	}
}

func TestMemBudgetNilSafe(t *testing.T) {
	var b *MemBudget
	if !b.Charge(1 << 40) {
		t.Fatal("nil budget rejected a charge")
	}
	b.Release(1)
	b.NoteDegrade()
	if b.Peak() != 0 || b.Degrades() != 0 || b.Limit() != 0 {
		t.Fatal("nil budget counters not zero")
	}
	if err := b.Exceeded("x", 1); err != nil {
		t.Fatalf("nil budget Exceeded = %v", err)
	}
	if NewMemBudget(0) != nil || NewMemBudget(-5) != nil {
		t.Fatal("non-positive limit should build a nil (unlimited) budget")
	}
}

func TestGroupWaits(t *testing.T) {
	var g Group
	ch := make(chan int, 8)
	for i := 0; i < 8; i++ {
		i := i
		g.Go(func() { ch <- i })
	}
	g.Wait()
	if len(ch) != 8 {
		t.Fatalf("ran %d of 8 tracked goroutines", len(ch))
	}
}
