package server

import (
	"errors"
	"fmt"
	"sync"
)

// ErrMemoryBudget is returned (wrapped) when a query's materialized
// state exceeds its memory budget even after degrading batch size.
var ErrMemoryBudget = errors.New("per-query memory budget exceeded")

// MemBudget tracks one query's estimated materialized bytes: batches
// in flight, sort buffers, and view-append staging. The executor
// charges it at each materialization point; a failed charge first
// triggers degradation (smaller batches, early flushes) and only then
// aborts the query with ErrMemoryBudget. Estimates use the encoded
// size of batches, so decisions are pure functions of the data and
// deterministic across schedules. A nil *MemBudget is unlimited.
type MemBudget struct {
	limit int64

	mu sync.Mutex
	// used is the current estimated resident footprint. guarded by mu.
	used int64
	// peak is the high-water mark of used. guarded by mu.
	peak int64
	// degrades counts degradation events (batch shrinks, forced
	// flushes) taken to stay under the limit. guarded by mu.
	degrades int
}

// NewMemBudget builds a budget of limit estimated bytes. limit <= 0
// returns nil (unlimited).
func NewMemBudget(limit int64) *MemBudget {
	if limit <= 0 {
		return nil
	}
	return &MemBudget{limit: limit}
}

// Charge reserves n estimated bytes, reporting whether the budget
// still holds them. A failed charge reserves nothing; the caller
// degrades (and calls NoteDegrade) or aborts with Exceeded. Nil-safe.
func (b *MemBudget) Charge(n int64) bool {
	if b == nil || n <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.used+n > b.limit {
		return false
	}
	b.used += n
	if b.used > b.peak {
		b.peak = b.used
	}
	return true
}

// Release returns n estimated bytes to the budget. Nil-safe.
func (b *MemBudget) Release(n int64) {
	if b == nil || n <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.used -= n
	if b.used < 0 {
		b.used = 0
	}
}

// NoteDegrade records one degradation step taken to fit the budget.
func (b *MemBudget) NoteDegrade() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.degrades++
}

// Exceeded builds the typed abort error for a charge of n bytes that
// could not fit even after degradation.
func (b *MemBudget) Exceeded(at string, n int64) error {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return fmt.Errorf("%w: %s needs %d bytes, %d of %d in use",
		ErrMemoryBudget, at, n, b.used, b.limit)
}

// Peak reports the high-water mark of the estimated footprint. Nil-safe.
func (b *MemBudget) Peak() int64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.peak
}

// Degrades reports how many degradation steps were taken. Nil-safe.
func (b *MemBudget) Degrades() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.degrades
}

// Limit reports the configured budget, 0 when unlimited. Nil-safe.
func (b *MemBudget) Limit() int64 {
	if b == nil {
		return 0
	}
	return b.limit
}
