// Package server is eva's multi-session serving layer: admission
// control with a bounded queue and virtual-clock wait deadlines,
// per-query memory budgets that degrade before they abort, and the
// tracked goroutine group every server-layer spawn must go through.
//
// The controller is deliberately engine-agnostic: it hands out
// concurrency tokens and accounts queue waits on the same simulated
// clock the engine charges query costs to, so admission behavior is
// deterministic and testable without wall-clock sleeps. A wall-clock
// guard (injectable in tests) backstops the virtual deadline so a
// waiter can never wedge even if no query ever completes.
package server

import (
	"errors"
	"sort"
	"sync"
	"time"
)

// ErrOverloaded is returned by Admit when the concurrency limit is
// reached and the admission queue is full: the query is shed
// immediately rather than queued without bound.
var ErrOverloaded = errors.New("server overloaded: admission queue full")

// ErrQueueTimeout is returned by Admit when a queued query's
// virtual-clock wait deadline expires before a token frees up.
var ErrQueueTimeout = errors.New("server queue wait deadline exceeded")

// wedgeGuard is the wall-clock backstop on a queued Admit. The
// virtual deadline is the real admission policy; this only prevents a
// wedge when no in-flight query ever releases its token.
const wedgeGuard = 30 * time.Second

// Config bounds a Controller. MaxConcurrent is the number of
// concurrency tokens; QueueDepth the maximum number of queries
// waiting for one; QueueTimeout the virtual-clock budget a query may
// spend waiting before it is shed with ErrQueueTimeout.
type Config struct {
	MaxConcurrent int
	QueueDepth    int
	QueueTimeout  time.Duration
}

// waiter is one queued admission request.
type waiter struct {
	grant    chan *Grant // buffered 1; nil send means virtual timeout
	enqueued time.Duration
	deadline time.Duration
}

// Controller is the admission gate shared by every session of one
// System. The zero value is unusable; use NewController. A nil
// *Controller admits everything immediately (unlimited).
type Controller struct {
	cfg Config

	// after injects the wall-clock backstop timer; tests replace it
	// to force or forbid the wedge-guard path deterministically.
	after func(time.Duration) <-chan time.Time

	mu sync.Mutex
	// now is the controller's virtual clock, advanced by each
	// released query's simulated cost. guarded by mu.
	now time.Duration
	// inUse counts outstanding concurrency tokens. guarded by mu.
	inUse int
	// waiters is the FIFO admission queue. guarded by mu.
	waiters []*waiter
	// admitted, shedOverload, shedTimeout count outcomes. guarded by mu.
	admitted     int
	shedOverload int
	shedTimeout  int
	// waits records the virtual queue wait of every admitted query.
	// guarded by mu.
	waits []time.Duration
}

// NewController builds an admission controller. MaxConcurrent < 1 is
// treated as 1; QueueDepth < 0 as 0 (shed immediately when busy).
func NewController(cfg Config) *Controller {
	if cfg.MaxConcurrent < 1 {
		cfg.MaxConcurrent = 1
	}
	if cfg.QueueDepth < 0 {
		cfg.QueueDepth = 0
	}
	// The anti-wedge backstop is a real-time guard against a stuck
	// virtual clock; tests replace it via SetWedgeGuard and it never
	// advances a deterministic observable.
	// lint:wallclock anti-wedge backstop timer source
	return &Controller{cfg: cfg, after: time.After}
}

// SetWedgeGuard replaces the wall-clock backstop timer source. Tests
// use it to trigger (or disable) the guard deterministically.
func (c *Controller) SetWedgeGuard(after func(time.Duration) <-chan time.Time) {
	c.after = after
}

// Busy reports whether every concurrency token is in use — the
// saturation signal background maintenance (the view scrubber) checks
// so it degrades its cadence instead of competing with admitted
// queries. A nil controller is never busy.
func (c *Controller) Busy() bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.inUse >= c.cfg.MaxConcurrent
}

// Grant is one admitted query's concurrency token. Release it exactly
// once with the query's simulated cost; releasing advances the
// controller's virtual clock, expires overdue waiters and hands the
// token to the next queued query.
type Grant struct {
	c    *Controller
	once sync.Once
}

// Admit blocks until a concurrency token is available, the virtual
// queue deadline passes (ErrQueueTimeout), or the queue itself is
// full (ErrOverloaded, immediately). A nil controller admits
// unconditionally and returns a nil Grant (safe to Release).
func (c *Controller) Admit() (*Grant, error) {
	if c == nil {
		return nil, nil
	}
	g, w, err := c.enqueue()
	if g != nil || err != nil {
		return g, err
	}
	select {
	case g := <-w.grant:
		if g == nil {
			return nil, ErrQueueTimeout
		}
		return g, nil
	case <-c.after(wedgeGuard):
		return c.abandon(w)
	}
}

// enqueue takes a free token immediately, sheds on a full queue, or
// appends a waiter for Admit to block on.
func (c *Controller) enqueue() (*Grant, *waiter, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.inUse < c.cfg.MaxConcurrent {
		c.inUse++
		c.admitted++
		c.waits = append(c.waits, 0)
		return &Grant{c: c}, nil, nil
	}
	if len(c.waiters) >= c.cfg.QueueDepth {
		c.shedOverload++
		return nil, nil, ErrOverloaded
	}
	w := &waiter{
		grant:    make(chan *Grant, 1),
		enqueued: c.now,
		deadline: c.now + c.cfg.QueueTimeout,
	}
	c.waiters = append(c.waiters, w)
	return nil, w, nil
}

// abandon removes w from the queue after the wall-clock guard fired.
// If a grant raced in before the lock was taken, it is used.
func (c *Controller) abandon(w *waiter) (*Grant, error) {
	c.mu.Lock()
	for i, q := range c.waiters {
		if q == w {
			c.waiters = append(c.waiters[:i], c.waiters[i+1:]...)
			c.shedTimeout++
			c.mu.Unlock()
			return nil, ErrQueueTimeout
		}
	}
	c.mu.Unlock()
	// Not queued anymore: a grant or timeout was already delivered.
	if g := <-w.grant; g != nil {
		return g, nil
	}
	return nil, ErrQueueTimeout
}

// Release returns the token, charging the completed query's simulated
// cost to the controller clock. Idempotent; safe on a nil Grant.
func (g *Grant) Release(simCost time.Duration) {
	if g == nil {
		return
	}
	g.once.Do(func() { g.c.release(simCost) })
}

func (c *Controller) release(simCost time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if simCost > 0 {
		c.now += simCost
	}
	// Expire every waiter whose virtual deadline has passed: they
	// were queued while this query ran and their wait budget is
	// measured on the same clock the query's cost was charged to.
	kept := c.waiters[:0]
	for _, w := range c.waiters {
		if w.deadline <= c.now {
			c.shedTimeout++
			w.grant <- nil
			continue
		}
		kept = append(kept, w)
	}
	c.waiters = kept
	if len(c.waiters) > 0 {
		w := c.waiters[0]
		c.waiters = c.waiters[1:]
		c.admitted++
		c.waits = append(c.waits, c.now-w.enqueued)
		w.grant <- &Grant{c: c} // token passes directly to the waiter
		return
	}
	c.inUse--
}

// Stats is a point-in-time snapshot of admission outcomes.
type Stats struct {
	Admitted     int
	ShedOverload int
	ShedTimeout  int
	// Queued is the number of queries currently waiting for a token.
	Queued       int
	QueueWaitP50 time.Duration
	QueueWaitP99 time.Duration
}

// Stats snapshots counters and queue-wait percentiles. Nil-safe.
func (c *Controller) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Stats{
		Admitted:     c.admitted,
		ShedOverload: c.shedOverload,
		ShedTimeout:  c.shedTimeout,
		Queued:       len(c.waiters),
	}
	if len(c.waits) > 0 {
		sorted := append([]time.Duration(nil), c.waits...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		s.QueueWaitP50 = percentile(sorted, 50)
		s.QueueWaitP99 = percentile(sorted, 99)
	}
	return s
}

// percentile reads the nearest-rank percentile from a sorted slice.
func percentile(sorted []time.Duration, p int) time.Duration {
	idx := (len(sorted)*p + 99) / 100
	if idx > 0 {
		idx--
	}
	return sorted[idx]
}
