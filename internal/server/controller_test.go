package server

import (
	"errors"
	"testing"
	"time"
)

// never is a wedge-guard source that never fires, so tests exercise
// the virtual-clock admission path alone.
func never(time.Duration) <-chan time.Time { return nil }

func TestAdmitImmediateAndOverload(t *testing.T) {
	c := NewController(Config{MaxConcurrent: 2, QueueDepth: 0, QueueTimeout: time.Second})
	c.SetWedgeGuard(never)

	g1, err := c.Admit()
	if err != nil {
		t.Fatalf("admit 1: %v", err)
	}
	g2, err := c.Admit()
	if err != nil {
		t.Fatalf("admit 2: %v", err)
	}
	if _, err := c.Admit(); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("admit 3 = %v, want ErrOverloaded", err)
	}
	g1.Release(time.Millisecond)
	g2.Release(time.Millisecond)

	s := c.Stats()
	if s.Admitted != 2 || s.ShedOverload != 1 || s.ShedTimeout != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestQueuedWaiterGrantedOnRelease(t *testing.T) {
	c := NewController(Config{MaxConcurrent: 1, QueueDepth: 4, QueueTimeout: time.Second})
	c.SetWedgeGuard(never)

	g1, err := c.Admit()
	if err != nil {
		t.Fatalf("admit: %v", err)
	}

	type res struct {
		g   *Grant
		err error
	}
	done := make(chan res, 1)
	var grp Group
	grp.Go(func() {
		g, err := c.Admit()
		done <- res{g, err}
	})
	waitForQueue(t, c, 1)

	g1.Release(7 * time.Millisecond)
	r := <-done
	grp.Wait()
	if r.err != nil {
		t.Fatalf("queued admit: %v", r.err)
	}
	r.g.Release(time.Millisecond)

	s := c.Stats()
	if s.Admitted != 2 {
		t.Fatalf("admitted = %d, want 2", s.Admitted)
	}
	if s.QueueWaitP99 != 7*time.Millisecond {
		t.Fatalf("p99 wait = %v, want 7ms", s.QueueWaitP99)
	}
}

func TestVirtualQueueTimeout(t *testing.T) {
	c := NewController(Config{MaxConcurrent: 1, QueueDepth: 4, QueueTimeout: 10 * time.Millisecond})
	c.SetWedgeGuard(never)

	g1, err := c.Admit()
	if err != nil {
		t.Fatalf("admit: %v", err)
	}
	errs := make(chan error, 1)
	var grp Group
	grp.Go(func() {
		_, err := c.Admit()
		errs <- err
	})
	waitForQueue(t, c, 1)

	// The running query's simulated cost exceeds the waiter's
	// virtual deadline, so release sheds it instead of granting.
	g1.Release(50 * time.Millisecond)
	if err := <-errs; !errors.Is(err, ErrQueueTimeout) {
		t.Fatalf("queued admit = %v, want ErrQueueTimeout", err)
	}
	grp.Wait()

	// The token was freed, not handed to the expired waiter.
	g2, err := c.Admit()
	if err != nil {
		t.Fatalf("admit after timeout: %v", err)
	}
	g2.Release(0)

	s := c.Stats()
	if s.ShedTimeout != 1 {
		t.Fatalf("shedTimeout = %d, want 1", s.ShedTimeout)
	}
}

func TestWedgeGuardSheds(t *testing.T) {
	c := NewController(Config{MaxConcurrent: 1, QueueDepth: 4, QueueTimeout: time.Hour})
	fire := make(chan time.Time)
	c.SetWedgeGuard(func(time.Duration) <-chan time.Time { return fire })

	g1, err := c.Admit()
	if err != nil {
		t.Fatalf("admit: %v", err)
	}
	errs := make(chan error, 1)
	var grp Group
	grp.Go(func() {
		_, err := c.Admit()
		errs <- err
	})
	waitForQueue(t, c, 1)

	fire <- time.Time{}
	if err := <-errs; !errors.Is(err, ErrQueueTimeout) {
		t.Fatalf("queued admit = %v, want ErrQueueTimeout", err)
	}
	grp.Wait()

	// The abandoned waiter left the queue: release frees the token.
	g1.Release(time.Millisecond)
	g2, err := c.Admit()
	if err != nil {
		t.Fatalf("admit after abandon: %v", err)
	}
	g2.Release(0)
}

func TestGrantReleaseIdempotentAndNilSafe(t *testing.T) {
	var nilC *Controller
	g, err := nilC.Admit()
	if err != nil {
		t.Fatalf("nil controller admit: %v", err)
	}
	g.Release(time.Second) // nil grant

	c := NewController(Config{MaxConcurrent: 1, QueueDepth: 0, QueueTimeout: time.Second})
	c.SetWedgeGuard(never)
	g1, err := c.Admit()
	if err != nil {
		t.Fatalf("admit: %v", err)
	}
	g1.Release(time.Millisecond)
	g1.Release(time.Millisecond) // no double-free of the token
	if c.inUseNow() != 0 {
		t.Fatalf("inUse = %d after double release", c.inUseNow())
	}
	if nilC.Stats() != (Stats{}) {
		t.Fatal("nil controller stats not zero")
	}
}

func TestStatsPercentiles(t *testing.T) {
	c := NewController(Config{MaxConcurrent: 1, QueueDepth: 8, QueueTimeout: time.Hour})
	c.SetWedgeGuard(never)
	// Serialize 4 queries through one token so each waits behind the
	// previous one's simulated cost.
	g, err := c.Admit()
	if err != nil {
		t.Fatalf("admit: %v", err)
	}
	grants := make(chan *Grant, 3)
	var grp Group
	for i := 0; i < 3; i++ {
		grp.Go(func() {
			gq, err := c.Admit()
			if err != nil {
				t.Error(err)
			}
			grants <- gq
		})
	}
	waitForQueue(t, c, 3)
	g.Release(time.Millisecond)
	for i := 0; i < 3; i++ {
		gq := <-grants
		waitForQueue(t, c, 2-i)
		gq.Release(time.Millisecond)
	}
	grp.Wait()

	s := c.Stats()
	if s.Admitted != 4 {
		t.Fatalf("admitted = %d, want 4", s.Admitted)
	}
	if s.QueueWaitP50 <= 0 || s.QueueWaitP99 < s.QueueWaitP50 {
		t.Fatalf("percentiles p50=%v p99=%v", s.QueueWaitP50, s.QueueWaitP99)
	}
}

// inUseNow reads the token count for tests.
func (c *Controller) inUseNow() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.inUse
}

// waitForQueue polls until n waiters are queued (queueing happens on
// a test goroutine, so the main goroutine must observe it).
func waitForQueue(t *testing.T, c *Controller, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		c.mu.Lock()
		q := len(c.waiters)
		c.mu.Unlock()
		if q >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("queue never reached %d waiters (have %d)", n, q)
		}
		time.Sleep(time.Millisecond)
	}
}
