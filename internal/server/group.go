package server

import "sync"

// Group is the tracked goroutine pool for the serving layer. The
// tracked-goroutine analyzer in internal/lint forbids bare `go`
// statements in this package: every spawn goes through Group.Go so
// shutdown can prove no server goroutine outlives its System.
type Group struct {
	wg sync.WaitGroup
}

// Go runs fn on a tracked goroutine.
func (g *Group) Go(fn func()) {
	g.wg.Add(1)
	// lint:trackedgo Group.Go is the single sanctioned spawn point.
	go func() {
		defer g.wg.Done()
		fn()
	}()
}

// Wait blocks until every tracked goroutine has returned.
func (g *Group) Wait() { g.wg.Wait() }
