// Package testutil holds test helpers shared across packages. It must
// only be imported from _test.go files.
package testutil

import (
	"runtime"
	"testing"
	"time"
)

// CheckNoGoroutineLeak polls until the process goroutine count drops
// back to at most before, failing the test after five seconds.
// Capture before with runtime.NumGoroutine() ahead of the suspect
// work; exited goroutines are reaped asynchronously, hence the poll.
func CheckNoGoroutineLeak(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
