// Package parser implements the EVA-QL front end: a hand-written lexer
// and recursive-descent parser producing statement ASTs over the
// expression trees of internal/expr. The grammar covers the statements
// the paper's workloads use: SELECT ... FROM ... CROSS APPLY ...
// ACCURACY ... WHERE ... GROUP BY ... LIMIT, CREATE [OR REPLACE] UDF
// (Listing 2), and LOAD VIDEO.
package parser

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexical tokens.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol // punctuation and operators
)

type token struct {
	kind tokenKind
	text string
	pos  int // byte offset, for error messages
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// lexer tokenizes an EVA-QL string.
type lexer struct {
	src    string
	pos    int
	tokens []token
}

// lex scans the entire input. Errors carry byte positions.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpaceAndComments()
		if l.pos >= len(l.src) {
			l.tokens = append(l.tokens, token{kind: tokEOF, pos: l.pos})
			return l.tokens, nil
		}
		start := l.pos
		c := l.src[l.pos]
		switch {
		case isIdentStart(rune(c)):
			l.lexIdent()
		case c >= '0' && c <= '9':
			l.lexNumber()
		case c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]):
			l.lexNumber()
		case c == '\'':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		default:
			if !l.lexSymbol() {
				return nil, fmt.Errorf("parser: unexpected character %q at position %d", c, start)
			}
		}
	}
}

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case strings.HasPrefix(l.src[l.pos:], "--"):
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			return
		}
	}
}

func isIdentStart(r rune) bool { return unicode.IsLetter(r) || r == '_' }
func isDigit(c byte) bool      { return c >= '0' && c <= '9' }

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) {
		c := rune(l.src[l.pos])
		if !unicode.IsLetter(c) && !unicode.IsDigit(c) && c != '_' {
			break
		}
		l.pos++
	}
	l.tokens = append(l.tokens, token{kind: tokIdent, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexNumber() {
	start := l.pos
	seenDot := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '.' && !seenDot {
			seenDot = true
			l.pos++
			continue
		}
		if !isDigit(c) {
			break
		}
		l.pos++
	}
	l.tokens = append(l.tokens, token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			// '' escapes a quote.
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				sb.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			l.tokens = append(l.tokens, token{kind: tokString, text: sb.String(), pos: start})
			return nil
		}
		sb.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("parser: unterminated string starting at position %d", start)
}

// twoCharSymbols lists the multi-character operators.
var twoCharSymbols = []string{"<=", ">=", "!=", "<>"}

func (l *lexer) lexSymbol() bool {
	for _, s := range twoCharSymbols {
		if strings.HasPrefix(l.src[l.pos:], s) {
			l.tokens = append(l.tokens, token{kind: tokSymbol, text: s, pos: l.pos})
			l.pos += len(s)
			return true
		}
	}
	switch c := l.src[l.pos]; c {
	case '(', ')', ',', ';', '=', '<', '>', '+', '-', '*', '/', '%':
		l.tokens = append(l.tokens, token{kind: tokSymbol, text: string(c), pos: l.pos})
		l.pos++
		return true
	}
	return false
}
