package parser

import (
	"fmt"
	"math/rand"
	"testing"

	"eva/internal/expr"
	"eva/internal/types"
)

// randExpr generates a random predicate expression using only
// constructs whose canonical rendering is valid EVA-QL.
func randExpr(r *rand.Rand, depth int) expr.Expr {
	if depth <= 0 || r.Intn(4) == 0 {
		switch r.Intn(5) {
		case 0:
			ops := []expr.CmpOp{expr.OpEq, expr.OpNe, expr.OpLt, expr.OpLe, expr.OpGt, expr.OpGe}
			return expr.NewCmp(ops[r.Intn(len(ops))], expr.NewColumn("id"), expr.NewConst(types.NewInt(int64(r.Intn(100)-50))))
		case 1:
			return expr.NewCmp(expr.OpGt, expr.NewColumn("area"), expr.NewConst(types.NewFloat(float64(r.Intn(100))/100)))
		case 2:
			vals := []string{"car", "bus", "Nissan", "Gray"}
			return expr.NewCmp(expr.OpEq, expr.NewColumn("label"), expr.NewConst(types.NewString(vals[r.Intn(len(vals))])))
		case 3:
			return expr.NewIsNull(expr.NewColumn("bbox"))
		default:
			return expr.NewCmp(expr.OpEq,
				expr.NewCall("cartype", expr.NewColumn("frame"), expr.NewColumn("bbox")),
				expr.NewConst(types.NewString("Nissan")))
		}
	}
	switch r.Intn(4) {
	case 0:
		return expr.NewAnd(randExpr(r, depth-1), randExpr(r, depth-1))
	case 1:
		return expr.NewOr(randExpr(r, depth-1), randExpr(r, depth-1))
	case 2:
		return expr.NewNot(randExpr(r, depth-1))
	default:
		return expr.NewCmp(expr.OpGt,
			expr.NewArith([]expr.ArithOp{expr.OpAdd, expr.OpSub, expr.OpMul}[r.Intn(3)],
				expr.NewColumn("id"), expr.NewConst(types.NewInt(int64(r.Intn(9)+1)))),
			expr.NewConst(types.NewInt(int64(r.Intn(100)))))
	}
}

// TestExprRenderParseRoundTrip is the parser/printer coherence
// property: parsing an expression's canonical rendering yields a tree
// with the same canonical rendering.
func TestExprRenderParseRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		e := randExpr(r, 4)
		sql := fmt.Sprintf("SELECT id FROM v WHERE %s", e.String())
		stmt, err := Parse(sql)
		if err != nil {
			t.Fatalf("iteration %d: parse %q: %v", i, sql, err)
		}
		got := stmt.(*SelectStmt).Where
		if !expr.Equal(got, e) {
			t.Fatalf("iteration %d: round trip diverged\noriginal: %s\nreparsed: %s", i, e, got)
		}
	}
}

// TestStatementRenderStability: a second render-parse cycle is a fixed
// point (idempotent canonicalization).
func TestStatementRenderStability(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		e := randExpr(r, 3)
		once, err := Parse("SELECT id FROM v WHERE " + e.String())
		if err != nil {
			t.Fatal(err)
		}
		twice, err := Parse("SELECT id FROM v WHERE " + once.(*SelectStmt).Where.String())
		if err != nil {
			t.Fatal(err)
		}
		if once.(*SelectStmt).Where.String() != twice.(*SelectStmt).Where.String() {
			t.Fatalf("not a fixed point:\n1: %s\n2: %s", once.(*SelectStmt).Where, twice.(*SelectStmt).Where)
		}
	}
}

func TestParseExplainAndDrop(t *testing.T) {
	s, err := Parse("EXPLAIN SELECT id FROM v WHERE id < 5")
	if err != nil {
		t.Fatal(err)
	}
	ex, ok := s.(*ExplainStmt)
	if !ok || ex.Select.From != "v" {
		t.Fatalf("explain = %#v", s)
	}
	s, err = Parse("DROP VIEWS")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.(*DropViewsStmt); !ok {
		t.Fatalf("drop = %#v", s)
	}
	if _, err := Parse("EXPLAIN LOAD VIDEO 'x' INTO v"); err == nil {
		t.Error("EXPLAIN of non-SELECT should error")
	}
	if _, err := Parse("DROP TABLE x"); err == nil {
		t.Error("DROP TABLE should error (only DROP VIEWS supported)")
	}
}
