package parser

import (
	"eva/internal/expr"
	"eva/internal/types"
)

// Statement is a parsed EVA-QL statement.
type Statement interface{ stmt() }

// SelectItem is one projection item.
type SelectItem struct {
	Expr  expr.Expr
	Alias string
	Star  bool
}

// ApplyClause is the CROSS APPLY <udf>(<args>) [ACCURACY '<level>']
// clause that connects a video with a table-valued UDF.
type ApplyClause struct {
	Fn       string
	Args     []expr.Expr
	Accuracy string
}

// OrderKey is one ORDER BY column.
type OrderKey struct {
	Col  string
	Desc bool
}

// SelectStmt is a SELECT query.
type SelectStmt struct {
	Items   []SelectItem
	From    string
	Apply   *ApplyClause
	Where   expr.Expr
	GroupBy []string
	OrderBy []OrderKey
	Limit   int64 // -1 when absent
}

func (*SelectStmt) stmt() {}

// ColDef is one column in a CREATE UDF INPUT/OUTPUT list. TypeName
// preserves the declared EVA-QL type (e.g. "NDARRAY UINT8(3, ANYDIM,
// ANYDIM)"); Kind is its mapping into the execution type system.
type ColDef struct {
	Name     string
	TypeName string
	Kind     types.Kind
}

// CreateUDFStmt is a CREATE [OR REPLACE] UDF statement (Listing 2).
type CreateUDFStmt struct {
	Name        string
	OrReplace   bool
	Inputs      []ColDef
	Outputs     []ColDef
	Impl        string
	LogicalType string
	Properties  map[string]string
}

func (*CreateUDFStmt) stmt() {}

// LoadStmt is LOAD VIDEO '<dataset>' INTO <table>.
type LoadStmt struct {
	Dataset string
	Table   string
}

func (*LoadStmt) stmt() {}

// ShowStmt is SHOW UDFS | TABLES | VIEWS (shell conveniences).
type ShowStmt struct {
	What string
}

func (*ShowStmt) stmt() {}

// ExplainStmt is EXPLAIN [ANALYZE] <select>: show the plan; with
// ANALYZE, execute it and report per-operator statistics.
type ExplainStmt struct {
	Select  *SelectStmt
	Analyze bool
}

func (*ExplainStmt) stmt() {}

// DropViewsStmt is DROP VIEWS: discard all materialized UDF results
// and reset the aggregated predicates.
type DropViewsStmt struct{}

func (*DropViewsStmt) stmt() {}
