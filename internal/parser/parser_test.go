package parser

import (
	"strings"
	"testing"

	"eva/internal/expr"
	"eva/internal/types"
)

func parseSelect(t *testing.T, src string) *SelectStmt {
	t.Helper()
	s, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	sel, ok := s.(*SelectStmt)
	if !ok {
		t.Fatalf("Parse(%q) = %T, want *SelectStmt", src, s)
	}
	return sel
}

func TestParseVBenchQuery(t *testing.T) {
	// Table 1's Q3 shape.
	src := `SELECT id, bbox FROM VIDEO CROSS APPLY FasterRCNNResnet50(frame)
		WHERE id < 10000 AND area > 0.25 AND label = 'car'
		AND CarType(frame, bbox) = 'Nissan' AND ColorDet(frame, bbox) = 'Gray';`
	s := parseSelect(t, src)
	if len(s.Items) != 2 || s.Items[0].Expr.String() != "id" {
		t.Errorf("items = %+v", s.Items)
	}
	if s.From != "VIDEO" {
		t.Errorf("from = %q", s.From)
	}
	if s.Apply == nil || s.Apply.Fn != "FasterRCNNResnet50" || len(s.Apply.Args) != 1 {
		t.Fatalf("apply = %+v", s.Apply)
	}
	conj := expr.SplitConjuncts(s.Where)
	if len(conj) != 5 {
		t.Fatalf("conjuncts = %d: %s", len(conj), s.Where)
	}
	if got := conj[3].String(); got != "cartype(frame, bbox) = 'Nissan'" {
		t.Errorf("conjunct 3 = %q", got)
	}
	if s.Limit != -1 || s.GroupBy != nil {
		t.Errorf("unexpected limit/groupby: %+v", s)
	}
}

func TestParseAccuracyAndGroupBy(t *testing.T) {
	// Q4 of Listing 1.
	src := `SELECT id, COUNT(*) FROM VIDEO CROSS APPLY
		ObjectDetector(frame) ACCURACY 'LOW'
		WHERE label = 'car' AND area > 0.15 GROUP BY id`
	s := parseSelect(t, src)
	if s.Apply.Accuracy != "LOW" {
		t.Errorf("accuracy = %q", s.Apply.Accuracy)
	}
	if len(s.GroupBy) != 1 || s.GroupBy[0] != "id" {
		t.Errorf("group by = %v", s.GroupBy)
	}
	call, ok := s.Items[1].Expr.(*expr.Call)
	if !ok || !strings.EqualFold(call.Fn, "COUNT") {
		t.Fatalf("item 1 = %v", s.Items[1].Expr)
	}
	if _, isStar := call.Args[0].(expr.Star); !isStar {
		t.Error("COUNT(*) should carry a Star arg")
	}
}

func TestParseStarLimitAlias(t *testing.T) {
	s := parseSelect(t, "SELECT *, area AS a FROM video WHERE id >= 5 LIMIT 10")
	if !s.Items[0].Star {
		t.Error("star item missing")
	}
	if s.Items[1].Alias != "a" {
		t.Errorf("alias = %q", s.Items[1].Alias)
	}
	if s.Limit != 10 {
		t.Errorf("limit = %d", s.Limit)
	}
}

func TestParsePredicateStructure(t *testing.T) {
	s := parseSelect(t, `SELECT id FROM v WHERE NOT (a < 1 OR b != 'x') AND c IS NULL AND d IS NOT NULL`)
	want := "((NOT ((a < 1 OR b != 'x')) AND c IS NULL) AND NOT (d IS NULL))"
	if got := s.Where.String(); got != want {
		t.Errorf("where = %q, want %q", got, want)
	}
}

func TestParsePrecedence(t *testing.T) {
	s := parseSelect(t, "SELECT id FROM v WHERE a + 2 * 3 > 7 AND x = 1 OR y = 2")
	// OR binds loosest: (a+2*3>7 AND x=1) OR y=2.
	l, ok := s.Where.(*expr.Logic)
	if !ok || l.Op != expr.OpOr {
		t.Fatalf("top = %v", s.Where)
	}
	// Arithmetic precedence: a + (2*3).
	if got := s.Where.String(); !strings.Contains(got, "(a + (2 * 3)) > 7") {
		t.Errorf("where = %q", got)
	}
}

func TestParseNegativeNumbersAndFloats(t *testing.T) {
	s := parseSelect(t, "SELECT id FROM v WHERE a > -5 AND b < 0.25 AND c = -0.5")
	str := s.Where.String()
	if !strings.Contains(str, "a > -5") || !strings.Contains(str, "b < 0.25") || !strings.Contains(str, "c = -0.5") {
		t.Errorf("where = %q", str)
	}
}

func TestParseBooleansAndComparisonOps(t *testing.T) {
	s := parseSelect(t, "SELECT id FROM v WHERE a <= 1 AND b >= 2 AND c <> 'z' AND d = TRUE AND e = FALSE")
	str := s.Where.String()
	for _, want := range []string{"a <= 1", "b >= 2", "c != 'z'", "d = TRUE", "e = FALSE"} {
		if !strings.Contains(str, want) {
			t.Errorf("where %q missing %q", str, want)
		}
	}
}

func TestParseCreateUDFListing2(t *testing.T) {
	src := `CREATE OR REPLACE UDF YOLO
		INPUT = (frame NDARRAY UINT8(3, ANYDIM, ANYDIM))
		OUTPUT = (labels NDARRAY STR(ANYDIM), bboxes NDARRAY FLOAT32(ANYDIM, 4))
		IMPL = 'udfs/yolo.py'
		LOGICAL_TYPE = ObjectDetector
		PROPERTIES = ('ACCURACY' = 'HIGH')`
	s, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	c, ok := s.(*CreateUDFStmt)
	if !ok {
		t.Fatalf("got %T", s)
	}
	if c.Name != "YOLO" || !c.OrReplace {
		t.Errorf("header: %+v", c)
	}
	if len(c.Inputs) != 1 || c.Inputs[0].Name != "frame" || c.Inputs[0].Kind != types.KindBytes {
		t.Errorf("inputs: %+v", c.Inputs)
	}
	if c.Inputs[0].TypeName != "NDARRAY UINT8(3, ANYDIM, ANYDIM)" {
		t.Errorf("type name = %q", c.Inputs[0].TypeName)
	}
	if len(c.Outputs) != 2 || c.Outputs[0].Kind != types.KindString || c.Outputs[1].Kind != types.KindBytes {
		t.Errorf("outputs: %+v", c.Outputs)
	}
	if c.Impl != "udfs/yolo.py" || c.LogicalType != "ObjectDetector" {
		t.Errorf("impl/logical: %+v", c)
	}
	if c.Properties["ACCURACY"] != "HIGH" {
		t.Errorf("properties: %v", c.Properties)
	}
}

func TestParseCreateUDFSimpleTypes(t *testing.T) {
	src := `CREATE UDF RedSUV INPUT = (frame BYTES, bbox TEXT) OUTPUT = (hit BOOLEAN) IMPL = 'x'`
	s, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	c := s.(*CreateUDFStmt)
	if c.OrReplace {
		t.Error("OR REPLACE should be false")
	}
	if c.Inputs[1].Kind != types.KindString || c.Outputs[0].Kind != types.KindBool {
		t.Errorf("kinds: %+v %+v", c.Inputs, c.Outputs)
	}
}

func TestParseLoadAndShow(t *testing.T) {
	s, err := Parse("LOAD VIDEO 'medium-ua-detrac' INTO VIDEO")
	if err != nil {
		t.Fatal(err)
	}
	l := s.(*LoadStmt)
	if l.Dataset != "medium-ua-detrac" || l.Table != "VIDEO" {
		t.Errorf("load: %+v", l)
	}
	s, err = Parse("SHOW UDFS")
	if err != nil {
		t.Fatal(err)
	}
	if s.(*ShowStmt).What != "UDFS" {
		t.Errorf("show: %+v", s)
	}
}

func TestParseAllScript(t *testing.T) {
	src := `-- workload
		LOAD VIDEO 'jackson' INTO v;
		SELECT id FROM v WHERE id < 10;
		SELECT id FROM v WHERE id > 5;`
	stmts, err := ParseAll(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("statements = %d", len(stmts))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM v",
		"SELECT id v",
		"SELECT id FROM v WHERE",
		"SELECT id FROM v WHERE id <",
		"SELECT id FROM v LIMIT x",
		"SELECT id FROM v GROUP id",
		"SELECT id FROM v CROSS JOIN w",
		"DELETE FROM v",
		"SELECT id FROM v WHERE id = 'unterminated",
		"SELECT id FROM v WHERE id @ 3",
		"CREATE UDF",
		"CREATE UDF x",
		"CREATE OR UDF x IMPL='y'",
		"LOAD VIDEO x INTO v",
		"LOAD VIDEO 'x' IN v",
		"SELECT id FROM v; SELECT", // second statement broken
		"SELECT id FROM v extra",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should error", src)
		}
	}
}

func TestParseCommentsAndEscapes(t *testing.T) {
	s := parseSelect(t, "SELECT id -- trailing comment\nFROM v WHERE name = 'O''Brien'")
	if got := s.Where.String(); got != "name = 'O'Brien'" {
		t.Errorf("escaped string: %q", got)
	}
}

func TestParseScalarCallAccuracyInPredicate(t *testing.T) {
	s := parseSelect(t, "SELECT id FROM v WHERE ObjectDetector(frame) ACCURACY 'HIGH' = 'car'")
	calls := expr.CollectCalls(s.Where)
	if len(calls) != 1 || calls[0].Accuracy != "HIGH" {
		t.Errorf("calls = %+v", calls)
	}
}

func TestParseEmptyArgCall(t *testing.T) {
	s := parseSelect(t, "SELECT now() FROM v")
	call := s.Items[0].Expr.(*expr.Call)
	if call.Fn != "now" || len(call.Args) != 0 {
		t.Errorf("call = %+v", call)
	}
}
