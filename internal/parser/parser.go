package parser

import (
	"fmt"
	"strconv"
	"strings"

	"eva/internal/expr"
	"eva/internal/types"
)

// Parse parses a single EVA-QL statement (a trailing semicolon is
// optional).
func Parse(src string) (Statement, error) {
	stmts, err := ParseAll(src)
	if err != nil {
		return nil, err
	}
	if len(stmts) != 1 {
		return nil, fmt.Errorf("parser: expected one statement, found %d", len(stmts))
	}
	return stmts[0], nil
}

// ParseAll parses a semicolon-separated script.
func ParseAll(src string) ([]Statement, error) {
	tokens, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{tokens: tokens}
	var out []Statement
	for {
		for p.acceptSymbol(";") {
		}
		if p.peek().kind == tokEOF {
			break
		}
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
		if !p.acceptSymbol(";") && p.peek().kind != tokEOF {
			return nil, p.errf("expected ';' or end of input, found %s", p.peek())
		}
	}
	return out, nil
}

type parser struct {
	tokens []token
	idx    int
}

func (p *parser) peek() token { return p.tokens[p.idx] }
func (p *parser) next() token { t := p.tokens[p.idx]; p.idx++; return t }
func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("parser: "+format+" (at position %d)", append(args, p.peek().pos)...)
}

// acceptKeyword consumes the token if it is the given keyword
// (case-insensitive).
func (p *parser) acceptKeyword(kw string) bool {
	t := p.peek()
	if t.kind == tokIdent && strings.EqualFold(t.text, kw) {
		p.idx++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errf("expected %s, found %s", strings.ToUpper(kw), p.peek())
	}
	return nil
}

func (p *parser) acceptSymbol(s string) bool {
	t := p.peek()
	if t.kind == tokSymbol && t.text == s {
		p.idx++
		return true
	}
	return false
}

func (p *parser) expectSymbol(s string) error {
	if !p.acceptSymbol(s) {
		return p.errf("expected %q, found %s", s, p.peek())
	}
	return nil
}

func (p *parser) expectIdent() (string, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return "", p.errf("expected identifier, found %s", t)
	}
	p.idx++
	return t.text, nil
}

func (p *parser) expectString() (string, error) {
	t := p.peek()
	if t.kind != tokString {
		return "", p.errf("expected string literal, found %s", t)
	}
	p.idx++
	return t.text, nil
}

func (p *parser) statement() (Statement, error) {
	switch {
	case p.acceptKeyword("SELECT"):
		return p.selectStmt()
	case p.acceptKeyword("CREATE"):
		return p.createUDF()
	case p.acceptKeyword("LOAD"):
		return p.loadStmt()
	case p.acceptKeyword("SHOW"):
		what, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return &ShowStmt{What: strings.ToUpper(what)}, nil
	case p.acceptKeyword("EXPLAIN"):
		analyze := p.acceptKeyword("ANALYZE")
		if err := p.expectKeyword("SELECT"); err != nil {
			return nil, err
		}
		sel, err := p.selectStmt()
		if err != nil {
			return nil, err
		}
		return &ExplainStmt{Select: sel, Analyze: analyze}, nil
	case p.acceptKeyword("DROP"):
		if err := p.expectKeyword("VIEWS"); err != nil {
			return nil, err
		}
		return &DropViewsStmt{}, nil
	default:
		return nil, p.errf("expected SELECT, CREATE, LOAD, SHOW, EXPLAIN, or DROP, found %s", p.peek())
	}
}

func (p *parser) selectStmt() (*SelectStmt, error) {
	s := &SelectStmt{Limit: -1}
	for {
		item, err := p.selectItem()
		if err != nil {
			return nil, err
		}
		s.Items = append(s.Items, item)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	from, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	s.From = from

	if p.acceptKeyword("CROSS") {
		if err := p.expectKeyword("APPLY"); err != nil {
			return nil, err
		}
		apply, err := p.applyClause()
		if err != nil {
			return nil, err
		}
		s.Apply = apply
	}
	if p.acceptKeyword("WHERE") {
		e, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		s.Where = e
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			s.GroupBy = append(s.GroupBy, col)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			key := OrderKey{Col: col}
			if p.acceptKeyword("DESC") {
				key.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			s.OrderBy = append(s.OrderBy, key)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		t := p.peek()
		if t.kind != tokNumber {
			return nil, p.errf("expected number after LIMIT, found %s", t)
		}
		p.idx++
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad LIMIT %q", t.text)
		}
		s.Limit = n
	}
	return s, nil
}

func (p *parser) selectItem() (SelectItem, error) {
	if p.acceptSymbol("*") {
		return SelectItem{Star: true}, nil
	}
	e, err := p.orExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKeyword("AS") {
		alias, err := p.expectIdent()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = alias
	}
	return item, nil
}

func (p *parser) applyClause() (*ApplyClause, error) {
	fn, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	var args []expr.Expr
	if !p.acceptSymbol(")") {
		for {
			a, err := p.orExpr()
			if err != nil {
				return nil, err
			}
			args = append(args, a)
			if p.acceptSymbol(")") {
				break
			}
			if err := p.expectSymbol(","); err != nil {
				return nil, err
			}
		}
	}
	ac := &ApplyClause{Fn: fn, Args: args}
	if p.acceptKeyword("ACCURACY") {
		level, err := p.expectString()
		if err != nil {
			return nil, err
		}
		ac.Accuracy = level
	}
	return ac, nil
}

// Expression grammar with standard precedence:
//
//	orExpr   := andExpr (OR andExpr)*
//	andExpr  := notExpr (AND notExpr)*
//	notExpr  := NOT notExpr | cmpExpr
//	cmpExpr  := addExpr ((= != < <= > >=) addExpr | IS [NOT] NULL)?
//	addExpr  := mulExpr ((+ -) mulExpr)*
//	mulExpr  := unary ((* / %) unary)*
//	unary    := - unary | primary
//	primary  := number | string | TRUE | FALSE | NULL | '(' orExpr ')'
//	          | ident '(' args ')' [ACCURACY str] | ident | COUNT '(' * ')'
func (p *parser) orExpr() (expr.Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = expr.NewOr(l, r)
	}
	return l, nil
}

func (p *parser) andExpr() (expr.Expr, error) {
	l, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		r, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		l = expr.NewAnd(l, r)
	}
	return l, nil
}

func (p *parser) notExpr() (expr.Expr, error) {
	if p.acceptKeyword("NOT") {
		e, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return expr.NewNot(e), nil
	}
	return p.cmpExpr()
}

var cmpOps = map[string]expr.CmpOp{
	"=": expr.OpEq, "!=": expr.OpNe, "<>": expr.OpNe,
	"<": expr.OpLt, "<=": expr.OpLe, ">": expr.OpGt, ">=": expr.OpGe,
}

func (p *parser) cmpExpr() (expr.Expr, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.kind == tokSymbol {
		if op, ok := cmpOps[t.text]; ok {
			p.idx++
			r, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			return expr.NewCmp(op, l, r), nil
		}
	}
	if p.acceptKeyword("IS") {
		negated := p.acceptKeyword("NOT")
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		var e expr.Expr = expr.NewIsNull(l)
		if negated {
			e = expr.NewNot(e)
		}
		return e, nil
	}
	return l, nil
}

var addOps = map[string]expr.ArithOp{"+": expr.OpAdd, "-": expr.OpSub}
var mulOps = map[string]expr.ArithOp{"*": expr.OpMul, "/": expr.OpDiv, "%": expr.OpMod}

func (p *parser) addExpr() (expr.Expr, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		op, ok := addOps[t.text]
		if t.kind != tokSymbol || !ok {
			return l, nil
		}
		p.idx++
		r, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		l = expr.NewArith(op, l, r)
	}
}

func (p *parser) mulExpr() (expr.Expr, error) {
	l, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		op, ok := mulOps[t.text]
		if t.kind != tokSymbol || !ok {
			return l, nil
		}
		p.idx++
		r, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		l = expr.NewArith(op, l, r)
	}
}

func (p *parser) unaryExpr() (expr.Expr, error) {
	if p.acceptSymbol("-") {
		e, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		// Fold negative literals.
		if c, ok := e.(*expr.Const); ok {
			switch c.Val.Kind() {
			case types.KindInt:
				return expr.NewConst(types.NewInt(-c.Val.Int())), nil
			case types.KindFloat:
				return expr.NewConst(types.NewFloat(-c.Val.Float())), nil
			}
		}
		return expr.NewArith(expr.OpSub, expr.NewConst(types.NewInt(0)), e), nil
	}
	return p.primary()
}

func (p *parser) primary() (expr.Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.idx++
		if strings.ContainsRune(t.text, '.') {
			v, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errf("bad number %q", t.text)
			}
			return expr.NewConst(types.NewFloat(v)), nil
		}
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad number %q", t.text)
		}
		return expr.NewConst(types.NewInt(v)), nil
	case tokString:
		p.idx++
		return expr.NewConst(types.NewString(t.text)), nil
	case tokSymbol:
		if t.text == "(" {
			p.idx++
			e, err := p.orExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		return nil, p.errf("unexpected %s", t)
	case tokIdent:
		switch {
		case strings.EqualFold(t.text, "TRUE"):
			p.idx++
			return expr.NewConst(types.NewBool(true)), nil
		case strings.EqualFold(t.text, "FALSE"):
			p.idx++
			return expr.NewConst(types.NewBool(false)), nil
		case strings.EqualFold(t.text, "NULL"):
			p.idx++
			return expr.NewConst(types.Null), nil
		}
		p.idx++
		if p.acceptSymbol("(") {
			return p.finishCall(t.text)
		}
		return expr.NewColumn(t.text), nil
	default:
		return nil, p.errf("unexpected %s", t)
	}
}

func (p *parser) finishCall(fn string) (expr.Expr, error) {
	call := &expr.Call{Fn: fn}
	if p.acceptSymbol(")") {
		return p.maybeAccuracy(call)
	}
	// COUNT(*) and friends.
	if p.acceptSymbol("*") {
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		call.Args = []expr.Expr{expr.Star{}}
		return call, nil
	}
	for {
		a, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		call.Args = append(call.Args, a)
		if p.acceptSymbol(")") {
			break
		}
		if err := p.expectSymbol(","); err != nil {
			return nil, err
		}
	}
	return p.maybeAccuracy(call)
}

func (p *parser) maybeAccuracy(call *expr.Call) (expr.Expr, error) {
	if p.acceptKeyword("ACCURACY") {
		level, err := p.expectString()
		if err != nil {
			return nil, err
		}
		call.Accuracy = level
	}
	return call, nil
}

// createUDF parses CREATE [OR REPLACE] UDF per Listing 2.
func (p *parser) createUDF() (*CreateUDFStmt, error) {
	s := &CreateUDFStmt{Properties: map[string]string{}}
	if p.acceptKeyword("OR") {
		if err := p.expectKeyword("REPLACE"); err != nil {
			return nil, err
		}
		s.OrReplace = true
	}
	if err := p.expectKeyword("UDF"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	s.Name = name
	for {
		switch {
		case p.acceptKeyword("INPUT"):
			if s.Inputs, err = p.colDefList(); err != nil {
				return nil, err
			}
		case p.acceptKeyword("OUTPUT"):
			if s.Outputs, err = p.colDefList(); err != nil {
				return nil, err
			}
		case p.acceptKeyword("IMPL"):
			if err := p.expectSymbol("="); err != nil {
				return nil, err
			}
			if s.Impl, err = p.expectString(); err != nil {
				return nil, err
			}
		case p.acceptKeyword("LOGICAL_TYPE"):
			if err := p.expectSymbol("="); err != nil {
				return nil, err
			}
			if s.LogicalType, err = p.expectIdent(); err != nil {
				return nil, err
			}
		case p.acceptKeyword("PROPERTIES"):
			if err := p.properties(s.Properties); err != nil {
				return nil, err
			}
		default:
			if s.Impl == "" && len(s.Outputs) == 0 {
				return nil, p.errf("CREATE UDF %s needs at least IMPL or OUTPUT, found %s", s.Name, p.peek())
			}
			return s, nil
		}
	}
}

func (p *parser) colDefList() ([]ColDef, error) {
	if err := p.expectSymbol("="); err != nil {
		return nil, err
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	var out []ColDef
	for {
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		typeName, kind, err := p.typeDecl()
		if err != nil {
			return nil, err
		}
		out = append(out, ColDef{Name: name, TypeName: typeName, Kind: kind})
		if p.acceptSymbol(")") {
			return out, nil
		}
		if err := p.expectSymbol(","); err != nil {
			return nil, err
		}
	}
}

// typeDecl parses a column type, accepting both the simple SQL names
// and the Listing 2 NDARRAY forms ("NDARRAY UINT8(3, ANYDIM, ANYDIM)",
// "NDARRAY STR(ANYDIM)", "NDARRAY FLOAT32(ANYDIM, 4)").
func (p *parser) typeDecl() (string, types.Kind, error) {
	base, err := p.expectIdent()
	if err != nil {
		return "", types.KindNull, err
	}
	parts := []string{strings.ToUpper(base)}
	if strings.EqualFold(base, "NDARRAY") {
		elem, err := p.expectIdent()
		if err != nil {
			return "", types.KindNull, err
		}
		parts = append(parts, strings.ToUpper(elem))
	}
	if p.acceptSymbol("(") {
		var dims []string
		for {
			t := p.next()
			if t.kind != tokIdent && t.kind != tokNumber {
				return "", types.KindNull, p.errf("bad type dimension %s", t)
			}
			dims = append(dims, strings.ToUpper(t.text))
			if p.acceptSymbol(")") {
				break
			}
			if err := p.expectSymbol(","); err != nil {
				return "", types.KindNull, err
			}
		}
		parts = append(parts, "("+strings.Join(dims, ", ")+")")
	}
	typeName := strings.Join(parts[:min(2, len(parts))], " ")
	if len(parts) > 2 || (len(parts) == 2 && strings.HasPrefix(parts[len(parts)-1], "(")) {
		typeName = strings.Join(parts, " ")
		typeName = strings.Replace(typeName, " (", "(", 1)
	}
	return typeName, kindForType(parts), nil
}

func kindForType(parts []string) types.Kind {
	switch parts[0] {
	case "INTEGER", "INT", "BIGINT":
		return types.KindInt
	case "FLOAT", "DOUBLE", "REAL":
		return types.KindFloat
	case "TEXT", "STRING", "VARCHAR":
		return types.KindString
	case "BOOLEAN", "BOOL":
		return types.KindBool
	case "BYTES", "BLOB":
		return types.KindBytes
	case "NDARRAY":
		if len(parts) > 1 && strings.HasPrefix(parts[1], "STR") {
			return types.KindString
		}
		return types.KindBytes
	default:
		return types.KindBytes
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// properties parses PROPERTIES = ('K' = 'V', ...).
func (p *parser) properties(into map[string]string) error {
	if err := p.expectSymbol("="); err != nil {
		return err
	}
	if err := p.expectSymbol("("); err != nil {
		return err
	}
	for {
		k, err := p.expectString()
		if err != nil {
			return err
		}
		if err := p.expectSymbol("="); err != nil {
			return err
		}
		v, err := p.expectString()
		if err != nil {
			return err
		}
		into[strings.ToUpper(k)] = v
		if p.acceptSymbol(")") {
			return nil
		}
		if err := p.expectSymbol(","); err != nil {
			return err
		}
	}
}

// loadStmt parses LOAD VIDEO '<dataset>' INTO <table>.
func (p *parser) loadStmt() (*LoadStmt, error) {
	if err := p.expectKeyword("VIDEO"); err != nil {
		return nil, err
	}
	ds, err := p.expectString()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	return &LoadStmt{Dataset: ds, Table: table}, nil
}
