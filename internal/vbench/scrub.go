package vbench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"eva"
	"eva/internal/vision"
)

// The scrub/repair benchmark measures the self-healing view storage
// (DESIGN.md §15) end to end: an exploratory workload materializes
// views, the on-disk logs are corrupted at scripted sites, and the
// scrub → symbolic repair → compaction pipeline heals them. Reported
// per cell: rows salvaged vs recomputed, repair latency (virtual
// time), and compaction byte amplification. Everything runs on the
// virtual clock, so the committed baseline (BENCH_scrub.json) is
// deterministic across machines.

// scrubWorkload builds id-keyed detector views with enough records
// that interior corruption leaves both a salvageable prefix and a
// re-synchronizable suffix.
var scrubWorkload = []string{
	`SELECT id, label FROM video CROSS APPLY ObjectDetector(frame) WHERE id < 120 AND label = 'car'`,
	`SELECT id FROM video CROSS APPLY FasterRCNNResnet50(frame) WHERE id < 200`,
	`SELECT id FROM video CROSS APPLY ObjectDetector(frame) WHERE id >= 60 AND id < 180`,
}

// ScrubCell is one corruption-site measurement.
type ScrubCell struct {
	// Site names the corruption placement: "header", "mid@<frac>", or
	// "tail".
	Site string `json:"site"`
	// RowsBefore is the total materialized rows before corruption.
	RowsBefore int `json:"rows_before"`
	// RowsSalvaged is what the scrub pass kept serving (valid prefix +
	// re-synchronized suffix).
	RowsSalvaged int `json:"rows_salvaged"`
	// RowsRecomputed is what symbolic repair re-evaluated to close the
	// quarantined residual.
	RowsRecomputed int `json:"rows_recomputed"`
	// QuarantinedViews counts views the scrub pass found corrupt.
	QuarantinedViews int `json:"quarantined_views"`
	// RepairNs is the simulated time the repair pass consumed.
	RepairNs int64 `json:"repair_ns"`
	// CompactBytesBefore/After sum the log footprints around the
	// generational rewrite (before includes quarantined dead ranges).
	CompactBytesBefore int64 `json:"compact_bytes_before"`
	CompactBytesAfter  int64 `json:"compact_bytes_after"`
	// Converged reports whether the healed system's workload digest was
	// byte-identical to the never-corrupted baseline. RunScrubBench
	// fails if any cell is false.
	Converged bool `json:"converged"`
}

// ScrubResult is the JSON-serialized baseline (BENCH_scrub.json).
type ScrubResult struct {
	Benchmark string      `json:"benchmark"`
	Dataset   string      `json:"dataset"`
	Queries   int         `json:"queries"`
	Cells     []ScrubCell `json:"cells"`
	// RepairNsP50/P99 are percentiles over the cells' repair times.
	RepairNsP50 int64 `json:"repair_ns_p50"`
	RepairNsP99 int64 `json:"repair_ns_p99"`
	// CompactionAmplification is total new-generation bytes written per
	// byte of pre-compaction log across all cells.
	CompactionAmplification float64 `json:"compaction_amplification"`
}

// scrubSites are the scripted corruption placements: total header
// loss, interior flips at three depths, and a torn tail.
var scrubSites = []struct {
	name string
	frac float64 // flip offset as a fraction of file size; <0 = header, >=1 = tail
}{
	{"header", -1},
	{"mid@0.3", 0.3},
	{"mid@0.5", 0.5},
	{"mid@0.7", 0.7},
	{"tail", 1},
}

// scrubFlip corrupts every view log under dir at the site.
func scrubFlip(dir string, frac float64) error {
	paths, err := filepath.Glob(filepath.Join(dir, "views", "*.view"))
	if err != nil {
		return err
	}
	if len(paths) == 0 {
		return fmt.Errorf("vbench: no view logs under %s", dir)
	}
	sort.Strings(paths)
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		var off int64
		switch {
		case frac < 0:
			off = 1 // header magic
		case frac >= 1:
			off = int64(len(data)) - 5 // final record's checksum
		default:
			off = int64(float64(len(data)) * frac)
		}
		data[off] ^= 0xff
		if err := os.WriteFile(p, data, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// scrubRunWorkload executes the workload and returns its output digest
// (rows or error text per query, plus sorted view row counts).
func scrubRunWorkload(sys *eva.System) string {
	var out strings.Builder
	for i, q := range scrubWorkload {
		res, err := sys.Exec(q)
		fmt.Fprintf(&out, "== query %d ==\n", i+1)
		if err != nil {
			fmt.Fprintf(&out, "error: %v\n", err)
			continue
		}
		out.WriteString(eva.Format(res.Rows))
	}
	views := sys.ViewRows()
	names := make([]string, 0, len(views))
	for n := range views {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&out, "view %s: %d rows\n", n, views[n])
	}
	return out.String()
}

func scrubTotalRows(sys *eva.System) int {
	total := 0
	for _, n := range sys.ViewRows() {
		total += n
	}
	return total
}

// RunScrubBench measures one cell per corruption site and verifies
// convergence to the pristine baseline.
func RunScrubBench() (*ScrubResult, error) {
	res := &ScrubResult{
		Benchmark: "scrub-repair",
		Dataset:   vision.Jackson.Name,
		Queries:   len(scrubWorkload),
	}

	// Pristine baseline: the digest every healed cell must reproduce.
	baseDir, err := os.MkdirTemp("", "vbench-scrub-base")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(baseDir)
	baseSys, err := eva.Open(eva.Config{Dir: baseDir, Workers: 8})
	if err != nil {
		return nil, err
	}
	if err := baseSys.LoadVideo("video", "jackson"); err != nil {
		baseSys.Close()
		return nil, err
	}
	scrubRunWorkload(baseSys)
	baseline := scrubRunWorkload(baseSys)
	baseSys.Close()

	var repairTimes []int64
	for _, site := range scrubSites {
		dir, err := os.MkdirTemp("", "vbench-scrub")
		if err != nil {
			return nil, err
		}
		cell, err := runScrubCell(dir, site.name, site.frac, baseline)
		os.RemoveAll(dir)
		if err != nil {
			return nil, fmt.Errorf("vbench: scrub cell %s: %w", site.name, err)
		}
		if !cell.Converged {
			return nil, fmt.Errorf("vbench: scrub cell %s did not converge to the pristine baseline", site.name)
		}
		repairTimes = append(repairTimes, cell.RepairNs)
		res.Cells = append(res.Cells, *cell)
	}

	sorted := append([]int64(nil), repairTimes...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	pct := func(p float64) int64 {
		if len(sorted) == 0 {
			return 0
		}
		idx := int(p * float64(len(sorted)-1))
		return sorted[idx]
	}
	res.RepairNsP50 = pct(0.50)
	res.RepairNsP99 = pct(0.99)
	var before, after int64
	for _, c := range res.Cells {
		before += c.CompactBytesBefore
		after += c.CompactBytesAfter
	}
	if before > 0 {
		res.CompactionAmplification = float64(after) / float64(before)
	}
	return res, nil
}

// runScrubCell runs one corrupt → scrub → repair → re-run cycle.
func runScrubCell(dir, site string, frac float64, baseline string) (*ScrubCell, error) {
	sys, err := eva.Open(eva.Config{Dir: dir, Workers: 8})
	if err != nil {
		return nil, err
	}
	defer sys.Close()
	if err := sys.LoadVideo("video", "jackson"); err != nil {
		return nil, err
	}
	scrubRunWorkload(sys)
	cell := &ScrubCell{Site: site, RowsBefore: scrubTotalRows(sys)}

	if err := scrubFlip(dir, frac); err != nil {
		return nil, err
	}
	rep, err := sys.Scrub()
	if err != nil {
		return nil, err
	}
	for _, f := range rep.Findings {
		if f.Err != "" {
			return nil, fmt.Errorf("scrub finding %s: %s", f.Name, f.Err)
		}
		if !f.Clean {
			cell.QuarantinedViews++
		}
	}
	cell.RowsSalvaged = scrubTotalRows(sys)

	repairStart := sys.SimulatedTime()
	rrep, err := sys.Repair()
	if err != nil {
		return nil, err
	}
	cell.RepairNs = int64(sys.SimulatedTime() - repairStart)
	for _, r := range rrep.Records {
		if r.Err != "" {
			return nil, fmt.Errorf("repair %s: %s", r.View, r.Err)
		}
		cell.CompactBytesBefore += r.CompactBytesBefore
		cell.CompactBytesAfter += r.CompactBytesAfter
	}
	// The warm re-run closes any residual the synthesized range queries
	// could not bound, then must byte-match the pristine baseline.
	healed := scrubRunWorkload(sys)
	cell.RowsRecomputed = scrubTotalRows(sys) - cell.RowsSalvaged
	cell.Converged = healed == baseline
	return cell, nil
}

// JSON renders the result as indented JSON (BENCH_scrub.json).
func (r *ScrubResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// ExpScrub is the cmd/vbench experiment wrapper.
func ExpScrub(ExpConfig) (string, error) {
	res, err := RunScrubBench()
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d queries × %d corruption sites — every cell healed to the pristine digest\n",
		res.Queries, len(res.Cells))
	fmt.Fprintf(&sb, "%-9s | %6s | %8s | %10s | %12s | %10s\n",
		"Site", "rows", "salvaged", "recomputed", "repair simt", "compact")
	sb.WriteString(strings.Repeat("-", 70) + "\n")
	for _, c := range res.Cells {
		ratio := 0.0
		if c.CompactBytesBefore > 0 {
			ratio = 100 * float64(c.CompactBytesAfter) / float64(c.CompactBytesBefore)
		}
		fmt.Fprintf(&sb, "%-9s | %6d | %8d | %10d | %12s | %5.1f%%\n",
			c.Site, c.RowsBefore, c.RowsSalvaged, c.RowsRecomputed,
			time.Duration(c.RepairNs).Round(time.Millisecond), ratio)
	}
	fmt.Fprintf(&sb, "repair simtime p50 %s, p99 %s; compaction amplification %.3f\n",
		time.Duration(res.RepairNsP50).Round(time.Millisecond),
		time.Duration(res.RepairNsP99).Round(time.Millisecond),
		res.CompactionAmplification)
	return sb.String(), nil
}
