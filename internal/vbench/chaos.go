package vbench

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"

	"eva"
	"eva/internal/faults"
	"eva/internal/vision"
)

// The chaos differential benchmark: an exploratory workload replayed
// under seeded fault schedules spanning four regimes (transient,
// permanent, crash, deadline), once serial and once at Workers=8. The
// determinism contract under faults — decisions keyed by call identity
// rather than draw order — requires every observable (per-query rows
// or error text, view state, UDF counters, the injected-fault event
// log, virtual-clock totals) to be byte-identical at both worker
// counts. The committed baseline is BENCH_chaos.json.

// chaosWorkload mirrors the fault-sweep query mix: a degradable
// logical-UDF query, overlapping physical-model queries exercising
// reuse, a predicate UDF and a partially covered range.
var chaosWorkload = []string{
	`SELECT id, label FROM video CROSS APPLY ObjectDetector(frame) WHERE id < 120 AND label = 'car'`,
	`SELECT id FROM video CROSS APPLY FasterRCNNResnet50(frame) WHERE id < 200`,
	`SELECT id, label FROM video CROSS APPLY FasterRCNNResnet50(frame)
		WHERE id < 260 AND label = 'car' AND ColorDet(frame, bbox) = 'Gray'`,
	`SELECT id FROM video CROSS APPLY ObjectDetector(frame) WHERE id >= 60 AND id < 180`,
}

// chaosRegimeRules installs one regime's fault rules, matching the
// fault-sweep and chaos-matrix tests.
func chaosRegimeRules(inj *faults.Injector, regime string, seed uint64) {
	switch regime {
	case "transient":
		inj.Rule(faults.SiteUDFAny, faults.Rule{Kind: faults.Transient, Prob: 0.08})
		inj.Rule(faults.SiteViewWriteAny, faults.Rule{Kind: faults.Transient, Prob: 0.05})
	case "permanent":
		inj.Rule(faults.SiteUDF(vision.YoloTiny), faults.Rule{Kind: faults.Permanent, Prob: 1})
	case "crash":
		inj.Rule(faults.SiteViewWriteAny, faults.Rule{
			Kind: faults.Crash, Prob: 0.2, ShortWrite: int(seed * 13 % 97),
		})
	case "deadline":
		inj.Rule(faults.SiteDeadline, faults.Rule{Kind: faults.Permanent, At: []int{10}})
	}
}

// ChaosCell is one (regime, seed) measurement across worker counts.
type ChaosCell struct {
	Regime string `json:"regime"`
	Seed   uint64 `json:"seed"`
	// Injected is the number of faults fired in the serial run (the
	// parallel run must fire the identical schedule).
	Injected int `json:"injected"`
	// FailedQueries counts workload queries that surfaced an error.
	FailedQueries int `json:"failed_queries"`
	// SimNs is the cumulative simulated time of the serial run.
	SimNs int64 `json:"sim_ns"`
	// Identical reports whether the Workers=8 digest was byte-equal to
	// the serial one. RunChaosBench fails if any cell is false, so a
	// committed baseline always shows all-true.
	Identical bool `json:"identical"`
}

// ChaosResult is the JSON-serialized baseline (BENCH_chaos.json).
type ChaosResult struct {
	Benchmark string      `json:"benchmark"`
	Dataset   string      `json:"dataset"`
	Queries   int         `json:"queries"`
	Workers   []int       `json:"workers"`
	Cells     []ChaosCell `json:"cells"`
}

// ChaosBenchConfig parameterizes RunChaosBench.
type ChaosBenchConfig struct {
	SeedsPerRegime int
	Workers        []int // first entry is the serial baseline
}

// DefaultChaosBench is the committed-baseline configuration.
func DefaultChaosBench() ChaosBenchConfig {
	return ChaosBenchConfig{SeedsPerRegime: 3, Workers: []int{1, 8}}
}

// chaosDigest runs the workload under one fault schedule and returns
// (digest, injected count, failed queries, total simulated ns).
func chaosDigest(workers int, regime string, seed uint64) (string, int, int, int64, error) {
	sys, err := eva.Open(eva.Config{Workers: workers})
	if err != nil {
		return "", 0, 0, 0, err
	}
	defer sys.Close()
	if err := sys.LoadVideo("video", "jackson"); err != nil {
		return "", 0, 0, 0, err
	}
	inj := faults.New(seed)
	chaosRegimeRules(inj, regime, seed)
	sys.InjectFaults(inj)

	var out strings.Builder
	failed := 0
	for i, q := range chaosWorkload {
		res, err := sys.Exec(q)
		fmt.Fprintf(&out, "== query %d ==\n", i+1)
		if err != nil {
			failed++
			fmt.Fprintf(&out, "error: %v\n", err)
			continue
		}
		out.WriteString(eva.Format(res.Rows))
		fmt.Fprintf(&out, "simtime: %d\n", res.SimTime)
	}
	views := sys.ViewRows()
	names := make([]string, 0, len(views))
	for n := range views {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&out, "view %s: %d rows\n", n, views[n])
	}
	counters := sys.UDFCounters()
	cnames := make([]string, 0, len(counters))
	for n := range counters {
		cnames = append(cnames, n)
	}
	sort.Strings(cnames)
	for _, n := range cnames {
		fmt.Fprintf(&out, "udf %s: %+v\n", n, counters[n])
	}
	fmt.Fprintf(&out, "hit%%: %.6f\n", sys.HitPercentage())
	for _, ev := range inj.EventsSorted() {
		fmt.Fprintf(&out, "fault %+v\n", ev)
	}
	return out.String(), inj.Injected(), failed, int64(sys.SimulatedTime()), nil
}

// RunChaosBench replays the workload under every (regime, seed) cell
// at each worker count and verifies the digests are byte-identical. A
// divergence is an error — the benchmark is the determinism contract's
// executable form, not a best-effort measurement.
func RunChaosBench(cfg ChaosBenchConfig) (*ChaosResult, error) {
	res := &ChaosResult{
		Benchmark: "chaos-differential",
		Dataset:   vision.Jackson.Name,
		Queries:   len(chaosWorkload),
		Workers:   cfg.Workers,
	}
	for _, regime := range []string{"transient", "permanent", "crash", "deadline"} {
		for s := 0; s < cfg.SeedsPerRegime; s++ {
			// Seeds follow the fault sweep's regime mapping
			// (regime = seed mod 4: transient 0, permanent 1,
			// crash 2, deadline 3).
			seed := uint64(s)*4 + map[string]uint64{
				"transient": 4, "permanent": 1, "crash": 2, "deadline": 3,
			}[regime]
			base, injected, failed, simNs, err := chaosDigest(cfg.Workers[0], regime, seed)
			if err != nil {
				return nil, fmt.Errorf("vbench: chaos %s seed %d serial: %w", regime, seed, err)
			}
			cell := ChaosCell{
				Regime: regime, Seed: seed,
				Injected: injected, FailedQueries: failed, SimNs: simNs,
				Identical: true,
			}
			for _, w := range cfg.Workers[1:] {
				got, _, _, _, err := chaosDigest(w, regime, seed)
				if err != nil {
					return nil, fmt.Errorf("vbench: chaos %s seed %d workers %d: %w", regime, seed, w, err)
				}
				if got != base {
					cell.Identical = false
					return nil, fmt.Errorf("vbench: chaos %s seed %d diverged at workers=%d", regime, seed, w)
				}
			}
			res.Cells = append(res.Cells, cell)
		}
	}
	return res, nil
}

// JSON renders the result as indented JSON (BENCH_chaos.json).
func (r *ChaosResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// ExpChaos is the cmd/vbench experiment wrapper.
func ExpChaos(ExpConfig) (string, error) {
	res, err := RunChaosBench(DefaultChaosBench())
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d queries × %d fault cells, workers %v — all digests byte-identical to serial\n",
		res.Queries, len(res.Cells), res.Workers)
	fmt.Fprintf(&sb, "%-10s | %5s | %8s | %7s | %12s\n", "Regime", "seed", "injected", "failed", "sim time")
	sb.WriteString(strings.Repeat("-", 54) + "\n")
	for _, c := range res.Cells {
		fmt.Fprintf(&sb, "%-10s | %5d | %8d | %7d | %12s\n",
			c.Regime, c.Seed, c.Injected, c.FailedQueries,
			time.Duration(c.SimNs).Round(time.Millisecond))
	}
	return sb.String(), nil
}
