package vbench

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"eva"
	"eva/internal/vision"
)

// The serving-layer load benchmark: one System under admission control
// serves an open-loop fleet of concurrent sessions issuing a
// reuse-heavy exploratory mix against a shared table. With more
// sessions than concurrency tokens the admission queue fills, queued
// queries accrue virtual-clock wait, and the overflow is shed with the
// typed errors. The committed baseline is BENCH_server.json: admitted
// and shed counts, virtual queue-wait percentiles, and throughput.

// serverWorkload is the per-session query mix. Overlapping detector
// ranges on one shared table make the run exercise cross-session view
// reuse and the per-key claims protocol, not just admission.
var serverWorkload = []string{
	`SELECT id, label FROM video CROSS APPLY FasterRCNNResnet50(frame) WHERE id < 80`,
	`SELECT id FROM video CROSS APPLY FasterRCNNResnet50(frame) WHERE id < 60 AND label = 'car'`,
	`SELECT id, seconds FROM video WHERE id < 100`,
	`SELECT id FROM video CROSS APPLY ObjectDetector(frame) WHERE id < 50`,
}

// ServerBenchConfig parameterizes RunServerBench.
type ServerBenchConfig struct {
	Sessions          int
	QueriesPerSession int
	MaxConcurrent     int
	QueueDepth        int
	// QueueTimeout is the virtual-clock wait budget of a queued query.
	QueueTimeout time.Duration
	Workers      int
	// MemoryBudget caps each query's materialized bytes (0 = unlimited).
	MemoryBudget int64
}

// DefaultServerBench is the committed-baseline configuration: 8
// sessions contending for 2 tokens with a short queue, so all three
// admission outcomes (admitted, shed on overload, shed on virtual
// timeout) appear in one run.
func DefaultServerBench() ServerBenchConfig {
	return ServerBenchConfig{
		Sessions:          8,
		QueriesPerSession: 12,
		MaxConcurrent:     2,
		QueueDepth:        2,
		QueueTimeout:      4 * time.Second,
		Workers:           2,
	}
}

// ServerResult is the JSON-serialized baseline (BENCH_server.json).
type ServerResult struct {
	Benchmark         string `json:"benchmark"`
	Dataset           string `json:"dataset"`
	Sessions          int    `json:"sessions"`
	QueriesPerSession int    `json:"queries_per_session"`
	MaxConcurrent     int    `json:"max_concurrent"`
	QueueDepth        int    `json:"queue_depth"`
	QueueTimeoutNs    int64  `json:"queue_timeout_ns"`

	Queries      int `json:"queries"`
	Succeeded    int `json:"succeeded"`
	ShedOverload int `json:"shed_overload"`
	ShedTimeout  int `json:"shed_timeout"`

	QueueWaitP50Ns int64 `json:"queue_wait_p50_ns"`
	QueueWaitP99Ns int64 `json:"queue_wait_p99_ns"`

	SimNs         int64   `json:"sim_ns"`
	WallMs        float64 `json:"wall_ms"`
	ThroughputQPS float64 `json:"throughput_qps"`
}

// RunServerBench drives the open-loop fleet and collects admission
// outcomes. Any error other than the typed shedding errors fails the
// benchmark: under pure load (no fault injection) queries either
// succeed or are shed, never break.
func RunServerBench(cfg ServerBenchConfig) (*ServerResult, error) {
	sys, err := eva.Open(eva.Config{
		Workers:             cfg.Workers,
		MaxConcurrent:       cfg.MaxConcurrent,
		AdmissionQueueDepth: cfg.QueueDepth,
		QueueTimeout:        cfg.QueueTimeout,
		MemoryBudget:        cfg.MemoryBudget,
	})
	if err != nil {
		return nil, err
	}
	defer sys.Close()
	if err := sys.LoadVideo("video", "jackson"); err != nil {
		return nil, err
	}

	type tally struct{ ok, overload, timeout int }
	tallies := make([]tally, cfg.Sessions)
	errCh := make(chan error, cfg.Sessions)
	var wg sync.WaitGroup
	start := time.Now()
	for k := 0; k < cfg.Sessions; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			sess := sys.NewSession()
			for i := 0; i < cfg.QueriesPerSession; i++ {
				q := serverWorkload[(k+i)%len(serverWorkload)]
				_, err := sess.Exec(q)
				switch {
				case err == nil:
					tallies[k].ok++
				case errors.Is(err, eva.ErrOverloaded):
					tallies[k].overload++
				case errors.Is(err, eva.ErrQueueTimeout):
					tallies[k].timeout++
				default:
					errCh <- fmt.Errorf("session %d query %d: %w", k, i, err)
					return
				}
			}
		}(k)
	}
	wg.Wait()
	wall := time.Since(start)
	select {
	case err := <-errCh:
		return nil, err
	default:
	}

	res := &ServerResult{
		Benchmark:         "server-load",
		Dataset:           vision.Jackson.Name,
		Sessions:          cfg.Sessions,
		QueriesPerSession: cfg.QueriesPerSession,
		MaxConcurrent:     cfg.MaxConcurrent,
		QueueDepth:        cfg.QueueDepth,
		QueueTimeoutNs:    int64(cfg.QueueTimeout),
		Queries:           cfg.Sessions * cfg.QueriesPerSession,
		SimNs:             int64(sys.SimulatedTime()),
		WallMs:            float64(wall.Nanoseconds()) / 1e6,
	}
	for _, tl := range tallies {
		res.Succeeded += tl.ok
		res.ShedOverload += tl.overload
		res.ShedTimeout += tl.timeout
	}
	if got := res.Succeeded + res.ShedOverload + res.ShedTimeout; got != res.Queries {
		return nil, fmt.Errorf("vbench: server outcomes %d != queries %d", got, res.Queries)
	}
	if res.Succeeded == 0 {
		return nil, fmt.Errorf("vbench: server bench succeeded nothing — saturated beyond usefulness")
	}
	st := sys.AdmissionStats()
	res.QueueWaitP50Ns = int64(st.QueueWaitP50)
	res.QueueWaitP99Ns = int64(st.QueueWaitP99)
	if wall > 0 {
		res.ThroughputQPS = float64(res.Succeeded) / wall.Seconds()
	}
	return res, nil
}

// JSON renders the result as indented JSON (BENCH_server.json).
func (r *ServerResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// ExpServer is the cmd/vbench experiment wrapper.
func ExpServer(ExpConfig) (string, error) {
	res, err := RunServerBench(DefaultServerBench())
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d sessions × %d queries against %d tokens (queue %d, virtual timeout %s)\n",
		res.Sessions, res.QueriesPerSession, res.MaxConcurrent, res.QueueDepth,
		time.Duration(res.QueueTimeoutNs))
	fmt.Fprintf(&sb, "succeeded %d, shed %d overload + %d timeout — %.1f q/s wall\n",
		res.Succeeded, res.ShedOverload, res.ShedTimeout, res.ThroughputQPS)
	fmt.Fprintf(&sb, "virtual queue wait p50 %s, p99 %s\n",
		time.Duration(res.QueueWaitP50Ns).Round(time.Microsecond),
		time.Duration(res.QueueWaitP99Ns).Round(time.Microsecond))
	return sb.String(), nil
}
