package vbench

import (
	"strings"
	"testing"

	"eva/internal/vision"
)

// smallCfg runs experiments at 1/20 scale for fast tests.
var smallCfg = ExpConfig{Scale: 0.05}

func TestExperimentRegistry(t *testing.T) {
	exps := Experiments()
	if len(exps) != 21 {
		t.Fatalf("experiments = %d, want 21 (every table and figure, plus the parallel, chaos, server, ingest, alloc, scrub and evict extensions)", len(exps))
	}
	seen := map[string]bool{}
	for _, e := range exps {
		if e.ID == "" || e.Title == "" || e.Paper == "" || e.Run == nil {
			t.Errorf("experiment %+v incomplete", e.ID)
		}
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %s", e.ID)
		}
		seen[e.ID] = true
	}
	if _, err := ExperimentByID("table2"); err != nil {
		t.Error(err)
	}
	if _, err := ExperimentByID("nope"); err == nil {
		t.Error("unknown id should error")
	}
}

func TestExpTable2SmallScale(t *testing.T) {
	out, err := ExpTable2(smallCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "vbench-low") || !strings.Contains(out, "vbench-high") {
		t.Errorf("output missing workloads:\n%s", out)
	}
}

func TestExpTable3And5(t *testing.T) {
	out, err := ExpTable3(smallCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"FasterRCNNResnet50", "CarType", "ColorDet", "Eq. 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("table 3 missing %q:\n%s", want, out)
		}
	}
	out, err = ExpTable5(smallCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"YoloTiny", "37.9", "42.0", "120"} {
		if !strings.Contains(out, want) {
			t.Errorf("table 5 missing %q:\n%s", want, out)
		}
	}
}

func TestExpTable4(t *testing.T) {
	out, err := ExpTable4(smallCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "No-Reuse") || !strings.Contains(out, "EVA") {
		t.Errorf("table 4 output:\n%s", out)
	}
}

func TestExpFig5AndFig6(t *testing.T) {
	out, err := ExpFig5(smallCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Speedup") {
		t.Errorf("fig5 output:\n%s", out)
	}
	out, err = ExpFig6(smallCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Q8-wide") || !strings.Contains(out, "overhead sources") {
		t.Errorf("fig6 output:\n%s", out)
	}
}

func TestFig7PointsShape(t *testing.T) {
	ds := smallCfg.scale(mediumForTests())
	points, err := Fig7Points(HighWorkload(ds))
	if err != nil {
		t.Fatal(err)
	}
	if len(points) == 0 {
		t.Fatal("no fig7 points")
	}
	// The defining property: EVA's reducer never needs more atoms than
	// the QM baseline on the union predicates of the refinement
	// sequence, and by the last step the baseline has grown larger for
	// the polyadic CarType predicate.
	var evaLast, simLast int
	for _, p := range points {
		if p.UDF == "cartype" && p.Kind == "union" {
			evaLast, simLast = p.EVAAtoms, p.SimplifyAtoms
		}
	}
	if evaLast == 0 {
		t.Fatal("no cartype union points")
	}
	if evaLast > simLast {
		t.Errorf("EVA atoms %d exceed simplify %d on final cartype union", evaLast, simLast)
	}
	if simLast <= 2 {
		t.Errorf("simplify final atoms = %d; expected growth over refinements", simLast)
	}
}

func TestExpFig8Fig9(t *testing.T) {
	out, err := ExpFig8(smallCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Perm") || !strings.Contains(out, "convergence") {
		t.Errorf("fig8 output:\n%s", out)
	}
	rows, err := Fig9Rows(smallCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no multi-UDF queries found for fig9")
	}
	// At least one query should benefit from materialization-aware
	// reordering across the permutations.
	best := 0.0
	for _, r := range rows {
		if r.Speedup > best {
			best = r.Speedup
		}
	}
	if best < 1.2 {
		t.Errorf("best reordering speedup = %.2f, want > 1.2", best)
	}
}

func TestExpFig10Through12(t *testing.T) {
	out, err := ExpFig10(smallCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "MinCost") {
		t.Errorf("fig10 output:\n%s", out)
	}
	out, err = ExpFig11(smallCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "vbench-high") {
		t.Errorf("fig11 output:\n%s", out)
	}
	out, err = ExpFig12(ExpConfig{Scale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "short-ua-detrac") || !strings.Contains(out, "long-ua-detrac") {
		t.Errorf("fig12 output:\n%s", out)
	}
}

func TestExpFiltersAndStorage(t *testing.T) {
	out, err := ExpFilters(smallCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "EVA+Filter") {
		t.Errorf("filters output:\n%s", out)
	}
	out, err = ExpStorage(smallCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "overhead") {
		t.Errorf("storage output:\n%s", out)
	}
}

func mediumForTests() vision.Dataset { return vision.MediumUADetrac }
