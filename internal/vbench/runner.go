package vbench

import (
	"fmt"
	"time"

	"eva"
	"eva/internal/simclock"
	"eva/internal/udf"
)

// QueryMetrics captures one query's execution under a system.
type QueryMetrics struct {
	Label     string
	Rows      int
	Sim       time.Duration
	Wall      time.Duration
	Breakdown eva.Breakdown
	// Order is the scalar-UDF evaluation order the optimizer chose.
	Order []string
	// Preds carries the symbolic analysis (Fig. 7's atom counts).
	Preds map[string]eva.PredInfo
	// ViewRows snapshots per-view materialized rows after the query
	// (Fig. 8(b) convergence).
	ViewRows map[string]int
}

// RunMetrics captures a whole workload run.
type RunMetrics struct {
	System    eva.SystemMode
	Workload  string
	Queries   []QueryMetrics
	SimTotal  time.Duration
	WallTotal time.Duration
	// HitPct is Table 2's hit percentage.
	HitPct float64
	// UDFStats holds per-UDF #DI/#TI/reuse counters (Table 3).
	UDFStats map[string]udf.Stats
	// ViewBytes is the on-disk footprint of materialized views and
	// VideoVirtualBytes the simulated dataset size (§5.2).
	ViewBytes         int64
	VideoVirtualBytes int64
}

// Speedup returns base's simulated time divided by m's — the workload
// speedup metric of Fig. 5.
func (m *RunMetrics) Speedup(base *RunMetrics) float64 {
	if m.SimTotal <= 0 {
		return 0
	}
	return base.SimTotal.Seconds() / m.SimTotal.Seconds()
}

// Options tunes a workload run.
type Options struct {
	// BatchSize overrides the scan batch size.
	BatchSize int
	// CanonicalRanking forces the Eq. 2 ranking (Fig. 9 baseline).
	CanonicalRanking bool
	// MinCostLogical forces Min-Cost logical binding (Fig. 10 baseline).
	MinCostLogical bool
	// DisableReduction disables Algorithm 1 (ablation).
	DisableReduction bool
	// Dir persists storage to the given directory instead of a
	// temporary one.
	Dir string
}

// RunWorkload executes the workload from a clean state under the given
// system mode and returns its metrics.
func RunWorkload(mode eva.SystemMode, w Workload, opts Options) (*RunMetrics, error) {
	sys, err := eva.Open(eva.Config{
		Dir:              opts.Dir,
		Mode:             mode,
		BatchSize:        opts.BatchSize,
		CanonicalRanking: opts.CanonicalRanking,
		MinCostLogical:   opts.MinCostLogical,
		DisableReduction: opts.DisableReduction,
	})
	if err != nil {
		return nil, err
	}
	defer sys.Close()
	if err := sys.LoadDataset("video", w.Dataset); err != nil {
		return nil, err
	}

	out := &RunMetrics{System: mode, Workload: w.Name}
	for _, q := range w.Queries {
		res, err := sys.Exec(q.SQL)
		if err != nil {
			return nil, fmt.Errorf("vbench: %s %s: %w", w.Name, q.Label, err)
		}
		qm := QueryMetrics{
			Label:     q.Label,
			Rows:      res.Rows.Len(),
			Sim:       res.SimTime,
			Wall:      res.WallTime,
			Breakdown: res.Breakdown,
			Order:     append(res.Report.PreOrder, res.Report.Order...),
			Preds:     res.Report.Preds,
			ViewRows:  sys.ViewRows(),
		}
		out.Queries = append(out.Queries, qm)
		out.SimTotal += res.SimTime
		out.WallTotal += res.WallTime
	}
	out.HitPct = sys.HitPercentage()
	out.UDFStats = sys.UDFCounters()
	out.ViewBytes = sys.ViewFootprint()
	if vb, err := sys.DatasetVirtualBytes("video"); err == nil {
		out.VideoVirtualBytes = vb
	}
	return out, nil
}

// SpeedupBound computes Eq. 7's upper bound on workload speedup from
// no-reuse UDF demand statistics: ΣC_u over all invocations divided by
// ΣC_u over distinct invocations (ignoring the reuse-cost term).
func SpeedupBound(stats map[string]udf.Stats, costOf func(string) time.Duration) float64 {
	var all, distinct float64
	for name, st := range stats {
		c := costOf(name).Seconds()
		all += c * float64(st.Total)
		distinct += c * float64(st.Distinct)
	}
	if distinct == 0 {
		return 1
	}
	return all / distinct
}

// HitBreakdownRow is one Table 2 row.
type HitBreakdownRow struct {
	Workload string
	System   eva.SystemMode
	HitPct   float64
}

// Systems lists the comparison systems in the paper's presentation
// order (No-Reuse first).
func Systems() []eva.SystemMode {
	return []eva.SystemMode{eva.ModeNoReuse, eva.ModeHashStash, eva.ModeFunCache, eva.ModeEVA}
}

// CategoryBreakdown aggregates one category across a run's queries.
func (m *RunMetrics) CategoryBreakdown(cat simclock.Category) time.Duration {
	var total time.Duration
	for _, q := range m.Queries {
		total += q.Breakdown.Get(cat)
	}
	return total
}
