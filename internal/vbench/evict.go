package vbench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"eva"
	"eva/internal/vision"
)

// The evict benchmark measures disk-pressure survival (DESIGN.md §16)
// end to end: the exploratory workload runs under progressively
// tighter storage budgets, the engine reclaims along the degrade
// ladder (compact, then evict cold views), and every query must still
// return baseline-identical rows — eviction trades recompute time for
// disk, never answers. Reported per budget level: denials, bytes
// reclaimed per ladder tier, queries survived, and the warm re-run's
// simulated time (the evict-then-recompute penalty). Everything runs
// on the virtual clock, so the committed baseline (BENCH_evict.json)
// is deterministic across machines.

// evictWorkload builds several detector views of comparable size, so
// the largest single view is well below the total footprint and the
// budget levels between "admits everything" and "admits one view"
// actually differ. Every model is pinned (no unconstrained logical
// UDFs): an accuracy-unconstrained query may legitimately be served by
// whichever detector's view survives, which would break the
// byte-identity contract this benchmark verifies.
var evictWorkload = []string{
	`SELECT id, label FROM video CROSS APPLY FasterRCNNResnet50(frame) WHERE id < 160 AND label = 'car'`,
	`SELECT id FROM video CROSS APPLY FasterRCNNResnet50(frame) WHERE id < 150`,
	`SELECT id FROM video CROSS APPLY YoloTiny(frame) WHERE id < 170`,
	`SELECT id FROM video CROSS APPLY FasterRCNNResnet101(frame) WHERE id < 140`,
	`SELECT id FROM video CROSS APPLY YoloTiny(frame) WHERE id >= 40 AND id < 200`,
}

// EvictCell is one budget level's measurement.
type EvictCell struct {
	// Level names the budget sizing: "full", "threequarter", "half", or
	// "tight" (the floor that still admits the largest single view).
	Level string `json:"level"`
	// BudgetBytes is the configured limit.
	BudgetBytes int64 `json:"budget_bytes"`
	// UsedBytes is the charged footprint when the workload finished.
	UsedBytes int64 `json:"used_bytes"`
	// Denials counts budget admissions that had to wait for reclaim.
	Denials int64 `json:"denials"`
	// Evictions counts whole views evicted.
	Evictions int64 `json:"evictions"`
	// CompactReclaimedBytes / EvictReclaimedBytes split the reclaimed
	// bytes by ladder tier.
	CompactReclaimedBytes int64 `json:"compact_reclaimed_bytes"`
	EvictReclaimedBytes   int64 `json:"evict_reclaimed_bytes"`
	// QueriesSurvived counts statements that returned rows (all of them
	// must — RunEvictBench fails otherwise).
	QueriesSurvived int `json:"queries_survived"`
	// WarmNs is the warm re-run's simulated time: on an unconstrained
	// system the views serve everything; under pressure it includes the
	// evict-then-recompute penalty.
	WarmNs int64 `json:"warm_ns"`
	// Converged reports whether cold and warm outputs were
	// byte-identical to the unconstrained baseline.
	Converged bool `json:"converged"`
}

// EvictResult is the JSON-serialized baseline (BENCH_evict.json).
type EvictResult struct {
	Benchmark string `json:"benchmark"`
	Dataset   string `json:"dataset"`
	Queries   int    `json:"queries"`
	// BaselineBytes is the unconstrained charged footprint the budget
	// levels are sized from; BaselineWarmNs the unconstrained warm
	// re-run time.
	BaselineBytes  int64       `json:"baseline_bytes"`
	BaselineWarmNs int64       `json:"baseline_warm_ns"`
	Cells          []EvictCell `json:"cells"`
	// WarmNsP50/P99 are percentiles over the cells' warm re-run times.
	WarmNsP50 int64 `json:"warm_ns_p50"`
	WarmNsP99 int64 `json:"warm_ns_p99"`
}

// evictRunWorkload executes the workload and returns the output digest
// (rows or error text per query) plus the number of queries that
// returned rows. View row counts are deliberately excluded: eviction
// legitimately empties cold caches without changing any answer.
func evictRunWorkload(sys *eva.System) (string, int) {
	var out strings.Builder
	survived := 0
	for i, q := range evictWorkload {
		res, err := sys.Exec(q)
		fmt.Fprintf(&out, "== query %d ==\n", i+1)
		if err != nil {
			fmt.Fprintf(&out, "error: %v\n", err)
			continue
		}
		survived++
		out.WriteString(eva.Format(res.Rows))
	}
	return out.String(), survived
}

// chargedFootprint sums the budget-charged artifacts under dir and
// returns the largest single view log.
func chargedFootprint(dir string) (total, largest int64, err error) {
	paths, err := filepath.Glob(filepath.Join(dir, "views", "*"))
	if err != nil {
		return 0, 0, err
	}
	for _, p := range paths {
		fi, err := os.Stat(p)
		if err != nil {
			return 0, 0, err
		}
		total += fi.Size()
		if filepath.Ext(p) == ".view" && fi.Size() > largest {
			largest = fi.Size()
		}
	}
	if total == 0 || largest == 0 {
		return 0, 0, fmt.Errorf("vbench: workload left no durable views under %s", dir)
	}
	return total, largest, nil
}

// RunEvictBench measures one cell per budget level and verifies every
// cell converges to the unconstrained baseline.
func RunEvictBench() (*EvictResult, error) {
	res := &EvictResult{
		Benchmark: "evict-survival",
		Dataset:   vision.Jackson.Name,
		Queries:   len(evictWorkload),
	}

	// Unconstrained baseline: output digests, warm-run time, and the
	// charged footprint the budget levels are sized from.
	baseDir, err := os.MkdirTemp("", "vbench-evict-base")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(baseDir)
	baseSys, err := eva.Open(eva.Config{Dir: baseDir, Workers: 8})
	if err != nil {
		return nil, err
	}
	if err := baseSys.LoadVideo("video", "jackson"); err != nil {
		baseSys.Close()
		return nil, err
	}
	baseCold, _ := evictRunWorkload(baseSys)
	warmStart := baseSys.SimulatedTime()
	baseWarm, _ := evictRunWorkload(baseSys)
	res.BaselineWarmNs = int64(baseSys.SimulatedTime() - warmStart)
	if err := baseSys.Close(); err != nil {
		return nil, err
	}
	total, largest, err := chargedFootprint(baseDir)
	if err != nil {
		return nil, err
	}
	res.BaselineBytes = total

	// The floor always admits the largest single view plus append
	// slack — below it ErrDiskBudget would be legitimate.
	floor := largest + largest/2 + 512
	clamp := func(b int64) int64 {
		if b < floor {
			return floor
		}
		return b
	}
	levels := []struct {
		name  string
		bytes int64
	}{
		{"full", total + 512},
		{"threequarter", clamp(total * 3 / 4)},
		{"half", clamp(total / 2)},
		{"tight", floor},
	}

	var warmTimes []int64
	var evictions int64
	for _, level := range levels {
		cell, err := runEvictCell(level.name, level.bytes, baseCold, baseWarm)
		if err != nil {
			return nil, fmt.Errorf("vbench: evict cell %s: %w", level.name, err)
		}
		if !cell.Converged {
			return nil, fmt.Errorf("vbench: evict cell %s diverged from the unconstrained baseline", level.name)
		}
		if cell.QueriesSurvived != 2*len(evictWorkload) {
			return nil, fmt.Errorf("vbench: evict cell %s: %d/%d queries survived",
				level.name, cell.QueriesSurvived, 2*len(evictWorkload))
		}
		evictions += cell.Evictions
		warmTimes = append(warmTimes, cell.WarmNs)
		res.Cells = append(res.Cells, *cell)
	}
	if evictions == 0 {
		return nil, fmt.Errorf("vbench: no budget level forced an eviction — the ladder went unexercised")
	}

	sorted := append([]int64(nil), warmTimes...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	pct := func(p float64) int64 {
		if len(sorted) == 0 {
			return 0
		}
		return sorted[int(p*float64(len(sorted)-1))]
	}
	res.WarmNsP50 = pct(0.50)
	res.WarmNsP99 = pct(0.99)
	return res, nil
}

// runEvictCell runs the workload cold + warm under one budget level.
func runEvictCell(name string, budget int64, baseCold, baseWarm string) (*EvictCell, error) {
	dir, err := os.MkdirTemp("", "vbench-evict")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	sys, err := eva.Open(eva.Config{Dir: dir, Workers: 8, DiskBudgetBytes: budget})
	if err != nil {
		return nil, err
	}
	defer sys.Close()
	if err := sys.LoadVideo("video", "jackson"); err != nil {
		return nil, err
	}
	cold, coldOK := evictRunWorkload(sys)
	warmStart := sys.SimulatedTime()
	warm, warmOK := evictRunWorkload(sys)
	cell := &EvictCell{
		Level:           name,
		BudgetBytes:     budget,
		QueriesSurvived: coldOK + warmOK,
		WarmNs:          int64(sys.SimulatedTime() - warmStart),
		Converged:       cold == baseCold && warm == baseWarm,
	}
	st := sys.StorageStats().Disk
	cell.UsedBytes = st.UsedBytes
	cell.Denials = st.Denials
	cell.Evictions = st.Evictions
	cell.CompactReclaimedBytes = st.CompactReclaimedBytes
	cell.EvictReclaimedBytes = st.EvictReclaimedBytes
	return cell, nil
}

// JSON renders the result as indented JSON (BENCH_evict.json).
func (r *EvictResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// ExpEvict is the cmd/vbench experiment wrapper.
func ExpEvict(ExpConfig) (string, error) {
	res, err := RunEvictBench()
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d queries × %d budget levels — every cell answered baseline-identical rows\n",
		res.Queries, len(res.Cells))
	fmt.Fprintf(&sb, "baseline footprint %d bytes, warm re-run %s\n",
		res.BaselineBytes, time.Duration(res.BaselineWarmNs).Round(time.Millisecond))
	fmt.Fprintf(&sb, "%-13s | %8s | %8s | %7s | %6s | %9s | %9s | %12s\n",
		"Level", "budget", "used", "denials", "evict", "cmp bytes", "evt bytes", "warm simt")
	sb.WriteString(strings.Repeat("-", 92) + "\n")
	for _, c := range res.Cells {
		fmt.Fprintf(&sb, "%-13s | %8d | %8d | %7d | %6d | %9d | %9d | %12s\n",
			c.Level, c.BudgetBytes, c.UsedBytes, c.Denials, c.Evictions,
			c.CompactReclaimedBytes, c.EvictReclaimedBytes,
			time.Duration(c.WarmNs).Round(time.Millisecond))
	}
	fmt.Fprintf(&sb, "warm simtime p50 %s, p99 %s\n",
		time.Duration(res.WarmNsP50).Round(time.Millisecond),
		time.Duration(res.WarmNsP99).Round(time.Millisecond))
	return sb.String(), nil
}
