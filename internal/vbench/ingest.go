package vbench

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"eva"
	"eva/internal/vision"
)

// The streaming-ingestion benchmark: frames arrive in batches on a
// live table while standing queries extend their materialized views
// from durable checkpoints. Three quantities form the committed
// baseline (BENCH_ingest.json): sustained ingest throughput in
// frames/s of wall clock, the checkpoint lag distribution (how many
// frames the slowest standing query trails the durable watermark,
// sampled after every producer batch), and the recovery cost — the
// wall time to reopen the stream and recover every checkpoint at
// increasing log lengths, which the clean-sidecar fast path keeps
// flat rather than linear in history.

// ingestBenchQueries is the standing-query mix: a cheap per-frame
// count and a detector-backed filter, checkpointing independently.
var ingestBenchQueries = []struct {
	name      string
	sql       string
	threshold int64
}{
	{"every-frame", `SELECT id FROM live`, 6},
	{"cars", `SELECT id, label FROM live CROSS APPLY YoloTiny(frame) WHERE label = 'car'`, 3},
}

// IngestBenchConfig parameterizes RunIngestBench.
type IngestBenchConfig struct {
	Frames  int
	Batch   int
	Window  int64
	Cadence int64
	Workers int
	// RecoveryStops are the frame counts at which the bench closes and
	// reopens the stream to time checkpoint recovery.
	RecoveryStops []int
}

// DefaultIngestBench is the committed-baseline configuration.
func DefaultIngestBench() IngestBenchConfig {
	return IngestBenchConfig{
		Frames:        240,
		Batch:         8,
		Window:        8,
		Cadence:       8,
		Workers:       2,
		RecoveryStops: []int{60, 120, 240},
	}
}

// IngestRecoveryPoint is one close-and-reopen measurement.
type IngestRecoveryPoint struct {
	WatermarkFrames int64   `json:"watermark_frames"`
	ResumedLSN      int64   `json:"resumed_lsn"`
	ReopenWallMs    float64 `json:"reopen_wall_ms"`
}

// IngestResult is the JSON-serialized baseline (BENCH_ingest.json).
type IngestResult struct {
	Benchmark string `json:"benchmark"`
	Frames    int    `json:"frames"`
	Batch     int    `json:"batch"`
	Window    int64  `json:"window"`
	Cadence   int64  `json:"cadence"`
	Queries   int    `json:"queries"`

	WallMs       float64 `json:"wall_ms"`
	FramesPerSec float64 `json:"frames_per_sec"`

	CkptLagP50Frames int64 `json:"ckpt_lag_p50_frames"`
	CkptLagP99Frames int64 `json:"ckpt_lag_p99_frames"`

	Increments int64 `json:"increments"`
	Alerts     int   `json:"alerts"`
	SimNs      int64 `json:"sim_ns"`

	Recovery []IngestRecoveryPoint `json:"recovery"`
}

// ingestLagSample reads the slowest standing query's checkpoint
// distance behind the frames the producer has sent, in frames: queued
// batches the pump has not yet made durable plus the cadence
// remainder the queries have not yet folded in.
func ingestLagSample(stream *eva.Stream, sent int64) int64 {
	var worst int64
	for _, q := range stream.StandingQueries() {
		if lag := sent - q.LastLSN(); lag > worst {
			worst = lag
		}
	}
	return worst
}

// RunIngestBench drives the producer loop, pausing at each recovery
// stop to close the System and time a cold reopen of the same
// directory (checkpoint replay plus live-log recovery).
func RunIngestBench(cfg IngestBenchConfig) (*IngestResult, error) {
	dir, err := os.MkdirTemp("", "eva-ingest-bench-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	ds := vision.Dataset{
		Name: "live", Frames: cfg.Frames,
		Width: 320, Height: 240, Density: 4, Seed: 0xBE7C4,
	}
	open := func() (*eva.System, *eva.Stream, error) {
		sys, err := eva.Open(eva.Config{Dir: dir, Workers: cfg.Workers})
		if err != nil {
			return nil, nil, err
		}
		stream, err := sys.OpenStream(eva.StreamConfig{
			Table: "live", Dataset: ds, CadenceFrames: cfg.Cadence,
		})
		if err != nil {
			sys.Close()
			return nil, nil, err
		}
		for _, q := range ingestBenchQueries {
			if _, err := stream.RegisterStandingQuery(q.name, q.sql, cfg.Window, q.threshold, nil); err != nil {
				sys.Close()
				return nil, nil, err
			}
		}
		return sys, stream, nil
	}

	sys, stream, err := open()
	if err != nil {
		return nil, err
	}
	defer func() { sys.Close() }()

	stops := append([]int(nil), cfg.RecoveryStops...)
	sort.Ints(stops)
	if len(stops) == 0 || stops[len(stops)-1] < cfg.Frames {
		stops = append(stops, cfg.Frames)
	}

	res := &IngestResult{
		Benchmark: "ingest-stream",
		Frames:    cfg.Frames, Batch: cfg.Batch,
		Window: cfg.Window, Cadence: cfg.Cadence,
		Queries: len(ingestBenchQueries),
	}
	var lags []int64
	var ingestWall time.Duration
	sent := 0
	for _, stop := range stops {
		if stop > cfg.Frames {
			stop = cfg.Frames
		}
		start := time.Now()
		for sent < stop {
			n := cfg.Batch
			if n > stop-sent {
				n = stop - sent
			}
			if err := stream.Ingest(n); err != nil {
				return nil, fmt.Errorf("vbench: ingest at frame %d: %w", sent, err)
			}
			sent += n
			lags = append(lags, ingestLagSample(stream, int64(sent)))
		}
		if err := stream.Drain(); err != nil {
			return nil, fmt.Errorf("vbench: drain at frame %d: %w", sent, err)
		}
		ingestWall += time.Since(start)

		// Cold recovery at this log length: fold this incarnation's
		// counters in (each reopen starts a fresh Stream), then close
		// and time the reopen (checkpoint replay + watermark replay +
		// standing-query re-registration).
		res.Increments += stream.Stats().Increments
		res.SimNs += int64(stream.SimulatedTime().Total())
		if err := sys.Close(); err != nil {
			return nil, fmt.Errorf("vbench: close at frame %d: %w", sent, err)
		}
		reopenStart := time.Now()
		sys, stream, err = open()
		if err != nil {
			return nil, fmt.Errorf("vbench: reopen at frame %d: %w", sent, err)
		}
		reopen := time.Since(reopenStart)
		var resumed int64
		for _, q := range stream.StandingQueries() {
			lsn := q.LastLSN()
			if resumed == 0 || lsn < resumed {
				resumed = lsn
			}
		}
		res.Recovery = append(res.Recovery, IngestRecoveryPoint{
			WatermarkFrames: stream.Stats().Watermark,
			ResumedLSN:      resumed,
			ReopenWallMs:    float64(reopen.Nanoseconds()) / 1e6,
		})
	}

	st := stream.Stats()
	for _, q := range stream.StandingQueries() {
		res.Alerts += len(q.Alerts())
	}
	res.WallMs = float64(ingestWall.Nanoseconds()) / 1e6
	if ingestWall > 0 {
		res.FramesPerSec = float64(cfg.Frames) / ingestWall.Seconds()
	}
	sort.Slice(lags, func(a, b int) bool { return lags[a] < lags[b] })
	res.CkptLagP50Frames = pctInt64(lags, 50)
	res.CkptLagP99Frames = pctInt64(lags, 99)
	if st.Watermark != int64(cfg.Frames) {
		return nil, fmt.Errorf("vbench: watermark %d != frames %d", st.Watermark, cfg.Frames)
	}
	return res, sys.Close()
}

// pctInt64 reads the p-th percentile of a sorted slice.
func pctInt64(sorted []int64, p int) int64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := (len(sorted)-1)*p + 50
	return sorted[idx/100]
}

// JSON renders the result as indented JSON (BENCH_ingest.json).
func (r *IngestResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// ExpIngest is the cmd/vbench experiment wrapper.
func ExpIngest(ExpConfig) (string, error) {
	res, err := RunIngestBench(DefaultIngestBench())
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d frames in batches of %d, %d standing queries (window %d, cadence %d)\n",
		res.Frames, res.Batch, res.Queries, res.Window, res.Cadence)
	fmt.Fprintf(&sb, "ingest %.0f frames/s wall, checkpoint lag p50 %d / p99 %d frames, %d increments, %d alerts\n",
		res.FramesPerSec, res.CkptLagP50Frames, res.CkptLagP99Frames, res.Increments, res.Alerts)
	for _, rp := range res.Recovery {
		fmt.Fprintf(&sb, "recovery at %d frames: reopen %.2fms, resumed from lsn %d\n",
			rp.WatermarkFrames, rp.ReopenWallMs, rp.ResumedLSN)
	}
	return sb.String(), nil
}
