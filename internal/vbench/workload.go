// Package vbench implements the VBENCH benchmark of §5.1: query-set
// generators with low and high reuse potential, workload permutations,
// the variant workloads of the later experiments (logical UDFs,
// specialized filters), and a runner that executes a workload under
// any system mode and collects the metrics every table and figure in
// the paper reports.
package vbench

import (
	"fmt"
	"strings"

	"eva/internal/vision"
)

// Query is one benchmark query.
type Query struct {
	Label string
	SQL   string
	// Lo/Hi are the frame range the query reads (for overlap stats).
	Lo, Hi int64
}

// Workload is an ordered query sequence over a dataset.
type Workload struct {
	Name    string
	Dataset vision.Dataset
	Queries []Query
}

// frac scales a reference-fraction to the dataset's frame count.
func frac(n int, f float64) int64 { return int64(f * float64(n)) }

// HighWorkload builds VBENCH-HIGH: eight refinement queries over a
// shared region (≈50% average frame overlap between subsequent
// queries), emulating zoom-in / zoom-out / range-shift exploration
// (Table 1). Ranges scale with the dataset length, as §5.5 prescribes.
func HighWorkload(ds vision.Dataset) Workload {
	n := ds.Frames
	sel := "SELECT id, bbox FROM video CROSS APPLY FasterRCNNResnet50(frame) WHERE "
	// Q1–Q4 iteratively refine the same region (Table 1); Q5–Q8 shift
	// and widen. Reference bounds: id < 10000 of 14000 is 0.714.
	qs := []Query{
		{Label: "Q1", Lo: 0, Hi: frac(n, 0.714),
			SQL: sel + fmt.Sprintf("id < %d AND label = 'car' AND area > 0.3 AND CarType(frame, bbox) = 'Nissan'", frac(n, 0.714))},
		{Label: "Q2-zoom-out", Lo: 0, Hi: frac(n, 0.714),
			SQL: sel + fmt.Sprintf("id < %d AND label = 'car' AND CarType(frame, bbox) = 'Nissan'", frac(n, 0.714))},
		{Label: "Q3-zoom-in", Lo: 0, Hi: frac(n, 0.714),
			SQL: sel + fmt.Sprintf("id < %d AND area > 0.25 AND label = 'car' AND CarType(frame, bbox) = 'Nissan' AND ColorDet(frame, bbox) = 'Gray'", frac(n, 0.714))},
		{Label: "Q4-switch", Lo: 0, Hi: frac(n, 0.714),
			SQL: sel + fmt.Sprintf("id < %d AND label = 'car' AND area > 0.25 AND ColorDet(frame, bbox) = 'Gray'", frac(n, 0.714))},
		{Label: "Q5-shift", Lo: frac(n, 0.357), Hi: frac(n, 0.857),
			SQL: sel + fmt.Sprintf("id >= %d AND id < %d AND label = 'car' AND CarType(frame, bbox) = 'Toyota'", frac(n, 0.357), frac(n, 0.857))},
		{Label: "Q6-shift", Lo: frac(n, 0.536), Hi: int64(n),
			SQL: sel + fmt.Sprintf("id >= %d AND label = 'car' AND ColorDet(frame, bbox) = 'Gray'", frac(n, 0.536))},
		{Label: "Q7-zoom-in", Lo: frac(n, 0.536), Hi: int64(n),
			SQL: sel + fmt.Sprintf("id >= %d AND label = 'car' AND area > 0.2 AND CarType(frame, bbox) = 'Nissan' AND ColorDet(frame, bbox) = 'Gray'", frac(n, 0.536))},
		{Label: "Q8-wide", Lo: frac(n, 0.286), Hi: int64(n),
			SQL: sel + fmt.Sprintf("id >= %d AND label = 'car' AND ColorDet(frame, bbox) = 'Gray' AND CarType(frame, bbox) = 'Nissan'", frac(n, 0.286))},
	}
	return Workload{Name: "vbench-high", Dataset: ds, Queries: qs}
}

// LowWorkload builds VBENCH-LOW: the analyst skims forward through the
// video in mostly disjoint windows (≈4.5% average overlap between
// subsequent queries) with two non-consecutive revisits of earlier
// regions — so subsequent-query overlap stays low while a moderate
// fraction of UDF invocations (≈25%, Table 2) remains reusable.
func LowWorkload(ds vision.Dataset) Workload {
	n := ds.Frames
	sel := "SELECT id, bbox FROM video CROSS APPLY FasterRCNNResnet50(frame) WHERE "
	window := func(lo, hi float64, rest string) (string, int64, int64) {
		l, h := frac(n, lo), frac(n, hi)
		return sel + fmt.Sprintf("id >= %d AND id < %d AND %s", l, h, rest), l, h
	}
	mk := func(label string, lo, hi float64, rest string) Query {
		sql, l, h := window(lo, hi, rest)
		return Query{Label: label, SQL: sql, Lo: l, Hi: h}
	}
	qs := []Query{
		mk("Q1", 0.00, 0.135, "label = 'car' AND area > 0.3 AND CarType(frame, bbox) = 'Nissan'"),
		mk("Q2", 0.125, 0.26, "label = 'car' AND ColorDet(frame, bbox) = 'Gray'"),
		mk("Q3", 0.25, 0.385, "label = 'car' AND area > 0.25 AND CarType(frame, bbox) = 'Toyota'"),
		mk("Q4", 0.375, 0.51, "label = 'car' AND ColorDet(frame, bbox) = 'Red'"),
		// Revisit of Q1's region, zoomed out (no overlap with Q4);
		// detector results reuse fully, CarType partially.
		mk("Q5-revisit", 0.00, 0.135, "label = 'car' AND CarType(frame, bbox) = 'Nissan'"),
		mk("Q6", 0.50, 0.635, "label = 'car' AND area > 0.2 AND CarType(frame, bbox) = 'Nissan' AND ColorDet(frame, bbox) = 'Gray'"),
		mk("Q7", 0.625, 0.76, "label = 'car' AND CarType(frame, bbox) = 'Ford'"),
		// Revisit of Q4's region with a different color constant: the
		// same ColorDet signature over the same keys reuses fully.
		mk("Q8-revisit", 0.375, 0.51, "label = 'car' AND ColorDet(frame, bbox) = 'Black'"),
	}
	return Workload{Name: "vbench-low", Dataset: ds, Queries: qs}
}

// LogicalWorkload is VBENCH-HIGH with the physical detector replaced
// by the logical ObjectDetector and per-query accuracy requirements,
// emulating multiple applications with different accuracy needs
// (Fig. 10). Q4 pairs a LOW-accuracy requirement with a dependent UDF
// that has no materialized coverage — the chained-function-call case
// where reusing a high-accuracy detector backfires (§6).
func LogicalWorkload(ds vision.Dataset) Workload {
	base := HighWorkload(ds)
	accs := []string{"MEDIUM", "LOW", "MEDIUM", "LOW", "MEDIUM", "MEDIUM", "HIGH", "MEDIUM"}
	out := Workload{Name: "vbench-logical", Dataset: ds}
	for i, q := range base.Queries {
		sql := strings.Replace(q.SQL,
			"CROSS APPLY FasterRCNNResnet50(frame)",
			fmt.Sprintf("CROSS APPLY ObjectDetector(frame) ACCURACY '%s'", accs[i]), 1)
		if i == 3 {
			// Q4: traffic-monitoring style query whose dependent UDF
			// (License) has no materialized results to draw on.
			sql = fmt.Sprintf(`SELECT id, License(frame, bbox) FROM video CROSS APPLY ObjectDetector(frame) ACCURACY 'LOW' WHERE id < %d AND label = 'car'`,
				frac(ds.Frames, 0.714))
		}
		out.Queries = append(out.Queries, Query{Label: q.Label, SQL: sql, Lo: q.Lo, Hi: q.Hi})
	}
	return out
}

// WithFilter augments every query with the lightweight specialized
// filter predicate (§5.6), pruning frames before the detector runs.
func WithFilter(w Workload) Workload {
	out := Workload{Name: w.Name + "+filter", Dataset: w.Dataset}
	for _, q := range w.Queries {
		sql := strings.Replace(q.SQL, "WHERE ", "WHERE VehicleFilter(frame) = TRUE AND ", 1)
		out.Queries = append(out.Queries, Query{Label: q.Label, SQL: sql, Lo: q.Lo, Hi: q.Hi})
	}
	return out
}

// Permute reorders the workload's queries; perm must be a permutation
// of [0, len).
func Permute(w Workload, perm []int) (Workload, error) {
	if len(perm) != len(w.Queries) {
		return Workload{}, fmt.Errorf("vbench: permutation length %d != %d queries", len(perm), len(w.Queries))
	}
	seen := make([]bool, len(perm))
	out := Workload{Name: fmt.Sprintf("%s-perm", w.Name), Dataset: w.Dataset}
	for _, idx := range perm {
		if idx < 0 || idx >= len(perm) || seen[idx] {
			return Workload{}, fmt.Errorf("vbench: invalid permutation %v", perm)
		}
		seen[idx] = true
		out.Queries = append(out.Queries, w.Queries[idx])
	}
	return out, nil
}

// Permutations are the four fixed VBENCH-HIGH orderings of §5.4
// (Fig. 8, Fig. 9). The first is the natural order.
var Permutations = [][]int{
	{0, 1, 2, 3, 4, 5, 6, 7},
	{7, 6, 5, 4, 3, 2, 1, 0},
	{3, 0, 6, 2, 7, 4, 1, 5},
	{2, 5, 0, 7, 1, 6, 3, 4},
}

// AvgConsecutiveOverlap returns the mean fraction of frames shared by
// subsequent query pairs — the workload-characterizing statistic of
// §5.1 (≈4.5% for LOW, ≈50% for HIGH).
func AvgConsecutiveOverlap(w Workload) float64 {
	if len(w.Queries) < 2 {
		return 0
	}
	total := 0.0
	for i := 1; i < len(w.Queries); i++ {
		a, b := w.Queries[i-1], w.Queries[i]
		lo := max64(a.Lo, b.Lo)
		hi := min64(a.Hi, b.Hi)
		inter := float64(0)
		if hi > lo {
			inter = float64(hi - lo)
		}
		union := float64(max64(a.Hi, b.Hi) - min64(a.Lo, b.Lo))
		if union > 0 {
			total += inter / union
		}
	}
	return total / float64(len(w.Queries)-1)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
