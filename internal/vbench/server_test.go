package vbench

import (
	"testing"
	"time"
)

// TestRunServerBenchSmall drives a scaled-down serving-layer load run:
// every query must resolve to success or a typed shed (the runner
// errors on anything else), and the outcomes must account for every
// issued query.
func TestRunServerBenchSmall(t *testing.T) {
	cfg := ServerBenchConfig{
		Sessions:          4,
		QueriesPerSession: 3,
		MaxConcurrent:     1,
		QueueDepth:        1,
		QueueTimeout:      time.Second,
		Workers:           1,
	}
	res, err := RunServerBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries != cfg.Sessions*cfg.QueriesPerSession {
		t.Errorf("queries = %d, want %d", res.Queries, cfg.Sessions*cfg.QueriesPerSession)
	}
	if got := res.Succeeded + res.ShedOverload + res.ShedTimeout; got != res.Queries {
		t.Errorf("outcomes %d do not account for %d queries", got, res.Queries)
	}
	if res.Succeeded == 0 {
		t.Error("nothing succeeded under load")
	}
	if res.SimNs == 0 {
		t.Error("no simulated time charged")
	}
}
