package vbench

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"eva"
	"eva/internal/costs"
	"eva/internal/vision"
)

// The parallel scan+UDF benchmark: a latency-bound scalar UDF (its Go
// impl sleeps, modeling a blocking model-serving RPC or accelerator
// inference call) applied to every frame of a scan, measured wall-clock
// at several worker counts. Because the UDF blocks rather than burns
// CPU, the worker pool overlaps invocations even on a single core —
// exactly the regime EVA's NN-inference UDFs live in. The simulated
// time must come out identical at every worker count (the determinism
// contract); only wall time may change.

// ParallelCell is one (worker count) measurement.
type ParallelCell struct {
	Workers int `json:"workers"`
	// WallNs is the best-of-iterations wall time of the query.
	WallNs int64 `json:"wall_ns"`
	// NsPerOp is WallNs divided by the number of UDF invocations.
	NsPerOp int64 `json:"ns_per_op"`
	// Speedup is serial wall time / this wall time.
	Speedup float64 `json:"speedup"`
	// ModeledSpeedup is the costs.AmdahlSpeedup prediction for this
	// worker count given the workload's parallel fraction.
	ModeledSpeedup float64 `json:"modeled_speedup"`
	// SimNs is the query's simulated time — identical in every cell.
	SimNs int64 `json:"sim_ns"`
}

// ParallelResult is the JSON-serialized benchmark baseline
// (BENCH_parallel.json).
type ParallelResult struct {
	Benchmark string         `json:"benchmark"`
	Dataset   string         `json:"dataset"`
	Frames    int            `json:"frames"`
	SleepMs   float64        `json:"udf_sleep_ms"`
	Iters     int            `json:"iters"`
	Cells     []ParallelCell `json:"cells"`
}

// ParallelBenchConfig parameterizes RunParallelBench.
type ParallelBenchConfig struct {
	Frames  int           // scan length (UDF invocations per run)
	Sleep   time.Duration // per-invocation blocking time of the UDF
	Iters   int           // runs per cell; best wall time wins
	Workers []int         // worker counts to measure
}

// DefaultParallelBench is the committed-baseline configuration.
func DefaultParallelBench() ParallelBenchConfig {
	return ParallelBenchConfig{
		Frames:  200,
		Sleep:   2 * time.Millisecond,
		Iters:   3,
		Workers: []int{1, 2, 4, 8},
	}
}

// RunParallelBench measures the parallel executor. Views are dropped
// between iterations so every run evaluates the UDF afresh — reuse
// would otherwise serve the second iteration from the materialized
// view and there would be nothing left to parallelize.
func RunParallelBench(cfg ParallelBenchConfig) (*ParallelResult, error) {
	res := &ParallelResult{
		Benchmark: "parallel-scan-udf",
		Dataset:   vision.Jackson.Name,
		Frames:    cfg.Frames,
		SleepMs:   float64(cfg.Sleep) / float64(time.Millisecond),
		Iters:     cfg.Iters,
	}
	var serialWall time.Duration
	var serialSim int64
	for _, workers := range cfg.Workers {
		sys, err := eva.Open(eva.Config{Workers: workers})
		if err != nil {
			return nil, err
		}
		wall, simNs, err := runParallelCell(sys, cfg)
		sys.Close()
		if err != nil {
			return nil, err
		}
		if workers <= 1 {
			serialWall, serialSim = wall, simNs
		}
		if serialSim != 0 && simNs != serialSim {
			return nil, fmt.Errorf("vbench: simulated time varies with workers: %d ns at %d workers, %d ns serial",
				simNs, workers, serialSim)
		}
		cell := ParallelCell{
			Workers: workers,
			WallNs:  wall.Nanoseconds(),
			NsPerOp: wall.Nanoseconds() / int64(cfg.Frames),
			SimNs:   simNs,
			// The sleeping UDF dominates; everything else (scan, filter,
			// result assembly) is the serial remainder. Estimate the
			// parallel fraction from the serial run's composition.
			ModeledSpeedup: costs.AmdahlSpeedup(parallelFraction(cfg, serialWall), workers),
		}
		if serialWall > 0 && wall > 0 {
			cell.Speedup = float64(serialWall) / float64(wall)
		}
		res.Cells = append(res.Cells, cell)
	}
	return res, nil
}

// parallelFraction estimates the fraction of the serial run spent in
// the parallelizable UDF invocations (frames × sleep over total wall).
func parallelFraction(cfg ParallelBenchConfig, serialWall time.Duration) float64 {
	if serialWall <= 0 {
		return 1
	}
	udf := time.Duration(cfg.Frames) * cfg.Sleep
	f := float64(udf) / float64(serialWall)
	if f > 1 {
		f = 1
	}
	return f
}

func runParallelCell(sys *eva.System, cfg ParallelBenchConfig) (time.Duration, int64, error) {
	if _, err := sys.Exec(`LOAD VIDEO 'jackson' INTO video`); err != nil {
		return 0, 0, err
	}
	_, err := sys.Exec(`CREATE UDF SlowNet
		INPUT  = (frame NDARRAY UINT8(3, ANYDIM, ANYDIM))
		OUTPUT = (slownet_out BOOLEAN)
		IMPL   = 'bench:sleep'
		LOGICAL_TYPE = SlowNet
		PROPERTIES = ('COST_MS' = '2')`)
	if err != nil {
		return 0, 0, err
	}
	sys.RegisterScalarImpl("SlowNet", func(args []eva.Datum) (eva.Datum, error) {
		time.Sleep(cfg.Sleep)
		return eva.NewBool(true), nil
	})
	query := fmt.Sprintf(`SELECT id FROM video WHERE id < %d AND SlowNet(frame) = TRUE`, cfg.Frames)

	best := time.Duration(0)
	var simNs int64
	for i := 0; i < cfg.Iters; i++ {
		// A clean reuse slate per iteration: with the view intact the
		// next run would probe instead of evaluate.
		if _, err := sys.Exec(`DROP VIEWS`); err != nil {
			return 0, 0, err
		}
		res, err := sys.Exec(query)
		if err != nil {
			return 0, 0, err
		}
		if res.Rows.Len() != cfg.Frames {
			return 0, 0, fmt.Errorf("vbench: parallel bench returned %d rows, want %d", res.Rows.Len(), cfg.Frames)
		}
		if best == 0 || res.WallTime < best {
			best = res.WallTime
		}
		if i == 0 {
			simNs = int64(res.SimTime)
		} else if int64(res.SimTime) != simNs {
			return 0, 0, fmt.Errorf("vbench: simulated time varies across iterations: %d vs %d", res.SimTime, simNs)
		}
	}
	return best, simNs, nil
}

// JSON renders the result as indented JSON (BENCH_parallel.json).
func (r *ParallelResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// ExpParallel is the cmd/vbench experiment wrapper: it runs the
// benchmark and renders a table plus the JSON baseline.
func ExpParallel(ExpConfig) (string, error) {
	res, err := RunParallelBench(DefaultParallelBench())
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d frames × %.1f ms blocking UDF, best of %d (sim time invariant: %s)\n",
		res.Frames, res.SleepMs, res.Iters, time.Duration(res.Cells[0].SimNs).Round(time.Millisecond))
	fmt.Fprintf(&sb, "%-8s | %12s | %10s | %8s | %8s\n", "Workers", "wall", "ns/op", "speedup", "modeled")
	sb.WriteString(strings.Repeat("-", 58) + "\n")
	for _, c := range res.Cells {
		fmt.Fprintf(&sb, "%-8d | %12s | %10d | %7.2fx | %7.2fx\n",
			c.Workers, time.Duration(c.WallNs).Round(time.Millisecond), c.NsPerOp, c.Speedup, c.ModeledSpeedup)
	}
	return sb.String(), nil
}
