package vbench

// The allocation benchmark behind BENCH_alloc.json: the pooled-batch
// lifecycle (DESIGN.md §13) promises a steady-state warm hot path —
// scan → filter → apply served from a materialized view — that
// performs ~zero heap allocations per row. This benchmark measures
// that promise directly with runtime.MemStats malloc deltas, snapshots
// the batch-pool counters, and cross-checks that pooling is
// observationally invisible: a pooled/unpooled × worker-count matrix
// whose result digests must all be byte-identical.
//
// The per-row rate is measured as a *marginal*: the same warm query at
// two scan lengths, allocations divided by the extra rows. Per-query
// overhead (parse, optimize, plan, result assembly) cancels out, so
// the number isolates exactly the per-row cost the pool is supposed to
// eliminate.

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"runtime"
	"strings"

	"eva"
	"eva/internal/vision"
)

// AllocCell is one measured mode (the reuse engine with view-serving,
// or the FunCache baseline with a warm tuple cache).
type AllocCell struct {
	Mode string `json:"mode"`
	// AllocsPerRow is the marginal warm-path allocation rate:
	// (allocs(long) − allocs(short)) / (longFrames − shortFrames).
	AllocsPerRow float64 `json:"allocs_per_row"`
	// BytesPerRow is the marginal heap traffic in bytes per row.
	BytesPerRow float64 `json:"bytes_per_row"`
	// AllocsPerRunShort/Long are the absolute per-query averages the
	// marginal is derived from (per-query overhead included).
	AllocsPerRunShort float64 `json:"allocs_per_run_short"`
	AllocsPerRunLong  float64 `json:"allocs_per_run_long"`
	// Pool traffic accumulated over the cell's runs.
	PoolHits   int64 `json:"pool_hits"`
	PoolMisses int64 `json:"pool_misses"`
	PoolPuts   int64 `json:"pool_puts"`
}

// AllocMatrixCell is one pooled/unpooled differential measurement: the
// digest covers cold and warm result rows, view row counts, reuse
// counters and simulated time, and must be identical in every cell.
type AllocMatrixCell struct {
	Pooled  bool   `json:"pooled"`
	Workers int    `json:"workers"`
	Digest  string `json:"digest"`
}

// AllocResult is the JSON-serialized baseline (BENCH_alloc.json).
type AllocResult struct {
	Benchmark   string            `json:"benchmark"`
	Dataset     string            `json:"dataset"`
	ShortFrames int               `json:"short_frames"`
	LongFrames  int               `json:"long_frames"`
	WarmRuns    int               `json:"warm_runs"`
	Cells       []AllocCell       `json:"cells"`
	Matrix      []AllocMatrixCell `json:"matrix"`
}

// AllocBenchConfig parameterizes RunAllocBench.
type AllocBenchConfig struct {
	ShortFrames int // scan length of the short query
	LongFrames  int // scan length of the long query
	WarmRuns    int // measured warm repetitions per query
}

// DefaultAllocBench is the committed-baseline configuration.
func DefaultAllocBench() AllocBenchConfig {
	return AllocBenchConfig{ShortFrames: 512, LongFrames: 2048, WarmRuns: 20}
}

// WarmAllocGate is the acceptance threshold on the reuse engine's
// marginal warm-path allocation rate: per-row work must be
// allocation-free, with a small allowance for per-batch amortized
// bookkeeping (one view snapshot header and a few slice headers per
// 256-row batch).
const WarmAllocGate = 0.05

// allocSetup loads the dataset and registers the cheap deterministic
// predicate UDF the benchmark filters on.
func allocSetup(sys *eva.System) error {
	if _, err := sys.Exec(`LOAD VIDEO 'jackson' INTO video`); err != nil {
		return err
	}
	_, err := sys.Exec(`CREATE UDF AllocNet
		INPUT  = (frame NDARRAY UINT8(3, ANYDIM, ANYDIM))
		OUTPUT = (allocnet_out BOOLEAN)
		IMPL   = 'bench:parity'
		LOGICAL_TYPE = AllocNet
		PROPERTIES = ('COST_MS' = '1')`)
	if err != nil {
		return err
	}
	sys.RegisterScalarImpl("AllocNet", func(args []eva.Datum) (eva.Datum, error) {
		return eva.NewBool(len(args[0].Bytes())%2 == 0), nil
	})
	return nil
}

func allocQuery(frames int) string {
	return fmt.Sprintf(`SELECT id FROM video WHERE id < %d AND AllocNet(frame) = TRUE`, frames)
}

// measureWarm returns the average per-run malloc and byte deltas of
// the warm query, after a cold run has materialized its view (or
// warmed the tuple cache) and one discarded warm run has let pooled
// capacities reach steady state.
func measureWarm(sys *eva.System, query string, runs int) (allocs, bytes float64, err error) {
	for i := 0; i < 2; i++ { // cold (materialize) + capacity warm-up
		res, err := sys.Exec(query)
		if err != nil {
			return 0, 0, err
		}
		sys.Recycle(res.Rows)
	}
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	for i := 0; i < runs; i++ {
		res, err := sys.Exec(query)
		if err != nil {
			return 0, 0, err
		}
		sys.Recycle(res.Rows)
	}
	runtime.ReadMemStats(&m1)
	return float64(m1.Mallocs-m0.Mallocs) / float64(runs),
		float64(m1.TotalAlloc-m0.TotalAlloc) / float64(runs), nil
}

// runAllocCell measures one mode end to end in a fresh system.
func runAllocCell(mode eva.SystemMode, modeName string, cfg AllocBenchConfig) (AllocCell, error) {
	sys, err := eva.Open(eva.Config{Mode: mode})
	if err != nil {
		return AllocCell{}, err
	}
	defer sys.Close()
	if err := allocSetup(sys); err != nil {
		return AllocCell{}, err
	}
	short, _, err := measureWarm(sys, allocQuery(cfg.ShortFrames), cfg.WarmRuns)
	if err != nil {
		return AllocCell{}, err
	}
	long, longBytes, err := measureWarm(sys, allocQuery(cfg.LongFrames), cfg.WarmRuns)
	if err != nil {
		return AllocCell{}, err
	}
	shortBytes := 0.0
	if short2, b, err := measureWarm(sys, allocQuery(cfg.ShortFrames), cfg.WarmRuns); err == nil {
		// Re-measure short after long so both queries' capacities are
		// steady; keep the smaller of the two short samples.
		if short2 < short {
			short = short2
		}
		shortBytes = b
	} else {
		return AllocCell{}, err
	}
	rows := float64(cfg.LongFrames - cfg.ShortFrames)
	st := sys.PoolStats()
	return AllocCell{
		Mode:              modeName,
		AllocsPerRow:      (long - short) / rows,
		BytesPerRow:       (longBytes - shortBytes) / rows,
		AllocsPerRunShort: short,
		AllocsPerRunLong:  long,
		PoolHits:          st.Hits,
		PoolMisses:        st.Misses,
		PoolPuts:          st.Puts,
	}, nil
}

// allocMatrixDigest runs the workload cold and warm in one fresh
// system and digests everything a client observes.
func allocMatrixDigest(pooled bool, workers, frames int) (string, error) {
	sys, err := eva.Open(eva.Config{Workers: workers, DisablePooling: !pooled})
	if err != nil {
		return "", err
	}
	defer sys.Close()
	if err := allocSetup(sys); err != nil {
		return "", err
	}
	h := sha256.New()
	for run := 0; run < 2; run++ { // cold then warm
		res, err := sys.Exec(allocQuery(frames))
		if err != nil {
			return "", err
		}
		fmt.Fprintf(h, "run %d rows %d\n%s", run, res.Rows.Len(), eva.Format(res.Rows))
		fmt.Fprintf(h, "sim %d\n", res.SimTime)
		sys.Recycle(res.Rows)
	}
	for name, rows := range sys.ViewRows() {
		fmt.Fprintf(h, "view %s %d\n", name, rows)
	}
	fmt.Fprintf(h, "hit %.6f total %d\n", sys.HitPercentage(), sys.SimulatedTime())
	return fmt.Sprintf("%x", h.Sum(nil)), nil
}

// RunAllocBench measures the warm-path allocation rates, snapshots the
// pool counters, and verifies the pooled/unpooled differential matrix.
// It fails if the reuse engine's marginal rate exceeds WarmAllocGate
// or if any matrix digest diverges.
func RunAllocBench(cfg AllocBenchConfig) (*AllocResult, error) {
	res := &AllocResult{
		Benchmark:   "pooled-batch-alloc",
		Dataset:     vision.Jackson.Name,
		ShortFrames: cfg.ShortFrames,
		LongFrames:  cfg.LongFrames,
		WarmRuns:    cfg.WarmRuns,
	}
	for _, m := range []struct {
		mode eva.SystemMode
		name string
	}{{eva.ModeEVA, "eva-view-served"}, {eva.ModeFunCache, "funcache-warm"}} {
		cell, err := runAllocCell(m.mode, m.name, cfg)
		if err != nil {
			return nil, fmt.Errorf("vbench: alloc cell %s: %w", m.name, err)
		}
		res.Cells = append(res.Cells, cell)
	}
	if got := res.Cells[0].AllocsPerRow; got > WarmAllocGate {
		return nil, fmt.Errorf("vbench: warm view-served path allocates %.4f/row (gate %.2f)", got, WarmAllocGate)
	}
	if res.Cells[0].PoolHits == 0 {
		return nil, fmt.Errorf("vbench: pool recorded no hits — the pooled lifecycle is not engaged")
	}
	var first string
	for _, pooled := range []bool{false, true} {
		for _, w := range []int{1, 2, 8} {
			d, err := allocMatrixDigest(pooled, w, cfg.ShortFrames)
			if err != nil {
				return nil, fmt.Errorf("vbench: alloc matrix pooled=%v workers=%d: %w", pooled, w, err)
			}
			if first == "" {
				first = d
			} else if d != first {
				return nil, fmt.Errorf("vbench: alloc matrix digest diverged at pooled=%v workers=%d", pooled, w)
			}
			res.Matrix = append(res.Matrix, AllocMatrixCell{Pooled: pooled, Workers: w, Digest: d})
		}
	}
	return res, nil
}

// JSON renders the result as indented JSON (BENCH_alloc.json).
func (r *AllocResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// ExpAlloc is the cmd/vbench experiment wrapper.
func ExpAlloc(ExpConfig) (string, error) {
	res, err := RunAllocBench(DefaultAllocBench())
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "warm hot path, marginal over %d extra rows, %d runs per sample\n",
		res.LongFrames-res.ShortFrames, res.WarmRuns)
	fmt.Fprintf(&sb, "%-18s | %12s | %12s | %8s | %8s | %8s\n",
		"Mode", "allocs/row", "bytes/row", "hits", "misses", "puts")
	sb.WriteString(strings.Repeat("-", 80) + "\n")
	for _, c := range res.Cells {
		fmt.Fprintf(&sb, "%-18s | %12.4f | %12.1f | %8d | %8d | %8d\n",
			c.Mode, c.AllocsPerRow, c.BytesPerRow, c.PoolHits, c.PoolMisses, c.PoolPuts)
	}
	fmt.Fprintf(&sb, "matrix: %d cells, all digests identical\n", len(res.Matrix))
	return sb.String(), nil
}
