package vbench

import (
	"math"
	"testing"
	"time"

	"eva"
	"eva/internal/vision"
)

// tinyUA is a scaled-down UA-DETRAC for fast tests; all workload
// builders scale ranges by frame count.
var tinyUA = vision.Dataset{Name: "tiny-ua", Frames: 600, Width: 960, Height: 540, Density: 8.3, Seed: 0xDE7AC}

func TestWorkloadOverlapStatistics(t *testing.T) {
	high := HighWorkload(vision.MediumUADetrac)
	low := LowWorkload(vision.MediumUADetrac)
	// Under the Jaccard overlap metric the Table-1-faithful query set
	// (Q1–Q4 refine one region) sits around 0.8; the paper's "50%
	// average overlap of frames read" uses an unspecified metric, so we
	// assert the high/low contrast rather than an exact value.
	if got := AvgConsecutiveOverlap(high); got < 0.5 || got > 0.9 {
		t.Errorf("high overlap = %v, want within [0.5, 0.9]", got)
	}
	if got := AvgConsecutiveOverlap(low); got < 0.01 || got > 0.10 {
		t.Errorf("low overlap = %v, want ≈ 0.045", got)
	}
	if len(high.Queries) != 8 || len(low.Queries) != 8 {
		t.Error("each query set has 8 queries (§5.1)")
	}
}

func TestWorkloadScalesWithLength(t *testing.T) {
	short := HighWorkload(vision.ShortUADetrac)
	long := HighWorkload(vision.LongUADetrac)
	medium := HighWorkload(vision.MediumUADetrac)
	// The id ranges scale with video length (§5.5): the same fraction
	// of SHORT (7.5k), MEDIUM (14k), and LONG (28k).
	if short.Queries[0].Hi != frac(7500, 0.714) || medium.Queries[0].Hi != frac(14000, 0.714) || long.Queries[0].Hi != frac(28000, 0.714) {
		t.Errorf("Q1 hi bounds = %d / %d / %d", short.Queries[0].Hi, medium.Queries[0].Hi, long.Queries[0].Hi)
	}
	if 2*medium.Queries[0].Hi != long.Queries[0].Hi {
		t.Error("long range should be twice medium")
	}
}

func TestPermute(t *testing.T) {
	w := HighWorkload(tinyUA)
	p, err := Permute(w, []int{7, 6, 5, 4, 3, 2, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if p.Queries[0].Label != "Q8-wide" {
		t.Errorf("first query = %s", p.Queries[0].Label)
	}
	if _, err := Permute(w, []int{0, 0, 1, 2, 3, 4, 5, 6}); err == nil {
		t.Error("duplicate index should error")
	}
	if _, err := Permute(w, []int{0}); err == nil {
		t.Error("short permutation should error")
	}
	for _, perm := range Permutations {
		if _, err := Permute(w, perm); err != nil {
			t.Errorf("built-in permutation %v invalid: %v", perm, err)
		}
	}
}

func TestRunWorkloadEndToEnd(t *testing.T) {
	w := HighWorkload(tinyUA)
	noreuse, err := RunWorkload(eva.ModeNoReuse, w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	evaRun, err := RunWorkload(eva.ModeEVA, w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(evaRun.Queries) != 8 {
		t.Fatalf("queries = %d", len(evaRun.Queries))
	}
	// Same results under both systems.
	for i := range w.Queries {
		if noreuse.Queries[i].Rows != evaRun.Queries[i].Rows {
			t.Errorf("%s rows differ: %d vs %d", w.Queries[i].Label, noreuse.Queries[i].Rows, evaRun.Queries[i].Rows)
		}
	}
	if noreuse.HitPct != 0 {
		t.Errorf("no-reuse hit = %v", noreuse.HitPct)
	}
	if evaRun.HitPct < 30 {
		t.Errorf("EVA hit = %v, want high on vbench-high", evaRun.HitPct)
	}
	sp := evaRun.Speedup(noreuse)
	if sp < 1.5 {
		t.Errorf("EVA speedup = %v, want well above 1", sp)
	}
	bound := SpeedupBound(noreuse.UDFStats, costOf)
	if sp > bound+0.2 {
		t.Errorf("speedup %v exceeds Eq. 7 bound %v", sp, bound)
	}
	if evaRun.ViewBytes <= 0 || evaRun.VideoVirtualBytes <= 0 {
		t.Error("storage metrics missing")
	}
	// Storage overhead is tiny relative to the video (§5.2).
	if ratio := float64(evaRun.ViewBytes) / float64(evaRun.VideoVirtualBytes); ratio > 0.01 {
		t.Errorf("storage overhead ratio = %v, want ≪ 1%%", ratio)
	}
	// View rows converge monotonically.
	last := 0
	for _, q := range evaRun.Queries {
		total := 0
		for _, rows := range q.ViewRows {
			total += rows
		}
		if total < last {
			t.Errorf("view rows shrank: %d -> %d", last, total)
		}
		last = total
	}
}

func costOf(name string) time.Duration {
	p, err := vision.ProfileFor(name)
	if err != nil {
		return time.Millisecond
	}
	return p.Cost
}

func TestSystemsOrdering(t *testing.T) {
	w := HighWorkload(tinyUA)
	sims := map[eva.SystemMode]time.Duration{}
	var rows map[eva.SystemMode]int
	rows = map[eva.SystemMode]int{}
	for _, mode := range Systems() {
		m, err := RunWorkload(mode, w, Options{})
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		sims[mode] = m.SimTotal
		total := 0
		for _, q := range m.Queries {
			total += q.Rows
		}
		rows[mode] = total
	}
	for mode, n := range rows {
		if n != rows[eva.ModeNoReuse] {
			t.Errorf("%s total rows %d != no-reuse %d", mode, n, rows[eva.ModeNoReuse])
		}
	}
	// Fig. 5 shape on high-reuse: EVA < HashStash < NoReuse, and EVA
	// beats FunCache.
	if !(sims[eva.ModeEVA] < sims[eva.ModeHashStash] && sims[eva.ModeHashStash] < sims[eva.ModeNoReuse]) {
		t.Errorf("ordering violated: EVA=%v HashStash=%v NoReuse=%v", sims[eva.ModeEVA], sims[eva.ModeHashStash], sims[eva.ModeNoReuse])
	}
	if !(sims[eva.ModeEVA] < sims[eva.ModeFunCache]) {
		t.Errorf("EVA (%v) should beat FunCache (%v)", sims[eva.ModeEVA], sims[eva.ModeFunCache])
	}
}

func TestLogicalWorkloadRuns(t *testing.T) {
	w := LogicalWorkload(tinyUA)
	if len(w.Queries) != 8 {
		t.Fatal("logical workload should keep 8 queries")
	}
	m, err := RunWorkload(eva.ModeEVA, w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mc, err := RunWorkload(eva.ModeEVA, w, Options{MinCostLogical: true})
	if err != nil {
		t.Fatal(err)
	}
	// EVA's Algorithm 2 should not lose overall to Min-Cost on the
	// workload (individual queries may, per Fig. 10's Q4).
	if m.SimTotal > mc.SimTotal*3/2 {
		t.Errorf("Algorithm 2 total %v far worse than Min-Cost %v", m.SimTotal, mc.SimTotal)
	}
}

func TestWithFilterWorkload(t *testing.T) {
	tinyJackson := vision.Dataset{Name: "tiny-jackson", Frames: 600, Width: 600, Height: 400, Density: 0.1, Seed: 0x7AC50}
	base := HighWorkload(tinyJackson)
	filtered := WithFilter(base)
	if len(filtered.Queries) != len(base.Queries) {
		t.Fatal("filter variant changed query count")
	}
	plain, err := RunWorkload(eva.ModeEVA, base, Options{})
	if err != nil {
		t.Fatal(err)
	}
	flt, err := RunWorkload(eva.ModeEVA, filtered, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// §5.6: on sparse video the filter accelerates EVA further.
	if flt.SimTotal >= plain.SimTotal {
		t.Errorf("filter did not help: %v vs %v", flt.SimTotal, plain.SimTotal)
	}
}

func TestSpeedupBoundSanity(t *testing.T) {
	w := HighWorkload(tinyUA)
	m, err := RunWorkload(eva.ModeNoReuse, w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	bound := SpeedupBound(m.UDFStats, costOf)
	if bound <= 1 || math.IsInf(bound, 0) {
		t.Errorf("bound = %v", bound)
	}
	if got := SpeedupBound(nil, costOf); got != 1 {
		t.Errorf("empty bound = %v", got)
	}
}
