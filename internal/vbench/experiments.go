package vbench

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"eva"
	"eva/internal/simclock"
	"eva/internal/vision"
)

// ExpConfig parameterizes an experiment run.
type ExpConfig struct {
	// Scale shrinks every dataset's frame count by this factor
	// (1.0 = the paper's full size). Benchmarks use small scales for
	// quick runs; cmd/vbench defaults to 1.0.
	Scale float64
}

func (c ExpConfig) scale(ds vision.Dataset) vision.Dataset {
	s := c.Scale
	if s <= 0 || s > 1 {
		return ds
	}
	ds.Frames = int(float64(ds.Frames) * s)
	if ds.Frames < 100 {
		ds.Frames = 100
	}
	if s < 1 {
		ds.Name = fmt.Sprintf("%s-x%.2f", ds.Name, s)
	}
	return ds
}

// Experiment regenerates one table or figure of the paper.
type Experiment struct {
	ID    string
	Title string
	Paper string // the paper's headline result, for EXPERIMENTS.md
	Run   func(cfg ExpConfig) (string, error)
}

// Experiments lists every reproduced table and figure, in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{ID: "table2", Title: "Table 2 — Hit Percentage", Paper: "LOW: HashStash 2.02 / FunCache 24.68 / EVA 24.68; HIGH: 5.62 / 66.01 / 66.01", Run: ExpTable2},
		{ID: "table3", Title: "Table 3 — UDF Statistics", Paper: "FRCNN50 99ms 13,820/72,457; CarType 6ms 114,431/414,119; ColorDet 5ms 111,631/219,264", Run: ExpTable3},
		{ID: "table4", Title: "Table 4 — Q8 Time Breakdown", Paper: "No-Reuse: UDF 997s, ReadVideo 22s; EVA: UDF 5s, ReadVideo 19s, ReadView 10s, Mat 2s, Other 5s", Run: ExpTable4},
		{ID: "table5", Title: "Table 5 — Physical Detector Statistics", Paper: "YoloTiny 9ms/17.6; FRCNN50 99ms/37.9; FRCNN101 120ms/42.0", Run: ExpTable5},
		{ID: "fig5", Title: "Fig. 5 — Workload Speedup (MEDIUM-UA-DETRAC)", Paper: "HIGH: EVA ≈4×, HashStash ≈2×, FunCache between; LOW: EVA ≈1.3×, FunCache 0.95×", Run: ExpFig5},
		{ID: "fig6", Title: "Fig. 6 — Per-Query Breakdown and Overhead Sources", Paper: "first 3 queries pay full UDF cost; later queries fast; reuse overheads ≪ UDF cost", Run: ExpFig6},
		{ID: "fig7", Title: "Fig. 7 — Symbolic Predicate Reduction vs simplify", Paper: "EVA keeps atoms small; QM-style simplify grows, esp. for polyadic CarType/ColorDet predicates", Run: ExpFig7},
		{ID: "fig8", Title: "Fig. 8 — Impact of Query Order", Paper: "EVA ≥1.8× under HashStash across 4 permutations; views converge over queries", Run: ExpFig8},
		{ID: "fig9", Title: "Fig. 9 — Materialization-Aware Predicate Reordering", Paper: "3–6× on most multi-UDF queries; some queries unchanged", Run: ExpFig9},
		{ID: "fig10", Title: "Fig. 10 — Logical UDF Reuse", Paper: "EVA ≫ baselines on low-accuracy overlapping queries; 1.2–3.2× on Q6–Q8; Q4 ≈2× slower (chained UDFs)", Run: ExpFig10},
		{ID: "fig11", Title: "Fig. 11 — Impact of Video Content (JACKSON)", Paper: "EVA still best, but smaller gap (fewer vehicles ⇒ fewer classifier invocations)", Run: ExpFig11},
		{ID: "fig12", Title: "Fig. 12 — Impact of Video Length", Paper: "speedup does not drop with length; slight increase on LONG (denser frames)", Run: ExpFig12},
		{ID: "filters", Title: "§5.6 — Complementing Specialized Filters", Paper: "EVA+Filter ≈1.3× over EVA on JACKSON", Run: ExpFilters},
		{ID: "storage", Title: "§5.2 — Storage Footprint", Paper: "≤0.09% extra storage (1.001× total)", Run: ExpStorage},
		{ID: "parallel", Title: "Parallel executor — wall-clock speedup (scan+UDF)", Paper: "engine extension (DESIGN.md §10): wall-clock speedup at identical simulated time", Run: ExpParallel},
		{ID: "chaos", Title: "Chaos differential — fault determinism across worker counts", Paper: "engine extension (DESIGN.md §9–10): fault-injected runs byte-identical at every worker count", Run: ExpChaos},
		{ID: "server", Title: "Serving layer — open-loop multi-session load", Paper: "engine extension (DESIGN.md §11): admitted/shed counts, virtual queue-wait percentiles, throughput", Run: ExpServer},
		{ID: "ingest", Title: "Streaming ingestion — throughput, checkpoint lag, recovery", Paper: "engine extension (DESIGN.md §12): frames/s, checkpoint lag percentiles, reopen time vs log length", Run: ExpIngest},
		{ID: "alloc", Title: "Pooled batches — warm hot-path allocations per row", Paper: "engine extension (DESIGN.md §13): marginal allocs/row ~0 on the warm view-served path, pooled/unpooled digests identical", Run: ExpAlloc},
		{ID: "scrub", Title: "Self-healing views — salvage, symbolic repair, compaction", Paper: "engine extension (DESIGN.md §15): rows salvaged vs recomputed per corruption site, repair simtime percentiles, compaction amplification", Run: ExpScrub},
		{ID: "evict", Title: "Disk-pressure survival — storage budgets and benefit-ranked eviction", Paper: "engine extension (DESIGN.md §16): bytes reclaimed per ladder tier, evict-then-recompute simtime, queries survived per budget level", Run: ExpEvict},
	}
}

// ExperimentByID returns the named experiment.
func ExperimentByID(id string) (Experiment, error) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("vbench: unknown experiment %q", id)
}

// --- Table 2 ---

// ExpTable2 reproduces the hit-percentage comparison.
func ExpTable2(cfg ExpConfig) (string, error) {
	ds := cfg.scale(vision.MediumUADetrac)
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-14s | %-10s | %-10s | %-10s\n", "Hit %", "HashStash", "FunCache", "EVA")
	sb.WriteString(strings.Repeat("-", 54) + "\n")
	for _, wl := range []Workload{LowWorkload(ds), HighWorkload(ds)} {
		row := []float64{}
		for _, mode := range []eva.SystemMode{eva.ModeHashStash, eva.ModeFunCache, eva.ModeEVA} {
			m, err := RunWorkload(mode, wl, Options{})
			if err != nil {
				return "", err
			}
			row = append(row, m.HitPct)
		}
		fmt.Fprintf(&sb, "%-14s | %10.2f | %10.2f | %10.2f\n", wl.Name, row[0], row[1], row[2])
	}
	return sb.String(), nil
}

// --- Table 3 ---

// ExpTable3 reproduces the UDF invocation statistics under No-Reuse.
func ExpTable3(cfg ExpConfig) (string, error) {
	ds := cfg.scale(vision.MediumUADetrac)
	m, err := RunWorkload(eva.ModeNoReuse, HighWorkload(ds), Options{})
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-22s | %8s | %9s | %9s | %7s\n", "UDF", "C_u (ms)", "#DI", "#TI", "Device")
	sb.WriteString(strings.Repeat("-", 68) + "\n")
	names := make([]string, 0, len(m.UDFStats))
	for n := range m.UDFStats {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		return profileCost(names[i]) > profileCost(names[j])
	})
	for _, n := range names {
		st := m.UDFStats[n]
		p, err := vision.ProfileFor(n)
		if err != nil {
			continue
		}
		fmt.Fprintf(&sb, "%-22s | %8d | %9d | %9d | %7s\n", p.Name, p.Cost.Milliseconds(), st.Distinct, st.Total, p.Device)
	}
	bound := SpeedupBound(m.UDFStats, profileCost)
	fmt.Fprintf(&sb, "\nEq. 7 workload speedup bound: %.2fx (paper: 4.11x)\n", bound)
	return sb.String(), nil
}

func profileCost(name string) time.Duration {
	p, err := vision.ProfileFor(name)
	if err != nil {
		return time.Millisecond
	}
	return p.Cost
}

// --- Table 4 ---

// ExpTable4 reproduces the fine-grained time breakdown of Q8 under
// No-Reuse and EVA.
func ExpTable4(cfg ExpConfig) (string, error) {
	ds := cfg.scale(vision.MediumUADetrac)
	wl := HighWorkload(ds)
	nr, err := RunWorkload(eva.ModeNoReuse, wl, Options{})
	if err != nil {
		return "", err
	}
	ev, err := RunWorkload(eva.ModeEVA, wl, Options{})
	if err != nil {
		return "", err
	}
	q8 := len(wl.Queries) - 1
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s | %8s | %10s | %9s | %5s | %6s\n", "Latency(s)", "UDF", "ReadVideo", "ReadView", "Mat", "Other")
	sb.WriteString(strings.Repeat("-", 62) + "\n")
	row := func(name string, b eva.Breakdown) {
		other := b.Get(simclock.CatOptimize) + b.Get(simclock.CatApply) + b.Get(simclock.CatOther) + b.Get(simclock.CatHash)
		fmt.Fprintf(&sb, "%-10s | %8.0f | %10.0f | %9.0f | %5.0f | %6.1f\n",
			name,
			b.Get(simclock.CatUDF).Seconds(),
			b.Get(simclock.CatReadVideo).Seconds(),
			b.Get(simclock.CatReadView).Seconds(),
			b.Get(simclock.CatMaterialize).Seconds(),
			other.Seconds())
	}
	row("No-Reuse", nr.Queries[q8].Breakdown)
	row("EVA", ev.Queries[q8].Breakdown)
	return sb.String(), nil
}

// --- Table 5 ---

// ExpTable5 reports the physical detector statistics.
func ExpTable5(ExpConfig) (string, error) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-22s | %8s | %8s | %8s\n", "Model", "C_u (ms)", "boxAP", "Accuracy")
	sb.WriteString(strings.Repeat("-", 58) + "\n")
	for _, p := range vision.ProfilesForLogical(vision.LogicalObjectDetector) {
		fmt.Fprintf(&sb, "%-22s | %8d | %8.1f | %8s\n", p.Name, p.Cost.Milliseconds(), p.BoxAP, p.Accuracy)
	}
	return sb.String(), nil
}

// --- Fig. 5 ---

// ExpFig5 reproduces the workload-speedup comparison.
func ExpFig5(cfg ExpConfig) (string, error) {
	return speedupFigure(cfg.scale(vision.MediumUADetrac))
}

func speedupFigure(ds vision.Dataset) (string, error) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-14s | %-9s | %-9s | %-9s | %-9s | %s\n", "Speedup", "No-Reuse", "HashStash", "FunCache", "EVA", "No-Reuse time")
	sb.WriteString(strings.Repeat("-", 80) + "\n")
	for _, wl := range []Workload{LowWorkload(ds), HighWorkload(ds)} {
		var base *RunMetrics
		row := make([]float64, 0, 4)
		for _, mode := range Systems() {
			m, err := RunWorkload(mode, wl, Options{})
			if err != nil {
				return "", err
			}
			if mode == eva.ModeNoReuse {
				base = m
			}
			row = append(row, m.Speedup(base))
		}
		fmt.Fprintf(&sb, "%-14s | %9.2f | %9.2f | %9.2f | %9.2f | %.2f h\n",
			wl.Name, row[0], row[1], row[2], row[3], base.SimTotal.Hours())
	}
	return sb.String(), nil
}

// --- Fig. 6 ---

// ExpFig6 reproduces the per-query time breakdown of VBENCH-HIGH under
// EVA and the overhead-source summary.
func ExpFig6(cfg ExpConfig) (string, error) {
	ds := cfg.scale(vision.MediumUADetrac)
	m, err := RunWorkload(eva.ModeEVA, HighWorkload(ds), Options{})
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	sb.WriteString("(a) per-query time (s): UDF vs reuse (read view + mat + apply) vs other\n")
	fmt.Fprintf(&sb, "%-14s | %8s | %8s | %8s | %8s\n", "Query", "Total", "UDF", "Reuse", "Other")
	sb.WriteString(strings.Repeat("-", 58) + "\n")
	for _, q := range m.Queries {
		reuse := q.Breakdown.Get(simclock.CatReadView) + q.Breakdown.Get(simclock.CatMaterialize) + q.Breakdown.Get(simclock.CatApply)
		other := q.Sim - q.Breakdown.Get(simclock.CatUDF) - reuse
		fmt.Fprintf(&sb, "%-14s | %8.1f | %8.1f | %8.1f | %8.1f\n",
			q.Label, q.Sim.Seconds(), q.Breakdown.Get(simclock.CatUDF).Seconds(), reuse.Seconds(), other.Seconds())
	}
	sb.WriteString("\n(b) overhead sources across the workload (s)\n")
	for _, cat := range []simclock.Category{simclock.CatMaterialize, simclock.CatOptimize, simclock.CatApply, simclock.CatReadVideo, simclock.CatReadView} {
		fmt.Fprintf(&sb, "  %-14s %8.2f\n", cat, m.CategoryBreakdown(cat).Seconds())
	}
	return sb.String(), nil
}

// --- Fig. 11 / Fig. 12 / filters / storage ---

// ExpFig11 reruns the speedup comparison on the JACKSON dataset.
func ExpFig11(cfg ExpConfig) (string, error) {
	return speedupFigure(cfg.scale(vision.Jackson))
}

// ExpFig12 reproduces the video-length sweep.
func ExpFig12(cfg ExpConfig) (string, error) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-18s | %-12s | %-14s\n", "Dataset", "EVA speedup", "vehicles/frame")
	sb.WriteString(strings.Repeat("-", 50) + "\n")
	for _, base := range []vision.Dataset{vision.ShortUADetrac, vision.MediumUADetrac, vision.LongUADetrac} {
		ds := cfg.scale(base)
		wl := HighWorkload(ds)
		nr, err := RunWorkload(eva.ModeNoReuse, wl, Options{})
		if err != nil {
			return "", err
		}
		ev, err := RunWorkload(eva.ModeEVA, wl, Options{})
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&sb, "%-18s | %12.2f | %14.2f\n", base.Name, ev.Speedup(nr), ds.AvgObjectsPerFrame(2000))
	}
	return sb.String(), nil
}

// ExpFilters reproduces the specialized-filter experiment (§5.6).
func ExpFilters(cfg ExpConfig) (string, error) {
	ds := cfg.scale(vision.Jackson)
	wl := HighWorkload(ds)
	plain, err := RunWorkload(eva.ModeEVA, wl, Options{})
	if err != nil {
		return "", err
	}
	filtered, err := RunWorkload(eva.ModeEVA, WithFilter(wl), Options{})
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "EVA:        %8.0f s\n", plain.SimTotal.Seconds())
	fmt.Fprintf(&sb, "EVA+Filter: %8.0f s  (%.2fx)\n", filtered.SimTotal.Seconds(),
		plain.SimTotal.Seconds()/filtered.SimTotal.Seconds())
	return sb.String(), nil
}

// ExpStorage reproduces the storage-footprint measurement (§5.2).
func ExpStorage(cfg ExpConfig) (string, error) {
	ds := cfg.scale(vision.MediumUADetrac)
	var sb strings.Builder
	for _, wl := range []Workload{LowWorkload(ds), HighWorkload(ds)} {
		m, err := RunWorkload(eva.ModeEVA, wl, Options{})
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&sb, "%-14s views %6.1f MiB, dataset %6.1f GiB, overhead %.4f%% (%.5fx total)\n",
			wl.Name,
			float64(m.ViewBytes)/(1<<20),
			float64(m.VideoVirtualBytes)/(1<<30),
			100*float64(m.ViewBytes)/float64(m.VideoVirtualBytes),
			1+float64(m.ViewBytes)/float64(m.VideoVirtualBytes))
	}
	return sb.String(), nil
}
