package vbench

import (
	"fmt"
	"sort"
	"strings"

	"eva"
	"eva/internal/expr"
	"eva/internal/parser"
	"eva/internal/symbolic"
	"eva/internal/types"
	"eva/internal/vision"
)

// --- Fig. 7: symbolic predicate reduction vs QM-style simplify ---

// fig7UDFs are the candidate UDFs whose predicate analyses Fig. 7 plots.
var fig7UDFs = []string{"fasterrcnnresnet50", "cartype", "colordet"}

// Fig7Point is one derived-predicate measurement.
type Fig7Point struct {
	UDF            string
	Step           int // query index in the workload
	Kind           string
	EVAAtoms       int
	SimplifyAtoms  int
	SimplifyGaveUp bool
}

// ExpFig7 replays VBENCH-HIGH's predicate analyses through both EVA's
// reducer (Algorithm 1) and the opaque-atom Quine–McCluskey `simplify`
// baseline, counting atomic formulae of the intersection, difference,
// and union predicates.
func ExpFig7(cfg ExpConfig) (string, error) {
	ds := cfg.scale(vision.MediumUADetrac)
	points, err := Fig7Points(HighWorkload(ds))
	if err != nil {
		return "", err
	}
	agg := map[string]*struct {
		evaMax, simMax   int
		evaLast, simLast int
		n                int
	}{}
	for _, p := range points {
		a, ok := agg[p.UDF]
		if !ok {
			a = &struct {
				evaMax, simMax   int
				evaLast, simLast int
				n                int
			}{}
			agg[p.UDF] = a
		}
		if p.EVAAtoms > a.evaMax {
			a.evaMax = p.EVAAtoms
		}
		if p.SimplifyAtoms > a.simMax {
			a.simMax = p.SimplifyAtoms
		}
		a.evaLast, a.simLast = p.EVAAtoms, p.SimplifyAtoms
		a.n++
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-22s | %9s | %9s | %10s | %10s\n", "UDF", "EVA max", "EVA last", "simplify max", "simplify last")
	sb.WriteString(strings.Repeat("-", 74) + "\n")
	for _, u := range fig7UDFs {
		a := agg[u]
		if a == nil {
			continue
		}
		fmt.Fprintf(&sb, "%-22s | %9d | %9d | %12d | %13d\n", u, a.evaMax, a.evaLast, a.simMax, a.simLast)
	}
	return sb.String(), nil
}

// Fig7Points computes the raw Fig. 7 series for a workload.
func Fig7Points(w Workload) ([]Fig7Point, error) {
	m, err := RunWorkload(eva.ModeEVA, w, Options{})
	if err != nil {
		return nil, err
	}

	// Baseline state: per UDF, the aggregated predicate as an
	// expression tree (nil = FALSE) plus the atom→expr table needed to
	// rebuild expressions from QM implicants.
	aggs := map[string]expr.Expr{}
	atomExprs := map[string]expr.Expr{}

	var points []Fig7Point
	for qi, q := range w.Queries {
		stmt, err := parser.Parse(q.SQL)
		if err != nil {
			return nil, err
		}
		sel := stmt.(*parser.SelectStmt)
		base, own := splitFig7Predicates(sel.Where)
		registerAtoms(sel.Where, atomExprs)

		// Detector gate: the base predicate; scalar gates follow the
		// EVA run's chosen order.
		order := []string{"fasterrcnnresnet50"}
		for _, u := range m.Queries[qi].Order {
			order = append(order, strings.ToLower(u))
		}
		gate := base
		for _, u := range order {
			gateExpr := expr.CombineConjuncts(gate)
			evaAtoms := evaAtomsFor(m.Queries[qi].Preds, u)

			agg := aggs[u]
			inter, diff, union := deriveExprs(agg, gateExpr)
			simInter, err := qmAtoms(inter)
			if err != nil {
				return nil, err
			}
			simDiff, err := qmAtoms(diff)
			if err != nil {
				return nil, err
			}
			simUnionRes, err := symbolic.QMSimplify(union)
			if err != nil {
				return nil, err
			}
			points = append(points,
				Fig7Point{UDF: u, Step: qi, Kind: "inter", EVAAtoms: evaAtoms.inter, SimplifyAtoms: simInter},
				Fig7Point{UDF: u, Step: qi, Kind: "diff", EVAAtoms: evaAtoms.diff, SimplifyAtoms: simDiff},
				Fig7Point{UDF: u, Step: qi, Kind: "union", EVAAtoms: evaAtoms.union, SimplifyAtoms: simUnionRes.AtomCount, SimplifyGaveUp: simUnionRes.GaveUp},
			)
			// The baseline carries forward whatever `simplify` produced
			// (rebuilt from its implicants); once it fails to reduce, the
			// formula keeps growing — the behaviour §5.4 describes.
			aggs[u] = exprFromQM(simUnionRes, union, atomExprs)

			gate = append(gate, own[u]...)
		}
	}
	return points, nil
}

type atomTriple struct{ inter, diff, union int }

func evaAtomsFor(preds map[string]eva.PredInfo, udfName string) atomTriple {
	for sig, info := range preds {
		base := sig
		if i := strings.Index(base, "."); i >= 0 {
			base = base[i+1:] // strip the table qualifier
		}
		if strings.HasPrefix(base, udfName+"[") {
			return atomTriple{inter: info.InterAtoms, diff: info.DiffAtoms, union: info.UnionAtoms}
		}
	}
	return atomTriple{}
}

// splitFig7Predicates separates non-UDF conjuncts (the base gate) from
// the conjuncts owned by each expensive UDF.
func splitFig7Predicates(where expr.Expr) (base []expr.Expr, own map[string][]expr.Expr) {
	own = map[string][]expr.Expr{}
	if where == nil {
		return nil, own
	}
	for _, c := range expr.SplitConjuncts(where) {
		assigned := false
		for _, call := range expr.CollectCalls(c) {
			fn := strings.ToLower(call.Fn)
			if fn == "cartype" || fn == "colordet" || fn == "license" || fn == "vehiclefilter" {
				own[fn] = append(own[fn], c)
				assigned = true
				break
			}
		}
		if !assigned {
			base = append(base, c)
		}
	}
	return base, own
}

func registerAtoms(e expr.Expr, into map[string]expr.Expr) {
	if e == nil {
		return
	}
	switch n := e.(type) {
	case *expr.Logic:
		registerAtoms(n.L, into)
		registerAtoms(n.R, into)
	case *expr.Not:
		registerAtoms(n.E, into)
	default: // lint:nonexhaustive every non-connective node is an opaque atom
		into[e.String()] = e
	}
}

func deriveExprs(agg, gate expr.Expr) (inter, diff, union expr.Expr) {
	if gate == nil {
		gate = expr.NewConst(trueDatum())
	}
	if agg == nil {
		// p_u = FALSE: inter = FALSE, diff = q, union = q.
		return nil, gate, gate
	}
	return expr.NewAnd(agg, gate), expr.NewAnd(expr.NewNot(agg), gate), expr.NewOr(agg, gate)
}

func qmAtoms(e expr.Expr) (int, error) {
	if e == nil {
		return 0, nil
	}
	res, err := symbolic.QMSimplify(e)
	if err != nil {
		return 0, err
	}
	return res.AtomCount, nil
}

// exprFromQM rebuilds an expression from QM implicants; when the
// minimizer gave up, the raw formula is carried forward unsimplified.
func exprFromQM(res symbolic.QMResult, raw expr.Expr, atoms map[string]expr.Expr) expr.Expr {
	if res.GaveUp {
		return raw
	}
	var union expr.Expr
	for _, imp := range res.Implicants {
		var conj expr.Expr
		idxs := make([]int, 0, len(imp))
		for i := range imp {
			idxs = append(idxs, i)
		}
		sort.Ints(idxs)
		for _, i := range idxs {
			atom := atoms[res.Atoms[i]]
			if atom == nil {
				atom = expr.NewColumn(res.Atoms[i]) // opaque placeholder
			}
			var lit expr.Expr = atom
			if !imp[i] {
				lit = expr.NewNot(atom)
			}
			if conj == nil {
				conj = lit
			} else {
				conj = expr.NewAnd(conj, lit)
			}
		}
		if conj == nil {
			conj = expr.NewConst(trueDatum()) // tautology implicant
		}
		if union == nil {
			union = conj
		} else {
			union = expr.NewOr(union, conj)
		}
	}
	return union
}

// --- Fig. 8: impact of query order ---

// ExpFig8 runs the four VBENCH-HIGH permutations under HashStash and
// EVA and reports the view-convergence series for the last permutation.
func ExpFig8(cfg ExpConfig) (string, error) {
	ds := cfg.scale(vision.MediumUADetrac)
	base := HighWorkload(ds)
	var sb strings.Builder
	fmt.Fprintf(&sb, "(a) workload execution time per permutation (s)\n")
	fmt.Fprintf(&sb, "%-6s | %-10s | %-10s | %s\n", "Perm", "HashStash", "EVA", "EVA gain")
	sb.WriteString(strings.Repeat("-", 46) + "\n")
	var lastEVA *RunMetrics
	for i, perm := range Permutations {
		w, err := Permute(base, perm)
		if err != nil {
			return "", err
		}
		hs, err := RunWorkload(eva.ModeHashStash, w, Options{})
		if err != nil {
			return "", err
		}
		ev, err := RunWorkload(eva.ModeEVA, w, Options{})
		if err != nil {
			return "", err
		}
		lastEVA = ev
		fmt.Fprintf(&sb, "%-6d | %10.0f | %10.0f | %.2fx\n", i+1,
			hs.SimTotal.Seconds(), ev.SimTotal.Seconds(), hs.SimTotal.Seconds()/ev.SimTotal.Seconds())
	}
	sb.WriteString("\n(b) materialized-result convergence, permutation 4 (% of final rows)\n")
	final := lastEVA.Queries[len(lastEVA.Queries)-1].ViewRows
	viewNames := make([]string, 0, len(final))
	for v := range final {
		viewNames = append(viewNames, v)
	}
	sort.Strings(viewNames)
	fmt.Fprintf(&sb, "%-14s", "Query")
	for _, v := range viewNames {
		fmt.Fprintf(&sb, " | %-24s", strings.TrimPrefix(v, "udf_"))
	}
	sb.WriteString("\n")
	for _, q := range lastEVA.Queries {
		fmt.Fprintf(&sb, "%-14s", q.Label)
		for _, v := range viewNames {
			pct := 0.0
			if final[v] > 0 {
				pct = 100 * float64(q.ViewRows[v]) / float64(final[v])
			}
			fmt.Fprintf(&sb, " | %22.1f%%", pct)
		}
		sb.WriteString("\n")
	}
	return sb.String(), nil
}

// --- Fig. 9: materialization-aware predicate reordering ---

// Fig9Row is one multi-UDF query's comparison.
type Fig9Row struct {
	Query     string
	Canonical float64 // seconds
	MatAware  float64
	Speedup   float64
	SameOrder bool
}

// Fig9Rows runs the permutations under canonical and
// materialization-aware ranking and reports every multi-UDF query.
func Fig9Rows(cfg ExpConfig) ([]Fig9Row, error) {
	ds := cfg.scale(vision.MediumUADetrac)
	base := HighWorkload(ds)
	var rows []Fig9Row
	for pi, perm := range Permutations {
		w, err := Permute(base, perm)
		if err != nil {
			return nil, err
		}
		canon, err := RunWorkload(eva.ModeEVA, w, Options{CanonicalRanking: true})
		if err != nil {
			return nil, err
		}
		aware, err := RunWorkload(eva.ModeEVA, w, Options{})
		if err != nil {
			return nil, err
		}
		for qi := range w.Queries {
			if len(aware.Queries[qi].Order) < 2 {
				continue
			}
			c := canon.Queries[qi].Sim.Seconds()
			a := aware.Queries[qi].Sim.Seconds()
			same := strings.Join(canon.Queries[qi].Order, ",") == strings.Join(aware.Queries[qi].Order, ",")
			sp := 0.0
			if a > 0 {
				sp = c / a
			}
			rows = append(rows, Fig9Row{
				Query:     fmt.Sprintf("Q%d", pi*len(w.Queries)+qi+1),
				Canonical: c, MatAware: a, Speedup: sp, SameOrder: same,
			})
		}
	}
	return rows, nil
}

// ExpFig9 formats the reordering comparison.
func ExpFig9(cfg ExpConfig) (string, error) {
	rows, err := Fig9Rows(cfg)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-6s | %-12s | %-12s | %-8s | %s\n", "Query", "Canonical(s)", "Mat-aware(s)", "Speedup", "Same order?")
	sb.WriteString(strings.Repeat("-", 60) + "\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-6s | %12.1f | %12.1f | %7.2fx | %v\n", r.Query, r.Canonical, r.MatAware, r.Speedup, r.SameOrder)
	}
	return sb.String(), nil
}

// --- Fig. 10: logical UDF reuse ---

// ExpFig10 compares Algorithm 2 against the Min-Cost baselines on the
// logical workload.
func ExpFig10(cfg ExpConfig) (string, error) {
	ds := cfg.scale(vision.MediumUADetrac)
	wl := LogicalWorkload(ds)
	noreuse, err := RunWorkload(eva.ModeNoReuse, wl, Options{MinCostLogical: true})
	if err != nil {
		return "", err
	}
	mincost, err := RunWorkload(eva.ModeEVA, wl, Options{MinCostLogical: true})
	if err != nil {
		return "", err
	}
	evaRun, err := RunWorkload(eva.ModeEVA, wl, Options{})
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-14s | %-16s | %-10s | %-8s | %s\n", "Query (s)", "MinCost-NoReuse", "MinCost", "EVA", "EVA vs MinCost")
	sb.WriteString(strings.Repeat("-", 70) + "\n")
	for i := range wl.Queries {
		nr := noreuse.Queries[i].Sim.Seconds()
		mc := mincost.Queries[i].Sim.Seconds()
		ev := evaRun.Queries[i].Sim.Seconds()
		ratio := 0.0
		if ev > 0 {
			ratio = mc / ev
		}
		fmt.Fprintf(&sb, "%-14s | %16.1f | %10.1f | %8.1f | %.2fx\n", wl.Queries[i].Label, nr, mc, ev, ratio)
	}
	return sb.String(), nil
}

func trueDatum() types.Datum { return types.NewBool(true) }
