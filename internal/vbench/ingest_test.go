package vbench

import "testing"

// TestRunIngestBenchSmall drives a scaled-down streaming run through
// both recovery stops: every frame must land, every reopen must
// resume from the frames it stopped at, and the run must perform
// incremental work.
func TestRunIngestBenchSmall(t *testing.T) {
	cfg := IngestBenchConfig{
		Frames:        32,
		Batch:         5,
		Window:        4,
		Cadence:       4,
		Workers:       1,
		RecoveryStops: []int{16, 32},
	}
	res, err := RunIngestBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Recovery) != 2 {
		t.Fatalf("recovery points = %d, want 2", len(res.Recovery))
	}
	for i, rp := range res.Recovery {
		if rp.WatermarkFrames != int64(cfg.RecoveryStops[i]) {
			t.Errorf("recovery %d at watermark %d, want %d", i, rp.WatermarkFrames, cfg.RecoveryStops[i])
		}
		if rp.ResumedLSN != rp.WatermarkFrames {
			t.Errorf("recovery %d resumed from %d, want %d (drained before close)", i, rp.ResumedLSN, rp.WatermarkFrames)
		}
	}
	if res.Increments == 0 {
		t.Error("no increments ran")
	}
	if res.SimNs == 0 {
		t.Error("no simulated time charged")
	}
	if res.FramesPerSec <= 0 {
		t.Error("no throughput measured")
	}
	if _, err := res.JSON(); err != nil {
		t.Fatal(err)
	}
}
