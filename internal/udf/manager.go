package udf

import (
	"sync"

	"eva/internal/symbolic"
)

// Entry is the UDFManager's record for one UDF signature: the
// aggregated predicate p_u (the union of the predicates of every
// invocation materialized so far — FALSE until the UDF first runs) and
// the name of the backing materialized view.
type Entry struct {
	Sig      Signature
	Agg      symbolic.DNF
	ViewName string
}

// Manager is the UDFMANAGER component (§3.1): it maps UDF signatures
// to their aggregated predicates and materialized views, and answers
// the symbolic reuse queries (p∩, p−) the optimizer issues.
type Manager struct {
	mu      sync.Mutex
	entries map[string]*Entry
}

// NewManager returns an empty manager.
func NewManager() *Manager {
	return &Manager{entries: map[string]*Entry{}}
}

// Lookup returns the entry for a signature, creating it (with p_u =
// FALSE, per §4.1) on first sight.
func (m *Manager) Lookup(sig Signature) *Entry {
	m.mu.Lock()
	defer m.mu.Unlock()
	key := sig.Key()
	e, ok := m.entries[key]
	if !ok {
		e = &Entry{Sig: sig, Agg: symbolic.False(), ViewName: sig.ViewName()}
		m.entries[key] = e
	}
	return e
}

// Peek returns the entry if it exists, without creating it.
func (m *Manager) Peek(sig Signature) (*Entry, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.entries[sig.Key()]
	return e, ok
}

// Analysis is the outcome of the symbolic reuse analysis for one UDF
// invocation: the reduced intersection and difference predicates and
// the aggregated predicate after the invocation runs.
type Analysis struct {
	Inter symbolic.DNF // p∩: tuples servable from the view
	Diff  symbolic.DNF // p−: tuples the UDF must still evaluate
	Union symbolic.DNF // p∪: the updated aggregated predicate
}

// Analyze computes INTER(p_u, q), DIFF(p_u, q) and UNION(p_u, q) for
// the signature's aggregated predicate and the invocation predicate q
// (§3.2 challenge I).
func (m *Manager) Analyze(sig Signature, q symbolic.DNF) Analysis {
	e := m.Lookup(sig)
	m.mu.Lock()
	agg := e.Agg
	m.mu.Unlock()
	return Analysis{
		Inter: symbolic.Inter(agg, q),
		Diff:  symbolic.Diff(agg, q),
		Union: symbolic.Union(agg, q),
	}
}

// Commit records that the invocation with predicate q has been
// materialized: p_u ← UNION(p_u, q).
func (m *Manager) Commit(sig Signature, q symbolic.DNF) {
	e := m.Lookup(sig)
	m.mu.Lock()
	defer m.mu.Unlock()
	e.Agg = symbolic.Union(e.Agg, q)
}

// Reset drops all entries (a fresh workload run).
func (m *Manager) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.entries = map[string]*Entry{}
}

// Entries returns a snapshot of the manager's entries.
func (m *Manager) Entries() []*Entry {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Entry, 0, len(m.entries))
	for _, e := range m.entries {
		out = append(out, e)
	}
	return out
}
