package udf

import (
	"sort"
	"strings"
	"sync"

	"eva/internal/symbolic"
)

// Entry is the UDFManager's record for one UDF signature: the
// aggregated predicate p_u (the union of the predicates of every
// invocation materialized so far — FALSE until the UDF first runs) and
// the name of the backing materialized view.
type Entry struct {
	Sig      Signature
	Agg      symbolic.DNF
	ViewName string
}

// Manager is the UDFMANAGER component (§3.1): it maps UDF signatures
// to their aggregated predicates and materialized views, and answers
// the symbolic reuse queries (p∩, p−) the optimizer issues.
type Manager struct {
	mu      sync.Mutex
	entries map[string]*Entry // guarded by mu
}

// NewManager returns an empty manager.
func NewManager() *Manager {
	return &Manager{entries: map[string]*Entry{}}
}

// ensureLocked returns the live entry for a signature, creating it
// (with p_u = FALSE, per §4.1) on first sight. Callers must hold mu;
// the returned pointer must not escape the critical section.
func (m *Manager) ensureLocked(sig Signature) *Entry {
	key := sig.Key()
	e, ok := m.entries[key]
	if !ok {
		e = &Entry{Sig: sig, Agg: symbolic.False(), ViewName: sig.ViewName()}
		m.entries[key] = e
	}
	return e
}

// Lookup returns a snapshot of the entry for a signature, creating it
// (with p_u = FALSE, per §4.1) on first sight. The snapshot is a value
// copy: a concurrent Commit replaces the live entry's predicate but
// never mutates the snapshot (DNFs are immutable once built).
func (m *Manager) Lookup(sig Signature) Entry {
	m.mu.Lock()
	defer m.mu.Unlock()
	return *m.ensureLocked(sig)
}

// AggOf returns the signature's aggregated predicate p_u, creating
// the entry on first sight. This is the race-safe accessor the
// optimizer uses while concurrent executions Commit new predicates.
func (m *Manager) AggOf(sig Signature) symbolic.DNF {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ensureLocked(sig).Agg
}

// Peek returns a snapshot of the entry if it exists, without creating
// it.
func (m *Manager) Peek(sig Signature) (Entry, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.entries[sig.Key()]
	if !ok {
		return Entry{}, false
	}
	return *e, true
}

// Analysis is the outcome of the symbolic reuse analysis for one UDF
// invocation: the reduced intersection and difference predicates and
// the aggregated predicate after the invocation runs.
type Analysis struct {
	Inter symbolic.DNF // p∩: tuples servable from the view
	Diff  symbolic.DNF // p−: tuples the UDF must still evaluate
	Union symbolic.DNF // p∪: the updated aggregated predicate
}

// Analyze computes INTER(p_u, q), DIFF(p_u, q) and UNION(p_u, q) for
// the signature's aggregated predicate and the invocation predicate q
// (§3.2 challenge I).
func (m *Manager) Analyze(sig Signature, q symbolic.DNF) Analysis {
	m.mu.Lock()
	agg := m.ensureLocked(sig).Agg
	m.mu.Unlock()
	return Analysis{
		Inter: symbolic.Inter(agg, q),
		Diff:  symbolic.Diff(agg, q),
		Union: symbolic.Union(agg, q),
	}
}

// Commit records that the invocation with predicate q has been
// materialized: p_u ← UNION(p_u, q).
func (m *Manager) Commit(sig Signature, q symbolic.DNF) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e := m.ensureLocked(sig)
	e.Agg = symbolic.Union(e.Agg, q)
}

// Constrain intersects the signature's aggregated predicate with a
// survival predicate: p_u ← INTER(p_u, s). Corruption quarantine calls
// it when a view loses rows — the aggregated predicate must shrink to
// what the view can still prove it holds, so the optimizer's DIFF
// residual re-plans exactly the lost tuples (and the next STORE
// re-commits them via the normal Union path).
func (m *Manager) Constrain(sig Signature, s symbolic.DNF) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e := m.ensureLocked(sig)
	e.Agg = symbolic.Inter(e.Agg, s)
}

// EntryByView returns a snapshot of the entry backed by the named
// materialized view, if any — the reverse mapping corruption repair
// needs (storage reports a view name; the manager owns the predicate).
func (m *Manager) EntryByView(view string) (Entry, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, e := range m.entries {
		if strings.EqualFold(e.ViewName, view) {
			return *e, true
		}
	}
	return Entry{}, false
}

// Reset drops all entries (a fresh workload run).
func (m *Manager) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.entries = map[string]*Entry{}
}

// Entries returns value snapshots of the manager's entries, sorted by
// signature key so callers never observe map-iteration order.
func (m *Manager) Entries() []Entry {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Entry, 0, len(m.entries))
	for _, e := range m.entries {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Sig.Key() < out[j].Sig.Key() })
	return out
}
