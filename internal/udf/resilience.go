package udf

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"eva/internal/catalog"
	"eva/internal/costs"
	"eva/internal/faults"
	"eva/internal/simclock"
)

// ErrModelUnavailable marks an evaluation rejected because the
// physical model's circuit breaker is open. The core engine treats it
// as a replanning signal: the optimizer re-runs Algorithm 2's set
// cover over the remaining healthy models implementing the logical
// task, so the query degrades to a fallback model instead of failing.
var ErrModelUnavailable = errors.New("model unavailable (circuit breaker open)")

// ErrEvalFailed marks a UDF invocation that failed even after the
// retry budget. The failure was charged to the model's circuit
// breaker, so the engine may re-run the query: either the model
// recovers, or its breaker opens and the optimizer degrades to a
// fallback.
var ErrEvalFailed = errors.New("udf evaluation failed")

// Breaker defaults. A model trips after BreakerThreshold consecutive
// failed invocations and stays open for BreakerCooldown of *virtual*
// time; after that a probe invocation is allowed through (half-open)
// and either closes the breaker or re-arms the cooldown.
const (
	DefaultBreakerThreshold = 3
	DefaultBreakerCooldown  = 30 * time.Second
)

// breaker is the per-physical-model circuit-breaker state.
type breaker struct {
	consecutive int           // consecutive failed invocations
	open        bool          // rejecting evaluations
	openedAt    time.Duration // virtual clock total at trip time
}

// SetInjector installs the fault injector consulted before every model
// attempt (nil disables injection).
func (r *Runtime) SetInjector(inj *faults.Injector) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.inj = inj
}

// SetRetryPolicy overrides the retry/breaker parameters; zero values
// keep the defaults (costs.RetryMaxAttempts attempts,
// DefaultBreakerThreshold trips, DefaultBreakerCooldown).
func (r *Runtime) SetRetryPolicy(maxAttempts, breakerThreshold int, cooldown time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.retryMax = maxAttempts
	r.breakThreshold = breakerThreshold
	r.breakCooldown = cooldown
}

func (r *Runtime) injector() *faults.Injector {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.inj
}

func (r *Runtime) maxAttempts() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.retryMax > 0 {
		return r.retryMax
	}
	return costs.RetryMaxAttempts
}

// breakerAllow rejects the invocation while the model's breaker is
// open and its virtual-time cooldown has not elapsed. After the
// cooldown one probe invocation is let through (half-open).
func (r *Runtime) breakerAllow(u *catalog.UDF) error {
	key := strings.ToLower(u.Name)
	r.mu.Lock()
	defer r.mu.Unlock()
	b := r.breakers[key]
	if b == nil || !b.open {
		return nil
	}
	if r.clock.Total()-b.openedAt >= r.cooldownLocked() {
		return nil // half-open probe
	}
	return fmt.Errorf("udf: %s: %w", u.Name, ErrModelUnavailable)
}

func (r *Runtime) cooldownLocked() time.Duration {
	if r.breakCooldown > 0 {
		return r.breakCooldown
	}
	return DefaultBreakerCooldown
}

func (r *Runtime) thresholdLocked() int {
	if r.breakThreshold > 0 {
		return r.breakThreshold
	}
	return DefaultBreakerThreshold
}

// noteOutcome records an invocation-level success or failure for the
// breaker: consecutive failures trip it, any success closes it.
func (r *Runtime) noteOutcome(name string, ok bool) {
	key := strings.ToLower(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	b := r.breakers[key]
	if b == nil {
		b = &breaker{}
		r.breakers[key] = b
	}
	if ok {
		b.consecutive = 0
		b.open = false
		return
	}
	b.consecutive++
	if b.consecutive >= r.thresholdLocked() {
		b.open = true
		b.openedAt = r.clock.Total()
	}
}

// ModelHealthy reports whether the model accepts evaluations: its
// breaker is closed, or open but past the cooldown (probe allowed).
// It implements the optimizer's health view for Algorithm 2's
// degraded re-cover.
func (r *Runtime) ModelHealthy(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	b := r.breakers[strings.ToLower(name)]
	if b == nil || !b.open {
		return true
	}
	return r.clock.Total()-b.openedAt >= r.cooldownLocked()
}

// FailureRate returns the observed per-attempt *transient* failure
// probability of the model (transient failures over total attempts);
// the optimizer feeds it to costs.RetryAdjustedCost so expected
// retries show up in the Eq. 3 accounting. Permanent failures are
// deliberately excluded: they route through the circuit breaker
// (trip, cooldown, probe) rather than inflating the model's planning
// cost — otherwise a single hard failure would poison the cost model
// with no recovery path. A model with no observed attempts reports 0.
func (r *Runtime) FailureRate(name string) float64 {
	key := strings.ToLower(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	attempts := r.evals[key] + r.failed[key]
	if attempts == 0 {
		return 0
	}
	return float64(r.transient[key]) / float64(attempts)
}

func (r *Runtime) countFailed(name string, isTransient bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := strings.ToLower(name)
	r.failed[key]++
	if isTransient {
		r.transient[key]++
	}
}

func (r *Runtime) countRetry(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.retried[strings.ToLower(name)]++
}

// evalResilient runs one UDF invocation with transient-fault retry and
// circuit breaking. eval performs a single attempt (and must wrap its
// own errors with the UDF name). Every attempt — failed or not — is
// charged the model's profiled cost; backoff between attempts is
// charged to the Retry category so resilience shows up in the
// simulated-time breakdown.
func (r *Runtime) evalResilient(u *catalog.UDF, eval func() error) error {
	if err := r.breakerAllow(u); err != nil {
		return err
	}
	max := r.maxAttempts()
	site := faults.SiteUDF(u.Name)
	for attempt := 1; ; attempt++ {
		r.clock.Charge(simclock.CatUDF, u.Cost)
		var err error
		if ferr := r.injector().Check(site); ferr != nil {
			err = fmt.Errorf("udf: %s: %w", u.Name, ferr)
		} else {
			err = eval()
		}
		if err == nil {
			r.countEval(u.Name)
			r.noteOutcome(u.Name, true)
			return nil
		}
		r.countFailed(u.Name, faults.IsTransient(err))
		if faults.IsTransient(err) && attempt < max {
			r.clock.Charge(simclock.CatRetry, costs.RetryBackoff(attempt+1))
			r.countRetry(u.Name)
			continue
		}
		r.noteOutcome(u.Name, false)
		if attempt > 1 {
			return fmt.Errorf("%w: %s after %d attempts: %w", ErrEvalFailed, u.Name, attempt, err)
		}
		return fmt.Errorf("%w: %w", ErrEvalFailed, err)
	}
}
