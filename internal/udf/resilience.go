package udf

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"eva/internal/catalog"
	"eva/internal/costs"
	"eva/internal/faults"
	"eva/internal/simclock"
	"eva/internal/types"
	"eva/internal/xxhash"
)

// ErrModelUnavailable marks an evaluation rejected because the
// physical model's circuit breaker is open. The core engine treats it
// as a replanning signal: the optimizer re-runs Algorithm 2's set
// cover over the remaining healthy models implementing the logical
// task, so the query degrades to a fallback model instead of failing.
var ErrModelUnavailable = errors.New("model unavailable (circuit breaker open)")

// ErrEvalFailed marks a UDF invocation that failed even after the
// retry budget. The failure was charged to the model's circuit
// breaker, so the engine may re-run the query: either the model
// recovers, or its breaker opens and the optimizer degrades to a
// fallback.
var ErrEvalFailed = errors.New("udf evaluation failed")

// Breaker defaults. A model trips after BreakerThreshold consecutive
// failed invocations and stays open for BreakerCooldown of *virtual*
// time; after that a probe invocation is allowed through (half-open)
// and either closes the breaker or re-arms the cooldown.
const (
	DefaultBreakerThreshold = 3
	DefaultBreakerCooldown  = 30 * time.Second
)

// breaker is the per-physical-model circuit-breaker state.
type breaker struct {
	consecutive int           // consecutive failed invocations
	open        bool          // rejecting evaluations
	openedAt    time.Duration // virtual clock total at trip time
}

// SetInjector installs the fault injector on the default domain (nil
// disables injection). Session domains carry their own injectors.
func (r *Runtime) SetInjector(inj *faults.Injector) {
	r.def.SetInjector(inj)
}

// SetRetryPolicy overrides the retry/breaker parameters; zero values
// keep the defaults (costs.RetryMaxAttempts attempts,
// DefaultBreakerThreshold trips, DefaultBreakerCooldown). The policy
// is shared by every domain.
func (r *Runtime) SetRetryPolicy(maxAttempts, breakerThreshold int, cooldown time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.retryMax = maxAttempts
	r.breakThreshold = breakerThreshold
	r.breakCooldown = cooldown
}

func (r *Runtime) maxAttempts() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.retryMax > 0 {
		return r.retryMax
	}
	return costs.RetryMaxAttempts
}

// breakerAllow rejects the invocation while the model's breaker is
// open and its virtual-time cooldown has not elapsed. After the
// cooldown one probe invocation is let through (half-open).
func (d *Domain) breakerAllow(u *catalog.UDF) error {
	key := strings.ToLower(u.Name)
	cd := d.r.cooldown()
	now := d.clock.Total()
	d.mu.Lock()
	defer d.mu.Unlock()
	b := d.breakers[key]
	if b == nil || !b.open {
		return nil
	}
	if now-b.openedAt >= cd {
		return nil // half-open probe
	}
	return fmt.Errorf("udf: %s: %w", u.Name, ErrModelUnavailable)
}

// HealthSnapshot is a frozen view of a domain's circuit breakers,
// taken at a serial point (the executor captures one per batch before
// fanning out) so that every concurrently evaluated invocation sees
// the same admission decisions the serial engine would. Without it,
// the live breakerAllow reads the advancing virtual clock and an open
// breaker could flip to half-open mid-batch at a worker-dependent row.
type HealthSnapshot struct {
	now      time.Duration
	cooldown time.Duration
	open     map[string]time.Duration // open breakers → openedAt
}

// HealthSnapshot captures the domain's breaker states and virtual time.
func (d *Domain) HealthSnapshot() *HealthSnapshot {
	cd := d.r.cooldown()
	now := d.clock.Total()
	d.mu.Lock()
	defer d.mu.Unlock()
	hs := &HealthSnapshot{now: now, cooldown: cd}
	for name, b := range d.breakers {
		if b.open {
			if hs.open == nil {
				hs.open = map[string]time.Duration{}
			}
			hs.open[name] = b.openedAt
		}
	}
	return hs
}

// HealthSnapshot captures the default domain's breaker states.
func (r *Runtime) HealthSnapshot() *HealthSnapshot { return r.def.HealthSnapshot() }

// allow is breakerAllow against the frozen snapshot. Breaker decisions
// become batch-granular under snapshots: every row of a batch sees the
// state at the batch's start, at any worker count.
func (h *HealthSnapshot) allow(u *catalog.UDF) error {
	openedAt, open := h.open[strings.ToLower(u.Name)]
	if !open || h.now-openedAt >= h.cooldown {
		return nil // closed, or half-open probe
	}
	return fmt.Errorf("udf: %s: %w", u.Name, ErrModelUnavailable)
}

// OutcomeSink defers the breaker bookkeeping of invocation outcomes so
// the executor can commit them in serial row order during its assemble
// phase. Each sink belongs to a single row (one goroutine); only
// CommitOutcomes touches shared state.
type OutcomeSink struct {
	outcomes []sunkOutcome
}

type sunkOutcome struct {
	name string
	ok   bool
}

func (s *OutcomeSink) record(name string, ok bool) {
	s.outcomes = append(s.outcomes, sunkOutcome{name: name, ok: ok})
}

// Reset clears the sink for reuse, keeping its capacity — executors
// recycle per-row sinks across batches to stay off the heap.
func (s *OutcomeSink) Reset() {
	s.outcomes = s.outcomes[:0]
}

// CommitOutcomes applies a row's deferred invocation outcomes to the
// domain's circuit breakers. The executor calls it row by row in
// input order, so consecutive-failure counts — and therefore breaker
// trips, degradation triggers and replans — fire at the same row at
// every worker count. Nil sinks and empty sinks are no-ops.
func (d *Domain) CommitOutcomes(sink *OutcomeSink) {
	if sink == nil {
		return
	}
	for _, o := range sink.outcomes {
		d.noteOutcome(o.name, o.ok)
	}
	// Keep the capacity: committed sinks are recycled by the executor.
	sink.outcomes = sink.outcomes[:0]
}

// CommitOutcomes applies deferred outcomes to the default domain.
func (r *Runtime) CommitOutcomes(sink *OutcomeSink) { r.def.CommitOutcomes(sink) }

func (r *Runtime) cooldownLocked() time.Duration {
	if r.breakCooldown > 0 {
		return r.breakCooldown
	}
	return DefaultBreakerCooldown
}

func (r *Runtime) thresholdLocked() int {
	if r.breakThreshold > 0 {
		return r.breakThreshold
	}
	return DefaultBreakerThreshold
}

// noteOutcome records an invocation-level success or failure for the
// domain's breaker: consecutive failures trip it, any success closes it.
func (d *Domain) noteOutcome(name string, ok bool) {
	key := strings.ToLower(name)
	threshold := d.r.threshold()
	now := d.clock.Total()
	d.mu.Lock()
	defer d.mu.Unlock()
	b := d.breakers[key]
	if b == nil {
		b = &breaker{}
		d.breakers[key] = b
	}
	if ok {
		b.consecutive = 0
		b.open = false
		return
	}
	b.consecutive++
	if b.consecutive >= threshold {
		b.open = true
		b.openedAt = now
	}
}

// noteAttempt records one invocation attempt (and whether it failed
// transiently) in the domain's failure-rate observations.
func (d *Domain) noteAttempt(name string, transientFailure bool) {
	key := strings.ToLower(name)
	d.mu.Lock()
	defer d.mu.Unlock()
	d.attempts[key]++
	if transientFailure {
		d.transient[key]++
	}
}

// ModelHealthy reports whether the model accepts evaluations in this
// domain: its breaker is closed, or open but past the cooldown (probe
// allowed). It implements the optimizer's health view for Algorithm
// 2's degraded re-cover.
func (d *Domain) ModelHealthy(name string) bool {
	cd := d.r.cooldown()
	now := d.clock.Total()
	d.mu.Lock()
	defer d.mu.Unlock()
	b := d.breakers[strings.ToLower(name)]
	if b == nil || !b.open {
		return true
	}
	return now-b.openedAt >= cd
}

// ModelHealthy reports the default domain's breaker admission.
func (r *Runtime) ModelHealthy(name string) bool { return r.def.ModelHealthy(name) }

// FailureRate returns the domain's observed per-attempt *transient*
// failure probability of the model (transient failures over total
// attempts); the optimizer feeds it to costs.RetryAdjustedCost so
// expected retries show up in the Eq. 3 accounting. Permanent
// failures are deliberately excluded: they route through the circuit
// breaker (trip, cooldown, probe) rather than inflating the model's
// planning cost — otherwise a single hard failure would poison the
// cost model with no recovery path. A model with no observed attempts
// reports 0.
func (d *Domain) FailureRate(name string) float64 {
	key := strings.ToLower(name)
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.attempts[key] == 0 {
		return 0
	}
	return float64(d.transient[key]) / float64(d.attempts[key])
}

// FailureRate reports the default domain's observed failure rate.
func (r *Runtime) FailureRate(name string) float64 { return r.def.FailureRate(name) }

func (r *Runtime) countFailed(name string, isTransient bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := strings.ToLower(name)
	r.failed[key]++
	if isTransient {
		r.transient[key]++
	}
}

func (r *Runtime) countRetry(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.retried[strings.ToLower(name)]++
}

// EvalIdentity derives a call identity for fault injection from the
// invocation's arguments — the fallback used by the legacy entry
// points (expression-level scalar calls, direct Runtime callers),
// which have no executor-assigned invocation index. Identical
// arguments yield the same identity, so a FunCache claimant draws the
// same schedule no matter which row claims the key.
func EvalIdentity(udfName string, args []types.Datum) uint64 {
	return xxhash.Sum64(rawArgs(udfName, args), 0)
}

// evalResilient runs one UDF invocation with transient-fault retry and
// circuit breaking. eval performs a single attempt (and must wrap its
// own errors with the UDF name). Every attempt — failed or not — is
// charged the model's profiled cost on the domain's clock; backoff
// between attempts is charged to the Retry category so resilience
// shows up in the simulated-time breakdown.
//
// id keys the injector's per-invocation fault decisions (see
// faults.CheckEval). hs, when non-nil, replaces the live breaker
// admission check with a frozen batch-level snapshot; sink, when
// non-nil, defers the breaker outcome for a serial-order commit via
// CommitOutcomes. The executor's parallel apply path supplies all
// three; legacy callers pass a zero id (harmless without an injector)
// and nil for both, keeping the immediate-commit behavior. The
// runtime's demand/failure counters always commit immediately: they
// are sums, so scheduling order cannot change their totals.
func (d *Domain) evalResilient(u *catalog.UDF, id uint64, hs *HealthSnapshot, sink *OutcomeSink, eval func() error) error {
	r := d.r
	if hs != nil {
		if err := hs.allow(u); err != nil {
			return err
		}
	} else if err := d.breakerAllow(u); err != nil {
		return err
	}
	commit := func(ok bool) {
		if sink != nil {
			sink.record(u.Name, ok)
		} else {
			d.noteOutcome(u.Name, ok)
		}
	}
	max := r.maxAttempts()
	site := faults.SiteUDF(u.Name)
	for attempt := 1; ; attempt++ {
		d.clock.Charge(simclock.CatUDF, u.Cost)
		var err error
		if ferr := d.injector().CheckEval(site, id, attempt); ferr != nil {
			err = fmt.Errorf("udf: %s: %w", u.Name, ferr)
		} else {
			err = eval()
		}
		if err == nil {
			r.countEval(u.Name)
			d.noteAttempt(u.Name, false)
			commit(true)
			return nil
		}
		r.countFailed(u.Name, faults.IsTransient(err))
		d.noteAttempt(u.Name, faults.IsTransient(err))
		if faults.IsTransient(err) && attempt < max {
			d.clock.Charge(simclock.CatRetry, costs.RetryBackoff(attempt+1))
			r.countRetry(u.Name)
			continue
		}
		commit(false)
		if attempt > 1 {
			return fmt.Errorf("%w: %s after %d attempts: %w", ErrEvalFailed, u.Name, attempt, err)
		}
		return fmt.Errorf("%w: %w", ErrEvalFailed, err)
	}
}
