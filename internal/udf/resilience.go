package udf

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"eva/internal/catalog"
	"eva/internal/costs"
	"eva/internal/faults"
	"eva/internal/simclock"
	"eva/internal/types"
	"eva/internal/xxhash"
)

// ErrModelUnavailable marks an evaluation rejected because the
// physical model's circuit breaker is open. The core engine treats it
// as a replanning signal: the optimizer re-runs Algorithm 2's set
// cover over the remaining healthy models implementing the logical
// task, so the query degrades to a fallback model instead of failing.
var ErrModelUnavailable = errors.New("model unavailable (circuit breaker open)")

// ErrEvalFailed marks a UDF invocation that failed even after the
// retry budget. The failure was charged to the model's circuit
// breaker, so the engine may re-run the query: either the model
// recovers, or its breaker opens and the optimizer degrades to a
// fallback.
var ErrEvalFailed = errors.New("udf evaluation failed")

// Breaker defaults. A model trips after BreakerThreshold consecutive
// failed invocations and stays open for BreakerCooldown of *virtual*
// time; after that a probe invocation is allowed through (half-open)
// and either closes the breaker or re-arms the cooldown.
const (
	DefaultBreakerThreshold = 3
	DefaultBreakerCooldown  = 30 * time.Second
)

// breaker is the per-physical-model circuit-breaker state.
type breaker struct {
	consecutive int           // consecutive failed invocations
	open        bool          // rejecting evaluations
	openedAt    time.Duration // virtual clock total at trip time
}

// SetInjector installs the fault injector consulted before every model
// attempt (nil disables injection).
func (r *Runtime) SetInjector(inj *faults.Injector) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.inj = inj
}

// SetRetryPolicy overrides the retry/breaker parameters; zero values
// keep the defaults (costs.RetryMaxAttempts attempts,
// DefaultBreakerThreshold trips, DefaultBreakerCooldown).
func (r *Runtime) SetRetryPolicy(maxAttempts, breakerThreshold int, cooldown time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.retryMax = maxAttempts
	r.breakThreshold = breakerThreshold
	r.breakCooldown = cooldown
}

func (r *Runtime) injector() *faults.Injector {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.inj
}

func (r *Runtime) maxAttempts() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.retryMax > 0 {
		return r.retryMax
	}
	return costs.RetryMaxAttempts
}

// breakerAllow rejects the invocation while the model's breaker is
// open and its virtual-time cooldown has not elapsed. After the
// cooldown one probe invocation is let through (half-open).
func (r *Runtime) breakerAllow(u *catalog.UDF) error {
	key := strings.ToLower(u.Name)
	r.mu.Lock()
	defer r.mu.Unlock()
	b := r.breakers[key]
	if b == nil || !b.open {
		return nil
	}
	if r.clock.Total()-b.openedAt >= r.cooldownLocked() {
		return nil // half-open probe
	}
	return fmt.Errorf("udf: %s: %w", u.Name, ErrModelUnavailable)
}

// HealthSnapshot is a frozen view of the circuit breakers, taken at a
// serial point (the executor captures one per batch before fanning
// out) so that every concurrently evaluated invocation sees the same
// admission decisions the serial engine would. Without it, the live
// breakerAllow reads the advancing virtual clock and an open breaker
// could flip to half-open mid-batch at a worker-dependent row.
type HealthSnapshot struct {
	now      time.Duration
	cooldown time.Duration
	open     map[string]time.Duration // open breakers → openedAt
}

// HealthSnapshot captures the current breaker states and virtual time.
func (r *Runtime) HealthSnapshot() *HealthSnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	hs := &HealthSnapshot{now: r.clock.Total(), cooldown: r.cooldownLocked()}
	for name, b := range r.breakers {
		if b.open {
			if hs.open == nil {
				hs.open = map[string]time.Duration{}
			}
			hs.open[name] = b.openedAt
		}
	}
	return hs
}

// allow is breakerAllow against the frozen snapshot. Breaker decisions
// become batch-granular under snapshots: every row of a batch sees the
// state at the batch's start, at any worker count.
func (h *HealthSnapshot) allow(u *catalog.UDF) error {
	openedAt, open := h.open[strings.ToLower(u.Name)]
	if !open || h.now-openedAt >= h.cooldown {
		return nil // closed, or half-open probe
	}
	return fmt.Errorf("udf: %s: %w", u.Name, ErrModelUnavailable)
}

// OutcomeSink defers the breaker bookkeeping of invocation outcomes so
// the executor can commit them in serial row order during its assemble
// phase. Each sink belongs to a single row (one goroutine); only
// CommitOutcomes touches shared state.
type OutcomeSink struct {
	outcomes []sunkOutcome
}

type sunkOutcome struct {
	name string
	ok   bool
}

func (s *OutcomeSink) record(name string, ok bool) {
	s.outcomes = append(s.outcomes, sunkOutcome{name: name, ok: ok})
}

// CommitOutcomes applies a row's deferred invocation outcomes to the
// circuit breakers. The executor calls it row by row in input order,
// so consecutive-failure counts — and therefore breaker trips,
// degradation triggers and replans — fire at the same row at every
// worker count. Nil sinks and empty sinks are no-ops.
func (r *Runtime) CommitOutcomes(sink *OutcomeSink) {
	if sink == nil {
		return
	}
	for _, o := range sink.outcomes {
		r.noteOutcome(o.name, o.ok)
	}
	sink.outcomes = nil
}

func (r *Runtime) cooldownLocked() time.Duration {
	if r.breakCooldown > 0 {
		return r.breakCooldown
	}
	return DefaultBreakerCooldown
}

func (r *Runtime) thresholdLocked() int {
	if r.breakThreshold > 0 {
		return r.breakThreshold
	}
	return DefaultBreakerThreshold
}

// noteOutcome records an invocation-level success or failure for the
// breaker: consecutive failures trip it, any success closes it.
func (r *Runtime) noteOutcome(name string, ok bool) {
	key := strings.ToLower(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	b := r.breakers[key]
	if b == nil {
		b = &breaker{}
		r.breakers[key] = b
	}
	if ok {
		b.consecutive = 0
		b.open = false
		return
	}
	b.consecutive++
	if b.consecutive >= r.thresholdLocked() {
		b.open = true
		b.openedAt = r.clock.Total()
	}
}

// ModelHealthy reports whether the model accepts evaluations: its
// breaker is closed, or open but past the cooldown (probe allowed).
// It implements the optimizer's health view for Algorithm 2's
// degraded re-cover.
func (r *Runtime) ModelHealthy(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	b := r.breakers[strings.ToLower(name)]
	if b == nil || !b.open {
		return true
	}
	return r.clock.Total()-b.openedAt >= r.cooldownLocked()
}

// FailureRate returns the observed per-attempt *transient* failure
// probability of the model (transient failures over total attempts);
// the optimizer feeds it to costs.RetryAdjustedCost so expected
// retries show up in the Eq. 3 accounting. Permanent failures are
// deliberately excluded: they route through the circuit breaker
// (trip, cooldown, probe) rather than inflating the model's planning
// cost — otherwise a single hard failure would poison the cost model
// with no recovery path. A model with no observed attempts reports 0.
func (r *Runtime) FailureRate(name string) float64 {
	key := strings.ToLower(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	attempts := r.evals[key] + r.failed[key]
	if attempts == 0 {
		return 0
	}
	return float64(r.transient[key]) / float64(attempts)
}

func (r *Runtime) countFailed(name string, isTransient bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := strings.ToLower(name)
	r.failed[key]++
	if isTransient {
		r.transient[key]++
	}
}

func (r *Runtime) countRetry(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.retried[strings.ToLower(name)]++
}

// EvalIdentity derives a call identity for fault injection from the
// invocation's arguments — the fallback used by the legacy entry
// points (expression-level scalar calls, direct Runtime callers),
// which have no executor-assigned invocation index. Identical
// arguments yield the same identity, so a FunCache claimant draws the
// same schedule no matter which row claims the key.
func EvalIdentity(udfName string, args []types.Datum) uint64 {
	return xxhash.Sum64(rawArgs(udfName, args), 0)
}

// evalResilient runs one UDF invocation with transient-fault retry and
// circuit breaking. eval performs a single attempt (and must wrap its
// own errors with the UDF name). Every attempt — failed or not — is
// charged the model's profiled cost; backoff between attempts is
// charged to the Retry category so resilience shows up in the
// simulated-time breakdown.
//
// id keys the injector's per-invocation fault decisions (see
// faults.CheckEval). hs, when non-nil, replaces the live breaker
// admission check with a frozen batch-level snapshot; sink, when
// non-nil, defers the breaker outcome for a serial-order commit via
// CommitOutcomes. The executor's parallel apply path supplies all
// three; legacy callers pass a zero id (harmless without an injector)
// and nil for both, keeping the immediate-commit behavior. The
// demand/failure counters always commit immediately: they are sums,
// so scheduling order cannot change their totals.
func (r *Runtime) evalResilient(u *catalog.UDF, id uint64, hs *HealthSnapshot, sink *OutcomeSink, eval func() error) error {
	if hs != nil {
		if err := hs.allow(u); err != nil {
			return err
		}
	} else if err := r.breakerAllow(u); err != nil {
		return err
	}
	commit := func(ok bool) {
		if sink != nil {
			sink.record(u.Name, ok)
		} else {
			r.noteOutcome(u.Name, ok)
		}
	}
	max := r.maxAttempts()
	site := faults.SiteUDF(u.Name)
	for attempt := 1; ; attempt++ {
		r.clock.Charge(simclock.CatUDF, u.Cost)
		var err error
		if ferr := r.injector().CheckEval(site, id, attempt); ferr != nil {
			err = fmt.Errorf("udf: %s: %w", u.Name, ferr)
		} else {
			err = eval()
		}
		if err == nil {
			r.countEval(u.Name)
			commit(true)
			return nil
		}
		r.countFailed(u.Name, faults.IsTransient(err))
		if faults.IsTransient(err) && attempt < max {
			r.clock.Charge(simclock.CatRetry, costs.RetryBackoff(attempt+1))
			r.countRetry(u.Name)
			continue
		}
		commit(false)
		if attempt > 1 {
			return fmt.Errorf("%w: %s after %d attempts: %w", ErrEvalFailed, u.Name, attempt, err)
		}
		return fmt.Errorf("%w: %w", ErrEvalFailed, err)
	}
}
