package udf

import (
	"fmt"
	"sync"
	"testing"

	"eva/internal/expr"
	"eva/internal/symbolic"
	"eva/internal/types"
)

func rangeDNF(t *testing.T, lo, hi int64) symbolic.DNF {
	t.Helper()
	p := expr.NewAnd(
		expr.NewCmp(expr.OpGe, expr.NewColumn("id"), expr.NewConst(types.NewInt(lo))),
		expr.NewCmp(expr.OpLt, expr.NewColumn("id"), expr.NewConst(types.NewInt(hi))),
	)
	d, err := symbolic.FromExpr(p)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestManagerConcurrentCommitAndRead is the regression test for the
// aggregated-predicate race: optimizer threads used to read a live
// *Entry.Agg while Commit replaced it under the manager's lock,
// tripping the race detector. The snapshot API (Lookup/AggOf/Entries
// return value copies) must let readers and committers run freely.
func TestManagerConcurrentCommitAndRead(t *testing.T) {
	m := NewManager()
	sig := NewSignature("", "cartype", []expr.Expr{expr.NewColumn("frame"), expr.NewColumn("bbox")})
	const workers = 8
	const rounds = 50

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				lo := int64((w*rounds + i) * 10)
				q := rangeDNF(t, lo, lo+10)
				switch i % 4 {
				case 0:
					m.Commit(sig, q)
				case 1:
					_ = m.AggOf(sig).AtomCount()
				case 2:
					a := m.Analyze(sig, q)
					_ = a.Inter.IsFalse()
				default:
					for _, e := range m.Entries() {
						_ = e.Agg.String()
					}
				}
			}
		}(w)
	}
	wg.Wait()

	if got := len(m.Entries()); got != 1 {
		t.Fatalf("entries = %d, want 1", got)
	}
	if m.AggOf(sig).IsFalse() {
		t.Fatal("aggregated predicate still FALSE after commits")
	}
}

// TestManagerSnapshotIsolation checks that a Lookup snapshot is not
// retroactively changed by a later Commit — the property the
// optimizer relies on while planning against a fixed p_u.
func TestManagerSnapshotIsolation(t *testing.T) {
	m := NewManager()
	sig := NewSignature("", "redness", []expr.Expr{expr.NewColumn("frame")})
	snap := m.Lookup(sig)
	if !snap.Agg.IsFalse() {
		t.Fatalf("fresh entry p_u = %s, want FALSE", snap.Agg)
	}
	m.Commit(sig, rangeDNF(t, 0, 100))
	if !snap.Agg.IsFalse() {
		t.Fatalf("snapshot mutated by Commit: %s", snap.Agg)
	}
	if m.AggOf(sig).IsFalse() {
		t.Fatal("live entry not updated by Commit")
	}
}

func BenchmarkManagerAggOf(b *testing.B) {
	m := NewManager()
	sig := NewSignature("", "cartype", []expr.Expr{expr.NewColumn("frame"), expr.NewColumn("bbox")})
	p := expr.NewCmp(expr.OpLt, expr.NewColumn("id"), expr.NewConst(types.NewInt(1000)))
	d, err := symbolic.FromExpr(p)
	if err != nil {
		b.Fatal(err)
	}
	m.Commit(sig, d)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if m.AggOf(sig).IsFalse() {
			b.Fatal("unexpected FALSE")
		}
	}
	_ = fmt.Sprintf("%v", m.Entries())
}
