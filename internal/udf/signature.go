// Package udf implements the UDF runtime and the UDFManager of §3.1:
// UDF signatures, the per-signature aggregated predicate p_u, the
// binding from signatures to materialized views, cost-charged model
// evaluation, the FunCache tuple-level result cache baseline, and the
// demand/reuse counters behind Table 2 (hit percentage) and Table 3
// (#DI / #TI).
package udf

import (
	"fmt"
	"sort"
	"strings"

	"eva/internal/expr"
)

// Signature is a UDF's unique fingerprint S_u = [N_u; I_u]: the UDF
// name plus the set of sources (columns of the input video or outputs
// of other UDFs) it reads (§3.1 step ②), qualified by the source
// table the inputs come from. EVA reuses results across UDF
// occurrences with identical signatures; qualification by table keeps
// invocations over different videos — and different sessions'
// private tables — in disjoint views and aggregated predicates, so a
// frame id from one video can never serve a lookup against another.
type Signature struct {
	Table  string
	Name   string
	Inputs []string
}

// NewSignature builds a signature from the source table, a UDF name
// and the argument expressions of one of its invocations. Argument
// columns are normalized (lower-cased, sorted) so that syntactic
// argument order does not split signatures. An empty table yields an
// unqualified signature (unit-test convenience).
func NewSignature(table, name string, args []expr.Expr) Signature {
	inputSet := map[string]struct{}{}
	for _, a := range args {
		for _, c := range expr.CollectColumns(a) {
			inputSet[strings.ToLower(c)] = struct{}{}
		}
		for _, call := range expr.CollectCalls(a) {
			inputSet[strings.ToLower(call.Fn)] = struct{}{}
		}
	}
	inputs := make([]string, 0, len(inputSet))
	for c := range inputSet {
		inputs = append(inputs, c)
	}
	sort.Strings(inputs)
	return Signature{Table: strings.ToLower(table), Name: strings.ToLower(name), Inputs: inputs}
}

// Key returns the canonical string form used as a map key and as the
// materialized view name, qualified by the source table when set.
func (s Signature) Key() string {
	base := s.Name + "[" + strings.Join(s.Inputs, ",") + "]"
	if s.Table == "" {
		return base
	}
	return s.Table + "." + base
}

// String implements fmt.Stringer.
func (s Signature) String() string { return s.Key() }

// KeyColumns maps the signature's inputs to the view key columns that
// identify one invocation: the frame payload column is identified by
// the frame id, every other input column keys as itself. A detector
// invoked as f(frame) keys by [id]; CarType(frame, bbox) keys by
// [id, bbox].
func (s Signature) KeyColumns() []string {
	out := make([]string, 0, len(s.Inputs))
	seen := map[string]struct{}{}
	for _, in := range s.Inputs {
		col := in
		if col == "frame" {
			col = "id"
		}
		if _, dup := seen[col]; dup {
			continue
		}
		seen[col] = struct{}{}
		out = append(out, col)
	}
	if len(out) == 0 {
		return []string{"id"}
	}
	return out
}

// ViewName returns the storage name of the signature's view.
func (s Signature) ViewName() string {
	return fmt.Sprintf("udf_%s", strings.NewReplacer("[", "_", "]", "", ",", "_", ".", "_").Replace(s.Key()))
}
