package udf

import (
	"fmt"
	"testing"
	"time"

	"eva/internal/catalog"
	"eva/internal/expr"
	"eva/internal/simclock"
	"eva/internal/symbolic"
	"eva/internal/types"
	"eva/internal/vision"
)

func TestSignatureNormalization(t *testing.T) {
	a := NewSignature("", "CarType", []expr.Expr{expr.NewColumn("frame"), expr.NewColumn("bbox")})
	b := NewSignature("", "cartype", []expr.Expr{expr.NewColumn("BBOX"), expr.NewColumn("Frame")})
	if a.Key() != b.Key() {
		t.Errorf("signatures differ: %s vs %s", a, b)
	}
	if a.Key() != "cartype[bbox,frame]" {
		t.Errorf("key = %q", a.Key())
	}
	if got := a.KeyColumns(); len(got) != 2 || got[0] != "bbox" || got[1] != "id" {
		t.Errorf("key columns = %v", got)
	}
	det := NewSignature("", "FasterRCNNResnet50", []expr.Expr{expr.NewColumn("frame")})
	if got := det.KeyColumns(); len(got) != 1 || got[0] != "id" {
		t.Errorf("detector key columns = %v", got)
	}
	if det.ViewName() != "udf_fasterrcnnresnet50_frame" {
		t.Errorf("view name = %q", det.ViewName())
	}
	// Nested calls contribute their function name as a source.
	nested := NewSignature("", "f", []expr.Expr{expr.NewCall("g", expr.NewColumn("x"))})
	if key := nested.Key(); key != "f[g,x]" {
		t.Errorf("nested key = %q", key)
	}
	// No args still keys by frame id.
	empty := NewSignature("", "f", nil)
	if got := empty.KeyColumns(); len(got) != 1 || got[0] != "id" {
		t.Errorf("empty key columns = %v", got)
	}
}

func pred(t *testing.T, s string, lo, hi float64) symbolic.DNF {
	t.Helper()
	e := expr.NewAnd(
		expr.NewCmp(expr.OpGe, expr.NewColumn(s), expr.NewConst(types.NewFloat(lo))),
		expr.NewCmp(expr.OpLt, expr.NewColumn(s), expr.NewConst(types.NewFloat(hi))),
	)
	d, err := symbolic.FromExpr(e)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestManagerLifecycle(t *testing.T) {
	m := NewManager()
	sig := NewSignature("", "det", []expr.Expr{expr.NewColumn("frame")})
	e := m.Lookup(sig)
	if !e.Agg.IsFalse() {
		t.Error("fresh entry should have p_u = FALSE")
	}
	q1 := pred(t, "id", 0, 10000)
	an := m.Analyze(sig, q1)
	if !an.Inter.IsFalse() {
		t.Error("first query: no overlap")
	}
	if an.Diff.IsFalse() {
		t.Error("first query: everything is new work")
	}
	m.Commit(sig, q1)

	q2 := pred(t, "id", 7500, 12000)
	an = m.Analyze(sig, q2)
	if an.Inter.IsFalse() {
		t.Error("second query should overlap")
	}
	if ok, _ := an.Diff.Evaluate(map[string]symbolic.Value{"id": symbolic.Num(11000)}); !ok {
		t.Errorf("11000 should be in diff: %s", an.Diff)
	}
	if ok, _ := an.Diff.Evaluate(map[string]symbolic.Value{"id": symbolic.Num(8000)}); ok {
		t.Errorf("8000 should not be in diff: %s", an.Diff)
	}
	m.Commit(sig, q2)
	// Aggregated predicate reduced to one range.
	e = m.Lookup(sig)
	if got := e.Agg.AtomCount(); got != 2 {
		t.Errorf("p_u atoms = %d (%s), want 2 ([0, 12000))", got, e.Agg)
	}

	if _, ok := m.Peek(NewSignature("", "other", nil)); ok {
		t.Error("Peek should not create entries")
	}
	if len(m.Entries()) != 1 {
		t.Errorf("entries = %d", len(m.Entries()))
	}
	m.Reset()
	if len(m.Entries()) != 0 {
		t.Error("reset failed")
	}
}

func newRuntime(t *testing.T) (*Runtime, *simclock.Clock) {
	t.Helper()
	clock := &simclock.Clock{}
	return NewRuntime(catalog.New(), clock), clock
}

func TestEvalDetectorChargesCost(t *testing.T) {
	r, clock := newRuntime(t)
	payload := vision.MediumUADetrac.EncodeFrame(42)
	out, err := r.EvalDetector(vision.FasterRCNN50, payload)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Schema().Equal(catalog.DetectorSchema) {
		t.Errorf("schema = %s", out.Schema())
	}
	if got := clock.Total(); got != 99*time.Millisecond {
		t.Errorf("charged %v, want 99ms", got)
	}
	// Output rows match the vision model directly.
	dets, _ := vision.Detect(vision.FasterRCNN50, payload)
	if out.Len() != len(dets) {
		t.Errorf("rows = %d, want %d", out.Len(), len(dets))
	}
	if out.Len() > 0 {
		if got := out.At(0, 3).Float(); got != dets[0].Area() {
			t.Errorf("area col = %v, want %v", got, dets[0].Area())
		}
	}
	if _, err := r.EvalDetector("CarType", payload); err == nil {
		t.Error("scalar UDF as detector should error")
	}
	if _, err := r.EvalDetector("ghost", payload); err == nil {
		t.Error("unknown UDF should error")
	}
}

func TestEvalScalarBuiltins(t *testing.T) {
	r, clock := newRuntime(t)
	payload := vision.MediumUADetrac.EncodeFrame(3)
	objs := vision.MediumUADetrac.Objects(3)
	if len(objs) == 0 {
		t.Skip("frame 3 empty")
	}
	bbox := vision.FormatBBox(objs[0].X, objs[0].Y, objs[0].W, objs[0].H)
	args := []types.Datum{types.NewBytes(payload), types.NewString(bbox)}

	vt, err := r.EvalScalar("CarType", args)
	if err != nil {
		t.Fatal(err)
	}
	if vt.Kind() != types.KindString {
		t.Errorf("CarType -> %v", vt)
	}
	if _, err := r.EvalScalar("ColorDet", args); err != nil {
		t.Fatal(err)
	}
	if _, err := r.EvalScalar("License", args); err != nil {
		t.Fatal(err)
	}
	area, err := r.EvalScalar("Area", []types.Datum{types.NewString(bbox)})
	if err != nil {
		t.Fatal(err)
	}
	if diff := area.Float() - objs[0].Area(); diff > 1e-6 || diff < -1e-6 {
		t.Errorf("area = %v, want %v", area.Float(), objs[0].Area())
	}
	flt, err := r.EvalScalar("VehicleFilter", []types.Datum{types.NewBytes(payload)})
	if err != nil || flt.Kind() != types.KindBool {
		t.Errorf("filter: %v, %v", flt, err)
	}
	// Costs: 6 + 5 + 15 + ~0 + 1 ms.
	want := 27 * time.Millisecond
	if got := clock.Total().Round(time.Millisecond); got != want {
		t.Errorf("charged %v, want ≈ %v", got, want)
	}

	// Arg validation.
	if _, err := r.EvalScalar("CarType", []types.Datum{types.NewInt(1)}); err == nil {
		t.Error("bad args should error")
	}
	if _, err := r.EvalScalar("Area", []types.Datum{types.NewString("junk")}); err == nil {
		t.Error("bad bbox should error")
	}
	if _, err := r.EvalScalar(vision.FasterRCNN50, args); err == nil {
		t.Error("detector as scalar should error")
	}
}

func TestCustomImplRegistration(t *testing.T) {
	r, _ := newRuntime(t)
	cat := catalog.New()
	r.cat = cat
	if err := cat.RegisterUDF(&catalog.UDF{
		Name: "RedSUV", Kind: catalog.KindScalarUDF, Cost: time.Millisecond,
		Impl:    "udfs/redsuv.go",
		Outputs: types.MustSchema(types.Column{Name: "redsuv_out", Kind: types.KindBool}),
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.EvalScalar("RedSUV", nil); err == nil {
		t.Error("unregistered impl should error")
	}
	r.RegisterImpl("RedSUV", func(args []types.Datum) (types.Datum, error) {
		return types.NewBool(true), nil
	})
	got, err := r.EvalScalar("RedSUV", nil)
	if err != nil || !got.Bool() {
		t.Errorf("custom impl: %v, %v", got, err)
	}
}

func TestFunCacheHitsAndCharges(t *testing.T) {
	r, clock := newRuntime(t)
	r.SetFunCache(true)
	payload := vision.MediumUADetrac.EncodeFrame(11)
	if _, err := r.EvalDetector(vision.FasterRCNN50, payload); err != nil {
		t.Fatal(err)
	}
	afterFirst := clock.Snapshot()
	out2, err := r.EvalDetector(vision.FasterRCNN50, payload)
	if err != nil {
		t.Fatal(err)
	}
	delta := clock.Since(afterFirst)
	if delta.Get(simclock.CatUDF) != 0 {
		t.Errorf("cache hit still charged UDF time: %v", delta)
	}
	if delta.Get(simclock.CatHash) == 0 {
		t.Error("cache hit must still pay hashing")
	}
	if out2 == nil || out2.Len() == 0 {
		// Frame 11 may legitimately have 0 detections; only flag nil.
		if out2 == nil {
			t.Error("cached result lost")
		}
	}
	stats := r.CounterSnapshot()
	_ = stats // reuse counters only track demanded invocations; see below

	// Scalar caching.
	objs := vision.MediumUADetrac.Objects(11)
	if len(objs) > 0 {
		bbox := vision.FormatBBox(objs[0].X, objs[0].Y, objs[0].W, objs[0].H)
		args := []types.Datum{types.NewBytes(payload), types.NewString(bbox)}
		v1, _ := r.EvalScalar("CarType", args)
		s := clock.Snapshot()
		v2, _ := r.EvalScalar("CarType", args)
		if !types.Equal(v1, v2) {
			t.Error("cache returned different value")
		}
		if clock.Since(s).Get(simclock.CatUDF) != 0 {
			t.Error("scalar cache hit charged UDF time")
		}
	}
}

func TestFunCacheHashCostScalesWithVirtualFrame(t *testing.T) {
	r, clock := newRuntime(t)
	r.SetFunCache(true)
	payload := vision.MediumUADetrac.EncodeFrame(0)
	if _, err := r.EvalDetector(vision.FasterRCNN50, payload); err != nil {
		t.Fatal(err)
	}
	hash := clock.Snapshot()[simclock.CatHash]
	// Two passes over 960×540×3 virtual bytes plus one cache insertion.
	wantSecs := 2*float64(960*540*3)/FunCacheHashThroughput + FunCacheStoreCost.Seconds()
	got := hash.Seconds()
	if got < wantSecs*0.9 || got > wantSecs*1.1 {
		t.Errorf("hash charge = %vs, want ≈ %vs", got, wantSecs)
	}
}

func TestDemandAndHitPercentage(t *testing.T) {
	r, _ := newRuntime(t)
	for i := 0; i < 10; i++ {
		r.RecordDemand("det", fmt.Sprintf("key-%d", i%5))
	}
	for i := 0; i < 4; i++ {
		r.RecordReuse("det")
	}
	stats := r.CounterSnapshot()["det"]
	if stats.Distinct != 5 || stats.Total != 10 || stats.Reused != 4 {
		t.Errorf("stats = %+v", stats)
	}
	if got := r.HitPercentage(); got != 40 {
		t.Errorf("hit%% = %v", got)
	}
	r.ResetCounters()
	if r.HitPercentage() != 0 || len(r.CounterSnapshot()) != 0 {
		t.Error("reset failed")
	}
}

func TestEvaluatedCounter(t *testing.T) {
	r, _ := newRuntime(t)
	payload := vision.MediumUADetrac.EncodeFrame(5)
	if _, err := r.EvalDetector(vision.FasterRCNN50, payload); err != nil {
		t.Fatal(err)
	}
	r.RecordDemand(vision.FasterRCNN50, "5")
	stats := r.CounterSnapshot()[canonLower(vision.FasterRCNN50)]
	if stats.Evaluated != 1 {
		t.Errorf("evaluated = %d", stats.Evaluated)
	}
}

func canonLower(s string) string {
	out := make([]byte, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		out[i] = c
	}
	return string(out)
}
