package udf

import (
	"sync"
	"time"

	"eva/internal/faults"
	"eva/internal/simclock"
)

// Domain scopes the session-local half of UDF evaluation: the virtual
// clock costs are charged to, the fault injector consulted before each
// attempt, and the circuit-breaker state with its per-model transient
// failure-rate observations. The Runtime keeps everything genuinely
// global — the catalog, the FunCache contents and singleflight claims,
// registered implementations, and the demand/reuse/eval counters
// (pure sums, so concurrent sessions cannot perturb their totals).
//
// Every concurrent session gets its own Domain so that breaker trips,
// half-open probes, and retry-adjusted planning costs in one session
// are pure functions of that session's own history — the property the
// multi-session chaos matrix byte-checks against solo runs. A system
// without sessions uses the Runtime's default domain, which behaves
// exactly as the pre-session runtime did.
//
// Lock ordering: a Domain method never holds d.mu while taking the
// Runtime's mu — shared policy values are fetched from the Runtime
// before d.mu is acquired.
type Domain struct {
	r     *Runtime
	clock *simclock.Clock

	mu       sync.Mutex
	inj      *faults.Injector    // guarded by mu
	breakers map[string]*breaker // guarded by mu
	// attempts and transient are this domain's observed invocation
	// attempts and transient-failure counts per model; they feed
	// FailureRate so planning costs reflect only this session's
	// history. guarded by mu.
	attempts  map[string]int // guarded by mu
	transient map[string]int // guarded by mu
}

// NewDomain builds a session-scoped evaluation domain charging the
// given clock, with fresh breaker state and no injector.
func (r *Runtime) NewDomain(clock *simclock.Clock) *Domain {
	return &Domain{
		r:         r,
		clock:     clock,
		breakers:  map[string]*breaker{},
		attempts:  map[string]int{},
		transient: map[string]int{},
	}
}

// DefaultDomain returns the runtime's built-in domain — the one the
// legacy Runtime entry points evaluate through.
func (r *Runtime) DefaultDomain() *Domain { return r.def }

// Runtime returns the shared runtime this domain evaluates through.
func (d *Domain) Runtime() *Runtime { return d.r }

// SetInjector installs the fault injector consulted before every model
// attempt in this domain (nil disables injection).
func (d *Domain) SetInjector(inj *faults.Injector) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.inj = inj
}

func (d *Domain) injector() *faults.Injector {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.inj
}

// reset clears the domain's breakers and failure observations.
func (d *Domain) reset() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.breakers = map[string]*breaker{}
	d.attempts = map[string]int{}
	d.transient = map[string]int{}
}

// cooldown and threshold fetch the shared breaker policy from the
// Runtime (never called with d.mu held; see the lock-ordering note).
func (r *Runtime) cooldown() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cooldownLocked()
}

func (r *Runtime) threshold() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.thresholdLocked()
}
