package udf

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"eva/internal/catalog"
	"eva/internal/simclock"
	"eva/internal/types"
	"eva/internal/vision"
	"eva/internal/xxhash"
)

// ScalarFunc is a Go implementation for a scalar UDF registered via
// CREATE UDF (the Go analogue of Listing 2's IMPL path).
type ScalarFunc func(args []types.Datum) (types.Datum, error)

// Stats summarizes a UDF's activity over a workload: the quantities
// behind Table 2 (hit percentage) and Table 3 (#DI, #TI), plus the
// failure-path counters of the resilience machinery. Evaluated counts
// only invocations that eventually succeeded; a retried transient
// blip adds to Failed and Retried without disturbing it.
type Stats struct {
	Distinct  int // #DI: distinct invocations demanded
	Total     int // #TI: total invocations demanded
	Reused    int // invocations satisfied from a view or cache
	Evaluated int // invocations successfully executed
	Failed    int // failed evaluation attempts (transient + permanent)
	Retried   int // retries performed after transient failures
}

// FunCacheHashThroughput is the simulated throughput of the xxHash
// pass over UDF arguments in the FunCache baseline (bytes/second per
// pass; the 128-bit key takes two passes). FunCacheStoreCost is the
// per-miss cost of serializing the result into the in-memory cache.
// Together they model the cumulative caching overhead the paper
// measured in its Python engine — large enough that FunCache is a net
// 0.95× *slowdown* on VBENCH-LOW (§5.2) despite a 24.7% hit rate.
// Both are calibration constants documented in DESIGN.md.
const (
	FunCacheHashThroughput = 1.0e9 // bytes per second, per pass
	FunCacheStoreCost      = 5 * time.Millisecond
)

// Runtime evaluates physical UDFs, charging profiled costs to the
// virtual clock and maintaining demand/reuse counters. With FunCache
// enabled it additionally keys every evaluation by a 128-bit xxHash of
// the raw arguments and serves repeats from an in-memory cache —
// the paper's tuple-level function-caching baseline.
type Runtime struct {
	cat   *catalog.Catalog
	clock *simclock.Clock

	mu       sync.Mutex
	funCache bool                            // guarded by mu
	scalarC  map[xxhash.Key128]types.Datum   // guarded by mu
	tableC   map[xxhash.Key128]*types.Batch  // guarded by mu
	inflight map[xxhash.Key128]chan struct{} // guarded by mu; singleflight per cache key
	impls    map[string]ScalarFunc           // guarded by mu

	demand    map[string]map[uint64]int // guarded by mu
	total     map[string]int            // guarded by mu
	reused    map[string]int            // guarded by mu
	evals     map[string]int            // guarded by mu
	failed    map[string]int            // guarded by mu
	transient map[string]int            // guarded by mu; transient subset of failed
	retried   map[string]int            // guarded by mu

	retryMax       int           // guarded by mu; 0 = costs.RetryMaxAttempts
	breakThreshold int           // guarded by mu; 0 = DefaultBreakerThreshold
	breakCooldown  time.Duration // guarded by mu; 0 = DefaultBreakerCooldown

	// def is the default evaluation domain: the breaker/injector/clock
	// scope used by every legacy Runtime entry point. Sessions create
	// their own domains via NewDomain. Immutable after NewRuntime.
	def *Domain
}

// NewRuntime returns a runtime over the catalog, charging the clock.
func NewRuntime(cat *catalog.Catalog, clock *simclock.Clock) *Runtime {
	r := &Runtime{
		cat:       cat,
		clock:     clock,
		scalarC:   map[xxhash.Key128]types.Datum{},
		tableC:    map[xxhash.Key128]*types.Batch{},
		inflight:  map[xxhash.Key128]chan struct{}{},
		impls:     map[string]ScalarFunc{},
		demand:    map[string]map[uint64]int{},
		total:     map[string]int{},
		reused:    map[string]int{},
		evals:     map[string]int{},
		failed:    map[string]int{},
		transient: map[string]int{},
		retried:   map[string]int{},
	}
	r.def = r.NewDomain(clock)
	return r
}

// SetFunCache toggles the FunCache baseline behaviour.
func (r *Runtime) SetFunCache(on bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.funCache = on
}

// RegisterImpl installs a Go implementation for a scalar UDF created
// with CREATE UDF.
func (r *Runtime) RegisterImpl(name string, fn ScalarFunc) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.impls[strings.ToLower(name)] = fn
}

// RecordDemand notes that the workload needed UDF u on the given
// invocation key — whether or not it was ultimately reused. The
// execution engine calls it once per (UDF, input tuple).
func (r *Runtime) RecordDemand(u string, key string) {
	r.recordDemand(strings.ToLower(u), xxhash.Sum64([]byte(key), 0))
}

// RecordDemandKey is RecordDemand for allocation-gated probe loops:
// lower must already be lower-case and key is the raw encoded
// invocation key, so the steady-state call neither converts nor copies.
func (r *Runtime) RecordDemandKey(lower string, key []byte) {
	r.recordDemand(lower, xxhash.Sum64(key, 0))
}

func (r *Runtime) recordDemand(u string, h uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.demand[u]
	if !ok {
		m = map[uint64]int{}
		r.demand[u] = m
	}
	m[h]++
	r.total[u]++
}

// RecordReuse notes that one demanded invocation was served from a
// materialized view.
func (r *Runtime) RecordReuse(u string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.reused[strings.ToLower(u)]++
}

// CounterSnapshot returns per-UDF stats.
func (r *Runtime) CounterSnapshot() map[string]Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := map[string]Stats{}
	for u, m := range r.demand {
		out[u] = Stats{
			Distinct:  len(m),
			Total:     r.total[u],
			Reused:    r.reused[u],
			Evaluated: r.evals[u],
			Failed:    r.failed[u],
			Retried:   r.retried[u],
		}
	}
	return out
}

// HitPercentage computes Table 2's metric over all UDFs: reused
// invocations / total invocations × 100.
func (r *Runtime) HitPercentage() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	total, reused := 0, 0
	for u := range r.demand {
		total += r.total[u]
		reused += r.reused[u]
	}
	if total == 0 {
		return 0
	}
	return 100 * float64(reused) / float64(total)
}

// ResetCounters clears demand/reuse accounting (a fresh workload),
// drops the FunCache contents, and closes the default domain's
// circuit breakers.
func (r *Runtime) ResetCounters() {
	r.mu.Lock()
	r.demand = map[string]map[uint64]int{}
	r.total = map[string]int{}
	r.reused = map[string]int{}
	r.evals = map[string]int{}
	r.failed = map[string]int{}
	r.transient = map[string]int{}
	r.retried = map[string]int{}
	r.scalarC = map[xxhash.Key128]types.Datum{}
	r.tableC = map[xxhash.Key128]*types.Batch{}
	r.mu.Unlock()
	r.def.reset()
}

// hashArgs charges the simulated FunCache hashing cost to the
// domain's clock and returns the 128-bit key. The charged bytes are
// the *virtual* argument sizes: a frame argument counts as its
// decoded RGB24 size, because that is what the paper's engine feeds
// xxHash.
func (d *Domain) hashArgs(virtualBytes int, raw []byte) xxhash.Key128 {
	perPass := time.Duration(float64(virtualBytes) / FunCacheHashThroughput * float64(time.Second))
	d.clock.Charge(simclock.CatHash, 2*perPass) // two passes: 128-bit key
	return xxhash.Sum128(raw)
}

func virtualArgBytes(args []types.Datum) int {
	total := 0
	for _, a := range args {
		if a.Kind() == types.KindBytes {
			// Header-only read: the hash-cost model needs the virtual
			// pixel volume, not the decoded object list.
			if n, ok := vision.FrameVirtualBytes(a.Bytes()); ok {
				total += n
				continue
			}
		}
		total += a.EncodedSize()
	}
	return total
}

// rawBufPool recycles the raw-argument serialization buffers of the
// FunCache key path, so a warm cache hit performs no heap allocation.
var rawBufPool = sync.Pool{New: func() any { b := make([]byte, 0, 256); return &b }}

// appendLowerName appends name lower-cased to buf without allocating.
// UDF names are ASCII identifiers by construction (the parser rejects
// anything else), so byte-wise lowering is exact.
func appendLowerName(buf []byte, name string) []byte {
	for i := 0; i < len(name); i++ {
		c := name[i]
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		buf = append(buf, c)
	}
	return buf
}

// rawArgsInto serializes the arguments prefixed by the UDF name into
// buf: the paper keeps a separate hash table per UDF, so keys must not
// collide across UDFs that share argument tuples (CarType and ColorDet
// both take (frame, bbox)).
func rawArgsInto(buf []byte, udfName string, args []types.Datum) []byte {
	buf = appendLowerName(buf, udfName)
	buf = append(buf, 0)
	for _, a := range args {
		buf = a.AppendBinary(buf)
	}
	return buf
}

// rawArgs is rawArgsInto with a fresh buffer (legacy identity path).
func rawArgs(udfName string, args []types.Datum) []byte {
	return rawArgsInto(nil, udfName, args)
}

// funCacheKey computes the FunCache key for an invocation, charging the
// simulated hash cost, using a pooled serialization buffer.
func (d *Domain) funCacheKey(udfName string, args []types.Datum) xxhash.Key128 {
	bufp := rawBufPool.Get().(*[]byte)
	raw := rawArgsInto((*bufp)[:0], udfName, args)
	key := d.hashArgs(virtualArgBytes(args), raw)
	*bufp = raw[:0]
	rawBufPool.Put(bufp)
	return key
}

// EvalDetector runs a table UDF (object detector) on one frame,
// returning detection rows in catalog.DetectorSchema. The profiled
// per-tuple cost is charged unless FunCache serves the call. Fault
// decisions are keyed by the argument-derived identity; callers with
// an executor-assigned invocation index use EvalDetectorAt.
func (r *Runtime) EvalDetector(name string, payload []byte) (*types.Batch, error) {
	return r.def.EvalDetector(name, payload)
}

// EvalDetector is the domain-scoped form of Runtime.EvalDetector.
func (d *Domain) EvalDetector(name string, payload []byte) (*types.Batch, error) {
	var id uint64
	if d.injector() != nil {
		id = EvalIdentity(name, []types.Datum{types.NewBytes(payload)})
	}
	return d.EvalDetectorAt(name, payload, id, nil, nil)
}

// EvalDetectorAt is EvalDetector with an explicit call identity for
// fault injection plus the executor's batch-level breaker snapshot and
// per-row outcome sink (both optional; see evalResilient). With
// FunCache enabled the identity is re-derived from the arguments so
// the injected schedule does not depend on which of several
// same-argument rows wins the singleflight claim.
func (r *Runtime) EvalDetectorAt(name string, payload []byte, id uint64, hs *HealthSnapshot, sink *OutcomeSink) (*types.Batch, error) {
	return r.def.EvalDetectorAt(name, payload, id, hs, sink)
}

// EvalDetectorAt is the domain-scoped form of Runtime.EvalDetectorAt.
func (d *Domain) EvalDetectorAt(name string, payload []byte, id uint64, hs *HealthSnapshot, sink *OutcomeSink) (*types.Batch, error) {
	r := d.r
	u, err := r.cat.UDF(name)
	if err != nil {
		return nil, err
	}
	if u.Kind != catalog.KindTableUDF {
		return nil, fmt.Errorf("udf: %s is not a table UDF", name)
	}
	args := []types.Datum{types.NewBytes(payload)}
	if r.isFunCache() {
		key := d.funCacheKey(u.Name, args)
		id = key.Hi ^ key.Lo // claimant-independent identity
		cached, hit, done := claimTable(r, key)
		if hit {
			r.RecordReuse(name)
			return cached, nil
		}
		defer done()
		out, err := d.runDetector(u, payload, id, hs, sink)
		if err != nil {
			return nil, err
		}
		d.clock.Charge(simclock.CatHash, FunCacheStoreCost)
		r.mu.Lock()
		r.tableC[key] = out
		r.mu.Unlock()
		return out, nil
	}
	return d.runDetector(u, payload, id, hs, sink)
}

func (d *Domain) runDetector(u *catalog.UDF, payload []byte, id uint64, hs *HealthSnapshot, sink *OutcomeSink) (*types.Batch, error) {
	var out *types.Batch
	err := d.evalResilient(u, id, hs, sink, func() error {
		dets, err := vision.Detect(u.Name, payload)
		if err != nil {
			return fmt.Errorf("udf: %s: %w", u.Name, err)
		}
		out = types.NewBatchCapacity(catalog.DetectorSchema, len(dets))
		for _, d := range dets {
			out.MustAppendRow(
				types.NewString(d.Label),
				types.NewString(d.BBox()),
				types.NewFloat(d.Score),
				types.NewFloat(d.Area()),
			)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// EvalScalar runs a scalar UDF over one input tuple's argument values.
// Fault decisions are keyed by the argument-derived identity; callers
// with an executor-assigned invocation index use EvalScalarAt.
func (r *Runtime) EvalScalar(name string, args []types.Datum) (types.Datum, error) {
	return r.def.EvalScalar(name, args)
}

// EvalScalar is the domain-scoped form of Runtime.EvalScalar.
func (d *Domain) EvalScalar(name string, args []types.Datum) (types.Datum, error) {
	var id uint64
	if d.injector() != nil {
		id = EvalIdentity(name, args)
	}
	return d.EvalScalarAt(name, args, id, nil, nil)
}

// EvalScalarAt is EvalScalar with an explicit call identity for fault
// injection plus the executor's batch-level breaker snapshot and
// per-row outcome sink (both optional; see evalResilient). With
// FunCache enabled the identity is re-derived from the arguments so
// the injected schedule does not depend on which of several
// same-argument rows wins the singleflight claim.
func (r *Runtime) EvalScalarAt(name string, args []types.Datum, id uint64, hs *HealthSnapshot, sink *OutcomeSink) (types.Datum, error) {
	return r.def.EvalScalarAt(name, args, id, hs, sink)
}

// EvalScalarAt is the domain-scoped form of Runtime.EvalScalarAt.
func (d *Domain) EvalScalarAt(name string, args []types.Datum, id uint64, hs *HealthSnapshot, sink *OutcomeSink) (types.Datum, error) {
	r := d.r
	u, err := r.cat.UDF(name)
	if err != nil {
		return types.Null, err
	}
	if u.Kind != catalog.KindScalarUDF {
		return types.Null, fmt.Errorf("udf: %s is not a scalar UDF", name)
	}
	if r.isFunCache() && u.Expensive {
		key := d.funCacheKey(u.Name, args)
		id = key.Hi ^ key.Lo // claimant-independent identity
		cached, hit, done := claimScalar(r, key)
		if hit {
			r.RecordReuse(name)
			return cached, nil
		}
		defer done()
		out, err := d.runScalar(u, args, id, hs, sink)
		if err != nil {
			return types.Null, err
		}
		d.clock.Charge(simclock.CatHash, FunCacheStoreCost)
		r.mu.Lock()
		r.scalarC[key] = out
		r.mu.Unlock()
		return out, nil
	}
	return d.runScalar(u, args, id, hs, sink)
}

func (d *Domain) runScalar(u *catalog.UDF, args []types.Datum, id uint64, hs *HealthSnapshot, sink *OutcomeSink) (types.Datum, error) {
	r := d.r
	var out types.Datum
	err := d.evalResilient(u, id, hs, sink, func() error {
		var err error
		switch {
		case strings.HasPrefix(u.Impl, "builtin:"):
			out, err = r.runBuiltin(u, args)
		default:
			r.mu.Lock()
			fn, ok := r.impls[strings.ToLower(u.Name)]
			r.mu.Unlock()
			if !ok {
				return fmt.Errorf("udf: no implementation registered for %s (impl %q)", u.Name, u.Impl)
			}
			out, err = fn(args)
			if err != nil {
				err = fmt.Errorf("udf: %s: %w", u.Name, err)
			}
		}
		return err
	})
	if err != nil {
		return types.Null, err
	}
	return out, nil
}

func (r *Runtime) runBuiltin(u *catalog.UDF, args []types.Datum) (types.Datum, error) {
	argErr := func(want string) error {
		return fmt.Errorf("udf: %s expects (%s), got %d args", u.Name, want, len(args))
	}
	switch strings.ToLower(u.Name) {
	case "cartype", "colordet", "license":
		if len(args) != 2 || args[0].Kind() != types.KindBytes || args[1].Kind() != types.KindString {
			return types.Null, argErr("frame, bbox")
		}
		var (
			v   string
			err error
		)
		switch strings.ToLower(u.Name) {
		case "cartype":
			v, err = vision.ClassifyType(args[0].Bytes(), args[1].Str())
		case "colordet":
			v, err = vision.ClassifyColor(args[0].Bytes(), args[1].Str())
		default:
			v, err = vision.ReadLicense(args[0].Bytes(), args[1].Str())
		}
		if err != nil {
			return types.Null, fmt.Errorf("udf: %s: %w", u.Name, err)
		}
		return types.NewString(v), nil
	case "vehiclefilter":
		if len(args) != 1 || args[0].Kind() != types.KindBytes {
			return types.Null, argErr("frame")
		}
		ok, err := vision.FilterVehicles(args[0].Bytes())
		if err != nil {
			return types.Null, fmt.Errorf("udf: %s: %w", u.Name, err)
		}
		return types.NewBool(ok), nil
	case "area":
		if len(args) != 1 || args[0].Kind() != types.KindString {
			return types.Null, argErr("bbox")
		}
		_, _, w, h, err := vision.ParseBBox(args[0].Str())
		if err != nil {
			return types.Null, fmt.Errorf("udf: area: %w", err)
		}
		return types.NewFloat(w * h), nil
	default:
		return types.Null, fmt.Errorf("udf: unknown builtin %s", u.Name)
	}
}

func (r *Runtime) isFunCache() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.funCache
}

// FunCacheEnabled reports whether the FunCache baseline is active.
// The executor no longer pins itself serial while it is: per-key
// singleflight (claimFlight) makes the eval/store counts and charged
// miss costs order-independent, and fault identities are derived from
// the argument hash so the injected schedule does not depend on which
// row wins a claim.
func (r *Runtime) FunCacheEnabled() bool { return r.isFunCache() }

// claimScalar / claimTable implement per-key singleflight for the
// FunCache: they return (cached, true, nil) on a hit, or (zero, false,
// done) after claiming the key for evaluation — the caller must store
// the result in the cache (on success) and then invoke done exactly
// once. Concurrent callers of the same key block until the claimant
// finishes, then re-check the cache, so each distinct key is evaluated
// — and its miss costs charged — at most once per outcome even under
// concurrent eval (a failed claimant releases the key, letting one
// waiter retry). They are concrete (not one generic function taking a
// map accessor closure) for two reasons: the cache maps are replaced
// wholesale by ResetCounters so each loop iteration must re-read the
// live field under mu, and the warm-hit path must not allocate — a
// per-call closure capturing the runtime would.
func claimScalar(r *Runtime, key xxhash.Key128) (types.Datum, bool, func()) {
	for {
		r.mu.Lock()
		if v, ok := r.scalarC[key]; ok {
			r.mu.Unlock()
			return v, true, nil
		}
		if done, claimed := r.claimLocked(key); claimed {
			return types.Null, false, done
		}
	}
}

func claimTable(r *Runtime, key xxhash.Key128) (*types.Batch, bool, func()) {
	for {
		r.mu.Lock()
		if v, ok := r.tableC[key]; ok {
			r.mu.Unlock()
			return v, true, nil
		}
		if done, claimed := r.claimLocked(key); claimed {
			return nil, false, done
		}
	}
}

// claimLocked is the shared miss path of claimScalar/claimTable: called
// with mu held, it either claims the key (returning its release func)
// or blocks on the current claimant and reports false so the caller
// re-checks the cache. It always leaves mu unlocked.
func (r *Runtime) claimLocked(key xxhash.Key128) (func(), bool) {
	if ch, busy := r.inflight[key]; busy {
		r.mu.Unlock()
		<-ch
		return nil, false
	}
	done := make(chan struct{})
	r.inflight[key] = done
	r.mu.Unlock()
	return func() {
		r.mu.Lock()
		delete(r.inflight, key)
		r.mu.Unlock()
		close(done)
	}, true
}

func (r *Runtime) countEval(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.evals[strings.ToLower(name)]++
}
