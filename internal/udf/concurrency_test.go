package udf

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"eva/internal/catalog"
	"eva/internal/faults"
	"eva/internal/simclock"
	"eva/internal/types"
	"eva/internal/vision"
)

// Concurrency stress suite for the Runtime (run under -race by `make
// check`): the parallel executor calls EvalScalar/EvalDetector,
// RecordDemand and RecordReuse from many goroutines at once, so every
// counter must stay exact and the FunCache singleflight must evaluate
// each distinct key exactly once no matter how calls interleave.

// registerCounting installs an Expensive scalar UDF whose Go impl
// counts its invocations atomically.
func registerCounting(t *testing.T, r *Runtime, cat *catalog.Catalog, invocations *atomic.Int64) {
	t.Helper()
	err := cat.RegisterUDF(&catalog.UDF{
		Name: "CountEcho", Kind: catalog.KindScalarUDF, LogicalType: "CountEcho",
		Accuracy: vision.AccuracyHigh, Cost: time.Millisecond,
		Inputs:  []string{"x"},
		Outputs: types.MustSchema(types.Column{Name: "v", Kind: types.KindInt}),
		Impl:    "go", Expensive: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	r.RegisterImpl("CountEcho", func(args []types.Datum) (types.Datum, error) {
		invocations.Add(1)
		return args[0], nil
	})
}

// TestFunCacheConcurrentSingleflight hammers one Expensive scalar UDF
// with 8 goroutines over 16 distinct keys. The singleflight inflight
// map must collapse every concurrent miss for the same key into one
// evaluation, making Evaluated/Reused — and hence HitPercentage —
// deterministic: exactly `keys` evaluations, everything else a reuse.
func TestFunCacheConcurrentSingleflight(t *testing.T) {
	cat := catalog.New()
	rt := NewRuntime(cat, &simclock.Clock{})
	rt.SetFunCache(true)
	var invocations atomic.Int64
	registerCounting(t, rt, cat, &invocations)

	const (
		workers = 8
		rounds  = 25
		keys    = 16
	)
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				for k := 0; k < keys; k++ {
					// Rotate the key order per worker so misses collide.
					key := (k + w) % keys
					rt.RecordDemand("CountEcho", fmt.Sprintf("k%d", key))
					v, err := rt.EvalScalar("CountEcho", []types.Datum{types.NewInt(int64(key))})
					if err != nil {
						errs[w] = err
						return
					}
					if v.Int() != int64(key) {
						errs[w] = fmt.Errorf("key %d returned %v", key, v)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	if got := invocations.Load(); got != keys {
		t.Errorf("impl invoked %d times, want exactly %d (singleflight)", got, keys)
	}
	stats := rt.CounterSnapshot()["countecho"]
	total := workers * rounds * keys
	if stats.Total != total || stats.Distinct != keys {
		t.Errorf("demand = %+v, want Total %d Distinct %d", stats, total, keys)
	}
	if stats.Evaluated != keys {
		t.Errorf("Evaluated = %d, want %d", stats.Evaluated, keys)
	}
	if stats.Reused != total-keys {
		t.Errorf("Reused = %d, want %d", stats.Reused, total-keys)
	}
	want := 100 * float64(total-keys) / float64(total)
	if got := rt.HitPercentage(); got != want {
		t.Errorf("hit%% = %v, want %v", got, want)
	}
}

// TestFunCacheConcurrentDetector does the same for table UDFs: the
// detector cache shares the singleflight, so each distinct frame is
// detected once and all goroutines read the identical cached batch.
func TestFunCacheConcurrentDetector(t *testing.T) {
	rt := NewRuntime(catalog.New(), &simclock.Clock{})
	rt.SetFunCache(true)

	const (
		workers = 8
		rounds  = 6
		frames  = 8
	)
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				for f := 0; f < frames; f++ {
					id := int64((f + w) % frames)
					rt.RecordDemand(vision.FasterRCNN50, fmt.Sprintf("f%d", id))
					payload := vision.MediumUADetrac.EncodeFrame(id)
					out, err := rt.EvalDetector(vision.FasterRCNN50, payload)
					if err != nil {
						errs[w] = err
						return
					}
					if out == nil {
						errs[w] = fmt.Errorf("frame %d: nil batch", id)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	stats := rt.CounterSnapshot()[strings.ToLower(vision.FasterRCNN50)]
	if stats.Evaluated != frames {
		t.Errorf("Evaluated = %d, want %d (one per distinct frame)", stats.Evaluated, frames)
	}
	total := workers * rounds * frames
	if stats.Reused != total-frames {
		t.Errorf("Reused = %d, want %d", stats.Reused, total-frames)
	}
}

// TestBreakerConcurrentTrip drives a permanently failing model from 8
// goroutines: the breaker must trip without races, every error must be
// clean, and once open the model reports unhealthy to the optimizer.
func TestBreakerConcurrentTrip(t *testing.T) {
	rt := NewRuntime(catalog.New(), &simclock.Clock{})
	inj := faults.New(7)
	inj.Rule(faults.SiteUDF(vision.YoloTiny), faults.Rule{Kind: faults.Permanent, Prob: 1})
	rt.SetInjector(inj)

	const workers = 8
	var wg sync.WaitGroup
	var failures atomic.Int64
	payload := vision.MediumUADetrac.EncodeFrame(1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if _, err := rt.EvalDetector(vision.YoloTiny, payload); err != nil {
					failures.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if got := failures.Load(); got != workers*10 {
		t.Errorf("failures = %d, want %d (permanent fault)", got, workers*10)
	}
	if rt.ModelHealthy(vision.YoloTiny) {
		t.Error("breaker still closed after concurrent permanent failures")
	}
}

// TestCountersConcurrentMixed interleaves demand, reuse, snapshot and
// rate queries — the full counter API the engine and experiments use —
// purely to give the race detector surface area.
func TestCountersConcurrentMixed(t *testing.T) {
	rt := NewRuntime(catalog.New(), &simclock.Clock{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				switch (w + i) % 4 {
				case 0:
					rt.RecordDemand("cartype", fmt.Sprintf("k%d", i%10))
				case 1:
					rt.RecordReuse("cartype")
				case 2:
					_ = rt.CounterSnapshot()
				default:
					_ = rt.HitPercentage()
				}
			}
		}(w)
	}
	wg.Wait()
}
