package udf

import (
	"errors"
	"strings"
	"testing"
	"time"

	"eva/internal/costs"
	"eva/internal/faults"
	"eva/internal/simclock"
	"eva/internal/vision"
)

// TestRetryPaths is the table-driven failure-path suite: transient
// faults are retried with backoff charged to the virtual clock,
// permanent faults surface with the UDF name wrapped, and the
// Evaluated / Failed / Retried counters stay consistent across failed
// attempts.
func TestRetryPaths(t *testing.T) {
	payload := vision.MediumUADetrac.EncodeFrame(42)
	site := faults.SiteUDF(vision.FasterRCNN50)
	key := strings.ToLower(vision.FasterRCNN50)

	cases := []struct {
		name      string
		rule      faults.Rule
		calls     int
		wantErr   bool
		wantEval  int
		wantFail  int
		wantRetry int
		// wantBackoff is the exact CatRetry charge.
		wantBackoff time.Duration
	}{
		{
			name:     "no faults",
			calls:    1,
			wantEval: 1,
		},
		{
			name:        "one transient blip, retried to success",
			rule:        faults.Rule{Kind: faults.Transient, At: []int{1}},
			calls:       1,
			wantEval:    1,
			wantFail:    1,
			wantRetry:   1,
			wantBackoff: costs.RetryBackoff(2),
		},
		{
			name:        "two transient blips in one invocation",
			rule:        faults.Rule{Kind: faults.Transient, At: []int{1, 2}},
			calls:       1,
			wantEval:    1,
			wantFail:    2,
			wantRetry:   2,
			wantBackoff: costs.RetryBackoff(2) + costs.RetryBackoff(3),
		},
		{
			name:        "transient faults exhaust all attempts",
			rule:        faults.Rule{Kind: faults.Transient, Prob: 1},
			calls:       1,
			wantErr:     true,
			wantEval:    0,
			wantFail:    costs.RetryMaxAttempts,
			wantRetry:   costs.RetryMaxAttempts - 1,
			wantBackoff: costs.RetryBackoff(2) + costs.RetryBackoff(3) + costs.RetryBackoff(4),
		},
		{
			name:     "permanent fault fails immediately, no retry",
			rule:     faults.Rule{Kind: faults.Permanent, At: []int{1}},
			calls:    1,
			wantErr:  true,
			wantFail: 1,
		},
		{
			// At matches the retry attempt, so Limit bounds the blast
			// radius across invocations: the first invocation's attempt
			// 1 faults (and retries clean), the second runs untouched.
			name:      "limit confines fault to first invocation",
			rule:      faults.Rule{Kind: faults.Transient, At: []int{1}, Limit: 1},
			calls:     2,
			wantEval:  2,
			wantFail:  1,
			wantRetry: 1,
			// One backoff; the second invocation never failed.
			wantBackoff: costs.RetryBackoff(2),
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r, clock := newRuntime(t)
			inj := faults.New(1)
			if tc.rule.Kind != 0 || tc.rule.Prob > 0 || len(tc.rule.At) > 0 {
				inj.Rule(site, tc.rule)
			}
			r.SetInjector(inj)

			var lastErr error
			for i := 0; i < tc.calls; i++ {
				r.RecordDemand(vision.FasterRCNN50, "42")
				_, lastErr = r.EvalDetector(vision.FasterRCNN50, payload)
			}
			if tc.wantErr != (lastErr != nil) {
				t.Fatalf("err = %v, wantErr = %v", lastErr, tc.wantErr)
			}
			if tc.wantErr && !strings.Contains(lastErr.Error(), vision.FasterRCNN50) {
				t.Errorf("error does not name the UDF: %v", lastErr)
			}
			st := r.CounterSnapshot()[key]
			if st.Evaluated != tc.wantEval || st.Failed != tc.wantFail || st.Retried != tc.wantRetry {
				t.Errorf("stats = %+v, want eval=%d fail=%d retry=%d",
					st, tc.wantEval, tc.wantFail, tc.wantRetry)
			}
			if got := clock.Snapshot()[simclock.CatRetry]; got != tc.wantBackoff {
				t.Errorf("backoff charged = %v, want %v", got, tc.wantBackoff)
			}
			// Every attempt (failed or not) pays the profiled model cost.
			p, _ := vision.ProfileFor(vision.FasterRCNN50)
			attempts := tc.wantEval + tc.wantFail
			if got := clock.Snapshot()[simclock.CatUDF]; got != time.Duration(attempts)*p.Cost {
				t.Errorf("UDF charge = %v over %d attempts (cost %v)", got, attempts, p.Cost)
			}
		})
	}
}

func TestScalarPermanentErrorWrapsName(t *testing.T) {
	r, _ := newRuntime(t)
	inj := faults.New(1)
	inj.Rule(faults.SiteUDF("CarType"), faults.Rule{Kind: faults.Permanent, At: []int{1}})
	r.SetInjector(inj)
	_, err := r.EvalScalar("CarType", nil)
	if err == nil {
		t.Fatal("want error")
	}
	if !strings.Contains(err.Error(), "CarType") {
		t.Errorf("error does not name the UDF: %v", err)
	}
	if f, ok := faults.AsFault(err); !ok || f.Kind != faults.Permanent {
		t.Errorf("injected fault not preserved in chain: %v", err)
	}
}

func TestBreakerTripsAndRecovers(t *testing.T) {
	r, clock := newRuntime(t)
	payload := vision.MediumUADetrac.EncodeFrame(7)
	inj := faults.New(1)
	// Permanent faults on every attempt until we clear the rules by
	// installing a fresh injector later.
	inj.Rule(faults.SiteUDF(vision.YoloTiny), faults.Rule{Kind: faults.Permanent, Prob: 1, Limit: DefaultBreakerThreshold})
	r.SetInjector(inj)

	for i := 0; i < DefaultBreakerThreshold; i++ {
		if _, err := r.EvalDetector(vision.YoloTiny, payload); err == nil {
			t.Fatal("injected permanent fault did not surface")
		}
	}
	if r.ModelHealthy(vision.YoloTiny) {
		t.Fatal("breaker should be open after consecutive failures")
	}
	// While open, evaluations fail fast with ErrModelUnavailable.
	_, err := r.EvalDetector(vision.YoloTiny, payload)
	if !errors.Is(err, ErrModelUnavailable) {
		t.Fatalf("open breaker error = %v", err)
	}
	// Other models are unaffected.
	if !r.ModelHealthy(vision.FasterRCNN50) {
		t.Error("healthy model reported broken")
	}
	// Advance the virtual clock past the cooldown: a probe is allowed
	// and, with the fault rule exhausted, closes the breaker.
	clock.Charge(simclock.CatOther, DefaultBreakerCooldown)
	if !r.ModelHealthy(vision.YoloTiny) {
		t.Fatal("cooldown elapsed; model should accept a probe")
	}
	if _, err := r.EvalDetector(vision.YoloTiny, payload); err != nil {
		t.Fatalf("probe failed: %v", err)
	}
	if !r.ModelHealthy(vision.YoloTiny) {
		t.Error("successful probe should close the breaker")
	}
}

func TestBreakerReopensOnFailedProbe(t *testing.T) {
	r, clock := newRuntime(t)
	r.SetRetryPolicy(1, 2, 10*time.Second)
	payload := vision.MediumUADetrac.EncodeFrame(7)
	inj := faults.New(1)
	inj.Rule(faults.SiteUDF(vision.YoloTiny), faults.Rule{Kind: faults.Permanent, Prob: 1})
	r.SetInjector(inj)
	for i := 0; i < 2; i++ {
		if _, err := r.EvalDetector(vision.YoloTiny, payload); err == nil {
			t.Fatal("want failure")
		}
	}
	if r.ModelHealthy(vision.YoloTiny) {
		t.Fatal("breaker should be open")
	}
	clock.Charge(simclock.CatOther, 10*time.Second)
	// Probe runs (and fails): breaker re-arms with a fresh cooldown.
	if _, err := r.EvalDetector(vision.YoloTiny, payload); errors.Is(err, ErrModelUnavailable) {
		t.Fatal("probe should have been allowed through")
	}
	if r.ModelHealthy(vision.YoloTiny) {
		t.Error("failed probe should re-open the breaker")
	}
}

func TestFailureRateFeedsCostModel(t *testing.T) {
	r, _ := newRuntime(t)
	payload := vision.MediumUADetrac.EncodeFrame(3)
	if r.FailureRate(vision.FasterRCNN50) != 0 {
		t.Fatal("fresh model should report rate 0")
	}
	inj := faults.New(1)
	inj.Rule(faults.SiteUDF(vision.FasterRCNN50), faults.Rule{Kind: faults.Transient, At: []int{1}})
	r.SetInjector(inj)
	if _, err := r.EvalDetector(vision.FasterRCNN50, payload); err != nil {
		t.Fatal(err)
	}
	// 1 failed attempt, 1 success → rate 0.5.
	if got := r.FailureRate(vision.FasterRCNN50); got != 0.5 {
		t.Errorf("failure rate = %v", got)
	}
	base := 100 * time.Millisecond
	adj := costs.RetryAdjustedCost(base, 0.5)
	if adj <= base {
		t.Errorf("adjusted cost %v should exceed base %v", adj, base)
	}
	if costs.RetryAdjustedCost(base, 0) != base {
		t.Error("zero failure rate must not perturb the cost model")
	}
}
