//go:build race

package types

// raceEnabled lets allocation-counting tests skip under the race
// detector, whose instrumentation adds allocations of its own.
const raceEnabled = true
