//go:build evadebug

package types

// poisonDefault enables use-after-Put poisoning in debug builds
// (`go test -tags evadebug ./...`); see BatchPool.
const poisonDefault = true
