package types

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
)

// BatchPool recycles Batches through per-schema-width sync.Pool
// classes so steady-state batch traffic on the execution hot path
// allocates nothing (DESIGN.md §13). Two batches with different
// schemas but equal width share a class: a recycled batch's column
// slices are reused after Get rebinds the schema.
//
// Ownership is linear: exactly one owner may hold a pooled batch at a
// time, and only the owner may Put it. Putting a batch twice, putting
// a batch from another pool, or putting a batch that never came from a
// pool panics with a *PoolError — these are programming errors in the
// operator lifecycle, not runtime conditions to recover from.
//
// Use-after-Put is invisible in release builds (the stale reader sees
// whatever rows the next owner wrote). The poison mode — default under
// `-tags evadebug`, or enabled via the EVA_POOL_POISON environment
// variable or SetPoison — scribbles every datum slot with an
// invalid-kind sentinel on Put, so a stale typed accessor panics
// immediately instead of silently reading recycled data.
type BatchPool struct {
	mu      sync.Mutex
	classes map[int]*sync.Pool // guarded by mu; schema width → batch class

	poison atomic.Bool

	hits   atomic.Int64 // Gets served by a recycled batch
	misses atomic.Int64 // Gets that allocated a fresh batch
	puts   atomic.Int64 // batches returned to the pool
}

// PoolError is the typed panic value raised on batch-pool misuse
// (double Put, foreign Put, Put of a never-pooled batch).
type PoolError struct {
	Op     string // the misused operation ("Put")
	Reason string // what went wrong
}

// Error implements error.
func (e *PoolError) Error() string {
	return fmt.Sprintf("types: BatchPool.%s: %s", e.Op, e.Reason)
}

// poisonDatum is the sentinel scribbled over recycled slots: its kind
// is outside the Kind enum, so every typed accessor's mustBe check
// panics on a use-after-Put read.
var poisonDatum = Datum{kind: Kind(0x7F)}

// NewBatchPool returns an empty pool. Poison mode starts enabled when
// built with `-tags evadebug` or when EVA_POOL_POISON is set in the
// environment.
func NewBatchPool() *BatchPool {
	p := &BatchPool{classes: map[int]*sync.Pool{}}
	if poisonDefault || os.Getenv("EVA_POOL_POISON") != "" {
		p.poison.Store(true)
	}
	return p
}

// SetPoison toggles use-after-Put poisoning at runtime (tests).
func (p *BatchPool) SetPoison(on bool) { p.poison.Store(on) }

// class returns the sync.Pool for one schema width.
func (p *BatchPool) class(width int) *sync.Pool {
	p.mu.Lock()
	defer p.mu.Unlock()
	c, ok := p.classes[width]
	if !ok {
		c = &sync.Pool{}
		p.classes[width] = c
	}
	return c
}

// Get returns an empty batch for the schema, recycling a previously
// Put batch of the same width when one is available (its column
// capacity carries over — the zero-allocation steady state) and
// allocating a fresh one otherwise.
func (p *BatchPool) Get(schema Schema) *Batch {
	c := p.class(len(schema))
	if v := c.Get(); v != nil {
		b := v.(*Batch)
		b.schema = schema
		for i := range b.cols {
			b.cols[i] = b.cols[i][:0]
		}
		b.n = 0
		b.free = false
		p.hits.Add(1)
		return b
	}
	p.misses.Add(1)
	b := NewBatch(schema)
	b.pool = p
	return b
}

// Put returns a batch to the pool. The caller must be the batch's sole
// owner and must not touch it afterwards. Panics with *PoolError when
// the batch is nil, was never obtained from a pool, belongs to a
// different pool, or was already Put (double-Put).
func (p *BatchPool) Put(b *Batch) {
	switch {
	case b == nil:
		panic(&PoolError{Op: "Put", Reason: "nil batch"})
	case b.pool == nil:
		panic(&PoolError{Op: "Put", Reason: "batch was not obtained from a pool"})
	case b.pool != p:
		panic(&PoolError{Op: "Put", Reason: "batch belongs to a different pool"})
	case b.free:
		panic(&PoolError{Op: "Put", Reason: "double Put of the same batch"})
	}
	if p.poison.Load() {
		for c := range b.cols {
			col := b.cols[c]
			for i := range col {
				col[i] = poisonDatum
			}
		}
	}
	for c := range b.cols {
		b.cols[c] = b.cols[c][:0]
	}
	b.n = 0
	b.schema = nil
	b.free = true
	p.puts.Add(1)
	p.class(len(b.cols)).Put(b)
}

// PoolStats is a snapshot of pool traffic. In steady state Hits ≈ Puts
// and Misses stays flat: every batch the pipeline needs comes back
// from a previous batch's Put.
type PoolStats struct {
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	Puts   int64 `json:"puts"`
}

// Stats snapshots the pool counters.
func (p *BatchPool) Stats() PoolStats {
	return PoolStats{
		Hits:   p.hits.Load(),
		Misses: p.misses.Load(),
		Puts:   p.puts.Load(),
	}
}
