// Package types defines the value model shared by every layer of EVA:
// scalar datums, column schemas, and columnar batches. The execution
// engine, storage engine, and expression evaluator all traffic in these
// types, so the package has no dependencies on the rest of the system.
package types

import (
	"encoding/binary"
	"fmt"
	"math"
	"strconv"
)

// Kind enumerates the scalar types supported by EVA-QL.
type Kind uint8

// The supported scalar kinds. KindNull is the type of the NULL datum and
// also the marker the conditional Apply operator uses to detect rows that
// are missing from a materialized view.
const (
	KindNull Kind = iota
	KindBool
	KindInt
	KindFloat
	KindString
	KindBytes
)

// String returns the EVA-QL name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindBool:
		return "BOOLEAN"
	case KindInt:
		return "INTEGER"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "TEXT"
	case KindBytes:
		return "BYTES"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Numeric reports whether values of this kind order as numbers.
func (k Kind) Numeric() bool { return k == KindInt || k == KindFloat }

// Datum is a single immutable scalar value. The zero value is NULL.
//
// Datum is a small value type (no pointers for the numeric kinds) so that
// batches of datums stay cache-friendly; strings and byte slices share
// their backing storage and must not be mutated after construction.
type Datum struct {
	kind Kind
	i    int64
	f    float64
	s    string
	b    []byte
}

// Null is the NULL datum.
var Null = Datum{}

// NewBool returns a boolean datum.
func NewBool(v bool) Datum {
	var i int64
	if v {
		i = 1
	}
	return Datum{kind: KindBool, i: i}
}

// NewInt returns an integer datum.
func NewInt(v int64) Datum { return Datum{kind: KindInt, i: v} }

// NewFloat returns a float datum.
func NewFloat(v float64) Datum { return Datum{kind: KindFloat, f: v} }

// NewString returns a string datum.
func NewString(v string) Datum { return Datum{kind: KindString, s: v} }

// NewBytes returns a bytes datum. The slice is retained, not copied.
func NewBytes(v []byte) Datum { return Datum{kind: KindBytes, b: v} }

// Kind returns the datum's kind.
func (d Datum) Kind() Kind { return d.kind }

// IsNull reports whether the datum is NULL.
func (d Datum) IsNull() bool { return d.kind == KindNull }

// Bool returns the boolean value. It panics unless Kind is KindBool.
func (d Datum) Bool() bool {
	d.mustBe(KindBool)
	return d.i != 0
}

// Int returns the integer value. It panics unless Kind is KindInt.
func (d Datum) Int() int64 {
	d.mustBe(KindInt)
	return d.i
}

// Float returns the float value of a numeric datum (KindInt or KindFloat).
func (d Datum) Float() float64 {
	switch d.kind {
	case KindFloat:
		return d.f
	case KindInt:
		return float64(d.i)
	}
	panic(fmt.Sprintf("types: Float on %s datum", d.kind))
}

// Str returns the string value. It panics unless Kind is KindString.
func (d Datum) Str() string {
	d.mustBe(KindString)
	return d.s
}

// Bytes returns the byte-slice value. It panics unless Kind is KindBytes.
func (d Datum) Bytes() []byte {
	d.mustBe(KindBytes)
	return d.b
}

func (d Datum) mustBe(k Kind) {
	if d.kind != k {
		panic(fmt.Sprintf("types: %s datum accessed as %s", d.kind, k))
	}
}

// Comparable reports whether two datums can be compared with Compare.
// NULL compares with everything (ordering first); numerics compare with
// each other; otherwise kinds must match.
func Comparable(a, b Datum) bool {
	if a.kind == KindNull || b.kind == KindNull {
		return true
	}
	if a.kind.Numeric() && b.kind.Numeric() {
		return true
	}
	return a.kind == b.kind
}

// Compare orders two datums: -1, 0, or +1. NULL sorts before everything.
// Numeric kinds compare by value (an int compares equal to the same float).
// Compare panics on incomparable kinds; use Comparable to pre-check.
func Compare(a, b Datum) int {
	switch {
	case a.kind == KindNull && b.kind == KindNull:
		return 0
	case a.kind == KindNull:
		return -1
	case b.kind == KindNull:
		return 1
	}
	if a.kind.Numeric() && b.kind.Numeric() {
		af, bf := a.Float(), b.Float()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		default:
			return 0
		}
	}
	if a.kind != b.kind {
		panic(fmt.Sprintf("types: comparing %s with %s", a.kind, b.kind))
	}
	switch a.kind {
	case KindBool:
		switch {
		case a.i == b.i:
			return 0
		case a.i < b.i:
			return -1
		default:
			return 1
		}
	case KindString:
		switch {
		case a.s == b.s:
			return 0
		case a.s < b.s:
			return -1
		default:
			return 1
		}
	case KindBytes:
		return compareBytes(a.b, b.b)
	}
	panic(fmt.Sprintf("types: comparing %s datums", a.kind))
}

func compareBytes(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(a) == len(b):
		return 0
	case len(a) < len(b):
		return -1
	default:
		return 1
	}
}

// Equal reports value equality. NULL equals only NULL.
func Equal(a, b Datum) bool {
	if !Comparable(a, b) {
		return false
	}
	return Compare(a, b) == 0
}

// String renders the datum for display and for symbolic term names.
func (d Datum) String() string {
	switch d.kind {
	case KindNull:
		return "NULL"
	case KindBool:
		if d.i != 0 {
			return "TRUE"
		}
		return "FALSE"
	case KindInt:
		return strconv.FormatInt(d.i, 10)
	case KindFloat:
		return strconv.FormatFloat(d.f, 'g', -1, 64)
	case KindString:
		return "'" + d.s + "'"
	case KindBytes:
		return fmt.Sprintf("x'%x'", d.b)
	default:
		return fmt.Sprintf("Datum(%d)", uint8(d.kind))
	}
}

// AppendBinary appends a canonical binary encoding of the datum to dst.
// The encoding is self-delimiting and kind-prefixed, so it is suitable
// both for hashing (FunCache keys) and for the storage engine.
func (d Datum) AppendBinary(dst []byte) []byte {
	dst = append(dst, byte(d.kind))
	switch d.kind {
	case KindNull:
	case KindBool, KindInt:
		dst = binary.LittleEndian.AppendUint64(dst, uint64(d.i))
	case KindFloat:
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(d.f))
	case KindString:
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(d.s)))
		dst = append(dst, d.s...)
	case KindBytes:
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(d.b)))
		dst = append(dst, d.b...)
	}
	return dst
}

// DecodeDatum decodes a datum produced by AppendBinary and returns it
// with the number of bytes consumed.
func DecodeDatum(src []byte) (Datum, int, error) {
	if len(src) == 0 {
		return Null, 0, fmt.Errorf("types: decode datum: empty input")
	}
	k := Kind(src[0])
	rest := src[1:]
	switch k {
	case KindNull:
		return Null, 1, nil
	case KindBool, KindInt:
		if len(rest) < 8 {
			return Null, 0, fmt.Errorf("types: decode %s: short input", k)
		}
		v := int64(binary.LittleEndian.Uint64(rest))
		return Datum{kind: k, i: v}, 9, nil
	case KindFloat:
		if len(rest) < 8 {
			return Null, 0, fmt.Errorf("types: decode %s: short input", k)
		}
		v := math.Float64frombits(binary.LittleEndian.Uint64(rest))
		return NewFloat(v), 9, nil
	case KindString, KindBytes:
		if len(rest) < 4 {
			return Null, 0, fmt.Errorf("types: decode %s: short input", k)
		}
		n := int(binary.LittleEndian.Uint32(rest))
		if len(rest) < 4+n {
			return Null, 0, fmt.Errorf("types: decode %s: want %d bytes, have %d", k, n, len(rest)-4)
		}
		body := rest[4 : 4+n]
		if k == KindString {
			return NewString(string(body)), 5 + n, nil
		}
		cp := make([]byte, n)
		copy(cp, body)
		return NewBytes(cp), 5 + n, nil
	default:
		return Null, 0, fmt.Errorf("types: decode datum: unknown kind %d", src[0])
	}
}

// EncodedSize returns the number of bytes AppendBinary will produce.
// The storage engine uses it to account for the materialized-view
// footprint without re-encoding.
func (d Datum) EncodedSize() int {
	switch d.kind {
	case KindNull:
		return 1
	case KindBool, KindInt, KindFloat:
		return 9
	case KindString:
		return 5 + len(d.s)
	case KindBytes:
		return 5 + len(d.b)
	default:
		return 1
	}
}
