package types

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

var poolSchema = MustSchema(
	Column{Name: "id", Kind: KindInt},
	Column{Name: "tag", Kind: KindString},
)

// mustPoolPanic runs fn and asserts it panics with a *PoolError whose
// reason contains want.
func mustPoolPanic(t *testing.T, want string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected a *PoolError panic containing %q, got none", want)
		}
		pe, ok := r.(*PoolError)
		if !ok {
			t.Fatalf("panic value is %T (%v), want *PoolError", r, r)
		}
		var asErr *PoolError
		if !errors.As(error(pe), &asErr) {
			t.Fatalf("*PoolError does not satisfy errors.As")
		}
		if got := pe.Error(); !contains(got, want) {
			t.Fatalf("panic %q does not mention %q", got, want)
		}
	}()
	fn()
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestPoolRecyclesCapacity(t *testing.T) {
	p := NewBatchPool()
	b := p.Get(poolSchema)
	for i := 0; i < 100; i++ {
		b.MustAppendRow(NewInt(int64(i)), NewString("x"))
	}
	p.Put(b)
	got := p.Get(poolSchema)
	if got.Len() != 0 {
		t.Fatalf("recycled batch has %d rows, want 0", got.Len())
	}
	if !got.Pooled() {
		t.Fatal("recycled batch lost its pool ownership")
	}
	// Under -race, sync.Pool drops items adversarially, so identity
	// and hit-count assertions only hold in regular builds.
	if !raceEnabled {
		if got != b {
			t.Fatalf("expected the recycled batch back from the pool")
		}
		st := p.Stats()
		if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 {
			t.Fatalf("stats = %+v, want hits=1 misses=1 puts=1", st)
		}
	}
}

func TestPoolSharesWidthClasses(t *testing.T) {
	p := NewBatchPool()
	other := MustSchema(
		Column{Name: "a", Kind: KindFloat},
		Column{Name: "b", Kind: KindBool},
	)
	b := p.Get(poolSchema)
	b.MustAppendRow(NewInt(1), NewString("x"))
	p.Put(b)
	// Same width, different schema: the class is shared and the batch
	// is rebound to the new schema.
	got := p.Get(other)
	if !raceEnabled && got != b {
		t.Fatal("equal-width schemas should share a pool class")
	}
	if !got.Schema().Equal(other) {
		t.Fatalf("recycled batch kept schema %s, want %s", got.Schema(), other)
	}
	if err := got.AppendRow(NewFloat(1.5), NewBool(true)); err != nil {
		t.Fatalf("append after rebind: %v", err)
	}
}

func TestPoolDoublePutPanicsTyped(t *testing.T) {
	p := NewBatchPool()
	b := p.Get(poolSchema)
	p.Put(b)
	mustPoolPanic(t, "double Put", func() { p.Put(b) })
}

func TestPoolForeignPutPanicsTyped(t *testing.T) {
	p := NewBatchPool()
	mustPoolPanic(t, "not obtained from a pool", func() { p.Put(NewBatch(poolSchema)) })
	mustPoolPanic(t, "nil batch", func() { p.Put(nil) })

	q := NewBatchPool()
	b := q.Get(poolSchema)
	mustPoolPanic(t, "different pool", func() { p.Put(b) })
}

func TestPoolPoisonCatchesUseAfterPut(t *testing.T) {
	p := NewBatchPool()
	p.SetPoison(true)
	b := p.Get(poolSchema)
	b.MustAppendRow(NewInt(7), NewString("x"))
	stale := b.Col(0) // alias retained across Put — the bug poison exists to catch
	p.Put(b)
	defer func() {
		if recover() == nil {
			t.Fatal("reading a poisoned datum did not panic")
		}
	}()
	_ = stale[0].Int()
}

func TestPoolPoisonOffKeepsStaleReads(t *testing.T) {
	p := NewBatchPool()
	p.SetPoison(false)
	b := p.Get(poolSchema)
	b.MustAppendRow(NewInt(7), NewString("x"))
	stale := b.Col(0)
	p.Put(b)
	// Release behavior: the stale read is undefined but must not panic.
	if stale[0].Kind() == Kind(0x7F) {
		t.Fatal("poison written with poisoning disabled")
	}
}

// TestPoolRaceStress hammers one pool from 8 goroutines; run under
// -race (make race / make check) it proves Get/Put need no external
// locking and the counters stay consistent.
func TestPoolRaceStress(t *testing.T) {
	p := NewBatchPool()
	p.SetPoison(true)
	const goroutines = 8
	const rounds = 500
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				b := p.Get(poolSchema)
				n := (g+i)%17 + 1
				for r := 0; r < n; r++ {
					b.MustAppendRow(NewInt(int64(r)), NewString("s"))
				}
				if b.Len() != n {
					errs <- fmt.Errorf("goroutine %d round %d: len %d, want %d", g, i, b.Len(), n)
					return
				}
				for r := 0; r < n; r++ {
					if b.At(r, 0).Int() != int64(r) {
						errs <- fmt.Errorf("goroutine %d round %d: row %d corrupted", g, i, r)
						return
					}
				}
				p.Put(b)
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := p.Stats()
	gets := st.Hits + st.Misses
	if gets != goroutines*rounds {
		t.Fatalf("gets = %d, want %d", gets, goroutines*rounds)
	}
	if st.Puts != goroutines*rounds {
		t.Fatalf("puts = %d, want %d", st.Puts, goroutines*rounds)
	}
}

// TestPoolSteadyStateZeroAlloc: a warm Get/append/Put cycle must not
// allocate at all — the property the exec pipeline builds on.
func TestPoolSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counting is unreliable under the race detector")
	}
	p := NewBatchPool()
	// Warm the class and the column capacity.
	b := p.Get(poolSchema)
	for i := 0; i < 64; i++ {
		b.MustAppendRow(NewInt(int64(i)), NewString("w"))
	}
	p.Put(b)
	avg := testing.AllocsPerRun(200, func() {
		b := p.Get(poolSchema)
		for i := 0; i < 64; i++ {
			b.MustAppendRow(NewInt(int64(i)), NewString("w"))
		}
		p.Put(b)
	})
	if avg != 0 {
		t.Fatalf("warm Get/append/Put cycle allocates %.2f times, want 0", avg)
	}
}

func TestFilterInPlace(t *testing.T) {
	b := NewBatch(poolSchema)
	for i := 0; i < 6; i++ {
		b.MustAppendRow(NewInt(int64(i)), NewString("x"))
	}
	b.FilterInPlace([]bool{true, false, true, false, false, true})
	if b.Len() != 3 {
		t.Fatalf("len = %d, want 3", b.Len())
	}
	for i, want := range []int64{0, 2, 5} {
		if got := b.At(i, 0).Int(); got != want {
			t.Fatalf("row %d = %d, want %d", i, got, want)
		}
	}
}

func TestTruncate(t *testing.T) {
	b := NewBatch(poolSchema)
	for i := 0; i < 5; i++ {
		b.MustAppendRow(NewInt(int64(i)), NewString("x"))
	}
	b.Truncate(10) // no-op
	if b.Len() != 5 {
		t.Fatalf("truncate(10) changed len to %d", b.Len())
	}
	b.Truncate(2)
	if b.Len() != 2 || b.At(1, 0).Int() != 1 {
		t.Fatalf("truncate(2) produced len=%d", b.Len())
	}
}

func TestAppendRange(t *testing.T) {
	src := NewBatch(poolSchema)
	for i := 0; i < 8; i++ {
		src.MustAppendRow(NewInt(int64(i)), NewString("s"))
	}
	dst := NewBatch(poolSchema)
	if err := dst.AppendRange(src, 2, 5); err != nil {
		t.Fatal(err)
	}
	if dst.Len() != 3 || dst.At(0, 0).Int() != 2 || dst.At(2, 0).Int() != 4 {
		t.Fatalf("append range copied wrong rows: %s", dst)
	}
	if err := dst.AppendRange(src, 5, 100); err == nil {
		t.Fatal("out-of-range AppendRange did not error")
	}
	other := NewBatch(MustSchema(Column{Name: "z", Kind: KindInt}))
	if err := other.AppendRange(src, 0, 1); err == nil {
		t.Fatal("schema-mismatched AppendRange did not error")
	}
}

func TestAppendRowTo(t *testing.T) {
	b := NewBatch(poolSchema)
	b.MustAppendRow(NewInt(42), NewString("v"))
	buf := make([]Datum, 0, 4)
	buf = b.AppendRowTo(buf, 0)
	if len(buf) != 2 || buf[0].Int() != 42 || buf[1].Str() != "v" {
		t.Fatalf("AppendRowTo = %v", buf)
	}
}
