package types

import (
	"strings"
	"testing"
)

func testSchema(t *testing.T) Schema {
	t.Helper()
	s, err := NewSchema(Column{"id", KindInt}, Column{"label", KindString}, Column{"area", KindFloat})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSchemaBasics(t *testing.T) {
	s := testSchema(t)
	if got := s.IndexOf("LABEL"); got != 1 {
		t.Errorf("IndexOf(LABEL) = %d, want 1 (case-insensitive)", got)
	}
	if s.IndexOf("missing") != -1 {
		t.Error("IndexOf(missing) should be -1")
	}
	if !s.Has("id") || s.Has("nope") {
		t.Error("Has misbehaves")
	}
	if s.KindOf("area") != KindFloat || s.KindOf("nope") != KindNull {
		t.Error("KindOf misbehaves")
	}
	if got := s.String(); got != "(id INTEGER, label TEXT, area FLOAT)" {
		t.Errorf("String() = %q", got)
	}
}

func TestSchemaDuplicate(t *testing.T) {
	if _, err := NewSchema(Column{"a", KindInt}, Column{"A", KindFloat}); err == nil {
		t.Fatal("duplicate column names (case-insensitive) should error")
	}
}

func TestSchemaConcatDisambiguates(t *testing.T) {
	s := MustSchema(Column{"id", KindInt})
	out := s.Concat(MustSchema(Column{"id", KindInt}, Column{"bbox", KindString}))
	if len(out) != 3 {
		t.Fatalf("concat width = %d, want 3", len(out))
	}
	if out[1].Name != "id_r" {
		t.Errorf("duplicate column renamed to %q, want id_r", out[1].Name)
	}
}

func TestSchemaProject(t *testing.T) {
	s := testSchema(t)
	p, err := s.Project([]string{"area", "id"})
	if err != nil {
		t.Fatal(err)
	}
	if p[0].Name != "area" || p[1].Name != "id" {
		t.Errorf("project order wrong: %s", p)
	}
	if _, err := s.Project([]string{"ghost"}); err == nil {
		t.Error("project unknown column should error")
	}
}

func TestSchemaEqualClone(t *testing.T) {
	s := testSchema(t)
	c := s.Clone()
	if !s.Equal(c) {
		t.Error("clone not equal")
	}
	c[0].Name = "other"
	if s.Equal(c) {
		t.Error("equal after mutation")
	}
	if s.Equal(s[:2]) {
		t.Error("prefix should not be equal")
	}
	names := s.Names()
	if len(names) != 3 || names[2] != "area" {
		t.Errorf("Names = %v", names)
	}
}

func TestBatchAppendAndAccess(t *testing.T) {
	b := NewBatch(testSchema(t))
	if err := b.AppendRow(NewInt(1), NewString("car"), NewFloat(0.3)); err != nil {
		t.Fatal(err)
	}
	if err := b.AppendRow(NewInt(2), Null, NewFloat(0.1)); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 2 {
		t.Fatalf("Len = %d, want 2", b.Len())
	}
	if got := b.At(0, 1).Str(); got != "car" {
		t.Errorf("At(0,1) = %q", got)
	}
	if !b.At(1, 1).IsNull() {
		t.Error("null not preserved")
	}
	row := b.Row(1)
	if row[0].Int() != 2 {
		t.Errorf("Row(1)[0] = %v", row[0])
	}
	if col := b.ColByName("area"); len(col) != 2 || col[0].Float() != 0.3 {
		t.Errorf("ColByName(area) = %v", col)
	}
	if b.ColByName("ghost") != nil {
		t.Error("ColByName(ghost) should be nil")
	}
}

func TestBatchAppendErrors(t *testing.T) {
	b := NewBatch(testSchema(t))
	if err := b.AppendRow(NewInt(1)); err == nil {
		t.Error("short row should error")
	}
	if err := b.AppendRow(NewString("x"), NewString("car"), NewFloat(0)); err == nil {
		t.Error("kind mismatch should error")
	}
	// Numeric coercion is allowed.
	if err := b.AppendRow(NewFloat(1), NewString("car"), NewInt(0)); err != nil {
		t.Errorf("numeric coercion rejected: %v", err)
	}
}

func TestBatchFilterProjectSlice(t *testing.T) {
	b := NewBatchCapacity(testSchema(t), 4)
	for i := 0; i < 4; i++ {
		b.MustAppendRow(NewInt(int64(i)), NewString("car"), NewFloat(float64(i)/10))
	}
	f := b.Filter([]bool{true, false, true, false})
	if f.Len() != 2 || f.At(1, 0).Int() != 2 {
		t.Errorf("filter wrong: %v", f)
	}
	p, err := b.Project([]string{"area"})
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 4 || len(p.Schema()) != 1 {
		t.Errorf("project wrong: %v", p)
	}
	s := b.Slice(1, 3)
	if s.Len() != 2 || s.At(0, 0).Int() != 1 {
		t.Errorf("slice wrong: %v", s)
	}
}

func TestBatchAppendBatch(t *testing.T) {
	a := NewBatch(testSchema(t))
	a.MustAppendRow(NewInt(1), NewString("car"), NewFloat(0.5))
	b := NewBatch(testSchema(t))
	b.MustAppendRow(NewInt(2), NewString("bus"), NewFloat(0.7))
	if err := a.AppendBatch(b); err != nil {
		t.Fatal(err)
	}
	if a.Len() != 2 || a.At(1, 1).Str() != "bus" {
		t.Errorf("append batch wrong: %v", a)
	}
	other := NewBatch(MustSchema(Column{"x", KindInt}))
	if err := a.AppendBatch(other); err == nil {
		t.Error("schema mismatch should error")
	}
}

func TestBatchEncodedSizeAndString(t *testing.T) {
	b := NewBatch(testSchema(t))
	b.MustAppendRow(NewInt(1), NewString("car"), NewFloat(0.5))
	want := NewInt(1).EncodedSize() + NewString("car").EncodedSize() + NewFloat(0.5).EncodedSize()
	if got := b.EncodedSize(); got != want {
		t.Errorf("EncodedSize = %d, want %d", got, want)
	}
	for i := 0; i < 15; i++ {
		b.MustAppendRow(NewInt(int64(i)), NewString("car"), NewFloat(0.5))
	}
	s := b.String()
	if !strings.Contains(s, "more") {
		t.Errorf("String should elide rows: %q", s)
	}
}
