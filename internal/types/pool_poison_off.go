//go:build !evadebug

package types

// poisonDefault leaves use-after-Put poisoning off in release builds;
// enable it per-process with EVA_POOL_POISON or per-pool with
// SetPoison. See BatchPool.
const poisonDefault = false
