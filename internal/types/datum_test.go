package types

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDatumKinds(t *testing.T) {
	tests := []struct {
		d    Datum
		kind Kind
		str  string
	}{
		{Null, KindNull, "NULL"},
		{NewBool(true), KindBool, "TRUE"},
		{NewBool(false), KindBool, "FALSE"},
		{NewInt(-42), KindInt, "-42"},
		{NewFloat(0.25), KindFloat, "0.25"},
		{NewString("car"), KindString, "'car'"},
		{NewBytes([]byte{0xde, 0xad}), KindBytes, "x'dead'"},
	}
	for _, tt := range tests {
		if got := tt.d.Kind(); got != tt.kind {
			t.Errorf("%v: kind = %v, want %v", tt.d, got, tt.kind)
		}
		if got := tt.d.String(); got != tt.str {
			t.Errorf("kind %v: String() = %q, want %q", tt.kind, got, tt.str)
		}
	}
}

func TestDatumAccessors(t *testing.T) {
	if !NewBool(true).Bool() {
		t.Error("Bool(true) lost value")
	}
	if got := NewInt(7).Int(); got != 7 {
		t.Errorf("Int = %d, want 7", got)
	}
	if got := NewInt(7).Float(); got != 7.0 {
		t.Errorf("Int->Float = %v, want 7.0", got)
	}
	if got := NewFloat(2.5).Float(); got != 2.5 {
		t.Errorf("Float = %v, want 2.5", got)
	}
	if got := NewString("x").Str(); got != "x" {
		t.Errorf("Str = %q, want x", got)
	}
	if got := NewBytes([]byte("ab")).Bytes(); string(got) != "ab" {
		t.Errorf("Bytes = %q, want ab", got)
	}
}

func TestDatumAccessorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Int() on string datum did not panic")
		}
	}()
	_ = NewString("x").Int()
}

func TestCompare(t *testing.T) {
	tests := []struct {
		a, b Datum
		want int
	}{
		{Null, Null, 0},
		{Null, NewInt(0), -1},
		{NewInt(0), Null, 1},
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(3), NewInt(2), 1},
		{NewInt(2), NewFloat(2.0), 0},
		{NewFloat(1.5), NewInt(2), -1},
		{NewString("a"), NewString("b"), -1},
		{NewString("b"), NewString("b"), 0},
		{NewBool(false), NewBool(true), -1},
		{NewBytes([]byte{1}), NewBytes([]byte{1, 0}), -1},
		{NewBytes([]byte{2}), NewBytes([]byte{1, 9}), 1},
		{NewBytes([]byte{5, 5}), NewBytes([]byte{5, 5}), 0},
	}
	for _, tt := range tests {
		if got := Compare(tt.a, tt.b); got != tt.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestCompareIncomparablePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Compare(int, string) did not panic")
		}
	}()
	Compare(NewInt(1), NewString("x"))
}

func TestComparable(t *testing.T) {
	if !Comparable(NewInt(1), NewFloat(2)) {
		t.Error("int/float should be comparable")
	}
	if !Comparable(Null, NewString("x")) {
		t.Error("null should compare with anything")
	}
	if Comparable(NewInt(1), NewString("x")) {
		t.Error("int/string should not be comparable")
	}
}

func TestEqual(t *testing.T) {
	if !Equal(NewInt(3), NewFloat(3)) {
		t.Error("3 != 3.0")
	}
	if Equal(NewInt(3), NewString("3")) {
		t.Error("3 == '3'")
	}
	if Equal(Null, NewInt(0)) {
		t.Error("NULL == 0")
	}
	if !Equal(Null, Null) {
		t.Error("NULL != NULL")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	datums := []Datum{
		Null,
		NewBool(true),
		NewBool(false),
		NewInt(0),
		NewInt(-1 << 62),
		NewFloat(math.Pi),
		NewFloat(math.Inf(1)),
		NewString(""),
		NewString("night-street"),
		NewBytes(nil),
		NewBytes([]byte{0, 1, 2, 255}),
	}
	var buf []byte
	for _, d := range datums {
		buf = d.AppendBinary(buf)
	}
	off := 0
	for i, want := range datums {
		got, n, err := DecodeDatum(buf[off:])
		if err != nil {
			t.Fatalf("decode datum %d: %v", i, err)
		}
		if !Equal(got, want) || got.Kind() != want.Kind() {
			t.Errorf("datum %d: round trip %v -> %v", i, want, got)
		}
		if n != want.EncodedSize() {
			t.Errorf("datum %d: consumed %d bytes, EncodedSize says %d", i, n, want.EncodedSize())
		}
		off += n
	}
	if off != len(buf) {
		t.Errorf("trailing bytes after decode: %d", len(buf)-off)
	}
}

func TestBinaryRoundTripQuick(t *testing.T) {
	f := func(i int64, fl float64, s string, b []byte) bool {
		for _, d := range []Datum{NewInt(i), NewFloat(fl), NewString(s), NewBytes(b)} {
			if math.IsNaN(fl) && d.Kind() == KindFloat {
				continue // NaN != NaN by design
			}
			enc := d.AppendBinary(nil)
			got, n, err := DecodeDatum(enc)
			if err != nil || n != len(enc) || !Equal(got, d) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := [][]byte{
		nil,
		{byte(KindInt)},                // truncated payload
		{byte(KindString), 5, 0, 0, 0}, // length beyond input
		{byte(KindString), 2, 0, 0, 0, 'a'},
		{200}, // unknown kind
	}
	for i, c := range cases {
		if _, _, err := DecodeDatum(c); err == nil {
			t.Errorf("case %d: expected decode error", i)
		}
	}
}

func TestKindString(t *testing.T) {
	if KindFloat.String() != "FLOAT" || KindBytes.String() != "BYTES" {
		t.Error("kind names changed")
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind should still render")
	}
}
