package types

import (
	"fmt"
	"strings"
)

// Batch is a columnar collection of rows sharing one schema. It is the
// unit of data flow between execution operators and the unit of storage
// in segments and materialized views.
//
// The zero Batch is empty and unusable; construct with NewBatch.
//
// A batch obtained from a BatchPool additionally carries its owning
// pool and a free flag; see pool.go for the recycling lifecycle and
// its ownership rules.
type Batch struct {
	schema Schema
	cols   [][]Datum
	n      int

	pool *BatchPool // owning pool; nil for ordinary batches
	free bool       // true between Put and the next Get
}

// NewBatch returns an empty batch with the given schema.
func NewBatch(schema Schema) *Batch {
	cols := make([][]Datum, len(schema))
	return &Batch{schema: schema, cols: cols}
}

// NewBatchCapacity returns an empty batch with per-column capacity hint.
func NewBatchCapacity(schema Schema, capacity int) *Batch {
	b := NewBatch(schema)
	for i := range b.cols {
		b.cols[i] = make([]Datum, 0, capacity)
	}
	return b
}

// Schema returns the batch schema. Callers must not mutate it.
func (b *Batch) Schema() Schema { return b.schema }

// Len returns the number of rows.
func (b *Batch) Len() int { return b.n }

// Pooled reports whether the batch came from a BatchPool and so may
// (and should) be returned with Put once its owner is done with it.
func (b *Batch) Pooled() bool { return b != nil && b.pool != nil }

// AppendRow appends one row. The number of datums must match the schema
// width; kinds are checked loosely (NULL is accepted in any column).
func (b *Batch) AppendRow(row ...Datum) error {
	if len(row) != len(b.schema) {
		return fmt.Errorf("types: append row of width %d to batch of width %d", len(row), len(b.schema))
	}
	for i, d := range row {
		if !d.IsNull() && b.schema[i].Kind != d.Kind() && !(b.schema[i].Kind.Numeric() && d.Kind().Numeric()) {
			return fmt.Errorf("types: column %q expects %s, got %s", b.schema[i].Name, b.schema[i].Kind, d.Kind())
		}
		b.cols[i] = append(b.cols[i], d)
	}
	b.n++
	return nil
}

// MustAppendRow is AppendRow that panics on error; for generators whose
// schemas are statically correct.
func (b *Batch) MustAppendRow(row ...Datum) {
	if err := b.AppendRow(row...); err != nil {
		panic(err)
	}
}

// At returns the datum at (row, col).
func (b *Batch) At(row, col int) Datum { return b.cols[col][row] }

// Col returns the backing slice for a column. Callers must treat it as
// read-only.
func (b *Batch) Col(col int) []Datum { return b.cols[col] }

// ColByName returns the backing slice for the named column, or nil.
func (b *Batch) ColByName(name string) []Datum {
	i := b.schema.IndexOf(name)
	if i < 0 {
		return nil
	}
	return b.cols[i]
}

// Row materializes row i as a datum slice (a copy).
func (b *Batch) Row(i int) []Datum {
	out := make([]Datum, len(b.cols))
	for c := range b.cols {
		out[c] = b.cols[c][i]
	}
	return out
}

// AppendBatch appends all rows of other, whose schema must be equal.
func (b *Batch) AppendBatch(other *Batch) error {
	if !b.schema.Equal(other.schema) {
		return fmt.Errorf("types: append batch %s to batch %s", other.schema, b.schema)
	}
	for c := range b.cols {
		b.cols[c] = append(b.cols[c], other.cols[c]...)
	}
	b.n += other.n
	return nil
}

// Reset truncates the batch to zero rows, keeping column capacity.
func (b *Batch) Reset() {
	for c := range b.cols {
		b.cols[c] = b.cols[c][:0]
	}
	b.n = 0
}

// AppendRange appends rows [lo, hi) of other, whose schema must be
// equal. It copies datum values without materializing an intermediate
// slice, so it is the allocation-free way to move a row range between
// batches (Slice shares storage instead — never safe onto or out of a
// pooled batch).
func (b *Batch) AppendRange(other *Batch, lo, hi int) error {
	if !b.schema.Equal(other.schema) {
		return fmt.Errorf("types: append range from batch %s to batch %s", other.schema, b.schema)
	}
	if lo < 0 || hi > other.n || lo > hi {
		return fmt.Errorf("types: append range [%d,%d) of a %d-row batch", lo, hi, other.n)
	}
	for c := range b.cols {
		b.cols[c] = append(b.cols[c], other.cols[c][lo:hi]...)
	}
	b.n += hi - lo
	return nil
}

// FilterInPlace compacts the batch to the rows where keep[i] is true,
// reusing the column storage — the pooled-lifecycle counterpart of
// Filter. The caller must own the batch exclusively.
func (b *Batch) FilterInPlace(keep []bool) {
	w := 0
	for r := 0; r < b.n; r++ {
		if !keep[r] {
			continue
		}
		if w != r {
			for c := range b.cols {
				b.cols[c][w] = b.cols[c][r]
			}
		}
		w++
	}
	for c := range b.cols {
		b.cols[c] = b.cols[c][:w]
	}
	b.n = w
}

// Truncate keeps only the first n rows, in place — the pooled-
// lifecycle counterpart of Slice(0, n), preserving the batch's
// ownership instead of aliasing its storage. No-op when n >= Len.
func (b *Batch) Truncate(n int) {
	if n >= b.n {
		return
	}
	if n < 0 {
		n = 0
	}
	for c := range b.cols {
		b.cols[c] = b.cols[c][:n]
	}
	b.n = n
}

// AppendRowTo appends row i's datums to dst and returns it — the
// scratch-buffer form of Row for allocation-gated loops.
func (b *Batch) AppendRowTo(dst []Datum, i int) []Datum {
	for c := range b.cols {
		dst = append(dst, b.cols[c][i])
	}
	return dst
}

// Filter returns a new batch containing the rows where keep[i] is true.
func (b *Batch) Filter(keep []bool) *Batch {
	out := NewBatch(b.schema)
	for c := range b.cols {
		col := make([]Datum, 0, b.n)
		for r, k := range keep {
			if k {
				col = append(col, b.cols[c][r])
			}
		}
		out.cols[c] = col
	}
	for _, k := range keep {
		if k {
			out.n++
		}
	}
	return out
}

// Project returns a new batch with only the named columns, sharing the
// underlying column storage.
func (b *Batch) Project(names []string) (*Batch, error) {
	schema, err := b.schema.Project(names)
	if err != nil {
		return nil, err
	}
	out := &Batch{schema: schema, cols: make([][]Datum, len(names)), n: b.n}
	for i, name := range names {
		out.cols[i] = b.cols[b.schema.IndexOf(name)]
	}
	return out, nil
}

// Slice returns a view of rows [lo, hi), sharing column storage.
func (b *Batch) Slice(lo, hi int) *Batch {
	out := &Batch{schema: b.schema, cols: make([][]Datum, len(b.cols)), n: hi - lo}
	for c := range b.cols {
		out.cols[c] = b.cols[c][lo:hi]
	}
	return out
}

// EncodedSize returns the total canonical encoded size of all datums,
// used for storage-footprint accounting.
func (b *Batch) EncodedSize() int {
	total := 0
	for _, col := range b.cols {
		for _, d := range col {
			total += d.EncodedSize()
		}
	}
	return total
}

// String renders up to 10 rows for debugging.
func (b *Batch) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Batch%s %d rows", b.schema, b.n)
	limit := b.n
	if limit > 10 {
		limit = 10
	}
	for r := 0; r < limit; r++ {
		sb.WriteString("\n  ")
		for c := range b.cols {
			if c > 0 {
				sb.WriteString(" | ")
			}
			sb.WriteString(b.cols[c][r].String())
		}
	}
	if b.n > limit {
		fmt.Fprintf(&sb, "\n  ... (%d more)", b.n-limit)
	}
	return sb.String()
}
