package types

import (
	"bytes"
	"testing"
)

// FuzzDecodeDatum throws arbitrary bytes at the canonical datum
// decoder. The invariants: no panic on any input, a successful decode
// consumes 1..len(src) bytes, and re-encoding the decoded datum
// reproduces exactly the bytes consumed (the encoding is canonical).
func FuzzDecodeDatum(f *testing.F) {
	for _, d := range []Datum{
		Null,
		NewBool(true),
		NewInt(-42),
		NewFloat(3.5),
		NewString("car"),
		NewBytes([]byte{0, 1, 2}),
	} {
		f.Add(d.AppendBinary(nil))
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0x00})

	f.Fuzz(func(t *testing.T, src []byte) {
		d, n, err := DecodeDatum(src)
		if err != nil {
			return
		}
		if n <= 0 || n > len(src) {
			t.Fatalf("decode consumed %d of %d bytes", n, len(src))
		}
		if got := d.EncodedSize(); got != n {
			t.Fatalf("EncodedSize = %d, decode consumed %d", got, n)
		}
		re := d.AppendBinary(nil)
		if !bytes.Equal(re, src[:n]) {
			t.Fatalf("round-trip mismatch: %x -> %v -> %x", src[:n], d, re)
		}
	})
}
