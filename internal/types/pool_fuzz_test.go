package types

import (
	"fmt"
	"testing"
)

// FuzzBatchPoolLifecycle drives random interleavings of the pooled
// batch lifecycle — Get, AppendRow, FilterInPlace, Truncate,
// AppendRange, Row extraction, Put — against a non-pooled oracle
// batch. After every operation the pooled batch must match the oracle
// exactly, and rows copied out of earlier generations must survive
// later generations untouched: with poisoning enabled, any operation
// that aliased recycled storage instead of copying it corrupts (and
// panics on) those retained rows.
func FuzzBatchPoolLifecycle(f *testing.F) {
	f.Add([]byte{0, 0, 0, 1, 3, 0, 0, 2, 5})
	f.Add([]byte{0, 0, 4, 3, 0, 4, 3})
	f.Add([]byte{0, 1, 0, 2, 9, 0, 3, 0, 1, 0})
	f.Add([]byte{0, 0, 0, 0, 5, 2, 1, 3, 4, 0, 3})

	schema := MustSchema(
		Column{Name: "id", Kind: KindInt},
		Column{Name: "tag", Kind: KindString},
	)

	f.Fuzz(func(t *testing.T, ops []byte) {
		pool := NewBatchPool()
		pool.SetPoison(true)

		cur := pool.Get(schema)
		oracle := NewBatch(schema)
		seq := int64(0)

		type retainedRow struct {
			row  []Datum
			want string
		}
		var retained []retainedRow

		render := func(row []Datum) string {
			return fmt.Sprintf("%s|%s", row[0], row[1])
		}
		check := func(op string) {
			t.Helper()
			if cur.Len() != oracle.Len() {
				t.Fatalf("after %s: pooled len %d, oracle len %d", op, cur.Len(), oracle.Len())
			}
			for r := 0; r < cur.Len(); r++ {
				for c := 0; c < 2; c++ {
					if cur.At(r, c).String() != oracle.At(r, c).String() {
						t.Fatalf("after %s: (%d,%d) pooled %s, oracle %s",
							op, r, c, cur.At(r, c), oracle.At(r, c))
					}
				}
			}
		}

		for i := 0; i < len(ops); i++ {
			switch ops[i] % 6 {
			case 0: // append one row to both
				seq++
				id, tag := NewInt(seq), NewString(fmt.Sprintf("t%d", seq))
				cur.MustAppendRow(id, tag)
				oracle.MustAppendRow(id, tag)
				check("append")
			case 1: // filter in place by a deterministic keep mask
				keep := make([]bool, cur.Len())
				for r := range keep {
					keep[r] = (r+int(ops[i]))%3 != 0
				}
				cur.FilterInPlace(keep)
				oracle = oracle.Filter(keep)
				check("filter")
			case 2: // truncate
				n := 0
				if i+1 < len(ops) {
					i++
					if cur.Len() > 0 {
						n = int(ops[i]) % (cur.Len() + 1)
					}
				}
				cur.Truncate(n)
				keep := make([]bool, oracle.Len())
				for r := 0; r < n && r < len(keep); r++ {
					keep[r] = true
				}
				oracle = oracle.Filter(keep)
				check("truncate")
			case 3: // Put + Get: a new generation over recycled storage
				pool.Put(cur)
				cur = pool.Get(schema)
				oracle = NewBatch(schema)
				check("recycle")
			case 4: // retain a copied row across generations
				if cur.Len() > 0 {
					r := int(ops[i]) % cur.Len()
					row := cur.Row(r)
					retained = append(retained, retainedRow{row: row, want: render(row)})
				}
			case 5: // append a range of the oracle into the pooled batch
				if oracle.Len() > 0 {
					lo := int(ops[i]) % oracle.Len()
					hi := oracle.Len()
					if err := cur.AppendRange(oracle, lo, hi); err != nil {
						t.Fatalf("append range: %v", err)
					}
					next := oracle.Filter(allTrue(oracle.Len()))
					if err := next.AppendRange(oracle, lo, hi); err != nil {
						t.Fatalf("oracle append range: %v", err)
					}
					oracle = next
					check("appendrange")
				}
			}
		}

		// No retained row may alias recycled storage: every copy made
		// before a Put must still render exactly as it did then, even
		// though the pool has poisoned and reused the batch since.
		for i, rr := range retained {
			if got := render(rr.row); got != rr.want {
				t.Fatalf("retained row %d changed across generations: got %s, want %s", i, got, rr.want)
			}
		}
	})
}

func allTrue(n int) []bool {
	keep := make([]bool, n)
	for i := range keep {
		keep[i] = true
	}
	return keep
}
