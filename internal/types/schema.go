package types

import (
	"fmt"
	"strings"
)

// Column describes a single named, typed column.
type Column struct {
	Name string
	Kind Kind
}

// Schema is an ordered list of columns. Column names are matched
// case-insensitively, following EVA-QL identifier semantics.
type Schema []Column

// NewSchema builds a schema from alternating name/kind pairs declared
// as Column literals; it validates that names are unique.
func NewSchema(cols ...Column) (Schema, error) {
	seen := make(map[string]struct{}, len(cols))
	for _, c := range cols {
		key := strings.ToLower(c.Name)
		if _, dup := seen[key]; dup {
			return nil, fmt.Errorf("types: duplicate column %q", c.Name)
		}
		seen[key] = struct{}{}
	}
	return Schema(cols), nil
}

// MustSchema is NewSchema that panics on error; for statically known schemas.
func MustSchema(cols ...Column) Schema {
	s, err := NewSchema(cols...)
	if err != nil {
		panic(err)
	}
	return s
}

// IndexOf returns the position of the named column, or -1.
func (s Schema) IndexOf(name string) int {
	for i, c := range s {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// Has reports whether the schema contains the named column.
func (s Schema) Has(name string) bool { return s.IndexOf(name) >= 0 }

// KindOf returns the kind of the named column; KindNull if absent.
func (s Schema) KindOf(name string) Kind {
	if i := s.IndexOf(name); i >= 0 {
		return s[i].Kind
	}
	return KindNull
}

// Concat returns a new schema with the columns of both schemas. Duplicate
// names from other are suffixed with an apostrophe-free "_r" disambiguator,
// mirroring how the Apply operator joins its input with UDF outputs.
func (s Schema) Concat(other Schema) Schema {
	out := make(Schema, 0, len(s)+len(other))
	out = append(out, s...)
	for _, c := range other {
		name := c.Name
		for out.Has(name) {
			name += "_r"
		}
		out = append(out, Column{Name: name, Kind: c.Kind})
	}
	return out
}

// Project returns the schema restricted to the given column names,
// in the given order.
func (s Schema) Project(names []string) (Schema, error) {
	out := make(Schema, 0, len(names))
	for _, n := range names {
		i := s.IndexOf(n)
		if i < 0 {
			return nil, fmt.Errorf("types: project: unknown column %q in schema %s", n, s)
		}
		out = append(out, s[i])
	}
	return out, nil
}

// Equal reports whether two schemas have the same columns in order.
func (s Schema) Equal(other Schema) bool {
	if len(s) != len(other) {
		return false
	}
	for i := range s {
		if !strings.EqualFold(s[i].Name, other[i].Name) || s[i].Kind != other[i].Kind {
			return false
		}
	}
	return true
}

// Clone returns a copy of the schema.
func (s Schema) Clone() Schema {
	out := make(Schema, len(s))
	copy(out, s)
	return out
}

// Names returns the column names in order.
func (s Schema) Names() []string {
	out := make([]string, len(s))
	for i, c := range s {
		out[i] = c.Name
	}
	return out
}

// String renders the schema as "(a INTEGER, b TEXT)".
func (s Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, c := range s {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.Name)
		b.WriteByte(' ')
		b.WriteString(c.Kind.String())
	}
	b.WriteByte(')')
	return b.String()
}
