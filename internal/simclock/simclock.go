// Package simclock provides the virtual cost clock EVA's execution
// engine charges profiled latencies to. The paper's evaluation is
// dominated by profiled model inference times (99 ms/tuple for
// FasterRCNN-ResNet50 and so on); charging those constants to a
// virtual clock reproduces the published tables deterministically and
// lets the benchmark harness report both simulated and wall time.
package simclock

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Category labels a charge with the component that incurred it; the
// categories mirror the breakdowns in Table 4 and Fig. 6(b).
//
// lint:exhaustive
type Category int

// Charge categories.
const (
	CatUDF         Category = iota // model inference
	CatReadVideo                   // loading frames from the storage engine
	CatReadView                    // loading materialized UDF results
	CatMaterialize                 // appending new UDF results to views
	CatOptimize                    // optimizer analysis and rewriting
	CatApply                       // apply-operator bookkeeping for reuse
	CatHash                        // FunCache argument hashing
	CatRetry                       // backoff waits between UDF retry attempts
	CatOther                       // joins, crops, parser, everything else
	numCategories
)

// String returns the display name used in reports.
func (c Category) String() string {
	switch c {
	case CatUDF:
		return "UDF"
	case CatReadVideo:
		return "ReadVideo"
	case CatReadView:
		return "ReadView"
	case CatMaterialize:
		return "Materialize"
	case CatOptimize:
		return "Optimize"
	case CatApply:
		return "Apply"
	case CatHash:
		return "Hash"
	case CatRetry:
		return "Retry"
	case CatOther:
		return "Other"
	default:
		return fmt.Sprintf("Category(%d)", int(c))
	}
}

// Categories lists all categories in display order.
func Categories() []Category {
	out := make([]Category, numCategories)
	for i := range out {
		out[i] = Category(i)
	}
	return out
}

// Clock accumulates simulated time per category. It is safe for
// concurrent use; the zero value is ready.
type Clock struct {
	mu      sync.Mutex
	charges [numCategories]time.Duration // guarded by mu
}

// Charge adds d of simulated time to the category.
func (c *Clock) Charge(cat Category, d time.Duration) {
	if d == 0 {
		return
	}
	c.mu.Lock()
	c.charges[cat] += d
	c.mu.Unlock()
}

// ChargePerTuple adds n × perTuple to the category.
func (c *Clock) ChargePerTuple(cat Category, perTuple time.Duration, n int) {
	c.Charge(cat, time.Duration(n)*perTuple)
}

// Total returns the accumulated simulated time across categories.
func (c *Clock) Total() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	var t time.Duration
	for _, d := range c.charges {
		t += d
	}
	return t
}

// Snapshot captures the clock state for later differencing.
type Snapshot [numCategories]time.Duration

// Snapshot returns the current per-category totals.
func (c *Clock) Snapshot() Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.charges
}

// Breakdown is a per-category accounting of simulated time.
type Breakdown map[Category]time.Duration

// Since returns the per-category time accumulated after the snapshot.
func (c *Clock) Since(s Snapshot) Breakdown {
	cur := c.Snapshot()
	out := Breakdown{}
	for i := range cur {
		if d := cur[i] - s[i]; d != 0 {
			out[Category(i)] = d
		}
	}
	return out
}

// Reset zeroes the clock.
func (c *Clock) Reset() {
	c.mu.Lock()
	c.charges = [numCategories]time.Duration{}
	c.mu.Unlock()
}

// Total sums the breakdown.
func (b Breakdown) Total() time.Duration {
	var t time.Duration
	for _, d := range b {
		t += d
	}
	return t
}

// Get returns the duration charged to cat (zero if absent).
func (b Breakdown) Get(cat Category) time.Duration { return b[cat] }

// Add returns a breakdown with the contents of both.
func (b Breakdown) Add(o Breakdown) Breakdown {
	out := Breakdown{}
	for k, v := range b {
		out[k] = v
	}
	for k, v := range o {
		out[k] += v
	}
	return out
}

// String renders the breakdown sorted by category order.
func (b Breakdown) String() string {
	keys := make([]Category, 0, len(b))
	for k := range b {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%s", k, b[k].Round(time.Millisecond)))
	}
	return strings.Join(parts, " ")
}
