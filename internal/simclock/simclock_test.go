package simclock

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestChargeAndTotal(t *testing.T) {
	var c Clock
	c.Charge(CatUDF, 99*time.Millisecond)
	c.Charge(CatUDF, time.Millisecond)
	c.Charge(CatReadView, 10*time.Millisecond)
	c.Charge(CatOther, 0) // no-op
	if got := c.Total(); got != 110*time.Millisecond {
		t.Errorf("Total = %v", got)
	}
}

func TestChargePerTuple(t *testing.T) {
	var c Clock
	c.ChargePerTuple(CatUDF, 99*time.Millisecond, 10)
	if got := c.Total(); got != 990*time.Millisecond {
		t.Errorf("Total = %v", got)
	}
}

func TestSnapshotSince(t *testing.T) {
	var c Clock
	c.Charge(CatUDF, time.Second)
	s := c.Snapshot()
	c.Charge(CatUDF, 2*time.Second)
	c.Charge(CatMaterialize, time.Second)
	b := c.Since(s)
	if b.Get(CatUDF) != 2*time.Second {
		t.Errorf("UDF delta = %v", b.Get(CatUDF))
	}
	if b.Get(CatMaterialize) != time.Second {
		t.Errorf("Mat delta = %v", b.Get(CatMaterialize))
	}
	if b.Get(CatReadVideo) != 0 {
		t.Error("untouched category should be 0")
	}
	if b.Total() != 3*time.Second {
		t.Errorf("breakdown total = %v", b.Total())
	}
}

func TestReset(t *testing.T) {
	var c Clock
	c.Charge(CatHash, time.Second)
	c.Reset()
	if c.Total() != 0 {
		t.Error("reset failed")
	}
}

func TestBreakdownAddAndString(t *testing.T) {
	a := Breakdown{CatUDF: time.Second}
	b := Breakdown{CatUDF: time.Second, CatApply: time.Millisecond}
	sum := a.Add(b)
	if sum.Get(CatUDF) != 2*time.Second || sum.Get(CatApply) != time.Millisecond {
		t.Errorf("Add = %v", sum)
	}
	s := sum.String()
	if !strings.Contains(s, "UDF=2s") || !strings.Contains(s, "Apply=1ms") {
		t.Errorf("String = %q", s)
	}
}

func TestConcurrentCharges(t *testing.T) {
	var c Clock
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Charge(CatUDF, time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := c.Total(); got != 8*time.Millisecond {
		t.Errorf("concurrent total = %v", got)
	}
}

func TestCategoryNames(t *testing.T) {
	for _, cat := range Categories() {
		if strings.HasPrefix(cat.String(), "Category(") {
			t.Errorf("category %d missing name", cat)
		}
	}
	if Category(99).String() != "Category(99)" {
		t.Error("unknown category rendering")
	}
}
