// Package costs centralizes the profiled engine cost constants shared
// by the execution engine (which charges them) and the optimizer
// (whose Eq. 3/Eq. 4 cost model must use the same profile).
package costs

import "time"

// Profiled engine cost constants charged to the virtual clock. The
// values reproduce the paper's published measurements (Table 4 and the
// c_r / c_e profile of §4.2); where the paper gives no number, the
// chosen value is documented here and in DESIGN.md.
const (
	// ReadVideoCost is the per-frame cost of loading a decoded frame
	// from the storage engine (Table 4's "Read Video" ≈ 22 s / 10 k
	// frames ≈ 1.8 ms matches the profiled c_r).
	ReadVideoCost = 1800 * time.Microsecond

	// TableViewReadCost is the per-key cost of reading a detector view
	// entry (one frame's detections). Table 4 measures "Read View" at
	// 10 s for a query joining ≈10 k frames of detections, i.e.
	// ≈1 ms/key once the hash table is warm; the pessimistic profiled
	// c_r = 1.8 ms of §4.2 remains the optimizer's planning constant.
	TableViewReadCost = 1000 * time.Microsecond

	// ScalarViewReadCost is the per-key cost of reading one scalar UDF
	// result; scalar rows are an order of magnitude lighter than
	// per-frame detection arrays.
	ScalarViewReadCost = 100 * time.Microsecond

	// ProbeCost is the per-key bookkeeping of the conditional Apply
	// operator (the Fig. 6(b) "Apply" overhead source).
	ProbeCost = 50 * time.Microsecond

	// MatRowCost is the per-row cost of appending fresh UDF results to
	// a materialized view (Fig. 6(b) "Materialization"; the paper notes
	// it is small thanks to 200 MiB batch writes).
	MatRowCost = 200 * time.Microsecond

	// RowCost is the per-row overhead of cheap operators (filters,
	// projections, joins) — Table 4's "Other".
	RowCost = 2 * time.Microsecond

	// OptimizeBaseCost is the fixed simulated cost of one optimizer
	// pass (parse bookkeeping, catalog lookups). The virtual clock
	// must never be charged measured wall time — that would make
	// simulated results machine- and run-dependent — so optimization
	// overhead (Fig. 6(b)) is modeled, not measured.
	OptimizeBaseCost = 100 * time.Microsecond

	// OptimizeAtomCost is the per-atom cost of the symbolic analysis
	// (INTER/DIFF/UNION construction and reduction); the paper reports
	// sub-second optimization for predicates of hundreds of atoms.
	OptimizeAtomCost = 10 * time.Microsecond

	// RetryBackoffBase is the first backoff charged to the virtual
	// clock after a transient UDF failure; subsequent attempts double
	// it up to RetryBackoffMax (capped exponential backoff). The
	// values model a model-serving hiccup: short enough that one
	// retry is cheaper than any detector invocation, long enough to
	// be visible in the Retry category of the time breakdown.
	RetryBackoffBase = 20 * time.Millisecond

	// RetryBackoffMax caps the exponential backoff growth.
	RetryBackoffMax = 160 * time.Millisecond

	// RetryMaxAttempts is the total number of evaluation attempts per
	// invocation (1 initial + RetryMaxAttempts-1 retries).
	RetryMaxAttempts = 4

	// IngestFrameCost is the per-frame cost of durably appending one
	// streaming frame to a live table (decode bookkeeping plus the
	// watermark-log write amortized over the batch). Charged per frame
	// rather than per batch so an interrupted-and-resumed ingestion
	// charges exactly what an uninterrupted one does.
	IngestFrameCost = 50 * time.Microsecond

	// CheckpointWriteCost is the cost of one standing-query checkpoint
	// record write (a small fsync-bounded append).
	CheckpointWriteCost = 500 * time.Microsecond

	// NotifyCost is the per-alert cost of delivering a standing-query
	// notification to its subscriber.
	NotifyCost = 10 * time.Microsecond
)

// RetryBackoff returns the backoff charged before retry attempt
// `attempt` (attempt 2 is the first retry): Base·2^(attempt-2),
// capped at RetryBackoffMax.
func RetryBackoff(attempt int) time.Duration {
	if attempt <= 1 {
		return 0
	}
	d := RetryBackoffBase
	for i := 2; i < attempt; i++ {
		d *= 2
		if d >= RetryBackoffMax {
			return RetryBackoffMax
		}
	}
	if d > RetryBackoffMax {
		d = RetryBackoffMax
	}
	return d
}

// AmdahlSpeedup models the wall-clock speedup of the parallel
// pipelined executor at the given worker count: the parallel fraction
// of the workload (UDF evaluation, which the worker pool spreads out)
// divides by workers, the rest stays serial. This is a *wall-clock*
// model only — the virtual clock always charges full undivided costs,
// keeping simulated totals worker-count-invariant (DESIGN.md §10);
// vbench compares this prediction against measured wall time.
func AmdahlSpeedup(parallelFrac float64, workers int) float64 {
	if workers < 1 {
		workers = 1
	}
	if parallelFrac < 0 {
		parallelFrac = 0
	}
	if parallelFrac > 1 {
		parallelFrac = 1
	}
	return 1 / ((1 - parallelFrac) + parallelFrac/float64(workers))
}

// ParallelAdjusted predicts the wall-clock duration of a workload with
// total serial duration `total`, of which `parallel` is spent in
// worker-pool-parallelizable UDF evaluation, when run at the given
// worker count.
func ParallelAdjusted(total, parallel time.Duration, workers int) time.Duration {
	if total <= 0 {
		return 0
	}
	frac := float64(parallel) / float64(total)
	return time.Duration(float64(total) / AmdahlSpeedup(frac, workers))
}

// RetryAdjustedCost is the Eq. 3 planning cost of one UDF invocation
// when the model fails transiently with probability p per attempt:
// the expected number of attempts (truncated geometric series over
// RetryMaxAttempts) times the profiled per-attempt cost, plus the
// expected backoff charged between attempts. With p = 0 it returns c
// exactly, so a healthy workload plans identically to a fault-free
// one.
func RetryAdjustedCost(c time.Duration, p float64) time.Duration {
	if p <= 0 {
		return c
	}
	if p > 1 {
		p = 1
	}
	expected := float64(c)
	pk := 1.0
	for attempt := 2; attempt <= RetryMaxAttempts; attempt++ {
		pk *= p // probability that attempt `attempt` is reached
		expected += pk * float64(c+RetryBackoff(attempt))
	}
	return time.Duration(expected)
}
