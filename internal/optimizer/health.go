package optimizer

import (
	"eva/internal/catalog"
	"eva/internal/costs"
)

// HealthView is the optimizer's window into physical-model health,
// implemented by udf.Runtime. ModelHealthy gates candidate selection
// (a model whose circuit breaker is open cannot be the eval target);
// FailureRate feeds the Eq. 3 cost model so that the expected retry
// attempts of a flaky model count against it when ranking predicates
// and running Algorithm 2's set cover.
type HealthView interface {
	ModelHealthy(name string) bool
	FailureRate(name string) float64
}

// Degradation records one graceful-degradation decision: a logical
// task whose nominal choice was skipped because its breaker is open.
type Degradation struct {
	Logical string   // logical task (or call) being bound
	Skipped []string // unhealthy models passed over, nominal order
	Chosen  string   // the fallback that will evaluate
}

// modelHealthy reports whether the model may be chosen as an eval
// target. With no health view every model is healthy. View *sources*
// are never filtered: reading a broken model's materialized results is
// safe — only fresh evaluation routes through the breaker.
func (o *Optimizer) modelHealthy(name string) bool {
	return o.Health == nil || o.Health.ModelHealthy(name)
}

// evalCost is the Eq. 3 planning cost of one invocation of the model,
// inflated by its observed transient-failure rate (expected retries
// and backoff). A model that has never failed costs exactly its
// profiled cost, so healthy planning is unperturbed.
func (o *Optimizer) evalCost(def *catalog.UDF) float64 {
	if o.Health == nil {
		return def.Cost.Seconds()
	}
	return costs.RetryAdjustedCost(def.Cost, o.Health.FailureRate(def.Name)).Seconds()
}

// pickEval selects the eval model from accuracy-satisfying candidates
// (already sorted cheapest-first): the healthy candidate with the
// lowest retry-adjusted cost. Skipped unhealthy models are recorded in
// the report. Returns nil if every candidate's breaker is open.
func (o *Optimizer) pickEval(logical string, cands []*catalog.UDF, report *Report) *catalog.UDF {
	var best *catalog.UDF
	bestCost := 0.0
	var skipped []string
	for _, def := range cands {
		if !o.modelHealthy(def.Name) {
			skipped = append(skipped, def.Name)
			continue
		}
		if c := o.evalCost(def); best == nil || c < bestCost {
			best, bestCost = def, c
		}
	}
	if best != nil && len(skipped) > 0 && report != nil {
		report.Degraded = append(report.Degraded, Degradation{
			Logical: logical,
			Skipped: skipped,
			Chosen:  best.Name,
		})
	}
	return best
}
