package optimizer

import (
	"strings"
	"testing"

	"eva/internal/catalog"
	"eva/internal/exec"
	"eva/internal/parser"
	"eva/internal/plan"
	"eva/internal/simclock"
	"eva/internal/storage"
	"eva/internal/types"
	"eva/internal/udf"
	"eva/internal/vision"
)

// harness wires a full system over a small synthetic video.
type harness struct {
	cat   *catalog.Catalog
	store *storage.Engine
	mgr   *udf.Manager
	rt    *udf.Runtime
	clock *simclock.Clock
	opt   *Optimizer
	ctx   *exec.Context
}

func newHarness(t *testing.T, ds vision.Dataset) *harness {
	t.Helper()
	cat := catalog.New()
	if _, err := cat.RegisterVideo("video", ds); err != nil {
		t.Fatal(err)
	}
	store, err := storage.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.CreateVideo("video", ds); err != nil {
		t.Fatal(err)
	}
	clock := &simclock.Clock{}
	rt := udf.NewRuntime(cat, clock)
	mgr := udf.NewManager()
	return &harness{
		cat: cat, store: store, mgr: mgr, rt: rt, clock: clock,
		opt: New(cat, mgr, clock),
		ctx: &exec.Context{Store: store, Runtime: rt, Clock: clock},
	}
}

func (h *harness) run(t *testing.T, sql string, mode Mode) (*types.Batch, *Result) {
	t.Helper()
	stmt, err := parser.Parse(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	res, err := h.opt.Optimize(stmt.(*parser.SelectStmt), mode)
	if err != nil {
		t.Fatalf("optimize %q: %v", sql, err)
	}
	out, err := exec.Run(h.ctx, res.Plan)
	if err != nil {
		t.Fatalf("run %q: %v\nplan:\n%s", sql, err, plan.Explain(res.Plan))
	}
	return out, res
}

const q3SQL = `SELECT id, bbox FROM video CROSS APPLY FasterRCNNResnet50(frame)
	WHERE id < 200 AND area > 0.25 AND label = 'car'
	AND CarType(frame, bbox) = 'Nissan' AND ColorDet(frame, bbox) = 'Gray'`

func TestScanRangePushdown(t *testing.T) {
	h := newHarness(t, vision.MediumUADetrac)
	_, res := h.run(t, "SELECT id FROM video WHERE id >= 100 AND id < 160", NoReuseMode())
	if res.Report.ScanLo != 100 || res.Report.ScanHi != 160 {
		t.Errorf("scan range = [%d, %d)", res.Report.ScanLo, res.Report.ScanHi)
	}
	out, _ := h.run(t, "SELECT id FROM video WHERE id >= 100 AND id < 160", NoReuseMode())
	if out.Len() != 60 {
		t.Errorf("rows = %d, want 60", out.Len())
	}
	if out.At(0, 0).Int() != 100 || out.At(59, 0).Int() != 159 {
		t.Errorf("bounds wrong: %v..%v", out.At(0, 0), out.At(59, 0))
	}
}

func TestDetectorQueryMatchesGroundModel(t *testing.T) {
	h := newHarness(t, vision.MediumUADetrac)
	out, _ := h.run(t, "SELECT id, label, area FROM video CROSS APPLY FasterRCNNResnet50(frame) WHERE id < 20", NoReuseMode())
	want := 0
	for f := int64(0); f < 20; f++ {
		dets, err := vision.Detect(vision.FasterRCNN50, vision.MediumUADetrac.EncodeFrame(f))
		if err != nil {
			t.Fatal(err)
		}
		want += len(dets)
	}
	if out.Len() != want {
		t.Errorf("detections = %d, want %d", out.Len(), want)
	}
}

func TestEVAReuseCorrectAndFaster(t *testing.T) {
	h := newHarness(t, vision.MediumUADetrac)
	base, _ := h.run(t, q3SQL, NoReuseMode())

	h2 := newHarness(t, vision.MediumUADetrac)
	first, _ := h2.run(t, q3SQL, EVAMode())
	if first.Len() != base.Len() {
		t.Fatalf("EVA first run rows = %d, no-reuse = %d", first.Len(), base.Len())
	}

	// Second identical query: results equal, UDF time ≈ 0.
	snap := h2.clock.Snapshot()
	second, _ := h2.run(t, q3SQL, EVAMode())
	delta := h2.clock.Since(snap)
	if second.Len() != base.Len() {
		t.Fatalf("EVA second run rows = %d, want %d", second.Len(), base.Len())
	}
	for r := 0; r < base.Len(); r++ {
		if base.At(r, 0).Int() != second.At(r, 0).Int() || base.At(r, 1).Str() != second.At(r, 1).Str() {
			t.Fatalf("row %d differs under reuse", r)
		}
	}
	if udfTime := delta.Get(simclock.CatUDF); udfTime > 0 {
		t.Errorf("second run charged %v of UDF time, want 0", udfTime)
	}
	if delta.Get(simclock.CatReadView) == 0 {
		t.Error("second run should read views")
	}
	if h2.rt.HitPercentage() <= 0 {
		t.Error("hit percentage should be positive")
	}
}

func TestPartialOverlapOnlyEvaluatesDiff(t *testing.T) {
	h := newHarness(t, vision.MediumUADetrac)
	q1 := "SELECT id FROM video CROSS APPLY FasterRCNNResnet50(frame) WHERE id < 150"
	q2 := "SELECT id FROM video CROSS APPLY FasterRCNNResnet50(frame) WHERE id >= 100 AND id < 200"
	h.run(t, q1, EVAMode())
	before := h.rt.CounterSnapshot()["fasterrcnnresnet50"]
	if before.Evaluated != 150 {
		t.Fatalf("q1 evaluated %d frames, want 150", before.Evaluated)
	}
	h.run(t, q2, EVAMode())
	after := h.rt.CounterSnapshot()["fasterrcnnresnet50"]
	// Only frames [150, 200) are new.
	if evals := after.Evaluated - before.Evaluated; evals != 50 {
		t.Errorf("q2 evaluated %d new frames, want 50", evals)
	}
	if reused := after.Reused; reused != 50 {
		t.Errorf("q2 reused %d frames, want 50 (overlap 100..150)", reused)
	}
}

func TestMaterializationAwareReordering(t *testing.T) {
	// After a query materializes CarType over a range, a follow-up with
	// both CarType and ColorDet should order CarType first under the
	// materialization-aware ranking even though ColorDet is cheaper,
	// because CarType's results are already materialized (§1, III).
	h := newHarness(t, vision.MediumUADetrac)
	warm := `SELECT id FROM video CROSS APPLY FasterRCNNResnet50(frame)
		WHERE id < 200 AND label = 'car' AND CarType(frame, bbox) = 'Nissan'`
	h.run(t, warm, EVAMode())

	both := `SELECT id FROM video CROSS APPLY FasterRCNNResnet50(frame)
		WHERE id < 200 AND label = 'car' AND CarType(frame, bbox) = 'Nissan'
		AND ColorDet(frame, bbox) = 'Gray'`
	_, res := h.run(t, both, EVAMode())
	if len(res.Report.Order) != 2 {
		t.Fatalf("order = %v", res.Report.Order)
	}
	if res.Report.Order[0] != "CarType" {
		t.Errorf("materialization-aware order = %v, want CarType first", res.Report.Order)
	}

	// Canonical ranking ignores the view: ColorDet (5 ms, similar
	// selectivity) goes first.
	h2 := newHarness(t, vision.MediumUADetrac)
	h2.run(t, warm, Mode{Reuse: true, ReuseScalarUDFs: true, Ranking: RankCanonical})
	_, res2 := h2.run(t, both, Mode{Reuse: true, ReuseScalarUDFs: true, Ranking: RankCanonical})
	if res2.Report.Order[0] != "ColorDet" {
		t.Errorf("canonical order = %v, want ColorDet first", res2.Report.Order)
	}
}

func TestReorderingSameResults(t *testing.T) {
	// Whatever the ordering, results agree.
	a := newHarness(t, vision.MediumUADetrac)
	outA, _ := a.run(t, q3SQL, Mode{Reuse: true, ReuseScalarUDFs: true, Ranking: RankCanonical})
	b := newHarness(t, vision.MediumUADetrac)
	outB, _ := b.run(t, q3SQL, EVAMode())
	if outA.Len() != outB.Len() {
		t.Fatalf("rows differ: %d vs %d", outA.Len(), outB.Len())
	}
}

func TestHashStashModeReusesOnlyDetector(t *testing.T) {
	mode := Mode{Reuse: true, ReuseScalarUDFs: false, Ranking: RankCanonical}
	h := newHarness(t, vision.MediumUADetrac)
	h.run(t, q3SQL, mode)
	before := h.rt.CounterSnapshot()
	h.run(t, q3SQL, mode)
	after := h.rt.CounterSnapshot()
	if reused := after["fasterrcnnresnet50"].Reused; reused == 0 {
		t.Error("detector results should be reused")
	}
	if evals := after["cartype"].Evaluated - before["cartype"].Evaluated; evals == 0 {
		t.Error("CarType should be re-evaluated (no scalar reuse in HashStash)")
	}
}

func TestGroupByCount(t *testing.T) {
	h := newHarness(t, vision.MediumUADetrac)
	out, _ := h.run(t, `SELECT id, COUNT(*) FROM video CROSS APPLY FasterRCNNResnet50(frame)
		WHERE id < 10 AND label = 'car' GROUP BY id`, NoReuseMode())
	if out.Len() == 0 {
		t.Fatal("no groups")
	}
	// Validate one group against ground truth.
	f := out.At(0, 0).Int()
	dets, _ := vision.Detect(vision.FasterRCNN50, vision.MediumUADetrac.EncodeFrame(f))
	cars := 0
	for _, d := range dets {
		if d.Label == "car" {
			cars++
		}
	}
	if got := out.At(0, 1).Int(); got != int64(cars) {
		t.Errorf("count for frame %d = %d, want %d", f, got, cars)
	}
}

func TestProjectionUDFIsScheduled(t *testing.T) {
	// SELECT License(frame, bbox): the UDF appears only in the
	// projection and must still be rewritten into an Apply.
	h := newHarness(t, vision.MediumUADetrac)
	sql := `SELECT id, License(frame, bbox) FROM video CROSS APPLY FasterRCNNResnet50(frame)
		WHERE id < 15 AND label = 'car'`
	out, res := h.run(t, sql, EVAMode())
	if out.Len() == 0 {
		t.Fatal("no rows")
	}
	if got := out.Schema()[1].Kind; got != types.KindString {
		t.Errorf("license column kind = %v", got)
	}
	if !strings.Contains(plan.Explain(res.Plan), "ScalarApply(License") {
		t.Errorf("plan lacks License apply:\n%s", plan.Explain(res.Plan))
	}
	// Second run fully reuses License results.
	before := h.rt.CounterSnapshot()["license"]
	h.run(t, sql, EVAMode())
	after := h.rt.CounterSnapshot()["license"]
	if after.Evaluated != before.Evaluated {
		t.Errorf("license re-evaluated: %d -> %d", before.Evaluated, after.Evaluated)
	}
}

func TestLogicalUDFAlgorithm2(t *testing.T) {
	h := newHarness(t, vision.MediumUADetrac)
	// Warm the FRCNN50 view via a physical query.
	h.run(t, "SELECT id FROM video CROSS APPLY FasterRCNNResnet50(frame) WHERE id < 100", EVAMode())

	// A logical low-accuracy query should pick up the FRCNN50 view
	// under EVA (reusing high-accuracy results, §4.3) …
	sql := "SELECT id, label FROM video CROSS APPLY ObjectDetector(frame) ACCURACY 'LOW' WHERE id < 100"
	stmt, _ := parser.Parse(sql)
	res, err := h.opt.Optimize(stmt.(*parser.SelectStmt), EVAMode())
	if err != nil {
		t.Fatal(err)
	}
	foundFRCNN := false
	for _, s := range res.Report.DetectorSources {
		if strings.Contains(s, "fasterrcnnresnet50") {
			foundFRCNN = true
		}
	}
	if !foundFRCNN {
		t.Errorf("Algorithm 2 did not select the FRCNN50 view: %v", res.Report.DetectorSources)
	}
	if res.Report.DetectorEval != vision.YoloTiny {
		t.Errorf("eval model = %s, want YoloTiny (cheapest)", res.Report.DetectorEval)
	}
	before := h.rt.CounterSnapshot()
	if _, err := exec.Run(h.ctx, res.Plan); err != nil {
		t.Fatal(err)
	}
	after := h.rt.CounterSnapshot()
	if evals := after["yolotiny"].Evaluated - before["yolotiny"].Evaluated; evals != 0 {
		t.Errorf("YoloTiny evaluated %d frames despite full FRCNN50 coverage", evals)
	}

	// … while Min-Cost only consults YoloTiny's (empty) view and must
	// evaluate everything.
	h2 := newHarness(t, vision.MediumUADetrac)
	h2.run(t, "SELECT id FROM video CROSS APPLY FasterRCNNResnet50(frame) WHERE id < 100", EVAMode())
	stmt2, _ := parser.Parse(sql)
	res2, err := h2.opt.Optimize(stmt2.(*parser.SelectStmt), Mode{Reuse: true, ReuseScalarUDFs: true, Ranking: RankMaterializationAware, Logical: LogicalMinCost})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := exec.Run(h2.ctx, res2.Plan); err != nil {
		t.Fatal(err)
	}
	if evals := h2.rt.CounterSnapshot()["yolotiny"].Evaluated; evals != 100 {
		t.Errorf("Min-Cost evaluated %d frames, want 100", evals)
	}
}

func TestLogicalAccuracyConstraint(t *testing.T) {
	h := newHarness(t, vision.MediumUADetrac)
	sql := "SELECT id FROM video CROSS APPLY ObjectDetector(frame) ACCURACY 'HIGH' WHERE id < 5"
	stmt, _ := parser.Parse(sql)
	res, err := h.opt.Optimize(stmt.(*parser.SelectStmt), EVAMode())
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.DetectorEval != vision.FasterRCNN101 {
		t.Errorf("HIGH accuracy bound to %s", res.Report.DetectorEval)
	}
}

func TestSpecializedFilterRunsBeforeDetector(t *testing.T) {
	h := newHarness(t, vision.Jackson)
	sql := `SELECT id, label FROM video CROSS APPLY FasterRCNNResnet50(frame)
		WHERE id < 300 AND VehicleFilter(frame) = TRUE AND label = 'car'`
	_, res := h.run(t, sql, EVAMode())
	if len(res.Report.PreOrder) != 1 || res.Report.PreOrder[0] != "VehicleFilter" {
		t.Fatalf("pre-detector order = %v", res.Report.PreOrder)
	}
	// The filter confidently prunes a fraction of the empty Jackson
	// frames before the detector runs.
	stats := h.rt.CounterSnapshot()
	if det := stats["fasterrcnnresnet50"]; det.Evaluated >= 290 || det.Evaluated < 100 {
		t.Errorf("detector ran on %d of 300 frames; filter should prune ≈30%% of empties", det.Evaluated)
	}
	if flt := stats["vehiclefilter"]; flt.Evaluated != 300 {
		t.Errorf("filter ran on %d frames, want 300", flt.Evaluated)
	}
}

func TestErrorPaths(t *testing.T) {
	h := newHarness(t, vision.MediumUADetrac)
	bad := []string{
		"SELECT id FROM ghost WHERE id < 5",
		"SELECT id FROM video WHERE Mystery(frame) = 1",
		"SELECT id FROM video WHERE label = 'car'",                                     // detector column without CROSS APPLY
		"SELECT id FROM video CROSS APPLY CarType(frame) WHERE id < 5",                 // scalar as table UDF
		"SELECT id, area FROM video CROSS APPLY FasterRCNNResnet50(frame) GROUP BY id", // area not grouped
		"SELECT * FROM video GROUP BY id",
		"SELECT id FROM video CROSS APPLY ObjectDetector(frame) ACCURACY 'ULTRA' WHERE id < 5",
	}
	for _, sql := range bad {
		stmt, err := parser.Parse(sql)
		if err != nil {
			t.Fatalf("parse %q: %v", sql, err)
		}
		if _, err := h.opt.Optimize(stmt.(*parser.SelectStmt), EVAMode()); err == nil {
			t.Errorf("Optimize(%q) should error", sql)
		}
	}
}

func TestLimitAndStar(t *testing.T) {
	h := newHarness(t, vision.MediumUADetrac)
	out, _ := h.run(t, "SELECT * FROM video WHERE id < 50 LIMIT 7", NoReuseMode())
	if out.Len() != 7 {
		t.Errorf("limit rows = %d", out.Len())
	}
	if len(out.Schema()) != 3 {
		t.Errorf("star schema = %s", out.Schema())
	}
}

func TestFig7AtomCountsGrowForBaseline(t *testing.T) {
	// The report exposes atom counts of the derived predicates; with
	// reduction enabled they stay small across refinements.
	h := newHarness(t, vision.MediumUADetrac)
	queries := []string{
		"SELECT id FROM video CROSS APPLY FasterRCNNResnet50(frame) WHERE id < 100 AND label = 'car' AND CarType(frame, bbox) = 'Nissan'",
		"SELECT id FROM video CROSS APPLY FasterRCNNResnet50(frame) WHERE id < 150 AND label = 'car' AND CarType(frame, bbox) = 'Nissan'",
		"SELECT id FROM video CROSS APPLY FasterRCNNResnet50(frame) WHERE id >= 50 AND id < 120 AND label = 'car' AND CarType(frame, bbox) = 'Toyota'",
	}
	maxUnion := 0
	for _, q := range queries {
		_, res := h.run(t, q, EVAMode())
		for sig, info := range res.Report.Preds {
			if strings.HasPrefix(sig, "video.cartype") && info.UnionAtoms > maxUnion {
				maxUnion = info.UnionAtoms
			}
		}
	}
	if maxUnion == 0 || maxUnion > 12 {
		t.Errorf("union atoms after reduction = %d, want small and positive", maxUnion)
	}
}
