// Package optimizer implements EVA's Cascades-style query optimizer
// with the semantic reuse algorithm of §3.1:
//
//	① identify candidate UDFs (profiled cost filter),
//	② compute UDF signatures and fetch aggregated predicates,
//	③ materialization-aware optimizations — predicate reordering with
//	   the Eq. 4 ranking and logical UDF reuse via greedy weighted set
//	   cover (Algorithm 2),
//	④ rule-based transformation — the UDF-based predicate rule (Fig. 3)
//	   unpacks multi-UDF selections into an Apply chain, and the
//	   materialization-aware rule (Fig. 4) splices view reads, guarded
//	   evaluation, and STOREs into each Apply.
package optimizer

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"eva/internal/catalog"
	"eva/internal/costs"
	"eva/internal/expr"
	"eva/internal/parser"
	"eva/internal/plan"
	"eva/internal/simclock"
	"eva/internal/symbolic"
	"eva/internal/udf"
	"eva/internal/vision"
)

// RankingKind selects the predicate-reordering ranking function.
type RankingKind int

// Ranking functions.
const (
	// RankCanonical is Eq. 2: r = (s−1)/c.
	RankCanonical RankingKind = iota
	// RankMaterializationAware is Eq. 4: r = (s−1)/(s_p−·c_e + c_r).
	RankMaterializationAware
)

// LogicalMode selects how a logical UDF is bound to physical models.
type LogicalMode int

// Logical UDF binding strategies (§5.4, Fig. 10).
const (
	// LogicalEVA runs Algorithm 2 (greedy weighted set cover over views).
	LogicalEVA LogicalMode = iota
	// LogicalMinCost picks the cheapest satisfying model and reuses
	// only that model's view.
	LogicalMinCost
	// LogicalMinCostNoReuse picks the cheapest satisfying model with
	// reuse disabled.
	LogicalMinCostNoReuse
)

// Mode configures the optimizer per system-under-test; the benchmark
// baselines are expressed as Mode values.
type Mode struct {
	// Reuse enables materialized-view reuse for table UDFs.
	Reuse bool
	// ReuseScalarUDFs enables reuse for scalar UDFs in predicates and
	// projections. HashStash keeps this false: sub-plan matching only
	// captures operator-level (detector) outputs (§5.2).
	ReuseScalarUDFs bool
	// Ranking selects the predicate-reordering ranking function.
	Ranking RankingKind
	// Logical selects the logical-UDF binding strategy.
	Logical LogicalMode
	// DisableReduction skips Algorithm 1 reduction (ablation).
	DisableReduction bool
	// FuzzyBBox enables the §6 fuzzy bounding-box reuse extension on
	// scalar UDFs keyed by (bbox, id): results materialized for a
	// different detector's boxes may serve spatially matching boxes.
	FuzzyBBox bool
	// DryRun plans without committing aggregated predicates to the
	// UDFManager (EXPLAIN).
	DryRun bool
	// TableCovered, when set, gates table-UDF reuse HashStash-style:
	// the callback reports whether previously materialized results
	// cover the query's frame range. Covered queries read only from
	// the view; uncovered queries evaluate from scratch and
	// materialize (all-or-nothing, no difference computation).
	TableCovered func(udfName string, lo, hi int64) bool
}

// EVAMode is the full system configuration.
func EVAMode() Mode {
	return Mode{Reuse: true, ReuseScalarUDFs: true, Ranking: RankMaterializationAware, Logical: LogicalEVA}
}

// NoReuseMode disables all reuse.
func NoReuseMode() Mode {
	return Mode{Ranking: RankCanonical, Logical: LogicalMinCostNoReuse}
}

// PredInfo records the symbolic analysis for one UDF invocation; the
// Fig. 7 experiment plots the atom counts.
type PredInfo struct {
	Signature  string
	Query      string // the associated predicate q
	InterAtoms int
	DiffAtoms  int
	UnionAtoms int
	Sel        float64 // selectivity of the UDF's own predicate (s)
	RelDiff    float64 // s_p−: fraction of gated tuples missing from the view
	Rank       float64
}

// Report captures the optimizer's decisions for tests and experiments.
type Report struct {
	ScanLo, ScanHi  int64
	PreOrder        []string // scalar UDFs applied before the detector
	Order           []string // scalar UDFs applied after the detector, in rank order
	DetectorEval    string
	DetectorSources []string
	Preds           map[string]PredInfo
	OptimizeTime    time.Duration
	// Degraded lists logical bindings that passed over models with
	// open circuit breakers (graceful degradation, in decision order).
	Degraded []Degradation
}

// Result is an optimized statement.
type Result struct {
	Plan   plan.Node
	Report Report
}

// Optimizer holds the long-lived optimization state.
type Optimizer struct {
	Cat   *catalog.Catalog
	Mgr   *udf.Manager
	Clock *simclock.Clock
	// Health, when set, gates eval-model selection on circuit-breaker
	// state and feeds observed failure rates into the Eq. 3 cost model
	// (nil = every model healthy, costs unadjusted).
	Health HealthView
}

// New returns an optimizer over the catalog and UDF manager.
func New(cat *catalog.Catalog, mgr *udf.Manager, clock *simclock.Clock) *Optimizer {
	return &Optimizer{Cat: cat, Mgr: mgr, Clock: clock}
}

// reduce applies Algorithm 1 unless the mode disables it.
func (m Mode) reduce(d symbolic.DNF) symbolic.DNF {
	if m.DisableReduction {
		return d
	}
	return symbolic.Reduce(d)
}

func (m Mode) inter(a, b symbolic.DNF) symbolic.DNF { return m.reduce(a.And(b)) }
func (m Mode) diff(a, b symbolic.DNF) symbolic.DNF  { return m.reduce(a.Not().And(b)) }
func (m Mode) union(a, b symbolic.DNF) symbolic.DNF { return m.reduce(a.Or(b)) }

// scalarCall is one expensive scalar UDF invocation scheduled by the
// optimizer.
type scalarCall struct {
	call     *expr.Call
	def      *catalog.UDF
	sig      udf.Signature
	ownPreds []expr.Expr // conjuncts referencing this call
	pre      bool        // can run before the detector
	sel      float64
	relDiff  float64
	rank     float64
}

// Optimize turns a parsed SELECT into a physical plan under the mode.
func (o *Optimizer) Optimize(stmt *parser.SelectStmt, mode Mode) (*Result, error) {
	// The optimizer self-times for diagnostic output only; the virtual
	// clock is charged a modeled cost below, never this measurement.
	// lint:wallclock diagnostic self-timing
	start := time.Now()
	res, err := o.optimize(stmt, mode)
	elapsed := time.Since(start) // lint:wallclock diagnostic self-timing
	if o.Clock != nil && res != nil {
		// The optimizer's own work (symbolic analysis included) is
		// Fig. 6(b)'s "Optimization" overhead source. Charge a modeled
		// cost proportional to the symbolic atoms processed, never the
		// measured wall time: the virtual clock must stay deterministic
		// across runs and machines (wall-time charges made golden
		// outputs wobble at the rounding boundary).
		atoms := 0
		for _, pi := range res.Report.Preds {
			atoms += pi.InterAtoms + pi.DiffAtoms + pi.UnionAtoms
		}
		o.Clock.Charge(simclock.CatOptimize,
			costs.OptimizeBaseCost+time.Duration(atoms)*costs.OptimizeAtomCost)
	}
	if res != nil {
		res.Report.OptimizeTime = elapsed
	}
	return res, err
}

func (o *Optimizer) optimize(stmt *parser.SelectStmt, mode Mode) (*Result, error) {
	table, err := o.Cat.Table(stmt.From)
	if err != nil {
		return nil, fmt.Errorf("optimizer: %w", err)
	}
	stats := table.Stats
	report := Report{Preds: map[string]PredInfo{}}

	// --- Classify WHERE conjuncts. ---
	conjuncts := []expr.Expr{}
	if stmt.Where != nil {
		conjuncts = expr.SplitConjuncts(stmt.Where)
	}
	detSchema := catalog.DetectorSchema
	var scanPreds, detPreds []expr.Expr
	callPreds := map[string][]expr.Expr{} // canonical call -> conjuncts
	callByKey := map[string]*expr.Call{}

	classify := func(c expr.Expr) error {
		calls := expr.CollectCalls(c)
		var expensive []*expr.Call
		for _, call := range calls {
			u, err := o.Cat.UDF(call.Fn)
			if err != nil {
				return fmt.Errorf("optimizer: %w", err)
			}
			if u.Expensive && u.Kind == catalog.KindScalarUDF {
				expensive = append(expensive, call)
			}
		}
		if len(expensive) > 0 {
			for _, call := range expensive {
				key := call.String()
				callPreds[key] = append(callPreds[key], c)
				callByKey[key] = call
			}
			return nil
		}
		// Column-only (or cheap-call) conjunct: before or after detector?
		usesDet := false
		for _, col := range expr.CollectColumns(c) {
			if detSchema.Has(col) && !table.Schema.Has(col) {
				usesDet = true
			}
		}
		if usesDet {
			detPreds = append(detPreds, c)
		} else {
			scanPreds = append(scanPreds, c)
		}
		return nil
	}
	for _, c := range conjuncts {
		if err := classify(c); err != nil {
			return nil, err
		}
	}

	// Expensive calls in the projection (no own predicate) must also be
	// scheduled (e.g. SELECT LICENSE(bbox, frame) ...).
	for _, item := range stmt.Items {
		if item.Star || item.Expr == nil {
			continue
		}
		for _, call := range expr.CollectCalls(item.Expr) {
			u, err := o.Cat.UDF(call.Fn)
			if err != nil {
				if isAggregate(call.Fn) {
					continue
				}
				return nil, fmt.Errorf("optimizer: %w", err)
			}
			if u.Expensive && u.Kind == catalog.KindScalarUDF {
				key := call.String()
				if _, seen := callByKey[key]; !seen {
					callByKey[key] = call
					callPreds[key] = nil
				}
			}
		}
	}

	// --- Scan range pushdown from id predicates. ---
	scanDNF, err := symbolic.FromExpr(expr.CombineConjuncts(scanPreds))
	if err != nil {
		return nil, fmt.Errorf("optimizer: scan predicate: %w", err)
	}
	scanDNF = mode.reduce(scanDNF)
	lo, hi := idRange(scanDNF, table.RowCount())
	report.ScanLo, report.ScanHi = lo, hi

	var node plan.Node = &plan.Scan{Table: table.Name, Sch: table.Schema, Lo: lo, Hi: hi}
	if residual := expr.CombineConjuncts(scanPreds); residual != nil {
		node = &plan.Filter{Input: node, Pred: residual}
	}

	// --- Build scalar call descriptors. ---
	// Iterate in sorted key order: callByKey is a map, and letting its
	// iteration order pick the Apply stacking order makes plans (and
	// simulated time) nondeterministic run to run.
	callKeys := make([]string, 0, len(callByKey))
	for key := range callByKey {
		callKeys = append(callKeys, key)
	}
	sort.Strings(callKeys)
	var calls []*scalarCall
	for _, key := range callKeys {
		call := callByKey[key]
		def, err := o.Cat.UDF(call.Fn)
		if err != nil {
			return nil, fmt.Errorf("optimizer: %w", err)
		}
		def, err = o.resolveScalarPhysical(call, def, &report)
		if err != nil {
			return nil, err
		}
		sc := &scalarCall{call: call, def: def, ownPreds: callPreds[key], sig: udf.NewSignature(table.Name, def.Name, call.Args)}
		sc.pre = true
		for _, arg := range call.Args {
			for _, col := range expr.CollectColumns(arg) {
				if !table.Schema.Has(col) {
					sc.pre = false
				}
			}
		}
		for _, c := range sc.ownPreds {
			for _, col := range expr.CollectColumns(c) {
				if !table.Schema.Has(col) && detSchema.Has(col) {
					sc.pre = false
				}
			}
		}
		calls = append(calls, sc)
	}

	// --- Split into pre-detector and post-detector groups. ---
	var preCalls, postCalls []*scalarCall
	for _, sc := range calls {
		if sc.pre {
			preCalls = append(preCalls, sc)
		} else {
			postCalls = append(postCalls, sc)
		}
	}

	// Pending UDF-based conjuncts become Filters as soon as every
	// expensive call they reference has been computed (Fig. 3's chain
	// interleaves Applies and selections).
	var pending []expr.Expr
	seenConj := map[string]struct{}{}
	predKeys := make([]string, 0, len(callPreds))
	for key := range callPreds {
		predKeys = append(predKeys, key)
	}
	// Filter emission order shapes the physical plan (and with it the
	// per-operator virtual-clock charges), so it must not inherit map
	// iteration order.
	sort.Strings(predKeys)
	for _, key := range predKeys {
		for _, c := range callPreds[key] {
			if _, dup := seenConj[c.String()]; dup {
				continue
			}
			seenConj[c.String()] = struct{}{}
			pending = append(pending, c)
		}
	}
	computed := map[string]string{}
	emitFilters := func(node plan.Node) plan.Node {
		var remaining []expr.Expr
		for _, c := range pending {
			rw := rewriteComputed(c, computed)
			if o.hasExpensiveScalarCall(rw) {
				remaining = append(remaining, c)
				continue
			}
			node = &plan.Filter{Input: node, Pred: rw}
		}
		pending = remaining
		return node
	}

	// --- Pre-detector scalar UDFs (specialized filters, §5.6). ---
	preGate := scanDNF
	o.rankCalls(preCalls, preGate, stats, mode)
	for _, sc := range preCalls {
		node, err = o.applyScalar(node, sc, preGate, mode, &report)
		if err != nil {
			return nil, err
		}
		computed[sc.call.String()] = sc.def.OutputColumn()
		node = emitFilters(node)
		ownDNF, err := symbolic.FromExpr(expr.CombineConjuncts(sc.ownPreds))
		if err != nil {
			return nil, fmt.Errorf("optimizer: %s predicate: %w", sc.def.Name, err)
		}
		preGate = mode.reduce(preGate.And(ownDNF))
		report.PreOrder = append(report.PreOrder, sc.def.Name)
	}

	// --- Detector (table UDF / CROSS APPLY). ---
	detGate := preGate
	if stmt.Apply != nil {
		node, err = o.applyDetector(node, stmt.Apply, detGate, mode, stats, table, &report)
		if err != nil {
			return nil, err
		}
		if p := expr.CombineConjuncts(detPreds); p != nil {
			node = &plan.Filter{Input: node, Pred: p}
		}
		detDNF, err := symbolic.FromExpr(expr.CombineConjuncts(detPreds))
		if err != nil {
			return nil, fmt.Errorf("optimizer: detector predicate: %w", err)
		}
		detGate = mode.reduce(detGate.And(detDNF))
	} else if len(detPreds) > 0 {
		return nil, fmt.Errorf("optimizer: predicate references detector columns but the query has no CROSS APPLY")
	}

	// --- Post-detector scalar UDFs: the Fig. 3 Apply chain in rank order. ---
	o.rankCalls(postCalls, detGate, stats, mode)
	gate := detGate
	for _, sc := range postCalls {
		node, err = o.applyScalar(node, sc, gate, mode, &report)
		if err != nil {
			return nil, err
		}
		computed[sc.call.String()] = sc.def.OutputColumn()
		node = emitFilters(node)
		ownDNF, err := symbolic.FromExpr(expr.CombineConjuncts(sc.ownPreds))
		if err != nil {
			return nil, fmt.Errorf("optimizer: %s predicate: %w", sc.def.Name, err)
		}
		gate = mode.reduce(gate.And(ownDNF))
		report.Order = append(report.Order, sc.def.Name)
	}
	if len(pending) > 0 {
		return nil, fmt.Errorf("optimizer: %d UDF predicates left unscheduled", len(pending))
	}

	// --- Projection / aggregation / ordering / limit. ---
	node, err = o.buildOutput(node, stmt, calls)
	if err != nil {
		return nil, err
	}
	if len(stmt.OrderBy) > 0 {
		keys := make([]plan.SortKey, len(stmt.OrderBy))
		for i, k := range stmt.OrderBy {
			if !node.Schema().Has(k.Col) {
				return nil, fmt.Errorf("optimizer: ORDER BY column %q not in output %s", k.Col, node.Schema())
			}
			keys[i] = plan.SortKey{Col: k.Col, Desc: k.Desc}
		}
		node = &plan.Sort{Input: node, Keys: keys}
	}
	if stmt.Limit >= 0 {
		node = &plan.Limit{Input: node, N: stmt.Limit}
	}
	return &Result{Plan: node, Report: report}, nil
}

// resolveScalarPhysical maps a logical scalar UDF reference to the
// cheapest healthy physical UDF satisfying the call's accuracy
// property (retry-adjusted cost; models with open breakers are passed
// over).
func (o *Optimizer) resolveScalarPhysical(call *expr.Call, def *catalog.UDF, report *Report) (*catalog.UDF, error) {
	if def.Kind == catalog.KindScalarUDF && strings.EqualFold(def.Name, call.Fn) && call.Accuracy == "" {
		return def, nil
	}
	min := vision.AccuracyLow
	if call.Accuracy != "" {
		lvl, err := vision.ParseAccuracy(call.Accuracy)
		if err != nil {
			return nil, fmt.Errorf("optimizer: %s: %w", call.Fn, err)
		}
		min = lvl
	}
	cands := o.Cat.UDFsForLogical(def.LogicalType, min)
	if len(cands) == 0 {
		return def, nil
	}
	chosen := o.pickEval(def.LogicalType, cands, report)
	if chosen == nil {
		return nil, fmt.Errorf("optimizer: every physical UDF implementing %s is unavailable (circuit breakers open)", def.LogicalType)
	}
	return chosen, nil
}

func isAggregate(fn string) bool {
	switch strings.ToUpper(fn) {
	case "COUNT", "SUM", "AVG", "MIN", "MAX":
		return true
	}
	return false
}

// idRange extracts the hull of the id constraint for scan pushdown.
func idRange(d symbolic.DNF, frames int64) (int64, int64) {
	lo, hi := int64(0), frames
	if d.IsFalse() {
		return 0, 0
	}
	found := false
	curLo, curHi := float64(frames), float64(0)
	loOpen, hiOpen := false, false
	for _, c := range d.Conjuncts() {
		con, ok := c.Constraint("id")
		if !ok || !con.Numeric {
			return 0, frames // some disjunct leaves id unconstrained
		}
		ivs := con.Ivs.Intervals()
		if len(ivs) == 0 {
			continue
		}
		found = true
		first, last := ivs[0], ivs[len(ivs)-1]
		if first.Lo < curLo || (first.Lo == curLo && loOpen && !first.LoOpen) {
			curLo, loOpen = first.Lo, first.LoOpen
		}
		if last.Hi > curHi || (last.Hi == curHi && hiOpen && !last.HiOpen) {
			curHi, hiOpen = last.Hi, last.HiOpen
		}
	}
	if !found {
		return lo, hi
	}
	if curLo > 0 {
		lo = int64(curLo)
		if float64(lo) < curLo || (loOpen && float64(lo) == curLo) {
			lo++ // fractional, or open integer bound (id > 100 starts at 101)
		}
	}
	if curHi < float64(frames) {
		// Closed or fractional bound includes the floor frame; an open
		// integral bound (id < 160) excludes it.
		hi = int64(curHi)
		if !(hiOpen && float64(hi) == curHi) {
			hi++
		}
		if hi > frames {
			hi = frames
		}
	}
	if lo < 0 {
		lo = 0
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}
