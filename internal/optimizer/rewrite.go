package optimizer

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"eva/internal/catalog"
	"eva/internal/costs"
	"eva/internal/expr"
	"eva/internal/parser"
	"eva/internal/plan"
	"eva/internal/symbolic"
	"eva/internal/types"
	"eva/internal/udf"
	"eva/internal/vision"
)

// rankCalls computes each call's rank under the mode's ranking function
// and sorts the slice ascending (lower rank evaluates first), per
// Theorem 4.1.
func (o *Optimizer) rankCalls(calls []*scalarCall, gate symbolic.DNF, stats symbolic.Stats, mode Mode) {
	for _, sc := range calls {
		own, err := symbolic.FromExpr(expr.CombineConjuncts(sc.ownPreds))
		if err != nil {
			// Unanalyzable own-predicates: assume non-selective.
			own = symbolic.True()
		}
		s := symbolic.Selectivity(own, stats)
		if len(sc.ownPreds) == 0 {
			s = 1
		}
		sc.sel = s

		relDiff := 1.0
		if mode.Reuse && mode.ReuseScalarUDFs {
			agg := o.Mgr.AggOf(sc.sig)
			diff := mode.diff(agg, gate)
			selGate := symbolic.Selectivity(gate, stats)
			selDiff := symbolic.Selectivity(diff, stats)
			if selGate > 1e-9 {
				relDiff = selDiff / selGate
			}
			if relDiff > 1 {
				relDiff = 1
			}
			if relDiff < 0 {
				relDiff = 0
			}
		}
		sc.relDiff = relDiff

		// Retry-adjusted Eq. 3 cost: a flaky model's expected retries
		// and backoff count against it in the ranking.
		ce := o.evalCost(sc.def)
		cr := costs.ScalarViewReadCost.Seconds()
		switch mode.Ranking {
		case RankMaterializationAware:
			sc.rank = (s - 1) / (relDiff*ce + cr) // Eq. 4
		default:
			sc.rank = (s - 1) / ce // Eq. 2
		}
		if math.IsNaN(sc.rank) {
			sc.rank = 0
		}
	}
	sort.SliceStable(calls, func(i, j int) bool { return calls[i].rank < calls[j].rank })
}

// applyScalar rewrites one scalar UDF invocation into a ReuseApply
// (Fig. 4) and records the symbolic analysis. gate is the predicate
// associated with the invocation (everything evaluated before it).
func (o *Optimizer) applyScalar(node plan.Node, sc *scalarCall, gate symbolic.DNF, mode Mode, report *Report) (plan.Node, error) {
	enabled := mode.Reuse && mode.ReuseScalarUDFs
	agg := o.Mgr.AggOf(sc.sig)

	inter := mode.inter(agg, gate)
	diff := mode.diff(agg, gate)
	union := mode.union(agg, gate)
	info := PredInfo{
		Signature:  sc.sig.Key(),
		Query:      gate.String(),
		InterAtoms: inter.AtomCount(),
		DiffAtoms:  diff.AtomCount(),
		UnionAtoms: union.AtomCount(),
		Sel:        sc.sel,
		RelDiff:    sc.relDiff,
		Rank:       sc.rank,
	}
	report.Preds[sc.sig.Key()] = info

	var sources []plan.ApplySource
	storeView := ""
	if enabled {
		// Fig. 4 simplifications: skip the view join when p∩ is FALSE
		// (nothing materialized is relevant); skip the store when p−
		// is FALSE (nothing new will be computed).
		if !inter.IsFalse() {
			sources = append(sources, plan.ApplySource{UDF: sc.def.Name, ViewName: sc.sig.ViewName()})
		}
		if !diff.IsFalse() {
			storeView = sc.sig.ViewName()
		}
		if !mode.DryRun {
			o.Mgr.Commit(sc.sig, gate)
		}
	}
	fuzzy := false
	if mode.FuzzyBBox && enabled {
		for _, kc := range sc.sig.KeyColumns() {
			if kc == "bbox" {
				fuzzy = true
			}
		}
		// Fuzzy probing needs the view join even when the symbolic
		// analysis says the exact predicates do not intersect.
		if fuzzy && len(sources) == 0 {
			sources = append(sources, plan.ApplySource{UDF: sc.def.Name, ViewName: sc.sig.ViewName()})
		}
	}
	return &plan.ReuseApply{
		Input:     node,
		Args:      sc.call.Args,
		Sources:   sources,
		Eval:      sc.def.Name,
		StoreView: storeView,
		TableUDF:  false,
		Out:       sc.def.Outputs,
		KeyCols:   sc.sig.KeyColumns(),
		FuzzyBBox: fuzzy,
	}, nil
}

// applyDetector binds the CROSS APPLY clause to physical detectors and
// rewrites it into a ReuseApply, running Algorithm 2 for logical UDFs.
func (o *Optimizer) applyDetector(node plan.Node, apply *parser.ApplyClause, gate symbolic.DNF, mode Mode, stats symbolic.Stats, table *catalog.Table, report *Report) (plan.Node, error) {
	minAcc := vision.AccuracyLow
	if apply.Accuracy != "" {
		lvl, err := vision.ParseAccuracy(apply.Accuracy)
		if err != nil {
			return nil, fmt.Errorf("optimizer: %s: %w", apply.Fn, err)
		}
		minAcc = lvl
	}

	var evalUDF *catalog.UDF
	var sources []plan.ApplySource
	logical := !o.Cat.HasUDF(apply.Fn)

	if !logical {
		def, err := o.Cat.UDF(apply.Fn)
		if err != nil {
			return nil, fmt.Errorf("optimizer: %w", err)
		}
		if def.Kind != catalog.KindTableUDF {
			return nil, fmt.Errorf("optimizer: %s is not a table UDF (CROSS APPLY requires one)", apply.Fn)
		}
		evalUDF = def
		if mode.Reuse {
			sig := udf.NewSignature(table.Name, def.Name, apply.Args)
			sources = append(sources, plan.ApplySource{UDF: def.Name, ViewName: sig.ViewName()})
		}
	} else {
		cands := o.Cat.UDFsForLogical(apply.Fn, minAcc)
		if len(cands) == 0 {
			return nil, fmt.Errorf("optimizer: no physical UDF implements %s with accuracy ≥ %s", apply.Fn, minAcc)
		}
		// Graceful degradation: the eval target must be healthy (its
		// breaker closed) and cheapest by retry-adjusted cost; view
		// sources below are deliberately not filtered, since reading a
		// broken model's materialized results is safe.
		cheapest := o.pickEval(apply.Fn, cands, report)
		if cheapest == nil {
			return nil, fmt.Errorf("optimizer: every physical UDF implementing %s is unavailable (circuit breakers open)", apply.Fn)
		}
		switch {
		case mode.Logical == LogicalMinCostNoReuse || !mode.Reuse:
			evalUDF = cheapest
		case mode.Logical == LogicalMinCost:
			evalUDF = cheapest
			sig := udf.NewSignature(table.Name, cheapest.Name, apply.Args)
			sources = append(sources, plan.ApplySource{UDF: cheapest.Name, ViewName: sig.ViewName()})
		default: // LogicalEVA: Algorithm 2
			evalUDF = cheapest
			sources = o.selectPhysicalUDFs(table.Name, cheapest, cands, apply.Args, gate, stats, mode)
		}
	}

	sig := udf.NewSignature(table.Name, evalUDF.Name, apply.Args)
	storeView := ""
	if mode.Reuse {
		storeView = sig.ViewName()
		// Ensure the eval model's own view is probed too (it may
		// already hold results from earlier queries).
		found := false
		for _, s := range sources {
			if s.ViewName == sig.ViewName() {
				found = true
			}
		}
		if !found {
			sources = append(sources, plan.ApplySource{UDF: evalUDF.Name, ViewName: sig.ViewName()})
		}
		if mode.TableCovered != nil {
			// HashStash semantics: reuse only under full coverage,
			// otherwise run from scratch and materialize.
			if mode.TableCovered(evalUDF.Name, report.ScanLo, report.ScanHi) {
				storeView = ""
			} else {
				sources = nil
			}
		}
		agg := o.Mgr.AggOf(sig)
		inter := mode.inter(agg, gate)
		diff := mode.diff(agg, gate)
		union := mode.union(agg, gate)
		report.Preds[sig.Key()] = PredInfo{
			Signature:  sig.Key(),
			Query:      gate.String(),
			InterAtoms: inter.AtomCount(),
			DiffAtoms:  diff.AtomCount(),
			UnionAtoms: union.AtomCount(),
			Sel:        1,
			RelDiff:    1,
		}
		if !mode.DryRun {
			o.Mgr.Commit(sig, gate)
		}
	}

	report.DetectorEval = evalUDF.Name
	for _, s := range sources {
		report.DetectorSources = append(report.DetectorSources, s.ViewName)
	}
	return &plan.ReuseApply{
		Input:     node,
		Args:      apply.Args,
		Sources:   sources,
		Eval:      evalUDF.Name,
		StoreView: storeView,
		TableUDF:  true,
		Out:       catalog.DetectorSchema,
		KeyCols:   sig.KeyColumns(),
	}, nil
}

// buildOutput assembles the projection / aggregation tail of the plan,
// substituting computed UDF outputs for their call expressions.
func (o *Optimizer) buildOutput(node plan.Node, stmt *parser.SelectStmt, calls []*scalarCall) (plan.Node, error) {
	computed := map[string]string{} // canonical call -> output column
	kinds := map[string]types.Kind{}
	for _, sc := range calls {
		computed[sc.call.String()] = sc.def.OutputColumn()
		if len(sc.def.Outputs) > 0 {
			kinds[sc.call.String()] = sc.def.Outputs[0].Kind
		}
	}
	rewrite := func(e expr.Expr) expr.Expr {
		return expr.Rewrite(e, func(n expr.Expr) expr.Expr {
			if c, ok := n.(*expr.Call); ok {
				if col, ok := computed[c.String()]; ok {
					return expr.NewColumn(col)
				}
			}
			return n
		})
	}

	hasAgg := len(stmt.GroupBy) > 0
	for _, it := range stmt.Items {
		if it.Star || it.Expr == nil {
			continue
		}
		if c, ok := it.Expr.(*expr.Call); ok && isAggregate(c.Fn) {
			hasAgg = true
		}
	}

	if hasAgg {
		var aggs []plan.Agg
		var outItems []plan.ProjItem
		for i, it := range stmt.Items {
			if it.Star {
				return nil, fmt.Errorf("optimizer: SELECT * cannot be combined with GROUP BY")
			}
			name := it.Alias
			if c, ok := it.Expr.(*expr.Call); ok && isAggregate(c.Fn) {
				kind, err := aggKind(c.Fn)
				if err != nil {
					return nil, err
				}
				var arg expr.Expr
				if len(c.Args) == 1 {
					if _, star := c.Args[0].(expr.Star); !star {
						arg = rewrite(c.Args[0])
					}
				}
				if name == "" {
					name = fmt.Sprintf("%s_%d", strings.ToLower(c.Fn), i)
				}
				aggs = append(aggs, plan.Agg{Kind: kind, Arg: arg, Name: name})
				outItems = append(outItems, plan.ProjItem{Name: name, E: expr.NewColumn(name)})
				continue
			}
			col, ok := it.Expr.(*expr.Column)
			if !ok {
				return nil, fmt.Errorf("optimizer: non-aggregate item %q must be a grouping column", it.Expr)
			}
			inKeys := false
			for _, k := range stmt.GroupBy {
				if strings.EqualFold(k, col.Name) {
					inKeys = true
				}
			}
			if !inKeys {
				return nil, fmt.Errorf("optimizer: column %q is not in GROUP BY", col.Name)
			}
			if name == "" {
				name = col.Name
			}
			outItems = append(outItems, plan.ProjItem{Name: name, E: expr.NewColumn(col.Name)})
		}
		node = &plan.GroupBy{Input: node, Keys: stmt.GroupBy, Aggs: aggs}
		return &plan.Project{Input: node, Items: outItems}, nil
	}

	var items []plan.ProjItem
	for i, it := range stmt.Items {
		if it.Star {
			for _, c := range node.Schema() {
				items = append(items, plan.ProjItem{Name: c.Name, E: expr.NewColumn(c.Name), Kind: c.Kind})
			}
			continue
		}
		e := rewrite(it.Expr)
		name := it.Alias
		if name == "" {
			if c, ok := e.(*expr.Column); ok {
				name = c.Name
			} else {
				name = fmt.Sprintf("col_%d", i)
			}
		}
		kind := types.KindNull
		if k, ok := kinds[it.Expr.String()]; ok {
			kind = k
		}
		items = append(items, plan.ProjItem{Name: name, E: e, Kind: kind})
	}
	return &plan.Project{Input: node, Items: items}, nil
}

func aggKind(fn string) (plan.AggKind, error) {
	switch strings.ToUpper(fn) {
	case "COUNT":
		return plan.AggCount, nil
	case "SUM":
		return plan.AggSum, nil
	case "AVG":
		return plan.AggAvg, nil
	case "MIN":
		return plan.AggMin, nil
	case "MAX":
		return plan.AggMax, nil
	default:
		return 0, fmt.Errorf("optimizer: unknown aggregate %q", fn)
	}
}
