package optimizer

import (
	"math"
	"strings"
	"testing"

	"eva/internal/expr"
	"eva/internal/parser"
	"eva/internal/plan"
	"eva/internal/symbolic"
	"eva/internal/types"
	"eva/internal/udf"
	"eva/internal/vision"
)

// seedDetectorView warms a physical detector's aggregated predicate
// over an id range, without executing anything.
func seedDetectorView(h *harness, model string, lo, hi int64) {
	sig := udf.NewSignature("video", model, []expr.Expr{expr.NewColumn("frame")})
	pred := expr.NewAnd(
		expr.NewCmp(expr.OpGe, expr.NewColumn("id"), expr.NewConst(types.NewInt(lo))),
		expr.NewCmp(expr.OpLt, expr.NewColumn("id"), expr.NewConst(types.NewInt(hi))),
	)
	d, err := symbolic.FromExpr(pred)
	if err != nil {
		panic(err)
	}
	h.mgr.Commit(sig, d)
}

func planLogical(t *testing.T, h *harness, sql string, mode Mode) *Result {
	t.Helper()
	stmt, err := parser.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	mode.DryRun = true
	res, err := h.opt.Optimize(stmt.(*parser.SelectStmt), mode)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSetCoverPrefersBestCoveringView(t *testing.T) {
	h := newHarness(t, vision.MediumUADetrac)
	// FRCNN50 covers the whole query range; FRCNN101 covers a sliver.
	seedDetectorView(h, vision.FasterRCNN50, 0, 10000)
	seedDetectorView(h, vision.FasterRCNN101, 9000, 9500)
	res := planLogical(t, h,
		"SELECT id FROM video CROSS APPLY ObjectDetector(frame) ACCURACY 'LOW' WHERE id < 8000", EVAMode())
	if len(res.Report.DetectorSources) == 0 {
		t.Fatal("no sources selected")
	}
	if !strings.Contains(res.Report.DetectorSources[0], "fasterrcnnresnet50") {
		t.Errorf("first source = %v, want the fully covering FRCNN50 view", res.Report.DetectorSources)
	}
}

func TestSetCoverCombinesComplementaryViews(t *testing.T) {
	h := newHarness(t, vision.MediumUADetrac)
	// Two views each cover half of the query range.
	seedDetectorView(h, vision.FasterRCNN50, 0, 5000)
	seedDetectorView(h, vision.FasterRCNN101, 5000, 10000)
	res := planLogical(t, h,
		"SELECT id FROM video CROSS APPLY ObjectDetector(frame) ACCURACY 'LOW' WHERE id < 10000", EVAMode())
	joined := strings.Join(res.Report.DetectorSources, ",")
	if !strings.Contains(joined, "fasterrcnnresnet50") || !strings.Contains(joined, "fasterrcnnresnet101") {
		t.Errorf("sources = %v, want both complementary views", res.Report.DetectorSources)
	}
}

func TestSetCoverRespectsAccuracyConstraint(t *testing.T) {
	h := newHarness(t, vision.MediumUADetrac)
	// Only a YoloTiny (LOW) view exists, but the query demands HIGH.
	seedDetectorView(h, vision.YoloTiny, 0, 10000)
	res := planLogical(t, h,
		"SELECT id FROM video CROSS APPLY ObjectDetector(frame) ACCURACY 'HIGH' WHERE id < 5000", EVAMode())
	for _, s := range res.Report.DetectorSources {
		if strings.Contains(s, "yolotiny") {
			t.Errorf("LOW-accuracy view selected for a HIGH query: %v", res.Report.DetectorSources)
		}
	}
	if res.Report.DetectorEval != vision.FasterRCNN101 {
		t.Errorf("eval = %s, want FRCNN101", res.Report.DetectorEval)
	}
}

func TestSetCoverSkipsUselessViews(t *testing.T) {
	h := newHarness(t, vision.MediumUADetrac)
	// A view over a disjoint range should not be consulted.
	seedDetectorView(h, vision.FasterRCNN101, 12000, 14000)
	res := planLogical(t, h,
		"SELECT id FROM video CROSS APPLY ObjectDetector(frame) ACCURACY 'LOW' WHERE id < 5000", EVAMode())
	for _, s := range res.Report.DetectorSources {
		if strings.Contains(s, "fasterrcnnresnet101") {
			t.Errorf("disjoint view selected: %v", res.Report.DetectorSources)
		}
	}
}

// TestGreedyMatchesExhaustiveOnSmallInstances cross-checks the greedy
// weighted set cover against brute-force enumeration of view subsets,
// scoring each plan with the same cost model (view read cost over
// covered tuples + cheapest-UDF evaluation of the remainder). The
// greedy solution must stay within the ln(n)-style factor — on these
// tiny instances, within 1.4× of optimal.
func TestGreedyMatchesExhaustiveOnSmallInstances(t *testing.T) {
	h := newHarness(t, vision.MediumUADetrac)
	stats := mustStats(t, h)
	scenarios := []struct {
		name   string
		ranges map[string][2]int64 // model -> materialized range
		qLo    int64
		qHi    int64
	}{
		{"nested", map[string][2]int64{vision.FasterRCNN50: {0, 10000}, vision.FasterRCNN101: {2000, 4000}}, 0, 8000},
		{"split", map[string][2]int64{vision.FasterRCNN50: {0, 5000}, vision.FasterRCNN101: {5000, 10000}}, 0, 10000},
		{"sliver", map[string][2]int64{vision.FasterRCNN101: {0, 500}}, 0, 10000},
		{"nothing", map[string][2]int64{}, 0, 10000},
	}
	for _, sc := range scenarios {
		h.mgr.Reset()
		for model, r := range sc.ranges {
			seedDetectorView(h, model, r[0], r[1])
		}
		q := rangeDNF(t, sc.qLo, sc.qHi)
		cands := h.cat.UDFsForLogical("ObjectDetector", vision.AccuracyLow)
		greedySources := h.opt.selectPhysicalUDFs("video", cands[0], cands, []expr.Expr{expr.NewColumn("frame")}, q, stats, EVAMode())

		greedyCost := coverCost(h, greedySources, q, stats)
		bestCost := math.Inf(1)
		// Enumerate every subset (in both orders of inclusion the cost
		// model is order-insensitive for disjoint remainder handling).
		n := len(cands)
		for mask := 0; mask < 1<<n; mask++ {
			var sources []string
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					sources = append(sources, cands[i].Name)
				}
			}
			c := coverCostNames(h, sources, q, stats)
			if c < bestCost {
				bestCost = c
			}
		}
		if greedyCost > bestCost*1.4+1e-9 {
			t.Errorf("%s: greedy cost %.1f exceeds 1.4× optimal %.1f", sc.name, greedyCost, bestCost)
		}
	}
}

func mustStats(t *testing.T, h *harness) symbolic.Stats {
	t.Helper()
	table, err := h.cat.Table("video")
	if err != nil {
		t.Fatal(err)
	}
	return table.Stats
}

func rangeDNF(t *testing.T, lo, hi int64) symbolic.DNF {
	t.Helper()
	e := expr.NewAnd(
		expr.NewCmp(expr.OpGe, expr.NewColumn("id"), expr.NewConst(types.NewInt(lo))),
		expr.NewCmp(expr.OpLt, expr.NewColumn("id"), expr.NewConst(types.NewInt(hi))),
	)
	d, err := symbolic.FromExpr(e)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func coverCost(h *harness, sources []plan.ApplySource, q symbolic.DNF, stats symbolic.Stats) float64 {
	names := make([]string, len(sources))
	for i, s := range sources {
		names[i] = s.UDF
	}
	return coverCostNames(h, names, q, stats)
}

// coverCostNames scores a view-selection plan: reading each selected
// view costs c_r per covered tuple (plus wasted reads outside q), and
// the uncovered remainder is evaluated by the cheapest model.
func coverCostNames(h *harness, models []string, q symbolic.DNF, stats symbolic.Stats) float64 {
	const totalRows = 14000.0
	crSec := 0.001 // TableViewReadCost
	cheapest := 0.009
	rem := q
	cost := 0.0
	for _, m := range models {
		sig := udf.NewSignature("video", m, []expr.Expr{expr.NewColumn("frame")})
		entry := h.mgr.Lookup(sig)
		covered := symbolic.Selectivity(symbolic.Inter(entry.Agg, rem), stats)
		selView := symbolic.Selectivity(entry.Agg, stats)
		if covered <= 0 {
			continue
		}
		cost += crSec * selView * totalRows
		rem = symbolic.Diff(entry.Agg, rem)
	}
	cost += cheapest * symbolic.Selectivity(rem, stats) * totalRows
	return cost
}
