package optimizer

import (
	"testing"

	"eva/internal/vision"
)

// TestReductionAblationCorrectness: with Algorithm 1 disabled the
// system stays correct (view probing is exact) but the aggregated
// predicates and derived formulas grow unboundedly across refinements.
func TestReductionAblationCorrectness(t *testing.T) {
	queries := []string{
		"SELECT id FROM video CROSS APPLY FasterRCNNResnet50(frame) WHERE id < 120 AND label = 'car' AND CarType(frame, bbox) = 'Nissan'",
		"SELECT id FROM video CROSS APPLY FasterRCNNResnet50(frame) WHERE id < 160 AND label = 'car' AND CarType(frame, bbox) = 'Nissan'",
		"SELECT id FROM video CROSS APPLY FasterRCNNResnet50(frame) WHERE id >= 60 AND id < 200 AND label = 'car' AND CarType(frame, bbox) = 'Toyota'",
		"SELECT id FROM video CROSS APPLY FasterRCNNResnet50(frame) WHERE id < 200 AND label = 'car' AND CarType(frame, bbox) = 'Nissan'",
	}
	withReduction := newHarness(t, vision.MediumUADetrac)
	withoutReduction := newHarness(t, vision.MediumUADetrac)
	modeOn := EVAMode()
	modeOff := EVAMode()
	modeOff.DisableReduction = true

	var atomsOn, atomsOff int
	for _, q := range queries {
		a, resOn := withReduction.run(t, q, modeOn)
		b, resOff := withoutReduction.run(t, q, modeOff)
		if a.Len() != b.Len() {
			t.Fatalf("ablation changed results on %q: %d vs %d", q, a.Len(), b.Len())
		}
		for _, info := range resOn.Report.Preds {
			atomsOn += info.UnionAtoms
		}
		for _, info := range resOff.Report.Preds {
			atomsOff += info.UnionAtoms
		}
	}
	if atomsOff <= atomsOn {
		t.Errorf("disabling reduction should grow formulas: on=%d off=%d", atomsOn, atomsOff)
	}
	// Reuse behaviour is identical either way (probing is key-exact).
	on := withReduction.rt.CounterSnapshot()["fasterrcnnresnet50"]
	off := withoutReduction.rt.CounterSnapshot()["fasterrcnnresnet50"]
	if on.Evaluated != off.Evaluated || on.Reused != off.Reused {
		t.Errorf("ablation changed reuse: on=%+v off=%+v", on, off)
	}
}

// TestJoinTermAblation verifies Eq. 3/Eq. 4's c_r term: with a view
// fully covering one UDF, the materialization-aware rank approaches
// (s−1)/c_r, which must still order a fully-covered expensive UDF
// ahead of an uncovered cheap one.
func TestJoinTermAblation(t *testing.T) {
	h := newHarness(t, vision.MediumUADetrac)
	warm := `SELECT id FROM video CROSS APPLY FasterRCNNResnet50(frame)
		WHERE id < 150 AND label = 'car' AND License(frame, bbox) = 'XYZ60'`
	h.run(t, warm, EVAMode())
	// License (15 ms, fully covered) vs ColorDet (5 ms, uncovered):
	// canonical ranking would run ColorDet first; the materialization-
	// aware rank divides License's cost by its ≈0 difference
	// selectivity plus c_r, putting License first.
	both := `SELECT id FROM video CROSS APPLY FasterRCNNResnet50(frame)
		WHERE id < 150 AND label = 'car' AND License(frame, bbox) = 'XYZ60'
		AND ColorDet(frame, bbox) = 'Gray'`
	_, res := h.run(t, both, EVAMode())
	if len(res.Report.Order) != 2 || res.Report.Order[0] != "License" {
		t.Errorf("order = %v, want License first (covered view)", res.Report.Order)
	}
	info := res.Report.Preds["video.license[bbox,frame]"]
	if info.RelDiff > 0.15 {
		t.Errorf("license relDiff = %v, want ≈ 0 (fully covered)", info.RelDiff)
	}
}
