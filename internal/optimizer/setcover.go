package optimizer

import (
	"eva/internal/catalog"
	"eva/internal/costs"
	"eva/internal/expr"
	"eva/internal/plan"
	"eva/internal/symbolic"
	"eva/internal/udf"
)

// selectPhysicalUDFs implements Algorithm 2: the greedy weighted
// set-cover selection of physical UDF views for a logical vision task
// (Theorem 4.2). Candidates are the physical UDFs satisfying the
// accuracy constraint; the universe is the set of tuples matching the
// invocation predicate q; each view's covered set is approximated
// symbolically by the selectivity of INTER(p_x, q); and the weight is
// the cost of reading the view. Views are picked while their cost per
// uncovered tuple beats evaluating the cheapest physical UDF.
func (o *Optimizer) selectPhysicalUDFs(table string, eval *catalog.UDF, cands []*catalog.UDF, args []expr.Expr, q symbolic.DNF, stats symbolic.Stats, mode Mode) []plan.ApplySource {
	type cand struct {
		def *catalog.UDF
		sig udf.Signature
		agg symbolic.DNF
	}
	var xs []cand
	for _, def := range cands {
		sig := udf.NewSignature(table, def.Name, args)
		xs = append(xs, cand{def: def, sig: sig, agg: o.Mgr.AggOf(sig)})
	}
	// The alternative to reading a view is evaluating the chosen model:
	// its per-tuple cost (line 3), retry-adjusted so a flaky evaluator
	// makes view reuse comparatively more attractive.
	cy := o.evalCost(eval)
	cr := costs.TableViewReadCost.Seconds()

	var out []plan.ApplySource
	chosen := map[string]bool{}
	rem := q
	for iter := 0; iter < len(xs); iter++ {
		selRem := symbolic.Selectivity(rem, stats)
		if rem.IsFalse() || selRem < 1e-6 {
			break
		}
		bestIdx, bestW := -1, 0.0
		for i, x := range xs {
			if chosen[x.sig.Key()] {
				continue
			}
			inter := mode.inter(x.agg, rem)
			covered := symbolic.Selectivity(inter, stats)
			if covered < 1e-9 {
				continue
			}
			// W(x, q) = C(m_x) / (s_{p∩} · |m_x|) (line 6). With the
			// per-key read cost c_r, C(m_x) over the covered keys is
			// c_r · covered·|R|, so the cost *per uncovered tuple* is
			// c_r scaled by how much of the view read is wasted on
			// tuples outside q.
			selView := symbolic.Selectivity(x.agg, stats)
			w := cr * selView / covered
			if bestIdx < 0 || w < bestW {
				bestIdx, bestW = i, w
			}
		}
		if bestIdx < 0 || bestW >= cy {
			// Running the cheapest UDF is better for the remainder
			// (lines 11–13).
			break
		}
		x := xs[bestIdx]
		chosen[x.sig.Key()] = true
		out = append(out, plan.ApplySource{UDF: x.def.Name, ViewName: x.sig.ViewName()})
		rem = mode.diff(x.agg, rem)
	}
	return out
}

// rewriteComputed substitutes already-computed UDF calls (keyed by
// their canonical rendering) with their output columns.
func rewriteComputed(e expr.Expr, computed map[string]string) expr.Expr {
	return expr.Rewrite(e, func(n expr.Expr) expr.Expr {
		if c, ok := n.(*expr.Call); ok {
			if col, ok := computed[c.String()]; ok {
				return expr.NewColumn(col)
			}
		}
		return n
	})
}

// hasExpensiveScalarCall reports whether the expression still contains
// an expensive scalar UDF invocation.
func (o *Optimizer) hasExpensiveScalarCall(e expr.Expr) bool {
	for _, call := range expr.CollectCalls(e) {
		u, err := o.Cat.UDF(call.Fn)
		if err != nil {
			continue
		}
		if u.Expensive && u.Kind == catalog.KindScalarUDF {
			return true
		}
	}
	return false
}
