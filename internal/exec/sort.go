package exec

import (
	"fmt"
	"sort"

	"eva/internal/costs"
	"eva/internal/plan"
	"eva/internal/simclock"
	"eva/internal/types"
)

// sortIter is the blocking Sort operator: it drains its input,
// orders rows by the sort keys (NULLs first, per the datum ordering),
// and emits one batch.
type sortIter struct {
	ctx  *Context
	in   iterator
	node *plan.Sort
	done bool
}

func (s *sortIter) next() (*types.Batch, error) {
	if s.done {
		return nil, nil
	}
	s.done = true

	// The sort buffer is a materialization point: every input batch
	// stays resident until the output is built, so its encoded size is
	// charged to the query's memory budget. Sort cannot degrade (it
	// must see all rows), so a failed charge aborts the query.
	var reserved int64
	all := s.ctx.getBatch(s.node.Schema())
	for {
		b, err := s.in.next()
		if err != nil {
			s.ctx.Budget.Release(reserved)
			s.ctx.putBatch(all)
			return nil, err
		}
		if b == nil {
			break
		}
		if sz := int64(b.EncodedSize()); !s.ctx.Budget.Charge(sz) {
			s.ctx.Budget.Release(reserved)
			s.ctx.putBatch(all)
			return nil, fmt.Errorf("exec: sort: %w", s.ctx.Budget.Exceeded("sort buffer", sz))
		} else {
			reserved += sz
		}
		if err := all.AppendBatch(b); err != nil {
			s.ctx.Budget.Release(reserved)
			s.ctx.putBatch(all)
			return nil, fmt.Errorf("exec: sort: %w", err)
		}
		// AppendBatch copies rows into the sort buffer, so the drained
		// input batch can go straight back to the pool.
		s.ctx.putBatch(b)
	}
	defer s.ctx.Budget.Release(reserved)
	s.ctx.Clock.ChargePerTuple(simclock.CatOther, costs.RowCost, all.Len())

	keyIdx := make([]int, len(s.node.Keys))
	for i, k := range s.node.Keys {
		keyIdx[i] = all.Schema().IndexOf(k.Col)
		if keyIdx[i] < 0 {
			err := fmt.Errorf("exec: sort key %q not in %s", k.Col, all.Schema())
			s.ctx.putBatch(all)
			return nil, err
		}
	}

	order := make([]int, all.Len())
	for i := range order {
		order[i] = i
	}
	var sortErr error
	sort.SliceStable(order, func(a, b int) bool {
		for i, idx := range keyIdx {
			da, db := all.At(order[a], idx), all.At(order[b], idx)
			if !types.Comparable(da, db) {
				if sortErr == nil {
					sortErr = fmt.Errorf("exec: sort key %q mixes incomparable kinds", s.node.Keys[i].Col)
				}
				return false
			}
			c := types.Compare(da, db)
			if c == 0 {
				continue
			}
			if s.node.Keys[i].Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	if sortErr != nil {
		s.ctx.putBatch(all)
		return nil, sortErr
	}

	out := s.ctx.getBatch(s.node.Schema())
	var row []types.Datum
	for _, r := range order {
		row = all.AppendRowTo(row[:0], r)
		out.MustAppendRow(row...)
	}
	s.ctx.putBatch(all)
	return out, nil
}
