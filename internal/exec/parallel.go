package exec

// Parallel pipelined execution (DESIGN.md §10). With Context.Workers
// above one, the executor runs in two cooperating modes:
//
//   - pipeline stages: the inputs of Filter, ReuseApply, GroupBy and
//     Sort are decoupled behind bounded channels, so a scan can decode
//     the next batch while the filter above it evaluates predicates and
//     the apply above that runs UDFs (the Volcano tree becomes a short
//     pipeline of single-producer stages);
//   - parallel apply: within one batch, the conditional-Apply operator
//     evaluates the UDF invocations its probe phase could not serve
//     from a view across a bounded worker pool, then merges results in
//     row order.
//
// Determinism contract: results, reports and virtual-clock totals are
// byte-identical at every worker count. Order preservation comes from
// single-producer stages (batch order) plus the apply operator's
// serial probe/assemble phases (row order). Virtual-time invariance
// comes from charging exactly the serial set of modeled costs: stage
// producers perform exactly the pulls the serial engine would (stages
// are never inserted under a Limit, whose early exit would otherwise
// let a producer prefetch — and charge for — batches the serial engine
// never reads; nor under fault injection or a query deadline, whose
// aborts could do the same), and the worker pool evaluates exactly the
// rows the serial engine would. Sums of charges commute, so scheduling
// order cannot change any total. The one exception is a failing query:
// the pool may have evaluated (and charged for) rows past the first
// error before the abort propagates; the query's results are discarded
// either way.
//
// The contract extends to fault-injected runs: fault decisions are
// pure functions of (seed, site, call identity) rather than draws from
// a shared stream (see internal/faults), the apply operator assigns
// identities at a serial point (the probe phase), breaker admission is
// frozen per batch (udf.HealthSnapshot), and breaker outcomes are
// committed in serial row order during assembly (udf.OutcomeSink), so
// the injected schedule, retry charges, breaker trips and degradation
// triggers are identical at every worker count.

import (
	"sync"
	"sync/atomic"

	"eva/internal/plan"
	"eva/internal/types"
)

// DefaultPipelineDepth is the number of in-flight batches buffered at
// each pipeline stage boundary. Small on purpose: one batch hides the
// producer's latency, a second absorbs jitter, and anything more only
// grows memory for speculative decode with no throughput gain.
const DefaultPipelineDepth = 2

// workers returns the effective evaluation concurrency for this
// execution: Context.Workers, floored at 1. Fault injection and the
// FunCache baseline no longer pin execution serial — fault decisions
// are keyed by call identity instead of draw order (internal/faults),
// and FunCache's singleflight makes its eval/store accounting
// order-independent — though fault-injected and deadline-bounded runs
// do forgo pipeline *stages* (see maybeStage).
func (c *Context) workers() int {
	if c.Workers <= 1 {
		return 1
	}
	return c.Workers
}

// warmSchemas populates every plan node's lazily memoized schema
// bottom-up before any pipeline goroutine starts. The memoization in
// internal/plan is unsynchronized — fine while the plan tree is
// touched by one goroutine, a data race once stage producers call
// Schema() concurrently with the consumer.
func warmSchemas(n plan.Node) {
	for _, child := range n.Children() {
		warmSchemas(child)
	}
	n.Schema()
}

// stageMsg carries one producer step across a stage boundary.
type stageMsg struct {
	b   *types.Batch
	err error
}

// stageIter decouples a producer subtree from its consumer: a
// goroutine pulls batches from the input and buffers up to
// DefaultPipelineDepth of them, preserving batch order (single
// producer, single FIFO channel). The producer stops at end of stream,
// at the first error, or when halted by stopStages.
type stageIter struct {
	out    chan stageMsg
	stop   chan struct{}
	exited chan struct{}
	once   sync.Once
	done   bool
}

// startStage launches a pipeline stage over in and registers it on the
// Context for end-of-Run cleanup.
func (c *Context) startStage(in iterator) *stageIter {
	s := &stageIter{
		out:    make(chan stageMsg, DefaultPipelineDepth),
		stop:   make(chan struct{}),
		exited: make(chan struct{}),
	}
	c.stages = append(c.stages, s)
	go func() {
		defer close(s.exited)
		defer close(s.out)
		for {
			b, err := in.next()
			select {
			case s.out <- stageMsg{b: b, err: err}:
			case <-s.stop:
				return
			}
			if b == nil || err != nil {
				return
			}
		}
	}()
	return s
}

func (s *stageIter) next() (*types.Batch, error) {
	if s.done {
		return nil, nil
	}
	m, ok := <-s.out
	if !ok {
		// Producer halted before delivering end-of-stream (only
		// possible after stopStages); report a clean end.
		s.done = true
		return nil, nil
	}
	if m.b == nil || m.err != nil {
		s.done = true
	}
	return m.b, m.err
}

// halt tells the producer to stop pulling; buffered batches are
// discarded. Idempotent.
func (s *stageIter) halt() { s.once.Do(func() { close(s.stop) }) }

// maybeStage wraps in with a pipeline stage when parallel execution is
// enabled and nothing could abandon the stream early: a prefetching
// producer under a Limit, an injected fault, or a query deadline would
// charge the virtual clock for batches the serial engine never pulls
// (the serial engine stops at the first error; a stage producer races
// ahead of it), breaking worker-count invariance of the simulated
// totals. Fault-injected and deadline-bounded runs therefore keep the
// parallel apply worker pool but run the operator tree unstaged, as do
// memory-budgeted runs (a prefetching producer would charge the budget
// for batches the serial engine has not admitted yet, making degrade
// decisions depend on scheduling) and multi-session runs (claim
// acquisition and per-batch publication are serial protocol points).
func (c *Context) maybeStage(in iterator) iterator {
	if c.workers() <= 1 || c.noPipeline > 0 || c.Faults != nil || c.Deadline > 0 ||
		c.Budget != nil || c.Sessions {
		return in
	}
	return c.startStage(in)
}

// stopStages halts every pipeline stage of the current Run and waits
// for the producers to exit, so no goroutine outlives the query and no
// clock charge lands after Run returns. Halting is deadlock-free
// bottom-up: a producer blocked on a full channel observes stop, and a
// producer blocked pulling from a nested stage is released when that
// stage's producer exits and closes its channel.
func (c *Context) stopStages() {
	for _, s := range c.stages {
		s.halt()
	}
	for _, s := range c.stages {
		<-s.exited
	}
	c.stages = nil
}

// runParallel invokes fn(worker, i) for every i in [0, n), spreading
// calls across at most workers goroutines and blocking until all
// complete. Callers give each index a disjoint result slot, so fn
// needs no locking of its own; the worker argument (0-based, stable
// per goroutine) lets callers hand each goroutine private scratch
// space, which is how the apply operator's eval loop stays off the
// heap. With one worker it degenerates to an inline loop — the serial
// engine's exact code path, always worker 0.
func runParallel(workers, n int, fn func(worker, i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(w, i)
			}
		}(w)
	}
	wg.Wait()
}
