package exec

import (
	"testing"
	"time"

	"eva/internal/catalog"
	"eva/internal/expr"
	"eva/internal/plan"
	"eva/internal/server"
	"eva/internal/storage"
	"eva/internal/types"
	"eva/internal/vision"
)

func detectorNode(lo, hi int64) *plan.ReuseApply {
	return &plan.ReuseApply{
		Input:     scan(lo, hi),
		Args:      []expr.Expr{colx("frame")},
		Sources:   []plan.ApplySource{{UDF: vision.FasterRCNN50, ViewName: "det_view"}},
		Eval:      vision.FasterRCNN50,
		StoreView: "det_view",
		TableUDF:  true,
		Out:       catalog.DetectorSchema,
		KeyCols:   []string{"id"},
	}
}

// publishDetRows appends one synthetic detection per frame id in
// [lo, hi) to the store view, standing in for a concurrent session
// publishing its results. Reports the first failure via t.Error so it
// is safe to call off the test goroutine.
func publishDetRows(t *testing.T, v *storage.View, lo, hi int64) {
	rows := types.NewBatch(v.Schema())
	for id := lo; id < hi; id++ {
		if err := rows.AppendRow(
			types.NewInt(id),
			types.NewString("car"),
			types.NewString("0,0,10,10"),
			types.NewFloat(0.9),
			types.NewFloat(100),
		); err != nil {
			t.Error(err)
			return
		}
	}
	if _, err := v.Append(rows, nil); err != nil {
		t.Error(err)
	}
}

// TestSessionsRunPublishesEveryBatch drives the full session-mode apply
// path: the store view joins the probe set, every key is claimed before
// evaluation, and results publish at each batch boundary so a second
// run serves everything from the view.
func TestSessionsRunPublishesEveryBatch(t *testing.T) {
	ctx := testCtx(t, vision.MediumUADetrac)
	ctx.Sessions = true
	ctx.BatchSize = 4
	first, err := Run(ctx, detectorNode(0, 12))
	if err != nil {
		t.Fatal(err)
	}
	stats := ctx.Runtime.CounterSnapshot()["fasterrcnnresnet50"]
	if stats.Evaluated != 12 || stats.Reused != 0 {
		t.Fatalf("first session run stats = %+v", stats)
	}
	v := ctx.Store.View("det_view")
	if v == nil || v.ProcessedCount() != 12 {
		t.Fatalf("store view not published: %v", v)
	}
	second, err := Run(ctx, detectorNode(0, 12))
	if err != nil {
		t.Fatal(err)
	}
	stats = ctx.Runtime.CounterSnapshot()["fasterrcnnresnet50"]
	if stats.Evaluated != 12 || stats.Reused != 12 {
		t.Fatalf("second session run stats = %+v", stats)
	}
	if first.Len() != second.Len() {
		t.Fatalf("rows differ across session reuse: %d vs %d", first.Len(), second.Len())
	}
}

// TestSessionsReprobeServesPublishedRows exercises the re-probe step in
// isolation: after a concurrent session publishes rows for a prefix of
// the batch's keys, reprobe must serve exactly those rows and leave the
// rest queued for evaluation.
func TestSessionsReprobeServesPublishedRows(t *testing.T) {
	ctx := testCtx(t, vision.MediumUADetrac)
	ctx.Sessions = true
	it, err := build(ctx, detectorNode(0, 8))
	if err != nil {
		t.Fatal(err)
	}
	a := it.(*applyIter)
	b, err := a.in.next()
	if err != nil || b == nil || b.Len() != 8 {
		t.Fatalf("input batch: %v, %v", b, err)
	}
	decisions := a.probePhase(b)
	if keys := a.unservedKeys(decisions); len(keys) != 8 {
		t.Fatalf("unserved keys = %d, want 8", len(keys))
	}
	publishDetRows(t, ctx.Store.View("det_view"), 0, 3)
	a.reprobe(b, decisions)
	served := 0
	for r := range decisions {
		if decisions[r].served {
			if len(decisions[r].viewRows) == 0 {
				t.Errorf("row %d served with no view rows", r)
			}
			served++
		}
	}
	if served != 3 {
		t.Errorf("reprobe served %d rows, want 3", served)
	}
	if rest := a.unservedKeys(decisions); len(rest) != 5 {
		t.Errorf("unserved after reprobe = %d, want 5", len(rest))
	}
}

// TestSessionsClaimWaitsForHolder pits claimPhase against a conflicting
// claim held by the test: the phase must wait — holding no claims of
// its own — until the holder publishes and releases, then serve the
// published rows on re-probe instead of re-evaluating them.
func TestSessionsClaimWaitsForHolder(t *testing.T) {
	ctx := testCtx(t, vision.MediumUADetrac)
	ctx.Sessions = true
	it, err := build(ctx, detectorNode(0, 4))
	if err != nil {
		t.Fatal(err)
	}
	a := it.(*applyIter)
	b, err := a.in.next()
	if err != nil || b == nil {
		t.Fatalf("input batch: %v, %v", b, err)
	}
	decisions := a.probePhase(b)
	keys := a.unservedKeys(decisions)
	v := ctx.Store.View("det_view")
	granted, _ := v.ClaimKeys(keys)
	if !granted {
		t.Fatal("claim on a fresh view not granted")
	}
	// The holder publishes and releases while claimPhase waits.
	timer := time.AfterFunc(50*time.Millisecond, func() {
		publishDetRows(t, v, 0, 4)
		v.ReleaseKeys(keys)
	})
	defer timer.Stop()
	a.claimPhase(b, decisions)
	// Every row is either served from the published rows (the holder
	// won the race to the claim table) or claimed for evaluation.
	for r := range decisions {
		if !decisions[r].served && len(a.claimed) == 0 {
			t.Fatalf("row %d neither served nor claimed", r)
		}
	}
	a.releaseClaims()
}

// TestStagedViewRowsChargeAndDegrade covers the view-staging charge
// point: a budget with room for the scan batch but not the staged view
// rows must degrade by flushing early — never aborting — while a
// generous budget holds the staging reservation to the end.
func TestStagedViewRowsChargeAndDegrade(t *testing.T) {
	// Size the budget from a measurement run: one full scan batch plus a
	// sliver, so the scan charge fits and the staging charge cannot.
	measured := testCtx(t, vision.MediumUADetrac)
	mit, err := build(measured, scan(0, 64))
	if err != nil {
		t.Fatal(err)
	}
	var maxBatch int64
	for {
		mb, err := mit.next()
		if err != nil {
			t.Fatal(err)
		}
		if mb == nil {
			break
		}
		if sz := int64(mb.EncodedSize()); sz > maxBatch {
			maxBatch = sz
		}
	}

	ctx := testCtx(t, vision.MediumUADetrac)
	bud := server.NewMemBudget(maxBatch + 64)
	ctx.Budget = bud
	out, err := Run(ctx, detectorNode(0, 64))
	if err != nil {
		t.Fatalf("staging breach aborted instead of degrading: %v", err)
	}
	if out.Len() == 0 {
		t.Fatal("degraded apply produced no rows")
	}
	if bud.Degrades() == 0 {
		t.Error("tight budget recorded no staging degradation")
	}
	if bud.Peak() > bud.Limit() {
		t.Errorf("peak %d exceeded limit %d", bud.Peak(), bud.Limit())
	}
	if v := ctx.Store.View("det_view"); v == nil || v.Rows() == 0 {
		t.Error("early flush left no rows in the store view")
	}

	ctx2 := testCtx(t, vision.MediumUADetrac)
	bud2 := server.NewMemBudget(1 << 30)
	ctx2.Budget = bud2
	out2, err := Run(ctx2, detectorNode(0, 64))
	if err != nil || out2.Len() != out.Len() {
		t.Fatalf("funded apply rows = %v, %v (want %d)", out2, err, out.Len())
	}
	if bud2.Degrades() != 0 {
		t.Errorf("funded apply degraded %d times", bud2.Degrades())
	}
}
