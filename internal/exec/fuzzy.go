package exec

import (
	"math"
	"time"

	"eva/internal/simclock"
	"eva/internal/storage"
	"eva/internal/types"
	"eva/internal/vision"
)

// Fuzzy bounding-box reuse (§6 extension). Different physical
// detectors box the same object slightly differently, so scalar UDF
// results keyed by (bbox, id) never match exactly across models. When
// enabled, a missed exact probe falls back to the spatially nearest
// stored bbox on the same frame, within FuzzyTolerance of center
// distance. The reuse is approximate by construction — the classifiers
// themselves are tolerant of small box shifts — and is off by default.

// FuzzyTolerance is the maximum normalized center distance between two
// bounding boxes considered "the same object".
const FuzzyTolerance = 0.02

// fuzzyEntry is one stored bbox on a frame.
type fuzzyEntry struct {
	cx, cy float64
	rowIdx int
}

// fuzzyIndex maps frame id → stored bboxes, built once per view
// snapshot at iterator creation. rowIdx values index into the captured
// snapshot, which stays valid because views are append-only.
type fuzzyIndex struct {
	byFrame map[int64][]fuzzyEntry
	batch   *types.Batch
}

// buildFuzzyIndex indexes the view's rows by frame id and bbox center.
// idCol/bboxCol are positions of the key columns in the view schema.
func buildFuzzyIndex(view *storage.View, idCol, bboxCol int) *fuzzyIndex {
	batch := view.Scan()
	idx := &fuzzyIndex{byFrame: map[int64][]fuzzyEntry{}, batch: batch}
	for r := 0; r < batch.Len(); r++ {
		idD := batch.At(r, idCol)
		bboxD := batch.At(r, bboxCol)
		if idD.IsNull() || bboxD.IsNull() {
			continue
		}
		x, y, w, h, err := vision.ParseBBox(bboxD.Str())
		if err != nil {
			continue
		}
		f := idD.Int()
		idx.byFrame[f] = append(idx.byFrame[f], fuzzyEntry{cx: x + w/2, cy: y + h/2, rowIdx: r})
	}
	return idx
}

// lookup finds the stored row whose bbox center is nearest to the
// probe bbox on the same frame, if within tolerance.
func (f *fuzzyIndex) lookup(frame int64, bbox string) (int, bool) {
	entries := f.byFrame[frame]
	if len(entries) == 0 {
		return 0, false
	}
	x, y, w, h, err := vision.ParseBBox(bbox)
	if err != nil {
		return 0, false
	}
	cx, cy := x+w/2, y+h/2
	best, bestDist := -1, math.Inf(1)
	for _, e := range entries {
		d := math.Hypot(cx-e.cx, cy-e.cy)
		if d < bestDist {
			best, bestDist = e.rowIdx, d
		}
	}
	if bestDist > FuzzyTolerance {
		return 0, false
	}
	return best, true
}

// serveFuzzy attempts the fuzzy fallback for input row r: if a stored
// result for a nearby bbox on the same frame exists in any source
// view, return it as this row's output rows. Used only for scalar
// UDFs; called from the serial probe phase.
func (a *applyIter) serveFuzzy(b *types.Batch, r int, readCost time.Duration) ([][]types.Datum, bool) {
	idIdx := b.Schema().IndexOf("id")
	bboxIdx := b.Schema().IndexOf("bbox")
	if idIdx < 0 || bboxIdx < 0 {
		return nil, false
	}
	frame := b.At(r, idIdx)
	bbox := b.At(r, bboxIdx)
	if frame.IsNull() || bbox.IsNull() {
		return nil, false
	}
	for i, fi := range a.fuzzy {
		rowIdx, ok := fi.lookup(frame.Int(), bbox.Str())
		if !ok {
			continue
		}
		view := a.sources[i]
		vb := fi.batch
		nKey := len(a.node.KeyCols)
		row := b.Row(r)
		for c := nKey; c < len(view.Schema()); c++ {
			row = append(row, vb.At(rowIdx, c))
		}
		a.ctx.Runtime.RecordReuse(a.node.Eval)
		a.ctx.Clock.Charge(simclock.CatReadView, readCost)
		return [][]types.Datum{row}, true
	}
	return nil, false
}

// fuzzyKeyPositions locates the id and bbox columns within the key
// columns; fuzzy matching requires both.
func fuzzyKeyPositions(keyCols []string, schema types.Schema) (idCol, bboxCol int, ok bool) {
	idCol, bboxCol = -1, -1
	for _, kc := range keyCols {
		switch kc {
		case "id":
			idCol = schema.IndexOf("id")
		case "bbox":
			bboxCol = schema.IndexOf("bbox")
		}
	}
	return idCol, bboxCol, idCol >= 0 && bboxCol >= 0
}
