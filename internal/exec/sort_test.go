package exec

import (
	"testing"

	"eva/internal/plan"
	"eva/internal/vision"
)

func TestSortAscDesc(t *testing.T) {
	ctx := testCtx(t, vision.Jackson)
	node := &plan.Sort{Input: scan(0, 10), Keys: []plan.SortKey{{Col: "id", Desc: true}}}
	out, err := Run(ctx, node)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 10 || out.At(0, 0).Int() != 9 || out.At(9, 0).Int() != 0 {
		t.Errorf("desc sort wrong: first=%v last=%v", out.At(0, 0), out.At(9, 0))
	}
	node = &plan.Sort{Input: scan(0, 10), Keys: []plan.SortKey{{Col: "id"}}}
	out, err = Run(ctx, node)
	if err != nil || out.At(0, 0).Int() != 0 {
		t.Errorf("asc sort wrong: %v, %v", out.At(0, 0), err)
	}
}

func TestSortMultiKeyOverDetections(t *testing.T) {
	ctx := testCtx(t, vision.MediumUADetrac)
	det := detectorApply(0, 10, vision.FasterRCNN50)
	node := &plan.Sort{Input: det, Keys: []plan.SortKey{
		{Col: "label"},
		{Col: "area", Desc: true},
	}}
	out, err := Run(ctx, node)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() < 2 {
		t.Skip("too few detections")
	}
	labelIdx := out.Schema().IndexOf("label")
	areaIdx := out.Schema().IndexOf("area")
	for r := 1; r < out.Len(); r++ {
		prev, cur := out.At(r-1, labelIdx).Str(), out.At(r, labelIdx).Str()
		if prev > cur {
			t.Fatalf("row %d: labels out of order %q > %q", r, prev, cur)
		}
		if prev == cur && out.At(r-1, areaIdx).Float() < out.At(r, areaIdx).Float() {
			t.Fatalf("row %d: areas out of order within label", r)
		}
	}
}

func TestSortErrors(t *testing.T) {
	ctx := testCtx(t, vision.Jackson)
	node := &plan.Sort{Input: scan(0, 5), Keys: []plan.SortKey{{Col: "ghost"}}}
	if _, err := Run(ctx, node); err == nil {
		t.Error("unknown sort key should error")
	}
	// Empty input sorts to empty output.
	empty := &plan.Sort{Input: scan(3, 3), Keys: []plan.SortKey{{Col: "id"}}}
	out, err := Run(ctx, empty)
	if err != nil || out.Len() != 0 {
		t.Errorf("empty sort: %d rows, %v", out.Len(), err)
	}
}
