package exec

import (
	"errors"
	"testing"

	"eva/internal/plan"
	"eva/internal/server"
	"eva/internal/vision"
)

// measureScan drains a plain scan with no budget, returning the total
// row count and the largest single-batch encoded size it produced.
func measureScan(t *testing.T, hi int64) (rows int, maxBatch int64) {
	t.Helper()
	ctx := testCtx(t, vision.Jackson)
	it, err := build(ctx, scan(0, hi))
	if err != nil {
		t.Fatal(err)
	}
	for {
		b, err := it.next()
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			return rows, maxBatch
		}
		rows += b.Len()
		if sz := int64(b.EncodedSize()); sz > maxBatch {
			maxBatch = sz
		}
	}
}

// TestScanBudgetDegradesBeforeAbort is the executable form of the
// degrade-before-abort contract: a budget one byte too small for a
// full-width scan batch must shrink the batch (recording the
// degradation) and still return every row; only a budget below the
// floor-width batch aborts, and then with the typed ErrMemoryBudget.
func TestScanBudgetDegradesBeforeAbort(t *testing.T) {
	wantRows, maxBatch := measureScan(t, 200)
	if wantRows == 0 || maxBatch == 0 {
		t.Fatalf("measurement run empty: rows=%d maxBatch=%d", wantRows, maxBatch)
	}

	// One byte under a full batch: the scan must halve its width, note
	// the degradation, and complete with identical cardinality.
	ctx := testCtx(t, vision.Jackson)
	bud := server.NewMemBudget(maxBatch - 1)
	ctx.Budget = bud
	out, err := Run(ctx, scan(0, 200))
	if err != nil {
		t.Fatalf("degraded scan failed instead of shrinking: %v", err)
	}
	if out.Len() != wantRows {
		t.Errorf("degraded scan rows = %d, want %d", out.Len(), wantRows)
	}
	if bud.Degrades() == 0 {
		t.Error("budget one byte under a full batch recorded no degradation")
	}
	if bud.Peak() > bud.Limit() {
		t.Errorf("peak %d exceeded limit %d", bud.Peak(), bud.Limit())
	}

	// A budget below any batch at the floor width cannot be satisfied
	// by degrading: the query aborts with the typed error.
	ctx2 := testCtx(t, vision.Jackson)
	ctx2.Budget = server.NewMemBudget(1)
	if _, err := Run(ctx2, scan(0, 200)); !errors.Is(err, server.ErrMemoryBudget) {
		t.Errorf("floor-width breach error = %v, want ErrMemoryBudget", err)
	}
}

// TestSortBudgetAborts: a blocking sort cannot degrade — it must hold
// its whole input — so a budget smaller than the input aborts with the
// typed error, while an adequate one sorts normally and releases its
// reservation.
func TestSortBudgetAborts(t *testing.T) {
	sortPlan := func() plan.Node {
		return &plan.Sort{Input: scan(0, 100), Keys: []plan.SortKey{{Col: "id", Desc: true}}}
	}

	ctx := testCtx(t, vision.Jackson)
	ctx.Budget = server.NewMemBudget(64) // far below 100 rows of frames
	if _, err := Run(ctx, sortPlan()); !errors.Is(err, server.ErrMemoryBudget) {
		t.Errorf("undersized sort error = %v, want ErrMemoryBudget", err)
	}

	ctx2 := testCtx(t, vision.Jackson)
	bud := server.NewMemBudget(1 << 30)
	ctx2.Budget = bud
	out, err := Run(ctx2, sortPlan())
	if err != nil || out.Len() != 100 {
		t.Fatalf("funded sort: rows = %v, %v", out, err)
	}
	if out.At(0, 0).Int() != 99 {
		t.Errorf("sort order wrong: first id = %d, want 99", out.At(0, 0).Int())
	}
	if bud.Peak() == 0 {
		t.Error("funded sort charged nothing to the budget")
	}
}
