package exec

import (
	"errors"
	"testing"
	"time"

	"eva/internal/costs"
	"eva/internal/expr"
	"eva/internal/faults"
	"eva/internal/plan"
	"eva/internal/vision"
)

func TestDeadlineUnlimitedByDefault(t *testing.T) {
	ctx := testCtx(t, vision.Jackson)
	out, err := Run(ctx, scan(0, 1000))
	if err != nil || out.Len() != 1000 {
		t.Fatalf("rows=%d err=%v", out.Len(), err)
	}
}

func TestDeadlineExpiresMidScan(t *testing.T) {
	ctx := testCtx(t, vision.Jackson)
	// 64-frame batches at ReadVideoCost each: budget for ~3 batches.
	ctx.Deadline = 200 * costs.ReadVideoCost
	_, err := Run(ctx, scan(0, 10000))
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	// The run stopped near the budget, not after draining the scan.
	if total := ctx.Clock.Total(); total > 400*costs.ReadVideoCost {
		t.Errorf("ran %v past a %v budget", total, ctx.Deadline)
	}
}

func TestDeadlineIsPerRun(t *testing.T) {
	ctx := testCtx(t, vision.Jackson)
	ctx.Deadline = 200 * costs.ReadVideoCost
	if _, err := Run(ctx, scan(0, 10000)); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("first run: %v", err)
	}
	// The budget re-arms from the clock's current total: a small query
	// still fits even though the clock already advanced.
	out, err := Run(ctx, scan(0, 100))
	if err != nil || out.Len() != 100 {
		t.Fatalf("second run: rows=%d err=%v", out.Len(), err)
	}
}

func TestDeadlineInsidePipelineBreaker(t *testing.T) {
	ctx := testCtx(t, vision.Jackson)
	ctx.Deadline = 200 * costs.ReadVideoCost
	// GroupBy drains its whole input before emitting: the guard on its
	// input must abort the drain loop.
	g := &plan.GroupBy{
		Input: scan(0, 10000),
		Aggs:  []plan.Agg{{Kind: plan.AggCount, Name: "n"}},
	}
	_, err := Run(ctx, g)
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
	// Same through a draining filter that rejects every row.
	ctx2 := testCtx(t, vision.Jackson)
	ctx2.Deadline = 200 * costs.ReadVideoCost
	pred := expr.NewCmp(expr.OpEq, colx("id"), intc(-1))
	if _, err := Run(ctx2, &plan.Filter{Input: scan(0, 10000), Pred: pred}); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("filter drain err = %v", err)
	}
}

func TestCancelBeforeAndDuringRun(t *testing.T) {
	ctx := testCtx(t, vision.Jackson)
	ctx.Cancel()
	if _, err := Run(ctx, scan(0, 100)); !errors.Is(err, ErrCanceled) {
		t.Fatalf("pre-run cancel: %v", err)
	}
	// Cancellation is per Run: the next Run proceeds.
	if out, err := Run(ctx, scan(0, 100)); err != nil || out.Len() != 100 {
		t.Fatalf("post-cancel run: rows=%d err=%v", out.Len(), err)
	}
}

func TestInjectedDeadlineExpiry(t *testing.T) {
	ctx := testCtx(t, vision.Jackson)
	inj := faults.New(7)
	// The third deadline check aborts the query regardless of budget.
	inj.Rule(faults.SiteDeadline, faults.Rule{Kind: faults.Permanent, At: []int{3}})
	ctx.Faults = inj
	_, err := Run(ctx, scan(0, 10000))
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
	if _, ok := faults.AsFault(err); !ok {
		t.Errorf("injected fault lost from chain: %v", err)
	}
	if inj.Calls(faults.SiteDeadline) != 3 {
		t.Errorf("deadline site consulted %d times, want 3", inj.Calls(faults.SiteDeadline))
	}
}

func TestDeadlineZeroBudgetStillRunsUntilCharged(t *testing.T) {
	// A fresh clock with a generous budget never trips on an empty
	// plan; sanity-check the boundary arithmetic.
	ctx := testCtx(t, vision.Jackson)
	ctx.Deadline = time.Hour
	out, err := Run(ctx, scan(0, 10))
	if err != nil || out.Len() != 10 {
		t.Fatalf("rows=%d err=%v", out.Len(), err)
	}
}
