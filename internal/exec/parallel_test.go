package exec

import (
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"eva/internal/catalog"
	"eva/internal/expr"
	"eva/internal/faults"
	"eva/internal/plan"
	"eva/internal/server"
	"eva/internal/testutil"
	"eva/internal/types"
	"eva/internal/vision"
)

// applyPlan is the canonical scan → filter → apply pipeline the
// parallel engine targets: detect on every frame with id < hi.
func applyPlan(hi int64) plan.Node {
	return &plan.ReuseApply{
		Input: &plan.Filter{
			Input: scan(0, -1),
			Pred:  expr.NewCmp(expr.OpLt, colx("id"), intc(hi)),
		},
		Args:      []expr.Expr{colx("frame")},
		Sources:   []plan.ApplySource{{UDF: vision.FasterRCNN50, ViewName: "det_view"}},
		Eval:      vision.FasterRCNN50,
		StoreView: "det_view",
		TableUDF:  true,
		Out:       catalog.DetectorSchema,
		KeyCols:   []string{"id"},
	}
}

func TestParallelRunMatchesSerial(t *testing.T) {
	serial := testCtx(t, vision.MediumUADetrac)
	serial.BatchSize = 7
	want, err := Run(serial, applyPlan(40))
	if err != nil {
		t.Fatal(err)
	}

	par := testCtx(t, vision.MediumUADetrac)
	par.BatchSize = 7
	par.Workers = 8
	got, err := Run(par, applyPlan(40))
	if err != nil {
		t.Fatal(err)
	}

	if want.Len() != got.Len() {
		t.Fatalf("rows differ: serial %d, parallel %d", want.Len(), got.Len())
	}
	for r := 0; r < want.Len(); r++ {
		for c := 0; c < len(want.Schema()); c++ {
			if !types.Equal(want.At(r, c), got.At(r, c)) {
				t.Fatalf("row %d col %d differs: %v vs %v", r, c, want.At(r, c), got.At(r, c))
			}
		}
	}
	if s, p := serial.Clock.Snapshot(), par.Clock.Snapshot(); s != p {
		t.Errorf("virtual clock differs: serial %v, parallel %v", s, p)
	}
	// The second run must serve everything from the view, in parallel too.
	again, err := Run(par, applyPlan(40))
	if err != nil {
		t.Fatal(err)
	}
	stats := par.Runtime.CounterSnapshot()["fasterrcnnresnet50"]
	if stats.Reused == 0 || again.Len() != want.Len() {
		t.Errorf("parallel reuse run: rows %d stats %+v", again.Len(), stats)
	}
}

func TestParallelTraceCollectsStats(t *testing.T) {
	ctx := testCtx(t, vision.Jackson)
	ctx.Workers = 4
	ctx.Trace = NewTrace()
	pred := expr.NewCmp(expr.OpLt, colx("id"), intc(50))
	out, err := Run(ctx, &plan.Filter{Input: scan(0, 200), Pred: pred})
	if err != nil || out.Len() != 50 {
		t.Fatalf("rows = %d, %v", out.Len(), err)
	}
	stats := ctx.Trace.Stats()
	if len(stats) != 2 {
		t.Fatalf("want 2 traced operators, got %d", len(stats))
	}
	if stats[0].Depth != 0 || stats[1].Depth != 1 {
		t.Errorf("pre-order depths = %d, %d", stats[0].Depth, stats[1].Depth)
	}
	if stats[0].Rows != 50 || stats[0].Batches == 0 {
		t.Errorf("filter stat = %+v", stats[0])
	}
	if s := ctx.Trace.String(); !strings.Contains(s, "rows=50") {
		t.Errorf("trace string = %q", s)
	}
}

// TestWorkersUnpinned: with call-identity-keyed fault injection and
// singleflight FunCache accounting, workers() honors the knob in every
// mode — no configuration pins execution serial anymore.
func TestWorkersUnpinned(t *testing.T) {
	ctx := testCtx(t, vision.Jackson)
	if got := ctx.workers(); got != 1 {
		t.Errorf("default workers() = %d", got)
	}
	ctx.Workers = 8
	if got := ctx.workers(); got != 8 {
		t.Errorf("workers() = %d, want 8", got)
	}
	ctx.Faults = faults.New(1)
	if got := ctx.workers(); got != 8 {
		t.Errorf("workers() with injector = %d, want 8 (faults no longer pin serial)", got)
	}
	ctx.Faults = nil
	ctx.Runtime.SetFunCache(true)
	if got := ctx.workers(); got != 8 {
		t.Errorf("workers() with FunCache = %d, want 8 (FunCache no longer pins serial)", got)
	}
}

// TestAbortableRunsDisablePipeline: fault-injected and
// deadline-bounded runs keep the parallel apply pool but must not
// build pipeline stages — a prefetching producer would charge the
// virtual clock for batches an aborting serial run never pulls.
func TestAbortableRunsDisablePipeline(t *testing.T) {
	pred := expr.NewCmp(expr.OpLt, colx("id"), intc(30))
	fplan := func() plan.Node { return &plan.Filter{Input: scan(0, 100), Pred: pred} }

	ctx := testCtx(t, vision.Jackson)
	ctx.Workers = 8
	ctx.Faults = faults.New(1) // no rules: inert, but present
	if out, err := Run(ctx, fplan()); err != nil || out.Len() != 30 {
		t.Fatalf("faulted run: rows = %v, %v", out, err)
	}
	if len(ctx.stages) != 0 {
		t.Errorf("%d pipeline stages built under fault injection, want 0", len(ctx.stages))
	}

	ctx2 := testCtx(t, vision.Jackson)
	ctx2.Workers = 8
	ctx2.Deadline = time.Hour
	if out, err := Run(ctx2, fplan()); err != nil || out.Len() != 30 {
		t.Fatalf("deadlined run: rows = %v, %v", out, err)
	}
	if len(ctx2.stages) != 0 {
		t.Errorf("%d pipeline stages built under a deadline, want 0", len(ctx2.stages))
	}

	// Memory-budgeted runs: a prefetching producer would charge the
	// budget for batches the serial engine has not admitted yet.
	ctx3 := testCtx(t, vision.Jackson)
	ctx3.Workers = 8
	ctx3.Budget = server.NewMemBudget(1 << 30)
	if out, err := Run(ctx3, fplan()); err != nil || out.Len() != 30 {
		t.Fatalf("budgeted run: rows = %v, %v", out, err)
	}
	if len(ctx3.stages) != 0 {
		t.Errorf("%d pipeline stages built under a memory budget, want 0", len(ctx3.stages))
	}

	// Multi-session runs: claim acquisition and per-batch publication
	// are serial protocol points.
	ctx4 := testCtx(t, vision.Jackson)
	ctx4.Workers = 8
	ctx4.Sessions = true
	if out, err := Run(ctx4, fplan()); err != nil || out.Len() != 30 {
		t.Fatalf("session run: rows = %v, %v", out, err)
	}
	if len(ctx4.stages) != 0 {
		t.Errorf("%d pipeline stages built in session mode, want 0", len(ctx4.stages))
	}

	// Sanity: without faults or deadline the same plan does stage.
	ctx5 := testCtx(t, vision.Jackson)
	ctx5.Workers = 8
	if _, err := Run(ctx5, fplan()); err != nil {
		t.Fatal(err)
	}
}

// TestNoGoroutineLeakOnAbort: aborted parallel runs — deadline
// exceeded mid-query and an injected permanent fault — must not leave
// worker or stage goroutines behind.
func TestNoGoroutineLeakOnAbort(t *testing.T) {
	before := runtime.NumGoroutine()

	// Deadline exceeded mid-query at Workers=8.
	ctx := testCtx(t, vision.MediumUADetrac)
	ctx.Workers = 8
	ctx.BatchSize = 4
	ctx.Deadline = time.Millisecond
	if _, err := Run(ctx, applyPlan(40)); err == nil {
		t.Fatal("1ms deadline did not abort the query")
	}

	// Injected permanent fault aborts the apply operator.
	ctx2 := testCtx(t, vision.MediumUADetrac)
	ctx2.Workers = 8
	ctx2.BatchSize = 4
	inj := faults.New(3)
	inj.Rule(faults.SiteUDF(vision.FasterRCNN50), faults.Rule{Kind: faults.Permanent, Prob: 1})
	ctx2.Faults = inj
	ctx2.Runtime.SetInjector(inj)
	if _, err := Run(ctx2, applyPlan(40)); err == nil {
		t.Fatal("injected permanent fault did not surface")
	}

	// A staged run that errors mid-pipeline (teardown path).
	ctx3 := testCtx(t, vision.Jackson)
	ctx3.Workers = 8
	ctx3.BatchSize = 4
	bad := expr.NewCmp(expr.OpEq, colx("ghost"), intc(1))
	if _, err := Run(ctx3, &plan.Filter{Input: scan(0, 100), Pred: bad}); err == nil {
		t.Fatal("unknown column should error")
	}

	// Give exited goroutines a moment to be reaped before comparing.
	testutil.CheckNoGoroutineLeak(t, before)
}

// TestLimitDisablesPipeline: operators under a Limit must not run in
// background stages — the limit stops pulling mid-stream and eager
// producers would charge the clock for batches the query never asked
// for. The plan still runs correctly with the knob set.
func TestLimitDisablesPipeline(t *testing.T) {
	ctx := testCtx(t, vision.Jackson)
	ctx.Workers = 8
	ctx.BatchSize = 8
	pred := expr.NewCmp(expr.OpGe, colx("id"), intc(0))
	n := &plan.Limit{Input: &plan.Filter{Input: scan(0, 1000), Pred: pred}, N: 20}
	out, err := Run(ctx, n)
	if err != nil || out.Len() != 20 {
		t.Fatalf("limit rows = %d, %v", out.Len(), err)
	}
	if len(ctx.stages) != 0 {
		t.Errorf("%d pipeline stages built under Limit, want 0", len(ctx.stages))
	}
}

// TestParallelErrorPropagation: an error raised inside a staged
// operator must surface from Run, and teardown must not deadlock.
func TestParallelErrorPropagation(t *testing.T) {
	ctx := testCtx(t, vision.Jackson)
	ctx.Workers = 8
	ctx.BatchSize = 4
	bad := expr.NewCmp(expr.OpEq, colx("ghost"), intc(1))
	if _, err := Run(ctx, &plan.Filter{Input: scan(0, 100), Pred: bad}); err == nil {
		t.Fatal("unknown column should error through the pipeline")
	}
	// The context must be reusable after a failed parallel run.
	good := expr.NewCmp(expr.OpLt, colx("id"), intc(5))
	out, err := Run(ctx, &plan.Filter{Input: scan(0, 100), Pred: good})
	if err != nil || out.Len() != 5 {
		t.Fatalf("rerun after failure: rows = %d, %v", out.Len(), err)
	}
}

// TestStageEarlyHalt: stopping stages while the producer still has
// batches queued (consumer abandons the stream) must not leak or hang.
func TestStageEarlyHalt(t *testing.T) {
	ctx := testCtx(t, vision.Jackson)
	ctx.Workers = 2
	ctx.BatchSize = 4
	in, err := build(ctx, scan(0, 100))
	if err != nil {
		t.Fatal(err)
	}
	st := ctx.maybeStage(in)
	si, ok := st.(*stageIter)
	if !ok {
		t.Fatalf("maybeStage returned %T, want *stageIter", st)
	}
	b, err := si.next()
	if err != nil || b == nil {
		t.Fatalf("first staged batch: %v, %v", b, err)
	}
	// Abandon the stream mid-way; teardown must return promptly.
	ctx.stopStages()
	// halt is idempotent.
	si.halt()
	if got := len(ctx.stages); got != 0 {
		t.Errorf("stages after stop = %d", got)
	}
}

func TestRunParallelPool(t *testing.T) {
	var sum atomic.Int64
	runParallel(4, 100, func(w, i int) {
		if w < 0 || w >= 4 {
			t.Errorf("worker id %d out of range", w)
		}
		sum.Add(int64(i))
	})
	if got := sum.Load(); got != 4950 {
		t.Errorf("parallel sum = %d", got)
	}
	sum.Store(0)
	runParallel(1, 10, func(w, i int) { // serial path, always worker 0
		if w != 0 {
			t.Errorf("serial worker id = %d", w)
		}
		sum.Add(int64(i))
	})
	if got := sum.Load(); got != 45 {
		t.Errorf("serial sum = %d", got)
	}
	runParallel(8, 0, func(int, int) { t.Error("fn called for n=0") })
}
