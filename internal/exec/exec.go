// Package exec is EVA's execution engine: a batch-at-a-time Volcano
// interpreter over the physical plans of internal/plan. Every operator
// charges its profiled cost to the virtual clock, so a plan execution
// yields both results and the simulated time breakdown the evaluation
// reports (Table 4, Fig. 6).
package exec

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"eva/internal/costs"
	"eva/internal/expr"
	"eva/internal/faults"
	"eva/internal/plan"
	"eva/internal/server"
	"eva/internal/simclock"
	"eva/internal/storage"
	"eva/internal/types"
	"eva/internal/udf"
)

// DefaultBatchSize is the number of frames per scan batch.
const DefaultBatchSize = 256

// Context carries the runtime services a plan execution needs.
type Context struct {
	Store     *storage.Engine
	Runtime   *udf.Runtime
	Clock     *simclock.Clock
	BatchSize int
	// Trace, when set, collects per-operator statistics for this
	// execution (EXPLAIN ANALYZE). Attach a fresh Trace per Run.
	Trace *Trace
	// Faults, when set, is consulted at the executor's fault sites
	// (currently faults.SiteDeadline); nil injects nothing.
	Faults *faults.Injector
	// Deadline is the virtual-time budget for one Run (0 = unlimited).
	// The budget starts when Run is called and is checked before every
	// operator's next, so an expired query stops within one batch.
	Deadline time.Duration
	// Workers enables the parallel pipelined engine: UDF invocations
	// fan out across a bounded pool of this size and operator stages
	// are decoupled behind bounded channels (see parallel.go). 0 or 1
	// runs the classic serial engine. Results, reports and virtual
	// clock totals are byte-identical at every setting.
	Workers int
	// Domain routes UDF evaluation, fault draws and breaker state
	// through a session-scoped domain (multi-session serving); nil uses
	// the Runtime's process-wide default domain — the single-session
	// behavior every pre-existing caller gets.
	Domain *udf.Domain
	// Budget is this query's memory budget, charged at the
	// materialization points (scan batches, sort buffers, view-append
	// staging). A failed charge degrades first — smaller scan batches,
	// early view flushes — and aborts with server.ErrMemoryBudget only
	// when degradation cannot fit the limit. nil = unlimited.
	Budget *server.MemBudget
	// Sessions enables shared-view multi-session mode: the apply
	// operator probes its own store view, claims per-(view, key)
	// singleflight ownership of the keys it is about to evaluate, and
	// publishes (flushes) at every batch boundary so concurrent
	// sessions reuse instead of recompute. View appends draw write
	// faults from this Context's Faults injector rather than the
	// engine-wide one.
	Sessions bool
	// Pool, when set, supplies the columnar batches the operators flow
	// between each other. Operators obtain batches with getBatch and
	// recycle their inputs with putBatch once the data has been copied
	// onward, so a steady-state scan→filter→apply pipeline performs no
	// per-row heap allocation (see DESIGN.md §13 for the ownership
	// rules). nil runs every operator on freshly allocated batches —
	// results are byte-identical either way.
	Pool *types.BatchPool

	traceDepth int
	noPipeline int // build-time: >0 while under a Limit (no stages)
	dl         *deadlineState
	stages     []*stageIter // pipeline stages of the current Run
}

func (c *Context) batchSize() int {
	if c.BatchSize > 0 {
		return c.BatchSize
	}
	return DefaultBatchSize
}

// dom returns the UDF evaluation domain for this execution: the
// session's own domain when set, else the runtime's default.
func (c *Context) dom() *udf.Domain {
	if c.Domain != nil {
		return c.Domain
	}
	return c.Runtime.DefaultDomain()
}

// getBatch returns an empty batch carrying schema, drawn from the
// context's pool when one is installed.
func (c *Context) getBatch(schema types.Schema) *types.Batch {
	if c.Pool != nil {
		return c.Pool.Get(schema)
	}
	return types.NewBatch(schema)
}

// putBatch recycles a pool-owned batch once its owner has copied the
// data onward. Unpooled batches — view snapshots, cache-resident
// detector outputs, batches from a pool-less Context — pass through as
// a no-op, so operators can hand every consumed input here without
// tracking provenance.
func (c *Context) putBatch(b *types.Batch) {
	if c.Pool != nil && b.Pooled() {
		c.Pool.Put(b)
	}
}

// Run executes the plan to completion and returns all result rows.
func Run(ctx *Context, n plan.Node) (*types.Batch, error) {
	ctx.armDeadline()
	ctx.stages = nil
	defer ctx.stopStages()
	warmSchemas(n)
	it, err := build(ctx, n)
	if err != nil {
		return nil, err
	}
	// The collector is pooled too, but it is returned to the caller —
	// ownership leaves the executor, and the engine offers an explicit
	// Recycle for callers that fold the rows and discard them.
	out := ctx.getBatch(n.Schema())
	for {
		b, err := it.next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return out, nil
		}
		if err := out.AppendBatch(b); err != nil {
			return nil, fmt.Errorf("exec: collect results: %w", err)
		}
		ctx.putBatch(b)
	}
}

// iterator produces batches; nil signals end of stream.
type iterator interface {
	next() (*types.Batch, error)
}

func build(ctx *Context, n plan.Node) (iterator, error) {
	it, err := buildTraced(ctx, n)
	if err != nil {
		return nil, err
	}
	if ctx.dl == nil {
		return it, nil
	}
	// Every operator's next first checks the shared deadline state, so
	// cancellation and deadline expiry propagate within one batch even
	// through pipeline breakers (whose guarded inputs abort their
	// internal drain loops).
	return &guardIter{dl: ctx.dl, in: it}, nil
}

func buildTraced(ctx *Context, n plan.Node) (iterator, error) {
	if ctx.Trace != nil {
		stat := ctx.Trace.register(ctx.traceDepth, n.Describe())
		ctx.traceDepth++
		it, err := buildNode(ctx, n)
		ctx.traceDepth--
		if err != nil {
			return nil, err
		}
		return &traceIter{in: it, stat: stat}, nil
	}
	return buildNode(ctx, n)
}

func buildNode(ctx *Context, n plan.Node) (iterator, error) {
	switch node := n.(type) {
	case *plan.Scan:
		return newScanIter(ctx, node)
	case *plan.Filter:
		in, err := build(ctx, node.Input)
		if err != nil {
			return nil, err
		}
		return &filterIter{ctx: ctx, in: ctx.maybeStage(in), node: node}, nil
	case *plan.ReuseApply:
		in, err := build(ctx, node.Input)
		if err != nil {
			return nil, err
		}
		return newApplyIter(ctx, node, ctx.maybeStage(in))
	case *plan.Project:
		in, err := build(ctx, node.Input)
		if err != nil {
			return nil, err
		}
		return &projectIter{ctx: ctx, in: in, node: node}, nil
	case *plan.GroupBy:
		in, err := build(ctx, node.Input)
		if err != nil {
			return nil, err
		}
		return &groupIter{ctx: ctx, in: ctx.maybeStage(in), node: node}, nil
	case *plan.Sort:
		in, err := build(ctx, node.Input)
		if err != nil {
			return nil, err
		}
		return &sortIter{ctx: ctx, in: ctx.maybeStage(in), node: node}, nil
	case *plan.Limit:
		ctx.noPipeline++
		in, err := build(ctx, node.Input)
		ctx.noPipeline--
		if err != nil {
			return nil, err
		}
		return &limitIter{in: in, remaining: node.N}, nil
	default:
		return nil, fmt.Errorf("exec: unknown plan node %T", n)
	}
}

// rowResolver adapts one batch row to expr.Resolver, routing scalar
// function calls through the UDF runtime (only inexpensive builtins
// should remain in expressions after optimization). Inside the apply
// operator's eval phase (sink != nil) nested calls carry a derived
// call identity and the batch's frozen breaker snapshot, so fault
// decisions and breaker bookkeeping stay order-independent.
type rowResolver struct {
	ctx    *Context
	schema types.Schema
	batch  *types.Batch
	row    int

	id   uint64              // row's call identity (eval phase only)
	sub  uint64              // nested-call counter within the row
	sink *udf.OutcomeSink    // non-nil only in the eval phase
	hs   *udf.HealthSnapshot // batch breaker snapshot (eval phase)
}

func (r *rowResolver) Resolve(name string) (types.Datum, bool) {
	i := r.schema.IndexOf(name)
	if i < 0 {
		return types.Null, false
	}
	return r.batch.At(r.row, i), true
}

func (r *rowResolver) CallFn(fn string, args []types.Datum) (types.Datum, error) {
	if r.sink != nil {
		r.sub++
		return r.ctx.dom().EvalScalarAt(fn, args, subCallID(r.id, r.sub), r.hs, r.sink)
	}
	return r.ctx.dom().EvalScalar(fn, args)
}

// subCallID derives the identity of the k-th nested scalar call made
// while evaluating the row with identity base. Row identities are
// small sequence numbers (< 2³²), so shifting keeps the two spaces
// disjoint; the +1 keeps row 0's nested calls off the raw k values.
func subCallID(base, k uint64) uint64 { return (base+1)<<32 ^ k }

// --- Scan ---

// minScanBatch is the floor the memory budget may degrade the scan
// batch size to before a still-failing charge aborts the query.
const minScanBatch = 16

type scanIter struct {
	ctx   *Context
	video *storage.Video
	pos   int64
	hi    int64
	width int   // current batch size; shrunk by budget degradation
	held  int64 // budget bytes reserved for the batch in flight
}

func newScanIter(ctx *Context, node *plan.Scan) (*scanIter, error) {
	v, err := ctx.Store.Video(node.Table)
	if err != nil {
		return nil, fmt.Errorf("exec: scan: %w", err)
	}
	hi := node.Hi
	if hi < 0 || hi > v.NumFrames() {
		hi = v.NumFrames()
	}
	lo := node.Lo
	if lo < 0 {
		lo = 0
	}
	return &scanIter{ctx: ctx, video: v, pos: lo, hi: hi, width: ctx.batchSize()}, nil
}

// next produces the next scan batch, degrading the batch width under
// memory pressure. The batch comes from the context pool and its
// ownership transfers downstream with the return; ScanInto copies rows
// out of the segment cache, so recycling the batch later cannot touch
// cached storage. Allocation here is batch-granular: the row loop is
// gated so the pooled-batch refactor cannot regress to per-row heap
// traffic.
// lint:hotpath scan inner loop must not allocate per row
func (s *scanIter) next() (*types.Batch, error) {
	// The previous batch has flowed downstream; its reservation stands
	// in for "one batch resident" and is returned before the next scan.
	s.ctx.Budget.Release(s.held)
	s.held = 0
	if s.pos >= s.hi {
		return nil, nil
	}
	b := s.ctx.getBatch(s.video.Schema())
	for {
		end := s.pos + int64(s.width)
		if end > s.hi {
			end = s.hi
		}
		if err := s.video.ScanInto(b, s.pos, end); err != nil {
			s.ctx.putBatch(b)
			return nil, fmt.Errorf("exec: scan %s: %w", s.video.Name(), err)
		}
		sz := int64(b.EncodedSize())
		if !s.ctx.Budget.Charge(sz) {
			// Degrade: halve the batch width and rescan before giving
			// up. The decision depends only on encoded data sizes, so
			// it is identical on every run of the same query.
			if s.width > minScanBatch {
				s.width /= 2
				if s.width < minScanBatch {
					s.width = minScanBatch
				}
				s.ctx.Budget.NoteDegrade()
				b.Reset()
				continue
			}
			s.ctx.putBatch(b)
			return nil, fmt.Errorf("exec: scan %s: %w", s.video.Name(),
				s.ctx.Budget.Exceeded("scan batch", sz))
		}
		s.held = sz
		s.pos = end
		s.ctx.Clock.ChargePerTuple(simclock.CatReadVideo, costs.ReadVideoCost, b.Len())
		return b, nil
	}
}

// --- Filter ---

type filterIter struct {
	ctx  *Context
	in   iterator
	node *plan.Filter

	// Reused per-batch scratch: the keep bitmap and the row resolver
	// live across batches so the steady-state loop stays off the heap.
	keep []bool
	res  rowResolver
}

// next evaluates the predicate over one batch. The per-row loop is
// allocation-gated: the keep bitmap and resolver are reused across
// batches, and each row only evaluates the predicate against them. A
// pool-owned input is compacted in place and forwarded (ownership
// passes through); an unpooled one is filtered into a fresh batch as
// before.
// lint:hotpath filter row loop must not allocate per row
func (f *filterIter) next() (*types.Batch, error) {
	for {
		b, err := f.in.next()
		if err != nil || b == nil {
			return nil, err
		}
		f.ctx.Clock.ChargePerTuple(simclock.CatOther, costs.RowCost, b.Len())
		if cap(f.keep) < b.Len() {
			f.keep = make([]bool, b.Len())
		}
		keep := f.keep[:b.Len()]
		f.res = rowResolver{ctx: f.ctx, schema: b.Schema(), batch: b}
		any := false
		for r := 0; r < b.Len(); r++ {
			f.res.row = r
			ok, err := expr.EvalBool(f.node.Pred, &f.res)
			if err != nil {
				return nil, fmt.Errorf("exec: filter %q: %w", f.node.Pred, err)
			}
			keep[r] = ok
			any = any || ok
		}
		if !any {
			f.ctx.putBatch(b)
			continue
		}
		if b.Pooled() {
			b.FilterInPlace(keep)
			return b, nil
		}
		return b.Filter(keep), nil
	}
}

// --- ReuseApply ---

type applyIter struct {
	ctx  *Context
	in   iterator
	node *plan.ReuseApply

	keyIdx  []int
	sources []*storage.View
	store   *storage.View
	fuzzy   []*fuzzyIndex // per-source fuzzy bbox indexes (§6 extension)

	// probeViews is the list the reuse arm consults: the planner's
	// sources, plus (in session mode) the store view itself, so rows a
	// concurrent session already published are reused, not recomputed.
	probeViews []*storage.View

	// evalLower is node.Eval lower-cased once at build time, so the
	// per-row demand/reuse/eval calls hand the runtime a string its
	// ToLower fast path passes through without allocating.
	evalLower string

	rowSeq uint64 // serial per-query sequence assigning call identities

	pendingRows *types.Batch    // buffered fresh results for the store view
	pendingKeys [][]types.Datum // buffered processed keys
	seenPending map[string]bool // keys already buffered this query

	claimed []string // store-view keys this batch holds claims on
	staged  int64    // budget bytes reserved for pending view rows

	// Per-batch scratch, reused across batches so the probe, eval and
	// assemble row loops stay allocation-free in steady state. The
	// arena backs the owned key copies of unserved rows: it is sized
	// once per batch, so the slices handed to decisions never move.
	decisions []rowDecision
	sinks     []udf.OutcomeSink
	evalRows  []int
	keyArena  []types.Datum
	keyBuf    []types.Datum
	ekBuf     []byte
	rowBuf    []types.Datum
	snaps     []*types.Batch // parallel to probeViews; reset per batch
	scratch   []evalScratch  // per-worker eval scratch
}

// evalScratch is one worker's private evaluation state: the row
// resolver handed to expression evaluation and the argument buffer.
// runParallel pins each goroutine to one slot, so no locking is needed
// and the steady-state eval loop allocates nothing.
type evalScratch struct {
	res  rowResolver
	args []types.Datum
}

func newApplyIter(ctx *Context, node *plan.ReuseApply, in iterator) (*applyIter, error) {
	a := &applyIter{ctx: ctx, in: in, node: node, seenPending: map[string]bool{},
		evalLower: strings.ToLower(node.Eval)}
	inSchema := node.Input.Schema()
	for _, kc := range node.KeyCols {
		idx := inSchema.IndexOf(kc)
		if idx < 0 {
			return nil, fmt.Errorf("exec: apply key column %q not in input %s", kc, inSchema)
		}
		a.keyIdx = append(a.keyIdx, idx)
	}
	for _, src := range node.Sources {
		v := ctx.Store.View(src.ViewName)
		if v == nil {
			// The view does not exist yet (the signature's first query);
			// create it so results land somewhere consistent.
			created, err := ctx.Store.CreateView(src.ViewName, a.viewSchema(inSchema), node.KeyCols)
			if err != nil {
				return nil, fmt.Errorf("exec: source view %s: %w", src.ViewName, err)
			}
			v = created
		}
		a.sources = append(a.sources, v)
	}
	if node.StoreView != "" {
		v, err := ctx.Store.CreateView(node.StoreView, a.viewSchema(inSchema), node.KeyCols)
		if err != nil {
			return nil, fmt.Errorf("exec: store view %s: %w", node.StoreView, err)
		}
		a.store = v
	}
	if node.FuzzyBBox && !node.TableUDF {
		if idCol, bboxCol, ok := fuzzyKeyPositions(node.KeyCols, a.viewSchema(inSchema)); ok {
			for _, view := range a.sources {
				a.fuzzy = append(a.fuzzy, buildFuzzyIndex(view, idCol, bboxCol))
			}
		}
	}
	a.probeViews = a.sources
	if ctx.Sessions && a.store != nil {
		inSources := false
		for _, v := range a.sources {
			if v == a.store {
				inSources = true
				break
			}
		}
		if !inSources {
			a.probeViews = append(append([]*storage.View(nil), a.sources...), a.store)
		}
	}
	return a, nil
}

// viewSchema is the stored row layout: key columns then output columns.
func (a *applyIter) viewSchema(in types.Schema) types.Schema {
	var sch types.Schema
	for _, kc := range a.node.KeyCols {
		sch = append(sch, types.Column{Name: kc, Kind: in.KindOf(kc)})
	}
	return sch.Concat(a.node.Out)
}

// viewFlushRows is the pending-row threshold above which the store
// view is flushed between batches, mirroring EVA's batched
// materialization (batch size 200 MiB in the paper). Flushing at batch
// boundaries — never mid-row-loop — keeps view visibility independent
// of evaluation scheduling, so parallel and serial runs probe
// identical view states.
const viewFlushRows = 8192

// rowDecision is the apply operator's per-row outcome. The serial
// probe phase either serves the row from a view — recording the
// snapshot and row indexes to emit, or materialized rows on the fuzzy
// and re-probe paths — or queues it for UDF evaluation; the parallel
// eval phase fills out/outs/err for queued rows; the serial assemble
// phase merges both in row order.
type rowDecision struct {
	served   bool
	snap     *types.Batch    // serving view's snapshot (exact-probe path)
	viewIdx  []int           // rows to emit, indexes into snap (read-only)
	viewRows [][]types.Datum // materialized rows (fuzzy / re-probe paths)
	key      []types.Datum   // owned key (evaluated rows; into keyArena)
	id       uint64          // call identity for fault injection
	sink     *udf.OutcomeSink
	out      types.Datum  // scalar UDF result (evaluated rows)
	outs     *types.Batch // table UDF output rows (evaluated rows)
	err      error
}

func (a *applyIter) next() (*types.Batch, error) {
	b, err := a.in.next()
	if err != nil {
		a.releaseClaims()
		return nil, err
	}
	if b == nil {
		err := a.flush()
		a.releaseClaims()
		return nil, err
	}
	decisions := a.probePhase(b)
	if a.ctx.Sessions && a.store != nil {
		a.claimPhase(b, decisions)
	}
	a.evalPhase(b, decisions)
	out, err := a.assemblePhase(b, decisions)
	if err != nil {
		a.releaseClaims()
		return nil, err
	}
	if err := a.chargeStaged(); err != nil {
		a.releaseClaims()
		return nil, err
	}
	if a.ctx.Sessions && a.store != nil {
		// Publish at every batch boundary, then hand the claimed keys
		// back: a session blocked on one of them re-probes and finds
		// the rows it was waiting for already materialized.
		if err := a.flush(); err != nil {
			a.releaseClaims()
			return nil, err
		}
		a.releaseClaims()
	} else if a.pendingRows != nil && a.pendingRows.Len() >= viewFlushRows {
		if err := a.flush(); err != nil {
			return nil, err
		}
	}
	// Everything the output, the pending view rows and the claims need
	// has been copied out of the input batch; recycle it.
	a.ctx.putBatch(b)
	return out, nil
}

// claimPhase acquires per-(view, key) singleflight ownership of every
// key this batch is about to evaluate. Claims are all-or-nothing: if
// any key is owned by a concurrent session, we wait — holding no
// claims of our own, so no cycle can form — for that session to
// publish and release, re-probe the refreshed view, and retry with
// whatever keys are still unserved. Keys that became servable are
// reused instead of recomputed, which is the no-double-compute
// invariant of the serving layer.
func (a *applyIter) claimPhase(b *types.Batch, decisions []rowDecision) {
	for {
		keys := a.unservedKeys(decisions)
		if len(keys) == 0 {
			return
		}
		granted, busy := a.store.ClaimKeys(keys)
		if granted {
			a.claimed = keys
			return
		}
		<-busy
		a.reprobe(b, decisions)
	}
}

// unservedKeys collects the distinct encoded keys of rows still headed
// for UDF evaluation, in row order.
func (a *applyIter) unservedKeys(decisions []rowDecision) []string {
	var keys []string
	seen := map[string]bool{}
	for r := range decisions {
		d := &decisions[r]
		if d.served {
			continue
		}
		ek := storage.EncodeKey(d.key)
		if !seen[ek] {
			seen[ek] = true
			keys = append(keys, ek)
		}
	}
	return keys
}

// reprobe re-runs the exact view probe for rows still queued for
// evaluation, serving the ones a concurrent session published while we
// waited for its claim.
func (a *applyIter) reprobe(b *types.Batch, decisions []rowDecision) {
	readCost := costs.TableViewReadCost
	if !a.node.TableUDF {
		readCost = costs.ScalarViewReadCost
	}
	snaps := map[*storage.View]*types.Batch{}
	for r := range decisions {
		d := &decisions[r]
		if d.served {
			continue
		}
		a.ctx.Clock.Charge(simclock.CatApply, costs.ProbeCost)
		for _, view := range a.probeViews {
			if !view.HasKey(d.key) {
				continue
			}
			a.ctx.Runtime.RecordReuse(a.node.Eval)
			a.ctx.Clock.Charge(simclock.CatReadView, readCost)
			s, ok := snaps[view]
			if !ok {
				s = view.Scan()
				snaps[view] = s
			}
			nKey := len(a.node.KeyCols)
			for _, vi := range view.RowsForKey(d.key) {
				row := b.Row(r)
				for c := nKey; c < len(view.Schema()); c++ {
					row = append(row, s.At(vi, c))
				}
				d.viewRows = append(d.viewRows, row)
			}
			d.served = true
			break
		}
	}
}

// releaseClaims returns this batch's claimed store-view keys, waking
// any session blocked on them. Safe to call with none held.
func (a *applyIter) releaseClaims() {
	if len(a.claimed) == 0 || a.store == nil {
		return
	}
	a.store.ReleaseKeys(a.claimed)
	a.claimed = nil
}

// chargeStaged charges the memory budget for the growth of the view-
// append staging buffer. A failed charge degrades by flushing early —
// the staged rows hit disk and their reservation is returned — rather
// than aborting.
func (a *applyIter) chargeStaged() error {
	if a.ctx.Budget == nil || a.pendingRows == nil {
		return nil
	}
	sz := int64(a.pendingRows.EncodedSize())
	delta := sz - a.staged
	if delta <= 0 {
		return nil
	}
	if a.ctx.Budget.Charge(delta) {
		a.staged = sz
		return nil
	}
	a.ctx.Budget.NoteDegrade()
	return a.flush()
}

// probePhase runs the reuse arm serially in row order: demand
// accounting, the view probes, and the fuzzy fallback. Rows no view
// can serve come back with an owned key copy (backed by the per-batch
// arena), queued for evaluation. All scratch state — decisions, sinks,
// key arena, encoded-key buffer, snapshots — is reused across batches,
// so the steady-state row loop performs no heap allocation.
// lint:hotpath apply probe loop must not allocate per row
func (a *applyIter) probePhase(b *types.Batch) []rowDecision {
	if cap(a.decisions) < b.Len() {
		a.decisions = make([]rowDecision, b.Len())
		a.sinks = make([]udf.OutcomeSink, b.Len())
	}
	decisions := a.decisions[:b.Len()]
	sinks := a.sinks[:b.Len()]
	for r := range decisions {
		decisions[r] = rowDecision{}
	}
	if cap(a.keyBuf) < len(a.keyIdx) {
		a.keyBuf = make([]types.Datum, len(a.keyIdx))
	}
	key := a.keyBuf[:len(a.keyIdx)]
	// The arena is sized for the whole batch up front so the key
	// slices handed to decisions never move when later rows append.
	if need := b.Len() * len(a.keyIdx); cap(a.keyArena) < need {
		a.keyArena = make([]types.Datum, 0, need)
	}
	a.keyArena = a.keyArena[:0]
	if len(a.snaps) < len(a.probeViews) {
		a.snaps = make([]*types.Batch, len(a.probeViews))
	}
	for i := range a.snaps {
		a.snaps[i] = nil
	}
	readCost := costs.TableViewReadCost
	if !a.node.TableUDF {
		readCost = costs.ScalarViewReadCost
	}

	for r := 0; r < b.Len(); r++ {
		for i, idx := range a.keyIdx {
			key[i] = b.At(r, idx)
		}
		a.ekBuf = storage.AppendKey(a.ekBuf[:0], key)
		a.ctx.Runtime.RecordDemandKey(a.evalLower, a.ekBuf)
		a.ctx.Clock.Charge(simclock.CatApply, costs.ProbeCost)

		d := &decisions[r]
		for vi, view := range a.probeViews {
			if !view.HasKeyBytes(a.ekBuf) {
				continue
			}
			a.ctx.Runtime.RecordReuse(a.evalLower)
			a.ctx.Clock.Charge(simclock.CatReadView, readCost)
			// Per-batch view snapshots: row indexes from RowsForKeyBytes
			// stay valid because views are append-only.
			if a.snaps[vi] == nil {
				a.snaps[vi] = view.Scan()
			}
			d.snap = a.snaps[vi]
			d.viewIdx = view.RowsForKeyBytes(a.ekBuf)
			d.served = true
			break
		}
		if !d.served && len(a.fuzzy) > 0 {
			if rows, ok := a.serveFuzzy(b, r, readCost); ok {
				d.viewRows = rows
				d.served = true
			}
		}
		if !d.served {
			start := len(a.keyArena)
			a.keyArena = append(a.keyArena, key...)
			d.key = a.keyArena[start:len(a.keyArena):len(a.keyArena)]
			// Call identities are assigned here, at a serial point in
			// input-row order, so the injected fault schedule is a
			// function of the row's position in the serial plan — not
			// of which worker reaches it first.
			d.id = a.rowSeq
			a.rowSeq++
			sinks[r].Reset()
			d.sink = &sinks[r]
		}
	}
	return decisions
}

// evalPhase runs the conditional-Apply arm for every unserved row
// across the worker pool. Each row writes only its own decision slot;
// the Runtime and Clock are concurrency-safe, so no further locking is
// needed. Breaker admission uses one frozen snapshot per batch,
// captured here at a serial point, so every row sees the same health
// decisions the serial engine's batch start would.
func (a *applyIter) evalPhase(b *types.Batch, decisions []rowDecision) {
	a.evalRows = a.evalRows[:0]
	for r := range decisions {
		if !decisions[r].served {
			a.evalRows = append(a.evalRows, r)
		}
	}
	if len(a.evalRows) == 0 {
		return
	}
	workers := a.ctx.workers()
	if cap(a.scratch) < workers {
		a.scratch = make([]evalScratch, workers)
	}
	scratch := a.scratch[:workers]
	evalRows := a.evalRows
	hs := a.ctx.dom().HealthSnapshot()
	runParallel(workers, len(evalRows), func(w, i int) {
		r := evalRows[i]
		a.evalRow(b, r, &decisions[r], hs, &scratch[w])
	})
}

// evalRow evaluates the UDF for one input row, writing the result (a
// scalar datum, or a batch of detector rows in a.node.Out's schema)
// into the decision. Called concurrently for distinct rows; sc is the
// calling worker's private scratch, so the argument loop reuses the
// resolver and the argument buffer instead of allocating per row.
// lint:hotpath apply argument loop must not allocate per argument
func (a *applyIter) evalRow(b *types.Batch, r int, d *rowDecision, hs *udf.HealthSnapshot, sc *evalScratch) {
	sc.res = rowResolver{ctx: a.ctx, schema: b.Schema(), batch: b, row: r,
		id: d.id, sink: d.sink, hs: hs}
	if cap(sc.args) < len(a.node.Args) {
		sc.args = make([]types.Datum, len(a.node.Args))
	}
	args := sc.args[:len(a.node.Args)]
	for i, argE := range a.node.Args {
		v, err := expr.Eval(argE, &sc.res)
		if err != nil {
			d.err = fmt.Errorf("exec: apply arg %q: %w", argE, err)
			return
		}
		args[i] = v
	}
	if a.node.TableUDF {
		if len(args) != 1 || args[0].Kind() != types.KindBytes {
			d.err = fmt.Errorf("exec: table UDF %s expects a frame argument", a.node.Eval)
			return
		}
		// Detector outputs may be shared with the FunCache (the cache
		// stores the same *Batch), so they are never pooled or recycled.
		outs, err := a.ctx.dom().EvalDetectorAt(a.evalLower, args[0].Bytes(), d.id, hs, d.sink)
		if err != nil {
			d.err = fmt.Errorf("exec: detector %s: %w", a.node.Eval, err)
			return
		}
		d.outs = outs
		return
	}
	v, err := a.ctx.dom().EvalScalarAt(a.evalLower, args, d.id, hs, d.sink)
	if err != nil {
		d.err = fmt.Errorf("exec: udf %s: %w", a.node.Eval, err)
		return
	}
	d.out = v
}

// assemblePhase merges served and evaluated rows back into one output
// batch in input-row order and buffers fresh results for the store
// view — the order-preserving fan-in that keeps parallel output
// byte-identical to serial. Errors surface in row order, so the
// reported failure is the one the serial engine would hit first.
func (a *applyIter) assemblePhase(b *types.Batch, decisions []rowDecision) (*types.Batch, error) {
	// Commit the deferred breaker outcomes of every evaluated row in
	// input order before surfacing any error: the pool evaluates all
	// rows of the batch at every worker count (including 1), so the
	// breaker's consecutive-failure state after the batch — and
	// therefore trips, degradation and replans — is identical whether
	// or not a row failed, and at any concurrency.
	for r := range decisions {
		a.ctx.dom().CommitOutcomes(decisions[r].sink)
	}
	out := a.ctx.getBatch(a.node.Schema())
	nKey := len(a.node.KeyCols)
	for r := range decisions {
		d := &decisions[r]
		if d.served {
			if d.snap != nil {
				// Exact-probe path: emit input row + the view's output
				// columns through the reused row buffer.
				vw := len(d.snap.Schema())
				for _, vi := range d.viewIdx {
					a.rowBuf = b.AppendRowTo(a.rowBuf[:0], r)
					for c := nKey; c < vw; c++ {
						a.rowBuf = append(a.rowBuf, d.snap.At(vi, c))
					}
					out.MustAppendRow(a.rowBuf...)
				}
			} else {
				for _, row := range d.viewRows {
					out.MustAppendRow(row...)
				}
			}
			continue
		}
		if d.err != nil {
			a.ctx.putBatch(out)
			return nil, d.err
		}
		if a.node.TableUDF {
			for dr := 0; dr < d.outs.Len(); dr++ {
				a.rowBuf = b.AppendRowTo(a.rowBuf[:0], r)
				a.rowBuf = d.outs.AppendRowTo(a.rowBuf, dr)
				out.MustAppendRow(a.rowBuf...)
			}
		} else {
			a.rowBuf = b.AppendRowTo(a.rowBuf[:0], r)
			a.rowBuf = append(a.rowBuf, d.out)
			out.MustAppendRow(a.rowBuf...)
		}
		if err := a.buffer(d); err != nil {
			a.ctx.putBatch(out)
			return nil, err
		}
	}
	return out, nil
}

// buffer queues a freshly computed result for the store view. The key
// and outputs are copied into the pending batch, so the decision's
// arena-backed key and the input batch may be recycled afterwards.
// lint:hotpath view staging must not allocate per already-seen key
func (a *applyIter) buffer(d *rowDecision) error {
	if a.store == nil {
		return nil
	}
	a.ekBuf = storage.AppendKey(a.ekBuf[:0], d.key)
	if a.seenPending[string(a.ekBuf)] {
		return nil
	}
	a.seenPending[string(a.ekBuf)] = true
	if a.node.TableUDF && d.outs.Len() == 0 {
		a.pendingKeys = append(a.pendingKeys, append([]types.Datum(nil), d.key...))
		return nil
	}
	if a.pendingRows == nil {
		a.pendingRows = a.ctx.getBatch(a.store.Schema())
	}
	if a.node.TableUDF {
		// The key prefix is identical for every detector row, so it is
		// copied into the row buffer once; the loop rewinds to the
		// prefix and appends only the detector columns.
		a.rowBuf = append(a.rowBuf[:0], d.key...)
		nKey := len(d.key)
		for r := 0; r < d.outs.Len(); r++ {
			a.rowBuf = d.outs.AppendRowTo(a.rowBuf[:nKey], r)
			if err := a.pendingRows.AppendRow(a.rowBuf...); err != nil {
				return fmt.Errorf("exec: buffer view rows: %w", err)
			}
		}
		return nil
	}
	a.rowBuf = append(a.rowBuf[:0], d.key...)
	a.rowBuf = append(a.rowBuf, d.out)
	if err := a.pendingRows.AppendRow(a.rowBuf...); err != nil {
		return fmt.Errorf("exec: buffer view rows: %w", err)
	}
	return nil
}

func (a *applyIter) flush() error {
	if a.store == nil {
		return nil
	}
	rows := a.pendingRows
	keys := a.pendingKeys
	a.pendingRows = nil
	a.pendingKeys = nil
	a.ctx.Budget.Release(a.staged)
	a.staged = 0
	if rows == nil && len(keys) == 0 {
		return nil
	}
	// A transient write fault leaves the view rolled back to its
	// pre-append state (storage.View.Append is atomic), so retrying the
	// whole batch is safe; backoff is charged like UDF retries.
	var n int
	for attempt := 1; ; attempt++ {
		var err error
		if a.ctx.Sessions {
			// Session mode: write faults come from this session's own
			// deterministic schedule, not the engine-wide injector.
			n, err = a.store.AppendWith(rows, keys, a.ctx.Faults)
		} else {
			n, err = a.store.Append(rows, keys)
		}
		if err == nil {
			break
		}
		if faults.IsTransient(err) && attempt < costs.RetryMaxAttempts {
			a.ctx.Clock.Charge(simclock.CatRetry, costs.RetryBackoff(attempt+1))
			continue
		}
		return fmt.Errorf("exec: materialize view %s: %w", a.store.Name(), err)
	}
	a.ctx.Clock.ChargePerTuple(simclock.CatMaterialize, costs.MatRowCost, n+len(keys))
	// The view copied every stored row into its own batch; the staging
	// buffer can go back to the pool.
	if rows != nil {
		a.ctx.putBatch(rows)
	}
	return nil
}

// --- Project ---

type projectIter struct {
	ctx  *Context
	in   iterator
	node *plan.Project

	// Reused per-batch scratch (see filterIter).
	row []types.Datum
	res rowResolver
}

// next projects one batch into a pooled output batch, recycling the
// input once its values have been copied. The scratch row and resolver
// are reused across batches; the row loop only writes into them.
// lint:hotpath project row loop must not allocate per row
func (p *projectIter) next() (*types.Batch, error) {
	b, err := p.in.next()
	if err != nil || b == nil {
		return nil, err
	}
	p.ctx.Clock.ChargePerTuple(simclock.CatOther, costs.RowCost, b.Len())
	out := p.ctx.getBatch(p.node.Schema())
	if cap(p.row) < len(p.node.Items) {
		p.row = make([]types.Datum, len(p.node.Items))
	}
	row := p.row[:len(p.node.Items)]
	p.res = rowResolver{ctx: p.ctx, schema: b.Schema(), batch: b}
	for r := 0; r < b.Len(); r++ {
		p.res.row = r
		for i, it := range p.node.Items {
			v, err := expr.Eval(it.E, &p.res)
			if err != nil {
				p.ctx.putBatch(out)
				return nil, fmt.Errorf("exec: project %q: %w", it.E, err)
			}
			row[i] = v
		}
		out.MustAppendRow(row...)
	}
	p.ctx.putBatch(b)
	return out, nil
}

// --- GroupBy ---

type groupIter struct {
	ctx  *Context
	in   iterator
	node *plan.GroupBy
	done bool

	// Reused scratch: probe key, encoded-key buffer, resolver.
	key   []types.Datum
	ekBuf []byte
	res   rowResolver
}

type aggState struct {
	keyRow []types.Datum
	count  []int64
	sum    []float64
	min    []types.Datum
	max    []types.Datum
}

func (g *groupIter) next() (*types.Batch, error) {
	if g.done {
		return nil, nil
	}
	g.done = true

	inSchema := g.node.Input.Schema()
	keyIdx := make([]int, len(g.node.Keys))
	for i, k := range g.node.Keys {
		keyIdx[i] = inSchema.IndexOf(k)
		if keyIdx[i] < 0 {
			return nil, fmt.Errorf("exec: group key %q not in %s", k, inSchema)
		}
	}

	groups := map[string]*aggState{}
	var order []string
	if cap(g.key) < len(keyIdx) {
		g.key = make([]types.Datum, len(keyIdx))
	}
	key := g.key[:len(keyIdx)]
	for {
		b, err := g.in.next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			break
		}
		g.ctx.Clock.ChargePerTuple(simclock.CatOther, costs.RowCost, b.Len())
		g.res = rowResolver{ctx: g.ctx, schema: b.Schema(), batch: b}
		res := &g.res
		for r := 0; r < b.Len(); r++ {
			for i, idx := range keyIdx {
				key[i] = b.At(r, idx)
			}
			// Lookups reuse the encoded-key buffer; only a new group
			// materializes the string key and copies the key row.
			g.ekBuf = storage.AppendKey(g.ekBuf[:0], key)
			st, ok := groups[string(g.ekBuf)]
			if !ok {
				ek := string(g.ekBuf)
				st = &aggState{
					keyRow: append([]types.Datum(nil), key...),
					count:  make([]int64, len(g.node.Aggs)),
					sum:    make([]float64, len(g.node.Aggs)),
					min:    make([]types.Datum, len(g.node.Aggs)),
					max:    make([]types.Datum, len(g.node.Aggs)),
				}
				groups[ek] = st
				order = append(order, ek)
			}
			res.row = r
			for i, agg := range g.node.Aggs {
				var v types.Datum
				if agg.Arg != nil {
					v, err = expr.Eval(agg.Arg, res)
					if err != nil {
						return nil, fmt.Errorf("exec: aggregate arg %q: %w", agg.Arg, err)
					}
					if v.IsNull() {
						continue
					}
				}
				st.count[i]++
				if agg.Arg != nil && v.Kind().Numeric() {
					st.sum[i] += v.Float()
				}
				if agg.Arg != nil {
					if st.min[i].IsNull() || types.Compare(v, st.min[i]) < 0 {
						st.min[i] = v
					}
					if st.max[i].IsNull() || types.Compare(v, st.max[i]) > 0 {
						st.max[i] = v
					}
				}
			}
		}
		// Aggregate state holds Datum copies, never column slices, so
		// the drained input batch can be recycled immediately.
		g.ctx.putBatch(b)
	}
	// Global aggregate with no input rows still yields one row.
	if len(g.node.Keys) == 0 && len(order) == 0 {
		groups[""] = &aggState{
			count: make([]int64, len(g.node.Aggs)),
			sum:   make([]float64, len(g.node.Aggs)),
			min:   make([]types.Datum, len(g.node.Aggs)),
			max:   make([]types.Datum, len(g.node.Aggs)),
		}
		order = append(order, "")
	}
	// Deterministic output order.
	sort.Strings(order)

	out := g.ctx.getBatch(g.node.Schema())
	var row []types.Datum
	for _, ek := range order {
		st := groups[ek]
		row = append(row[:0], st.keyRow...)
		for i, agg := range g.node.Aggs {
			switch agg.Kind {
			case plan.AggCount:
				row = append(row, types.NewInt(st.count[i]))
			case plan.AggSum:
				row = append(row, types.NewFloat(st.sum[i]))
			case plan.AggAvg:
				if st.count[i] == 0 {
					row = append(row, types.Null)
				} else {
					row = append(row, types.NewFloat(st.sum[i]/float64(st.count[i])))
				}
			case plan.AggMin:
				row = append(row, st.min[i])
			case plan.AggMax:
				row = append(row, st.max[i])
			}
		}
		out.MustAppendRow(row...)
	}
	return out, nil
}

// --- Limit ---

type limitIter struct {
	in        iterator
	remaining int64
}

func (l *limitIter) next() (*types.Batch, error) {
	if l.remaining <= 0 {
		return nil, nil
	}
	b, err := l.in.next()
	if err != nil || b == nil {
		return nil, err
	}
	if int64(b.Len()) > l.remaining {
		if b.Pooled() {
			// A pooled batch is exclusively owned; truncating in place
			// keeps it recyclable by the consumer (a Slice view would
			// alias pooled storage and could never be Put safely).
			b.Truncate(int(l.remaining))
		} else {
			b = b.Slice(0, int(l.remaining))
		}
	}
	l.remaining -= int64(b.Len())
	return b, nil
}

// FormatBatch renders a batch as an aligned text table (used by the
// shell and examples).
func FormatBatch(b *types.Batch) string {
	var sb strings.Builder
	names := b.Schema().Names()
	widths := make([]int, len(names))
	for i, n := range names {
		widths[i] = len(n)
	}
	cells := make([][]string, b.Len())
	for r := 0; r < b.Len(); r++ {
		cells[r] = make([]string, len(names))
		for c := range names {
			s := b.At(r, c).String()
			if len(s) > 40 {
				s = s[:37] + "..."
			}
			cells[r][c] = s
			if len(s) > widths[c] {
				widths[c] = len(s)
			}
		}
	}
	writeRow := func(vals []string) {
		for c, v := range vals {
			if c > 0 {
				sb.WriteString(" | ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[c], v)
		}
		sb.WriteByte('\n')
	}
	writeRow(names)
	for c, w := range widths {
		if c > 0 {
			sb.WriteString("-+-")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range cells {
		writeRow(row)
	}
	fmt.Fprintf(&sb, "(%d rows)\n", b.Len())
	return sb.String()
}
