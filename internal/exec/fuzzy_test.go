package exec

import (
	"testing"

	"eva/internal/catalog"
	"eva/internal/expr"
	"eva/internal/plan"
	"eva/internal/types"
	"eva/internal/vision"
)

func carTypeApply(input plan.Node, view string, fuzzy bool) *plan.ReuseApply {
	ct, _ := catalog.New().UDF("CarType")
	return &plan.ReuseApply{
		Input:     input,
		Args:      []expr.Expr{colx("frame"), colx("bbox")},
		Sources:   []plan.ApplySource{{UDF: "CarType", ViewName: view}},
		Eval:      "CarType",
		StoreView: view,
		Out:       ct.Outputs,
		KeyCols:   []string{"bbox", "id"},
		FuzzyBBox: fuzzy,
	}
}

func detectorApply(lo, hi int64, model string) *plan.ReuseApply {
	return &plan.ReuseApply{
		Input:    scan(lo, hi),
		Args:     []expr.Expr{colx("frame")},
		Eval:     model,
		TableUDF: true,
		Out:      catalog.DetectorSchema,
		KeyCols:  []string{"id"},
	}
}

func TestFuzzyIndexLookup(t *testing.T) {
	ctx := testCtx(t, vision.MediumUADetrac)
	// Materialize CarType over FRCNN101 boxes.
	if _, err := Run(ctx, carTypeApply(detectorApply(0, 40, vision.FasterRCNN101), "ct_fuzzy", false)); err != nil {
		t.Fatal(err)
	}
	view := ctx.Store.View("ct_fuzzy")
	if view == nil || view.Rows() == 0 {
		t.Fatal("view not materialized")
	}
	idCol, bboxCol, ok := fuzzyKeyPositions([]string{"bbox", "id"}, view.Schema())
	if !ok {
		t.Fatalf("key positions not found in %s", view.Schema())
	}
	idx := buildFuzzyIndex(view, idCol, bboxCol)

	// Probe with the ground-truth box of a detected object: within
	// jitter tolerance of the stored FRCNN101 box.
	found := false
	for f := int64(0); f < 40 && !found; f++ {
		for _, o := range vision.MediumUADetrac.Objects(f) {
			if _, ok := idx.lookup(f, vision.FormatBBox(o.X, o.Y, o.W, o.H)); ok {
				found = true
				break
			}
		}
	}
	if !found {
		t.Error("fuzzy lookup never matched ground-truth boxes")
	}
	// Far-away probes miss.
	if _, ok := idx.lookup(0, vision.FormatBBox(0.99, 0.99, 0.001, 0.001)); ok {
		t.Error("distant bbox should not match")
	}
	// Unknown frames miss.
	if _, ok := idx.lookup(99999, vision.FormatBBox(0.5, 0.5, 0.1, 0.1)); ok {
		t.Error("unknown frame should not match")
	}
	// Garbage bboxes miss without error.
	if _, ok := idx.lookup(0, "not-a-bbox"); ok {
		t.Error("garbage bbox should not match")
	}
}

func TestFuzzyApplyCrossModel(t *testing.T) {
	ctx := testCtx(t, vision.MediumUADetrac)
	if _, err := Run(ctx, carTypeApply(detectorApply(0, 40, vision.FasterRCNN101), "ct_x", false)); err != nil {
		t.Fatal(err)
	}
	evalsAfterWarm := ctx.Runtime.CounterSnapshot()["cartype"].Evaluated

	// Exact probing with FRCNN50 boxes misses everything.
	if _, err := Run(ctx, carTypeApply(detectorApply(0, 40, vision.FasterRCNN50), "ct_x", false)); err != nil {
		t.Fatal(err)
	}
	exactEvals := ctx.Runtime.CounterSnapshot()["cartype"].Evaluated - evalsAfterWarm
	if exactEvals == 0 {
		t.Fatal("exact cross-model probing unexpectedly reused")
	}

	// Fuzzy probing reuses most of them.
	ctx2 := testCtx(t, vision.MediumUADetrac)
	if _, err := Run(ctx2, carTypeApply(detectorApply(0, 40, vision.FasterRCNN101), "ct_y", false)); err != nil {
		t.Fatal(err)
	}
	warm2 := ctx2.Runtime.CounterSnapshot()["cartype"].Evaluated
	if _, err := Run(ctx2, carTypeApply(detectorApply(0, 40, vision.FasterRCNN50), "ct_y", true)); err != nil {
		t.Fatal(err)
	}
	fuzzyEvals := ctx2.Runtime.CounterSnapshot()["cartype"].Evaluated - warm2
	if fuzzyEvals*4 > exactEvals {
		t.Errorf("fuzzy evals = %d, want ≤ 25%% of exact %d", fuzzyEvals, exactEvals)
	}
}

func TestFuzzyDisabledForTableUDFs(t *testing.T) {
	ctx := testCtx(t, vision.MediumUADetrac)
	node := detectorApply(0, 5, vision.FasterRCNN50)
	node.FuzzyBBox = true // must be ignored for table UDFs
	if _, err := Run(ctx, node); err != nil {
		t.Fatal(err)
	}
}

func TestFuzzyKeyPositions(t *testing.T) {
	sch := types.MustSchema(
		types.Column{Name: "bbox", Kind: types.KindString},
		types.Column{Name: "id", Kind: types.KindInt},
		types.Column{Name: "out", Kind: types.KindString},
	)
	id, bbox, ok := fuzzyKeyPositions([]string{"bbox", "id"}, sch)
	if !ok || id != 1 || bbox != 0 {
		t.Errorf("positions = %d,%d,%v", id, bbox, ok)
	}
	if _, _, ok := fuzzyKeyPositions([]string{"id"}, sch); ok {
		t.Error("bbox-less keys cannot be fuzzy")
	}
}
