package exec

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"eva/internal/types"
)

// OperatorStat is one plan operator's runtime statistics, collected
// when a Trace is attached to the Context (EXPLAIN ANALYZE).
type OperatorStat struct {
	Depth    int
	Describe string
	Rows     int
	Batches  int
	Wall     time.Duration
}

// Trace collects per-operator statistics during one plan execution.
// Attach a fresh Trace to Context.Trace before Run.
type Trace struct {
	mu    sync.Mutex
	stats []*OperatorStat // guarded by mu
}

// NewTrace returns an empty trace.
func NewTrace() *Trace { return &Trace{} }

// Stats returns the collected operator statistics in plan order
// (pre-order, outermost operator first).
func (t *Trace) Stats() []OperatorStat {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]OperatorStat, len(t.stats))
	for i, s := range t.stats {
		out[i] = *s
	}
	return out
}

// String renders the trace as an EXPLAIN ANALYZE style tree.
func (t *Trace) String() string {
	var sb strings.Builder
	for _, s := range t.Stats() {
		fmt.Fprintf(&sb, "%s%s  (rows=%d batches=%d wall=%s)\n",
			strings.Repeat("  ", s.Depth), s.Describe, s.Rows, s.Batches, s.Wall.Round(time.Microsecond))
	}
	return sb.String()
}

func (t *Trace) register(depth int, describe string) *OperatorStat {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := &OperatorStat{Depth: depth, Describe: describe}
	t.stats = append(t.stats, s)
	return s
}

// traceIter wraps an operator iterator with row/batch/time accounting.
type traceIter struct {
	in   iterator
	stat *OperatorStat
}

func (ti *traceIter) next() (*types.Batch, error) {
	// The EXPLAIN ANALYZE Wall stat deliberately measures real elapsed
	// time; it is diagnostic output and never feeds a deterministic
	// observable.
	// lint:wallclock diagnostic Wall stat
	start := time.Now()
	b, err := ti.in.next()
	ti.stat.Wall += time.Since(start) // lint:wallclock diagnostic Wall stat
	if b != nil {
		ti.stat.Batches++
		ti.stat.Rows += b.Len()
	}
	return b, err
}
