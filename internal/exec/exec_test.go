package exec

import (
	"strings"
	"testing"

	"eva/internal/catalog"
	"eva/internal/expr"
	"eva/internal/plan"
	"eva/internal/simclock"
	"eva/internal/storage"
	"eva/internal/types"
	"eva/internal/udf"
	"eva/internal/vision"
)

func testCtx(t *testing.T, ds vision.Dataset) *Context {
	t.Helper()
	store, err := storage.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.CreateVideo("video", ds); err != nil {
		t.Fatal(err)
	}
	clock := &simclock.Clock{}
	return &Context{Store: store, Runtime: udf.NewRuntime(catalog.New(), clock), Clock: clock, BatchSize: 64}
}

func scan(lo, hi int64) *plan.Scan {
	return &plan.Scan{Table: "video", Sch: catalog.VideoSchema, Lo: lo, Hi: hi}
}

func intc(v int64) expr.Expr     { return expr.NewConst(types.NewInt(v)) }
func strc(v string) expr.Expr    { return expr.NewConst(types.NewString(v)) }
func colx(name string) expr.Expr { return expr.NewColumn(name) }

func TestScanChargesAndBounds(t *testing.T) {
	ctx := testCtx(t, vision.Jackson)
	out, err := Run(ctx, scan(10, 200))
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 190 {
		t.Fatalf("rows = %d", out.Len())
	}
	if got := ctx.Clock.Snapshot()[simclock.CatReadVideo]; got != 190*1800*1000 {
		t.Errorf("read charge = %v", got)
	}
	// Hi = -1 reads to the end.
	out, err = Run(ctx, scan(13990, -1))
	if err != nil || out.Len() != 10 {
		t.Errorf("tail scan = %d rows, %v", out.Len(), err)
	}
}

func TestFilterAndErrors(t *testing.T) {
	ctx := testCtx(t, vision.Jackson)
	pred := expr.NewCmp(expr.OpGe, colx("id"), intc(5))
	out, err := Run(ctx, &plan.Filter{Input: scan(0, 10), Pred: pred})
	if err != nil || out.Len() != 5 {
		t.Fatalf("filter rows = %d, %v", out.Len(), err)
	}
	// Predicate with unknown column errors.
	bad := expr.NewCmp(expr.OpEq, colx("ghost"), intc(1))
	if _, err := Run(ctx, &plan.Filter{Input: scan(0, 10), Pred: bad}); err == nil {
		t.Error("unknown column should error")
	}
	// Unknown table errors.
	if _, err := Run(ctx, &plan.Filter{Input: &plan.Scan{Table: "nope", Sch: catalog.VideoSchema, Hi: -1}, Pred: pred}); err == nil {
		t.Error("unknown table should error")
	}
}

func TestProjectEvaluatesCheapCalls(t *testing.T) {
	ctx := testCtx(t, vision.Jackson)
	p := &plan.Project{Input: scan(0, 3), Items: []plan.ProjItem{
		{Name: "id2", E: expr.NewArith(expr.OpMul, colx("id"), intc(2)), Kind: types.KindInt},
		{Name: "a", E: expr.NewCall("Area", strc("0.1,0.1,0.5,0.5")), Kind: types.KindFloat},
	}}
	out, err := Run(ctx, p)
	if err != nil {
		t.Fatal(err)
	}
	if out.At(2, 0).Int() != 4 {
		t.Errorf("id2 = %v", out.At(2, 0))
	}
	if got := out.At(0, 1).Float(); got < 0.2499 || got > 0.2501 {
		t.Errorf("area = %v", got)
	}
}

func TestGroupByAggregates(t *testing.T) {
	ctx := testCtx(t, vision.Jackson)
	g := &plan.GroupBy{
		Input: scan(0, 10),
		Aggs: []plan.Agg{
			{Kind: plan.AggCount, Name: "n"},
			{Kind: plan.AggSum, Arg: colx("id"), Name: "s"},
			{Kind: plan.AggAvg, Arg: colx("id"), Name: "a"},
			{Kind: plan.AggMin, Arg: colx("id"), Name: "lo"},
			{Kind: plan.AggMax, Arg: colx("id"), Name: "hi"},
		},
	}
	out, err := Run(ctx, g)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 {
		t.Fatalf("global aggregate rows = %d", out.Len())
	}
	if out.At(0, 0).Int() != 10 || out.At(0, 1).Float() != 45 || out.At(0, 2).Float() != 4.5 {
		t.Errorf("count/sum/avg = %v/%v/%v", out.At(0, 0), out.At(0, 1), out.At(0, 2))
	}
	if out.At(0, 3).Int() != 0 || out.At(0, 4).Int() != 9 {
		t.Errorf("min/max = %v/%v", out.At(0, 3), out.At(0, 4))
	}
}

func TestGroupByEmptyInputGlobalRow(t *testing.T) {
	ctx := testCtx(t, vision.Jackson)
	g := &plan.GroupBy{
		Input: scan(5, 5),
		Aggs:  []plan.Agg{{Kind: plan.AggCount, Name: "n"}, {Kind: plan.AggAvg, Arg: colx("id"), Name: "a"}},
	}
	out, err := Run(ctx, g)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 || out.At(0, 0).Int() != 0 {
		t.Fatalf("empty global aggregate: %v", out)
	}
	if !out.At(0, 1).IsNull() {
		t.Error("AVG over empty input should be NULL")
	}
	// With keys, empty input yields no rows.
	g2 := &plan.GroupBy{Input: scan(5, 5), Keys: []string{"id"}, Aggs: []plan.Agg{{Kind: plan.AggCount, Name: "n"}}}
	out2, err := Run(ctx, g2)
	if err != nil || out2.Len() != 0 {
		t.Errorf("keyed empty group rows = %d, %v", out2.Len(), err)
	}
	// Unknown key errors.
	g3 := &plan.GroupBy{Input: scan(0, 5), Keys: []string{"ghost"}, Aggs: nil}
	if _, err := Run(ctx, g3); err == nil {
		t.Error("unknown group key should error")
	}
}

func TestLimitAcrossBatches(t *testing.T) {
	ctx := testCtx(t, vision.Jackson)
	ctx.BatchSize = 8
	out, err := Run(ctx, &plan.Limit{Input: scan(0, 100), N: 20})
	if err != nil || out.Len() != 20 {
		t.Fatalf("limit rows = %d, %v", out.Len(), err)
	}
	out, err = Run(ctx, &plan.Limit{Input: scan(0, 5), N: 0})
	if err != nil || out.Len() != 0 {
		t.Errorf("limit 0 rows = %d", out.Len())
	}
}

func TestReuseApplyStoresAndServesAcrossRuns(t *testing.T) {
	ctx := testCtx(t, vision.MediumUADetrac)
	node := &plan.ReuseApply{
		Input:     scan(0, 30),
		Args:      []expr.Expr{colx("frame")},
		Sources:   []plan.ApplySource{{UDF: vision.FasterRCNN50, ViewName: "det_view"}},
		Eval:      vision.FasterRCNN50,
		StoreView: "det_view",
		TableUDF:  true,
		Out:       catalog.DetectorSchema,
		KeyCols:   []string{"id"},
	}
	first, err := Run(ctx, node)
	if err != nil {
		t.Fatal(err)
	}
	stats := ctx.Runtime.CounterSnapshot()["fasterrcnnresnet50"]
	if stats.Evaluated != 30 || stats.Reused != 0 {
		t.Fatalf("first run stats = %+v", stats)
	}
	second, err := Run(ctx, node)
	if err != nil {
		t.Fatal(err)
	}
	stats = ctx.Runtime.CounterSnapshot()["fasterrcnnresnet50"]
	if stats.Evaluated != 30 || stats.Reused != 30 {
		t.Fatalf("second run stats = %+v", stats)
	}
	if first.Len() != second.Len() {
		t.Fatalf("rows differ across reuse: %d vs %d", first.Len(), second.Len())
	}
	for r := 0; r < first.Len(); r++ {
		for c := 0; c < len(first.Schema()); c++ {
			if first.Schema()[c].Kind == types.KindBytes {
				continue
			}
			if !types.Equal(first.At(r, c), second.At(r, c)) {
				t.Fatalf("row %d col %d differs", r, c)
			}
		}
	}
}

func TestReuseApplyScalar(t *testing.T) {
	ctx := testCtx(t, vision.MediumUADetrac)
	det := &plan.ReuseApply{
		Input:    scan(0, 10),
		Args:     []expr.Expr{colx("frame")},
		Eval:     vision.FasterRCNN50,
		TableUDF: true,
		Out:      catalog.DetectorSchema,
		KeyCols:  []string{"id"},
	}
	ct, _ := catalog.New().UDF("CarType")
	node := &plan.ReuseApply{
		Input:     det,
		Args:      []expr.Expr{colx("frame"), colx("bbox")},
		Sources:   []plan.ApplySource{{UDF: "CarType", ViewName: "ct_view"}},
		Eval:      "CarType",
		StoreView: "ct_view",
		Out:       ct.Outputs,
		KeyCols:   []string{"bbox", "id"},
	}
	out, err := Run(ctx, node)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() == 0 {
		t.Fatal("no detections on 10 dense frames")
	}
	idx := out.Schema().IndexOf("cartype_out")
	if idx < 0 {
		t.Fatalf("missing output column in %s", out.Schema())
	}
	for r := 0; r < out.Len(); r++ {
		if out.At(r, idx).IsNull() {
			t.Fatal("scalar output missing")
		}
	}
	// Bad key column errors at build time.
	bad := &plan.ReuseApply{Input: scan(0, 5), Eval: "CarType", KeyCols: []string{"ghost"}, Out: ct.Outputs}
	if _, err := Run(ctx, bad); err == nil {
		t.Error("bad key column should error")
	}
}

func TestReuseApplyArgErrors(t *testing.T) {
	ctx := testCtx(t, vision.MediumUADetrac)
	// Table UDF with a non-bytes argument.
	node := &plan.ReuseApply{
		Input:    scan(0, 3),
		Args:     []expr.Expr{colx("id")},
		Eval:     vision.FasterRCNN50,
		TableUDF: true,
		Out:      catalog.DetectorSchema,
		KeyCols:  []string{"id"},
	}
	if _, err := Run(ctx, node); err == nil {
		t.Error("non-frame table UDF arg should error")
	}
	// Unknown UDF.
	node2 := &plan.ReuseApply{
		Input: scan(0, 3), Args: []expr.Expr{colx("frame")}, Eval: "Ghost",
		TableUDF: true, Out: catalog.DetectorSchema, KeyCols: []string{"id"},
	}
	if _, err := Run(ctx, node2); err == nil {
		t.Error("unknown UDF should error")
	}
}

func TestFormatBatch(t *testing.T) {
	b := types.NewBatch(types.MustSchema(
		types.Column{Name: "id", Kind: types.KindInt},
		types.Column{Name: "label", Kind: types.KindString},
	))
	b.MustAppendRow(types.NewInt(1), types.NewString("car"))
	b.MustAppendRow(types.NewInt(2), types.NewString(strings.Repeat("x", 60)))
	out := FormatBatch(b)
	if !strings.Contains(out, "id") || !strings.Contains(out, "(2 rows)") {
		t.Errorf("format = %q", out)
	}
	if !strings.Contains(out, "...") {
		t.Error("long values should be elided")
	}
}

func TestUnknownPlanNode(t *testing.T) {
	ctx := testCtx(t, vision.Jackson)
	if _, err := Run(ctx, unknownNode{}); err == nil {
		t.Error("unknown node should error")
	}
}

type unknownNode struct{}

func (unknownNode) Schema() types.Schema  { return nil }
func (unknownNode) Children() []plan.Node { return nil }
func (unknownNode) Describe() string      { return "unknown" }
