package exec

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"eva/internal/faults"
	"eva/internal/types"
)

// ErrDeadlineExceeded marks a query aborted because its virtual-time
// budget ran out (or a fault at faults.SiteDeadline simulated it).
var ErrDeadlineExceeded = errors.New("query deadline exceeded")

// ErrCanceled marks a query aborted by Context.Cancel.
var ErrCanceled = errors.New("query canceled")

// deadlineState is the per-Run cancellation state shared by every
// iterator of one execution.
type deadlineState struct {
	clock    clockReader
	faults   *faults.Injector
	deadline time.Duration // absolute virtual time; 0 = none
	armed    bool          // false while created by a pre-Run Cancel
	canceled atomic.Bool
}

// clockReader is the slice of simclock.Clock the guard needs.
type clockReader interface {
	Total() time.Duration
}

// check returns the abort error, if any. The order matters for
// determinism: explicit cancellation wins, then injected expiry (which
// consumes exactly one injector draw per check), then the real budget.
func (d *deadlineState) check() error {
	if d == nil {
		return nil
	}
	if d.canceled.Load() {
		return fmt.Errorf("exec: %w", ErrCanceled)
	}
	if ferr := d.faults.Check(faults.SiteDeadline); ferr != nil {
		return fmt.Errorf("exec: %w: %w", ErrDeadlineExceeded, ferr)
	}
	if d.deadline > 0 && d.clock.Total() >= d.deadline {
		return fmt.Errorf("exec: %w (budget %v)", ErrDeadlineExceeded, d.deadline)
	}
	return nil
}

// Cancel aborts the running (or next) execution on this Context: every
// iterator's next returns ErrCanceled at its next check. Cancellation
// is sticky until the next Run.
func (c *Context) Cancel() {
	if c.dl == nil {
		c.dl = &deadlineState{}
	}
	c.dl.canceled.Store(true)
}

// armDeadline installs the per-Run cancellation state. A Cancel issued
// before Run (on an un-armed state) carries into this Run; a Cancel
// that aborted a previous Run does not, so each Run starts fresh.
func (c *Context) armDeadline() {
	pre := c.dl != nil && !c.dl.armed && c.dl.canceled.Load()
	c.dl = &deadlineState{clock: c.Clock, faults: c.Faults, armed: true}
	if c.Deadline > 0 {
		c.dl.deadline = c.Clock.Total() + c.Deadline
	}
	if pre {
		c.dl.canceled.Store(true)
	}
}

// guardIter wraps an iterator so that every next call first checks the
// deadline state. Installed by build around every operator, it bounds
// the virtual time a runaway query can consume to one batch beyond its
// budget — including inside the pipeline-breaking operators, whose
// inputs are themselves guarded.
type guardIter struct {
	dl *deadlineState
	in iterator
}

func (g *guardIter) next() (*types.Batch, error) {
	if err := g.dl.check(); err != nil {
		return nil, err
	}
	return g.in.next()
}
