package vision

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Frame payload codec. A payload is the "rendered image" models decode:
// a compact, versioned binary encoding of the frame's ground truth plus
// deterministic clutter bytes. Real frames would be megabytes of
// pixels; the payload carries the same information a perfect detector
// could extract, while the storage engine accounts the virtual RGB24
// size separately (see Dataset.VirtualFrameBytes).

const (
	payloadMagic   = 0x45564146 // "EVAF"
	payloadVersion = 1
	clutterBytes   = 24
)

// EncodeFrame renders the frame's ground truth into a payload.
func (d Dataset) EncodeFrame(frame int64) []byte {
	objs := d.Objects(frame)
	buf := make([]byte, 0, 24+len(objs)*32+clutterBytes)
	buf = binary.LittleEndian.AppendUint32(buf, payloadMagic)
	buf = append(buf, payloadVersion)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(frame))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(d.Width))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(d.Height))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(objs)))
	for _, o := range objs {
		buf = append(buf, byte(indexOf(Labels, o.Label)))
		buf = append(buf, byte(indexOf(VehicleTypes, o.VType)))
		buf = append(buf, byte(indexOf(Colors, o.Color)))
		buf = append(buf, byte(len(o.Plate)))
		buf = append(buf, o.Plate...)
		for _, v := range []float64{o.X, o.Y, o.W, o.H} {
			buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(float32(v)))
		}
	}
	// Clutter: deterministic noise standing in for pixel texture, so
	// payload hashing (FunCache) sees realistic per-frame variety.
	h := mix(d.Seed, uint64(frame), 0xC1077E5)
	for i := 0; i < clutterBytes; i++ {
		buf = append(buf, byte(h>>(uint(i%8)*8)))
		if i%8 == 7 {
			h = mix(h)
		}
	}
	return buf
}

// DecodedFrame is the result of decoding a payload.
type DecodedFrame struct {
	Frame   int64
	Width   int
	Height  int
	Objects []Object
}

// FrameVirtualBytes reads only the payload header and returns the
// frame's virtual decoded size (RGB24). It is the allocation-free
// fast path for callers that need the simulated pixel volume — e.g.
// FunCache hash-cost accounting — without materializing the object
// list DecodeFrame builds.
func FrameVirtualBytes(payload []byte) (int, bool) {
	if len(payload) < 19 ||
		binary.LittleEndian.Uint32(payload) != payloadMagic ||
		payload[4] != payloadVersion {
		return 0, false
	}
	w := int(binary.LittleEndian.Uint16(payload[13:]))
	h := int(binary.LittleEndian.Uint16(payload[15:]))
	return w * h * 3, true
}

// DecodeFrame parses a payload produced by EncodeFrame.
func DecodeFrame(payload []byte) (DecodedFrame, error) {
	var df DecodedFrame
	if len(payload) < 19 {
		return df, fmt.Errorf("vision: short payload (%d bytes)", len(payload))
	}
	if binary.LittleEndian.Uint32(payload) != payloadMagic {
		return df, fmt.Errorf("vision: bad payload magic")
	}
	if payload[4] != payloadVersion {
		return df, fmt.Errorf("vision: unsupported payload version %d", payload[4])
	}
	df.Frame = int64(binary.LittleEndian.Uint64(payload[5:]))
	df.Width = int(binary.LittleEndian.Uint16(payload[13:]))
	df.Height = int(binary.LittleEndian.Uint16(payload[15:]))
	n := int(binary.LittleEndian.Uint16(payload[17:]))
	off := 19
	df.Objects = make([]Object, 0, n)
	for i := 0; i < n; i++ {
		if off+4 > len(payload) {
			return df, fmt.Errorf("vision: truncated object header at %d", off)
		}
		labelIdx, typeIdx, colorIdx := int(payload[off]), int(payload[off+1]), int(payload[off+2])
		plateLen := int(payload[off+3])
		off += 4
		if off+plateLen+16 > len(payload) {
			return df, fmt.Errorf("vision: truncated object body at %d", off)
		}
		if labelIdx >= len(Labels) || typeIdx >= len(VehicleTypes) || colorIdx >= len(Colors) {
			return df, fmt.Errorf("vision: corrupt object indices at %d", off)
		}
		plate := string(payload[off : off+plateLen])
		off += plateLen
		var coords [4]float64
		for j := range coords {
			coords[j] = float64(math.Float32frombits(binary.LittleEndian.Uint32(payload[off:])))
			off += 4
		}
		df.Objects = append(df.Objects, Object{
			ID:    i,
			Label: Labels[labelIdx],
			VType: VehicleTypes[typeIdx],
			Color: Colors[colorIdx],
			Plate: plate,
			X:     coords[0], Y: coords[1], W: coords[2], H: coords[3],
		})
	}
	return df, nil
}

func indexOf(vals []string, v string) int {
	for i, s := range vals {
		if s == v {
			return i
		}
	}
	return 0
}
