package vision

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// AccuracyLevel orders model accuracy tiers; a query's ACCURACY
// constraint is a lower bound on the tier.
type AccuracyLevel int

// Accuracy tiers (Table 5).
const (
	AccuracyLow AccuracyLevel = iota + 1
	AccuracyMedium
	AccuracyHigh
)

// ParseAccuracy parses "LOW", "MEDIUM", or "HIGH" (case-insensitive).
func ParseAccuracy(s string) (AccuracyLevel, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "LOW":
		return AccuracyLow, nil
	case "MEDIUM":
		return AccuracyMedium, nil
	case "HIGH":
		return AccuracyHigh, nil
	default:
		return 0, fmt.Errorf("vision: unknown accuracy level %q", s)
	}
}

// String returns the tier name.
func (a AccuracyLevel) String() string {
	switch a {
	case AccuracyLow:
		return "LOW"
	case AccuracyMedium:
		return "MEDIUM"
	case AccuracyHigh:
		return "HIGH"
	default:
		return fmt.Sprintf("AccuracyLevel(%d)", int(a))
	}
}

// Profile describes a physical model: its identity, logical vision
// task, profiled per-tuple cost, and quality. Costs and boxAP values
// are the paper's published numbers (Tables 3 and 5); recall values are
// the knob through which detector quality manifests (a higher-accuracy
// detector finds more objects — the effect behind Fig. 10's Q4).
type Profile struct {
	Name        string
	LogicalType string
	Accuracy    AccuracyLevel
	BoxAP       float64       // COCO boxAP, for Table 5
	Cost        time.Duration // per-tuple inference cost (C_u)
	Device      string        // "GPU" or "CPU"
	Recall      float64       // fraction of ground-truth objects detected
	ClassAcc    float64       // classification accuracy (classifiers)
}

// Physical model names.
const (
	YoloTiny      = "YoloTiny"
	FasterRCNN50  = "FasterRCNNResnet50"
	FasterRCNN101 = "FasterRCNNResnet101"
	CarTypeModel  = "CarType"
	ColorDetModel = "ColorDet"
	LicenseModel  = "License"
	VehicleFilter = "VehicleFilter"
)

// Logical vision task names.
const (
	LogicalObjectDetector = "ObjectDetector"
	LogicalCarType        = "CarType"
	LogicalColorDet       = "ColorDet"
	LogicalLicense        = "License"
	LogicalFilter         = "VehicleFilter"
)

// profiles holds the built-in model zoo. The detector costs/boxAP are
// Table 5; CarType and ColorDet costs are Table 3; License and the
// specialized filter are not profiled in the paper, so we document the
// chosen values here: License is a heavier OCR head (15 ms), and the
// 2-conv specialized filter runs at 1 ms per frame.
var profiles = map[string]Profile{
	YoloTiny: {
		Name: YoloTiny, LogicalType: LogicalObjectDetector, Accuracy: AccuracyLow,
		BoxAP: 17.6, Cost: 9 * time.Millisecond, Device: "GPU", Recall: 0.55,
	},
	FasterRCNN50: {
		Name: FasterRCNN50, LogicalType: LogicalObjectDetector, Accuracy: AccuracyMedium,
		BoxAP: 37.9, Cost: 99 * time.Millisecond, Device: "GPU", Recall: 0.85,
	},
	FasterRCNN101: {
		Name: FasterRCNN101, LogicalType: LogicalObjectDetector, Accuracy: AccuracyHigh,
		BoxAP: 42.0, Cost: 120 * time.Millisecond, Device: "GPU", Recall: 0.92,
	},
	CarTypeModel: {
		Name: CarTypeModel, LogicalType: LogicalCarType, Accuracy: AccuracyHigh,
		Cost: 6 * time.Millisecond, Device: "GPU", ClassAcc: 0.93,
	},
	ColorDetModel: {
		Name: ColorDetModel, LogicalType: LogicalColorDet, Accuracy: AccuracyHigh,
		Cost: 5 * time.Millisecond, Device: "CPU", ClassAcc: 0.91,
	},
	LicenseModel: {
		Name: LicenseModel, LogicalType: LogicalLicense, Accuracy: AccuracyHigh,
		Cost: 15 * time.Millisecond, Device: "GPU", ClassAcc: 0.95,
	},
	VehicleFilter: {
		Name: VehicleFilter, LogicalType: LogicalFilter, Accuracy: AccuracyLow,
		Cost: time.Millisecond, Device: "GPU", ClassAcc: 0.97,
	},
}

// ViewReadCost is the profiled per-tuple cost of reading a tuple from
// a materialized view on disk (c_r in §4.2: 1.8 ms).
const ViewReadCost = 1800 * time.Microsecond

// ProfileFor returns the profile of a physical model.
func ProfileFor(name string) (Profile, error) {
	p, ok := profiles[canonical(name)]
	if !ok {
		return Profile{}, fmt.Errorf("vision: unknown model %q", name)
	}
	return p, nil
}

// ProfilesForLogical returns every physical model implementing the
// logical task, in ascending cost order.
func ProfilesForLogical(logical string) []Profile {
	var out []Profile
	for _, p := range profiles {
		if strings.EqualFold(p.LogicalType, logical) {
			out = append(out, p)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Cost < out[j-1].Cost; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func canonical(name string) string {
	for n := range profiles {
		if strings.EqualFold(n, name) {
			return n
		}
	}
	return name
}

// Detection is one detector output row.
type Detection struct {
	Label string
	X, Y  float64
	W, H  float64
	Score float64
}

// Area returns the detection's relative area.
func (d Detection) Area() float64 { return d.W * d.H }

// BBox renders the bounding box in the canonical textual form that
// flows through the bbox column ("x,y,w,h" with 4 decimal places).
func (d Detection) BBox() string { return FormatBBox(d.X, d.Y, d.W, d.H) }

// FormatBBox renders normalized box coordinates canonically.
func FormatBBox(x, y, w, h float64) string {
	return fmt.Sprintf("%.4f,%.4f,%.4f,%.4f", x, y, w, h)
}

// ParseBBox parses the canonical bbox form.
func ParseBBox(s string) (x, y, w, h float64, err error) {
	parts := strings.Split(s, ",")
	if len(parts) != 4 {
		return 0, 0, 0, 0, fmt.Errorf("vision: bad bbox %q", s)
	}
	var vals [4]float64
	for i, p := range parts {
		v, perr := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if perr != nil {
			return 0, 0, 0, 0, fmt.Errorf("vision: bad bbox %q: %v", s, perr)
		}
		vals[i] = v
	}
	return vals[0], vals[1], vals[2], vals[3], nil
}

// Detect runs an object-detection model over a frame payload. Each
// ground-truth object is detected iff a deterministic draw clears the
// model's recall; detected boxes carry small model-specific jitter
// (different physical models box the same object slightly differently,
// the premise of the §6 fuzzy-matching extension).
func Detect(model string, payload []byte) ([]Detection, error) {
	p, err := ProfileFor(model)
	if err != nil {
		return nil, err
	}
	if p.LogicalType != LogicalObjectDetector {
		return nil, fmt.Errorf("vision: %s is not an object detector", model)
	}
	df, err := DecodeFrame(payload)
	if err != nil {
		return nil, err
	}
	seed := mix([]uint64{uint64(len(p.Name))}...) ^ stringSeed(p.Name)
	var out []Detection
	for _, o := range df.Objects {
		draw := unit(mix(seed, uint64(df.Frame), uint64(o.ID), 0xDE7EC7))
		if draw >= p.Recall {
			continue
		}
		jx := (unit(mix(seed, uint64(df.Frame), uint64(o.ID), 1)) - 0.5) * 0.004
		jy := (unit(mix(seed, uint64(df.Frame), uint64(o.ID), 2)) - 0.5) * 0.004
		score := 0.5 + 0.5*unit(mix(seed, uint64(df.Frame), uint64(o.ID), 3))
		out = append(out, Detection{
			Label: o.Label,
			X:     clamp01f(o.X + jx),
			Y:     clamp01f(o.Y + jy),
			W:     o.W,
			H:     o.H,
			Score: score,
		})
	}
	return out, nil
}

// matchObject finds the ground-truth object whose center is nearest to
// the bbox center (fuzzy matching tolerant of detector jitter); it
// returns false if nothing is within tolerance.
func matchObject(df DecodedFrame, x, y, w, h float64) (Object, bool) {
	cx, cy := x+w/2, y+h/2
	best, bestDist := Object{}, math.Inf(1)
	for _, o := range df.Objects {
		ox, oy := o.X+o.W/2, o.Y+o.H/2
		d := math.Hypot(cx-ox, cy-oy)
		if d < bestDist {
			best, bestDist = o, d
		}
	}
	const tolerance = 0.05
	return best, bestDist <= tolerance
}

// classify is the shared classifier head: it decodes the frame, finds
// the object under the bbox, and returns attr(object) corrupted with
// probability 1−ClassAcc (deterministically, so results are reusable).
func classify(model string, payload []byte, bbox string, attr func(Object) string, domain []string) (string, error) {
	p, err := ProfileFor(model)
	if err != nil {
		return "", err
	}
	df, err := DecodeFrame(payload)
	if err != nil {
		return "", err
	}
	x, y, w, h, err := ParseBBox(bbox)
	if err != nil {
		return "", err
	}
	obj, ok := matchObject(df, x, y, w, h)
	if !ok {
		return "unknown", nil
	}
	truth := attr(obj)
	draw := unit(mix(stringSeed(p.Name), uint64(df.Frame), uint64(obj.ID), 0xC1A55))
	if draw < p.ClassAcc || len(domain) == 0 {
		return truth, nil
	}
	// Deterministic misclassification: rotate within the domain.
	idx := indexOf(domain, truth)
	shift := 1 + int(mix(stringSeed(p.Name), uint64(df.Frame), uint64(obj.ID), 0x0FF)%uint64(len(domain)-1))
	return domain[(idx+shift)%len(domain)], nil
}

// ClassifyType runs the vehicle-type classifier (CARTYPE in the paper).
func ClassifyType(payload []byte, bbox string) (string, error) {
	return classify(CarTypeModel, payload, bbox, func(o Object) string { return o.VType }, VehicleTypes)
}

// ClassifyColor runs the vehicle-color classifier (COLORDET).
func ClassifyColor(payload []byte, bbox string) (string, error) {
	return classify(ColorDetModel, payload, bbox, func(o Object) string { return o.Color }, Colors)
}

// ReadLicense runs the license-plate OCR model (LICENSE).
func ReadLicense(payload []byte, bbox string) (string, error) {
	return classify(LicenseModel, payload, bbox, func(o Object) string { return o.Plate }, nil)
}

// filterSkipConfidence is the fraction of truly empty frames the
// specialized filter is confident enough to skip. Production filters
// (NoScope-style two-conv networks) are tuned for near-perfect recall
// of frames *with* vehicles — false negatives would silently drop
// results — so they only rule out a minority of empty frames with
// enough margin. 0.3 reproduces the paper's §5.6 gain (≈1.3× on top
// of EVA's reuse) rather than an oracle filter's.
const filterSkipConfidence = 0.30

// FilterVehicles runs the lightweight specialized filter (§5.6): TRUE
// means the frame needs full processing, FALSE means the filter is
// confident the frame contains no vehicle. Frames with vehicles always
// pass (high recall); empty frames are skipped only when the filter's
// deterministic confidence draw clears filterSkipConfidence.
func FilterVehicles(payload []byte) (bool, error) {
	p, err := ProfileFor(VehicleFilter)
	if err != nil {
		return false, err
	}
	df, err := DecodeFrame(payload)
	if err != nil {
		return false, err
	}
	has := false
	for _, o := range df.Objects {
		if o.Label == "car" || o.Label == "bus" || o.Label == "truck" {
			has = true
			break
		}
	}
	if has {
		return true, nil
	}
	draw := unit(mix(stringSeed(p.Name), uint64(df.Frame), 0xF117E5))
	if draw < filterSkipConfidence {
		return false, nil // confidently empty: skip downstream UDFs
	}
	return true, nil // uncertain: let the expensive UDFs decide
}

func stringSeed(s string) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

func clamp01f(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
