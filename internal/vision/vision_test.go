package vision

import (
	"math"
	"testing"
)

func TestDatasetStatisticsMatchPaper(t *testing.T) {
	// §5.1: UA-DETRAC ≈ 8.3 vehicles/frame, JACKSON ≈ 0.1.
	if got := MediumUADetrac.AvgObjectsPerFrame(2000); math.Abs(got-8.3) > 0.5 {
		t.Errorf("medium-ua-detrac density = %v, want ≈ 8.3", got)
	}
	if got := Jackson.AvgObjectsPerFrame(2000); math.Abs(got-0.1) > 0.05 {
		t.Errorf("jackson density = %v, want ≈ 0.1", got)
	}
	if ShortUADetrac.Frames != 7500 || MediumUADetrac.Frames != 14000 || LongUADetrac.Frames != 28000 {
		t.Error("UA-DETRAC frame counts diverge from §5.1")
	}
	if Jackson.Width != 600 || Jackson.Height != 400 {
		t.Error("jackson resolution diverges from §5.1")
	}
	// Fig. 12: LONG has slightly more vehicles per frame than MEDIUM.
	if LongUADetrac.AvgObjectsPerFrame(2000) <= MediumUADetrac.AvgObjectsPerFrame(2000) {
		t.Error("long-ua-detrac should be denser than medium")
	}
}

func TestObjectsDeterministic(t *testing.T) {
	a := MediumUADetrac.Objects(123)
	b := MediumUADetrac.Objects(123)
	if len(a) != len(b) {
		t.Fatal("nondeterministic count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("object %d differs between calls", i)
		}
	}
	// Different frames should (almost always) differ.
	c := MediumUADetrac.Objects(124)
	if len(a) == len(c) {
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("frames 123 and 124 identical")
		}
	}
}

func TestObjectFieldsValid(t *testing.T) {
	for f := int64(0); f < 50; f++ {
		for _, o := range MediumUADetrac.Objects(f) {
			if o.X < 0 || o.Y < 0 || o.X+o.W > 1.0001 || o.Y+o.H > 1.0001 {
				t.Fatalf("frame %d object %d out of bounds: %+v", f, o.ID, o)
			}
			if o.Area() <= 0 || o.Area() > 0.61 {
				t.Fatalf("frame %d object %d bad area %v", f, o.ID, o.Area())
			}
			if indexOf(Labels, o.Label) < 0 || indexOf(VehicleTypes, o.VType) < 0 {
				t.Fatalf("bad categorical fields: %+v", o)
			}
			if len(o.Plate) != 5 {
				t.Fatalf("plate length %d", len(o.Plate))
			}
		}
	}
}

func TestDistributionsRoughlyMatchWeights(t *testing.T) {
	counts := map[string]int{}
	total := 0
	for f := int64(0); f < 3000; f++ {
		for _, o := range MediumUADetrac.Objects(f) {
			counts[o.VType]++
			counts["color:"+o.Color]++
			counts["label:"+o.Label]++
			total++
		}
	}
	if total == 0 {
		t.Fatal("no objects generated")
	}
	frac := func(k string) float64 { return float64(counts[k]) / float64(total) }
	if got := frac("Nissan"); math.Abs(got-0.25) > 0.03 {
		t.Errorf("P(Nissan) = %v, want ≈ 0.25", got)
	}
	if got := frac("color:Gray"); math.Abs(got-0.30) > 0.03 {
		t.Errorf("P(Gray) = %v, want ≈ 0.30", got)
	}
	if got := frac("label:car"); math.Abs(got-0.85) > 0.03 {
		t.Errorf("P(car) = %v, want ≈ 0.85", got)
	}
}

func TestPayloadRoundTrip(t *testing.T) {
	for _, f := range []int64{0, 1, 999, 13999} {
		payload := MediumUADetrac.EncodeFrame(f)
		df, err := DecodeFrame(payload)
		if err != nil {
			t.Fatalf("frame %d: %v", f, err)
		}
		if df.Frame != f || df.Width != 960 || df.Height != 540 {
			t.Errorf("frame %d header: %+v", f, df)
		}
		want := MediumUADetrac.Objects(f)
		if len(df.Objects) != len(want) {
			t.Fatalf("frame %d: %d objects decoded, want %d", f, len(df.Objects), len(want))
		}
		for i := range want {
			g, w := df.Objects[i], want[i]
			if g.Label != w.Label || g.VType != w.VType || g.Color != w.Color || g.Plate != w.Plate {
				t.Errorf("frame %d obj %d categorical mismatch: %+v vs %+v", f, i, g, w)
			}
			if math.Abs(g.X-w.X) > 1e-4 || math.Abs(g.W-w.W) > 1e-4 {
				t.Errorf("frame %d obj %d coords drift", f, i)
			}
		}
	}
}

func TestDecodeFrameErrors(t *testing.T) {
	cases := [][]byte{
		nil,
		{1, 2, 3},
		make([]byte, 19), // zero magic
	}
	for i, c := range cases {
		if _, err := DecodeFrame(c); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	// Corrupt a valid payload's version byte.
	p := MediumUADetrac.EncodeFrame(0)
	p[4] = 99
	if _, err := DecodeFrame(p); err == nil {
		t.Error("bad version should error")
	}
	// Truncate mid-objects.
	p = MediumUADetrac.EncodeFrame(0)
	if len(p) > 30 {
		if _, err := DecodeFrame(p[:25]); err == nil {
			t.Error("truncated payload should error")
		}
	}
}

func TestProfilesMatchPaperTables(t *testing.T) {
	// Table 5 costs and boxAP; Table 3 costs.
	cases := []struct {
		model string
		ms    int64
		boxAP float64
	}{
		{YoloTiny, 9, 17.6},
		{FasterRCNN50, 99, 37.9},
		{FasterRCNN101, 120, 42.0},
		{CarTypeModel, 6, 0},
		{ColorDetModel, 5, 0},
	}
	for _, c := range cases {
		p, err := ProfileFor(c.model)
		if err != nil {
			t.Fatal(err)
		}
		if p.Cost.Milliseconds() != c.ms {
			t.Errorf("%s cost = %v, want %dms", c.model, p.Cost, c.ms)
		}
		if c.boxAP > 0 && p.BoxAP != c.boxAP {
			t.Errorf("%s boxAP = %v, want %v", c.model, p.BoxAP, c.boxAP)
		}
	}
	if _, err := ProfileFor("nope"); err == nil {
		t.Error("unknown model should error")
	}
	// Case-insensitive lookup.
	if _, err := ProfileFor("fasterrcnnresnet50"); err != nil {
		t.Errorf("case-insensitive lookup failed: %v", err)
	}
}

func TestProfilesForLogical(t *testing.T) {
	dets := ProfilesForLogical(LogicalObjectDetector)
	if len(dets) != 3 {
		t.Fatalf("detectors = %d, want 3", len(dets))
	}
	// Ascending cost: YoloTiny, FRCNN50, FRCNN101.
	if dets[0].Name != YoloTiny || dets[2].Name != FasterRCNN101 {
		t.Errorf("order = %v, %v, %v", dets[0].Name, dets[1].Name, dets[2].Name)
	}
	if got := ProfilesForLogical("nothing"); len(got) != 0 {
		t.Error("unknown logical type should return empty")
	}
}

func TestDetectRecallOrdering(t *testing.T) {
	totals := map[string]int{}
	ground := 0
	for f := int64(0); f < 300; f++ {
		payload := MediumUADetrac.EncodeFrame(f)
		ground += len(MediumUADetrac.Objects(f))
		for _, m := range []string{YoloTiny, FasterRCNN50, FasterRCNN101} {
			dets, err := Detect(m, payload)
			if err != nil {
				t.Fatal(err)
			}
			totals[m] += len(dets)
		}
	}
	if !(totals[YoloTiny] < totals[FasterRCNN50] && totals[FasterRCNN50] < totals[FasterRCNN101]) {
		t.Errorf("recall ordering violated: %v", totals)
	}
	if totals[FasterRCNN101] > ground {
		t.Errorf("detected more than ground truth: %d > %d", totals[FasterRCNN101], ground)
	}
	// Recall rates near profiles.
	for _, m := range []string{YoloTiny, FasterRCNN50, FasterRCNN101} {
		p, _ := ProfileFor(m)
		got := float64(totals[m]) / float64(ground)
		if math.Abs(got-p.Recall) > 0.05 {
			t.Errorf("%s recall = %v, want ≈ %v", m, got, p.Recall)
		}
	}
}

func TestDetectDeterministicAndValidated(t *testing.T) {
	payload := MediumUADetrac.EncodeFrame(7)
	a, err := Detect(FasterRCNN50, payload)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Detect(FasterRCNN50, payload)
	if len(a) != len(b) {
		t.Fatal("nondeterministic detect")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic detection fields")
		}
	}
	if _, err := Detect(CarTypeModel, payload); err == nil {
		t.Error("classifier used as detector should error")
	}
	if _, err := Detect(FasterRCNN50, []byte("junk payload")); err == nil {
		t.Error("junk payload should error")
	}
	for _, d := range a {
		if d.Score < 0.5 || d.Score > 1 {
			t.Errorf("score out of range: %v", d.Score)
		}
		if _, _, _, _, err := ParseBBox(d.BBox()); err != nil {
			t.Errorf("bbox round trip: %v", err)
		}
	}
}

func TestClassifiersMatchGroundTruthMostly(t *testing.T) {
	correctType, correctColor, total := 0, 0, 0
	for f := int64(0); f < 400; f++ {
		payload := MediumUADetrac.EncodeFrame(f)
		for _, o := range MediumUADetrac.Objects(f) {
			bbox := FormatBBox(o.X, o.Y, o.W, o.H)
			vt, err := ClassifyType(payload, bbox)
			if err != nil {
				t.Fatal(err)
			}
			if vt == o.VType {
				correctType++
			}
			col, err := ClassifyColor(payload, bbox)
			if err != nil {
				t.Fatal(err)
			}
			if col == o.Color {
				correctColor++
			}
			total++
		}
	}
	typeAcc := float64(correctType) / float64(total)
	colorAcc := float64(correctColor) / float64(total)
	if math.Abs(typeAcc-0.93) > 0.04 {
		t.Errorf("CarType accuracy = %v, want ≈ 0.93", typeAcc)
	}
	if math.Abs(colorAcc-0.91) > 0.04 {
		t.Errorf("ColorDet accuracy = %v, want ≈ 0.91", colorAcc)
	}
}

func TestClassifyTolerantOfJitteredBoxes(t *testing.T) {
	// A detector's jittered bbox must still resolve to the same object.
	for f := int64(0); f < 100; f++ {
		payload := MediumUADetrac.EncodeFrame(f)
		dets, err := Detect(FasterRCNN101, payload)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range dets {
			vt, err := ClassifyType(payload, d.BBox())
			if err != nil {
				t.Fatal(err)
			}
			if vt == "unknown" {
				t.Fatalf("frame %d: jittered bbox %s failed to match", f, d.BBox())
			}
		}
	}
}

func TestClassifyUnknownForFarBBox(t *testing.T) {
	// A bbox far from every object returns "unknown".
	var frame int64 = -1
	for f := int64(0); f < 100; f++ {
		objs := Jackson.Objects(f)
		if len(objs) == 1 && objs[0].X < 0.3 && objs[0].Y < 0.3 {
			frame = f
			break
		}
	}
	if frame < 0 {
		t.Skip("no suitable frame found")
	}
	payload := Jackson.EncodeFrame(frame)
	got, err := ClassifyType(payload, FormatBBox(0.9, 0.9, 0.05, 0.05))
	if err != nil {
		t.Fatal(err)
	}
	if got != "unknown" {
		t.Errorf("far bbox classified as %q", got)
	}
}

func TestReadLicenseFindsPlantedPlate(t *testing.T) {
	found := 0
	for f := int64(0); f < 5000 && found == 0; f++ {
		for _, o := range MediumUADetrac.Objects(f) {
			if o.Plate == PlantedPlate {
				payload := MediumUADetrac.EncodeFrame(f)
				got, err := ReadLicense(payload, FormatBBox(o.X, o.Y, o.W, o.H))
				if err != nil {
					t.Fatal(err)
				}
				if got == PlantedPlate {
					found++
				}
			}
		}
	}
	if found == 0 {
		t.Error("planted plate never found in 5000 frames")
	}
}

func TestFilterVehicles(t *testing.T) {
	skippedEmpty, empty := 0, 0
	for f := int64(0); f < 2000; f++ {
		payload := Jackson.EncodeFrame(f)
		got, err := FilterVehicles(payload)
		if err != nil {
			t.Fatal(err)
		}
		hasVehicle := len(Jackson.Objects(f)) > 0
		if hasVehicle && !got {
			// The filter's contract: never drop a frame with vehicles.
			t.Fatalf("frame %d: filter dropped a vehicle frame", f)
		}
		if !hasVehicle {
			empty++
			if !got {
				skippedEmpty++
			}
		}
	}
	if empty == 0 {
		t.Fatal("no empty frames sampled")
	}
	// Roughly filterSkipConfidence of empty frames are skipped.
	frac := float64(skippedEmpty) / float64(empty)
	if math.Abs(frac-filterSkipConfidence) > 0.05 {
		t.Errorf("empty-frame skip rate = %v, want ≈ %v", frac, filterSkipConfidence)
	}
}

func TestParseAccuracy(t *testing.T) {
	for s, want := range map[string]AccuracyLevel{"low": AccuracyLow, "Medium": AccuracyMedium, "HIGH": AccuracyHigh} {
		got, err := ParseAccuracy(s)
		if err != nil || got != want {
			t.Errorf("ParseAccuracy(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseAccuracy("ultra"); err == nil {
		t.Error("bad accuracy should error")
	}
	if AccuracyHigh.String() != "HIGH" {
		t.Error("accuracy rendering")
	}
	if !(AccuracyLow < AccuracyMedium && AccuracyMedium < AccuracyHigh) {
		t.Error("accuracy ordering")
	}
}

func TestParseBBoxErrors(t *testing.T) {
	for _, s := range []string{"", "1,2,3", "a,b,c,d", "1,2,3,4,5"} {
		if _, _, _, _, err := ParseBBox(s); err == nil {
			t.Errorf("ParseBBox(%q) should error", s)
		}
	}
}

func TestDatasetByName(t *testing.T) {
	d, err := DatasetByName("jackson")
	if err != nil || d.Name != "jackson" {
		t.Errorf("DatasetByName: %v, %v", d, err)
	}
	if _, err := DatasetByName("ghost"); err == nil {
		t.Error("unknown dataset should error")
	}
	if MediumUADetrac.VirtualFrameBytes() != 960*540*3 {
		t.Error("virtual frame bytes")
	}
}
