// Package vision is the substrate standing in for the paper's video
// datasets and PyTorch vision models. A deterministic synthetic world
// assigns vehicles (bounding box, label, vehicle type, color, license
// plate) to every frame; frames are "rendered" into compact binary
// payloads; and model implementations decode those payloads with
// model-specific recall and classification noise, at the paper's
// profiled per-tuple costs.
//
// Determinism is load-bearing: the reuse algorithm assumes a UDF is a
// pure function of its inputs, so every model output is a deterministic
// function of (model, dataset seed, frame, object).
package vision

import "math"

// mix folds the given words into a single well-distributed 64-bit value
// using the splitmix64 finalizer. It is the source of all randomness in
// the synthetic world.
func mix(words ...uint64) uint64 {
	h := uint64(0x9E3779B97F4A7C15)
	for _, w := range words {
		h ^= w + 0x9E3779B97F4A7C15 + (h << 6) + (h >> 2)
		h += 0x9E3779B97F4A7C15
		h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9
		h = (h ^ (h >> 27)) * 0x94D049BB133111EB
		h ^= h >> 31
	}
	return h
}

// unit maps a hash to a float64 in [0, 1).
func unit(h uint64) float64 {
	return float64(h>>11) / float64(1<<53)
}

// pick selects an index from a categorical distribution given a uniform
// sample u in [0, 1). weights need not sum exactly to 1; the final
// bucket absorbs rounding.
func pick(u float64, weights []float64) int {
	acc := 0.0
	for i, w := range weights {
		acc += w
		if u < acc {
			return i
		}
	}
	return len(weights) - 1
}

// skewedArea maps a uniform sample to a bounding-box area in
// [minArea, maxArea], skewed toward small boxes (u² law), matching the
// small-vehicle-dominated distribution of traffic camera footage.
func skewedArea(u, minArea, maxArea float64) float64 {
	return minArea + (maxArea-minArea)*u*u
}

// splitAspect splits an area into width × height with an aspect ratio
// in [0.6, 1.8] chosen by the second sample.
func splitAspect(area, u float64) (w, h float64) {
	aspect := 0.6 + 1.2*u
	w = math.Sqrt(area * aspect)
	h = area / w
	return w, h
}
