package vision

import (
	"fmt"
	"math"
)

// Object is one ground-truth entity in a frame. Coordinates are
// normalized to [0, 1] relative to the frame; Area is W×H (i.e. area
// relative to the frame size, the quantity Listing 1's AREA(bbox)
// predicate compares against).
type Object struct {
	ID    int // index within the frame
	Label string
	X, Y  float64
	W, H  float64
	VType string
	Color string
	Plate string
}

// Area returns the relative bounding-box area.
func (o Object) Area() float64 { return o.W * o.H }

// Ground-truth categorical domains with their sampling weights. The
// catalog exposes these as UDF-output statistics for selectivity
// estimation, mirroring how the paper profiles model output
// distributions.
var (
	Labels       = []string{"car", "bus", "truck"}
	LabelWeights = []float64{0.85, 0.10, 0.05}

	VehicleTypes = []string{"Nissan", "Toyota", "Ford", "Honda", "BMW"}
	TypeWeights  = []float64{0.25, 0.22, 0.20, 0.18, 0.15}

	Colors       = []string{"Gray", "Black", "White", "Red", "Blue"}
	ColorWeights = []float64{0.30, 0.25, 0.20, 0.15, 0.10}
)

// PlantedPlate is the license plate of the "suspicious vehicle" the
// motivating example (Listing 1, Q3) searches for; the world plants it
// on a small fraction of vehicles so plate queries have hits.
const PlantedPlate = "XYZ60"

// plantedPlateProb is the probability a vehicle carries PlantedPlate.
const plantedPlateProb = 0.002

// Dataset describes a synthetic video. It substitutes for the paper's
// UA-DETRAC and JACKSON datasets, matching their published statistics:
// frame counts, resolution, and mean vehicles per frame.
type Dataset struct {
	Name    string
	Frames  int
	Width   int
	Height  int
	Density float64 // mean objects per frame
	Seed    uint64
}

// The evaluation datasets (§5.1).
var (
	// ShortUADetrac mirrors SHORT-UA-DETRAC: 5 clips, 7.5k frames.
	ShortUADetrac = Dataset{Name: "short-ua-detrac", Frames: 7500, Width: 960, Height: 540, Density: 8.3, Seed: 0xDE7AC}
	// MediumUADetrac mirrors MEDIUM-UA-DETRAC: 10 clips, 14k frames.
	MediumUADetrac = Dataset{Name: "medium-ua-detrac", Frames: 14000, Width: 960, Height: 540, Density: 8.3, Seed: 0xDE7AC}
	// LongUADetrac mirrors LONG-UA-DETRAC: 20 clips, 28k frames with a
	// slightly higher vehicle density, as the paper observes.
	LongUADetrac = Dataset{Name: "long-ua-detrac", Frames: 28000, Width: 960, Height: 540, Density: 8.9, Seed: 0xDE7AC}
	// Jackson mirrors JACKSON (night-street): 14k frames, 600×400,
	// 0.1 vehicles per frame.
	Jackson = Dataset{Name: "jackson", Frames: 14000, Width: 600, Height: 400, Density: 0.1, Seed: 0x7AC50}
)

// Datasets lists the built-in datasets by name.
func Datasets() map[string]Dataset {
	return map[string]Dataset{
		ShortUADetrac.Name:  ShortUADetrac,
		MediumUADetrac.Name: MediumUADetrac,
		LongUADetrac.Name:   LongUADetrac,
		Jackson.Name:        Jackson,
	}
}

// DatasetByName returns the named built-in dataset.
func DatasetByName(name string) (Dataset, error) {
	d, ok := Datasets()[name]
	if !ok {
		return Dataset{}, fmt.Errorf("vision: unknown dataset %q", name)
	}
	return d, nil
}

// VirtualFrameBytes is the simulated decoded size of one frame
// (RGB24); the storage engine accounts video footprint with it so the
// storage-overhead experiment (§5.2) compares against a realistic
// dataset size rather than the compact payload encoding.
func (d Dataset) VirtualFrameBytes() int { return d.Width * d.Height * 3 }

// objectCount returns the deterministic number of objects in a frame,
// drawn from a clamped integer-splitting of the density so the mean
// over frames approaches Density and objects are near-uniformly spread
// (the property §5.5 relies on).
func (d Dataset) objectCount(frame int64) int {
	h := mix(d.Seed, uint64(frame), 0xC0117)
	u := unit(h)
	base := math.Floor(d.Density)
	frac := d.Density - base
	n := int(base)
	if u < frac {
		n++
	}
	// ±25% frame-to-frame variation for densities above 1.
	if base >= 1 {
		v := unit(mix(d.Seed, uint64(frame), 0x5A17))
		n += int(math.Round((v - 0.5) * 0.5 * d.Density))
		if n < 0 {
			n = 0
		}
	}
	return n
}

// Objects returns the ground-truth objects of a frame. The result is a
// pure function of (dataset, frame).
func (d Dataset) Objects(frame int64) []Object {
	n := d.objectCount(frame)
	out := make([]Object, 0, n)
	for i := 0; i < n; i++ {
		oid := uint64(i)
		f := uint64(frame)
		label := Labels[pick(unit(mix(d.Seed, f, oid, 1)), LabelWeights)]
		area := skewedArea(unit(mix(d.Seed, f, oid, 2)), 0.01, 0.60)
		w, h := splitAspect(area, unit(mix(d.Seed, f, oid, 3)))
		if w > 0.95 {
			w = 0.95
		}
		if h > 0.95 {
			h = 0.95
		}
		x := unit(mix(d.Seed, f, oid, 4)) * (1 - w)
		y := unit(mix(d.Seed, f, oid, 5)) * (1 - h)
		vt := VehicleTypes[pick(unit(mix(d.Seed, f, oid, 6)), TypeWeights)]
		color := Colors[pick(unit(mix(d.Seed, f, oid, 7)), ColorWeights)]
		plate := d.plate(f, oid)
		out = append(out, Object{
			ID: i, Label: label, X: x, Y: y, W: w, H: h,
			VType: vt, Color: color, Plate: plate,
		})
	}
	return out
}

// plate derives a deterministic license plate, occasionally planting
// the suspicious vehicle's plate.
func (d Dataset) plate(frame, oid uint64) string {
	if unit(mix(d.Seed, frame, oid, 8)) < plantedPlateProb {
		return PlantedPlate
	}
	const letters = "ABCDEFGHJKLMNPRSTUVWXYZ"
	const digits = "0123456789"
	h := mix(d.Seed, frame, oid, 9)
	b := make([]byte, 5)
	for i := 0; i < 3; i++ {
		b[i] = letters[h%uint64(len(letters))]
		h /= uint64(len(letters))
	}
	for i := 3; i < 5; i++ {
		b[i] = digits[h%10]
		h /= 10
	}
	return string(b)
}

// AvgObjectsPerFrame measures the realized mean density over the first
// sample frames (all frames when sample ≤ 0); Fig. 12's right axis
// reports this quantity.
func (d Dataset) AvgObjectsPerFrame(sample int) float64 {
	if sample <= 0 || sample > d.Frames {
		sample = d.Frames
	}
	total := 0
	for f := 0; f < sample; f++ {
		total += d.objectCount(int64(f))
	}
	return float64(total) / float64(sample)
}
