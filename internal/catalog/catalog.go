// Package catalog maintains EVA's metadata: video tables and their
// schemas, UDF definitions (logical type, accuracy, profiled cost,
// output schema), and the statistics the optimizer's selectivity
// estimation consumes.
package catalog

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"eva/internal/types"
	"eva/internal/vision"
)

// VideoSchema is the schema of a loaded video table: a frame id, a
// timestamp in seconds, and the frame payload.
var VideoSchema = types.MustSchema(
	types.Column{Name: "id", Kind: types.KindInt},
	types.Column{Name: "seconds", Kind: types.KindFloat},
	types.Column{Name: "frame", Kind: types.KindBytes},
)

// DetectorSchema is the output schema of object-detection UDFs: one row
// per detection, joined against the input frame by the Apply operator.
var DetectorSchema = types.MustSchema(
	types.Column{Name: "label", Kind: types.KindString},
	types.Column{Name: "bbox", Kind: types.KindString},
	types.Column{Name: "score", Kind: types.KindFloat},
	types.Column{Name: "area", Kind: types.KindFloat},
)

// Table describes a video table registered with the catalog.
type Table struct {
	Name    string
	Schema  types.Schema
	Dataset vision.Dataset
	Stats   *Stats
}

// RowCount returns the number of frames.
func (t *Table) RowCount() int64 { return int64(t.Dataset.Frames) }

// UDFKind distinguishes how a UDF is applied.
type UDFKind int

// UDF kinds.
const (
	// KindTableUDF produces multiple output rows per input row and is
	// bound with CROSS APPLY (e.g. object detectors).
	KindTableUDF UDFKind = iota
	// KindScalarUDF produces one value per input row and appears inside
	// predicates or projections (e.g. CarType, ColorDet).
	KindScalarUDF
)

// UDF is a registered user-defined function wrapping a vision model.
type UDF struct {
	Name        string
	Kind        UDFKind
	LogicalType string
	Accuracy    vision.AccuracyLevel
	Cost        time.Duration // profiled per-tuple evaluation cost (c_e)
	Device      string
	Inputs      []string     // input column names
	Outputs     types.Schema // output columns added by the UDF
	Impl        string       // implementation path (CREATE UDF ... IMPL)
	// Expensive marks the UDF as a materialization candidate; the
	// optimizer profiles cost against a threshold (§3.1 step ①).
	Expensive bool
}

// OutputColumn returns the single output column name of a scalar UDF.
func (u *UDF) OutputColumn() string {
	if len(u.Outputs) == 0 {
		return ""
	}
	return u.Outputs[0].Name
}

// Catalog is the metadata store. It is safe for concurrent use.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*Table // guarded by mu
	udfs   map[string]*UDF   // guarded by mu
}

// New returns a catalog pre-populated with the built-in model zoo
// (the physical UDFs of Table 3 and Table 5 plus the specialized
// filter), mirroring the CREATE UDF statements of Listing 2.
func New() *Catalog {
	c := &Catalog{tables: map[string]*Table{}, udfs: map[string]*UDF{}}
	for _, name := range []string{vision.YoloTiny, vision.FasterRCNN50, vision.FasterRCNN101} {
		p, _ := vision.ProfileFor(name)
		c.mustRegister(&UDF{
			Name: name, Kind: KindTableUDF, LogicalType: p.LogicalType,
			Accuracy: p.Accuracy, Cost: p.Cost, Device: p.Device,
			Inputs: []string{"frame"}, Outputs: DetectorSchema,
			Impl: "builtin:" + name, Expensive: true,
		})
	}
	scalarOut := func(name string, kind types.Kind) types.Schema {
		return types.MustSchema(types.Column{Name: name, Kind: kind})
	}
	for _, s := range []struct {
		model string
		out   types.Schema
	}{
		{vision.CarTypeModel, scalarOut("cartype_out", types.KindString)},
		{vision.ColorDetModel, scalarOut("colordet_out", types.KindString)},
		{vision.LicenseModel, scalarOut("license_out", types.KindString)},
	} {
		p, _ := vision.ProfileFor(s.model)
		c.mustRegister(&UDF{
			Name: s.model, Kind: KindScalarUDF, LogicalType: p.LogicalType,
			Accuracy: p.Accuracy, Cost: p.Cost, Device: p.Device,
			Inputs: []string{"frame", "bbox"}, Outputs: s.out,
			Impl: "builtin:" + s.model, Expensive: true,
		})
	}
	fp, _ := vision.ProfileFor(vision.VehicleFilter)
	c.mustRegister(&UDF{
		Name: vision.VehicleFilter, Kind: KindScalarUDF, LogicalType: fp.LogicalType,
		Accuracy: fp.Accuracy, Cost: fp.Cost, Device: fp.Device,
		Inputs: []string{"frame"}, Outputs: scalarOut("vehiclefilter_out", types.KindBool),
		Impl: "builtin:" + vision.VehicleFilter, Expensive: true,
	})
	// AREA is the canonical inexpensive UDF the optimizer filters out
	// of materialization candidates (§3.1).
	c.mustRegister(&UDF{
		Name: "Area", Kind: KindScalarUDF, LogicalType: "Area",
		Cost: 2 * time.Microsecond, Device: "CPU",
		Inputs: []string{"bbox"}, Outputs: scalarOut("area_out", types.KindFloat),
		Impl: "builtin:Area", Expensive: false,
	})
	return c
}

func (c *Catalog) mustRegister(u *UDF) {
	if err := c.RegisterUDF(u); err != nil {
		panic(err)
	}
}

// RegisterUDF adds or replaces a UDF definition.
func (c *Catalog) RegisterUDF(u *UDF) error {
	if u.Name == "" {
		return fmt.Errorf("catalog: UDF with empty name")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.udfs[strings.ToLower(u.Name)] = u
	return nil
}

// UDF returns the named UDF definition.
func (c *Catalog) UDF(name string) (*UDF, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	u, ok := c.udfs[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("catalog: unknown UDF %q", name)
	}
	return u, nil
}

// HasUDF reports whether the name is a registered UDF.
func (c *Catalog) HasUDF(name string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	_, ok := c.udfs[strings.ToLower(name)]
	return ok
}

// UDFsForLogical returns every UDF implementing the logical type with
// accuracy ≥ min, ascending by cost with name as tiebreaker. The
// tiebreaker matters: candidates come out of a map, and equal-cost
// UDFs in map order would leak iteration nondeterminism into plan
// choice (and therefore into simulated time).
func (c *Catalog) UDFsForLogical(logical string, min vision.AccuracyLevel) []*UDF {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []*UDF
	for _, u := range c.udfs {
		if strings.EqualFold(u.LogicalType, logical) && u.Accuracy >= min {
			out = append(out, u)
		}
	}
	less := func(a, b *UDF) bool {
		if a.Cost != b.Cost {
			return a.Cost < b.Cost
		}
		return a.Name < b.Name
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && less(out[j], out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// RegisterVideo creates a table over the dataset, computing statistics
// by sampling the synthetic world (the moral equivalent of LOAD VIDEO
// followed by ANALYZE).
func (c *Catalog) RegisterVideo(name string, ds vision.Dataset) (*Table, error) {
	stats := BuildStats(ds)
	t := &Table{Name: name, Schema: VideoSchema.Clone(), Dataset: ds, Stats: stats}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.tables[strings.ToLower(name)]; dup {
		return nil, fmt.Errorf("catalog: table %q already exists", name)
	}
	c.tables[strings.ToLower(name)] = t
	return t, nil
}

// Table returns the named table.
func (c *Catalog) Table(name string) (*Table, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("catalog: unknown table %q", name)
	}
	return t, nil
}

// Tables returns all registered table names, sorted.
func (c *Catalog) Tables() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.tables))
	for n := range c.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
