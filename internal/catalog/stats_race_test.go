package catalog

import (
	"sync"
	"testing"

	"eva/internal/symbolic"
)

// TestStatsConcurrentUpdateAndSelect runs concurrent statistics
// refreshes (SetNumeric/SetCategorical, as a background stats
// collector would issue) against selectivity lookups from planning
// threads. The copy-on-read discipline — setters replace whole
// histogram/frequency values under the write lock, selectors fetch
// the reference under the read lock and then work on the immutable
// snapshot — must keep -race quiet.
func TestStatsConcurrentUpdateAndSelect(t *testing.T) {
	s := NewStats(symbolic.UniformStats{Lo: 0, Hi: 1000, DomainSize: 20})
	ivs := symbolic.NewIntervalSet(symbolic.Interval{Lo: 0, Hi: 500})
	cat := symbolic.NewCatSet("car", "truck")

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				samples := make([]float64, 64)
				for j := range samples {
					samples[j] = float64((w*300 + i + j) % 1000)
				}
				s.SetNumeric("id", NewHistogram(0, 1000, 16, samples))
				s.SetCategorical("label", map[string]float64{
					"car":    0.5,
					"truck":  0.3,
					"person": 0.2,
				})
			}
		}(w)
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				if sel := s.SelNumeric("id", ivs); sel < 0 || sel > 1 {
					t.Errorf("SelNumeric out of range: %v", sel)
					return
				}
				if sel := s.SelCategorical("label", cat); sel < 0 || sel > 1 {
					t.Errorf("SelCategorical out of range: %v", sel)
					return
				}
			}
		}()
	}
	wg.Wait()
}
