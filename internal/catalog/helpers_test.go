package catalog

import (
	"eva/internal/expr"
	"eva/internal/types"
)

// Small expression-building helpers shared by the package tests.

type exprT = expr.Expr

func mkAnd(l, r exprT) exprT { return expr.NewAnd(l, r) }

func mkCmpLtIntCol(col string, v int64) exprT {
	return expr.NewCmp(expr.OpLt, expr.NewColumn(col), expr.NewConst(types.NewInt(v)))
}

func mkCmpEqStrCol(col, v string) exprT {
	return expr.NewCmp(expr.OpEq, expr.NewColumn(col), expr.NewConst(types.NewString(v)))
}
