package catalog

import (
	"strings"
	"sync"

	"eva/internal/symbolic"
	"eva/internal/vision"
)

// Histogram is an equi-width histogram over a numeric term's domain,
// following the histogram-based selectivity estimation of traditional
// DBMSs the paper adopts (§4.2).
type Histogram struct {
	Lo, Hi  float64
	Buckets []float64 // fraction of values per bucket; sums to ≈ 1
}

// NewHistogram builds a histogram from samples.
func NewHistogram(lo, hi float64, buckets int, samples []float64) *Histogram {
	h := &Histogram{Lo: lo, Hi: hi, Buckets: make([]float64, buckets)}
	if len(samples) == 0 || hi <= lo {
		return h
	}
	width := (hi - lo) / float64(buckets)
	for _, s := range samples {
		idx := int((s - lo) / width)
		if idx < 0 {
			idx = 0
		}
		if idx >= buckets {
			idx = buckets - 1
		}
		h.Buckets[idx]++
	}
	for i := range h.Buckets {
		h.Buckets[i] /= float64(len(samples))
	}
	return h
}

// Fraction estimates the fraction of values falling in the interval set,
// assuming uniformity within buckets.
func (h *Histogram) Fraction(ivs symbolic.IntervalSet) float64 {
	if len(h.Buckets) == 0 {
		return 0.5
	}
	width := (h.Hi - h.Lo) / float64(len(h.Buckets))
	total := 0.0
	for i, frac := range h.Buckets {
		bLo := h.Lo + float64(i)*width
		bHi := bLo + width
		covered := 0.0
		for _, iv := range ivs.Intervals() {
			lo, hi := iv.Lo, iv.Hi
			if lo < bLo {
				lo = bLo
			}
			if hi > bHi {
				hi = bHi
			}
			if hi > lo {
				covered += hi - lo
			} else if iv.Lo == iv.Hi && iv.Contains(iv.Lo) && iv.Lo >= bLo && iv.Lo < bHi {
				// Point predicate: assume 100 distinct values per bucket.
				covered += width / 100
			}
		}
		if covered > width {
			covered = width
		}
		total += frac * (covered / width)
	}
	return total
}

// Stats implements symbolic.Stats over per-term histograms and
// categorical frequency tables. Term lookup first tries the exact
// canonical term (e.g. "cartype(frame, bbox)"), then the base function
// or column name ("cartype"), so UDF-output statistics apply to any
// argument spelling.
type Stats struct {
	mu    sync.RWMutex
	num   map[string]*Histogram         // guarded by mu
	cat   map[string]map[string]float64 // guarded by mu
	fall  symbolic.UniformStats
	total float64
}

// NewStats returns an empty statistics table with a uniform fallback.
func NewStats(fallback symbolic.UniformStats) *Stats {
	return &Stats{num: map[string]*Histogram{}, cat: map[string]map[string]float64{}, fall: fallback}
}

// SetNumeric registers a numeric term's histogram.
func (s *Stats) SetNumeric(term string, h *Histogram) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.num[normalizeTerm(term)] = h
}

// SetCategorical registers a categorical term's value frequencies.
func (s *Stats) SetCategorical(term string, freqs map[string]float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cat[normalizeTerm(term)] = freqs
}

func normalizeTerm(t string) string {
	t = strings.ToLower(strings.TrimSpace(t))
	if i := strings.IndexByte(t, '('); i > 0 {
		t = t[:i]
	}
	return t
}

// SelNumeric implements symbolic.Stats.
func (s *Stats) SelNumeric(term string, ivs symbolic.IntervalSet) float64 {
	s.mu.RLock()
	h, ok := s.num[normalizeTerm(term)]
	s.mu.RUnlock()
	if !ok {
		return s.fall.SelNumeric(term, ivs)
	}
	return h.Fraction(ivs)
}

// SelCategorical implements symbolic.Stats.
func (s *Stats) SelCategorical(term string, cat symbolic.CatSet) float64 {
	s.mu.RLock()
	freqs, ok := s.cat[normalizeTerm(term)]
	s.mu.RUnlock()
	if !ok {
		return s.fall.SelCategorical(term, cat)
	}
	inSum := 0.0
	for v := range cat.Vals {
		inSum += freqs[v]
	}
	if cat.Negated {
		return clamp01(1 - inSum)
	}
	return clamp01(inSum)
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// statsSampleFrames bounds the ingest-time sampling work per video.
const statsSampleFrames = 1000

// BuildStats samples the dataset's ground truth to build the
// statistics the optimizer needs: the id range, per-detection area and
// score distributions, label frequencies, and the output distributions
// of the classification UDFs.
func BuildStats(ds vision.Dataset) *Stats {
	s := NewStats(symbolic.UniformStats{Lo: 0, Hi: float64(ds.Frames), DomainSize: 10})

	// id is uniform over [0, frames).
	idHist := &Histogram{Lo: 0, Hi: float64(ds.Frames), Buckets: make([]float64, 64)}
	for i := range idHist.Buckets {
		idHist.Buckets[i] = 1.0 / float64(len(idHist.Buckets))
	}
	s.SetNumeric("id", idHist)
	secHist := &Histogram{Lo: 0, Hi: float64(ds.Frames) / 30.0, Buckets: idHist.Buckets}
	s.SetNumeric("seconds", secHist)

	step := ds.Frames / statsSampleFrames
	if step < 1 {
		step = 1
	}
	var areas []float64
	labelCounts := map[string]float64{}
	typeCounts := map[string]float64{}
	colorCounts := map[string]float64{}
	n := 0.0
	for f := 0; f < ds.Frames; f += step {
		for _, o := range ds.Objects(int64(f)) {
			areas = append(areas, o.Area())
			labelCounts[o.Label]++
			typeCounts[o.VType]++
			colorCounts[o.Color]++
			n++
		}
	}
	if n == 0 {
		n = 1
	}
	norm := func(m map[string]float64) map[string]float64 {
		out := make(map[string]float64, len(m))
		for k, v := range m {
			out[k] = v / n
		}
		return out
	}
	s.SetNumeric("area", NewHistogram(0, 0.65, 32, areas))
	// Detector confidence scores are uniform on [0.5, 1) by model
	// construction; register the analytic histogram directly.
	s.SetNumeric("score", &Histogram{Lo: 0.5, Hi: 1.0, Buckets: uniformBuckets(16)})
	s.SetCategorical("label", norm(labelCounts))
	s.SetCategorical("cartype", norm(typeCounts))
	s.SetCategorical("colordet", norm(colorCounts))
	s.SetCategorical("license", map[string]float64{vision.PlantedPlate: 0.002})
	s.SetCategorical("vehiclefilter", map[string]float64{"⊤": minf(1, ds.Density)})
	return s
}

func uniformBuckets(n int) []float64 {
	b := make([]float64, n)
	for i := range b {
		b[i] = 1.0 / float64(n)
	}
	return b
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
