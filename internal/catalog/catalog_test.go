package catalog

import (
	"math"
	"testing"
	"time"

	"eva/internal/symbolic"
	"eva/internal/types"
	"eva/internal/vision"
)

func TestBuiltinUDFs(t *testing.T) {
	c := New()
	for _, name := range []string{vision.YoloTiny, vision.FasterRCNN50, vision.FasterRCNN101, "CarType", "ColorDet", "License", "Area", "VehicleFilter"} {
		u, err := c.UDF(name)
		if err != nil {
			t.Fatalf("missing builtin %s: %v", name, err)
		}
		if u.Name != name {
			t.Errorf("name mismatch: %q", u.Name)
		}
	}
	// Case-insensitive lookup.
	if !c.HasUDF("cartype") || c.HasUDF("ghost") {
		t.Error("HasUDF misbehaves")
	}
	u, _ := c.UDF("FasterRCNNResnet50")
	if u.Kind != KindTableUDF || u.Cost != 99*time.Millisecond || !u.Expensive {
		t.Errorf("FRCNN50 definition wrong: %+v", u)
	}
	area, _ := c.UDF("Area")
	if area.Expensive {
		t.Error("Area must be inexpensive (the §3.1 candidate filter)")
	}
	ct, _ := c.UDF("CarType")
	if ct.Kind != KindScalarUDF || ct.OutputColumn() != "cartype_out" {
		t.Errorf("CarType definition wrong: %+v", ct)
	}
}

func TestUDFsForLogical(t *testing.T) {
	c := New()
	all := c.UDFsForLogical("ObjectDetector", vision.AccuracyLow)
	if len(all) != 3 || all[0].Name != vision.YoloTiny {
		t.Fatalf("detectors = %v", names(all))
	}
	med := c.UDFsForLogical("ObjectDetector", vision.AccuracyMedium)
	if len(med) != 2 || med[0].Name != vision.FasterRCNN50 {
		t.Fatalf("medium+ detectors = %v", names(med))
	}
	high := c.UDFsForLogical("ObjectDetector", vision.AccuracyHigh)
	if len(high) != 1 || high[0].Name != vision.FasterRCNN101 {
		t.Fatalf("high detectors = %v", names(high))
	}
}

func names(us []*UDF) []string {
	out := make([]string, len(us))
	for i, u := range us {
		out[i] = u.Name
	}
	return out
}

func TestRegisterUDFValidation(t *testing.T) {
	c := New()
	if err := c.RegisterUDF(&UDF{}); err == nil {
		t.Error("empty name should error")
	}
	custom := &UDF{Name: "RedSUV", Kind: KindScalarUDF, LogicalType: "RedSUV",
		Cost: 7 * time.Millisecond, Outputs: types.MustSchema(types.Column{Name: "redsuv_out", Kind: types.KindBool})}
	if err := c.RegisterUDF(custom); err != nil {
		t.Fatal(err)
	}
	got, err := c.UDF("redsuv")
	if err != nil || got.Name != "RedSUV" {
		t.Errorf("custom UDF: %v, %v", got, err)
	}
	if _, err := c.UDF("nothere"); err == nil {
		t.Error("unknown UDF should error")
	}
}

func TestRegisterVideo(t *testing.T) {
	c := New()
	tbl, err := c.RegisterVideo("video", vision.Jackson)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.RowCount() != 14000 {
		t.Errorf("RowCount = %d", tbl.RowCount())
	}
	if !tbl.Schema.Equal(VideoSchema) {
		t.Errorf("schema = %s", tbl.Schema)
	}
	if _, err := c.RegisterVideo("video", vision.Jackson); err == nil {
		t.Error("duplicate table should error")
	}
	got, err := c.Table("VIDEO")
	if err != nil || got != tbl {
		t.Error("case-insensitive table lookup failed")
	}
	if _, err := c.Table("nope"); err == nil {
		t.Error("unknown table should error")
	}
	if len(c.Tables()) != 1 {
		t.Errorf("Tables = %v", c.Tables())
	}
}

func TestHistogramFraction(t *testing.T) {
	samples := make([]float64, 0, 1000)
	for i := 0; i < 1000; i++ {
		samples = append(samples, float64(i)/1000) // uniform [0,1)
	}
	h := NewHistogram(0, 1, 20, samples)
	iv := symbolic.NewIntervalSet(symbolic.Interval{Lo: 0.25, Hi: 0.75})
	if got := h.Fraction(iv); math.Abs(got-0.5) > 0.05 {
		t.Errorf("Fraction([0.25,0.75]) = %v, want 0.5", got)
	}
	if got := h.Fraction(symbolic.FullIntervalSet()); math.Abs(got-1) > 0.01 {
		t.Errorf("Fraction(full) = %v", got)
	}
	if got := h.Fraction(symbolic.IntervalSet{}); got != 0 {
		t.Errorf("Fraction(empty) = %v", got)
	}
	// Point predicate gets a small nonzero fraction.
	pt := symbolic.NewIntervalSet(symbolic.Point(0.5))
	if got := h.Fraction(pt); got <= 0 || got > 0.01 {
		t.Errorf("Fraction(point) = %v", got)
	}
	// Empty histogram falls back to 0.5.
	empty := &Histogram{}
	if got := empty.Fraction(iv); got != 0.5 {
		t.Errorf("empty histogram fraction = %v", got)
	}
}

func TestBuildStatsSelectivities(t *testing.T) {
	stats := BuildStats(vision.MediumUADetrac)

	// id < 7000 over 14000 frames ≈ 0.5.
	half := symbolic.NewIntervalSet(symbolic.Interval{Lo: math.Inf(-1), LoOpen: true, Hi: 7000, HiOpen: true})
	if got := stats.SelNumeric("id", half); math.Abs(got-0.5) > 0.02 {
		t.Errorf("sel(id<7000) = %v, want 0.5", got)
	}

	// label = 'car' ≈ 0.85.
	if got := stats.SelCategorical("label", symbolic.NewCatSet("car")); math.Abs(got-0.85) > 0.05 {
		t.Errorf("sel(label=car) = %v, want ≈ 0.85", got)
	}
	// Negation.
	if got := stats.SelCategorical("label", symbolic.NewCatSetNot("car")); math.Abs(got-0.15) > 0.05 {
		t.Errorf("sel(label!=car) = %v, want ≈ 0.15", got)
	}

	// UDF output stats resolve through the call-term normalization.
	sel := stats.SelCategorical("cartype(frame, bbox)", symbolic.NewCatSet("Nissan"))
	if math.Abs(sel-0.25) > 0.05 {
		t.Errorf("sel(CarType=Nissan) = %v, want ≈ 0.25", sel)
	}

	// area > 0.3 should be moderately selective (u² law ⇒ ≈ 0.3).
	gt3 := symbolic.NewIntervalSet(symbolic.Interval{Lo: 0.3, LoOpen: true, Hi: math.Inf(1), HiOpen: true})
	if got := stats.SelNumeric("area", gt3); got < 0.15 || got > 0.45 {
		t.Errorf("sel(area>0.3) = %v, want ≈ 0.3", got)
	}

	// Unknown terms use the fallback rather than failing.
	if got := stats.SelNumeric("mystery", half); got <= 0 || got > 1 {
		t.Errorf("fallback numeric sel = %v", got)
	}
	if got := stats.SelCategorical("mystery", symbolic.NewCatSet("x")); got < 0 || got > 1 {
		t.Errorf("fallback categorical sel = %v", got)
	}
}

func TestStatsIntegrationWithSymbolicSelectivity(t *testing.T) {
	stats := BuildStats(vision.MediumUADetrac)
	// sel(id < 10000 ∧ label = 'car') ≈ (10000/14000) × 0.85 ≈ 0.607.
	e := andExpr(t)
	d, err := symbolic.FromExpr(e)
	if err != nil {
		t.Fatal(err)
	}
	got := symbolic.Selectivity(d, stats)
	want := (10000.0 / 14000.0) * 0.85
	if math.Abs(got-want) > 0.05 {
		t.Errorf("combined selectivity = %v, want ≈ %v", got, want)
	}
}

func andExpr(t *testing.T) exprT {
	t.Helper()
	return mkAnd(
		mkCmpLtIntCol("id", 10000),
		mkCmpEqStrCol("label", "car"),
	)
}
