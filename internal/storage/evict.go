// Disk-pressure survival, stage 2: benefit-ranked view eviction
// (DESIGN.md §16). When the disk budget tightens, the engine reclaims
// space along a degrade ladder — compact fragmented view logs first
// (they carry quarantined dead ranges), then evict whole cold views,
// lowest benefit first — and only when the ladder runs dry does an
// append surface the typed ErrDiskBudget. An evicted view is written
// as a crash-safe tombstone: its presence alone commits the eviction,
// so a reopen at any kill-point sees either the intact view or a
// clean slate, never a half-deleted zombie. The view's aggregated
// predicate is retracted by the eviction upcall, so the next query
// simply re-materializes it through the ordinary optimizer path.

package storage

import (
	"fmt"
	"os"
	"sort"
	"strings"

	"eva/internal/faults"
)

// tombPath returns the eviction-tombstone path for a view log path.
// The tombstone is presence-based: any file here — even empty or torn
// — marks the eviction committed, so writing it needs no checksum and
// no fsync ordering beyond the WriteFile itself.
func tombPath(path string) string { return path + ".tomb" }

// evictRetryMax bounds a single append's evict-retry loop — a backstop
// against unbounded injector schedules, far above what a real budget
// shortfall needs (each retry either freed bytes or drained a rule).
const evictRetryMax = 64

// EvictCandidate is one view's eviction-ranking snapshot.
type EvictCandidate struct {
	// Name is the view name.
	Name string
	// Footprint is the on-disk log size (the reclaimable bytes).
	Footprint int64
	// Rows and Keys are the materialized row and processed-key counts —
	// the recompute cost proxy.
	Rows, Keys int
	// LastTouch is the engine's access ordinal at the view's last use;
	// Now is the current ordinal. (Ordinals, not wall time: eviction
	// ranking stays deterministic and replayable.)
	LastTouch, Now uint64
}

// EvictRanker scores a candidate's retention benefit; the engine
// evicts lowest-score first. The default ranks by LastTouch (LRU);
// the eva layer installs the reuse-economics ranker (recompute cost ×
// recency-weighted hit rate per byte).
type EvictRanker func(EvictCandidate) float64

// SetBudget installs the engine's disk budget (nil disables
// budgeting; injected disk:full faults still drive the ladder).
func (e *Engine) SetBudget(b *DiskBudget) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.budget = b
	for _, v := range e.views {
		v.setBudget(b)
	}
	for _, vid := range e.videos {
		vid.setBudget(b)
	}
}

// Budget returns the engine's disk budget (nil when unbudgeted).
func (e *Engine) Budget() *DiskBudget {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.budget
}

// SetEvictPolicy installs the benefit ranker and the post-eviction
// upcall (called with no storage locks held; the eva layer uses it to
// retract the evicted view's aggregated predicate so the symbolic
// layer stays truthful). Either may be nil.
func (e *Engine) SetEvictPolicy(rank EvictRanker, onEvict func(view string)) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.ranker, e.onEvict = rank, onEvict
}

// SetRetryCharge installs the virtual-clock hook charged before each
// evict-retry of a disk-full append (the eva layer points it at the
// global clock's retry category).
func (e *Engine) SetRetryCharge(f func(attempt int)) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.retryCharge = f
}

// chargeRetry runs the installed retry-backoff hook, if any.
func (e *Engine) chargeRetry(attempt int) {
	e.mu.Lock()
	f := e.retryCharge
	e.mu.Unlock()
	if f != nil {
		f(attempt)
	}
}

// touchView stamps a view with the next access ordinal. Called on
// every engine-level view lookup, so ranking recency is per query,
// not per row.
func (e *Engine) touchView(v *View) {
	v.touch.Store(e.touchSeq.Add(1))
}

// Reclaim frees disk space until the budget has need bytes of
// headroom (or, when the shortage was injected rather than budgeted,
// until anything at all was freed), returning the bytes freed. The
// ladder: compact every fragmented view log, then evict whole views
// in ascending benefit order. exclude names the view whose append
// triggered the reclaim — evicting the log being appended would free
// nothing durable for the retry. Reclaim passes are serialized; the
// caller must hold no view locks.
func (e *Engine) Reclaim(need int64, exclude string) int64 {
	e.evictMu.Lock()
	defer e.evictMu.Unlock()
	b := e.Budget()
	var freed int64
	satisfied := func() bool {
		if freed <= 0 {
			return false
		}
		return b == nil || b.Headroom() >= need
	}

	// Tier 1: compaction. A quarantined log carries dead byte ranges
	// the generational rewrite leaves behind — space back without
	// giving up a single materialized row.
	for _, v := range e.evictSnapshot(exclude) {
		if v.Quarantine() == nil {
			continue
		}
		res, err := v.Compact()
		if err != nil {
			continue // the view stays; eviction below can still take it
		}
		if d := res.BytesBefore - res.BytesAfter; d > 0 {
			freed += d
			b.noteCompacted(d)
		}
		if satisfied() {
			return freed
		}
	}

	// Tier 2: whole-view eviction, lowest benefit first. Recency
	// weighting makes this cold-before-warm: a long-untouched view
	// ranks below a hot one regardless of recompute cost.
	cands := e.evictCandidates(exclude)
	rank := e.rankerOrDefault()
	sort.Slice(cands, func(i, j int) bool {
		si, sj := rank(cands[i]), rank(cands[j])
		if si != sj {
			return si < sj
		}
		return cands[i].Name < cands[j].Name
	})
	for _, c := range cands {
		v := e.viewNoTouch(c.Name)
		if v == nil {
			continue
		}
		got, err := v.evict()
		if err != nil || got <= 0 {
			continue
		}
		freed += got
		b.noteEvicted(got)
		if f := e.onEvictHook(); f != nil {
			f(c.Name)
		}
		if satisfied() {
			return freed
		}
	}
	return freed
}

// ReclaimOverHighWater is the background evictor's pass: when the
// budget sits above 90% full it reclaims down to 70%, smoothing disk
// pressure out of the append hot path. No-op when unbudgeted or under
// the high-water mark.
func (e *Engine) ReclaimOverHighWater() int64 {
	b := e.Budget()
	if b == nil {
		return 0
	}
	st := b.Stats()
	if st.LimitBytes <= 0 || st.UsedBytes <= st.LimitBytes/10*9 {
		return 0
	}
	low := st.LimitBytes / 10 * 7
	return e.Reclaim(st.LimitBytes-low, "")
}

// evictSnapshot returns the open views except exclude, sorted by name
// for a deterministic ladder order.
func (e *Engine) evictSnapshot(exclude string) []*View {
	ex := strings.ToLower(exclude)
	e.mu.Lock()
	views := make([]*View, 0, len(e.views))
	// lint:unordered snapshot; sorted below
	for key, v := range e.views {
		if key == ex {
			continue
		}
		views = append(views, v)
	}
	e.mu.Unlock()
	sort.Slice(views, func(i, j int) bool { return views[i].name < views[j].name })
	return views
}

// evictCandidates snapshots the rankable views: open, alive, and
// holding something worth freeing.
func (e *Engine) evictCandidates(exclude string) []EvictCandidate {
	now := e.touchSeq.Load()
	var out []EvictCandidate
	for _, v := range e.evictSnapshot(exclude) {
		v.mu.RLock()
		ok := v.file != nil && !v.dead && (v.batch.Len() > 0 || len(v.processed) > 0)
		c := EvictCandidate{
			Name:      v.name,
			Footprint: v.footprint,
			Rows:      v.batch.Len(),
			Keys:      len(v.processed),
			LastTouch: v.touch.Load(),
			Now:       now,
		}
		v.mu.RUnlock()
		if ok {
			out = append(out, c)
		}
	}
	return out
}

// rankerOrDefault returns the installed ranker or LRU.
func (e *Engine) rankerOrDefault() EvictRanker {
	e.mu.Lock()
	r := e.ranker
	e.mu.Unlock()
	if r != nil {
		return r
	}
	return func(c EvictCandidate) float64 { return float64(c.LastTouch) }
}

// onEvictHook returns the installed eviction upcall.
func (e *Engine) onEvictHook() func(string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.onEvict
}

// evict removes the view's durable state behind a crash-safe
// tombstone and rebirths it as a fresh empty log, returning the bytes
// freed. The view object stays published and usable — in-flight
// queries holding the pointer see an empty cache and re-evaluate
// missing keys through the ordinary per-key probe-or-evaluate path.
//
// Crash discipline (the view:evict fault site, one kill-point id per
// stage): before the tombstone, nothing has happened and the view is
// intact; from the tombstone on, reopen treats the eviction as
// committed and clears every leftover, so no kill-point can resurrect
// a half-deleted view. A non-crash injected fault after the tombstone
// also kills the in-process handle — disk may already be gone, and a
// handle whose memory runs ahead of disk would break the
// disk-never-behind-memory invariant every log here maintains.
func (v *View) evict() (int64, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.file == nil {
		return 0, fmt.Errorf("storage: view %s: closed", v.name)
	}
	if v.dead {
		return 0, fmt.Errorf("storage: view %s: unusable after simulated crash", v.name)
	}
	site := faults.SiteViewEvict(v.name)
	// Kill-points are drawn with attempt = id+1 so scripted At rules
	// can target one stage: At{1} is pre-tombstone, At{2} post-tombstone,
	// At{3} post-log-delete, At{4} post-rebirth.
	// Kill-point 0: before the tombstone. Abort leaves the view whole.
	if err := v.inj.CheckEval(site, 0, 1); err != nil {
		if faults.IsCrash(err) {
			v.dead = true
		}
		return 0, fmt.Errorf("storage: view %s: evict: %w", v.name, err)
	}
	freedFrom := v.footprint
	// Commit point: the tombstone's presence marks the eviction.
	if err := os.WriteFile(tombPath(v.path), []byte("EVAT"), 0o644); err != nil {
		return 0, fmt.Errorf("storage: view %s: evict tombstone: %w", v.name, err)
	}
	// Kill-point 1: tombstone durable, log still present.
	if err := v.inj.CheckEval(site, 1, 2); err != nil {
		v.dead = true
		return 0, fmt.Errorf("storage: view %s: evict: %w", v.name, err)
	}
	_ = v.file.Close()
	v.file = nil
	_ = os.Remove(v.path)
	// Kill-point 2: log gone, sidecars still present.
	if err := v.inj.CheckEval(site, 2, 3); err != nil {
		v.dead = true
		return 0, fmt.Errorf("storage: view %s: evict: %w", v.name, err)
	}
	for _, side := range []string{cleanPath(v.path), quarPath(v.path), compactPath(v.path)} {
		_ = os.Remove(side)
	}
	// Rebirth: a fresh empty generation keeps the published handle
	// append-able, so re-materialization needs no re-registration.
	f, err := os.OpenFile(v.path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		v.dead = true
		return 0, fmt.Errorf("storage: view %s: evict rebirth: %w", v.name, err)
	}
	hdr := v.encodeHeader()
	if _, err := f.Write(hdr); err != nil {
		_ = f.Close()
		v.dead = true
		return 0, fmt.Errorf("storage: view %s: evict rebirth header: %w", v.name, err)
	}
	v.file = f
	// Kill-point 3: fresh log written, tombstone not yet cleared —
	// reopen discards the rebirth and starts over, same end state.
	if err := v.inj.CheckEval(site, 3, 4); err != nil {
		v.dead = true
		return 0, fmt.Errorf("storage: view %s: evict: %w", v.name, err)
	}
	_ = os.Remove(tombPath(v.path))

	v.resetReplayState()
	v.quar = nil
	v.footprint = int64(len(hdr))
	v.budget.Set(v.path, v.footprint)
	for _, side := range []string{cleanPath(v.path), quarPath(v.path), compactPath(v.path)} {
		v.budget.Drop(side)
	}
	return freedFrom - v.footprint, nil
}

// clearTombstonedView removes every artifact of a committed eviction
// found at open time: the log, its sidecars, any compaction scratch,
// and the tombstone itself. Reopen after a mid-eviction crash lands
// here, so the view restarts from a clean slate instead of a zombie.
func clearTombstonedView(path string) {
	for _, p := range []string{path, cleanPath(path), quarPath(path), compactPath(path), tombPath(path)} {
		_ = os.Remove(p)
	}
}
