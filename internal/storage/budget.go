// Disk-pressure survival, stage 1: the storage budget (DESIGN.md §16).
//
// Materialized views are recomputable caches — the symbolic DIFF
// machinery means dropping one is never data loss, only future
// recompute cost — so the storage layer can treat a declared disk
// budget the way the serving layer treats its memory budget:
// degrade before failing. Every durable artifact (view logs, clean
// and quarantine sidecars, ingest watermark and checkpoint logs) is
// charged against one per-engine DiskBudget at append, compaction and
// rename time; when an append does not fit, the engine reclaims in
// benefit order (compact fragmented logs, then evict whole cold
// views) and the append retries, surfacing the typed ErrDiskBudget
// only once nothing evictable remains.
package storage

import (
	"errors"
	"fmt"
	"sync"
)

// ErrDiskBudget is the terminal out-of-space error: the write did not
// fit the configured disk budget even after the eviction ladder ran
// dry. Test with errors.Is. A retriable shortage is never surfaced —
// the engine evicts and retries internally first.
var ErrDiskBudget = errors.New("storage: disk budget exhausted")

// DiskFullError is the retriable out-of-space signal produced by a
// budget denial or an injected disk:full fault at a durable write
// site. The append path catches it, runs the reclaim ladder, and
// retries; it escapes to callers only wrapped under ErrDiskBudget.
type DiskFullError struct {
	// Site is the durable write site that could not complete.
	Site string
	// Need is the byte count that did not fit.
	Need int64
	// Injected is the fault that simulated the shortage, nil when the
	// shortage came from the configured budget.
	Injected error
}

// Error implements error.
func (e *DiskFullError) Error() string {
	if e.Injected != nil {
		return fmt.Sprintf("disk full at %s (%d bytes): %v", e.Site, e.Need, e.Injected)
	}
	return fmt.Sprintf("disk full at %s (%d bytes over budget)", e.Site, e.Need)
}

// Unwrap exposes the injected cause.
func (e *DiskFullError) Unwrap() error { return e.Injected }

// IsDiskFull reports whether err carries a retriable disk-full signal.
func IsDiskFull(err error) bool {
	var dfe *DiskFullError
	return errors.As(err, &dfe)
}

// DiskStats snapshots a budget's accounting and the eviction ladder's
// lifetime activity.
type DiskStats struct {
	// LimitBytes is the configured budget (0 = unlimited).
	LimitBytes int64
	// UsedBytes is the charged footprint across all durable artifacts.
	UsedBytes int64
	// Artifacts is the number of distinct charged files.
	Artifacts int
	// Denials counts writes rejected for lack of budget (each triggers
	// a reclaim-and-retry, so denials are not failures).
	Denials int64
	// Evictions counts whole views evicted.
	Evictions int64
	// CompactReclaimedBytes and EvictReclaimedBytes split the bytes
	// the reclaim ladder freed by tier.
	CompactReclaimedBytes int64
	EvictReclaimedBytes   int64
}

// DiskBudget charges every durable artifact's bytes against one
// per-engine limit. All methods are nil-safe: a nil budget admits
// everything and records nothing, so unbudgeted engines pay one nil
// check per write.
type DiskBudget struct {
	limit int64

	mu      sync.Mutex
	used    int64            // guarded by mu
	perPath map[string]int64 // guarded by mu; bytes charged per artifact
	stats   DiskStats        // guarded by mu; counters only (sizes derived)
}

// NewDiskBudget builds a budget with the given byte limit (<= 0 means
// account-only: usage is tracked but nothing is ever denied).
func NewDiskBudget(limit int64) *DiskBudget {
	return &DiskBudget{limit: limit, perPath: map[string]int64{}}
}

// Admit reserves delta bytes for the artifact at path, returning
// false (and recording a denial) when the reservation would exceed
// the limit. The reservation is made before the write so concurrent
// writers cannot jointly overshoot; a failed write must Refund.
func (b *DiskBudget) Admit(path string, delta int64) bool {
	if b == nil || delta <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.limit > 0 && b.used+delta > b.limit {
		b.stats.Denials++
		return false
	}
	b.used += delta
	b.perPath[path] += delta
	return true
}

// Refund returns a failed write's reservation.
func (b *DiskBudget) Refund(path string, delta int64) {
	if b == nil || delta <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.used -= delta
	if n := b.perPath[path] - delta; n > 0 {
		b.perPath[path] = n
	} else {
		delete(b.perPath, path)
	}
}

// Set forces the artifact's charge to its actual on-disk size —
// the accounting step of compaction, rename commits and fresh-log
// rebirth, where the footprint changes without flowing through Admit.
func (b *DiskBudget) Set(path string, size int64) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.used += size - b.perPath[path]
	if size > 0 {
		b.perPath[path] = size
	} else {
		delete(b.perPath, path)
	}
}

// Drop releases an artifact entirely (file deleted).
func (b *DiskBudget) Drop(path string) { b.Set(path, 0) }

// Headroom returns the bytes still admittable (0 when over, a large
// value when unlimited).
func (b *DiskBudget) Headroom() int64 {
	if b == nil {
		return int64(1) << 62
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.limit <= 0 {
		return int64(1) << 62
	}
	if b.used >= b.limit {
		return 0
	}
	return b.limit - b.used
}

// noteEvicted records one whole-view eviction freeing n bytes.
func (b *DiskBudget) noteEvicted(n int64) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.stats.Evictions++
	b.stats.EvictReclaimedBytes += n
}

// noteCompacted records a compaction freeing n bytes.
func (b *DiskBudget) noteCompacted(n int64) {
	if b == nil || n <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.stats.CompactReclaimedBytes += n
}

// Stats snapshots the budget. Zero for a nil budget.
func (b *DiskBudget) Stats() DiskStats {
	if b == nil {
		return DiskStats{}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	st := b.stats
	st.LimitBytes = b.limit
	st.UsedBytes = b.used
	st.Artifacts = len(b.perPath)
	return st
}
