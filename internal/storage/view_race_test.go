package storage

import (
	"sync"
	"testing"

	"eva/internal/types"
)

// TestViewConcurrentAppendScan hammers one materialized view with
// concurrent appenders and readers. Scan returns a bounded snapshot
// slice under the read lock, so readers must never observe rows a
// concurrent Append is still writing; -race verifies the locking.
func TestViewConcurrentAppendScan(t *testing.T) {
	eng, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	schema := types.Schema{
		{Name: "id", Kind: types.KindInt},
		{Name: "label", Kind: types.KindString},
	}
	v, err := eng.CreateView("race_view", schema, []string{"id"})
	if err != nil {
		t.Fatal(err)
	}

	const appenders = 4
	const readers = 4
	const rowsPer = 200

	var wg sync.WaitGroup
	for w := 0; w < appenders; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rowsPer; i++ {
				id := int64(w*rowsPer + i)
				rows := types.NewBatch(schema)
				rows.MustAppendRow(types.NewInt(id), types.NewString("car"))
				if _, err := v.Append(rows, nil); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(w)
	}
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rowsPer; i++ {
				snap := v.Scan()
				for r := 0; r < snap.Len(); r++ {
					if snap.At(r, 0).IsNull() {
						t.Error("scan observed a half-written row")
						return
					}
				}
				_ = v.Rows()
				_ = v.ProcessedCount()
				_ = v.Footprint()
				_ = v.HasKey([]types.Datum{types.NewInt(int64(i))})
			}
		}()
	}
	wg.Wait()

	if got := v.Rows(); got != appenders*rowsPer {
		t.Fatalf("rows = %d, want %d", got, appenders*rowsPer)
	}
}

// TestEngineConcurrentViewRegistry exercises the engine-level maps:
// concurrent CreateView (same and different names), lookups, and
// footprint sums.
func TestEngineConcurrentViewRegistry(t *testing.T) {
	eng, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	schema := types.Schema{{Name: "id", Kind: types.KindInt}}

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				name := []string{"shared", "ping", "pong"}[i%3]
				if _, err := eng.CreateView(name, schema, []string{"id"}); err != nil {
					t.Errorf("create: %v", err)
					return
				}
				_ = eng.View(name)
				_ = eng.Views()
				_ = eng.TotalViewFootprint()
			}
		}(w)
	}
	wg.Wait()
	if got := len(eng.Views()); got != 3 {
		t.Fatalf("views = %d, want 3", got)
	}
}
