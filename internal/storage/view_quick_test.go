package storage

import (
	"math/rand"
	"testing"

	"eva/internal/types"
)

// TestViewAppendScanQuick is a model-based property test: a sequence
// of random appends against the real view must agree with a trivial
// in-memory reference model, and survive a close/reopen round trip.
func TestViewAppendScanQuick(t *testing.T) {
	type op struct {
		Key     int64
		Rows    int  // 0..3 result rows for this key
		KeyOnly bool // mark processed without rows
	}
	sch := types.MustSchema(
		types.Column{Name: "id", Kind: types.KindInt},
		types.Column{Name: "val", Kind: types.KindString},
	)
	check := func(ops []op) bool {
		dir := t.TempDir()
		e, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		v, err := e.CreateView("q", sch, []string{"id"})
		if err != nil {
			t.Fatal(err)
		}
		// Reference model: first writer of a key wins.
		modelRows := map[int64]int{}
		processed := map[int64]bool{}
		for _, o := range ops {
			if o.KeyOnly {
				if _, err := v.Append(nil, [][]types.Datum{{types.NewInt(o.Key)}}); err != nil {
					t.Fatal(err)
				}
				if !processed[o.Key] {
					processed[o.Key] = true
					modelRows[o.Key] = 0
				}
				continue
			}
			b := types.NewBatch(sch)
			for r := 0; r < o.Rows; r++ {
				b.MustAppendRow(types.NewInt(o.Key), types.NewString("v"))
			}
			var keys [][]types.Datum
			if o.Rows == 0 {
				keys = [][]types.Datum{{types.NewInt(o.Key)}}
			}
			if _, err := v.Append(b, keys); err != nil {
				t.Fatal(err)
			}
			if !processed[o.Key] {
				processed[o.Key] = true
				modelRows[o.Key] = o.Rows
			}
		}
		// Validate against the model, before and after reopen.
		validate := func(view *View) bool {
			total := 0
			for k, rows := range modelRows {
				key := []types.Datum{types.NewInt(k)}
				if !view.HasKey(key) {
					t.Logf("key %d missing", k)
					return false
				}
				if got := len(view.RowsForKey(key)); got != rows {
					t.Logf("key %d: %d rows, want %d", k, got, rows)
					return false
				}
				total += rows
			}
			return view.Rows() == total && view.ProcessedCount() == len(processed)
		}
		if !validate(v) {
			return false
		}
		e2, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		v2, err := e2.CreateView("q", sch, []string{"id"})
		if err != nil {
			t.Fatal(err)
		}
		return validate(v2)
	}
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 30; trial++ {
		n := 2 + r.Intn(30)
		ops := make([]op, n)
		for i := range ops {
			ops[i] = op{
				Key:     int64(r.Intn(12)),
				Rows:    r.Intn(4),
				KeyOnly: r.Intn(4) == 0,
			}
		}
		if !check(ops) {
			t.Fatalf("trial %d failed with ops %+v", trial, ops)
		}
	}
}
