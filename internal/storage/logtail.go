package storage

import (
	"fmt"
	"os"
)

// TailLog is the result of opening a checksummed append-only log with
// torn-tail recovery: the append handle, the durable footprint, and
// the torn-tail bytes dropped to get there.
type TailLog struct {
	File      *os.File
	Footprint int64
	Recovered int64
}

// OpenTailLog opens (or creates) a checksummed append-only log at
// path, applying the shared crash-recovery discipline used by the
// view log, the ingest watermark log and the standing-query
// checkpoint log:
//
//  1. Read the whole file (a missing file is an empty log).
//  2. Replay it through the caller's closure, which rebuilds whatever
//     in-memory state the log backs and returns the byte length of the
//     valid prefix — everything past it is a record cut short by a
//     crash mid-append.
//  3. Truncate the torn tail so the log ends on a record boundary.
//  4. Open an O_APPEND handle and, when the log is empty, write the
//     caller's header so the file is self-identifying from byte zero.
//
// A replay error is fatal (the caller wraps it with log identity); the
// closure may itself salvage around interior corruption and still
// return a final valid length, as the view log does.
func OpenTailLog(path string, header []byte, replay func(data []byte) (valid int, err error)) (TailLog, error) {
	var tl TailLog
	if data, err := os.ReadFile(path); err == nil {
		valid, rerr := replay(data)
		if rerr != nil {
			return tl, rerr
		}
		if valid < 0 || valid > len(data) {
			return tl, fmt.Errorf("replay returned valid prefix %d of %d bytes", valid, len(data))
		}
		if valid < len(data) {
			if terr := os.Truncate(path, int64(valid)); terr != nil {
				return tl, fmt.Errorf("truncate torn tail: %w", terr)
			}
			tl.Recovered = int64(len(data) - valid)
		}
		tl.Footprint = int64(valid)
	} else if !os.IsNotExist(err) {
		return tl, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return tl, err
	}
	if tl.Footprint == 0 && len(header) > 0 {
		if _, err := f.Write(header); err != nil {
			_ = f.Close()
			return tl, err
		}
		tl.Footprint = int64(len(header))
	}
	tl.File = f
	return tl, nil
}
