package storage

import (
	"encoding/binary"
	"fmt"
	"os"
	"sync"

	"eva/internal/types"
)

// View is an append-only materialized view of UDF results. Rows carry
// the key columns plus the UDF's output columns; separately, the view
// records every *processed key* so that keys whose evaluation produced
// zero rows (e.g. frames with no detections) are not re-evaluated.
//
// The view persists every append to its backing file and rebuilds its
// in-memory index when reopened.
type View struct {
	name    string
	path    string
	schema  types.Schema
	keyCols []string
	keyIdx  []int

	mu        sync.RWMutex
	batch     *types.Batch        // guarded by mu
	rowsByKey map[string][]int    // guarded by mu
	processed map[string]struct{} // guarded by mu
	file      *os.File            // guarded by mu
	footprint int64               // guarded by mu
}

// View file format: header (magic, version, schema, key columns)
// followed by records. Record kinds: rows (encoded datum rows) and
// processed-keys (encoded key tuples).
const (
	viewMagic   = 0x45564156 // "EVAV"
	viewVersion = 1

	recRows = 1
	recKeys = 2
)

func openView(path, name string, schema types.Schema, keyCols []string) (*View, error) {
	v := &View{
		name:      name,
		path:      path,
		schema:    schema.Clone(),
		keyCols:   append([]string(nil), keyCols...),
		batch:     types.NewBatch(schema.Clone()),
		rowsByKey: map[string][]int{},
		processed: map[string]struct{}{},
	}
	for _, kc := range keyCols {
		v.keyIdx = append(v.keyIdx, schema.IndexOf(kc))
	}
	if data, err := os.ReadFile(path); err == nil {
		if err := v.replay(data); err != nil {
			return nil, fmt.Errorf("storage: view %s: %w", name, err)
		}
		v.footprint = int64(len(data))
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	v.file = f
	if v.footprint == 0 {
		hdr := v.encodeHeader()
		if _, err := f.Write(hdr); err != nil {
			return nil, err
		}
		v.footprint = int64(len(hdr))
	}
	return v, nil
}

func (v *View) encodeHeader() []byte {
	buf := binary.LittleEndian.AppendUint32(nil, viewMagic)
	buf = append(buf, viewVersion)
	buf = append(buf, byte(len(v.schema)))
	for _, c := range v.schema {
		buf = append(buf, byte(c.Kind), byte(len(c.Name)))
		buf = append(buf, c.Name...)
	}
	buf = append(buf, byte(len(v.keyCols)))
	for _, kc := range v.keyCols {
		buf = append(buf, byte(len(kc)))
		buf = append(buf, kc...)
	}
	return buf
}

func (v *View) replay(data []byte) error {
	if len(data) < 6 || binary.LittleEndian.Uint32(data) != viewMagic {
		return fmt.Errorf("bad view header")
	}
	if data[4] != viewVersion {
		return fmt.Errorf("unsupported view version %d", data[4])
	}
	off := 5
	ncols := int(data[off])
	off++
	var schema types.Schema
	for i := 0; i < ncols; i++ {
		if off+2 > len(data) {
			return fmt.Errorf("truncated schema")
		}
		kind := types.Kind(data[off])
		nameLen := int(data[off+1])
		off += 2
		if off+nameLen > len(data) {
			return fmt.Errorf("truncated column name")
		}
		schema = append(schema, types.Column{Name: string(data[off : off+nameLen]), Kind: kind})
		off += nameLen
	}
	if !schema.Equal(v.schema) {
		return fmt.Errorf("schema mismatch: file has %s, want %s", schema, v.schema)
	}
	nkeys := int(data[off])
	off++
	for i := 0; i < nkeys; i++ {
		klen := int(data[off])
		off++
		off += klen // names validated via schema equality; skip
	}
	for off < len(data) {
		kind := data[off]
		off++
		if off+4 > len(data) {
			return fmt.Errorf("truncated record header")
		}
		count := int(binary.LittleEndian.Uint32(data[off:]))
		off += 4
		switch kind {
		case recRows:
			row := make([]types.Datum, len(v.schema))
			for r := 0; r < count; r++ {
				for c := range row {
					d, n, err := types.DecodeDatum(data[off:])
					if err != nil {
						return fmt.Errorf("row record: %w", err)
					}
					row[c] = d
					off += n
				}
				v.appendRowLocked(row)
			}
		case recKeys:
			key := make([]types.Datum, len(v.keyCols))
			for r := 0; r < count; r++ {
				for c := range key {
					d, n, err := types.DecodeDatum(data[off:])
					if err != nil {
						return fmt.Errorf("key record: %w", err)
					}
					key[c] = d
					off += n
				}
				// lint:nolock replay runs inside openView before the view is published
				v.processed[encodeKey(key)] = struct{}{}
			}
		default:
			return fmt.Errorf("unknown record kind %d", kind)
		}
	}
	return nil
}

// Name returns the view name.
func (v *View) Name() string { return v.name }

// Schema returns the view's row schema.
func (v *View) Schema() types.Schema { return v.schema }

// KeyColumns returns the key column names.
func (v *View) KeyColumns() []string { return v.keyCols }

// encodeKey canonically encodes a key tuple for index lookups.
func encodeKey(key []types.Datum) string {
	var buf []byte
	for _, d := range key {
		buf = d.AppendBinary(buf)
	}
	return string(buf)
}

// EncodeKey exposes the canonical key encoding for callers that build
// probe tables.
func EncodeKey(key []types.Datum) string { return encodeKey(key) }

func (v *View) rowKey(b *types.Batch, r int) string {
	key := make([]types.Datum, len(v.keyIdx))
	for i, c := range v.keyIdx {
		key[i] = b.At(r, c)
	}
	return encodeKey(key)
}

func (v *View) appendRowLocked(row []types.Datum) {
	v.batch.MustAppendRow(row...)
	r := v.batch.Len() - 1
	key := v.rowKey(v.batch, r)
	v.rowsByKey[key] = append(v.rowsByKey[key], r)
	v.processed[key] = struct{}{}
}

// Append adds result rows and marks extra keys as processed (for keys
// whose evaluation produced no rows). Rows whose key is already
// processed are skipped — appends are idempotent per key, which keeps
// the STORE operator safe to re-run. It returns the number of new rows
// stored and persists the append.
func (v *View) Append(rows *types.Batch, processedKeys [][]types.Datum) (int, error) {
	if rows != nil && !rows.Schema().Equal(v.schema) {
		return 0, fmt.Errorf("storage: view %s: append schema %s, want %s", v.name, rows.Schema(), v.schema)
	}
	v.mu.Lock()
	defer v.mu.Unlock()

	var rowBuf []byte
	newRows := 0
	if rows != nil {
		// A row is stored iff its key was unprocessed when this call
		// began. newKeys lets sibling rows of a key introduced by this
		// very batch through, even though appendRowLocked marks the key
		// processed as soon as the first sibling lands.
		newKeys := map[string]struct{}{}
		for r := 0; r < rows.Len(); r++ {
			key := v.rowKey(rows, r)
			if _, done := v.processed[key]; done {
				if _, fresh := newKeys[key]; !fresh {
					continue
				}
			}
			newKeys[key] = struct{}{}
			row := rows.Row(r)
			v.appendRowLocked(row)
			for _, d := range row {
				rowBuf = d.AppendBinary(rowBuf)
			}
			newRows++
		}
	}

	var keyBuf []byte
	newKeyCount := 0
	for _, key := range processedKeys {
		if len(key) != len(v.keyCols) {
			return newRows, fmt.Errorf("storage: view %s: key width %d, want %d", v.name, len(key), len(v.keyCols))
		}
		ek := encodeKey(key)
		if _, done := v.processed[ek]; done {
			continue
		}
		v.processed[ek] = struct{}{}
		for _, d := range key {
			keyBuf = d.AppendBinary(keyBuf)
		}
		newKeyCount++
	}

	var out []byte
	if newRows > 0 {
		out = append(out, recRows)
		out = binary.LittleEndian.AppendUint32(out, uint32(newRows))
		out = append(out, rowBuf...)
	}
	if newKeyCount > 0 {
		out = append(out, recKeys)
		out = binary.LittleEndian.AppendUint32(out, uint32(newKeyCount))
		out = append(out, keyBuf...)
	}
	if len(out) > 0 {
		if _, err := v.file.Write(out); err != nil {
			return newRows, fmt.Errorf("storage: view %s: %w", v.name, err)
		}
		v.footprint += int64(len(out))
	}
	return newRows, nil
}

// Scan returns all stored rows as a read-only snapshot. The snapshot's
// column headers are copied under the lock, so concurrent Appends
// (which only ever add rows past the snapshot's length) cannot race
// with readers.
func (v *View) Scan() *types.Batch {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.batch.Slice(0, v.batch.Len())
}

// Rows returns the number of stored result rows.
func (v *View) Rows() int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.batch.Len()
}

// ProcessedCount returns the number of distinct processed keys.
func (v *View) ProcessedCount() int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return len(v.processed)
}

// HasKey reports whether the key was processed (even with zero rows).
func (v *View) HasKey(key []types.Datum) bool {
	v.mu.RLock()
	defer v.mu.RUnlock()
	_, ok := v.processed[encodeKey(key)]
	return ok
}

// RowsForKey returns the indexes (into Scan's batch) of the rows with
// the given key.
func (v *View) RowsForKey(key []types.Datum) []int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.rowsByKey[encodeKey(key)]
}

// Footprint returns the on-disk size in bytes.
func (v *View) Footprint() int64 {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.footprint
}

func (v *View) close() error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.file == nil {
		return nil
	}
	err := v.file.Close()
	v.file = nil
	return err
}
