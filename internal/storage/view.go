package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"

	"eva/internal/faults"
	"eva/internal/types"
	"eva/internal/xxhash"
)

// View is an append-only materialized view of UDF results. Rows carry
// the key columns plus the UDF's output columns; separately, the view
// records every *processed key* so that keys whose evaluation produced
// zero rows (e.g. frames with no detections) are not re-evaluated.
//
// The view persists every append to its backing file and rebuilds its
// in-memory index when reopened. Appends are crash-safe: the log
// record is built and written to disk *before* any in-memory state
// changes, every record carries an xxhash64 checksum, and replay
// truncates a torn tail (a record cut short by a crash) back to the
// last complete record. Because appends are idempotent per key, a
// re-run STORE after recovery converges to the uninterrupted state.
type View struct {
	name    string
	path    string
	schema  types.Schema
	keyCols []string
	keyIdx  []int
	site    string // fault-injection site name

	mu        sync.RWMutex
	batch     *types.Batch        // guarded by mu
	rowsByKey map[string][]int    // guarded by mu
	processed map[string]struct{} // guarded by mu
	file      *os.File            // guarded by mu
	footprint int64               // guarded by mu
	dead      bool                // guarded by mu; simulated crash hit this view
	recovered int64               // guarded by mu; torn-tail bytes dropped at open
	inj       *faults.Injector    // guarded by mu
	// quar records the byte ranges lost to corruption salvage, pending
	// symbolic repair and compaction; nil when the log is whole.
	// guarded by mu.
	quar *Quarantine
	// holes accumulates lost ranges during one replay/salvage scan; it
	// is working state for replay, promoted into quar by the caller.
	// guarded by mu (pre-publish in openView).
	holes []LostRange
	// openTrusted / openVerified count the records the last open
	// accepted from the clean-sidecar verified prefix (checksum check
	// skipped) versus fully verified. guarded by mu.
	openTrusted  int
	openVerified int
	// claims maps an encoded key to the in-flight claim that is
	// evaluating it (per-(view, key) singleflight across sessions);
	// the channel closes when the claim is released. guarded by mu.
	claims map[string]chan struct{}
	// touch is the engine's access ordinal at this view's last lookup,
	// read by the eviction ranker (atomic — ordinals come from the
	// engine's touchSeq, bumped per engine-level lookup, not per row).
	touch atomic.Uint64
	// eng points back to the owning engine so a disk-full append can
	// run the reclaim ladder; nil for views opened directly in unit
	// tests (no reclaim possible). Immutable after CreateView.
	eng *Engine
	// budget is the engine's disk budget charging this view's durable
	// artifacts; nil when unbudgeted. guarded by mu.
	budget *DiskBudget
}

// View file format v2: header (magic, version, schema, key columns)
// followed by self-verifying records:
//
//	[kind:1][count:4][payloadLen:4][payload][sum:8]
//
// where sum = xxhash64 over the bytes from kind through payload.
// Record kinds: rows (encoded datum rows) and processed-keys (encoded
// key tuples). Version 1 (no checksums) is no longer readable; views
// are rebuilt from UDF evaluation, so an unsupported version is
// surfaced as an error rather than migrated.
const (
	viewMagic   = 0x45564156 // "EVAV"
	viewVersion = 2

	recRows = 1
	recKeys = 2

	// recHeaderLen is kind + count + payloadLen; recSumLen the
	// trailing checksum.
	recHeaderLen = 9
	recSumLen    = 8
)

// Clean sidecar ("<view>.clean"): the verified-prefix fast path. A
// clean close (and a completed open) records the byte length of the
// log's verified prefix plus the file's trailing record checksum at
// that length, all under a sidecar checksum. The next open trusts
// records entirely inside that prefix — skipping the per-record xxhash
// re-verification whose cost grows with log length, not tail length —
// and fully verifies only the bytes past it. The sidecar binds itself
// to the file contents via the tail checksum, so a stale or foreign
// sidecar degrades to the full verifying scan rather than admitting
// unchecked bytes; likewise any structural inconsistency inside the
// trusted prefix falls back to a full scan (errTrustedCorrupt).
const (
	cleanMagic   = 0x4556414b // "EVAK"
	cleanVersion = 1
	// cleanLen is magic + version + trusted length + tail checksum +
	// sidecar checksum.
	cleanLen = 4 + 1 + 8 + 8 + 8
)

// errTrustedCorrupt signals that the sidecar-trusted prefix failed a
// structural check; the caller re-replays with full verification.
var errTrustedCorrupt = errors.New("storage: trusted prefix failed structural check")

// cleanPath returns the sidecar path for a view log path.
func cleanPath(path string) string { return path + ".clean" }

// readCleanSidecar returns the trusted prefix length recorded by the
// last clean close/open, or 0 when there is no usable sidecar. data is
// the log contents; the sidecar must match its length and trailing
// record checksum to be trusted.
func readCleanSidecar(path string, data []byte) int64 {
	sc, err := os.ReadFile(cleanPath(path))
	if err != nil || len(sc) != cleanLen {
		return 0
	}
	if binary.LittleEndian.Uint32(sc) != cleanMagic || sc[4] != cleanVersion {
		return 0
	}
	if xxhash.Sum64(sc[:cleanLen-8], 0) != binary.LittleEndian.Uint64(sc[cleanLen-8:]) {
		return 0
	}
	trusted := int64(binary.LittleEndian.Uint64(sc[5:]))
	if trusted < recSumLen || trusted > int64(len(data)) {
		return 0
	}
	if binary.LittleEndian.Uint64(data[trusted-recSumLen:]) != binary.LittleEndian.Uint64(sc[13:]) {
		return 0
	}
	return trusted
}

// writeCleanSidecar atomically records the verified prefix (tmp +
// rename, so a crash mid-write leaves either the old sidecar or none —
// both safe: the fallback is the full verifying scan).
func writeCleanSidecar(path string, data []byte, trusted int64) error {
	if trusted < recSumLen || trusted > int64(len(data)) {
		return nil
	}
	buf := binary.LittleEndian.AppendUint32(make([]byte, 0, cleanLen), cleanMagic)
	buf = append(buf, cleanVersion)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(trusted))
	buf = append(buf, data[trusted-recSumLen:trusted]...)
	buf = binary.LittleEndian.AppendUint64(buf, xxhash.Sum64(buf, 0))
	tmp := cleanPath(path) + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, cleanPath(path))
}

// writeCleanSidecarLocked refreshes the sidecar from the live file
// handle's current footprint — bounded at the first quarantined hole,
// which the next open must re-verify around rather than trust.
// Best-effort: a failure only costs the next open a full scan. Callers
// hold mu.
func (v *View) writeCleanSidecarLocked() {
	bound := v.trustedBoundLocked()
	if v.dead || bound < recSumLen {
		return
	}
	tail := make([]byte, recSumLen)
	f, err := os.Open(v.path)
	if err != nil {
		return
	}
	defer f.Close()
	if _, err := f.ReadAt(tail, bound-recSumLen); err != nil {
		return
	}
	buf := binary.LittleEndian.AppendUint32(make([]byte, 0, cleanLen), cleanMagic)
	buf = append(buf, cleanVersion)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(bound))
	buf = append(buf, tail...)
	buf = binary.LittleEndian.AppendUint64(buf, xxhash.Sum64(buf, 0))
	tmp := cleanPath(v.path) + ".tmp"
	if os.WriteFile(tmp, buf, 0o644) == nil {
		if os.Rename(tmp, cleanPath(v.path)) == nil {
			// Sidecars are charged at their exact size but never
			// budget-denied: they are bounded best-effort artifacts, and
			// denying one would only cost the next open a full scan.
			v.budget.Set(cleanPath(v.path), cleanLen)
		}
	}
}

func openView(path, name string, schema types.Schema, keyCols []string, inj *faults.Injector, budget *DiskBudget) (*View, error) {
	v := &View{
		name:      name,
		path:      path,
		schema:    schema.Clone(),
		keyCols:   append([]string(nil), keyCols...),
		site:      faults.SiteViewWrite(name),
		batch:     types.NewBatch(schema.Clone()),
		rowsByKey: map[string][]int{},
		processed: map[string]struct{}{},
		claims:    map[string]chan struct{}{},
		inj:       inj,
		budget:    budget,
	}
	for _, kc := range keyCols {
		v.keyIdx = append(v.keyIdx, schema.IndexOf(kc))
	}
	// A tombstone marks a committed eviction the process died inside:
	// whatever artifacts survive describe a view that no longer exists,
	// so clear them all and start fresh. The tombstone must never
	// resurrect a half-deleted view.
	if _, err := os.Stat(tombPath(path)); err == nil {
		clearTombstonedView(path)
	}
	// A crash mid-compaction can leave a partial next generation behind;
	// it was never committed (the rename is the commit point), so it is
	// garbage.
	_ = os.Remove(compactPath(path))
	headerLost, replayed := false, false
	tl, err := OpenTailLog(path, v.encodeHeader(), func(data []byte) (int, error) {
		replayed = true
		trusted := readCleanSidecar(path, data)
		valid, rerr := v.replay(data, trusted)
		if errors.Is(rerr, errTrustedCorrupt) {
			// The sidecar promised a clean prefix the file does not
			// have (external truncation or corruption): fall back to
			// the full verifying scan over a fresh in-memory state.
			v.resetReplayState()
			valid, rerr = v.replay(data, 0)
		}
		if errors.Is(rerr, errHeaderCorrupt) {
			// The header itself is unreadable, so no record can be
			// attributed to a schema: the whole generation is lost.
			// Views are derived data — quarantine everything and start
			// a fresh log rather than dying. Returning valid = 0 makes
			// the shared truncation drop the whole generation.
			v.resetReplayState()
			v.holes = []LostRange{{Lo: 0, Hi: int64(len(data))}} // lint:nolock pre-publish (openView)
			// The old sidecar described the lost generation.
			_ = os.Remove(cleanPath(path))
			headerLost = true
			return 0, nil
		}
		if rerr != nil {
			return 0, rerr
		}
		// Mid-log holes before valid stay on disk — they are
		// quarantined, and truncating them would shift every later
		// record's LSN; only the torn tail past valid is dropped.
		return valid, nil
	})
	if err != nil {
		return nil, fmt.Errorf("storage: view %s: %w", name, err)
	}
	v.file, v.footprint = tl.File, tl.Footprint
	if !headerLost {
		// Header loss is accounted as a quarantined hole, not as a torn
		// tail: recovered stays 0 for that path.
		v.recovered = tl.Recovered
	}
	v.adoptHolesLocked() // lint:nolock pre-publish (openView)
	if replayed {
		// Refresh the sidecar to the verified prefix — up to the first
		// hole when quarantined — so the *next* open's verification
		// cost is bounded. Best-effort: failure costs a full scan, not
		// correctness. A fresh (never-written) log earns no sidecar.
		v.writeCleanSidecarLocked() // lint:nolock pre-publish (openView)
	}
	budget.Set(path, v.footprint)
	return v, nil
}

func (v *View) encodeHeader() []byte {
	buf := binary.LittleEndian.AppendUint32(nil, viewMagic)
	buf = append(buf, viewVersion)
	buf = append(buf, byte(len(v.schema)))
	for _, c := range v.schema {
		buf = append(buf, byte(c.Kind), byte(len(c.Name)))
		buf = append(buf, c.Name...)
	}
	buf = append(buf, byte(len(v.keyCols)))
	for _, kc := range v.keyCols {
		buf = append(buf, byte(len(kc)))
		buf = append(buf, kc...)
	}
	return buf
}

// sealRecord appends one checksummed record to buf.
func sealRecord(buf []byte, kind byte, count int, payload []byte) []byte {
	start := len(buf)
	buf = append(buf, kind)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(count))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	sum := xxhash.Sum64(buf[start:], 0)
	return binary.LittleEndian.AppendUint64(buf, sum)
}

// resetReplayState discards the in-memory index so a fallback replay
// can rebuild it from scratch. It runs inside openView before the view
// is published, so it may touch guarded fields without the lock.
func (v *View) resetReplayState() {
	v.batch = types.NewBatch(v.schema.Clone()) // lint:nolock pre-publish (openView)
	v.rowsByKey = map[string][]int{}           // lint:nolock pre-publish (openView)
	v.processed = map[string]struct{}{}        // lint:nolock pre-publish (openView)
	v.openTrusted, v.openVerified = 0, 0       // lint:nolock pre-publish (openView)
	v.holes = nil                              // lint:nolock pre-publish (openView)
}

// replay rebuilds in-memory state from the log. It returns the byte
// offset past the last record it accepted. An unreadable header is
// reported as errHeaderCorrupt (the whole generation is lost — views
// are derived data, so the caller salvages by starting over). A record
// failing its structural checks or checksum mid-log is *salvaged
// around*: replay resynchronizes to the next checksum-valid record
// boundary, records the skipped bytes in v.holes, and keeps going, so
// one flipped bit quarantines one record instead of killing the view.
// Only when no valid record follows — the signature of a crash
// mid-append — does replay stop at the last good boundary so the
// caller can truncate the torn tail. Records that end at or before
// trusted (the sidecar's clean prefix) skip the checksum
// re-verification; any failure inside that region is reported as
// errTrustedCorrupt so the caller can fall back to a full verifying
// scan. It runs inside openView before the view is published, so it
// may touch guarded fields without the lock.
func (v *View) replay(data []byte, trusted int64) (int, error) {
	if len(data) < 6 || binary.LittleEndian.Uint32(data) != viewMagic {
		return 0, errHeaderCorrupt
	}
	if data[4] != viewVersion {
		return 0, fmt.Errorf("unsupported view version %d: %w", data[4], errHeaderCorrupt)
	}
	off := 5
	ncols := int(data[off])
	off++
	var schema types.Schema
	for i := 0; i < ncols; i++ {
		if off+2 > len(data) {
			return 0, errHeaderCorrupt
		}
		kind := types.Kind(data[off])
		nameLen := int(data[off+1])
		off += 2
		if off+nameLen > len(data) {
			return 0, errHeaderCorrupt
		}
		schema = append(schema, types.Column{Name: string(data[off : off+nameLen]), Kind: kind})
		off += nameLen
	}
	if !schema.Equal(v.schema) {
		return 0, fmt.Errorf("schema mismatch: file has %s, want %s", schema, v.schema)
	}
	if off >= len(data) {
		return 0, errHeaderCorrupt
	}
	nkeys := int(data[off])
	off++
	if nkeys != len(v.keyCols) {
		return 0, fmt.Errorf("key count mismatch: file has %d, want %d", nkeys, len(v.keyCols))
	}
	for i := 0; i < nkeys; i++ {
		if off >= len(data) {
			return 0, errHeaderCorrupt
		}
		klen := int(data[off])
		off++
		if off+klen > len(data) {
			return 0, errHeaderCorrupt
		}
		off += klen // names validated via schema equality; skip
	}

	if trusted > 0 && trusted < int64(off) {
		// The sidecar claims a prefix shorter than the header: stale
		// beyond use.
		return 0, errTrustedCorrupt
	}
	for off < len(data) {
		inTrusted := int64(off) < trusted
		end, ok := recordBounds(data, off)
		fastPath := ok && inTrusted && int64(end) <= trusted
		if ok && !fastPath {
			// Verified-prefix fast path skips this hash: records
			// entirely inside the sidecar's clean prefix were verified
			// by the open that wrote the sidecar. (That skip is also
			// the fast path's blind spot — bitrot landing inside the
			// trusted prefix after the sidecar was written passes this
			// scan; Verify's full re-hash is what catches it.)
			sum := binary.LittleEndian.Uint64(data[end-recSumLen:])
			ok = xxhash.Sum64(data[off:end-recSumLen], 0) == sum
		}
		if !ok {
			if inTrusted {
				return 0, errTrustedCorrupt
			}
			// Bad record outside the trusted prefix: try to salvage a
			// valid suffix. With none, this is a torn tail (crash
			// mid-append) — stop at the last good boundary so the
			// caller truncates. With one, the skipped bytes are a
			// mid-log hole: quarantine them and keep replaying.
			next := resyncRecord(data, off+1)
			if next < 0 {
				return off, nil
			}
			v.holes = append(v.holes, LostRange{Lo: int64(off), Hi: int64(next)}) // lint:nolock pre-publish (openView)
			off = next
			continue
		}
		kind := data[off]
		count := int(binary.LittleEndian.Uint32(data[off+1:]))
		if fastPath {
			v.openTrusted++ // lint:nolock pre-publish (openView)
		} else {
			v.openVerified++
		}
		payload := data[off+recHeaderLen : end-recSumLen]
		if err := v.replayRecord(kind, count, payload); err != nil {
			if inTrusted {
				// Inside the trusted prefix an undecodable payload
				// means the sidecar lied (the checksum was skipped):
				// retry with full verification before giving up.
				return 0, errTrustedCorrupt
			}
			// The checksum matched but the payload is undecodable:
			// a writer bug or deliberate corruption, not a crash.
			return 0, err
		}
		off = end
	}
	return off, nil
}

// recordBounds validates the record header at off structurally,
// returning the offset past the record. ok is false when the record
// does not fit in data or its header is implausible.
func recordBounds(data []byte, off int) (end int, ok bool) {
	if off+recHeaderLen+recSumLen > len(data) {
		return 0, false
	}
	kind := data[off]
	if kind != recRows && kind != recKeys {
		return 0, false
	}
	count := int(binary.LittleEndian.Uint32(data[off+1:]))
	paylen := int(binary.LittleEndian.Uint32(data[off+5:]))
	if paylen < 0 || count < 0 {
		return 0, false
	}
	end = off + recHeaderLen + paylen + recSumLen
	if end < off || end > len(data) {
		return 0, false
	}
	return end, true
}

// checkRecord validates the record at off structurally and against its
// checksum, returning the offset past it.
func checkRecord(data []byte, off int) (end int, sumOK bool) {
	end, ok := recordBounds(data, off)
	if !ok {
		return 0, false
	}
	sum := binary.LittleEndian.Uint64(data[end-recSumLen:])
	if xxhash.Sum64(data[off:end-recSumLen], 0) != sum {
		return 0, false
	}
	return end, true
}

// resyncRecord scans forward from off for the next byte offset holding
// a checksum-valid record, or -1 when none exists. A 64-bit checksum
// over the full candidate record makes a false resynchronization point
// (random bytes that both parse as a header and hash correctly)
// vanishingly unlikely.
func resyncRecord(data []byte, off int) int {
	for ; off+recHeaderLen+recSumLen <= len(data); off++ {
		if _, ok := checkRecord(data, off); ok {
			return off
		}
	}
	return -1
}

// replayRecord decodes one verified record payload into memory.
func (v *View) replayRecord(kind byte, count int, payload []byte) error {
	off := 0
	switch kind {
	case recRows:
		row := make([]types.Datum, len(v.schema))
		for r := 0; r < count; r++ {
			for c := range row {
				d, n, err := types.DecodeDatum(payload[off:])
				if err != nil {
					return fmt.Errorf("row record: %w", err)
				}
				row[c] = d
				off += n
			}
			v.appendRowLocked(row)
		}
	case recKeys:
		key := make([]types.Datum, len(v.keyCols))
		for r := 0; r < count; r++ {
			for c := range key {
				d, n, err := types.DecodeDatum(payload[off:])
				if err != nil {
					return fmt.Errorf("key record: %w", err)
				}
				key[c] = d
				off += n
			}
			// lint:nolock replay runs inside openView before the view is published
			v.processed[encodeKey(key)] = struct{}{}
		}
	default:
		return fmt.Errorf("unknown record kind %d", kind)
	}
	if off != len(payload) {
		return fmt.Errorf("record kind %d: %d trailing payload bytes", kind, len(payload)-off)
	}
	return nil
}

func (v *View) setInjector(inj *faults.Injector) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.inj = inj
}

// setBudget installs (or clears) the disk budget, charging the view's
// current on-disk footprint so late installation still accounts for
// existing artifacts.
func (v *View) setBudget(b *DiskBudget) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.budget = b
	b.Set(v.path, v.footprint)
}

// Name returns the view name.
func (v *View) Name() string { return v.name }

// Schema returns the view's row schema.
func (v *View) Schema() types.Schema { return v.schema }

// KeyColumns returns the key column names.
func (v *View) KeyColumns() []string { return v.keyCols }

// RecoveredBytes returns the size of the torn tail dropped when the
// view was opened (0 for a clean log).
func (v *View) RecoveredBytes() int64 {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.recovered
}

// OpenStats reports how the last open rebuilt the index: trusted is
// the number of records accepted from the clean-sidecar prefix without
// checksum re-verification, verified the number whose checksums were
// recomputed. trusted = 0 on a first open or after a fallback scan.
func (v *View) OpenStats() (trusted, verified int) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.openTrusted, v.openVerified
}

// encodeKey canonically encodes a key tuple for index lookups.
func encodeKey(key []types.Datum) string {
	var buf []byte
	for _, d := range key {
		buf = d.AppendBinary(buf)
	}
	return string(buf)
}

// EncodeKey exposes the canonical key encoding for callers that build
// probe tables.
func EncodeKey(key []types.Datum) string { return encodeKey(key) }

// AppendKey appends the canonical key encoding to buf and returns it —
// the allocation-free form of EncodeKey for probe loops that reuse a
// scratch buffer and look up with HasKeyBytes / RowsForKeyBytes.
func AppendKey(buf []byte, key []types.Datum) []byte {
	for _, d := range key {
		buf = d.AppendBinary(buf)
	}
	return buf
}

func (v *View) rowKey(b *types.Batch, r int) string {
	key := make([]types.Datum, len(v.keyIdx))
	for i, c := range v.keyIdx {
		key[i] = b.At(r, c)
	}
	return encodeKey(key)
}

func (v *View) appendRowLocked(row []types.Datum) {
	v.batch.MustAppendRow(row...)
	r := v.batch.Len() - 1
	key := v.rowKey(v.batch, r)
	v.rowsByKey[key] = append(v.rowsByKey[key], r)
	v.processed[key] = struct{}{}
}

// Append adds result rows and marks extra keys as processed (for keys
// whose evaluation produced no rows). Rows whose key is already
// processed are skipped — appends are idempotent per key, which keeps
// the STORE operator safe to re-run. It returns the number of new rows
// stored and persists the append.
//
// Ordering contract: the log record reaches disk before any in-memory
// state changes. On a write error the partial write is rolled back
// (file truncated to its pre-append length) and memory is untouched,
// so memory can never run ahead of disk; on a simulated crash the
// view is marked dead and the torn tail is left for recovery at the
// next open.
//
// Disk pressure never fails an append while something evictable
// remains: a budget denial or injected disk:full fault releases the
// lock, runs the engine's reclaim ladder (compact fragmented logs,
// then evict cold views), charges virtual-clock backoff, and retries;
// only a dry ladder surfaces the typed ErrDiskBudget.
func (v *View) Append(rows *types.Batch, processedKeys [][]types.Datum) (int, error) {
	return v.appendEvictRetry(rows, processedKeys, nil, true)
}

// AppendWith is Append consulting the caller's fault injector instead
// of the view's installed one. Session-scoped execution uses it so a
// session's write faults are drawn from that session's deterministic
// schedule, not the system-wide injector (which stays nil-safe for
// fault-free sessions even when the system has one installed).
func (v *View) AppendWith(rows *types.Batch, processedKeys [][]types.Datum, inj *faults.Injector) (int, error) {
	return v.appendEvictRetry(rows, processedKeys, inj, false)
}

// appendEvictRetry runs locked append attempts, holding no view lock
// between them: a retriable disk-full failure frees space through the
// engine's reclaim ladder (which must take other views' locks) and
// retries the same record. The retry redraws injected faults at the
// same LSN (the injector bumps the per-(site, LSN) occurrence count),
// so transient disk:full schedules drain exactly like transient write
// faults. The loop terminates because every retry either freed bytes
// (finite) or drained a bounded injector rule, with evictRetryMax as
// the backstop.
func (v *View) appendEvictRetry(rows *types.Batch, processedKeys [][]types.Datum, inj *faults.Injector, useViewInj bool) (int, error) {
	for attempt := 1; ; attempt++ {
		v.mu.Lock()
		use := inj
		if useViewInj {
			use = v.inj
		}
		n, err := v.appendLocked(rows, processedKeys, use)
		v.mu.Unlock()
		if err == nil || !IsDiskFull(err) || faults.IsCrash(err) {
			return n, err
		}
		var dfe *DiskFullError
		errors.As(err, &dfe)
		if v.eng == nil || attempt >= evictRetryMax {
			return 0, fmt.Errorf("storage: view %s: %w: %v", v.name, ErrDiskBudget, dfe)
		}
		// Evicting the log being appended would free nothing durable
		// for this retry, so the ladder excludes it; a budget too small
		// for even one view therefore ends with a dry ladder and the
		// typed error, never an evict-ourselves loop.
		freed := v.eng.Reclaim(dfe.Need, v.name)
		if freed <= 0 && !faults.IsTransient(err) {
			return 0, fmt.Errorf("storage: view %s: %w: %v", v.name, ErrDiskBudget, dfe)
		}
		v.eng.chargeRetry(attempt)
	}
}

func (v *View) appendLocked(rows *types.Batch, processedKeys [][]types.Datum, inj *faults.Injector) (int, error) {
	if rows != nil && !rows.Schema().Equal(v.schema) {
		return 0, fmt.Errorf("storage: view %s: append schema %s, want %s", v.name, rows.Schema(), v.schema)
	}
	for _, key := range processedKeys {
		if len(key) != len(v.keyCols) {
			return 0, fmt.Errorf("storage: view %s: key width %d, want %d", v.name, len(key), len(v.keyCols))
		}
	}
	if v.dead {
		return 0, fmt.Errorf("storage: view %s: unusable after simulated crash", v.name)
	}

	// Phase 1 (pure): decide which rows and keys are new and encode
	// the log record. No in-memory state changes yet.
	var rowBuf []byte
	var newRowIdx []int
	if rows != nil {
		// A row is stored iff its key was unprocessed when this call
		// began. newKeys lets sibling rows of a key introduced by this
		// very batch through, even though the key becomes processed as
		// soon as the first sibling lands.
		newKeys := map[string]struct{}{}
		for r := 0; r < rows.Len(); r++ {
			key := v.rowKey(rows, r)
			if _, done := v.processed[key]; done {
				if _, fresh := newKeys[key]; !fresh {
					continue
				}
			}
			newKeys[key] = struct{}{}
			newRowIdx = append(newRowIdx, r)
			for _, d := range rows.Row(r) {
				rowBuf = d.AppendBinary(rowBuf)
			}
		}
	}

	var keyBuf []byte
	var newKeyIdx []int
	for ki, key := range processedKeys {
		ek := encodeKey(key)
		if _, done := v.processed[ek]; done {
			continue
		}
		newKeyIdx = append(newKeyIdx, ki)
		for _, d := range key {
			keyBuf = d.AppendBinary(keyBuf)
		}
	}

	var out []byte
	if len(newRowIdx) > 0 {
		out = sealRecord(out, recRows, len(newRowIdx), rowBuf)
	}
	if len(newKeyIdx) > 0 {
		out = sealRecord(out, recKeys, len(newKeyIdx), keyBuf)
	}
	if len(out) == 0 {
		return 0, nil
	}

	// Phase 2: disk. A failure here leaves memory exactly as it was.
	if err := v.writeLocked(out, inj); err != nil {
		return 0, err
	}

	// Phase 3: memory, now that the record is durable.
	for _, r := range newRowIdx {
		v.appendRowLocked(rows.Row(r))
	}
	for _, ki := range newKeyIdx {
		v.processed[encodeKey(processedKeys[ki])] = struct{}{}
	}
	return len(newRowIdx), nil
}

// writeLocked appends the encoded record to the log, consulting the
// fault injector. Short or failed writes are rolled back by truncating
// to the pre-append length; a simulated crash leaves the torn tail on
// disk and kills the view. A disk-full condition — the budget denying
// the bytes, or an injected fault at the log's disk:full shadow site —
// surfaces as a retriable *DiskFullError for the evict-retry loop.
// Callers must hold mu.
func (v *View) writeLocked(out []byte, inj *faults.Injector) error {
	if v.file == nil {
		return fmt.Errorf("storage: view %s: closed", v.name)
	}
	allow := len(out)
	var injected error
	// The pre-append footprint is the record's LSN: it keys the
	// probabilistic fault draw, so a record's fate does not depend on
	// how many appends other views (or retries of other records) made
	// first. A rolled-back retry of the same record redraws (the
	// injector bumps a per-(site, LSN) occurrence counter). The
	// disk:full shadow site draws first — a full disk fails the write
	// before the bytes could matter.
	dfSite := faults.SiteDiskFull(v.site)
	if short, ferr := inj.CheckWrite(dfSite, uint64(v.footprint), len(out)); ferr != nil {
		allow, injected = short, &DiskFullError{Site: dfSite, Need: int64(len(out)), Injected: ferr}
	} else if short, ferr := inj.CheckWrite(v.site, uint64(v.footprint), len(out)); ferr != nil {
		allow, injected = short, ferr
	}
	admitted := false
	if injected == nil {
		if !v.budget.Admit(v.path, int64(len(out))) {
			// Denied before any byte reaches the file: nothing to roll
			// back, and the retry (after reclaim) redraws nothing.
			return fmt.Errorf("storage: view %s: %w", v.name, &DiskFullError{Site: dfSite, Need: int64(len(out))})
		}
		admitted = true
	}
	var wrote int
	var werr error
	if allow > 0 {
		wrote, werr = v.file.Write(out[:allow])
	}
	if injected != nil && faults.IsCrash(injected) {
		// Simulated kill mid-append: whatever reached the file stays
		// as a torn tail for the next open to recover; this in-process
		// handle is as dead as the killed process.
		v.dead = true
		return fmt.Errorf("storage: view %s: %w", v.name, injected)
	}
	if injected == nil && werr == nil && wrote == len(out) {
		v.footprint += int64(len(out))
		return nil
	}
	if admitted {
		v.budget.Refund(v.path, int64(len(out)))
	}
	// Failed or short write without a crash: roll the file back so
	// disk and memory stay in lockstep.
	if terr := v.file.Truncate(v.footprint); terr != nil {
		v.dead = true
		return fmt.Errorf("storage: view %s: rollback after failed write: %v (write error: %v)", v.name, terr, firstErr(injected, werr))
	}
	return fmt.Errorf("storage: view %s: %w", v.name, firstErr(injected, werr, fmt.Errorf("short write (%d of %d bytes)", wrote, len(out))))
}

// firstErr returns the first non-nil error.
func firstErr(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// Scan returns all stored rows as a read-only snapshot. The snapshot's
// column headers are copied under the lock, so concurrent Appends
// (which only ever add rows past the snapshot's length) cannot race
// with readers.
func (v *View) Scan() *types.Batch {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.batch.Slice(0, v.batch.Len())
}

// Rows returns the number of stored result rows.
func (v *View) Rows() int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.batch.Len()
}

// ProcessedCount returns the number of distinct processed keys.
func (v *View) ProcessedCount() int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return len(v.processed)
}

// HasKey reports whether the key was processed (even with zero rows).
func (v *View) HasKey(key []types.Datum) bool {
	v.mu.RLock()
	defer v.mu.RUnlock()
	_, ok := v.processed[encodeKey(key)]
	return ok
}

// RowsForKey returns the indexes (into Scan's batch) of the rows with
// the given key.
func (v *View) RowsForKey(key []types.Datum) []int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.rowsByKey[encodeKey(key)]
}

// HasKeyBytes is HasKey over an AppendKey-encoded key. The string
// conversion in the map index is recognized by the compiler and does
// not allocate, which is what the executor's probe loop needs.
func (v *View) HasKeyBytes(ek []byte) bool {
	v.mu.RLock()
	defer v.mu.RUnlock()
	_, ok := v.processed[string(ek)]
	return ok
}

// RowsForKeyBytes is RowsForKey over an AppendKey-encoded key. The
// returned slice is the live index; callers must treat it as read-only
// (it stays valid because views are append-only).
func (v *View) RowsForKeyBytes(ek []byte) []int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.rowsByKey[string(ek)]
}

// ClaimKeys atomically claims every encoded key for evaluation by one
// caller — the per-(view, region) singleflight behind shared-view
// concurrency. It is all-or-nothing: if any key is already claimed,
// nothing is claimed and the conflicting claim's channel is returned;
// the caller waits on it (holding no claims of its own, so waiting can
// never deadlock), re-probes the view — the other claimant may have
// materialized the keys by then — and retries. On success every key is
// claimed and the caller must ReleaseKeys the same set exactly once,
// on every path including errors.
func (v *View) ClaimKeys(keys []string) (granted bool, busy <-chan struct{}) {
	v.mu.Lock()
	defer v.mu.Unlock()
	for _, k := range keys {
		if ch, claimed := v.claims[k]; claimed {
			return false, ch
		}
	}
	done := make(chan struct{})
	for _, k := range keys {
		v.claims[k] = done
	}
	return true, nil
}

// ReleaseKeys releases a granted claim, waking every waiter.
func (v *View) ReleaseKeys(keys []string) {
	if len(keys) == 0 {
		return
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	var done chan struct{}
	for _, k := range keys {
		if ch, ok := v.claims[k]; ok {
			done = ch
			delete(v.claims, k)
		}
	}
	if done != nil {
		close(done)
	}
}

// Footprint returns the on-disk size in bytes.
func (v *View) Footprint() int64 {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.footprint
}

func (v *View) close() error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.file == nil {
		return nil
	}
	err := v.file.Close()
	v.file = nil
	// A clean close refreshes the sidecar so the next open can trust
	// the whole log. A dead view skips it — a killed process writes
	// nothing on the way down, and its torn tail must be re-verified.
	v.writeCleanSidecarLocked()
	return err
}
