package storage

import (
	"errors"
	"fmt"
	"testing"
)

func TestDiskBudgetAdmitRefund(t *testing.T) {
	b := NewDiskBudget(100)
	if !b.Admit("a", 60) {
		t.Fatal("first admit within limit denied")
	}
	if b.Admit("b", 50) {
		t.Fatal("over-limit admit allowed")
	}
	if got := b.Stats().Denials; got != 1 {
		t.Fatalf("Denials = %d, want 1", got)
	}
	if !b.Admit("b", 40) {
		t.Fatal("exact-fit admit denied")
	}
	if hr := b.Headroom(); hr != 0 {
		t.Fatalf("Headroom = %d, want 0", hr)
	}
	b.Refund("b", 40)
	if hr := b.Headroom(); hr != 40 {
		t.Fatalf("Headroom after refund = %d, want 40", hr)
	}
	st := b.Stats()
	if st.UsedBytes != 60 || st.Artifacts != 1 {
		t.Fatalf("stats after refund: used=%d artifacts=%d, want 60, 1", st.UsedBytes, st.Artifacts)
	}
}

func TestDiskBudgetSetAndDrop(t *testing.T) {
	b := NewDiskBudget(1000)
	b.Admit("a", 100)
	b.Set("a", 30) // compaction shrank the artifact
	if st := b.Stats(); st.UsedBytes != 30 {
		t.Fatalf("used after Set = %d, want 30", st.UsedBytes)
	}
	b.Set("b", 70) // rename commit charges a fresh artifact
	if st := b.Stats(); st.UsedBytes != 100 || st.Artifacts != 2 {
		t.Fatalf("used=%d artifacts=%d, want 100, 2", st.UsedBytes, st.Artifacts)
	}
	b.Drop("a")
	if st := b.Stats(); st.UsedBytes != 70 || st.Artifacts != 1 {
		t.Fatalf("after drop: used=%d artifacts=%d, want 70, 1", st.UsedBytes, st.Artifacts)
	}
}

func TestDiskBudgetNilAndUnlimited(t *testing.T) {
	var nilB *DiskBudget
	if !nilB.Admit("a", 1<<40) {
		t.Fatal("nil budget denied")
	}
	nilB.Refund("a", 1)
	nilB.Set("a", 1)
	nilB.Drop("a")
	if hr := nilB.Headroom(); hr <= 0 {
		t.Fatalf("nil Headroom = %d", hr)
	}
	if st := nilB.Stats(); st != (DiskStats{}) {
		t.Fatalf("nil Stats = %+v, want zero", st)
	}
	// Account-only mode: limit <= 0 tracks but never denies.
	b := NewDiskBudget(0)
	if !b.Admit("a", 1<<40) {
		t.Fatal("account-only budget denied")
	}
	if st := b.Stats(); st.UsedBytes != 1<<40 || st.Denials != 0 {
		t.Fatalf("account-only stats: %+v", st)
	}
}

func TestDiskFullErrorTyping(t *testing.T) {
	cause := errors.New("boom")
	dfe := &DiskFullError{Site: "disk:full:view:write:det", Need: 64, Injected: cause}
	wrapped := fmt.Errorf("storage: view det: %w", dfe)
	if !IsDiskFull(wrapped) {
		t.Fatal("IsDiskFull missed a wrapped DiskFullError")
	}
	if !errors.Is(wrapped, cause) {
		t.Fatal("DiskFullError does not unwrap its injected cause")
	}
	terminal := fmt.Errorf("storage: view det: %w: %v", ErrDiskBudget, dfe)
	if !errors.Is(terminal, ErrDiskBudget) {
		t.Fatal("terminal error does not match ErrDiskBudget")
	}
	if IsDiskFull(errors.New("other")) {
		t.Fatal("IsDiskFull false positive")
	}
}
