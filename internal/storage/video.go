package storage

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"eva/internal/types"
	"eva/internal/vision"
)

// defaultSegmentFrames is the number of frames per on-disk segment.
const defaultSegmentFrames = 500

// videoSchema mirrors catalog.VideoSchema without importing the
// catalog (storage sits below it in the dependency order).
var videoSchema = types.MustSchema(
	types.Column{Name: "id", Kind: types.KindInt},
	types.Column{Name: "seconds", Kind: types.KindFloat},
	types.Column{Name: "frame", Kind: types.KindBytes},
)

// framesPerSecond converts frame ids to the seconds column.
const framesPerSecond = 30.0

// Video is an on-disk video table: fixed-size segments of encoded
// frames, materialized lazily from the synthetic dataset on first
// access (the moral equivalent of LOAD VIDEO decoding into Parquet).
type Video struct {
	name      string
	dir       string
	ds        vision.Dataset
	segFrames int
	// live marks a streaming table (see live.go): frames become
	// visible as the durable watermark advances rather than all at
	// once. site is its ingest-append fault site.
	live bool
	site string
	// eng points back to the owning engine so a disk-full watermark
	// append can run the reclaim ladder; nil for videos built directly
	// in unit tests. Immutable after creation.
	eng *Engine

	mu    sync.Mutex
	cache map[int]*types.Batch // guarded by mu; segment index -> decoded batch
	// Streaming state (live tables only; see live.go).
	wm          int64       // guarded by mu; durable watermark (frames)
	wmFile      *os.File    // guarded by mu; watermark-log handle
	wmFoot      int64       // guarded by mu; watermark-log bytes
	wmDead      bool        // guarded by mu; simulated crash hit this handle
	wmRecovered int64       // guarded by mu; torn-tail bytes dropped at open
	budget      *DiskBudget // guarded by mu; charges the watermark log
}

// Name returns the table name.
func (v *Video) Name() string { return v.name }

// Dataset returns the backing dataset descriptor.
func (v *Video) Dataset() vision.Dataset { return v.ds }

// NumFrames returns the number of visible frames: the full dataset for
// a batch table, the durable watermark for a live one (scans never
// read past what has been durably ingested).
func (v *Video) NumFrames() int64 {
	if !v.live {
		return int64(v.ds.Frames)
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.wm
}

// Schema returns the video table schema.
func (v *Video) Schema() types.Schema { return videoSchema }

// VirtualBytes returns the simulated decoded dataset size (RGB24),
// the denominator of the §5.2 storage-overhead ratio.
func (v *Video) VirtualBytes() int64 {
	return int64(v.ds.Frames) * int64(v.ds.VirtualFrameBytes())
}

// Scan returns frames with id in [lo, hi) as one batch.
func (v *Video) Scan(lo, hi int64) (*types.Batch, error) {
	if lo < 0 {
		lo = 0
	}
	if hi > v.NumFrames() {
		hi = v.NumFrames()
	}
	out := types.NewBatchCapacity(videoSchema, int(hi-lo))
	if hi <= lo {
		return out, nil
	}
	for seg := int(lo) / v.segFrames; seg <= int(hi-1)/v.segFrames; seg++ {
		batch, err := v.segment(seg)
		if err != nil {
			return nil, err
		}
		segLo := int64(seg * v.segFrames)
		from, to := lo-segLo, hi-segLo
		if from < 0 {
			from = 0
		}
		if to > int64(batch.Len()) {
			to = int64(batch.Len())
		}
		if to > from {
			if err := out.AppendBatch(batch.Slice(int(from), int(to))); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// ScanInto appends frames with id in [lo, hi) to out, which must carry
// the video schema. Unlike Scan it copies rows instead of slicing the
// segment cache, so the caller fully owns out — the contract a pooled
// scan batch needs (recycling a batch that aliased the cache would let
// poisoning or reuse corrupt it).
func (v *Video) ScanInto(out *types.Batch, lo, hi int64) error {
	if lo < 0 {
		lo = 0
	}
	if hi > v.NumFrames() {
		hi = v.NumFrames()
	}
	if hi <= lo {
		return nil
	}
	for seg := int(lo) / v.segFrames; seg <= int(hi-1)/v.segFrames; seg++ {
		batch, err := v.segment(seg)
		if err != nil {
			return err
		}
		segLo := int64(seg * v.segFrames)
		from, to := lo-segLo, hi-segLo
		if from < 0 {
			from = 0
		}
		if to > int64(batch.Len()) {
			to = int64(batch.Len())
		}
		if to > from {
			if err := out.AppendRange(batch, int(from), int(to)); err != nil {
				return err
			}
		}
	}
	return nil
}

// segment loads (materializing if needed) one segment.
func (v *Video) segment(idx int) (*types.Batch, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.cache == nil {
		v.cache = map[int]*types.Batch{}
	}
	if b, ok := v.cache[idx]; ok {
		return b, nil
	}
	path := filepath.Join(v.dir, fmt.Sprintf("seg-%06d.bin", idx))
	if _, err := os.Stat(path); os.IsNotExist(err) {
		if err := v.writeSegment(idx, path); err != nil {
			return nil, err
		}
	}
	b, err := readSegment(path)
	if err != nil {
		return nil, fmt.Errorf("storage: video %s segment %d: %w", v.name, idx, err)
	}
	v.cache[idx] = b
	return b, nil
}

func (v *Video) writeSegment(idx int, path string) error {
	lo := idx * v.segFrames
	hi := lo + v.segFrames
	if hi > v.ds.Frames {
		hi = v.ds.Frames
	}
	if lo >= hi {
		return fmt.Errorf("storage: segment %d out of range", idx)
	}
	batch := types.NewBatchCapacity(videoSchema, hi-lo)
	for f := lo; f < hi; f++ {
		batch.MustAppendRow(
			types.NewInt(int64(f)),
			types.NewFloat(float64(f)/framesPerSecond),
			types.NewBytes(v.ds.EncodeFrame(int64(f))),
		)
	}
	return writeSegment(path, batch)
}

// Segment file format: magic, version, row count, then rows of
// canonically encoded datums.
const (
	segMagic   = 0x45564153 // "EVAS"
	segVersion = 1
)

func writeSegment(path string, batch *types.Batch) error {
	buf := make([]byte, 0, 64+batch.EncodedSize())
	buf = binary.LittleEndian.AppendUint32(buf, segMagic)
	buf = append(buf, segVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(batch.Len()))
	for r := 0; r < batch.Len(); r++ {
		for c := 0; c < len(batch.Schema()); c++ {
			buf = batch.At(r, c).AppendBinary(buf)
		}
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func readSegment(path string) (*types.Batch, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < 9 || binary.LittleEndian.Uint32(data) != segMagic {
		return nil, fmt.Errorf("bad segment header")
	}
	if data[4] != segVersion {
		return nil, fmt.Errorf("unsupported segment version %d", data[4])
	}
	n := int(binary.LittleEndian.Uint32(data[5:]))
	batch := types.NewBatchCapacity(videoSchema, n)
	off := 9
	row := make([]types.Datum, len(videoSchema))
	for r := 0; r < n; r++ {
		for c := range row {
			d, consumed, err := types.DecodeDatum(data[off:])
			if err != nil {
				return nil, fmt.Errorf("row %d col %d: %w", r, c, err)
			}
			row[c] = d
			off += consumed
		}
		if err := batch.AppendRow(row...); err != nil {
			return nil, err
		}
	}
	return batch, nil
}
