package storage

import (
	"os"
	"path/filepath"
	"testing"

	"eva/internal/types"
	"eva/internal/vision"
)

func newEngine(t *testing.T) *Engine {
	t.Helper()
	e, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestVideoScan(t *testing.T) {
	e := newEngine(t)
	ds := vision.Jackson
	v, err := e.CreateVideo("video", ds)
	if err != nil {
		t.Fatal(err)
	}
	if v.NumFrames() != 14000 {
		t.Fatalf("frames = %d", v.NumFrames())
	}
	b, err := v.Scan(100, 110)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 10 {
		t.Fatalf("scan len = %d", b.Len())
	}
	if got := b.At(0, 0).Int(); got != 100 {
		t.Errorf("first id = %d", got)
	}
	// Payload decodes to the right frame.
	df, err := vision.DecodeFrame(b.At(3, 2).Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if df.Frame != 103 {
		t.Errorf("payload frame = %d", df.Frame)
	}
	// Seconds column.
	if got := b.At(0, 1).Float(); got != 100.0/30.0 {
		t.Errorf("seconds = %v", got)
	}
}

func TestVideoScanBoundaries(t *testing.T) {
	e := newEngine(t)
	v, _ := e.CreateVideo("video", vision.Jackson)
	// Cross-segment scan (segment size 500).
	b, err := v.Scan(495, 505)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 10 || b.At(0, 0).Int() != 495 || b.At(9, 0).Int() != 504 {
		t.Errorf("cross-segment scan wrong: len=%d", b.Len())
	}
	// Clamping.
	b, err = v.Scan(-5, 3)
	if err != nil || b.Len() != 3 {
		t.Errorf("clamped low scan: %d, %v", b.Len(), err)
	}
	b, err = v.Scan(13995, 99999)
	if err != nil || b.Len() != 5 {
		t.Errorf("clamped high scan: %d, %v", b.Len(), err)
	}
	b, err = v.Scan(10, 10)
	if err != nil || b.Len() != 0 {
		t.Errorf("empty scan: %d, %v", b.Len(), err)
	}
}

func TestVideoSegmentPersistence(t *testing.T) {
	dir := t.TempDir()
	e, _ := Open(dir)
	v, _ := e.CreateVideo("video", vision.Jackson)
	if _, err := v.Scan(0, 10); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "videos", "video", "seg-*.bin"))
	if len(segs) != 1 {
		t.Fatalf("segments on disk = %d", len(segs))
	}
	// Corrupt the segment; a fresh engine should surface the error.
	if err := os.WriteFile(segs[0], []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	e2, _ := Open(dir)
	v2, _ := e2.CreateVideo("video", vision.Jackson)
	if _, err := v2.Scan(0, 10); err == nil {
		t.Error("corrupt segment should error")
	}
}

func TestCreateVideoDuplicate(t *testing.T) {
	e := newEngine(t)
	if _, err := e.CreateVideo("v", vision.Jackson); err != nil {
		t.Fatal(err)
	}
	if _, err := e.CreateVideo("V", vision.Jackson); err == nil {
		t.Error("duplicate video should error")
	}
	if _, err := e.Video("v"); err != nil {
		t.Error("lookup failed")
	}
	if _, err := e.Video("ghost"); err == nil {
		t.Error("unknown video should error")
	}
}

func viewSchema() types.Schema {
	return types.MustSchema(
		types.Column{Name: "id", Kind: types.KindInt},
		types.Column{Name: "label", Kind: types.KindString},
		types.Column{Name: "bbox", Kind: types.KindString},
	)
}

func TestViewAppendScanLookup(t *testing.T) {
	e := newEngine(t)
	v, err := e.CreateView("det", viewSchema(), []string{"id"})
	if err != nil {
		t.Fatal(err)
	}
	rows := types.NewBatch(viewSchema())
	rows.MustAppendRow(types.NewInt(1), types.NewString("car"), types.NewString("a"))
	rows.MustAppendRow(types.NewInt(1), types.NewString("bus"), types.NewString("b"))
	rows.MustAppendRow(types.NewInt(2), types.NewString("car"), types.NewString("c"))
	n, err := v.Append(rows, [][]types.Datum{{types.NewInt(3)}}) // frame 3 processed, no detections
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("stored %d rows, want 3", n)
	}
	if v.Rows() != 3 || v.ProcessedCount() != 3 {
		t.Errorf("rows=%d processed=%d", v.Rows(), v.ProcessedCount())
	}
	if !v.HasKey([]types.Datum{types.NewInt(3)}) {
		t.Error("empty-result key should be processed")
	}
	if v.HasKey([]types.Datum{types.NewInt(4)}) {
		t.Error("unprocessed key reported processed")
	}
	idxs := v.RowsForKey([]types.Datum{types.NewInt(1)})
	if len(idxs) != 2 {
		t.Errorf("rows for key 1 = %v", idxs)
	}
}

func TestViewAppendIdempotentPerKey(t *testing.T) {
	e := newEngine(t)
	v, _ := e.CreateView("det", viewSchema(), []string{"id"})
	rows := types.NewBatch(viewSchema())
	rows.MustAppendRow(types.NewInt(1), types.NewString("car"), types.NewString("a"))
	if _, err := v.Append(rows, nil); err != nil {
		t.Fatal(err)
	}
	// Re-appending the same key must not duplicate.
	n, err := v.Append(rows, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 || v.Rows() != 1 {
		t.Errorf("re-append stored %d rows, total %d", n, v.Rows())
	}
	// A key marked processed with no rows stays empty.
	if _, err := v.Append(nil, [][]types.Datum{{types.NewInt(9)}}); err != nil {
		t.Fatal(err)
	}
	rows9 := types.NewBatch(viewSchema())
	rows9.MustAppendRow(types.NewInt(9), types.NewString("car"), types.NewString("x"))
	n, _ = v.Append(rows9, nil)
	if n != 0 {
		t.Errorf("processed-empty key gained %d rows", n)
	}
}

func TestViewPersistenceAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	e, _ := Open(dir)
	v, _ := e.CreateView("det", viewSchema(), []string{"id"})
	rows := types.NewBatch(viewSchema())
	rows.MustAppendRow(types.NewInt(7), types.NewString("car"), types.NewString("b7"))
	if _, err := v.Append(rows, [][]types.Datum{{types.NewInt(8)}}); err != nil {
		t.Fatal(err)
	}
	fp := v.Footprint()
	if fp <= 0 {
		t.Fatal("footprint not tracked")
	}

	e2, _ := Open(dir)
	v2, err := e2.CreateView("det", viewSchema(), []string{"id"})
	if err != nil {
		t.Fatal(err)
	}
	if v2.Rows() != 1 || v2.ProcessedCount() != 2 {
		t.Errorf("reopened rows=%d processed=%d", v2.Rows(), v2.ProcessedCount())
	}
	if !v2.HasKey([]types.Datum{types.NewInt(8)}) {
		t.Error("processed key lost on reopen")
	}
	if got := v2.Scan().At(0, 1).Str(); got != "car" {
		t.Errorf("row content lost: %q", got)
	}
	if v2.Footprint() != fp {
		t.Errorf("footprint drifted: %d vs %d", v2.Footprint(), fp)
	}
}

func TestViewSchemaValidation(t *testing.T) {
	e := newEngine(t)
	if _, err := e.CreateView("v", viewSchema(), []string{"ghost"}); err == nil {
		t.Error("bad key column should error")
	}
	v, _ := e.CreateView("det", viewSchema(), []string{"id"})
	other := types.NewBatch(types.MustSchema(types.Column{Name: "x", Kind: types.KindInt}))
	other.MustAppendRow(types.NewInt(1))
	if _, err := v.Append(other, nil); err == nil {
		t.Error("mismatched append schema should error")
	}
	if _, err := v.Append(nil, [][]types.Datum{{types.NewInt(1), types.NewInt(2)}}); err == nil {
		t.Error("mismatched key width should error")
	}
	// CreateView with same name and schema returns the same view.
	v2, err := e.CreateView("det", viewSchema(), []string{"id"})
	if err != nil || v2 != v {
		t.Error("CreateView not idempotent")
	}
	// Different schema conflicts.
	if _, err := e.CreateView("det", types.MustSchema(types.Column{Name: "z", Kind: types.KindInt}), []string{"z"}); err == nil {
		t.Error("schema conflict should error")
	}
}

func TestDropViewsAndFootprint(t *testing.T) {
	e := newEngine(t)
	v, _ := e.CreateView("a", viewSchema(), []string{"id"})
	rows := types.NewBatch(viewSchema())
	rows.MustAppendRow(types.NewInt(1), types.NewString("car"), types.NewString("x"))
	if _, err := v.Append(rows, nil); err != nil {
		t.Fatal(err)
	}
	if e.TotalViewFootprint() <= 0 {
		t.Error("total footprint should be positive")
	}
	if len(e.Views()) != 1 {
		t.Error("views listing")
	}
	if err := e.DropViews(); err != nil {
		t.Fatal(err)
	}
	if len(e.Views()) != 0 || e.View("a") != nil {
		t.Error("views not dropped")
	}
	// Recreate after drop starts empty.
	v2, _ := e.CreateView("a", viewSchema(), []string{"id"})
	if v2.Rows() != 0 {
		t.Error("dropped view retained rows")
	}
}

func TestSanitize(t *testing.T) {
	if got := sanitize("FasterRCNN(frame)/v1"); got != "fasterrcnn_frame__v1" {
		t.Errorf("sanitize = %q", got)
	}
}
