// Self-healing view storage: corruption quarantine, full-log
// verification (scrub) and generational compaction.
//
// Materialized views are *derived* data — every row is recomputable
// from the source video plus the UDF — so corruption is treated as a
// cache partial-miss, not data loss. The pipeline has three stages:
//
//  1. Quarantine. Replay salvages the valid prefix and every
//     checksum-valid suffix around a corrupt record (view.go), records
//     the lost byte ranges here, and keeps serving salvaged rows. The
//     quarantine manifest ("<view>.quar") persists the finding.
//  2. Symbolic repair. The survived key ranges constrain the UDF
//     manager's aggregated predicate, so the optimizer's DIFF residual
//     re-plans exactly the missing rows; the executor's per-key
//     probe-or-evaluate already recomputes any missing key on demand.
//     (Driven from the eva layer; storage only reports the ranges.)
//  3. Scrub + compact. Verify re-hashes the whole log from disk —
//     including inside the clean sidecar's trusted prefix, whose fast
//     path is blind to bitrot by design — and Compact rewrites a holed
//     or repaired log into a fresh generation, committed by an atomic
//     rename only after the new generation's checksums re-verify.
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"sort"

	"eva/internal/faults"
	"eva/internal/types"
	"eva/internal/xxhash"
)

// errHeaderCorrupt signals that the log's header is unreadable: no
// record can be attributed to a schema, so the generation is a total
// loss and the caller salvages by starting a fresh log.
var errHeaderCorrupt = errors.New("storage: view header corrupt")

// LostRange is one quarantined byte range [Lo, Hi) of a view log whose
// records failed their checksums and were salvaged around.
type LostRange struct {
	Lo, Hi int64
}

// Quarantine records what corruption salvage lost and kept. It is
// immutable once published; readers get a copy.
type Quarantine struct {
	// Ranges are the lost byte ranges, ascending and non-overlapping.
	Ranges []LostRange
	// LostBytes is the total quarantined byte count.
	LostBytes int64
	// SalvagedRows and SalvagedKeys count the rows and processed keys
	// recovered around the holes.
	SalvagedRows int
	SalvagedKeys int
}

// clone returns a deep copy safe to hand outside the view lock.
func (q *Quarantine) clone() *Quarantine {
	if q == nil {
		return nil
	}
	c := *q
	c.Ranges = append([]LostRange(nil), q.Ranges...)
	return &c
}

// quarPath returns the quarantine-manifest path for a view log path.
func quarPath(path string) string { return path + ".quar" }

// compactPath returns the next-generation scratch path for a view log
// path. A file here is never authoritative: the rename onto the log
// path is compaction's commit point, so openView discards leftovers.
func compactPath(path string) string { return path + ".compact" }

// Quarantine manifest ("<view>.quar"): magic, version, range count,
// the lost ranges, and a trailing checksum. The manifest is a durable
// record of a detection — the salvage scan re-derives the same ranges
// from the log bytes, so a missing or stale manifest costs reporting,
// never correctness.
const (
	quarMagic   = 0x45564151 // "EVAQ"
	quarVersion = 1
)

// writeQuarManifest persists the quarantine (atomically: tmp +
// rename). Best-effort, mirroring the clean sidecar.
func writeQuarManifest(path string, q *Quarantine) {
	if q == nil || len(q.Ranges) == 0 {
		_ = os.Remove(quarPath(path))
		return
	}
	buf := binary.LittleEndian.AppendUint32(nil, quarMagic)
	buf = append(buf, quarVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(q.Ranges)))
	for _, r := range q.Ranges {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(r.Lo))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(r.Hi))
	}
	buf = binary.LittleEndian.AppendUint64(buf, xxhash.Sum64(buf, 0))
	tmp := quarPath(path) + ".tmp"
	if os.WriteFile(tmp, buf, 0o644) == nil {
		_ = os.Rename(tmp, quarPath(path))
	}
}

// readQuarManifest loads the persisted quarantine ranges, or nil when
// there is no usable manifest.
func readQuarManifest(path string) []LostRange {
	data, err := os.ReadFile(quarPath(path))
	if err != nil || len(data) < 4+1+4+8 {
		return nil
	}
	if binary.LittleEndian.Uint32(data) != quarMagic || data[4] != quarVersion {
		return nil
	}
	body, sum := data[:len(data)-8], binary.LittleEndian.Uint64(data[len(data)-8:])
	if xxhash.Sum64(body, 0) != sum {
		return nil
	}
	n := int(binary.LittleEndian.Uint32(data[5:]))
	if n < 0 || 9+16*n != len(body) {
		return nil
	}
	out := make([]LostRange, 0, n)
	for i := 0; i < n; i++ {
		off := 9 + 16*i
		out = append(out, LostRange{
			Lo: int64(binary.LittleEndian.Uint64(data[off:])),
			Hi: int64(binary.LittleEndian.Uint64(data[off+8:])),
		})
	}
	return out
}

// adoptHolesLocked promotes the holes found by the last replay into
// the view's quarantine (or clears it when the scan found none) and
// persists the manifest. Callers hold mu (or run pre-publish in
// openView).
func (v *View) adoptHolesLocked() {
	if len(v.holes) == 0 {
		v.quar = nil
		_ = os.Remove(quarPath(v.path))
		v.budget.Drop(quarPath(v.path))
		return
	}
	q := &Quarantine{
		Ranges:       append([]LostRange(nil), v.holes...),
		SalvagedRows: v.batch.Len(),
		SalvagedKeys: len(v.processed),
	}
	for _, r := range q.Ranges {
		q.LostBytes += r.Hi - r.Lo
	}
	v.quar = q
	v.holes = nil
	writeQuarManifest(v.path, q)
	// Manifest layout: magic+version+count, 16 bytes per range, and the
	// trailing checksum. Charged exactly, never denied (best-effort
	// sidecar, like the clean-prefix one).
	v.budget.Set(quarPath(v.path), int64(4+1+4+16*len(q.Ranges)+8))
}

// trustedBoundLocked is the byte length of the log prefix the clean
// sidecar may vouch for: the whole verified footprint, or only up to
// the first quarantined hole. Callers hold mu (or run pre-publish).
func (v *View) trustedBoundLocked() int64 {
	if v.quar != nil && len(v.quar.Ranges) > 0 && v.quar.Ranges[0].Lo < v.footprint {
		return v.quar.Ranges[0].Lo
	}
	return v.footprint
}

// Quarantine returns a copy of the view's corruption record, or nil
// when the log is whole.
func (v *View) Quarantine() *Quarantine {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.quar.clone()
}

// IDRange is a closed range [Lo, Hi] of integer id-key values.
type IDRange struct {
	Lo, Hi int64
}

// SurvivedIDRanges returns the merged closed ranges of the "id" key
// column values present in the processed-key set — the survival
// predicate corruption salvage can still vouch for. ok is false when
// the view has no integer "id" key column (no id-granular survival
// claim can be made; callers should retract coverage entirely).
func (v *View) SurvivedIDRanges() (ranges []IDRange, ok bool) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	idPos := -1
	for i, kc := range v.keyCols {
		if kc == "id" {
			idPos = i
		}
	}
	if idPos < 0 {
		return nil, false
	}
	ids := make([]int64, 0, len(v.processed))
	for k := range v.processed {
		b := []byte(k)
		var d types.Datum
		for c := 0; c <= idPos; c++ {
			var n int
			var err error
			d, n, err = types.DecodeDatum(b)
			if err != nil {
				return nil, false
			}
			b = b[n:]
		}
		if d.Kind() != types.KindInt {
			return nil, false
		}
		ids = append(ids, d.Int())
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if n := len(ranges); n > 0 && id <= ranges[n-1].Hi+1 {
			if id > ranges[n-1].Hi {
				ranges[n-1].Hi = id
			}
			continue
		}
		ranges = append(ranges, IDRange{Lo: id, Hi: id})
	}
	return ranges, true
}

// ScrubResult reports one Verify pass over a view.
type ScrubResult struct {
	// Name is the view name.
	Name string
	// Clean is true when the full re-hash verified the log end to end
	// and found nothing new.
	Clean bool
	// FoundCorruption is true when this pass changed the view's state:
	// new holes were quarantined, a torn tail was truncated, or rows
	// the fast path had admitted turned out corrupt.
	FoundCorruption bool
	// Quar is the view's quarantine after the pass (nil when whole).
	Quar *Quarantine
	// RecordsVerified counts the records whose checksums this pass
	// recomputed (every surviving record — the scrub ignores the
	// sidecar's trusted prefix).
	RecordsVerified int
	// TornBytes is the size of the torn tail this pass truncated
	// (external truncation mid-record; 0 normally).
	TornBytes int64
	// RowsDropped is how many in-memory rows the pass removed because
	// their backing record failed its checksum (the clean-sidecar
	// blind-spot case: rows admitted by the trusted fast path whose
	// bytes rotted after the sidecar was written).
	RowsDropped int
	// Err is the pass's error, if it could not complete (set by
	// VerifyViews, which aggregates per-view failures).
	Err string
}

// Verify is the scrubber's full re-verification of the view log: it
// re-reads the file and re-hashes every record, deliberately ignoring
// the clean sidecar — closing the fast path's blind spot, where bitrot
// inside the trusted prefix is invisible to reopen. On corruption the
// view's in-memory state is atomically replaced with the salvaged
// state (corrupt rows are dropped, never served again), the lost
// ranges are quarantined, and the sidecar is re-bounded so the next
// open cannot trust the holes. The view stays open and serving
// throughout; Append/Scan callers simply observe the healed state.
func (v *View) Verify() (ScrubResult, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	res := ScrubResult{Name: v.name}
	if v.file == nil {
		return res, fmt.Errorf("storage: view %s: closed", v.name)
	}
	if v.dead {
		return res, fmt.Errorf("storage: view %s: unusable after simulated crash", v.name)
	}
	if err := v.inj.Check(faults.SiteViewScrub(v.name)); err != nil {
		if faults.IsCrash(err) {
			v.dead = true
		}
		return res, fmt.Errorf("storage: view %s: scrub: %w", v.name, err)
	}
	data, err := os.ReadFile(v.path)
	if err != nil {
		return res, fmt.Errorf("storage: view %s: scrub: %w", v.name, err)
	}

	// Rebuild into a shadow so a hard replay error leaves the live
	// state untouched.
	shadow := v.shadowLocked()
	valid, rerr := shadow.replay(data, 0)
	if errors.Is(rerr, errHeaderCorrupt) {
		return res, v.resetCorruptHeaderLocked(int64(len(data)), &res)
	}
	if rerr != nil {
		return res, fmt.Errorf("storage: view %s: scrub: %w", v.name, rerr)
	}
	res.RecordsVerified = shadow.openVerified

	// Unchanged means the scan found exactly the state the view already
	// knows: the same holes it has already quarantined (or none), every
	// byte accounted for, and the same index. Known holes are not a new
	// detection — the pass only re-confirms the standing quarantine.
	prevRows, prevKeys := v.batch.Len(), len(v.processed)
	unchanged := sameRanges(shadow.holes, v.quar) && int64(valid) == int64(len(data)) &&
		shadow.batch.Len() == prevRows && len(shadow.processed) == prevKeys
	if unchanged {
		res.Clean = v.quar == nil
		res.Quar = v.quar.clone()
		v.writeCleanSidecarLocked()
		return res, nil
	}

	// Adopt the salvaged state. Disk always runs ahead of memory
	// (appends are disk-before-memory), so the shadow is the live
	// state minus rows whose records failed the re-hash.
	res.FoundCorruption = true
	if dropped := prevRows - shadow.batch.Len(); dropped > 0 {
		res.RowsDropped = dropped
	}
	v.batch, v.rowsByKey, v.processed = shadow.batch, shadow.rowsByKey, shadow.processed
	v.openTrusted, v.openVerified = 0, shadow.openVerified
	v.holes = shadow.holes
	if int64(valid) < int64(len(data)) {
		// A torn tail from external truncation or tail corruption:
		// drop it so the log ends on a record boundary again.
		if err := v.file.Truncate(int64(valid)); err != nil {
			v.dead = true
			return res, fmt.Errorf("storage: view %s: scrub truncate: %w", v.name, err)
		}
		res.TornBytes = int64(len(data) - valid)
		v.recovered += res.TornBytes
	}
	v.footprint = int64(valid)
	v.adoptHolesLocked()
	_ = writeCleanSidecar(v.path, data, v.trustedBoundLocked())
	res.Quar = v.quar.clone()
	return res, nil
}

// sameRanges reports whether the freshly scanned holes match the
// standing quarantine exactly (nil quarantine ↔ no holes).
func sameRanges(holes []LostRange, q *Quarantine) bool {
	var prev []LostRange
	if q != nil {
		prev = q.Ranges
	}
	if len(holes) != len(prev) {
		return false
	}
	for i, r := range holes {
		if r != prev[i] {
			return false
		}
	}
	return true
}

// shadowLocked builds an unpublished replica of the view's immutable
// identity with fresh replay state, for rebuilding off to the side.
// Callers hold mu.
func (v *View) shadowLocked() *View {
	s := &View{
		name:    v.name,
		path:    v.path,
		schema:  v.schema,
		keyCols: v.keyCols,
		keyIdx:  v.keyIdx,
	}
	s.resetReplayState()
	return s
}

// resetCorruptHeaderLocked is Verify's total-loss path: the header
// rotted under a live view, so every record is unattributable. The log
// restarts empty with the whole old generation quarantined; the
// in-memory rows are dropped (they can no longer be re-verified
// against disk). Callers hold mu.
func (v *View) resetCorruptHeaderLocked(oldLen int64, res *ScrubResult) error {
	res.FoundCorruption = true
	res.RowsDropped = v.batch.Len()
	v.batch = types.NewBatch(v.schema.Clone())
	v.rowsByKey = map[string][]int{}
	v.processed = map[string]struct{}{}
	v.openTrusted, v.openVerified = 0, 0
	v.holes = []LostRange{{Lo: 0, Hi: oldLen}}
	if err := v.file.Truncate(0); err != nil {
		v.dead = true
		return fmt.Errorf("storage: view %s: scrub reset corrupt header: %w", v.name, err)
	}
	_ = os.Remove(cleanPath(v.path))
	hdr := v.encodeHeader()
	if _, err := v.file.Write(hdr); err != nil {
		v.dead = true
		return fmt.Errorf("storage: view %s: scrub rewrite header: %w", v.name, err)
	}
	v.footprint = int64(len(hdr))
	v.adoptHolesLocked()
	res.Quar = v.quar.clone()
	return nil
}

// compactChunkRows bounds the rows per record in a compacted
// generation, so salvage granularity (one record lost per flipped bit)
// stays bounded regardless of view size.
const compactChunkRows = 512

// CompactResult reports one generational compaction.
type CompactResult struct {
	Name        string
	BytesBefore int64
	BytesAfter  int64
	// RangesCleared is how many quarantined ranges the rewrite healed.
	RangesCleared int
}

// Compact rewrites the view log into a fresh generation: the salvaged
// in-memory state is re-encoded (holes and superseded records left
// behind), written to a scratch file, fsynced, and re-read so every
// checksum — including the trailing one — verifies against the
// durable bytes. Only then does an atomic rename commit the new
// generation; a crash at any earlier point leaves the old generation
// authoritative plus a scratch file the next open discards. Compaction
// clears the quarantine: the new generation has no holes, and any rows
// still missing are the UDF manager's residual to recompute, not the
// log's.
func (v *View) Compact() (CompactResult, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	res := CompactResult{Name: v.name}
	if v.file == nil {
		return res, fmt.Errorf("storage: view %s: closed", v.name)
	}
	if v.dead {
		return res, fmt.Errorf("storage: view %s: unusable after simulated crash", v.name)
	}
	res.BytesBefore = v.footprint
	if v.quar != nil {
		res.RangesCleared = len(v.quar.Ranges)
	}

	buf := v.encodeCompactLocked()
	tmp := compactPath(v.path)

	// The compaction site models a kill or failure anywhere in the
	// rewrite; Crash leaves a partial scratch file behind, exactly
	// like a killed process would. The disk:full shadow site draws
	// first — a full disk fails the scratch write before anything
	// else can. The scratch itself is never budget-gated: compaction
	// *frees* space, and denying its transient overshoot would wedge
	// the reclaim ladder's cheapest tier.
	allow := len(buf)
	var injected error
	dfSite := faults.SiteDiskFull(faults.SiteViewCompact(v.name))
	if short, ferr := v.inj.CheckWrite(dfSite, uint64(v.footprint), len(buf)); ferr != nil {
		allow, injected = short, &DiskFullError{Site: dfSite, Need: int64(len(buf)), Injected: ferr}
	} else if short, ferr := v.inj.CheckWrite(faults.SiteViewCompact(v.name), uint64(v.footprint), len(buf)); ferr != nil {
		allow, injected = short, ferr
	}
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return res, fmt.Errorf("storage: view %s: compact: %w", v.name, err)
	}
	var wrote int
	var werr error
	if allow > 0 {
		wrote, werr = f.Write(buf[:allow])
	}
	if injected != nil && faults.IsCrash(injected) {
		_ = f.Close()
		v.dead = true
		return res, fmt.Errorf("storage: view %s: compact: %w", v.name, injected)
	}
	if injected != nil || werr != nil || wrote != len(buf) {
		_ = f.Close()
		_ = os.Remove(tmp)
		return res, fmt.Errorf("storage: view %s: compact: %w", v.name,
			firstErr(injected, werr, fmt.Errorf("short write (%d of %d bytes)", wrote, len(buf))))
	}
	// The scratch generation is on disk now: account it until the
	// rename folds it into the log's own charge (or a failure deletes
	// it).
	v.budget.Set(tmp, int64(len(buf)))
	if err := f.Sync(); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		v.budget.Drop(tmp)
		return res, fmt.Errorf("storage: view %s: compact fsync: %w", v.name, err)
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp)
		v.budget.Drop(tmp)
		return res, fmt.Errorf("storage: view %s: compact close: %w", v.name, err)
	}
	// Re-read the durable bytes and verify every checksum before the
	// old generation is released. The shadow replay also proves the
	// new generation rebuilds the exact salvaged index.
	nd, err := os.ReadFile(tmp)
	if err == nil && len(nd) != len(buf) {
		err = fmt.Errorf("scratch file is %d bytes, want %d", len(nd), len(buf))
	}
	if err == nil {
		shadow := v.shadowLocked()
		valid, rerr := shadow.replay(nd, 0)
		switch {
		case rerr != nil:
			err = rerr
		case valid != len(nd) || len(shadow.holes) > 0:
			err = fmt.Errorf("new generation failed verification")
		case shadow.batch.Len() != v.batch.Len() || len(shadow.processed) != len(v.processed):
			err = fmt.Errorf("new generation rebuilt %d rows/%d keys, want %d/%d",
				shadow.batch.Len(), len(shadow.processed), v.batch.Len(), len(v.processed))
		}
	}
	if err != nil {
		_ = os.Remove(tmp)
		v.budget.Drop(tmp)
		return res, fmt.Errorf("storage: view %s: compact verify: %w", v.name, err)
	}

	// Commit point: swap generations under the view's append handle.
	if err := v.file.Close(); err != nil {
		v.file = nil
		return res, fmt.Errorf("storage: view %s: compact: close old generation: %w", v.name, err)
	}
	v.file = nil
	if err := os.Rename(tmp, v.path); err != nil {
		// The rename failed; the old generation is still in place.
		f, rerr := os.OpenFile(v.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if rerr == nil {
			v.file = f
		}
		return res, fmt.Errorf("storage: view %s: compact commit: %w", v.name, err)
	}
	nf, err := os.OpenFile(v.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return res, fmt.Errorf("storage: view %s: compact reopen: %w", v.name, err)
	}
	v.file = nf
	v.footprint = int64(len(buf))
	v.quar = nil
	_ = os.Remove(quarPath(v.path))
	// Rename-time accounting: the scratch charge becomes the log's, the
	// healed quarantine manifest is gone, and the refreshed sidecar is
	// re-charged at its fixed size.
	v.budget.Drop(tmp)
	v.budget.Set(v.path, v.footprint)
	v.budget.Drop(quarPath(v.path))
	if writeCleanSidecar(v.path, buf, v.footprint) == nil {
		v.budget.Set(cleanPath(v.path), cleanLen)
	}
	res.BytesAfter = v.footprint
	return res, nil
}

// encodeCompactLocked serializes the in-memory state as a fresh
// generation: header, row records in batch order, then the zero-row
// processed keys in sorted order — fully deterministic, so compacting
// identical states yields identical bytes. Callers hold mu.
func (v *View) encodeCompactLocked() []byte {
	buf := v.encodeHeader()
	for base := 0; base < v.batch.Len(); base += compactChunkRows {
		n := v.batch.Len() - base
		if n > compactChunkRows {
			n = compactChunkRows
		}
		var payload []byte
		for r := base; r < base+n; r++ {
			for _, d := range v.batch.Row(r) {
				payload = d.AppendBinary(payload)
			}
		}
		buf = sealRecord(buf, recRows, n, payload)
	}
	var zero []string
	for k := range v.processed {
		if len(v.rowsByKey[k]) == 0 {
			zero = append(zero, k)
		}
	}
	sort.Strings(zero)
	for base := 0; base < len(zero); base += compactChunkRows {
		n := len(zero) - base
		if n > compactChunkRows {
			n = compactChunkRows
		}
		var payload []byte
		for _, k := range zero[base : base+n] {
			payload = append(payload, k...)
		}
		buf = sealRecord(buf, recKeys, n, payload)
	}
	return buf
}
