package storage

import (
	"os"
	"testing"

	"eva/internal/faults"
	"eva/internal/types"
)

// TestViewCleanSidecarFastPath: a clean close writes the sidecar, and
// the next open accepts every record from the trusted prefix without
// re-verifying checksums; appending after that reopen and reopening
// again verifies only the tail records.
func TestViewCleanSidecarFastPath(t *testing.T) {
	dir := t.TempDir()
	e, _ := Open(dir)
	v, err := e.CreateView("det", viewSchema(), []string{"id"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < crashAppends; i++ {
		crashAppend(t, v, i)
	}
	golden := snapshotView(v)
	if trusted, _ := v.OpenStats(); trusted != 0 {
		t.Fatalf("first open trusted %d records, want 0", trusted)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen after a clean close: everything trusted, nothing verified.
	e2, _ := Open(dir)
	v2, err := e2.CreateView("det", viewSchema(), []string{"id"})
	if err != nil {
		t.Fatal(err)
	}
	if got := snapshotView(v2); got.rows != golden.rows || got.processed != golden.processed || string(got.data) != string(golden.data) {
		t.Fatalf("fast-path reopen state mismatch: %+v vs %+v", got.rows, golden.rows)
	}
	trusted, verified := v2.OpenStats()
	// crashAppends appends × 2 records each (rows + keys).
	if trusted != 2*crashAppends || verified != 0 {
		t.Fatalf("clean reopen: trusted=%d verified=%d, want %d/0", trusted, verified, 2*crashAppends)
	}

	// Append two more batches (the sidecar on disk is now stale-low)
	// and close the view's file handle the hard way — no clean close —
	// by reopening from a third engine: only the tail past the old
	// sidecar must be verified.
	crashAppend(t, v2, crashAppends)
	crashAppend(t, v2, crashAppends+1)
	e3, _ := Open(dir)
	v3, err := e3.CreateView("det", viewSchema(), []string{"id"})
	if err != nil {
		t.Fatal(err)
	}
	trusted, verified = v3.OpenStats()
	if trusted != 2*crashAppends || verified != 4 {
		t.Fatalf("tail reopen: trusted=%d verified=%d, want %d/4", trusted, verified, 2*crashAppends)
	}
	if v3.Rows() != v2.Rows() {
		t.Fatalf("tail reopen rows = %d, want %d", v3.Rows(), v2.Rows())
	}
	// That open refreshed the sidecar, so a fourth open trusts it all.
	e4, _ := Open(dir)
	v4, err := e4.CreateView("det", viewSchema(), []string{"id"})
	if err != nil {
		t.Fatal(err)
	}
	trusted, verified = v4.OpenStats()
	if trusted != 2*crashAppends+4 || verified != 0 {
		t.Fatalf("refreshed reopen: trusted=%d verified=%d, want %d/0", trusted, verified, 2*crashAppends+4)
	}
}

// TestViewSidecarCrashTailVerified: after a simulated crash the dead
// view writes no sidecar, but the sidecar from the *previous* clean
// open still bounds recovery cost — reopening verifies only the bytes
// past it, truncates the torn tail, and converges after re-append.
func TestViewSidecarCrashTailVerified(t *testing.T) {
	dir := t.TempDir()
	e, _ := Open(dir)
	v, err := e.CreateView("det", viewSchema(), []string{"id"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < crashAppends; i++ {
		crashAppend(t, v, i)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	e2, _ := Open(dir)
	inj := faults.New(1)
	inj.Rule(faults.SiteViewWrite("det"), faults.Rule{Kind: faults.Crash, At: []int{1}, ShortWrite: 7})
	e2.SetInjector(inj)
	v2, err := e2.CreateView("det", viewSchema(), []string{"id"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v2.Append(mkRows(100), nil); err == nil {
		t.Fatal("crash append unexpectedly succeeded")
	}
	// The dead view must not advertise a clean prefix covering its
	// torn tail: close the engine (dead views skip the sidecar write).
	if err := e2.Close(); err != nil {
		t.Fatal(err)
	}

	e3, _ := Open(dir)
	v3, err := e3.CreateView("det", viewSchema(), []string{"id"})
	if err != nil {
		t.Fatal(err)
	}
	if v3.RecoveredBytes() == 0 {
		t.Fatal("crash left no torn tail to recover")
	}
	trusted, verified := v3.OpenStats()
	if trusted != 2*crashAppends {
		t.Fatalf("post-crash reopen trusted %d records, want %d", trusted, 2*crashAppends)
	}
	if verified != 0 {
		t.Fatalf("post-crash reopen verified %d records, want 0 (tail was all torn)", verified)
	}
	if n, err := v3.Append(mkRows(100), nil); err != nil || n != 1 {
		t.Fatalf("re-append after recovery: n=%d err=%v", n, err)
	}
}

// TestViewSidecarStaleFallsBack: a sidecar that no longer matches the
// file (external truncation) is ignored and the open falls back to the
// full verifying scan instead of trusting garbage.
func TestViewSidecarStaleFallsBack(t *testing.T) {
	dir := t.TempDir()
	e, _ := Open(dir)
	v, err := e.CreateView("det", viewSchema(), []string{"id"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < crashAppends; i++ {
		crashAppend(t, v, i)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	// Truncate the log mid-record behind the sidecar's back.
	data, err := os.ReadFile(v.path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(v.path, data[:len(data)-11], 0o644); err != nil {
		t.Fatal(err)
	}

	e2, _ := Open(dir)
	v2, err := e2.CreateView("det", viewSchema(), []string{"id"})
	if err != nil {
		t.Fatalf("stale sidecar must fall back, not fail: %v", err)
	}
	trusted, _ := v2.OpenStats()
	if trusted != 0 {
		t.Fatalf("stale sidecar still trusted %d records", trusted)
	}
	// The truncation cut into the final (processed-keys) record, so
	// the fallback scan recovers one key fewer than the clean state.
	if v2.ProcessedCount() >= v.ProcessedCount() {
		t.Fatalf("truncated log kept %d keys, want fewer than %d", v2.ProcessedCount(), v.ProcessedCount())
	}

	// A corrupted record *inside* a structurally-matching sidecar
	// prefix must also fall back (errTrustedCorrupt), not decode
	// garbage: blow up the first record's payload-length field while
	// keeping the file tail (which the sidecar checks) intact.
	if err := e2.Close(); err != nil {
		t.Fatal(err)
	}
	dir2 := t.TempDir()
	e3, _ := Open(dir2)
	v3, err := e3.CreateView("det", viewSchema(), []string{"id"})
	if err != nil {
		t.Fatal(err)
	}
	crashAppend(t, v3, 0)
	crashAppend(t, v3, 1)
	if err := e3.Close(); err != nil {
		t.Fatal(err)
	}
	data, err = os.ReadFile(v3.path)
	if err != nil {
		t.Fatal(err)
	}
	hdrLen := len(v3.encodeHeader())
	data[hdrLen+5] ^= 0xff // first record's payloadLen
	if err := os.WriteFile(v3.path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	e4, _ := Open(dir2)
	v4, err := e4.CreateView("det", viewSchema(), []string{"id"})
	if err != nil {
		t.Fatalf("corrupt trusted prefix must fall back, not fail: %v", err)
	}
	trusted, _ = v4.OpenStats()
	if trusted != 0 {
		t.Fatalf("corrupt prefix still trusted %d records", trusted)
	}
	// The fallback scan salvages around the corrupt first record: the
	// second append's rows and both key records survive, and the lost
	// range is quarantined.
	if v4.Rows() != 3 || v4.RecoveredBytes() != 0 {
		t.Fatalf("corrupt prefix: rows=%d recovered=%d, want 3 salvaged rows and no torn tail", v4.Rows(), v4.RecoveredBytes())
	}
	q := v4.Quarantine()
	if q == nil || len(q.Ranges) != 1 {
		t.Fatalf("corrupt prefix quarantine = %+v, want one lost range", q)
	}
}

// mkRows builds a one-row batch keyed by id.
func mkRows(id int64) *types.Batch {
	rows := types.NewBatch(viewSchema())
	rows.MustAppendRow(types.NewInt(id), types.NewString("car"), types.NewString("x"))
	return rows
}
