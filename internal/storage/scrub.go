package storage

import (
	"sort"
	"sync"
	"time"

	"eva/internal/server"
)

// VerifyViews runs one full scrub pass: every open view is re-read
// from disk and every record re-hashed (Verify), in sorted name order
// for determinism. Per-view errors (injected scrub faults, I/O
// failures) are collected per result rather than aborting the pass —
// one sick view must not shield the others from verification.
func (e *Engine) VerifyViews() []ScrubResult {
	e.mu.Lock()
	views := make([]*View, 0, len(e.views))
	for _, v := range e.views {
		views = append(views, v)
	}
	e.mu.Unlock()
	sort.Slice(views, func(i, j int) bool { return views[i].name < views[j].name })
	out := make([]ScrubResult, 0, len(views))
	for _, v := range views {
		res, err := v.Verify()
		if err != nil {
			res.Name = v.name
			res.Err = err.Error()
		}
		out = append(out, res)
	}
	return out
}

// ScrubConfig configures the background scrubber. All time is virtual:
// Now is the system's virtual clock and Interval a virtual-time
// cadence, so scrub scheduling is deterministic and replayable like
// everything else in the engine (no wall clock anywhere).
type ScrubConfig struct {
	// Interval is the base virtual-time cadence between passes.
	Interval time.Duration
	// Now reads the virtual clock.
	Now func() time.Duration
	// Busy reports whether the serving layer is saturated; a due pass
	// observed busy degrades (cadence doubles, bounded) instead of
	// stealing cycles from queries — degrade-before-shed, scrubs are
	// never dropped outright.
	Busy func() bool
	// Pass runs one scrub pass. The caller owns locking: the eva layer
	// passes a closure that quiesces statement execution, verifies
	// every view, and hands detections to symbolic repair.
	Pass func()
}

// ScrubStats counts a scrubber's lifetime activity.
type ScrubStats struct {
	// Passes is the number of completed scrub passes.
	Passes int
	// Degraded counts due passes deferred because the system was busy.
	Degraded int
	// CompactBytesFreed totals the log bytes reclaimed by compactions
	// run on the scrub/repair pipeline's behalf (see AddFreed).
	CompactBytesFreed int64
}

// maxDegradeFactor bounds how far a busy system can stretch the scrub
// cadence: at most 8× the base interval, so scrubbing degrades under
// load but is never starved forever.
const maxDegradeFactor = 8

// Scrubber drives periodic view verification off the virtual clock.
// It owns one tracked goroutine (server.Group — shutdown can prove it
// exited) that sleeps on a channel, not a timer: the virtual clock
// only advances when queries run, so the scrubber is woken by Nudge
// after each statement, checks whether a pass is due, and otherwise
// parks. An idle system neither scrubs nor spins.
type Scrubber struct {
	cfg  ScrubConfig
	g    server.Group
	wake chan struct{}
	quit chan struct{}

	statMu sync.Mutex
	stats  ScrubStats
}

// NewScrubber starts the background scrubber. cfg.Interval must be
// positive and Now/Pass non-nil; Busy may be nil (never busy).
func NewScrubber(cfg ScrubConfig) *Scrubber {
	if cfg.Busy == nil {
		cfg.Busy = func() bool { return false }
	}
	s := &Scrubber{
		cfg:  cfg,
		wake: make(chan struct{}, 1),
		quit: make(chan struct{}),
	}
	// Anchor the first deadline before the goroutine starts so the
	// cadence is measured from construction, not from whenever the
	// scheduler first runs the loop.
	next := cfg.Now() + cfg.Interval
	s.g.Go(func() { s.loop(next) })
	return s
}

// Nudge signals the scrubber that virtual time may have advanced
// (e.g. a statement just finished). Non-blocking and cheap; redundant
// nudges coalesce in the 1-slot channel.
func (s *Scrubber) Nudge() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// Stats returns a snapshot of the scrubber's activity counters.
func (s *Scrubber) Stats() ScrubStats {
	s.statMu.Lock()
	defer s.statMu.Unlock()
	return s.stats
}

// AddFreed credits n bytes reclaimed by a compaction run on the
// scrub/repair pipeline's behalf (System.Repair compacts healed logs;
// the eva layer reports the CompactResult delta here). Nil-safe so
// callers need not special-case a disabled scrubber.
func (s *Scrubber) AddFreed(n int64) {
	if s == nil || n <= 0 {
		return
	}
	s.statMu.Lock()
	defer s.statMu.Unlock()
	s.stats.CompactBytesFreed += n
}

// Close stops the scrubber and waits for its goroutine to exit.
// Idempotent-unsafe: call exactly once (the owning System's Close
// already runs under a once).
func (s *Scrubber) Close() {
	close(s.quit)
	s.g.Wait()
}

func (s *Scrubber) loop(next time.Duration) {
	interval := s.cfg.Interval
	for {
		select {
		case <-s.quit:
			return
		case <-s.wake:
		}
		if s.cfg.Now() < next {
			continue
		}
		if s.cfg.Busy() {
			// Degrade before shedding: back the cadence off (bounded)
			// and try again; the pass is deferred, never dropped.
			if interval < maxDegradeFactor*s.cfg.Interval {
				interval *= 2
			}
			next = s.cfg.Now() + interval
			s.statMu.Lock()
			s.stats.Degraded++
			s.statMu.Unlock()
			continue
		}
		interval = s.cfg.Interval
		s.cfg.Pass()
		next = s.cfg.Now() + interval
		s.statMu.Lock()
		s.stats.Passes++
		s.statMu.Unlock()
	}
}
