package storage

import (
	"errors"
	"os"
	"testing"

	"eva/internal/faults"
	"eva/internal/types"
)

// appendDelta measures how many budget bytes one scripted append
// charges (every crashAppend writes identically shaped records).
func appendDelta(t *testing.T, e *Engine, v *View, i int) int64 {
	t.Helper()
	before := e.Budget().Stats().UsedBytes
	crashAppend(t, v, i)
	return e.Budget().Stats().UsedBytes - before
}

// TestBudgetDenialEvictsColdView: when an append does not fit the
// budget, the engine evicts the cold view (never the one being
// appended), the append retries and succeeds, and the evicted view is
// reborn empty and reusable.
func TestBudgetDenialEvictsColdView(t *testing.T) {
	dir := t.TempDir()
	e, _ := Open(dir)
	a, err := e.CreateView("cold", viewSchema(), []string{"id"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		crashAppend(t, a, i)
	}
	b, err := e.CreateView("hot", viewSchema(), []string{"id"})
	if err != nil {
		t.Fatal(err)
	}
	// Calibrate: account-only budget, one probe append on the hot view.
	e.SetBudget(NewDiskBudget(0))
	delta := appendDelta(t, e, b, 0)
	if delta <= 0 {
		t.Fatalf("append charged %d bytes", delta)
	}
	// Real budget: the next identical append must not fit without
	// reclaiming, and evicting the cold view frees more than enough.
	used := e.Budget().Stats().UsedBytes
	e.SetBudget(NewDiskBudget(used + delta - 1))
	var evicted []string
	e.SetEvictPolicy(nil, func(name string) { evicted = append(evicted, name) })

	crashAppend(t, b, 1) // fatals on error

	st := e.Budget().Stats()
	if st.Denials < 1 || st.Evictions != 1 || st.EvictReclaimedBytes <= 0 {
		t.Fatalf("budget stats after forced eviction: %+v", st)
	}
	if len(evicted) != 1 || evicted[0] != "cold" {
		t.Fatalf("evicted %v, want [cold]", evicted)
	}
	if a.Rows() != 0 || a.ProcessedCount() != 0 {
		t.Fatalf("evicted view still serves %d rows / %d keys", a.Rows(), a.ProcessedCount())
	}
	if b.Rows() != 6 {
		t.Fatalf("hot view has %d rows, want 6", b.Rows())
	}
	if _, err := os.Stat(tombPath(a.path)); !os.IsNotExist(err) {
		t.Fatalf("tombstone survived a completed eviction: %v", err)
	}

	// The reborn view accepts appends and they persist across reopen.
	crashAppend(t, a, 0)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	e2, _ := Open(dir)
	a2, err := e2.CreateView("cold", viewSchema(), []string{"id"})
	if err != nil {
		t.Fatal(err)
	}
	if a2.Rows() != 3 {
		t.Fatalf("reborn view reopened with %d rows, want 3", a2.Rows())
	}
}

// TestReclaimCompactsQuarantinedBeforeEvicting: the ladder's first
// tier reclaims a quarantined log's dead ranges by compaction; when
// that satisfies the need, no view is evicted.
func TestReclaimCompactsQuarantinedBeforeEvicting(t *testing.T) {
	dir := t.TempDir()
	e, _ := Open(dir)
	v, _ := e.CreateView("det", viewSchema(), []string{"id"})
	for i := 0; i < 4; i++ {
		crashAppend(t, v, i)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	corruptRecord(t, v.path, 2)
	if err := os.Remove(cleanPath(v.path)); err != nil {
		t.Fatal(err)
	}

	e2, _ := Open(dir)
	v2, err := e2.CreateView("det", viewSchema(), []string{"id"})
	if err != nil {
		t.Fatal(err)
	}
	if v2.Quarantine() == nil {
		t.Fatal("corrupted log did not quarantine")
	}
	e2.SetBudget(NewDiskBudget(1 << 30))
	rowsBefore := v2.Rows()
	freed := e2.Reclaim(1, "")
	if freed <= 0 {
		t.Fatalf("Reclaim freed %d, want > 0 from compaction", freed)
	}
	st := e2.Budget().Stats()
	if st.CompactReclaimedBytes != freed || st.Evictions != 0 {
		t.Fatalf("stats after tier-1 reclaim: %+v (freed %d)", st, freed)
	}
	if v2.Rows() != rowsBefore {
		t.Fatalf("compaction changed rows %d -> %d", rowsBefore, v2.Rows())
	}
	if v2.Quarantine() != nil {
		t.Fatal("compaction left the quarantine standing")
	}
}

// TestEvictKillPoints drives a crash into every eviction stage and
// proves reopen sees either the intact view (pre-tombstone) or a clean
// slate (post-tombstone) — never a zombie — and that re-running the
// append script converges back to the golden state.
func TestEvictKillPoints(t *testing.T) {
	for kp := 1; kp <= 4; kp++ {
		for _, kind := range []faults.Kind{faults.Crash, faults.Permanent} {
			dir := t.TempDir()
			e, _ := Open(dir)
			inj := faults.New(7)
			inj.Rule(faults.SiteViewEvict("det"), faults.Rule{Kind: kind, At: []int{kp}})
			e.SetInjector(inj)
			v, err := e.CreateView("det", viewSchema(), []string{"id"})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < crashAppends; i++ {
				crashAppend(t, v, i)
			}
			golden := snapshotView(v)

			if freed := e.Reclaim(1<<30, ""); freed != 0 {
				t.Fatalf("kp=%d kind=%v: interrupted evict reported %d bytes freed", kp, kind, freed)
			}
			// From the tombstone on (and on any crash), the fault kills the
			// handle: disk may already be ahead of memory. A non-crash fault
			// at kp=1 aborts before anything happened, leaving the view live.
			if kp > 1 || kind == faults.Crash {
				if _, err := v.Append(nil, [][]types.Datum{{types.NewInt(99)}}); err == nil {
					t.Fatalf("kp=%d kind=%v: interrupted view accepted an append", kp, kind)
				}
			}

			e2, _ := Open(dir)
			v2, err := e2.CreateView("det", viewSchema(), []string{"id"})
			if err != nil {
				t.Fatalf("kp=%d kind=%v: reopen failed: %v", kp, kind, err)
			}
			got := snapshotView(v2)
			if kp == 1 {
				// Pre-tombstone: nothing happened, the view is whole.
				if got.rows != golden.rows || got.processed != golden.processed {
					t.Fatalf("kp=1 kind=%v: view damaged by aborted evict: %+v vs %+v", kind, got, golden)
				}
			} else {
				// Post-tombstone: the eviction committed; reopen must
				// leave a clean slate.
				if got.rows != 0 || got.processed != 0 {
					t.Fatalf("kp=%d kind=%v: zombie view after reopen: rows=%d keys=%d", kp, kind, got.rows, got.processed)
				}
			}
			if _, err := os.Stat(tombPath(v2.path)); !os.IsNotExist(err) {
				t.Fatalf("kp=%d kind=%v: tombstone survived reopen", kp, kind)
			}
			// Idempotent re-materialization converges to golden.
			for i := 0; i < crashAppends; i++ {
				crashAppend(t, v2, i)
			}
			if final := snapshotView(v2); final.rows != golden.rows || final.processed != golden.processed {
				t.Fatalf("kp=%d kind=%v: re-run diverged: %+v vs %+v", kp, kind, final, golden)
			}
		}
	}
}

// TestDiskFullTransientRetriesInPlace: an injected transient disk:full
// with nothing evictable still drains through the evict-retry loop's
// redraw — the append succeeds on the next attempt.
func TestDiskFullTransientRetriesInPlace(t *testing.T) {
	e, _ := Open(t.TempDir())
	inj := faults.New(3)
	site := faults.SiteDiskFull(faults.SiteViewWrite("det"))
	inj.Rule(site, faults.Rule{Kind: faults.Transient, At: []int{1}})
	e.SetInjector(inj)
	v, err := e.CreateView("det", viewSchema(), []string{"id"})
	if err != nil {
		t.Fatal(err)
	}
	crashAppend(t, v, 0) // fatals if the retry did not drain the fault
	if v.Rows() != 3 {
		t.Fatalf("rows = %d, want 3", v.Rows())
	}
	if calls := inj.Calls(site); calls != 2 {
		t.Fatalf("disk:full site consulted %d times, want 2 (fault + retry)", calls)
	}
}

// TestDiskBudgetTerminalWhenNothingEvictable: with only the appending
// view open, a budget shortfall has nothing to reclaim and surfaces
// the typed ErrDiskBudget; the view itself stays usable and unchanged.
func TestDiskBudgetTerminalWhenNothingEvictable(t *testing.T) {
	e, _ := Open(t.TempDir())
	v, err := e.CreateView("only", viewSchema(), []string{"id"})
	if err != nil {
		t.Fatal(err)
	}
	crashAppend(t, v, 0)
	e.SetBudget(NewDiskBudget(0)) // account-only: measure the footprint
	used := e.Budget().Stats().UsedBytes
	e.SetBudget(NewDiskBudget(used)) // exactly full
	rows := types.NewBatch(viewSchema())
	rows.MustAppendRow(types.NewInt(50), types.NewString("car"), types.NewString("x"))
	_, err = v.Append(rows, [][]types.Datum{{types.NewInt(50)}})
	if !errors.Is(err, ErrDiskBudget) {
		t.Fatalf("err = %v, want ErrDiskBudget", err)
	}
	// The terminal wrap flattens the DiskFullError to text so nothing
	// upstream re-enters an evict-retry loop on it.
	if IsDiskFull(err) {
		t.Fatalf("terminal error still matches DiskFullError: %v", err)
	}
	if v.Rows() != 3 {
		t.Fatalf("failed append changed rows: %d", v.Rows())
	}
	// The denial wrote nothing, so the handle is alive for later
	// appends once the budget loosens.
	e.SetBudget(nil)
	crashAppend(t, v, 1)
	if v.Rows() != 6 {
		t.Fatalf("append after budget release: rows = %d, want 6", v.Rows())
	}
}

// TestReclaimOverHighWater: the background pass is a no-op under the
// high-water mark and reclaims down toward the low mark above it.
func TestReclaimOverHighWater(t *testing.T) {
	e, _ := Open(t.TempDir())
	a, _ := e.CreateView("a", viewSchema(), []string{"id"})
	b, _ := e.CreateView("b", viewSchema(), []string{"id"})
	for i := 0; i < 4; i++ {
		crashAppend(t, a, i)
		crashAppend(t, b, i)
	}
	e.SetBudget(NewDiskBudget(0))
	used := e.Budget().Stats().UsedBytes

	// Plenty of headroom: nothing to do.
	e.SetBudget(NewDiskBudget(used * 4))
	if freed := e.ReclaimOverHighWater(); freed != 0 {
		t.Fatalf("under high water freed %d", freed)
	}
	// Over 90% full: reclaim to (at most) the 70% low mark.
	limit := used + used/100 // ~99% full
	e.SetBudget(NewDiskBudget(limit))
	if freed := e.ReclaimOverHighWater(); freed <= 0 {
		t.Fatal("over high water freed nothing")
	}
	if got := e.Budget().Stats().UsedBytes; got > limit/10*7 {
		t.Fatalf("used %d after pass, want <= %d", got, limit/10*7)
	}
}

// TestWatermarkLogRetention: the watermark log folds itself once its
// record count crosses the retention tier, so footprint stays bounded
// while the recovered watermark stays exact.
func TestWatermarkLogRetention(t *testing.T) {
	dir := t.TempDir()
	e, _ := Open(dir)
	v, err := e.OpenLiveVideo("traffic", liveDS())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 70; i++ {
		if _, err := v.AppendFrames(1, nil); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	fi, err := os.Stat(wmPath(v.dir))
	if err != nil {
		t.Fatal(err)
	}
	bound := int64(wmHeaderLen + (wmCompactRecords+1)*wmRecLen)
	if fi.Size() > bound {
		t.Fatalf("watermark log grew to %d bytes, retention bound %d", fi.Size(), bound)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	e2, _ := Open(dir)
	v2, err := e2.OpenLiveVideo("traffic", liveDS())
	if err != nil {
		t.Fatal(err)
	}
	if v2.Watermark() != 70 {
		t.Fatalf("recovered watermark %d, want 70", v2.Watermark())
	}
}
