package storage

import (
	"bytes"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"eva/internal/faults"
)

// TestVerifyDetectsTrustedPrefixBitrot is the clean-sidecar blind-spot
// regression: bitrot *inside* the trusted prefix that keeps the record
// structurally decodable is invisible to the reopen fast path — the
// view serves the rotten row. Verify's full re-hash must catch it,
// quarantine the record, drop the bad rows from serving, and re-bound
// the sidecar so no later open trusts the hole either.
func TestVerifyDetectsTrustedPrefixBitrot(t *testing.T) {
	dir := t.TempDir()
	e, _ := Open(dir)
	v, _ := e.CreateView("det", viewSchema(), []string{"id"})
	crashAppend(t, v, 0)
	crashAppend(t, v, 1)
	if err := e.Close(); err != nil { // clean close writes the sidecar
		t.Fatal(err)
	}
	// Flip a byte of string payload ("car" → something else) in the
	// first rows record: the datum still decodes, the checksum is now
	// wrong, and the sidecar still matches the file tail.
	data, err := os.ReadFile(v.path)
	if err != nil {
		t.Fatal(err)
	}
	pos := bytes.Index(data, []byte("car"))
	if pos < 0 {
		t.Fatal("payload byte not found")
	}
	data[pos+2] ^= 0x01 // "car" → "cas"
	if err := os.WriteFile(v.path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	e2, _ := Open(dir)
	v2, err := e2.CreateView("det", viewSchema(), []string{"id"})
	if err != nil {
		t.Fatal(err)
	}
	// The blind spot, demonstrated: the fast path trusted every record
	// and the rotten row is being served.
	if trusted, _ := v2.OpenStats(); trusted != 4 {
		t.Fatalf("fast path trusted %d records, want 4 (the blind spot this test pins down)", trusted)
	}
	if v2.Rows() != 6 {
		t.Fatalf("pre-scrub rows = %d, want 6 (including the rotten one)", v2.Rows())
	}

	res, err := v2.Verify()
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	if res.Clean || !res.FoundCorruption {
		t.Fatalf("verify result = %+v, want corruption found", res)
	}
	if res.RowsDropped != 3 {
		t.Errorf("verify dropped %d rows, want 3 (the corrupt record's)", res.RowsDropped)
	}
	if res.Quar == nil || len(res.Quar.Ranges) != 1 {
		t.Fatalf("verify quarantine = %+v, want one range", res.Quar)
	}
	// The rotten row is no longer served.
	if v2.Rows() != 3 {
		t.Errorf("post-scrub rows = %d, want 3", v2.Rows())
	}
	// A second pass is idempotent: same quarantine, no new detection.
	res2, err := v2.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if res2.FoundCorruption {
		t.Error("second verify re-reported the known hole as fresh corruption")
	}
	// The re-bounded sidecar stops the next open from trusting past
	// the hole: it must re-verify and reproduce the same salvage.
	if err := e2.Close(); err != nil {
		t.Fatal(err)
	}
	e3, _ := Open(dir)
	v3, err := e3.CreateView("det", viewSchema(), []string{"id"})
	if err != nil {
		t.Fatal(err)
	}
	if v3.Rows() != 3 {
		t.Errorf("reopen after scrub served %d rows, want 3", v3.Rows())
	}
	if q := v3.Quarantine(); q == nil || len(q.Ranges) != 1 || q.Ranges[0] != res.Quar.Ranges[0] {
		t.Errorf("reopen quarantine = %+v, want %+v", q, res.Quar.Ranges)
	}
}

// TestVerifyCleanPassRefreshesSidecar: verifying an intact log reports
// clean, re-hashes every record, and leaves state untouched.
func TestVerifyCleanPass(t *testing.T) {
	dir := t.TempDir()
	e, _ := Open(dir)
	v, _ := e.CreateView("det", viewSchema(), []string{"id"})
	crashAppend(t, v, 0)
	crashAppend(t, v, 1)
	golden := snapshotView(v)
	res, err := v.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Clean || res.FoundCorruption || res.Quar != nil {
		t.Fatalf("clean verify = %+v", res)
	}
	if res.RecordsVerified != 4 {
		t.Errorf("verified %d records, want 4", res.RecordsVerified)
	}
	if got := snapshotView(v); got.rows != golden.rows || !bytes.Equal(got.data, golden.data) {
		t.Error("clean verify mutated view state")
	}
}

// TestVerifyHeaderRot: the header rotting under a live view is a total
// loss; Verify restarts the log in place and the view stays usable.
func TestVerifyHeaderRot(t *testing.T) {
	dir := t.TempDir()
	e, _ := Open(dir)
	v, _ := e.CreateView("det", viewSchema(), []string{"id"})
	crashAppend(t, v, 0)
	data, err := os.ReadFile(v.path)
	if err != nil {
		t.Fatal(err)
	}
	data[1] ^= 0xff
	if err := os.WriteFile(v.path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := v.Verify()
	if err != nil {
		t.Fatalf("verify after header rot: %v", err)
	}
	if !res.FoundCorruption || res.RowsDropped != 3 {
		t.Fatalf("header rot verify = %+v, want total loss of 3 rows", res)
	}
	if v.Rows() != 0 {
		t.Errorf("post-rot rows = %d, want 0", v.Rows())
	}
	// The regenerated log accepts appends and survives reopen.
	crashAppend(t, v, 1)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	e2, _ := Open(dir)
	v2, err := e2.CreateView("det", viewSchema(), []string{"id"})
	if err != nil {
		t.Fatal(err)
	}
	if v2.Rows() != 3 {
		t.Errorf("reopen after in-place restart: rows=%d, want 3", v2.Rows())
	}
}

// TestVerifyScrubFaultSite: the view:scrub site injects into Verify —
// transient faults surface as errors without touching state, crashes
// kill the view like any other simulated kill.
func TestVerifyScrubFaultSite(t *testing.T) {
	dir := t.TempDir()
	e, _ := Open(dir)
	inj := faults.New(11)
	inj.Rule(faults.SiteViewScrub("det"), faults.Rule{Kind: faults.Transient, At: []int{1}})
	e.SetInjector(inj)
	v, _ := e.CreateView("det", viewSchema(), []string{"id"})
	crashAppend(t, v, 0)
	if _, err := v.Verify(); err == nil || !faults.IsTransient(err) {
		t.Fatalf("verify error = %v, want injected transient", err)
	}
	if v.Rows() != 3 {
		t.Errorf("faulted verify changed state: rows=%d", v.Rows())
	}
	// The retry (next cadence) draws call 2: no rule, passes.
	if res, err := v.Verify(); err != nil || !res.Clean {
		t.Fatalf("retry verify = %+v, %v", res, err)
	}

	// Crash at the scrub site kills the view.
	dir2 := t.TempDir()
	e2, _ := Open(dir2)
	inj2 := faults.New(11)
	inj2.Rule(faults.SiteViewScrub("det"), faults.Rule{Kind: faults.Crash, At: []int{1}})
	e2.SetInjector(inj2)
	v2, _ := e2.CreateView("det", viewSchema(), []string{"id"})
	crashAppend(t, v2, 0)
	if _, err := v2.Verify(); err == nil || !faults.IsCrash(err) {
		t.Fatalf("verify error = %v, want injected crash", err)
	}
	if _, err := v2.Append(mkRows(9), nil); err == nil {
		t.Error("crashed view accepted an append")
	}
}

// TestVerifyViewsAggregates: the engine-level pass verifies every view
// in name order and carries per-view errors instead of aborting.
func TestVerifyViewsAggregates(t *testing.T) {
	dir := t.TempDir()
	e, _ := Open(dir)
	inj := faults.New(5)
	inj.Rule(faults.SiteViewScrub("bad"), faults.Rule{Kind: faults.Permanent, At: []int{1}})
	e.SetInjector(inj)
	va, _ := e.CreateView("alpha", viewSchema(), []string{"id"})
	vb, _ := e.CreateView("bad", viewSchema(), []string{"id"})
	crashAppend(t, va, 0)
	crashAppend(t, vb, 0)
	results := e.VerifyViews()
	if len(results) != 2 {
		t.Fatalf("verified %d views, want 2", len(results))
	}
	if results[0].Name != "alpha" || results[1].Name != "bad" {
		t.Fatalf("order = %s, %s", results[0].Name, results[1].Name)
	}
	if !results[0].Clean || results[0].Err != "" {
		t.Errorf("alpha = %+v, want clean", results[0])
	}
	if results[1].Err == "" || !strings.Contains(results[1].Err, "injected") {
		t.Errorf("bad.Err = %q, want injected fault", results[1].Err)
	}
}

// virtualClock is a test stand-in for the engine's simulated clock.
type virtualClock struct {
	mu  sync.Mutex
	now time.Duration
}

func (c *virtualClock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *virtualClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now += d
	c.mu.Unlock()
}

// waitStats polls the scrubber until cond holds or the deadline hits —
// the scrubber goroutine consumes nudges asynchronously.
func waitStats(t *testing.T, s *Scrubber, cond func(ScrubStats) bool) ScrubStats {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := s.Stats()
		if cond(st) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("scrubber stats stuck at %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestScrubberCadence: passes fire only when the virtual-time interval
// has elapsed; nudges before the deadline are free.
func TestScrubberCadence(t *testing.T) {
	clk := &virtualClock{}
	var mu sync.Mutex
	passes := 0
	s := NewScrubber(ScrubConfig{
		Interval: 100 * time.Millisecond,
		Now:      clk.Now,
		Pass: func() {
			mu.Lock()
			passes++
			mu.Unlock()
		},
	})
	defer s.Close()

	// Not due yet: nudges do nothing.
	clk.Advance(50 * time.Millisecond)
	s.Nudge()
	s.Nudge()
	time.Sleep(10 * time.Millisecond)
	if st := s.Stats(); st.Passes != 0 {
		t.Fatalf("premature pass: %+v", st)
	}
	// Crossing the interval triggers exactly one pass per cadence.
	clk.Advance(60 * time.Millisecond)
	s.Nudge()
	waitStats(t, s, func(st ScrubStats) bool { return st.Passes == 1 })
	s.Nudge() // still inside the next interval
	time.Sleep(10 * time.Millisecond)
	if st := s.Stats(); st.Passes != 1 {
		t.Fatalf("extra pass inside interval: %+v", st)
	}
	clk.Advance(110 * time.Millisecond)
	s.Nudge()
	waitStats(t, s, func(st ScrubStats) bool { return st.Passes == 2 })
	mu.Lock()
	defer mu.Unlock()
	if passes != 2 {
		t.Fatalf("pass closure ran %d times, want 2", passes)
	}
}

// TestScrubberDegradeBeforeShed: a due pass under saturation defers
// with a doubled (bounded) cadence instead of running — and the
// deferred pass still runs once the system goes quiet.
func TestScrubberDegradeBeforeShed(t *testing.T) {
	clk := &virtualClock{}
	var mu sync.Mutex
	busy := true
	s := NewScrubber(ScrubConfig{
		Interval: 100 * time.Millisecond,
		Now:      clk.Now,
		Busy: func() bool {
			mu.Lock()
			defer mu.Unlock()
			return busy
		},
		Pass: func() {},
	})
	defer s.Close()

	clk.Advance(150 * time.Millisecond)
	s.Nudge()
	st := waitStats(t, s, func(st ScrubStats) bool { return st.Degraded == 1 })
	if st.Passes != 0 {
		t.Fatalf("busy system still scrubbed: %+v", st)
	}
	// The degraded cadence doubled to 200ms: +150ms is not yet due.
	clk.Advance(150 * time.Millisecond)
	s.Nudge()
	time.Sleep(10 * time.Millisecond)
	if st := s.Stats(); st.Degraded != 1 || st.Passes != 0 {
		t.Fatalf("degraded cadence not doubled: %+v", st)
	}
	// Quiet again: the overdue pass runs and the cadence resets.
	mu.Lock()
	busy = false
	mu.Unlock()
	clk.Advance(100 * time.Millisecond)
	s.Nudge()
	waitStats(t, s, func(st ScrubStats) bool { return st.Passes == 1 })
}

// TestScrubberDegradeCapped: repeated saturation cannot stretch the
// cadence past 8× the base interval.
func TestScrubberDegradeCapped(t *testing.T) {
	clk := &virtualClock{}
	s := NewScrubber(ScrubConfig{
		Interval: 10 * time.Millisecond,
		Now:      clk.Now,
		Busy:     func() bool { return true },
		Pass:     func() {},
	})
	defer s.Close()
	for i := 1; i <= 6; i++ {
		clk.Advance(200 * time.Millisecond) // always overdue, whatever the cadence
		s.Nudge()
		waitStats(t, s, func(st ScrubStats) bool { return st.Degraded == i })
	}
	// After the cap (8× = 80ms) an 80ms advance is still enough to be
	// due again — if the cadence kept doubling it would not be.
	clk.Advance(80 * time.Millisecond)
	s.Nudge()
	waitStats(t, s, func(st ScrubStats) bool { return st.Degraded == 7 })
}

// TestScrubberCloseJoins: Close waits for the scrubber goroutine; no
// leak survives.
func TestScrubberCloseJoins(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 10; i++ {
		clk := &virtualClock{}
		s := NewScrubber(ScrubConfig{
			Interval: time.Millisecond,
			Now:      clk.Now,
			Pass:     func() {},
		})
		clk.Advance(time.Hour)
		s.Nudge()
		s.Close()
	}
	// Nudging a closed scrubber must not panic or block.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Errorf("goroutines leaked: %d > %d", n, before)
	}
}
