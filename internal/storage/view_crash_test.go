package storage

import (
	"bytes"
	"os"
	"testing"

	"eva/internal/faults"
	"eva/internal/types"
)

// crashAppends is the scripted append sequence the kill-point harness
// replays. Append i stores two rows under key 3i, one row under key
// 3i+1, and marks key 3i+2 processed-with-no-rows — so every append
// exercises both record kinds.
const crashAppends = 4

func crashAppend(t *testing.T, v *View, i int) {
	t.Helper()
	rows := types.NewBatch(viewSchema())
	base := int64(3 * i)
	rows.MustAppendRow(types.NewInt(base), types.NewString("car"), types.NewString("a"))
	rows.MustAppendRow(types.NewInt(base), types.NewString("bus"), types.NewString("b"))
	rows.MustAppendRow(types.NewInt(base+1), types.NewString("car"), types.NewString("c"))
	if _, err := v.Append(rows, [][]types.Datum{{types.NewInt(base + 2)}}); err != nil {
		t.Fatalf("append %d: %v", i, err)
	}
}

type viewState struct {
	rows      int
	processed int
	data      []byte // canonical row encoding, in storage order
}

func snapshotView(v *View) viewState {
	b := v.Scan()
	var buf []byte
	for r := 0; r < b.Len(); r++ {
		for _, d := range b.Row(r) {
			buf = d.AppendBinary(buf)
		}
	}
	return viewState{rows: v.Rows(), processed: v.ProcessedCount(), data: buf}
}

// TestViewCrashRecoveryKillPoints proves the crash-safety contract at
// every kill point: for each append in the script and a spread of torn
// lengths, inject a crash that cuts the log record short, then (1) the
// reopened view loads without error, (2) its contents are a consistent
// prefix of the uninterrupted golden run, and (3) re-running the full
// append script converges to exactly the golden state (idempotent
// re-STORE).
func TestViewCrashRecoveryKillPoints(t *testing.T) {
	// Golden uninterrupted run, plus the per-prefix states the
	// recovered view must match.
	goldenDir := t.TempDir()
	ge, _ := Open(goldenDir)
	gv, err := ge.CreateView("det", viewSchema(), []string{"id"})
	if err != nil {
		t.Fatal(err)
	}
	prefixes := []viewState{snapshotView(gv)} // state after 0 appends
	for i := 0; i < crashAppends; i++ {
		crashAppend(t, gv, i)
		prefixes = append(prefixes, snapshotView(gv))
	}
	golden := prefixes[crashAppends]
	// Record byte length — every append writes the same amount, so one
	// probe calibrates the torn-length sweep.
	recLen := int(gv.Footprint()-int64(len(gv.encodeHeader()))) / crashAppends

	for kill := 1; kill <= crashAppends; kill++ {
		for _, short := range []int{0, 1, recLen / 2, recLen - 1, recLen} {
			dir := t.TempDir()
			e, _ := Open(dir)
			inj := faults.New(1)
			inj.Rule(faults.SiteViewWrite("det"),
				faults.Rule{Kind: faults.Crash, At: []int{kill}, ShortWrite: short})
			e.SetInjector(inj)
			v, err := e.CreateView("det", viewSchema(), []string{"id"})
			if err != nil {
				t.Fatal(err)
			}
			var crashErr error
			for i := 0; i < crashAppends && crashErr == nil; i++ {
				rows := types.NewBatch(viewSchema())
				base := int64(3 * i)
				rows.MustAppendRow(types.NewInt(base), types.NewString("car"), types.NewString("a"))
				rows.MustAppendRow(types.NewInt(base), types.NewString("bus"), types.NewString("b"))
				rows.MustAppendRow(types.NewInt(base+1), types.NewString("car"), types.NewString("c"))
				_, crashErr = v.Append(rows, [][]types.Datum{{types.NewInt(base + 2)}})
			}
			if !faults.IsCrash(crashErr) {
				t.Fatalf("kill=%d short=%d: crash not injected: %v", kill, short, crashErr)
			}
			// The crashed handle is dead: further appends must refuse
			// rather than diverge from disk.
			if _, err := v.Append(nil, [][]types.Datum{{types.NewInt(99)}}); err == nil {
				t.Fatalf("kill=%d short=%d: dead view accepted an append", kill, short)
			}

			// Recovery: a fresh engine on the same directory.
			e2, _ := Open(dir)
			v2, err := e2.CreateView("det", viewSchema(), []string{"id"})
			if err != nil {
				t.Fatalf("kill=%d short=%d: reopen failed: %v", kill, short, err)
			}
			// Consistent prefix. A full torn write (short == recLen)
			// made the killed append durable; short == 0 (and short ==
			// 1, which cannot complete even a record header) lose it
			// entirely; in-between tears may keep the append's rows
			// record but lose its keys record, so they are bounded by
			// the two surrounding prefixes.
			got := snapshotView(v2)
			switch {
			case short == 0 || short == recLen:
				want := prefixes[kill-1]
				if short == recLen {
					want = prefixes[kill]
				}
				if got.rows != want.rows || got.processed != want.processed || !bytes.Equal(got.data, want.data) {
					t.Fatalf("kill=%d short=%d: recovered rows=%d processed=%d, want rows=%d processed=%d",
						kill, short, got.rows, got.processed, want.rows, want.processed)
				}
			case short == 1:
				// One byte is never a complete record: the tail must be
				// detected and dropped.
				if v2.RecoveredBytes() == 0 {
					t.Errorf("kill=%d short=%d: torn tail not detected", kill, short)
				}
				want := prefixes[kill-1]
				if got.rows != want.rows || !bytes.Equal(got.data, want.data) {
					t.Fatalf("kill=%d short=%d: one-byte tear changed state", kill, short)
				}
			default:
				if !bytes.HasPrefix(golden.data, got.data) {
					t.Fatalf("kill=%d short=%d: recovered rows are not a prefix of golden", kill, short)
				}
				if got.rows < prefixes[kill-1].rows || got.rows > prefixes[kill].rows ||
					got.processed < prefixes[kill-1].processed || got.processed > prefixes[kill].processed {
					t.Fatalf("kill=%d short=%d: recovered rows=%d processed=%d outside [%d,%d] append window",
						kill, short, got.rows, got.processed, prefixes[kill-1].rows, prefixes[kill].rows)
				}
			}

			// Idempotent re-STORE: re-running the whole script lands
			// exactly on the golden state.
			for i := 0; i < crashAppends; i++ {
				crashAppend(t, v2, i)
			}
			final := snapshotView(v2)
			if final.rows != golden.rows || final.processed != golden.processed || !bytes.Equal(final.data, golden.data) {
				t.Fatalf("kill=%d short=%d: re-run diverged: rows=%d processed=%d, want rows=%d processed=%d",
					kill, short, final.rows, final.processed, golden.rows, golden.processed)
			}
			// And a second reopen of the healed log agrees too.
			e3, _ := Open(dir)
			v3, err := e3.CreateView("det", viewSchema(), []string{"id"})
			if err != nil {
				t.Fatalf("kill=%d short=%d: reopen after heal: %v", kill, short, err)
			}
			if s := snapshotView(v3); s.rows != golden.rows || !bytes.Equal(s.data, golden.data) {
				t.Fatalf("kill=%d short=%d: healed log replays wrong state", kill, short)
			}
		}
	}
}

// TestViewAppendRollbackOnWriteFault checks the non-crash failure path:
// a transient or permanent write fault must leave both the file and the
// in-memory state exactly as they were, so a caller-level retry starts
// from a clean slate.
func TestViewAppendRollbackOnWriteFault(t *testing.T) {
	for _, kind := range []faults.Kind{faults.Transient, faults.Permanent} {
		dir := t.TempDir()
		e, _ := Open(dir)
		inj := faults.New(1)
		inj.Rule(faults.SiteViewWrite("det"), faults.Rule{Kind: kind, At: []int{2}})
		e.SetInjector(inj)
		v, _ := e.CreateView("det", viewSchema(), []string{"id"})
		crashAppend(t, v, 0)
		before := snapshotView(v)
		fpBefore := v.Footprint()

		rows := types.NewBatch(viewSchema())
		rows.MustAppendRow(types.NewInt(50), types.NewString("car"), types.NewString("z"))
		if _, err := v.Append(rows, nil); err == nil {
			t.Fatalf("%v write fault did not surface", kind)
		}
		after := snapshotView(v)
		if after.rows != before.rows || after.processed != before.processed || v.Footprint() != fpBefore {
			t.Fatalf("%v fault leaked partial state: %+v vs %+v", kind, after, before)
		}
		fi, err := os.Stat(v.path)
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() != fpBefore {
			t.Fatalf("%v fault left the file at %d bytes, want %d", kind, fi.Size(), fpBefore)
		}
		// The view stays usable; the retried append succeeds and both
		// restates are durable.
		if n, err := v.Append(rows, nil); err != nil || n != 1 {
			t.Fatalf("retry after rollback: n=%d err=%v", n, err)
		}
		e2, _ := Open(dir)
		v2, err := e2.CreateView("det", viewSchema(), []string{"id"})
		if err != nil || v2.Rows() != before.rows+1 {
			t.Fatalf("reopen after rollback+retry: rows=%d err=%v", v2.Rows(), err)
		}
	}
}

// TestViewChecksumDetectsBitrot flips one payload byte in a stored
// record and checks that reopening salvages around it: the corrupt
// record's rows are quarantined, every record after it is recovered,
// and the lost byte range is recorded for symbolic repair.
func TestViewChecksumDetectsBitrot(t *testing.T) {
	dir := t.TempDir()
	e, _ := Open(dir)
	v, _ := e.CreateView("det", viewSchema(), []string{"id"})
	hdrLen := len(v.encodeHeader())
	crashAppend(t, v, 0)
	crashAppend(t, v, 1)
	if err := v.close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(v.path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the first record's payload. Out-of-band
	// corruption is outside the crash model the clean sidecar covers,
	// so drop the sidecar too — with it present the verified-prefix
	// fast path would (by design) trust the prefix without re-hashing.
	data[hdrLen+recHeaderLen+2] ^= 0xff
	if err := os.WriteFile(v.path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(cleanPath(v.path)); err != nil {
		t.Fatal(err)
	}
	e2, _ := Open(dir)
	v2, err := e2.CreateView("det", viewSchema(), []string{"id"})
	if err != nil {
		t.Fatalf("bitrot should recover, not fail: %v", err)
	}
	// The corrupt record held append 0's three rows; everything after
	// it (append 0's key record, append 1's rows and key) salvages.
	if v2.Rows() != 3 {
		t.Errorf("salvage kept %d rows, want 3 (the second append's)", v2.Rows())
	}
	if v2.ProcessedCount() != 4 {
		t.Errorf("salvage kept %d keys, want 4", v2.ProcessedCount())
	}
	q := v2.Quarantine()
	if q == nil {
		t.Fatal("bitrot left no quarantine record")
	}
	if len(q.Ranges) != 1 || q.Ranges[0].Lo != int64(hdrLen) {
		t.Errorf("quarantine ranges = %+v, want one starting at %d", q.Ranges, hdrLen)
	}
	if q.SalvagedRows != 3 || q.LostBytes == 0 {
		t.Errorf("quarantine = %+v, want 3 salvaged rows and lost bytes", q)
	}
	// No torn tail: the hole is mid-log, the file still ends on a
	// record boundary.
	if v2.RecoveredBytes() != 0 {
		t.Errorf("mid-log hole misreported as torn tail (%d bytes)", v2.RecoveredBytes())
	}
	// The quarantine manifest is durable and the refreshed sidecar is
	// bounded at the hole, so the *next* open re-verifies the suffix
	// rather than trusting bytes past the corruption.
	if got := readQuarManifest(v2.path); len(got) != 1 || got[0] != q.Ranges[0] {
		t.Errorf("quarantine manifest = %+v, want %+v", got, q.Ranges)
	}
	e3, _ := Open(dir)
	v3, err := e3.CreateView("det", viewSchema(), []string{"id"})
	if err != nil {
		t.Fatal(err)
	}
	if v3.Rows() != 3 || v3.ProcessedCount() != 4 {
		t.Errorf("re-reopen diverged: rows=%d keys=%d", v3.Rows(), v3.ProcessedCount())
	}
	if trusted, _ := v3.OpenStats(); trusted != 0 {
		t.Errorf("re-reopen trusted %d records past a quarantined hole", trusted)
	}
}
