package storage

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"eva/internal/faults"
	"eva/internal/vision"
	"eva/internal/xxhash"
)

// Live video tables are the streaming ingest substrate: frames arrive
// over (virtual) time and become visible to queries only once durable.
// Because every frame's content is a deterministic function of the
// dataset descriptor and the frame id, the only state that needs crash
// safety is the *watermark* — the count of durably ingested frames —
// kept in a checksummed append-only log next to the segments, with the
// same torn-tail truncation discipline as the view log. A crash
// mid-append leaves the watermark at the last durable record; the
// producer re-sends from there and the table converges byte-identically
// to an uninterrupted run.
//
// Watermark log format: header (magic, version), then fixed-size
// records [watermark:8][xxhash64 over the watermark bytes:8].
const (
	wmMagic   = 0x45564157 // "EVAW"
	wmVersion = 1

	wmHeaderLen = 5
	wmRecLen    = 16
)

// wmPath returns the watermark-log path inside a video directory.
func wmPath(dir string) string { return filepath.Join(dir, "ingest.wal") }

// OpenLiveVideo registers (or reopens) a streaming video table whose
// frames arrive over time, up to the dataset's capacity. On reopen the
// durable watermark is recovered from the checksummed log, truncating
// a torn tail left by a crash mid-append.
func (e *Engine) OpenLiveVideo(name string, ds vision.Dataset) (*Video, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	key := strings.ToLower(name)
	if _, dup := e.videos[key]; dup {
		return nil, fmt.Errorf("storage: video %q already exists", name)
	}
	dir := filepath.Join(e.root, "videos", key)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	v := &Video{
		name: name, dir: dir, ds: ds, segFrames: defaultSegmentFrames,
		live: true, site: faults.SiteIngestAppend(name),
	}
	path := wmPath(dir)
	if data, err := os.ReadFile(path); err == nil {
		valid, wm, err := replayWatermarks(data)
		if err != nil {
			return nil, fmt.Errorf("storage: live video %s: %w", name, err)
		}
		if int(wm) > ds.Frames {
			return nil, fmt.Errorf("storage: live video %s: watermark %d past capacity %d", name, wm, ds.Frames)
		}
		if valid < len(data) {
			if err := os.Truncate(path, int64(valid)); err != nil {
				return nil, fmt.Errorf("storage: live video %s: truncate torn tail: %w", name, err)
			}
			v.wmRecovered = int64(len(data) - valid)
		}
		v.wm, v.wmFoot = wm, int64(valid)
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	v.wmFile = f
	if v.wmFoot == 0 {
		hdr := binary.LittleEndian.AppendUint32(nil, wmMagic)
		hdr = append(hdr, wmVersion)
		if _, err := f.Write(hdr); err != nil {
			return nil, err
		}
		v.wmFoot = int64(len(hdr))
	}
	e.videos[key] = v
	return v, nil
}

// replayWatermarks returns the valid-prefix length of a watermark log
// and the last durable watermark. Like the view log, an incomplete or
// checksum-failing tail record marks a crash mid-append and stops
// replay at the last good boundary; a decreasing watermark is a writer
// bug and a hard error.
func replayWatermarks(data []byte) (valid int, wm int64, err error) {
	if len(data) < wmHeaderLen || binary.LittleEndian.Uint32(data) != wmMagic {
		return 0, 0, fmt.Errorf("bad watermark-log header")
	}
	if data[4] != wmVersion {
		return 0, 0, fmt.Errorf("unsupported watermark-log version %d", data[4])
	}
	off := wmHeaderLen
	for off+wmRecLen <= len(data) {
		next := int64(binary.LittleEndian.Uint64(data[off:]))
		sum := binary.LittleEndian.Uint64(data[off+8:])
		if xxhash.Sum64(data[off:off+8], 0) != sum {
			return off, wm, nil
		}
		if next < wm {
			return 0, 0, fmt.Errorf("watermark regressed %d -> %d", wm, next)
		}
		wm = next
		off += wmRecLen
	}
	return off, wm, nil
}

// AppendFrames durably advances the watermark by n frames, making them
// visible to scans. It consults the injector at the table's
// ingest-append site, keyed by the pre-append watermark (the LSN of
// the first new frame): transient and permanent faults roll the log
// back (nothing applied, safe to retry); a simulated crash leaves the
// torn tail on disk and kills the handle, like a view write. It
// returns the new durable watermark.
func (v *Video) AppendFrames(n int, inj *faults.Injector) (int64, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if !v.live {
		return 0, fmt.Errorf("storage: video %s: not a live table", v.name)
	}
	if v.wmDead {
		return v.wm, fmt.Errorf("storage: live video %s: unusable after simulated crash", v.name)
	}
	if v.wmFile == nil {
		return v.wm, fmt.Errorf("storage: live video %s: closed", v.name)
	}
	if n <= 0 {
		return v.wm, nil
	}
	newWM := v.wm + int64(n)
	if newWM > int64(v.ds.Frames) {
		return v.wm, fmt.Errorf("storage: live video %s: append past capacity (%d + %d > %d)", v.name, v.wm, n, v.ds.Frames)
	}
	rec := binary.LittleEndian.AppendUint64(make([]byte, 0, wmRecLen), uint64(newWM))
	rec = binary.LittleEndian.AppendUint64(rec, xxhash.Sum64(rec, 0))

	allow := len(rec)
	var injected error
	if short, ferr := inj.CheckWrite(v.site, uint64(v.wm), len(rec)); ferr != nil {
		allow, injected = short, ferr
	}
	var wrote int
	var werr error
	if allow > 0 {
		wrote, werr = v.wmFile.Write(rec[:allow])
	}
	if injected != nil && faults.IsCrash(injected) {
		// Simulated kill mid-append: the torn tail stays for the next
		// open to truncate, and this handle is dead.
		v.wmDead = true
		return v.wm, fmt.Errorf("storage: live video %s: %w", v.name, injected)
	}
	if injected == nil && werr == nil && wrote == len(rec) {
		v.wmFoot += int64(len(rec))
		v.wm = newWM
		return v.wm, nil
	}
	if terr := v.wmFile.Truncate(v.wmFoot); terr != nil {
		v.wmDead = true
		return v.wm, fmt.Errorf("storage: live video %s: rollback after failed write: %v (write error: %v)", v.name, terr, firstErr(injected, werr))
	}
	return v.wm, fmt.Errorf("storage: live video %s: %w", v.name, firstErr(injected, werr, fmt.Errorf("short write (%d of %d bytes)", wrote, len(rec))))
}

// Live reports whether this is a streaming table.
func (v *Video) Live() bool { return v.live }

// Watermark returns the durable frame count of a live table.
func (v *Video) Watermark() int64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.wm
}

// WatermarkRecovered returns the torn-tail bytes dropped from the
// watermark log when the table was reopened (0 for a clean log).
func (v *Video) WatermarkRecovered() int64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.wmRecovered
}

// Dead reports whether a simulated crash killed this live handle.
func (v *Video) Dead() bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.wmDead
}

// Capacity returns the dataset's total frame count — the ceiling the
// watermark can reach.
func (v *Video) Capacity() int64 { return int64(v.ds.Frames) }

// closeLive closes the watermark log handle. Idempotent.
func (v *Video) closeLive() error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.wmFile == nil {
		return nil
	}
	err := v.wmFile.Close()
	v.wmFile = nil
	return err
}

// CheckpointPath returns (creating the directory if needed) the
// durable checkpoint file path for a standing query.
func (e *Engine) CheckpointPath(name string) (string, error) {
	dir := filepath.Join(e.root, "checkpoints")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	return filepath.Join(dir, sanitize(strings.ToLower(name))+".ckpt"), nil
}
