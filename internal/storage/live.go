package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"eva/internal/faults"
	"eva/internal/vision"
	"eva/internal/xxhash"
)

// Live video tables are the streaming ingest substrate: frames arrive
// over (virtual) time and become visible to queries only once durable.
// Because every frame's content is a deterministic function of the
// dataset descriptor and the frame id, the only state that needs crash
// safety is the *watermark* — the count of durably ingested frames —
// kept in a checksummed append-only log next to the segments, with the
// same torn-tail truncation discipline as the view log. A crash
// mid-append leaves the watermark at the last durable record; the
// producer re-sends from there and the table converges byte-identically
// to an uninterrupted run.
//
// Watermark log format: header (magic, version), then fixed-size
// records [watermark:8][xxhash64 over the watermark bytes:8].
const (
	wmMagic   = 0x45564157 // "EVAW"
	wmVersion = 1

	wmHeaderLen = 5
	wmRecLen    = 16

	// wmCompactRecords is the watermark log's retention tier: replay is
	// last-record-wins, so once this many records have accumulated the
	// log is folded into header + one record (scratch + rename) before
	// the next append — bounded history, bounded disk.
	wmCompactRecords = 64
)

// wmPath returns the watermark-log path inside a video directory.
func wmPath(dir string) string { return filepath.Join(dir, "ingest.wal") }

// wmHeader builds the watermark-log header bytes.
func wmHeader() []byte {
	hdr := binary.LittleEndian.AppendUint32(make([]byte, 0, wmHeaderLen), wmMagic)
	return append(hdr, wmVersion)
}

// wmRecord appends one checksummed watermark record.
func wmRecord(buf []byte, wm int64) []byte {
	start := len(buf)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(wm))
	return binary.LittleEndian.AppendUint64(buf, xxhash.Sum64(buf[start:], 0))
}

// OpenLiveVideo registers (or reopens) a streaming video table whose
// frames arrive over time, up to the dataset's capacity. On reopen the
// durable watermark is recovered from the checksummed log, truncating
// a torn tail left by a crash mid-append.
func (e *Engine) OpenLiveVideo(name string, ds vision.Dataset) (*Video, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	key := strings.ToLower(name)
	if _, dup := e.videos[key]; dup {
		return nil, fmt.Errorf("storage: video %q already exists", name)
	}
	dir := filepath.Join(e.root, "videos", key)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	v := &Video{
		name: name, dir: dir, ds: ds, segFrames: defaultSegmentFrames,
		live: true, site: faults.SiteIngestAppend(name),
		eng: e, budget: e.budget,
	}
	path := wmPath(dir)
	tl, err := OpenTailLog(path, wmHeader(), func(data []byte) (int, error) {
		valid, wm, rerr := replayWatermarks(data)
		if rerr != nil {
			return 0, rerr
		}
		if int(wm) > ds.Frames {
			return 0, fmt.Errorf("watermark %d past capacity %d", wm, ds.Frames)
		}
		v.wm = wm // lint:nolock pre-publish (OpenLiveVideo)
		return valid, nil
	})
	if err != nil {
		return nil, fmt.Errorf("storage: live video %s: %w", name, err)
	}
	v.wmFile, v.wmFoot, v.wmRecovered = tl.File, tl.Footprint, tl.Recovered
	e.budget.Set(path, v.wmFoot)
	e.videos[key] = v
	return v, nil
}

// replayWatermarks returns the valid-prefix length of a watermark log
// and the last durable watermark. Like the view log, an incomplete or
// checksum-failing tail record marks a crash mid-append and stops
// replay at the last good boundary; a decreasing watermark is a writer
// bug and a hard error.
func replayWatermarks(data []byte) (valid int, wm int64, err error) {
	if len(data) < wmHeaderLen || binary.LittleEndian.Uint32(data) != wmMagic {
		return 0, 0, fmt.Errorf("bad watermark-log header")
	}
	if data[4] != wmVersion {
		return 0, 0, fmt.Errorf("unsupported watermark-log version %d", data[4])
	}
	off := wmHeaderLen
	for off+wmRecLen <= len(data) {
		next := int64(binary.LittleEndian.Uint64(data[off:]))
		sum := binary.LittleEndian.Uint64(data[off+8:])
		if xxhash.Sum64(data[off:off+8], 0) != sum {
			return off, wm, nil
		}
		if next < wm {
			return 0, 0, fmt.Errorf("watermark regressed %d -> %d", wm, next)
		}
		wm = next
		off += wmRecLen
	}
	return off, wm, nil
}

// AppendFrames durably advances the watermark by n frames, making them
// visible to scans. It consults the injector at the table's
// ingest-append site, keyed by the pre-append watermark (the LSN of
// the first new frame): transient and permanent faults roll the log
// back (nothing applied, safe to retry); a simulated crash leaves the
// torn tail on disk and kills the handle, like a view write. It
// returns the new durable watermark.
func (v *Video) AppendFrames(n int, inj *faults.Injector) (int64, error) {
	for attempt := 1; ; attempt++ {
		wm, err := v.appendFramesOnce(n, inj)
		if err == nil || !IsDiskFull(err) || faults.IsCrash(err) {
			return wm, err
		}
		var dfe *DiskFullError
		errors.As(err, &dfe)
		if v.eng == nil || attempt >= evictRetryMax {
			return wm, fmt.Errorf("storage: live video %s: %w: %v", v.name, ErrDiskBudget, dfe)
		}
		// Run the reclaim ladder with v.mu released: Engine.Close takes
		// e.mu then video.mu, so calling Reclaim (which takes e.mu) under
		// video.mu would invert the order.
		freed := v.eng.Reclaim(dfe.Need, "")
		if freed <= 0 && !faults.IsTransient(err) {
			return wm, fmt.Errorf("storage: live video %s: %w: %v", v.name, ErrDiskBudget, dfe)
		}
		v.eng.chargeRetry(attempt)
	}
}

// appendFramesOnce is one locked append attempt; AppendFrames wraps it
// in the disk-full evict-retry loop.
func (v *Video) appendFramesOnce(n int, inj *faults.Injector) (int64, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if !v.live {
		return 0, fmt.Errorf("storage: video %s: not a live table", v.name)
	}
	if v.wmDead {
		return v.wm, fmt.Errorf("storage: live video %s: unusable after simulated crash", v.name)
	}
	if v.wmFile == nil {
		return v.wm, fmt.Errorf("storage: live video %s: closed", v.name)
	}
	if n <= 0 {
		return v.wm, nil
	}
	newWM := v.wm + int64(n)
	if newWM > int64(v.ds.Frames) {
		return v.wm, fmt.Errorf("storage: live video %s: append past capacity (%d + %d > %d)", v.name, v.wm, n, v.ds.Frames)
	}
	// Retention tier: replay is last-record-wins, so fold a long log
	// into header + one record before appending more. Best-effort — a
	// failed fold leaves the old log intact and the append proceeds.
	if v.wmFoot >= int64(wmHeaderLen+wmCompactRecords*wmRecLen) {
		_ = v.compactWatermarkLocked() // lint:noerrcheck best-effort fold; append still valid on old log
	}
	rec := binary.LittleEndian.AppendUint64(make([]byte, 0, wmRecLen), uint64(newWM))
	rec = binary.LittleEndian.AppendUint64(rec, xxhash.Sum64(rec, 0))

	allow := len(rec)
	var injected error
	dfSite := faults.SiteDiskFull(v.site)
	if short, ferr := inj.CheckWrite(dfSite, uint64(v.wm), len(rec)); ferr != nil {
		allow, injected = short, &DiskFullError{Site: dfSite, Need: int64(len(rec)), Injected: ferr}
	} else if short, ferr := inj.CheckWrite(v.site, uint64(v.wm), len(rec)); ferr != nil {
		allow, injected = short, ferr
	}
	admitted := false
	if injected == nil {
		if !v.budget.Admit(wmPath(v.dir), int64(len(rec))) {
			// Over budget: try folding the log first — that may free
			// enough locally without evicting anyone.
			if v.compactWatermarkLocked() != nil || !v.budget.Admit(wmPath(v.dir), int64(len(rec))) {
				return v.wm, fmt.Errorf("storage: live video %s: %w", v.name,
					&DiskFullError{Site: faults.SiteDiskFull(v.site), Need: int64(len(rec))})
			}
		}
		admitted = true
	}
	var wrote int
	var werr error
	if allow > 0 {
		wrote, werr = v.wmFile.Write(rec[:allow])
	}
	if injected != nil && faults.IsCrash(injected) {
		// Simulated kill mid-append: the torn tail stays for the next
		// open to truncate, and this handle is dead.
		v.wmDead = true
		return v.wm, fmt.Errorf("storage: live video %s: %w", v.name, injected)
	}
	if injected == nil && werr == nil && wrote == len(rec) {
		v.wmFoot += int64(len(rec))
		v.wm = newWM
		return v.wm, nil
	}
	if admitted {
		v.budget.Refund(wmPath(v.dir), int64(len(rec)))
	}
	if terr := v.wmFile.Truncate(v.wmFoot); terr != nil {
		v.wmDead = true
		return v.wm, fmt.Errorf("storage: live video %s: rollback after failed write: %v (write error: %v)", v.name, terr, firstErr(injected, werr))
	}
	return v.wm, fmt.Errorf("storage: live video %s: %w", v.name, firstErr(injected, werr, fmt.Errorf("short write (%d of %d bytes)", wrote, len(rec))))
}

// compactWatermarkLocked folds the watermark log to its minimal form —
// header plus (if any frames are durable) one record — via scratch
// write and rename. Caller holds v.mu.
func (v *Video) compactWatermarkLocked() error {
	if v.wmFile == nil || v.wmDead || v.wmFoot <= int64(wmHeaderLen) {
		return nil
	}
	buf := wmHeader()
	if v.wm > 0 {
		buf = wmRecord(buf, v.wm)
	}
	if int64(len(buf)) >= v.wmFoot {
		return nil
	}
	path := wmPath(v.dir)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return err
	}
	if err := v.wmFile.Close(); err != nil {
		_ = os.Remove(tmp) // lint:noerrcheck scratch cleanup on error path
		v.wmDead = true
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		// Old log is still intact on disk; reopen its handle.
		_ = os.Remove(tmp) // lint:noerrcheck scratch cleanup on error path
		f, oerr := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if oerr != nil {
			v.wmDead = true
			return oerr
		}
		v.wmFile = f
		return err
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		v.wmDead = true
		return err
	}
	v.wmFile = f
	v.wmFoot = int64(len(buf))
	v.budget.Set(path, v.wmFoot)
	return nil
}

// setBudget installs (or replaces) the disk budget on an already-open
// live table, charging the current watermark-log footprint.
func (v *Video) setBudget(b *DiskBudget) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.budget = b
	if v.live {
		b.Set(wmPath(v.dir), v.wmFoot)
	}
}

// Live reports whether this is a streaming table.
func (v *Video) Live() bool { return v.live }

// Watermark returns the durable frame count of a live table.
func (v *Video) Watermark() int64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.wm
}

// WatermarkRecovered returns the torn-tail bytes dropped from the
// watermark log when the table was reopened (0 for a clean log).
func (v *Video) WatermarkRecovered() int64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.wmRecovered
}

// Dead reports whether a simulated crash killed this live handle.
func (v *Video) Dead() bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.wmDead
}

// Capacity returns the dataset's total frame count — the ceiling the
// watermark can reach.
func (v *Video) Capacity() int64 { return int64(v.ds.Frames) }

// closeLive closes the watermark log handle. Idempotent.
func (v *Video) closeLive() error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.wmFile == nil {
		return nil
	}
	err := v.wmFile.Close()
	v.wmFile = nil
	return err
}

// CheckpointPath returns (creating the directory if needed) the
// durable checkpoint file path for a standing query.
func (e *Engine) CheckpointPath(name string) (string, error) {
	dir := filepath.Join(e.root, "checkpoints")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	return filepath.Join(dir, sanitize(strings.ToLower(name))+".ckpt"), nil
}
