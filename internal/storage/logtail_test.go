package storage

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// tailReplay is the test log's replay: header "HD", then 2-byte
// records [val, ^val]. The valid prefix ends at the first incomplete
// or complement-failing record.
func tailReplay(data []byte) (int, error) {
	if len(data) < 2 || data[0] != 'H' || data[1] != 'D' {
		return 0, fmt.Errorf("bad test-log header")
	}
	off := 2
	for off+2 <= len(data) {
		if data[off]^data[off+1] != 0xff {
			return off, nil
		}
		off += 2
	}
	return off, nil
}

func TestOpenTailLogFresh(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log")
	tl, err := OpenTailLog(path, []byte("HD"), tailReplay)
	if err != nil {
		t.Fatal(err)
	}
	defer tl.File.Close()
	if tl.Footprint != 2 || tl.Recovered != 0 {
		t.Fatalf("fresh log: footprint=%d recovered=%d, want 2, 0", tl.Footprint, tl.Recovered)
	}
	data, err := os.ReadFile(path)
	if err != nil || !bytes.Equal(data, []byte("HD")) {
		t.Fatalf("fresh log on disk = %q (%v), want header", data, err)
	}
}

func TestOpenTailLogReopenClean(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log")
	tl, err := OpenTailLog(path, []byte("HD"), tailReplay)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tl.File.Write([]byte{0x01, 0xfe, 0x02, 0xfd}); err != nil {
		t.Fatal(err)
	}
	tl.File.Close()

	tl2, err := OpenTailLog(path, []byte("HD"), tailReplay)
	if err != nil {
		t.Fatal(err)
	}
	defer tl2.File.Close()
	if tl2.Footprint != 6 || tl2.Recovered != 0 {
		t.Fatalf("clean reopen: footprint=%d recovered=%d, want 6, 0", tl2.Footprint, tl2.Recovered)
	}
	// The header must not be written again onto a non-empty log.
	data, _ := os.ReadFile(path)
	if !bytes.Equal(data, []byte{'H', 'D', 0x01, 0xfe, 0x02, 0xfd}) {
		t.Fatalf("reopen mutated the log: %x", data)
	}
}

func TestOpenTailLogTruncatesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log")
	// One whole record, then a torn half-record.
	if err := os.WriteFile(path, []byte{'H', 'D', 0x01, 0xfe, 0x02}, 0o644); err != nil {
		t.Fatal(err)
	}
	tl, err := OpenTailLog(path, []byte("HD"), tailReplay)
	if err != nil {
		t.Fatal(err)
	}
	defer tl.File.Close()
	if tl.Footprint != 4 || tl.Recovered != 1 {
		t.Fatalf("torn reopen: footprint=%d recovered=%d, want 4, 1", tl.Footprint, tl.Recovered)
	}
	data, _ := os.ReadFile(path)
	if !bytes.Equal(data, []byte{'H', 'D', 0x01, 0xfe}) {
		t.Fatalf("torn tail not truncated: %x", data)
	}
	// Appends continue at the truncated boundary.
	if _, err := tl.File.Write([]byte{0x03, 0xfc}); err != nil {
		t.Fatal(err)
	}
	data, _ = os.ReadFile(path)
	if !bytes.Equal(data, []byte{'H', 'D', 0x01, 0xfe, 0x03, 0xfc}) {
		t.Fatalf("append after recovery landed wrong: %x", data)
	}
}

func TestOpenTailLogReplayErrorIsFatal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log")
	if err := os.WriteFile(path, []byte{'X', 'X'}, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenTailLog(path, []byte("HD"), tailReplay); err == nil {
		t.Fatal("bad header did not fail the open")
	}
}

func TestOpenTailLogRejectsBogusValidPrefix(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log")
	if err := os.WriteFile(path, []byte{'H', 'D'}, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenTailLog(path, nil, func(data []byte) (int, error) {
		return len(data) + 1, nil
	}); err == nil {
		t.Fatal("out-of-range valid prefix did not fail the open")
	}
	if _, err := OpenTailLog(path, nil, func(data []byte) (int, error) {
		return -1, nil
	}); err == nil {
		t.Fatal("negative valid prefix did not fail the open")
	}
}
