package storage

import (
	"encoding/binary"
	"os"
	"testing"

	"eva/internal/faults"
	"eva/internal/vision"
	"eva/internal/xxhash"
)

// appendWMRecord encodes one checksummed watermark record.
func appendWMRecord(buf []byte, wm uint64) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, wm)
	return binary.LittleEndian.AppendUint64(buf, xxhash.Sum64(buf[len(buf)-8:], 0))
}

func liveDS() vision.Dataset {
	return vision.Dataset{Name: "live", Frames: 100, Width: 320, Height: 240, Density: 2, Seed: 0x117E}
}

// TestLiveVideoWatermark covers the happy path: appends advance the
// durable watermark, scans see exactly the watermarked prefix, and a
// clean reopen recovers the same watermark.
func TestLiveVideoWatermark(t *testing.T) {
	dir := t.TempDir()
	e, _ := Open(dir)
	v, err := e.OpenLiveVideo("traffic", liveDS())
	if err != nil {
		t.Fatal(err)
	}
	if !v.Live() || v.NumFrames() != 0 {
		t.Fatalf("fresh live table: live=%v frames=%d", v.Live(), v.NumFrames())
	}
	if _, err := v.AppendFrames(10, nil); err != nil {
		t.Fatal(err)
	}
	if wm, err := v.AppendFrames(5, nil); err != nil || wm != 15 {
		t.Fatalf("append: wm=%d err=%v", wm, err)
	}
	if v.NumFrames() != 15 {
		t.Fatalf("NumFrames = %d, want 15", v.NumFrames())
	}
	b, err := v.Scan(0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 15 {
		t.Fatalf("scan saw %d frames past the watermark", b.Len())
	}
	// Zero-frame append is a durable no-op.
	if wm, err := v.AppendFrames(0, nil); err != nil || wm != 15 {
		t.Fatalf("empty append: wm=%d err=%v", wm, err)
	}
	// Past-capacity append refuses without advancing.
	if _, err := v.AppendFrames(1000, nil); err == nil {
		t.Fatal("append past capacity succeeded")
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	e2, _ := Open(dir)
	v2, err := e2.OpenLiveVideo("traffic", liveDS())
	if err != nil {
		t.Fatal(err)
	}
	if v2.Watermark() != 15 || v2.WatermarkRecovered() != 0 {
		t.Fatalf("reopen: wm=%d recovered=%d, want 15/0", v2.Watermark(), v2.WatermarkRecovered())
	}
	// The log keeps appending across the reopen.
	if wm, err := v2.AppendFrames(85, nil); err != nil || wm != 100 {
		t.Fatalf("append to capacity: wm=%d err=%v", wm, err)
	}
}

// TestLiveVideoCrashTornTail kills the watermark write at every torn
// length: the handle dies, reopen truncates the tail back to the last
// durable record, and re-sending from the recovered watermark converges
// on the uninterrupted final state.
func TestLiveVideoCrashTornTail(t *testing.T) {
	for short := 0; short <= wmRecLen; short++ {
		dir := t.TempDir()
		e, _ := Open(dir)
		inj := faults.New(1)
		inj.Rule(faults.SiteIngestAppend("traffic"),
			faults.Rule{Kind: faults.Crash, At: []int{2}, ShortWrite: short})
		v, err := e.OpenLiveVideo("traffic", liveDS())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := v.AppendFrames(7, inj); err != nil {
			t.Fatalf("short=%d: first append: %v", short, err)
		}
		if _, err := v.AppendFrames(3, inj); !faults.IsCrash(err) {
			t.Fatalf("short=%d: crash not injected: %v", short, err)
		}
		if !v.Dead() {
			t.Fatalf("short=%d: crashed handle not dead", short)
		}
		// Dead handle refuses further appends.
		if _, err := v.AppendFrames(1, nil); err == nil {
			t.Fatalf("short=%d: dead handle accepted an append", short)
		}
		if err := e.Close(); err != nil {
			t.Fatal(err)
		}

		e2, _ := Open(dir)
		v2, err := e2.OpenLiveVideo("traffic", liveDS())
		if err != nil {
			t.Fatalf("short=%d: reopen: %v", short, err)
		}
		// A full torn write (short == wmRecLen) made the second append
		// durable; anything shorter loses it back to watermark 7.
		wantWM, wantRec := int64(7), short
		if short == wmRecLen {
			wantWM, wantRec = 10, 0
		}
		if v2.Watermark() != wantWM {
			t.Fatalf("short=%d: recovered wm=%d, want %d", short, v2.Watermark(), wantWM)
		}
		if int(v2.WatermarkRecovered()) != wantRec {
			t.Fatalf("short=%d: recovered %d torn bytes, want %d", short, v2.WatermarkRecovered(), wantRec)
		}
		// Producer re-sends from the recovered watermark: same final
		// state as an uninterrupted run.
		if wm, err := v2.AppendFrames(int(10-wantWM), nil); err != nil || wm != 10 {
			t.Fatalf("short=%d: re-send: wm=%d err=%v", short, wm, err)
		}
		e3, _ := Open(dir)
		v3, err := e3.OpenLiveVideo("traffic", liveDS())
		if err != nil || v3.Watermark() != 10 {
			t.Fatalf("short=%d: final reopen wm=%d err=%v", short, v3.Watermark(), err)
		}
	}
}

// TestLiveVideoAppendRollback checks the non-crash failure path: a
// transient or permanent write fault rolls the log back so neither the
// file nor the watermark moves, and a retry succeeds from clean state.
func TestLiveVideoAppendRollback(t *testing.T) {
	for _, kind := range []faults.Kind{faults.Transient, faults.Permanent} {
		dir := t.TempDir()
		e, _ := Open(dir)
		inj := faults.New(1)
		inj.Rule(faults.SiteIngestAppend("traffic"), faults.Rule{Kind: kind, At: []int{2}})
		v, err := e.OpenLiveVideo("traffic", liveDS())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := v.AppendFrames(4, inj); err != nil {
			t.Fatal(err)
		}
		fi, _ := os.Stat(wmPath(v.dir))
		before := fi.Size()
		if _, err := v.AppendFrames(6, inj); err == nil {
			t.Fatalf("%v fault did not surface", kind)
		}
		if v.Dead() {
			t.Fatalf("%v fault killed the handle", kind)
		}
		if v.Watermark() != 4 {
			t.Fatalf("%v fault moved the watermark to %d", kind, v.Watermark())
		}
		fi, _ = os.Stat(wmPath(v.dir))
		if fi.Size() != before {
			t.Fatalf("%v fault left the log at %d bytes, want %d", kind, fi.Size(), before)
		}
		if wm, err := v.AppendFrames(6, inj); err != nil || wm != 10 {
			t.Fatalf("retry: wm=%d err=%v", wm, err)
		}
	}
}

// TestLiveVideoBadLog exercises hard open failures: a corrupted header
// and a regressing watermark are writer bugs, not recoverable tears.
func TestLiveVideoBadLog(t *testing.T) {
	dir := t.TempDir()
	e, _ := Open(dir)
	v, err := e.OpenLiveVideo("traffic", liveDS())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.AppendFrames(5, nil); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	path := wmPath(v.dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Header corruption.
	bad := append([]byte(nil), data...)
	bad[0] ^= 0xff
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := mustOpen(t, dir).OpenLiveVideo("traffic", liveDS()); err == nil {
		t.Fatal("corrupt header accepted")
	}

	// A checksum-valid record whose watermark regresses.
	rec := make([]byte, 0, wmRecLen)
	rec = appendWMRecord(rec, 2) // below the durable 5
	if err := os.WriteFile(path, append(append([]byte(nil), data...), rec...), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := mustOpen(t, dir).OpenLiveVideo("traffic", liveDS()); err == nil {
		t.Fatal("regressing watermark accepted")
	}

	// A watermark past the dataset capacity.
	rec = appendWMRecord(rec[:0], 5000)
	if err := os.WriteFile(path, append(append([]byte(nil), data...), rec...), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := mustOpen(t, dir).OpenLiveVideo("traffic", liveDS()); err == nil {
		t.Fatal("past-capacity watermark accepted")
	}
}

func mustOpen(t *testing.T, dir string) *Engine {
	t.Helper()
	e, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return e
}
