// Package storage implements EVA's pluggable storage engine substrate:
// on-disk columnar segments for video tables and append-able
// materialized views for UDF results. It stands in for the paper's
// Petastorm/Parquet layer; the formats are custom binary encodings
// built on the canonical datum encoding in internal/types.
//
// A materialized view tracks two things per UDF signature: the result
// rows, and the set of *processed keys*. The distinction matters
// because a detector may legitimately produce zero detections for a
// frame — the view must still remember that the frame was evaluated,
// or the conditional Apply operator would re-run the UDF forever.
package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"eva/internal/faults"
	"eva/internal/types"
	"eva/internal/vision"
)

// Engine is the storage root. It owns a directory with one
// sub-directory per video table and one file per materialized view.
type Engine struct {
	root string

	mu     sync.Mutex
	videos map[string]*Video // guarded by mu
	views  map[string]*View  // guarded by mu
	inj    *faults.Injector  // guarded by mu
	budget *DiskBudget       // guarded by mu; nil = unbudgeted
	// ranker scores eviction candidates (nil = LRU); onEvict runs after
	// each whole-view eviction with no storage locks held; retryCharge
	// charges virtual-clock backoff before a disk-full retry. All three
	// are installed by the eva layer. guarded by mu.
	ranker      EvictRanker
	onEvict     func(view string)
	retryCharge func(attempt int)

	// evictMu serializes reclaim ladders so concurrent disk-full
	// appends do not race to evict the same views. Never held together
	// with mu or any view lock.
	evictMu sync.Mutex
	// touchSeq hands out the access ordinals behind eviction recency.
	touchSeq atomic.Uint64
}

// Open creates (or reopens) a storage engine rooted at dir.
func Open(dir string) (*Engine, error) {
	for _, sub := range []string{"videos", "views"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("storage: open %s: %w", dir, err)
		}
	}
	return &Engine{root: dir, videos: map[string]*Video{}, views: map[string]*View{}}, nil
}

// Root returns the engine's directory.
func (e *Engine) Root() string { return e.root }

// SetInjector installs the fault injector consulted on every view
// write (nil disables injection). It applies to existing views and to
// views created later.
func (e *Engine) SetInjector(inj *faults.Injector) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.inj = inj
	for _, v := range e.views {
		v.setInjector(inj)
	}
}

// CreateVideo registers a video table backed by the synthetic dataset.
// Frames are materialized to disk segments lazily on first scan.
func (e *Engine) CreateVideo(name string, ds vision.Dataset) (*Video, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	key := strings.ToLower(name)
	if _, dup := e.videos[key]; dup {
		return nil, fmt.Errorf("storage: video %q already exists", name)
	}
	dir := filepath.Join(e.root, "videos", key)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	v := &Video{name: name, dir: dir, ds: ds, segFrames: defaultSegmentFrames}
	e.videos[key] = v
	return v, nil
}

// Video returns the named video table.
func (e *Engine) Video(name string) (*Video, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	v, ok := e.videos[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("storage: unknown video %q", name)
	}
	return v, nil
}

// CreateView creates (or returns the existing) materialized view with
// the given row schema and key columns.
func (e *Engine) CreateView(name string, schema types.Schema, keyCols []string) (*View, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	key := strings.ToLower(name)
	if v, ok := e.views[key]; ok {
		if !v.schema.Equal(schema) {
			return nil, fmt.Errorf("storage: view %q exists with schema %s (want %s)", name, v.schema, schema)
		}
		e.touchView(v)
		return v, nil
	}
	for _, kc := range keyCols {
		if !schema.Has(kc) {
			return nil, fmt.Errorf("storage: view %q: key column %q not in schema %s", name, kc, schema)
		}
	}
	v, err := openView(filepath.Join(e.root, "views", sanitize(key)+".view"), name, schema, keyCols, e.inj, e.budget)
	if err != nil {
		return nil, err
	}
	v.eng = e
	e.touchView(v)
	e.views[key] = v
	return v, nil
}

// View returns the named view, or nil if it does not exist. The lookup
// counts as an access for eviction recency.
func (e *Engine) View(name string) *View {
	e.mu.Lock()
	defer e.mu.Unlock()
	v := e.views[strings.ToLower(name)]
	if v != nil {
		e.touchView(v)
	}
	return v
}

// viewNoTouch is View without the recency bump, for the reclaim ladder
// (the evictor inspecting a victim must not refresh it).
func (e *Engine) viewNoTouch(name string) *View {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.views[strings.ToLower(name)]
}

// Views returns all view names, sorted.
func (e *Engine) Views() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]string, 0, len(e.views))
	for n := range e.views {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// TotalViewFootprint sums the on-disk bytes of all materialized views —
// the storage-overhead metric of §5.2.
func (e *Engine) TotalViewFootprint() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	var total int64
	for _, v := range e.views {
		total += v.Footprint()
	}
	return total
}

// ViewRowCounts snapshots every view's stored row count under one
// engine lock, so a reader racing concurrent view creation sees a
// consistent name set (each count is still that view's own snapshot).
func (e *Engine) ViewRowCounts() map[string]int {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make(map[string]int, len(e.views))
	for n, v := range e.views {
		out[n] = v.Rows()
	}
	return out
}

// Close closes every view's backing file. Idempotent: closing a
// closed engine (or re-closing views) is a no-op.
func (e *Engine) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	var first error
	for _, v := range e.views {
		if err := v.close(); err != nil && first == nil {
			first = err
		}
	}
	for _, vid := range e.videos {
		if err := vid.closeLive(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// DropViews removes all materialized views (used to reset between
// benchmark workloads).
func (e *Engine) DropViews() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	for name, v := range e.views {
		if err := v.close(); err != nil {
			return err
		}
		if err := os.Remove(v.path); err != nil && !os.IsNotExist(err) {
			return err
		}
		e.budget.Drop(v.path)
		for _, side := range []string{cleanPath(v.path), quarPath(v.path), compactPath(v.path), tombPath(v.path)} {
			if err := os.Remove(side); err != nil && !os.IsNotExist(err) {
				return err
			}
			e.budget.Drop(side)
		}
		delete(e.views, name)
	}
	return nil
}

func sanitize(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		case r >= 'A' && r <= 'Z':
			return r + ('a' - 'A')
		default:
			return '_'
		}
	}, name)
}
