package storage

import (
	"testing"

	"eva/internal/types"
)

// fuzzView returns a fresh unpublished view skeleton for replay.
func fuzzView() *View {
	schema := viewSchema()
	v := &View{
		name:      "fuzz",
		schema:    schema.Clone(),
		keyCols:   []string{"id"},
		batch:     types.NewBatch(schema.Clone()),
		rowsByKey: map[string][]int{},
		processed: map[string]struct{}{},
	}
	v.keyIdx = []int{schema.IndexOf("id")}
	return v
}

// FuzzViewReplay throws arbitrary bytes at the view-log replay path.
// The invariants: replay never panics, never claims a valid prefix
// longer than the input, and the prefix it accepts replays to the same
// state when fed back alone (recovery is a fixed point).
func FuzzViewReplay(f *testing.F) {
	// Seed with a well-formed log: header plus one append of each
	// record kind, and a torn copy of the same.
	v := fuzzView()
	rows := types.NewBatch(viewSchema())
	rows.MustAppendRow(types.NewInt(1), types.NewString("car"), types.NewString("a"))
	var payload []byte
	for _, d := range rows.Row(0) {
		payload = d.AppendBinary(payload)
	}
	var key []byte
	key = types.NewInt(2).AppendBinary(key)
	log := v.encodeHeader()
	log = sealRecord(log, recRows, 1, payload)
	log = sealRecord(log, recKeys, 1, key)
	f.Add(log)
	f.Add(log[:len(log)-5])
	f.Add(log[:len(v.encodeHeader())])
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		v1 := fuzzView()
		valid, err := v1.replay(data, 0)
		if err != nil {
			return
		}
		if valid < 0 || valid > len(data) {
			t.Fatalf("valid prefix %d out of range [0,%d]", valid, len(data))
		}
		// Replaying just the accepted prefix must accept all of it and
		// reconstruct the identical state — that is what reopening
		// after truncation does.
		v2 := fuzzView()
		valid2, err := v2.replay(data[:valid], 0)
		if err != nil || valid2 != valid {
			t.Fatalf("prefix replay diverged: valid=%d/%d err=%v", valid2, valid, err)
		}
		if v1.batch.Len() != v2.batch.Len() || len(v1.processed) != len(v2.processed) {
			t.Fatalf("prefix replay state mismatch: rows %d/%d processed %d/%d",
				v1.batch.Len(), v2.batch.Len(), len(v1.processed), len(v2.processed))
		}
	})
}
