package storage

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"eva/internal/faults"
	"eva/internal/types"
)

// corruptRecord flips a byte inside the n-th record's header (0-based)
// so the record fails structurally and salvage must resync past it.
func corruptRecord(t *testing.T, path string, n int) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	off := headerEnd(t, data)
	for i := 0; i < n; i++ {
		end, ok := recordBounds(data, off)
		if !ok {
			t.Fatalf("record %d not found for corruption", i)
		}
		off = end
	}
	data[off] ^= 0xff // record kind byte: structural failure
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// headerEnd returns the offset of the first record in a v2 view log.
func headerEnd(t *testing.T, data []byte) int {
	t.Helper()
	off := 5
	ncols := int(data[off])
	off++
	for i := 0; i < ncols; i++ {
		off += 2 + int(data[off+1])
	}
	nkeys := int(data[off])
	off++
	for i := 0; i < nkeys; i++ {
		off += 1 + int(data[off])
	}
	return off
}

// TestSalvageMultipleHoles: two corrupt records in one log produce two
// quarantined ranges, and every intact record around them survives.
func TestSalvageMultipleHoles(t *testing.T) {
	dir := t.TempDir()
	e, _ := Open(dir)
	v, _ := e.CreateView("det", viewSchema(), []string{"id"})
	for i := 0; i < crashAppends; i++ {
		crashAppend(t, v, i)
	}
	golden := snapshotView(v)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	// Records: [rows0 keys0 rows1 keys1 rows2 keys2 rows3 keys3].
	// Corrupt rows3 then rows1 (descending, so the traversal in
	// corruptRecord never crosses an already-corrupted record); drop
	// the sidecar so the open re-hashes.
	corruptRecord(t, v.path, 6)
	corruptRecord(t, v.path, 2)
	if err := os.Remove(cleanPath(v.path)); err != nil {
		t.Fatal(err)
	}

	e2, _ := Open(dir)
	v2, err := e2.CreateView("det", viewSchema(), []string{"id"})
	if err != nil {
		t.Fatalf("multi-hole salvage failed: %v", err)
	}
	if v2.Rows() != golden.rows-6 {
		t.Errorf("salvaged rows = %d, want %d (two 3-row records lost)", v2.Rows(), golden.rows-6)
	}
	q := v2.Quarantine()
	if q == nil || len(q.Ranges) != 2 {
		t.Fatalf("quarantine = %+v, want two lost ranges", q)
	}
	if q.Ranges[0].Hi > q.Ranges[1].Lo {
		t.Errorf("quarantine ranges out of order: %+v", q.Ranges)
	}
	// Salvage preserves appendability: the view keeps taking writes,
	// and re-appending the lost rows converges (idempotent per key).
	crashAppend(t, v2, 1)
	crashAppend(t, v2, 3)
	if v2.Rows() != golden.rows {
		t.Errorf("after re-append rows = %d, want %d", v2.Rows(), golden.rows)
	}
	if err := e2.Close(); err != nil {
		t.Fatal(err)
	}
	e3, _ := Open(dir)
	v3, err := e3.CreateView("det", viewSchema(), []string{"id"})
	if err != nil {
		t.Fatal(err)
	}
	got := snapshotView(v3)
	if got.rows != golden.rows || got.processed != golden.processed {
		t.Errorf("reopen after re-append: rows=%d keys=%d, want %d/%d",
			got.rows, got.processed, golden.rows, golden.processed)
	}
}

// TestHeaderCorruptionTotalLoss: an unreadable header quarantines the
// whole generation; the view restarts empty but stays usable.
func TestHeaderCorruptionTotalLoss(t *testing.T) {
	dir := t.TempDir()
	e, _ := Open(dir)
	v, _ := e.CreateView("det", viewSchema(), []string{"id"})
	crashAppend(t, v, 0)
	oldSize := v.Footprint()
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(v.path)
	if err != nil {
		t.Fatal(err)
	}
	data[0] ^= 0xff // magic
	if err := os.WriteFile(v.path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	e2, _ := Open(dir)
	v2, err := e2.CreateView("det", viewSchema(), []string{"id"})
	if err != nil {
		t.Fatalf("header corruption must salvage, not fail: %v", err)
	}
	if v2.Rows() != 0 || v2.ProcessedCount() != 0 {
		t.Errorf("total loss kept rows=%d keys=%d", v2.Rows(), v2.ProcessedCount())
	}
	q := v2.Quarantine()
	if q == nil || len(q.Ranges) != 1 || q.Ranges[0].Hi != oldSize {
		t.Fatalf("quarantine = %+v, want whole old generation [0,%d)", q, oldSize)
	}
	// The fresh log works: appends land and survive a clean reopen.
	crashAppend(t, v2, 0)
	if err := e2.Close(); err != nil {
		t.Fatal(err)
	}
	e3, _ := Open(dir)
	v3, err := e3.CreateView("det", viewSchema(), []string{"id"})
	if err != nil {
		t.Fatal(err)
	}
	if v3.Rows() != 3 {
		t.Errorf("fresh generation lost rows: %d", v3.Rows())
	}
}

// TestQuarantineManifestRoundTrip: the manifest survives encode/decode
// and rejects tampering.
func TestQuarantineManifestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.view")
	q := &Quarantine{Ranges: []LostRange{{Lo: 10, Hi: 42}, {Lo: 100, Hi: 107}}}
	writeQuarManifest(path, q)
	got := readQuarManifest(path)
	if len(got) != 2 || got[0] != q.Ranges[0] || got[1] != q.Ranges[1] {
		t.Fatalf("round trip = %+v, want %+v", got, q.Ranges)
	}
	// Tampered manifests are ignored, not trusted.
	data, err := os.ReadFile(quarPath(path))
	if err != nil {
		t.Fatal(err)
	}
	data[6] ^= 0xff
	if err := os.WriteFile(quarPath(path), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if got := readQuarManifest(path); got != nil {
		t.Errorf("tampered manifest decoded to %+v", got)
	}
	// An empty quarantine removes the manifest.
	writeQuarManifest(path, nil)
	if _, err := os.Stat(quarPath(path)); !os.IsNotExist(err) {
		t.Error("nil quarantine left a manifest behind")
	}
}

// TestSurvivedIDRanges: processed keys merge into closed id ranges;
// non-integer or id-less key shapes refuse to make a claim.
func TestSurvivedIDRanges(t *testing.T) {
	dir := t.TempDir()
	e, _ := Open(dir)
	v, _ := e.CreateView("det", viewSchema(), []string{"id"})
	var keys [][]types.Datum
	for _, id := range []int64{0, 1, 2, 5, 7, 8, 3} {
		keys = append(keys, []types.Datum{types.NewInt(id)})
	}
	if _, err := v.Append(nil, keys); err != nil {
		t.Fatal(err)
	}
	ranges, ok := v.SurvivedIDRanges()
	if !ok {
		t.Fatal("id-keyed view made no survival claim")
	}
	want := []IDRange{{0, 3}, {5, 5}, {7, 8}}
	if len(ranges) != len(want) {
		t.Fatalf("ranges = %+v, want %+v", ranges, want)
	}
	for i := range want {
		if ranges[i] != want[i] {
			t.Fatalf("ranges = %+v, want %+v", ranges, want)
		}
	}

	// A view keyed by a non-id column cannot claim id ranges.
	sch := types.MustSchema(
		types.Column{Name: "bbox", Kind: types.KindString},
		types.Column{Name: "out", Kind: types.KindString},
	)
	v2, err := e.CreateView("scalar", sch, []string{"bbox"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v2.Append(nil, [][]types.Datum{{types.NewString("b0")}}); err != nil {
		t.Fatal(err)
	}
	if _, ok := v2.SurvivedIDRanges(); ok {
		t.Error("bbox-keyed view claimed id ranges")
	}
}

// TestSalvageTornTailAfterHole: a mid-log hole plus a torn tail in the
// same file — the hole quarantines, the tail truncates, both coexist.
func TestSalvageTornTailAfterHole(t *testing.T) {
	dir := t.TempDir()
	e, _ := Open(dir)
	v, _ := e.CreateView("det", viewSchema(), []string{"id"})
	for i := 0; i < 3; i++ {
		crashAppend(t, v, i)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	corruptRecord(t, v.path, 2) // rows1
	data, err := os.ReadFile(v.path)
	if err != nil {
		t.Fatal(err)
	}
	// Cut the final record short (torn tail) and drop the sidecar.
	if err := os.WriteFile(v.path, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(cleanPath(v.path)); err != nil {
		t.Fatal(err)
	}

	e2, _ := Open(dir)
	v2, err := e2.CreateView("det", viewSchema(), []string{"id"})
	if err != nil {
		t.Fatal(err)
	}
	// Lost: rows1 (3 rows, hole) and keys2 (torn tail). Kept: rows0,
	// keys0, keys1, rows2.
	if v2.Rows() != 6 {
		t.Errorf("rows = %d, want 6", v2.Rows())
	}
	if q := v2.Quarantine(); q == nil || len(q.Ranges) != 1 {
		t.Errorf("quarantine = %+v, want the mid-log hole only", q)
	}
	if v2.RecoveredBytes() == 0 {
		t.Error("torn tail not truncated")
	}
}

// TestDropViewsRemovesQuarantineSidecars: DropViews leaves no .quar or
// .compact debris behind.
func TestDropViewsRemovesQuarantineSidecars(t *testing.T) {
	dir := t.TempDir()
	e, _ := Open(dir)
	v, _ := e.CreateView("det", viewSchema(), []string{"id"})
	crashAppend(t, v, 0)
	writeQuarManifest(v.path, &Quarantine{Ranges: []LostRange{{Lo: 1, Hi: 2}}})
	if err := os.WriteFile(compactPath(v.path), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := e.DropViews(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{v.path, cleanPath(v.path), quarPath(v.path), compactPath(v.path)} {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Errorf("DropViews left %s behind", filepath.Base(p))
		}
	}
}

// TestResyncRejectsFalsePositives: resynchronization must land on a
// checksum-valid record, not on plausible-looking garbage.
func TestResyncRejectsFalsePositives(t *testing.T) {
	// A buffer of structurally plausible but checksum-less bytes.
	junk := bytes.Repeat([]byte{recRows, 1, 0, 0, 0, 4, 0, 0, 0}, 8)
	if got := resyncRecord(junk, 0); got != -1 {
		t.Errorf("resync accepted junk at %d", got)
	}
	// A real record embedded mid-buffer is found exactly.
	rec := sealRecord(nil, recKeys, 0, nil)
	data := append(append([]byte{0xaa, 0xbb, 0xcc}, rec...), 0xdd)
	if got := resyncRecord(data, 0); got != 3 {
		t.Errorf("resync = %d, want 3", got)
	}
}

// TestCompactCrashLeavesOldGeneration: a simulated kill mid-compaction
// leaves the old generation authoritative; the next open discards the
// scratch file and rebuilds the pre-compaction state.
func TestCompactCrashLeavesOldGeneration(t *testing.T) {
	dir := t.TempDir()
	e, _ := Open(dir)
	inj := faults.New(7)
	inj.Rule(faults.SiteViewCompact("det"), faults.Rule{Kind: faults.Crash, At: []int{1}, ShortWrite: 9})
	e.SetInjector(inj)
	v, _ := e.CreateView("det", viewSchema(), []string{"id"})
	for i := 0; i < 3; i++ {
		crashAppend(t, v, i)
	}
	golden := snapshotView(v)

	if _, err := v.Compact(); err == nil {
		t.Fatal("compact crash unexpectedly succeeded")
	} else if !faults.IsCrash(err) {
		t.Fatalf("compact error = %v, want injected crash", err)
	}
	if _, err := os.Stat(compactPath(v.path)); err != nil {
		t.Fatal("crash mid-compaction left no scratch file (wanted a torn one)")
	}
	// The killed process's view is dead in this process...
	if _, err := v.Append(mkRows(99), nil); err == nil {
		t.Fatal("dead view accepted an append")
	}
	// ...but the old generation is untouched: reopen converges.
	e2, _ := Open(dir)
	v2, err := e2.CreateView("det", viewSchema(), []string{"id"})
	if err != nil {
		t.Fatal(err)
	}
	got := snapshotView(v2)
	if got.rows != golden.rows || got.processed != golden.processed || !bytes.Equal(got.data, golden.data) {
		t.Fatalf("post-crash reopen diverged: rows=%d keys=%d", got.rows, got.processed)
	}
	if _, err := os.Stat(compactPath(v2.path)); !os.IsNotExist(err) {
		t.Error("reopen did not discard the scratch generation")
	}
	// And compaction retries cleanly (fresh draw, no rule firing).
	if _, err := v2.Compact(); err != nil {
		t.Fatalf("retry compact: %v", err)
	}
}

// TestCompactTransientFaultRetries: a transient compaction fault keeps
// the old generation and the live handle; the retry succeeds.
func TestCompactTransientFaultRetries(t *testing.T) {
	dir := t.TempDir()
	e, _ := Open(dir)
	inj := faults.New(3)
	inj.Rule(faults.SiteViewCompact("det"), faults.Rule{Kind: faults.Transient, At: []int{1}})
	e.SetInjector(inj)
	v, _ := e.CreateView("det", viewSchema(), []string{"id"})
	crashAppend(t, v, 0)
	golden := snapshotView(v)

	if _, err := v.Compact(); err == nil {
		t.Fatal("transient compact fault did not surface")
	}
	if _, err := os.Stat(compactPath(v.path)); !os.IsNotExist(err) {
		t.Error("failed compaction left a scratch file")
	}
	if got := snapshotView(v); got.rows != golden.rows {
		t.Errorf("failed compaction changed state: rows=%d", got.rows)
	}
	res, err := v.Compact()
	if err != nil {
		t.Fatalf("retry compact: %v", err)
	}
	if res.BytesAfter == 0 || v.Quarantine() != nil {
		t.Errorf("retry compact result = %+v, quar = %+v", res, v.Quarantine())
	}
	// The view still appends after swapping generations.
	crashAppend(t, v, 1)
	if v.Rows() != golden.rows+3 {
		t.Errorf("append after compact: rows=%d", v.Rows())
	}
}
