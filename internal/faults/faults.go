// Package faults is EVA's deterministic fault-injection framework.
// An Injector is seeded once and thereafter makes every injection
// decision from its own PRNG state and per-site call counters — never
// from wall time — so a (seed, workload) pair replays the exact same
// fault schedule on every machine. The resilience machinery it
// exercises lives next to the fault sites: UDF retry and circuit
// breaking in internal/udf, crash-safe view appends in
// internal/storage, and query deadlines in internal/exec.
//
// Sites are hierarchical strings ("udf:yolotiny",
// "view:write:udf_x_frame"). Rules attach to an exact site or, with a
// trailing "*", to every site sharing the prefix. A nil *Injector is
// valid everywhere and injects nothing, so production call sites need
// no guards.
package faults

import (
	"errors"
	"fmt"
	"strings"
	"sync"
)

// Kind classifies an injected fault by how the victim may react.
//
// lint:exhaustive
type Kind int

// Fault kinds.
const (
	// Transient faults model recoverable blips (model server hiccup,
	// EAGAIN on a write): the victim should retry with backoff.
	Transient Kind = iota
	// Permanent faults model persistent breakage (model crashed, disk
	// full): retrying is futile and the error must surface.
	Permanent
	// Crash faults model a process kill mid-operation. Storage write
	// sites translate them into short (torn) writes; the operation
	// must not apply any in-memory effects.
	Crash
)

// String returns the display name.
func (k Kind) String() string {
	switch k {
	case Transient:
		return "transient"
	case Permanent:
		return "permanent"
	case Crash:
		return "crash"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Fault is the error injected at a fault site.
type Fault struct {
	Site string // the site that fired
	Kind Kind
	Call int // 1-based ordinal of the call at the site
	// Short is the number of payload bytes a write-site crash lets
	// through before the simulated kill (meaningful for Crash only).
	Short int
}

// Error implements error.
func (f *Fault) Error() string {
	return fmt.Sprintf("injected %s fault at %s (call %d)", f.Kind, f.Site, f.Call)
}

// IsTransient reports whether err carries a transient injected fault.
func IsTransient(err error) bool {
	var f *Fault
	return errors.As(err, &f) && f.Kind == Transient
}

// IsCrash reports whether err carries a crash injected fault.
func IsCrash(err error) bool {
	var f *Fault
	return errors.As(err, &f) && f.Kind == Crash
}

// AsFault extracts the injected fault from an error chain.
func AsFault(err error) (*Fault, bool) {
	var f *Fault
	if errors.As(err, &f) {
		return f, true
	}
	return nil, false
}

// Rule configures when a site injects. A rule fires on a call when the
// call's 1-based ordinal is listed in At, or — when At is empty — with
// probability Prob drawn from the injector's seeded PRNG. Limit caps
// the number of times the rule fires (0 = unlimited).
type Rule struct {
	Kind Kind
	Prob float64
	At   []int
	// Limit caps total injections from this rule; 0 means unlimited.
	Limit int
	// ShortWrite is the number of payload bytes to let through before
	// a Crash fault at a write site; it is clamped to the payload.
	ShortWrite int

	fired int
}

// Event records one injection, for assertions and sweep reports.
type Event struct {
	Site string
	Kind Kind
	Call int
}

// siteRule is one registered rule with its site pattern. Rules are
// kept in registration order: probabilistic rules consume PRNG draws,
// so a deterministic match order is part of the replay contract.
type siteRule struct {
	pat string
	r   *Rule
}

// Injector decides fault injection deterministically. The zero value
// and the nil pointer inject nothing.
type Injector struct {
	mu    sync.Mutex
	rng   uint64         // splitmix64 state, guarded by mu
	rules []siteRule     // guarded by mu; registration order
	calls map[string]int // guarded by mu
	log   []Event        // guarded by mu
}

// New returns an injector whose probabilistic decisions derive only
// from seed and the deterministic order of site calls.
func New(seed uint64) *Injector {
	return &Injector{rng: seed, calls: map[string]int{}}
}

// Rule attaches a rule to a site. A site ending in "*" matches every
// site that starts with the prefix before the star.
func (i *Injector) Rule(site string, r Rule) {
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.calls == nil {
		i.calls = map[string]int{}
	}
	rc := r
	i.rules = append(i.rules, siteRule{pat: site, r: &rc})
}

// next draws the next PRNG value (splitmix64; Steele et al. 2014).
// Callers must hold mu.
func (i *Injector) nextLocked() uint64 {
	i.rng += 0x9e3779b97f4a7c15
	z := i.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// nextFloat draws a uniform float in [0, 1). Callers must hold mu.
func (i *Injector) nextFloatLocked() float64 {
	return float64(i.nextLocked()>>11) / float64(1<<53)
}

// matches reports whether the pattern covers the site (exact, or
// prefix when the pattern ends in "*").
func matches(pat, site string) bool {
	if n := len(pat); n > 0 && pat[n-1] == '*' {
		return strings.HasPrefix(site, pat[:n-1])
	}
	return pat == site
}

// Check consults the site's rules and returns an injected *Fault or
// nil. Every call advances the site's ordinal, whether or not a rule
// fires, so scripted At ordinals are stable under added rules.
func (i *Injector) Check(site string) error {
	f := i.decide(site)
	if f == nil {
		return nil
	}
	return f
}

// CheckWrite is Check for write sites carrying an n-byte payload. For
// Crash faults it returns the number of payload bytes the torn write
// lets through (rule.ShortWrite clamped to n; a scripted value past
// the payload end degrades to a full write followed by the kill).
func (i *Injector) CheckWrite(site string, n int) (short int, err error) {
	f := i.decide(site)
	if f == nil {
		return n, nil
	}
	if f.Kind == Crash {
		s := f.Short
		if s > n {
			s = n
		}
		if s < 0 {
			s = 0
		}
		f.Short = s
		return s, f
	}
	return 0, f
}

// decide runs the rule machinery for one call at a site.
func (i *Injector) decide(site string) *Fault {
	if i == nil {
		return nil
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	if len(i.rules) == 0 {
		return nil
	}
	if i.calls == nil {
		i.calls = map[string]int{}
	}
	i.calls[site]++
	call := i.calls[site]
	for _, sr := range i.rules {
		if !matches(sr.pat, site) {
			continue
		}
		r := sr.r
		if r.Limit > 0 && r.fired >= r.Limit {
			continue
		}
		hit := false
		if len(r.At) > 0 {
			for _, at := range r.At {
				if at == call {
					hit = true
					break
				}
			}
		} else if r.Prob > 0 {
			hit = i.nextFloatLocked() < r.Prob
		}
		if !hit {
			continue
		}
		r.fired++
		i.log = append(i.log, Event{Site: site, Kind: r.Kind, Call: call})
		return &Fault{Site: site, Kind: r.Kind, Call: call, Short: r.ShortWrite}
	}
	return nil
}

// Calls returns how many times the site was consulted.
func (i *Injector) Calls(site string) int {
	if i == nil {
		return 0
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.calls[site]
}

// Events returns a copy of the injection log in firing order.
func (i *Injector) Events() []Event {
	if i == nil {
		return nil
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	return append([]Event(nil), i.log...)
}

// Injected returns the total number of injections so far.
func (i *Injector) Injected() int {
	if i == nil {
		return 0
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	return len(i.log)
}

// Site name constructors shared by the engine's fault sites, so tests
// and production code cannot drift apart on spelling.

// SiteUDF is the evaluation site of a physical model.
func SiteUDF(model string) string { return "udf:" + strings.ToLower(model) }

// SiteViewWrite is the log-append site of a materialized view.
func SiteViewWrite(view string) string { return "view:write:" + strings.ToLower(view) }

// SiteDeadline is the query-deadline site checked by the executor.
const SiteDeadline = "exec:deadline"
