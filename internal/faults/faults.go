// Package faults is EVA's deterministic fault-injection framework.
// An Injector is seeded once and thereafter makes every injection
// decision from a pure hash of the *call's identity* — never from wall
// time, and never from a shared PRNG stream — so a (seed, workload)
// pair replays the exact same fault schedule on every machine, at any
// execution concurrency. The resilience machinery it exercises lives
// next to the fault sites: UDF retry and circuit breaking in
// internal/udf, crash-safe view appends in internal/storage, and query
// deadlines in internal/exec.
//
// # Call-identity keying
//
// Early versions drew every probabilistic decision from one seeded
// splitmix64 stream, which made the *consumption order* of draws part
// of the replay contract and forced the parallel executor to pin
// itself serial whenever an injector was attached. Decisions are now a
// pure function
//
//	splitmix64(seed, site, id, occurrence, attempt, rule)
//
// of which call is being made, not of when goroutines happen to make
// it:
//
//   - id is the caller-supplied logical identity of the operation
//     (the executor's per-row invocation index for UDF eval sites, the
//     pre-append log offset — the LSN — for view-write sites, the pull
//     ordinal for the deadline site);
//   - occurrence counts how many times this (site, id) pair has been
//     attempted from scratch, so a replanned query or a rolled-back
//     write retries against a *fresh* draw instead of deterministically
//     re-hitting the same fault forever;
//   - attempt is the 1-based retry attempt within one occurrence
//     (CheckEval sites), letting scripted At rules target "the second
//     attempt of any invocation".
//
// Sites are hierarchical strings ("udf:yolotiny",
// "view:write:udf_x_frame"). Rules attach to an exact site or, with a
// trailing "*", to every site sharing the prefix. A nil *Injector is
// valid everywhere and injects nothing, so production call sites need
// no guards.
//
// One ordering caveat survives: Rule.Limit caps firings in *arrival
// order*, so a Limit on a site checked concurrently caps the same
// number of firings but not necessarily the same set. Scripted
// schedules that need exact replay under concurrency should use At,
// Prob, or serial sites instead.
package faults

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"eva/internal/xxhash"
)

// Kind classifies an injected fault by how the victim may react.
//
// lint:exhaustive
type Kind int

// Fault kinds.
const (
	// Transient faults model recoverable blips (model server hiccup,
	// EAGAIN on a write): the victim should retry with backoff.
	Transient Kind = iota
	// Permanent faults model persistent breakage (model crashed, disk
	// full): retrying is futile and the error must surface.
	Permanent
	// Crash faults model a process kill mid-operation. Storage write
	// sites translate them into short (torn) writes; the operation
	// must not apply any in-memory effects.
	Crash
)

// String returns the display name.
func (k Kind) String() string {
	switch k {
	case Transient:
		return "transient"
	case Permanent:
		return "permanent"
	case Crash:
		return "crash"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Fault is the error injected at a fault site.
type Fault struct {
	Site string // the site that fired
	Kind Kind
	// Call is the 1-based retry attempt for CheckEval sites, and the
	// 1-based arrival ordinal of the call for Check/CheckWrite sites.
	// Both are deterministic under concurrent execution (attempts are
	// per-invocation; Check/CheckWrite sites are consulted serially).
	Call int
	// Short is the number of payload bytes a write-site crash lets
	// through before the simulated kill (meaningful for Crash only).
	Short int
}

// Error implements error.
func (f *Fault) Error() string {
	return fmt.Sprintf("injected %s fault at %s (call %d)", f.Kind, f.Site, f.Call)
}

// IsTransient reports whether err carries a transient injected fault.
func IsTransient(err error) bool {
	var f *Fault
	return errors.As(err, &f) && f.Kind == Transient
}

// IsCrash reports whether err carries a crash injected fault.
func IsCrash(err error) bool {
	var f *Fault
	return errors.As(err, &f) && f.Kind == Crash
}

// AsFault extracts the injected fault from an error chain.
func AsFault(err error) (*Fault, bool) {
	var f *Fault
	if errors.As(err, &f) {
		return f, true
	}
	return nil, false
}

// Rule configures when a site injects. A rule fires on a call when the
// call's 1-based ordinal — the retry attempt for CheckEval sites, the
// site arrival ordinal for Check/CheckWrite sites — is listed in At,
// or, when At is empty, with probability Prob derived from the
// injector's seed and the call's identity. Limit caps the number of
// times the rule fires (0 = unlimited; capped in arrival order, see
// the package comment).
type Rule struct {
	Kind Kind
	Prob float64
	At   []int
	// Limit caps total injections from this rule; 0 means unlimited.
	Limit int
	// ShortWrite is the number of payload bytes to let through before
	// a Crash fault at a write site; it is clamped to the payload.
	ShortWrite int

	fired int
}

// Event records one injection, for assertions and sweep reports.
// Events are appended in firing order, which is racy for sites checked
// concurrently; compare EventsSorted across runs instead.
type Event struct {
	Site string
	Kind Kind
	Call int
	// ID is the logical identity of the faulted call (invocation index
	// for eval sites, LSN for write sites, pull ordinal for ordinal
	// sites).
	ID uint64
}

// siteRule is one registered rule with its site pattern. Rules are
// kept in registration order: the rule's index is mixed into the
// decision hash, so a deterministic match order is part of the replay
// contract.
type siteRule struct {
	pat string
	r   *Rule
}

// occKey identifies one logical operation at one site for the
// occurrence counters.
type occKey struct {
	site string
	id   uint64
}

// Injector decides fault injection deterministically. The zero value
// and the nil pointer inject nothing.
type Injector struct {
	mu    sync.Mutex
	seed  uint64            // immutable after New
	rules []siteRule        // guarded by mu; registration order
	calls map[string]int    // guarded by mu; per-site arrival ordinals
	occ   map[occKey]uint64 // guarded by mu; per-(site,id) occurrences
	siteH map[string]uint64 // guarded by mu; memoized site hashes
	log   []Event           // guarded by mu
}

// New returns an injector whose probabilistic decisions derive only
// from seed and the identities of the calls made against it.
func New(seed uint64) *Injector {
	return &Injector{seed: seed}
}

// Rule attaches a rule to a site. A site ending in "*" matches every
// site that starts with the prefix before the star.
func (i *Injector) Rule(site string, r Rule) {
	i.mu.Lock()
	defer i.mu.Unlock()
	rc := r
	i.rules = append(i.rules, siteRule{pat: site, r: &rc})
}

// splitmix64 is the finalizer of Steele et al. 2014 — a full-avalanche
// bijection on uint64, chained below to fold the decision coordinates
// into one uniform draw.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// drawLocked returns the uniform [0,1) decision value for one
// (site, id, occurrence, attempt, rule) coordinate. Callers hold mu.
func (i *Injector) drawLocked(site string, id, occurrence uint64, attempt, ruleIdx int) float64 {
	h := splitmix64(i.seed ^ i.siteHashLocked(site))
	h = splitmix64(h ^ id)
	h = splitmix64(h ^ occurrence)
	h = splitmix64(h ^ uint64(attempt))
	h = splitmix64(h ^ uint64(ruleIdx))
	return float64(h>>11) / float64(1<<53)
}

func (i *Injector) siteHashLocked(site string) uint64 {
	if h, ok := i.siteH[site]; ok {
		return h
	}
	if i.siteH == nil {
		i.siteH = map[string]uint64{}
	}
	h := xxhash.Sum64([]byte(site), 0)
	i.siteH[site] = h
	return h
}

// matches reports whether the pattern covers the site (exact, or
// prefix when the pattern ends in "*").
func matches(pat, site string) bool {
	if n := len(pat); n > 0 && pat[n-1] == '*' {
		return strings.HasPrefix(site, pat[:n-1])
	}
	return pat == site
}

// Check consults the site's rules for an *ordinal-keyed* site: every
// call advances the site's 1-based arrival ordinal (whether or not a
// rule fires), At matches the ordinal, and probabilistic decisions are
// keyed by it. Use it only for sites that are consulted serially (the
// executor's deadline guard); concurrent sites need CheckEval's
// caller-supplied identity.
func (i *Injector) Check(site string) error {
	if i == nil {
		return nil
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	call := i.arriveLocked(site)
	f := i.decideLocked(site, uint64(call), 0, call, call)
	if f == nil {
		return nil
	}
	return f
}

// CheckEval consults the site's rules for one retry attempt of one
// logical invocation. id is the caller-assigned identity of the
// invocation; attempt is 1-based within it. At rules match the attempt
// number. Each fresh start of an invocation (attempt 1) opens a new
// occurrence of (site, id), so a replanned query redraws its schedule
// instead of deterministically re-failing.
func (i *Injector) CheckEval(site string, id uint64, attempt int) error {
	if i == nil {
		return nil
	}
	if attempt < 1 {
		attempt = 1
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	i.arriveLocked(site)
	k := occKey{site: site, id: id}
	if i.occ == nil {
		i.occ = map[occKey]uint64{}
	}
	if attempt == 1 {
		i.occ[k]++
	}
	occurrence := i.occ[k]
	if occurrence == 0 { // attempt > 1 without an opener; tolerate
		occurrence = 1
		i.occ[k] = 1
	}
	f := i.decideLocked(site, id, occurrence, attempt, attempt)
	if f == nil {
		return nil
	}
	return f
}

// CheckWrite is the write-site check, carrying an n-byte payload at
// log position lsn. At rules match the site's arrival ordinal (write
// sites are consulted serially, so scripted kill points stay stable);
// probabilistic decisions are keyed by the LSN plus a per-(site, LSN)
// occurrence, so a rolled-back append that retries at the same log
// position draws afresh. For Crash faults it returns the number of
// payload bytes the torn write lets through (rule.ShortWrite clamped
// to n; a scripted value past the payload end degrades to a full write
// followed by the kill).
func (i *Injector) CheckWrite(site string, lsn uint64, n int) (short int, err error) {
	if i == nil {
		return n, nil
	}
	i.mu.Lock()
	call := i.arriveLocked(site)
	k := occKey{site: site, id: lsn}
	if i.occ == nil {
		i.occ = map[occKey]uint64{}
	}
	i.occ[k]++
	f := i.decideLocked(site, lsn, i.occ[k], call, call)
	i.mu.Unlock()
	if f == nil {
		return n, nil
	}
	if f.Kind == Crash {
		s := f.Short
		if s > n {
			s = n
		}
		if s < 0 {
			s = 0
		}
		f.Short = s
		return s, f
	}
	return 0, f
}

// arriveLocked advances and returns the site's 1-based arrival
// ordinal. Callers hold mu.
func (i *Injector) arriveLocked(site string) int {
	if i.calls == nil {
		i.calls = map[string]int{}
	}
	i.calls[site]++
	return i.calls[site]
}

// decideLocked runs the rule machinery for one call at a site. at is
// the ordinal matched against At rules and recorded as the fault's
// Call; (id, occurrence, attempt) key the probabilistic draw. Callers
// hold mu.
func (i *Injector) decideLocked(site string, id, occurrence uint64, attempt, at int) *Fault {
	if len(i.rules) == 0 {
		return nil
	}
	for ri, sr := range i.rules {
		if !matches(sr.pat, site) {
			continue
		}
		r := sr.r
		if r.Limit > 0 && r.fired >= r.Limit {
			continue
		}
		hit := false
		if len(r.At) > 0 {
			for _, want := range r.At {
				if want == at {
					hit = true
					break
				}
			}
		} else if r.Prob > 0 {
			hit = i.drawLocked(site, id, occurrence, attempt, ri) < r.Prob
		}
		if !hit {
			continue
		}
		r.fired++
		i.log = append(i.log, Event{Site: site, Kind: r.Kind, Call: at, ID: id})
		return &Fault{Site: site, Kind: r.Kind, Call: at, Short: r.ShortWrite}
	}
	return nil
}

// Calls returns how many times the site was consulted.
func (i *Injector) Calls(site string) int {
	if i == nil {
		return 0
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.calls[site]
}

// Events returns a copy of the injection log in firing order. Firing
// order is racy for sites checked concurrently; use EventsSorted when
// comparing schedules across runs.
func (i *Injector) Events() []Event {
	if i == nil {
		return nil
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	return append([]Event(nil), i.log...)
}

// EventsSorted returns the injection log in canonical order — sorted
// by site, identity, call and kind — which is identical across runs of
// the same (seed, workload) at any concurrency, even though arrival
// order is not. Differential harnesses compare this form.
func (i *Injector) EventsSorted() []Event {
	evs := i.Events()
	sort.Slice(evs, func(a, b int) bool {
		if evs[a].Site != evs[b].Site {
			return evs[a].Site < evs[b].Site
		}
		if evs[a].ID != evs[b].ID {
			return evs[a].ID < evs[b].ID
		}
		if evs[a].Call != evs[b].Call {
			return evs[a].Call < evs[b].Call
		}
		return evs[a].Kind < evs[b].Kind
	})
	return evs
}

// Injected returns the total number of injections so far.
func (i *Injector) Injected() int {
	if i == nil {
		return 0
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	return len(i.log)
}

// Site name constants and constructors shared by the engine's fault
// sites, so tests and production code cannot drift apart on spelling.
// The evalint faultsite analyzer statically resolves every site
// literal reaching Rule/Check/CheckEval/CheckWrite against this
// registry: Site*Prefix constants open a site family, the remaining
// Site* constants are exact sites or wildcard patterns, and a literal
// outside the registry is a typo that would silently never inject.
const (
	// SiteUDFPrefix opens the evaluation-site family of physical
	// models ("udf:<model>").
	SiteUDFPrefix = "udf:"
	// SiteViewWritePrefix opens the log-append-site family of
	// materialized views ("view:write:<view>").
	SiteViewWritePrefix = "view:write:"
	// SiteDeadline is the query-deadline site checked by the executor.
	SiteDeadline = "exec:deadline"
	// SiteIngestAppendPrefix opens the live-append-site family of
	// streaming video tables ("ingest:append:<table>"): the durable
	// watermark-log write that makes ingested frames visible.
	SiteIngestAppendPrefix = "ingest:append:"
	// SiteIngestCheckpointPrefix opens the checkpoint-write-site family
	// of standing queries ("ingest:checkpoint:<query>"): the durable
	// record of the last LSN a standing query has fully processed.
	SiteIngestCheckpointPrefix = "ingest:checkpoint:"
	// SiteIngestNotifyPrefix opens the alert-delivery-site family of
	// standing queries ("ingest:notify:<query>"): the (simulated)
	// downstream notification of a completed alert window.
	SiteIngestNotifyPrefix = "ingest:notify:"
	// SiteViewScrubPrefix opens the scrub-pass-site family of
	// materialized views ("view:scrub:<view>"): the background
	// scrubber's full checksum re-verification of a view log.
	SiteViewScrubPrefix = "view:scrub:"
	// SiteViewRepairPrefix opens the repair-site family of materialized
	// views ("view:repair:<view>"): the symbolic recomputation of a
	// quarantined key range through the reuse machinery.
	SiteViewRepairPrefix = "view:repair:"
	// SiteViewCompactPrefix opens the compaction-site family of
	// materialized views ("view:compact:<view>"): the generational
	// rewrite of a fragmented or repaired view log.
	SiteViewCompactPrefix = "view:compact:"
	// SiteViewEvictPrefix opens the eviction-site family of
	// materialized views ("view:evict:<view>"): the tombstone write,
	// log deletion and fresh-log rebirth that reclaim a cold view's
	// disk footprint. A Crash rule here simulates dying mid-eviction.
	SiteViewEvictPrefix = "view:evict:"
	// SiteDiskFullPrefix opens the out-of-space family
	// ("disk:full:<write-site>"): every durable write site has a
	// shadow member here, so a rule can make a specific log's append,
	// compaction or checkpoint write fail with ENOSPC without also
	// corrupting it the way the underlying write-site family does.
	SiteDiskFullPrefix = "disk:full:"
	// SiteAny is the wildcard rule pattern matching every site.
	SiteAny = "*"
	// SiteUDFAny is the rule pattern matching every model site.
	SiteUDFAny = SiteUDFPrefix + "*"
	// SiteViewWriteAny is the rule pattern matching every view-write
	// site.
	SiteViewWriteAny = SiteViewWritePrefix + "*"
	// SiteIngestAny is the rule pattern matching every ingest-path site
	// (append, checkpoint and notify families share the "ingest:" stem).
	SiteIngestAny = "ingest:*"
	// SiteIngestAppendAny matches every live-append site.
	SiteIngestAppendAny = SiteIngestAppendPrefix + "*"
	// SiteIngestCheckpointAny matches every checkpoint-write site.
	SiteIngestCheckpointAny = SiteIngestCheckpointPrefix + "*"
	// SiteIngestNotifyAny matches every alert-delivery site.
	SiteIngestNotifyAny = SiteIngestNotifyPrefix + "*"
	// SiteViewScrubAny matches every scrub-pass site.
	SiteViewScrubAny = SiteViewScrubPrefix + "*"
	// SiteViewRepairAny matches every view-repair site.
	SiteViewRepairAny = SiteViewRepairPrefix + "*"
	// SiteViewCompactAny matches every view-compaction site.
	SiteViewCompactAny = SiteViewCompactPrefix + "*"
	// SiteViewEvictAny matches every view-eviction site.
	SiteViewEvictAny = SiteViewEvictPrefix + "*"
	// SiteDiskFullAny matches every shadow out-of-space site.
	SiteDiskFullAny = SiteDiskFullPrefix + "*"
)

// Sites is the central registry of fault-site families. Exact lists
// standalone sites; Prefixes lists the open families whose members are
// built by the Site* constructors below.
var Sites = struct {
	Exact    []string
	Prefixes []string
}{
	Exact: []string{SiteDeadline},
	Prefixes: []string{
		SiteUDFPrefix, SiteViewWritePrefix,
		SiteViewScrubPrefix, SiteViewRepairPrefix, SiteViewCompactPrefix,
		SiteViewEvictPrefix, SiteDiskFullPrefix,
		SiteIngestAppendPrefix, SiteIngestCheckpointPrefix, SiteIngestNotifyPrefix,
	},
}

// RegisteredSite reports whether a concrete site name or wildcard rule
// pattern resolves to the registry: an exact site, a member of a
// prefix family, or a "*"-pattern that can match at least one
// registered site. This is the runtime twin of the evalint faultsite
// analyzer's static check.
func RegisteredSite(pat string) bool {
	if pat == SiteAny {
		return true
	}
	if stem, ok := strings.CutSuffix(pat, "*"); ok {
		for _, p := range Sites.Prefixes {
			if strings.HasPrefix(p, stem) || strings.HasPrefix(stem, p) {
				return true
			}
		}
		for _, e := range Sites.Exact {
			if strings.HasPrefix(e, stem) {
				return true
			}
		}
		return false
	}
	for _, e := range Sites.Exact {
		if pat == e {
			return true
		}
	}
	for _, p := range Sites.Prefixes {
		if strings.HasPrefix(pat, p) && len(pat) > len(p) {
			return true
		}
	}
	return false
}

// SiteUDF is the evaluation site of a physical model.
func SiteUDF(model string) string { return SiteUDFPrefix + strings.ToLower(model) }

// SiteViewWrite is the log-append site of a materialized view.
func SiteViewWrite(view string) string { return SiteViewWritePrefix + strings.ToLower(view) }

// SiteViewScrub is the scrub-pass site of a materialized view.
func SiteViewScrub(view string) string { return SiteViewScrubPrefix + strings.ToLower(view) }

// SiteViewRepair is the quarantine-repair site of a materialized view.
func SiteViewRepair(view string) string { return SiteViewRepairPrefix + strings.ToLower(view) }

// SiteViewCompact is the generational-compaction site of a
// materialized view.
func SiteViewCompact(view string) string { return SiteViewCompactPrefix + strings.ToLower(view) }

// SiteViewEvict is the whole-view eviction site of a materialized
// view.
func SiteViewEvict(view string) string { return SiteViewEvictPrefix + strings.ToLower(view) }

// SiteDiskFull is the shadow out-of-space site of a durable write
// site: the member name embeds the underlying site, so one rule can
// starve a single log ("disk:full:view:write:v_car") or the whole
// disk ("disk:full:*").
func SiteDiskFull(site string) string { return SiteDiskFullPrefix + site }

// SiteIngestAppend is the durable live-append site of a streaming
// video table.
func SiteIngestAppend(table string) string { return SiteIngestAppendPrefix + strings.ToLower(table) }

// SiteIngestCheckpoint is the checkpoint-write site of a standing
// query.
func SiteIngestCheckpoint(query string) string {
	return SiteIngestCheckpointPrefix + strings.ToLower(query)
}

// SiteIngestNotify is the alert-delivery site of a standing query.
func SiteIngestNotify(query string) string { return SiteIngestNotifyPrefix + strings.ToLower(query) }
