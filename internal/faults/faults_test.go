package faults

import (
	"errors"
	"fmt"
	"testing"
)

func TestNilInjectorIsInert(t *testing.T) {
	var inj *Injector
	if err := inj.Check("udf:x"); err != nil {
		t.Fatalf("nil injector injected: %v", err)
	}
	short, err := inj.CheckWrite("view:write:x", 0, 10)
	if err != nil || short != 10 {
		t.Fatalf("nil injector write = (%d, %v)", short, err)
	}
	if err := inj.CheckEval("udf:x", 7, 1); err != nil {
		t.Fatalf("nil injector eval = %v", err)
	}
	if inj.Calls("udf:x") != 0 || inj.Injected() != 0 || inj.Events() != nil || inj.EventsSorted() != nil {
		t.Fatal("nil injector accumulated state")
	}
}

func TestScriptedOrdinals(t *testing.T) {
	inj := New(1)
	inj.Rule("udf:m", Rule{Kind: Transient, At: []int{2, 4}})
	var got []int
	for call := 1; call <= 5; call++ {
		if err := inj.Check("udf:m"); err != nil {
			f, ok := AsFault(err)
			if !ok {
				t.Fatalf("call %d: not a *Fault: %v", call, err)
			}
			if f.Call != call || f.Site != "udf:m" {
				t.Errorf("fault = %+v at call %d", f, call)
			}
			got = append(got, call)
		}
	}
	if len(got) != 2 || got[0] != 2 || got[1] != 4 {
		t.Fatalf("fired at %v, want [2 4]", got)
	}
	if inj.Calls("udf:m") != 5 {
		t.Errorf("calls = %d", inj.Calls("udf:m"))
	}
}

func TestKindPredicates(t *testing.T) {
	inj := New(7)
	inj.Rule("a", Rule{Kind: Transient, At: []int{1}})
	inj.Rule("b", Rule{Kind: Permanent, At: []int{1}})
	inj.Rule("c", Rule{Kind: Crash, At: []int{1}})
	at := inj.Check("a")
	bt := inj.Check("b")
	ct := inj.Check("c")
	if !IsTransient(at) || IsTransient(bt) || IsTransient(ct) {
		t.Error("IsTransient misclassified")
	}
	if IsCrash(at) || IsCrash(bt) || !IsCrash(ct) {
		t.Error("IsCrash misclassified")
	}
	// Predicates see through wrapping.
	wrapped := fmt.Errorf("udf: YoloTiny: %w", at)
	if !IsTransient(wrapped) {
		t.Error("wrapped transient fault not recognized")
	}
	if _, ok := AsFault(errors.New("plain")); ok {
		t.Error("plain error misread as fault")
	}
}

func TestWildcardPrefixMatch(t *testing.T) {
	inj := New(3)
	inj.Rule("view:write:*", Rule{Kind: Permanent, At: []int{1}})
	if err := inj.Check("view:write:udf_cartype"); err == nil {
		t.Fatal("wildcard rule did not fire")
	}
	if err := inj.Check("udf:cartype"); err != nil {
		t.Fatalf("wildcard rule leaked to other site: %v", err)
	}
}

func TestCrashShortWriteClamped(t *testing.T) {
	inj := New(9)
	inj.Rule("w", Rule{Kind: Crash, At: []int{1}, ShortWrite: 100})
	short, err := inj.CheckWrite("w", 0, 8)
	if !IsCrash(err) {
		t.Fatalf("err = %v", err)
	}
	if short != 8 {
		t.Fatalf("short = %d, want clamp to 8", short)
	}
	// Non-crash faults block the whole write.
	inj2 := New(9)
	inj2.Rule("w", Rule{Kind: Transient, At: []int{1}})
	short, err = inj2.CheckWrite("w", 0, 8)
	if short != 0 || !IsTransient(err) {
		t.Fatalf("transient write = (%d, %v)", short, err)
	}
}

func TestLimitCapsFirings(t *testing.T) {
	inj := New(2)
	inj.Rule("s", Rule{Kind: Transient, Prob: 1, Limit: 3})
	fired := 0
	for k := 0; k < 10; k++ {
		if inj.Check("s") != nil {
			fired++
		}
	}
	if fired != 3 {
		t.Fatalf("fired %d times, want 3", fired)
	}
	if inj.Injected() != 3 || len(inj.Events()) != 3 {
		t.Errorf("log = %v", inj.Events())
	}
}

// TestSeededReplayIsDeterministic is the framework's core contract:
// the same seed and the same call sequence yield the same schedule,
// and different seeds yield different ones.
func TestSeededReplayIsDeterministic(t *testing.T) {
	schedule := func(seed uint64) []Event {
		inj := New(seed)
		inj.Rule("udf:*", Rule{Kind: Transient, Prob: 0.3})
		inj.Rule("view:write:*", Rule{Kind: Permanent, Prob: 0.1})
		for k := 0; k < 200; k++ {
			inj.CheckEval("udf:a", uint64(k), 1)
			inj.CheckEval("udf:b", uint64(k), 1)
			inj.CheckWrite("view:write:v", uint64(64*k), 64)
		}
		return inj.Events()
	}
	a1, a2 := schedule(42), schedule(42)
	if len(a1) == 0 {
		t.Fatal("no faults fired at p=0.3 over 600 calls")
	}
	if fmt.Sprint(a1) != fmt.Sprint(a2) {
		t.Fatal("same seed produced different schedules")
	}
	if b := schedule(43); fmt.Sprint(a1) == fmt.Sprint(b) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestProbabilityRoughlyCalibrated(t *testing.T) {
	inj := New(11)
	inj.Rule("s", Rule{Kind: Transient, Prob: 0.5})
	fired := 0
	const n = 2000
	for k := 0; k < n; k++ {
		if inj.Check("s") != nil {
			fired++
		}
	}
	if fired < n/3 || fired > 2*n/3 {
		t.Fatalf("p=0.5 fired %d/%d times", fired, n)
	}
}

// TestEvalAttemptOrdinals: At rules on eval sites match the 1-based
// retry attempt within one invocation, regardless of how many other
// invocations hit the site first.
func TestEvalAttemptOrdinals(t *testing.T) {
	inj := New(5)
	inj.Rule("udf:m", Rule{Kind: Transient, At: []int{1, 2}})
	for id := uint64(0); id < 3; id++ {
		for attempt := 1; attempt <= 4; attempt++ {
			err := inj.CheckEval("udf:m", id, attempt)
			want := attempt <= 2
			if (err != nil) != want {
				t.Fatalf("id %d attempt %d: err = %v, want fault = %v", id, attempt, err, want)
			}
			if err != nil {
				f, _ := AsFault(err)
				if f.Call != attempt {
					t.Errorf("fault Call = %d, want attempt %d", f.Call, attempt)
				}
			}
		}
	}
}

// TestEvalDecisionsAreOrderIndependent: the per-identity fault
// schedule is a pure function of (seed, site, id, occurrence,
// attempt) — interleaving identities in any order yields the same
// per-identity decisions and the same canonical event log.
func TestEvalDecisionsAreOrderIndependent(t *testing.T) {
	const ids = 200
	run := func(order []uint64) (map[uint64]bool, []Event) {
		inj := New(77)
		inj.Rule("udf:m", Rule{Kind: Transient, Prob: 0.3})
		hits := map[uint64]bool{}
		for _, id := range order {
			hits[id] = inj.CheckEval("udf:m", id, 1) != nil
		}
		return hits, inj.EventsSorted()
	}
	fwd := make([]uint64, ids)
	rev := make([]uint64, ids)
	for k := range fwd {
		fwd[k] = uint64(k)
		rev[k] = uint64(ids - 1 - k)
	}
	hf, ef := run(fwd)
	hr, er := run(rev)
	fired := 0
	for id := uint64(0); id < ids; id++ {
		if hf[id] != hr[id] {
			t.Errorf("id %d decision differs with call order: %v vs %v", id, hf[id], hr[id])
		}
		if hf[id] {
			fired++
		}
	}
	if fired == 0 || fired == ids {
		t.Fatalf("p=0.3 fired %d/%d — draws not calibrated", fired, ids)
	}
	if fmt.Sprint(ef) != fmt.Sprint(er) {
		t.Errorf("canonical event logs differ:\n%v\n%v", ef, er)
	}
}

// TestOccurrenceRedrawsSchedule: restarting an invocation from attempt
// 1 (a replanned query, a rolled-back write retried at the same LSN)
// opens a fresh occurrence with an independent draw — the schedule
// must not deterministically pin the same identity forever.
func TestOccurrenceRedrawsSchedule(t *testing.T) {
	inj := New(3)
	inj.Rule("udf:m", Rule{Kind: Transient, Prob: 0.5})
	flips := 0
	const ids, restarts = 64, 8
	for id := uint64(0); id < ids; id++ {
		first := inj.CheckEval("udf:m", id, 1) != nil
		for o := 1; o < restarts; o++ {
			if (inj.CheckEval("udf:m", id, 1) != nil) != first {
				flips++
				break
			}
		}
	}
	if flips < ids/4 {
		t.Fatalf("only %d/%d identities ever redrew across %d occurrences", flips, ids, restarts)
	}
	// Write sites: the same LSN retried draws afresh too.
	wInj := New(3)
	wInj.Rule("w", Rule{Kind: Transient, Prob: 0.5})
	outcomes := map[bool]bool{}
	for k := 0; k < 64; k++ {
		_, err := wInj.CheckWrite("w", 4096, 32)
		outcomes[err != nil] = true
	}
	if len(outcomes) != 2 {
		t.Fatalf("64 retries at one LSN always gave %v", outcomes)
	}
}

// TestEventsSortedCanonical: EventsSorted orders by (site, id, call,
// kind) and is stable against arrival order.
func TestEventsSortedCanonical(t *testing.T) {
	inj := New(1)
	inj.Rule("b", Rule{Kind: Permanent, At: []int{1}})
	inj.Rule("a", Rule{Kind: Transient, At: []int{2}})
	inj.CheckEval("b", 9, 1)
	inj.CheckEval("a", 4, 2)
	inj.CheckEval("a", 2, 2)
	evs := inj.EventsSorted()
	if len(evs) != 3 {
		t.Fatalf("events = %v", evs)
	}
	want := []Event{
		{Site: "a", Kind: Transient, Call: 2, ID: 2},
		{Site: "a", Kind: Transient, Call: 2, ID: 4},
		{Site: "b", Kind: Permanent, Call: 1, ID: 9},
	}
	if fmt.Sprint(evs) != fmt.Sprint(want) {
		t.Fatalf("sorted events = %v, want %v", evs, want)
	}
}

// TestWriteAtMatchesArrivalOrdinal: scripted kill points on write
// sites address the site's N-th append, not the LSN, so the crash
// matrix scripts stay valid.
func TestWriteAtMatchesArrivalOrdinal(t *testing.T) {
	inj := New(2)
	inj.Rule("w", Rule{Kind: Crash, At: []int{3}, ShortWrite: 4})
	var fired []int
	lsn := uint64(0)
	for call := 1; call <= 5; call++ {
		short, err := inj.CheckWrite("w", lsn, 16)
		if err != nil {
			if !IsCrash(err) || short != 4 {
				t.Fatalf("call %d: (%d, %v)", call, short, err)
			}
			fired = append(fired, call)
			lsn += uint64(short)
			continue
		}
		lsn += 16
	}
	if len(fired) != 1 || fired[0] != 3 {
		t.Fatalf("crash fired at %v, want [3]", fired)
	}
}

// TestRegisteredSite pins the site registry: every constructor output
// and wildcard pattern resolves, and near-miss typos do not — the
// runtime twin of the evalint faultsite analyzer's static check.
func TestRegisteredSite(t *testing.T) {
	valid := []string{
		SiteUDF("YoloTiny"),
		SiteViewWrite("udf_x_frame"),
		SiteViewEvict("udf_x_frame"),
		SiteDiskFull(SiteViewWrite("udf_x_frame")),
		SiteDiskFull(SiteIngestAppend("traffic")),
		SiteIngestAppend("traffic"),
		SiteIngestCheckpoint("redtrucks"),
		SiteIngestNotify("redtrucks"),
		SiteDeadline,
		SiteAny,
		SiteUDFAny,
		SiteViewWriteAny,
		SiteViewEvictAny,
		SiteDiskFullAny,
		SiteIngestAny,
		SiteIngestAppendAny,
		SiteIngestCheckpointAny,
		SiteIngestNotifyAny,
		"view:*",             // stem on the way to a registered family
		"udf:yolo*",          // wildcard inside a family
		"view:write:udf_x*",  // wildcard inside a family
		"ingest:append:tra*", // wildcard inside a family
	}
	for _, s := range valid {
		if !RegisteredSite(s) {
			t.Errorf("RegisteredSite(%q) = false, want true", s)
		}
	}
	invalid := []string{
		"",
		"udf",               // family prefix without the separator or a member
		"udf:",              // family prefix with no member
		"uddf:yolotiny",     // typo'd family
		"veiw:write:*",      // typo'd family wildcard
		"exec:deadlines",    // near-miss of an exact site
		"exec:deadline:sub", // exact sites are not families
		"ingest:",           // family stem with no member
		"ingets:append:t",   // typo'd ingest family
	}
	for _, s := range invalid {
		if RegisteredSite(s) {
			t.Errorf("RegisteredSite(%q) = true, want false", s)
		}
	}
}

// TestSitesRegistryCoversConstants: the Sites registry and the Site*
// constants cannot drift apart.
func TestSitesRegistryCoversConstants(t *testing.T) {
	wantExact := []string{SiteDeadline}
	wantPrefixes := []string{
		SiteUDFPrefix, SiteViewWritePrefix,
		SiteViewScrubPrefix, SiteViewRepairPrefix, SiteViewCompactPrefix,
		SiteViewEvictPrefix, SiteDiskFullPrefix,
		SiteIngestAppendPrefix, SiteIngestCheckpointPrefix, SiteIngestNotifyPrefix,
	}
	if fmt.Sprint(Sites.Exact) != fmt.Sprint(wantExact) {
		t.Errorf("Sites.Exact = %v, want %v", Sites.Exact, wantExact)
	}
	if fmt.Sprint(Sites.Prefixes) != fmt.Sprint(wantPrefixes) {
		t.Errorf("Sites.Prefixes = %v, want %v", Sites.Prefixes, wantPrefixes)
	}
}
