package faults

import (
	"errors"
	"fmt"
	"testing"
)

func TestNilInjectorIsInert(t *testing.T) {
	var inj *Injector
	if err := inj.Check("udf:x"); err != nil {
		t.Fatalf("nil injector injected: %v", err)
	}
	short, err := inj.CheckWrite("view:write:x", 10)
	if err != nil || short != 10 {
		t.Fatalf("nil injector write = (%d, %v)", short, err)
	}
	if inj.Calls("udf:x") != 0 || inj.Injected() != 0 || inj.Events() != nil {
		t.Fatal("nil injector accumulated state")
	}
}

func TestScriptedOrdinals(t *testing.T) {
	inj := New(1)
	inj.Rule("udf:m", Rule{Kind: Transient, At: []int{2, 4}})
	var got []int
	for call := 1; call <= 5; call++ {
		if err := inj.Check("udf:m"); err != nil {
			f, ok := AsFault(err)
			if !ok {
				t.Fatalf("call %d: not a *Fault: %v", call, err)
			}
			if f.Call != call || f.Site != "udf:m" {
				t.Errorf("fault = %+v at call %d", f, call)
			}
			got = append(got, call)
		}
	}
	if len(got) != 2 || got[0] != 2 || got[1] != 4 {
		t.Fatalf("fired at %v, want [2 4]", got)
	}
	if inj.Calls("udf:m") != 5 {
		t.Errorf("calls = %d", inj.Calls("udf:m"))
	}
}

func TestKindPredicates(t *testing.T) {
	inj := New(7)
	inj.Rule("a", Rule{Kind: Transient, At: []int{1}})
	inj.Rule("b", Rule{Kind: Permanent, At: []int{1}})
	inj.Rule("c", Rule{Kind: Crash, At: []int{1}})
	at := inj.Check("a")
	bt := inj.Check("b")
	ct := inj.Check("c")
	if !IsTransient(at) || IsTransient(bt) || IsTransient(ct) {
		t.Error("IsTransient misclassified")
	}
	if IsCrash(at) || IsCrash(bt) || !IsCrash(ct) {
		t.Error("IsCrash misclassified")
	}
	// Predicates see through wrapping.
	wrapped := fmt.Errorf("udf: YoloTiny: %w", at)
	if !IsTransient(wrapped) {
		t.Error("wrapped transient fault not recognized")
	}
	if _, ok := AsFault(errors.New("plain")); ok {
		t.Error("plain error misread as fault")
	}
}

func TestWildcardPrefixMatch(t *testing.T) {
	inj := New(3)
	inj.Rule("view:write:*", Rule{Kind: Permanent, At: []int{1}})
	if err := inj.Check("view:write:udf_cartype"); err == nil {
		t.Fatal("wildcard rule did not fire")
	}
	if err := inj.Check("udf:cartype"); err != nil {
		t.Fatalf("wildcard rule leaked to other site: %v", err)
	}
}

func TestCrashShortWriteClamped(t *testing.T) {
	inj := New(9)
	inj.Rule("w", Rule{Kind: Crash, At: []int{1}, ShortWrite: 100})
	short, err := inj.CheckWrite("w", 8)
	if !IsCrash(err) {
		t.Fatalf("err = %v", err)
	}
	if short != 8 {
		t.Fatalf("short = %d, want clamp to 8", short)
	}
	// Non-crash faults block the whole write.
	inj2 := New(9)
	inj2.Rule("w", Rule{Kind: Transient, At: []int{1}})
	short, err = inj2.CheckWrite("w", 8)
	if short != 0 || !IsTransient(err) {
		t.Fatalf("transient write = (%d, %v)", short, err)
	}
}

func TestLimitCapsFirings(t *testing.T) {
	inj := New(2)
	inj.Rule("s", Rule{Kind: Transient, Prob: 1, Limit: 3})
	fired := 0
	for k := 0; k < 10; k++ {
		if inj.Check("s") != nil {
			fired++
		}
	}
	if fired != 3 {
		t.Fatalf("fired %d times, want 3", fired)
	}
	if inj.Injected() != 3 || len(inj.Events()) != 3 {
		t.Errorf("log = %v", inj.Events())
	}
}

// TestSeededReplayIsDeterministic is the framework's core contract:
// the same seed and the same call sequence yield the same schedule,
// and different seeds yield different ones.
func TestSeededReplayIsDeterministic(t *testing.T) {
	schedule := func(seed uint64) []Event {
		inj := New(seed)
		inj.Rule("udf:*", Rule{Kind: Transient, Prob: 0.3})
		inj.Rule("view:write:*", Rule{Kind: Permanent, Prob: 0.1})
		for k := 0; k < 200; k++ {
			inj.Check("udf:a")
			inj.Check("udf:b")
			inj.CheckWrite("view:write:v", 64)
		}
		return inj.Events()
	}
	a1, a2 := schedule(42), schedule(42)
	if len(a1) == 0 {
		t.Fatal("no faults fired at p=0.3 over 600 calls")
	}
	if fmt.Sprint(a1) != fmt.Sprint(a2) {
		t.Fatal("same seed produced different schedules")
	}
	if b := schedule(43); fmt.Sprint(a1) == fmt.Sprint(b) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestProbabilityRoughlyCalibrated(t *testing.T) {
	inj := New(11)
	inj.Rule("s", Rule{Kind: Transient, Prob: 0.5})
	fired := 0
	const n = 2000
	for k := 0; k < n; k++ {
		if inj.Check("s") != nil {
			fired++
		}
	}
	if fired < n/3 || fired > 2*n/3 {
		t.Fatalf("p=0.5 fired %d/%d times", fired, n)
	}
}
