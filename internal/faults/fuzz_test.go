package faults

import (
	"strings"
	"testing"
)

// refMatch is an independent formulation of the hierarchical-site /
// trailing-"*" wildcard matcher: walk both strings rune-free (sites
// and patterns are byte-oriented) and only the final '*' of the
// pattern is a wildcard.
func refMatch(pat, site string) bool {
	if pat == "" {
		return site == ""
	}
	if pat[len(pat)-1] != '*' {
		return pat == site
	}
	prefix := pat[:len(pat)-1]
	if len(site) < len(prefix) {
		return false
	}
	return site[:len(prefix)] == prefix
}

// FuzzSiteMatch cross-checks the rule matcher against refMatch and a
// set of algebraic invariants, then confirms that rule registration
// honors the matcher's verdict.
func FuzzSiteMatch(f *testing.F) {
	f.Add("udf:*", "udf:yolotiny")
	f.Add("udf:yolotiny", "udf:yolotiny")
	f.Add("view:write:*", "view:write:udf_x_frame")
	f.Add("*", "")
	f.Add("", "")
	f.Add("a*b", "a*b")
	f.Add("a**", "a*bc")
	f.Add("*x", "zzz")
	f.Add("exec:deadline", "exec:deadline")
	f.Fuzz(func(t *testing.T, pat, site string) {
		got := matches(pat, site)
		if want := refMatch(pat, site); got != want {
			t.Fatalf("matches(%q, %q) = %v, reference says %v", pat, site, got, want)
		}
		// Invariants of the matcher.
		if !matches(site, site) {
			t.Fatalf("exact pattern %q does not match itself", site)
		}
		if !matches("*", site) {
			t.Fatalf("universal pattern rejected %q", site)
		}
		if !matches(site+"*", site) {
			t.Fatalf("pattern %q* rejected its own prefix %q", site, site)
		}
		if got && len(pat) > 0 && pat[len(pat)-1] == '*' && !strings.HasPrefix(site, pat[:len(pat)-1]) {
			t.Fatalf("wildcard %q matched %q without the prefix relation", pat, site)
		}
		// A registered rule fires at site iff the matcher accepts it.
		inj := New(1)
		inj.Rule(pat, Rule{Kind: Permanent, Prob: 1})
		fired := inj.Check(site) != nil
		if fired != got {
			t.Fatalf("rule under %q fired=%v at %q, matcher says %v", pat, fired, site, got)
		}
	})
}
