// Package baselines implements the reuse baselines of §5.1 that are
// not expressible as optimizer modes alone. The FunCache baseline
// (tuple-level xxHash result caching) lives in the UDF runtime; this
// package provides HashStash's recycler graph.
//
// HashStash keeps one recycler-graph node per operator of previously
// executed plans and materializes operator outputs. To reuse, it
// sub-tree-matches the new query against the graph without requiring
// identical predicates, takes the union of the matched operators'
// materialized results, deduplicates, and re-applies the query's
// predicates. Crucially this is an all-or-nothing mechanism: the union
// must *cover* the query's input range, because HashStash has no
// symbolic difference predicate to compute the missing remainder (its
// predicate analysis is a few hard-coded rules — here, the single
// frame-range rule). When coverage fails, the query runs from scratch
// and its output is materialized for future matches.
package baselines

import (
	"sort"
	"sync"
)

// span is a half-open frame range [Lo, Hi).
type span struct {
	Lo, Hi int64
}

// Recycler is HashStash's recycler graph: operator-subtree keys mapped
// to the frame ranges their materialized outputs cover.
type Recycler struct {
	mu     sync.Mutex
	ranges map[string][]span // guarded by mu
	// match accounting for introspection and tests
	hits, misses int // guarded by mu
}

// NewRecycler returns an empty recycler graph.
func NewRecycler() *Recycler {
	return &Recycler{ranges: map[string][]span{}}
}

// Covered reports whether the subtree key's materialized outputs cover
// [lo, hi) entirely — the condition under which HashStash can answer
// from the recycler graph.
func (r *Recycler) Covered(key string, lo, hi int64) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if hi <= lo {
		return true
	}
	covered := coveredLocked(r.ranges[key], lo, hi)
	if covered {
		r.hits++
	} else {
		r.misses++
	}
	return covered
}

func coveredLocked(spans []span, lo, hi int64) bool {
	pos := lo
	for _, s := range spans { // spans kept sorted and disjoint
		if s.Hi <= pos {
			continue
		}
		if s.Lo > pos {
			return false
		}
		pos = s.Hi
		if pos >= hi {
			return true
		}
	}
	return pos >= hi
}

// Add records that the subtree key's output over [lo, hi) has been
// materialized.
func (r *Recycler) Add(key string, lo, hi int64) {
	if hi <= lo {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	spans := append(r.ranges[key], span{Lo: lo, Hi: hi})
	sort.Slice(spans, func(i, j int) bool { return spans[i].Lo < spans[j].Lo })
	merged := spans[:1]
	for _, s := range spans[1:] {
		last := &merged[len(merged)-1]
		if s.Lo <= last.Hi {
			if s.Hi > last.Hi {
				last.Hi = s.Hi
			}
		} else {
			merged = append(merged, s)
		}
	}
	r.ranges[key] = merged
}

// Nodes returns the number of distinct operator subtrees tracked.
func (r *Recycler) Nodes() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.ranges)
}

// Stats returns the coverage hit/miss counts.
func (r *Recycler) Stats() (hits, misses int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.hits, r.misses
}
