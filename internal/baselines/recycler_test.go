package baselines

import (
	"sync"
	"testing"
)

func TestCoverageBasics(t *testing.T) {
	r := NewRecycler()
	if !r.Covered("k", 5, 5) {
		t.Error("empty range is trivially covered")
	}
	if r.Covered("k", 0, 10) {
		t.Error("nothing materialized yet")
	}
	r.Add("k", 0, 100)
	if !r.Covered("k", 0, 100) || !r.Covered("k", 10, 90) {
		t.Error("subset ranges should be covered")
	}
	if r.Covered("k", 0, 101) || r.Covered("k", 50, 150) {
		t.Error("ranges beyond materialization are not covered")
	}
	if r.Covered("other", 0, 10) {
		t.Error("keys are independent")
	}
}

func TestCoverageAcrossMergedSpans(t *testing.T) {
	r := NewRecycler()
	r.Add("k", 0, 50)
	r.Add("k", 100, 150)
	if r.Covered("k", 0, 150) {
		t.Error("gap [50,100) should break coverage")
	}
	if !r.Covered("k", 110, 140) {
		t.Error("second span should cover")
	}
	r.Add("k", 40, 110) // bridges the gap
	if !r.Covered("k", 0, 150) {
		t.Error("bridged spans should cover")
	}
	if r.Nodes() != 1 {
		t.Errorf("nodes = %d", r.Nodes())
	}
}

func TestAddMergesAdjacentAndOverlapping(t *testing.T) {
	r := NewRecycler()
	r.Add("k", 10, 20)
	r.Add("k", 20, 30) // adjacent
	r.Add("k", 5, 12)  // overlapping
	if !r.Covered("k", 5, 30) {
		t.Error("merged span should cover [5,30)")
	}
	r.Add("k", 0, 0) // empty add is a no-op
	if r.Covered("k", 0, 5) {
		t.Error("empty add must not extend coverage")
	}
}

func TestStatsCounting(t *testing.T) {
	r := NewRecycler()
	r.Add("k", 0, 10)
	r.Covered("k", 0, 5)  // hit
	r.Covered("k", 0, 20) // miss
	r.Covered("k", 2, 4)  // hit
	hits, misses := r.Stats()
	if hits != 2 || misses != 1 {
		t.Errorf("hits/misses = %d/%d", hits, misses)
	}
}

func TestConcurrentAccess(t *testing.T) {
	r := NewRecycler()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Add("k", int64(j*10), int64(j*10+5))
				r.Covered("k", int64(j*10), int64(j*10+5))
			}
		}(i)
	}
	wg.Wait()
	if !r.Covered("k", 990, 995) {
		t.Error("concurrent adds lost data")
	}
}
