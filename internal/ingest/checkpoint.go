// Package ingest implements crash-safe streaming ingestion with
// incremental view maintenance: frames arrive over (virtual) time into
// a live video table, and registered standing queries — SELECTs with
// tumbling-window count aggregates — extend their materialized views
// incrementally from a durable per-query checkpoint instead of
// recomputing from frame zero.
//
// The failure model matches the view log (DESIGN.md §12): every
// durable artifact is a checksummed append-only log with torn-tail
// truncation on reopen, every write consults the deterministic fault
// injector at a registered site, and a crash at any point followed by
// reopen + resume replays exactly once from the checkpoint,
// byte-matching an uninterrupted run.
package ingest

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"sort"

	"eva/internal/faults"
	"eva/internal/storage"
	"eva/internal/xxhash"
)

// Checkpoint log format: header (magic, version), then records of
// [payloadLen:4][payload][xxhash64 over payload:8]. The payload is the
// standing query's full progress state — last-processed LSN plus every
// window count — so replay is last-valid-record-wins: no earlier
// record needs to survive for correctness, and the log can be
// truncated at any boundary without losing more than un-checkpointed
// progress (which the delta executor re-derives).
const (
	ckptMagic   = 0x45564143 // "EVAC"
	ckptVersion = 1

	ckptHeaderLen   = 5
	ckptRecOverhead = 12 // payloadLen + checksum
	ckptMaxPayload  = 1 << 20
	ckptStateFixed  = 12 // lsn + window count
	ckptWindowSize  = 16 // window id + count

	// ckptCompactRecords is the checkpoint log's retention tier: replay
	// is last-valid-record-wins, so once this many records have
	// accumulated the log is folded into header + one record before the
	// next append.
	ckptCompactRecords = 8

	// ckptDiskRetries bounds one write's evict-retry loop under disk
	// pressure, mirroring the storage layer's own bound.
	ckptDiskRetries = 64
)

// ckptHeader builds the checkpoint-log header bytes.
func ckptHeader() []byte {
	hdr := binary.LittleEndian.AppendUint32(make([]byte, 0, ckptHeaderLen), ckptMagic)
	return append(hdr, ckptVersion)
}

// ckptState is one standing query's durable progress: every frame with
// id < lsn has been applied to the window counts exactly once. Alerts
// are *derived* from (windows, threshold), so they need no durable
// state of their own — recomputing the alerted set from a recovered
// checkpoint reproduces it exactly.
type ckptState struct {
	lsn     int64
	windows map[int64]int64
}

// clone deep-copies the state.
func (st ckptState) clone() ckptState {
	out := ckptState{lsn: st.lsn, windows: make(map[int64]int64, len(st.windows))}
	// lint:unordered map copy; destination is a map, order-free
	for w, c := range st.windows {
		out.windows[w] = c
	}
	return out
}

// encode appends one checkpoint record for st. Windows are encoded in
// sorted order so the record bytes are a pure function of the state.
func (st ckptState) encode(buf []byte) []byte {
	payLen := ckptStateFixed + len(st.windows)*ckptWindowSize
	buf = binary.LittleEndian.AppendUint32(buf, uint32(payLen))
	payStart := len(buf)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(st.lsn))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(st.windows)))
	ws := make([]int64, 0, len(st.windows))
	// lint:unordered key collection; sorted below
	for w := range st.windows {
		ws = append(ws, w)
	}
	sort.Slice(ws, func(i, j int) bool { return ws[i] < ws[j] })
	for _, w := range ws {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(w))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(st.windows[w]))
	}
	return binary.LittleEndian.AppendUint64(buf, xxhash.Sum64(buf[payStart:], 0))
}

// decodeCkptPayload rebuilds a state from one record payload.
func decodeCkptPayload(pay []byte) (ckptState, error) {
	if len(pay) < ckptStateFixed {
		return ckptState{}, fmt.Errorf("payload too short (%d bytes)", len(pay))
	}
	st := ckptState{lsn: int64(binary.LittleEndian.Uint64(pay))}
	n := int(binary.LittleEndian.Uint32(pay[8:]))
	if st.lsn < 0 || n < 0 || ckptStateFixed+n*ckptWindowSize != len(pay) {
		return ckptState{}, fmt.Errorf("inconsistent payload (lsn %d, %d windows, %d bytes)", st.lsn, n, len(pay))
	}
	st.windows = make(map[int64]int64, n)
	off := ckptStateFixed
	for i := 0; i < n; i++ {
		w := int64(binary.LittleEndian.Uint64(pay[off:]))
		c := int64(binary.LittleEndian.Uint64(pay[off+8:]))
		if c <= 0 {
			return ckptState{}, fmt.Errorf("window %d has non-positive count %d", w, c)
		}
		if _, dup := st.windows[w]; dup {
			return ckptState{}, fmt.Errorf("duplicate window %d", w)
		}
		st.windows[w] = c
		off += ckptWindowSize
	}
	return st, nil
}

// replayCheckpoints scans a checkpoint log, returning the valid-prefix
// length, the last durable state, and the number of intact records. An
// incomplete or checksum-failing tail record is a crash mid-write and
// stops replay at the last good boundary; a *decoding* failure of a
// checksum-valid payload is a writer bug and a hard error.
func replayCheckpoints(data []byte) (valid int, st ckptState, recs int, err error) {
	if len(data) < ckptHeaderLen || binary.LittleEndian.Uint32(data) != ckptMagic {
		return 0, st, 0, fmt.Errorf("bad checkpoint header")
	}
	if data[4] != ckptVersion {
		return 0, st, 0, fmt.Errorf("unsupported checkpoint version %d", data[4])
	}
	off := ckptHeaderLen
	for off+ckptRecOverhead <= len(data) {
		payLen := int(binary.LittleEndian.Uint32(data[off:]))
		if payLen < 0 || payLen > ckptMaxPayload {
			return off, st, recs, nil
		}
		end := off + 4 + payLen + 8
		if end > len(data) {
			return off, st, recs, nil
		}
		pay := data[off+4 : off+4+payLen]
		if xxhash.Sum64(pay, 0) != binary.LittleEndian.Uint64(data[end-8:]) {
			return off, st, recs, nil
		}
		next, derr := decodeCkptPayload(pay)
		if derr != nil {
			return 0, st, 0, fmt.Errorf("checkpoint record %d: %w", recs, derr)
		}
		if next.lsn < st.lsn {
			return 0, st, 0, fmt.Errorf("checkpoint lsn regressed %d -> %d", st.lsn, next.lsn)
		}
		st = next
		recs++
		off = end
	}
	return off, st, recs, nil
}

// checkpointLog is the durable progress file of one standing query.
// It is owned by the stream's pump goroutine; no locking.
type checkpointLog struct {
	path      string
	site      string // faults.SiteIngestCheckpoint(query)
	file      *os.File
	foot      int64 // durable bytes
	dead      bool  // simulated crash hit this handle
	recovered int64 // torn-tail bytes dropped at open
	st        ckptState
	recs      int
	// store wires in the storage engine for disk accounting and the
	// reclaim ladder; nil in unit tests (no budget, no eviction).
	store *storage.Engine
	// charge is the retry-backoff hook run before each disk-full
	// evict-retry; nil charges nothing.
	charge func(attempt int)
}

// openCheckpoint opens (or creates) a standing query's checkpoint log,
// recovering the last durable state and truncating a torn tail.
func openCheckpoint(path, site string) (*checkpointLog, error) {
	c := &checkpointLog{path: path, site: site, st: ckptState{windows: map[int64]int64{}}}
	tl, err := storage.OpenTailLog(path, ckptHeader(), func(data []byte) (int, error) {
		valid, st, recs, rerr := replayCheckpoints(data)
		if rerr != nil {
			return 0, rerr
		}
		if st.windows == nil {
			st.windows = map[int64]int64{}
		}
		c.st, c.recs = st, recs
		return valid, nil
	})
	if err != nil {
		return nil, fmt.Errorf("ingest: checkpoint %s: %w", path, err)
	}
	c.file, c.foot, c.recovered = tl.File, tl.Footprint, tl.Recovered
	return c, nil
}

// attach wires the storage engine (disk budget + reclaim ladder) and
// the retry-backoff hook in, charging the log's current footprint.
func (c *checkpointLog) attach(store *storage.Engine, charge func(attempt int)) {
	c.store, c.charge = store, charge
	if store != nil {
		store.Budget().Set(c.path, c.foot)
	}
}

// budget returns the disk budget this log charges (nil-safe).
func (c *checkpointLog) budget() *storage.DiskBudget {
	if c.store == nil {
		return nil
	}
	return c.store.Budget()
}

// write durably records st, consulting the injector at the query's
// checkpoint site keyed by the state's LSN. Transient and permanent
// faults roll the log back (nothing durable changed, safe to retry);
// a simulated crash leaves the torn tail for the next open and kills
// the handle. The in-memory state advances only on success.
func (c *checkpointLog) write(st ckptState, inj *faults.Injector) error {
	for attempt := 1; ; attempt++ {
		err := c.writeOnce(st, inj)
		if err == nil || !storage.IsDiskFull(err) || faults.IsCrash(err) {
			return err
		}
		var dfe *storage.DiskFullError
		errors.As(err, &dfe)
		if c.store == nil || attempt >= ckptDiskRetries {
			return fmt.Errorf("ingest: checkpoint %s: %w: %v", c.path, storage.ErrDiskBudget, dfe)
		}
		// The pump owns this log and holds no storage locks here, so the
		// reclaim ladder (which takes engine and view locks) is safe.
		freed := c.store.Reclaim(dfe.Need, "")
		if freed <= 0 && !faults.IsTransient(err) {
			return fmt.Errorf("ingest: checkpoint %s: %w: %v", c.path, storage.ErrDiskBudget, dfe)
		}
		if c.charge != nil {
			c.charge(attempt)
		}
	}
}

// writeOnce is one append attempt; write wraps it in the disk-full
// evict-retry loop.
func (c *checkpointLog) writeOnce(st ckptState, inj *faults.Injector) error {
	if c.dead {
		return fmt.Errorf("ingest: checkpoint %s: unusable after simulated crash", c.path)
	}
	if c.file == nil {
		return fmt.Errorf("ingest: checkpoint %s: closed", c.path)
	}
	// Retention tier: fold a long log down before appending more.
	// Best-effort — a failed fold leaves the old log intact.
	if c.recs >= ckptCompactRecords {
		_ = c.compact() // lint:noerrcheck best-effort fold; append still valid on old log
	}
	rec := st.encode(make([]byte, 0, ckptRecOverhead+ckptStateFixed+len(st.windows)*ckptWindowSize))

	allow := len(rec)
	var injected error
	dfSite := faults.SiteDiskFull(c.site)
	if short, ferr := inj.CheckWrite(dfSite, uint64(st.lsn), len(rec)); ferr != nil {
		allow, injected = short, &storage.DiskFullError{Site: dfSite, Need: int64(len(rec)), Injected: ferr}
	} else if short, ferr := inj.CheckWrite(c.site, uint64(st.lsn), len(rec)); ferr != nil {
		allow, injected = short, ferr
	}
	admitted := false
	if injected == nil {
		if !c.budget().Admit(c.path, int64(len(rec))) {
			// Over budget: folding the log may free enough locally
			// without evicting anyone.
			if c.compact() != nil || !c.budget().Admit(c.path, int64(len(rec))) {
				return fmt.Errorf("ingest: checkpoint %s: %w", c.path,
					&storage.DiskFullError{Site: dfSite, Need: int64(len(rec))})
			}
		}
		admitted = true
	}
	var wrote int
	var werr error
	if allow > 0 {
		wrote, werr = c.file.Write(rec[:allow])
	}
	if injected != nil && faults.IsCrash(injected) {
		c.dead = true
		return fmt.Errorf("ingest: checkpoint %s: %w", c.path, injected)
	}
	if injected == nil && werr == nil && wrote == len(rec) {
		c.foot += int64(len(rec))
		c.st = st.clone()
		c.recs++
		return nil
	}
	if admitted {
		c.budget().Refund(c.path, int64(len(rec)))
	}
	if terr := c.file.Truncate(c.foot); terr != nil {
		c.dead = true
		return fmt.Errorf("ingest: checkpoint %s: rollback after failed write: %v (write error: %v)", c.path, terr, writeCause(injected, werr))
	}
	return fmt.Errorf("ingest: checkpoint %s: %w", c.path, writeCause(injected, werr))
}

// compact folds the checkpoint log to its minimal form — header plus
// (once any progress exists) one record of the committed state — via
// scratch write and rename.
func (c *checkpointLog) compact() error {
	if c.file == nil || c.dead || c.foot <= int64(ckptHeaderLen) {
		return nil
	}
	buf := ckptHeader()
	wroteRec := false
	if c.st.lsn > 0 || len(c.st.windows) > 0 {
		buf = c.st.encode(buf)
		wroteRec = true
	}
	if int64(len(buf)) >= c.foot {
		return nil
	}
	tmp := c.path + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return err
	}
	if err := c.file.Close(); err != nil {
		_ = os.Remove(tmp) // lint:noerrcheck scratch cleanup on error path
		c.dead = true
		return err
	}
	if err := os.Rename(tmp, c.path); err != nil {
		// The old log is still intact on disk; reopen its handle.
		_ = os.Remove(tmp) // lint:noerrcheck scratch cleanup on error path
		f, oerr := os.OpenFile(c.path, os.O_WRONLY|os.O_APPEND, 0o644)
		if oerr != nil {
			c.dead = true
			return oerr
		}
		c.file = f
		return err
	}
	f, err := os.OpenFile(c.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		c.dead = true
		return err
	}
	c.file = f
	c.foot = int64(len(buf))
	c.recs = 0
	if wroteRec {
		c.recs = 1
	}
	c.budget().Set(c.path, c.foot)
	return nil
}

// writeCause picks the primary error of a failed write.
func writeCause(injected, werr error) error {
	if injected != nil {
		return injected
	}
	if werr != nil {
		return werr
	}
	return fmt.Errorf("short write")
}

// close releases the file handle. Idempotent.
func (c *checkpointLog) close() error {
	if c.file == nil {
		return nil
	}
	err := c.file.Close()
	c.file = nil
	return err
}
