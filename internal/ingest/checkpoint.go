// Package ingest implements crash-safe streaming ingestion with
// incremental view maintenance: frames arrive over (virtual) time into
// a live video table, and registered standing queries — SELECTs with
// tumbling-window count aggregates — extend their materialized views
// incrementally from a durable per-query checkpoint instead of
// recomputing from frame zero.
//
// The failure model matches the view log (DESIGN.md §12): every
// durable artifact is a checksummed append-only log with torn-tail
// truncation on reopen, every write consults the deterministic fault
// injector at a registered site, and a crash at any point followed by
// reopen + resume replays exactly once from the checkpoint,
// byte-matching an uninterrupted run.
package ingest

import (
	"encoding/binary"
	"fmt"
	"os"
	"sort"

	"eva/internal/faults"
	"eva/internal/xxhash"
)

// Checkpoint log format: header (magic, version), then records of
// [payloadLen:4][payload][xxhash64 over payload:8]. The payload is the
// standing query's full progress state — last-processed LSN plus every
// window count — so replay is last-valid-record-wins: no earlier
// record needs to survive for correctness, and the log can be
// truncated at any boundary without losing more than un-checkpointed
// progress (which the delta executor re-derives).
const (
	ckptMagic   = 0x45564143 // "EVAC"
	ckptVersion = 1

	ckptHeaderLen   = 5
	ckptRecOverhead = 12 // payloadLen + checksum
	ckptMaxPayload  = 1 << 20
	ckptStateFixed  = 12 // lsn + window count
	ckptWindowSize  = 16 // window id + count
)

// ckptState is one standing query's durable progress: every frame with
// id < lsn has been applied to the window counts exactly once. Alerts
// are *derived* from (windows, threshold), so they need no durable
// state of their own — recomputing the alerted set from a recovered
// checkpoint reproduces it exactly.
type ckptState struct {
	lsn     int64
	windows map[int64]int64
}

// clone deep-copies the state.
func (st ckptState) clone() ckptState {
	out := ckptState{lsn: st.lsn, windows: make(map[int64]int64, len(st.windows))}
	// lint:unordered map copy; destination is a map, order-free
	for w, c := range st.windows {
		out.windows[w] = c
	}
	return out
}

// encode appends one checkpoint record for st. Windows are encoded in
// sorted order so the record bytes are a pure function of the state.
func (st ckptState) encode(buf []byte) []byte {
	payLen := ckptStateFixed + len(st.windows)*ckptWindowSize
	buf = binary.LittleEndian.AppendUint32(buf, uint32(payLen))
	payStart := len(buf)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(st.lsn))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(st.windows)))
	ws := make([]int64, 0, len(st.windows))
	// lint:unordered key collection; sorted below
	for w := range st.windows {
		ws = append(ws, w)
	}
	sort.Slice(ws, func(i, j int) bool { return ws[i] < ws[j] })
	for _, w := range ws {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(w))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(st.windows[w]))
	}
	return binary.LittleEndian.AppendUint64(buf, xxhash.Sum64(buf[payStart:], 0))
}

// decodeCkptPayload rebuilds a state from one record payload.
func decodeCkptPayload(pay []byte) (ckptState, error) {
	if len(pay) < ckptStateFixed {
		return ckptState{}, fmt.Errorf("payload too short (%d bytes)", len(pay))
	}
	st := ckptState{lsn: int64(binary.LittleEndian.Uint64(pay))}
	n := int(binary.LittleEndian.Uint32(pay[8:]))
	if st.lsn < 0 || n < 0 || ckptStateFixed+n*ckptWindowSize != len(pay) {
		return ckptState{}, fmt.Errorf("inconsistent payload (lsn %d, %d windows, %d bytes)", st.lsn, n, len(pay))
	}
	st.windows = make(map[int64]int64, n)
	off := ckptStateFixed
	for i := 0; i < n; i++ {
		w := int64(binary.LittleEndian.Uint64(pay[off:]))
		c := int64(binary.LittleEndian.Uint64(pay[off+8:]))
		if c <= 0 {
			return ckptState{}, fmt.Errorf("window %d has non-positive count %d", w, c)
		}
		if _, dup := st.windows[w]; dup {
			return ckptState{}, fmt.Errorf("duplicate window %d", w)
		}
		st.windows[w] = c
		off += ckptWindowSize
	}
	return st, nil
}

// replayCheckpoints scans a checkpoint log, returning the valid-prefix
// length, the last durable state, and the number of intact records. An
// incomplete or checksum-failing tail record is a crash mid-write and
// stops replay at the last good boundary; a *decoding* failure of a
// checksum-valid payload is a writer bug and a hard error.
func replayCheckpoints(data []byte) (valid int, st ckptState, recs int, err error) {
	if len(data) < ckptHeaderLen || binary.LittleEndian.Uint32(data) != ckptMagic {
		return 0, st, 0, fmt.Errorf("bad checkpoint header")
	}
	if data[4] != ckptVersion {
		return 0, st, 0, fmt.Errorf("unsupported checkpoint version %d", data[4])
	}
	off := ckptHeaderLen
	for off+ckptRecOverhead <= len(data) {
		payLen := int(binary.LittleEndian.Uint32(data[off:]))
		if payLen < 0 || payLen > ckptMaxPayload {
			return off, st, recs, nil
		}
		end := off + 4 + payLen + 8
		if end > len(data) {
			return off, st, recs, nil
		}
		pay := data[off+4 : off+4+payLen]
		if xxhash.Sum64(pay, 0) != binary.LittleEndian.Uint64(data[end-8:]) {
			return off, st, recs, nil
		}
		next, derr := decodeCkptPayload(pay)
		if derr != nil {
			return 0, st, 0, fmt.Errorf("checkpoint record %d: %w", recs, derr)
		}
		if next.lsn < st.lsn {
			return 0, st, 0, fmt.Errorf("checkpoint lsn regressed %d -> %d", st.lsn, next.lsn)
		}
		st = next
		recs++
		off = end
	}
	return off, st, recs, nil
}

// checkpointLog is the durable progress file of one standing query.
// It is owned by the stream's pump goroutine; no locking.
type checkpointLog struct {
	path      string
	site      string // faults.SiteIngestCheckpoint(query)
	file      *os.File
	foot      int64 // durable bytes
	dead      bool  // simulated crash hit this handle
	recovered int64 // torn-tail bytes dropped at open
	st        ckptState
	recs      int
}

// openCheckpoint opens (or creates) a standing query's checkpoint log,
// recovering the last durable state and truncating a torn tail.
func openCheckpoint(path, site string) (*checkpointLog, error) {
	c := &checkpointLog{path: path, site: site, st: ckptState{windows: map[int64]int64{}}}
	if data, err := os.ReadFile(path); err == nil {
		valid, st, recs, rerr := replayCheckpoints(data)
		if rerr != nil {
			return nil, fmt.Errorf("ingest: checkpoint %s: %w", path, rerr)
		}
		if valid < len(data) {
			if err := os.Truncate(path, int64(valid)); err != nil {
				return nil, fmt.Errorf("ingest: checkpoint %s: truncate torn tail: %w", path, err)
			}
			c.recovered = int64(len(data) - valid)
		}
		if st.windows == nil {
			st.windows = map[int64]int64{}
		}
		c.st, c.recs, c.foot = st, recs, int64(valid)
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	c.file = f
	if c.foot == 0 {
		hdr := binary.LittleEndian.AppendUint32(nil, ckptMagic)
		hdr = append(hdr, ckptVersion)
		if _, err := f.Write(hdr); err != nil {
			return nil, err
		}
		c.foot = int64(len(hdr))
	}
	return c, nil
}

// write durably records st, consulting the injector at the query's
// checkpoint site keyed by the state's LSN. Transient and permanent
// faults roll the log back (nothing durable changed, safe to retry);
// a simulated crash leaves the torn tail for the next open and kills
// the handle. The in-memory state advances only on success.
func (c *checkpointLog) write(st ckptState, inj *faults.Injector) error {
	if c.dead {
		return fmt.Errorf("ingest: checkpoint %s: unusable after simulated crash", c.path)
	}
	if c.file == nil {
		return fmt.Errorf("ingest: checkpoint %s: closed", c.path)
	}
	rec := st.encode(make([]byte, 0, ckptRecOverhead+ckptStateFixed+len(st.windows)*ckptWindowSize))

	allow := len(rec)
	var injected error
	if short, ferr := inj.CheckWrite(c.site, uint64(st.lsn), len(rec)); ferr != nil {
		allow, injected = short, ferr
	}
	var wrote int
	var werr error
	if allow > 0 {
		wrote, werr = c.file.Write(rec[:allow])
	}
	if injected != nil && faults.IsCrash(injected) {
		c.dead = true
		return fmt.Errorf("ingest: checkpoint %s: %w", c.path, injected)
	}
	if injected == nil && werr == nil && wrote == len(rec) {
		c.foot += int64(len(rec))
		c.st = st.clone()
		c.recs++
		return nil
	}
	if terr := c.file.Truncate(c.foot); terr != nil {
		c.dead = true
		return fmt.Errorf("ingest: checkpoint %s: rollback after failed write: %v (write error: %v)", c.path, terr, writeCause(injected, werr))
	}
	return fmt.Errorf("ingest: checkpoint %s: %w", c.path, writeCause(injected, werr))
}

// writeCause picks the primary error of a failed write.
func writeCause(injected, werr error) error {
	if injected != nil {
		return injected
	}
	if werr != nil {
		return werr
	}
	return fmt.Errorf("short write")
}

// close releases the file handle. Idempotent.
func (c *checkpointLog) close() error {
	if c.file == nil {
		return nil
	}
	err := c.file.Close()
	c.file = nil
	return err
}
