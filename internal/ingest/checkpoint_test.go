package ingest

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"eva/internal/faults"
)

func ckptSite() string { return faults.SiteIngestCheckpoint("q") }

func mkState(lsn int64, pairs ...int64) ckptState {
	st := ckptState{lsn: lsn, windows: map[int64]int64{}}
	for i := 0; i+1 < len(pairs); i += 2 {
		st.windows[pairs[i]] = pairs[i+1]
	}
	return st
}

func sameState(a, b ckptState) bool {
	if a.lsn != b.lsn || len(a.windows) != len(b.windows) {
		return false
	}
	for w, c := range a.windows {
		if b.windows[w] != c {
			return false
		}
	}
	return true
}

// TestCheckpointRoundTrip: write a sequence of states, reopen, and the
// last one wins; a second reopen is a fixed point.
func TestCheckpointRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "q.ckpt")
	c, err := openCheckpoint(path, ckptSite())
	if err != nil {
		t.Fatal(err)
	}
	states := []ckptState{
		mkState(8, 0, 3),
		mkState(16, 0, 3, 1, 5),
		mkState(24, 0, 3, 1, 5, 2, 1),
	}
	for _, st := range states {
		if err := c.write(st, nil); err != nil {
			t.Fatal(err)
		}
	}
	if !sameState(c.st, states[2]) {
		t.Fatalf("in-memory state %+v, want %+v", c.st, states[2])
	}
	if err := c.close(); err != nil {
		t.Fatal(err)
	}

	c2, err := openCheckpoint(path, ckptSite())
	if err != nil {
		t.Fatal(err)
	}
	if !sameState(c2.st, states[2]) || c2.recs != 3 || c2.recovered != 0 {
		t.Fatalf("reopen: state=%+v recs=%d recovered=%d", c2.st, c2.recs, c2.recovered)
	}
}

// TestCheckpointCrashTornTail kills the write at every torn length;
// reopen recovers the last durable state and truncates the tail.
func TestCheckpointCrashTornTail(t *testing.T) {
	full := len(mkState(16, 0, 3, 1, 5).encode(nil))
	for short := 0; short <= full; short += 3 {
		dir := t.TempDir()
		path := filepath.Join(dir, "q.ckpt")
		c, err := openCheckpoint(path, ckptSite())
		if err != nil {
			t.Fatal(err)
		}
		inj := faults.New(1)
		inj.Rule(ckptSite(), faults.Rule{Kind: faults.Crash, At: []int{2}, ShortWrite: short})
		first := mkState(8, 0, 3)
		if err := c.write(first, inj); err != nil {
			t.Fatalf("short=%d: first write: %v", short, err)
		}
		err = c.write(mkState(16, 0, 3, 1, 5), inj)
		if !faults.IsCrash(err) {
			t.Fatalf("short=%d: crash not injected: %v", short, err)
		}
		if !c.dead {
			t.Fatalf("short=%d: crashed handle not dead", short)
		}
		if err := c.write(mkState(24), nil); err == nil {
			t.Fatalf("short=%d: dead handle accepted a write", short)
		}
		_ = c.close()

		c2, err := openCheckpoint(path, ckptSite())
		if err != nil {
			t.Fatalf("short=%d: reopen: %v", short, err)
		}
		want := first
		wantRecovered := short > 0
		if short == full {
			// A fully torn write is durable.
			want = mkState(16, 0, 3, 1, 5)
			wantRecovered = false
		}
		if !sameState(c2.st, want) {
			t.Fatalf("short=%d: recovered %+v, want %+v", short, c2.st, want)
		}
		if (c2.recovered > 0) != wantRecovered {
			t.Fatalf("short=%d: recovered %d torn bytes", short, c2.recovered)
		}
		// The healed log keeps accepting writes.
		if err := c2.write(mkState(24, 0, 9), nil); err != nil {
			t.Fatalf("short=%d: write after recovery: %v", short, err)
		}
	}
}

// TestCheckpointRollback: transient and permanent faults leave file
// and state untouched, and a retry succeeds.
func TestCheckpointRollback(t *testing.T) {
	for _, kind := range []faults.Kind{faults.Transient, faults.Permanent} {
		path := filepath.Join(t.TempDir(), "q.ckpt")
		c, err := openCheckpoint(path, ckptSite())
		if err != nil {
			t.Fatal(err)
		}
		inj := faults.New(1)
		inj.Rule(ckptSite(), faults.Rule{Kind: kind, At: []int{2}})
		first := mkState(8, 0, 3)
		if err := c.write(first, inj); err != nil {
			t.Fatal(err)
		}
		foot := c.foot
		if err := c.write(mkState(16, 0, 4), inj); err == nil {
			t.Fatalf("%v fault did not surface", kind)
		}
		if c.dead || c.foot != foot || !sameState(c.st, first) {
			t.Fatalf("%v fault leaked state: dead=%v foot=%d", kind, c.dead, c.foot)
		}
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() != foot {
			t.Fatalf("%v fault left file at %d bytes, want %d", kind, fi.Size(), foot)
		}
		if err := c.write(mkState(16, 0, 4), inj); err != nil {
			t.Fatalf("retry after %v rollback: %v", kind, err)
		}
	}
}

// TestCheckpointBadLog: header corruption and LSN regression are hard
// errors, not recoverable tears.
func TestCheckpointBadLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "q.ckpt")
	c, err := openCheckpoint(path, ckptSite())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.write(mkState(8, 0, 3), nil); err != nil {
		t.Fatal(err)
	}
	_ = c.close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	bad := append([]byte(nil), data...)
	bad[0] ^= 0xff
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := openCheckpoint(path, ckptSite()); err == nil {
		t.Fatal("corrupt header accepted")
	}

	// A checksum-valid record whose LSN regresses.
	regress := append(append([]byte(nil), data...), mkState(4).encode(nil)...)
	if err := os.WriteFile(path, regress, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := openCheckpoint(path, ckptSite()); err == nil {
		t.Fatal("regressing checkpoint accepted")
	}
}

// FuzzCheckpointReplay throws arbitrary bytes at the checkpoint replay
// path. Invariants: no panic, the valid prefix is in range, and
// replaying just the accepted prefix is a fixed point — same state,
// same record count, all bytes accepted (that is what reopening after
// torn-tail truncation does).
func FuzzCheckpointReplay(f *testing.F) {
	log := binaryHeader()
	log = mkState(8, 0, 3).encode(log)
	log = mkState(16, 0, 3, 1, 5, 7, 2).encode(log)
	f.Add(log)
	f.Add(log[:len(log)-5])
	f.Add(log[:ckptHeaderLen])
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		valid, st, recs, err := replayCheckpoints(data)
		if err != nil {
			return
		}
		if valid < 0 || valid > len(data) {
			t.Fatalf("valid prefix %d out of range [0,%d]", valid, len(data))
		}
		valid2, st2, recs2, err := replayCheckpoints(data[:valid])
		if err != nil {
			t.Fatalf("accepted prefix rejected on replay: %v", err)
		}
		if valid2 != valid || recs2 != recs || !sameState(st, st2) {
			t.Fatalf("replay not a fixed point: %d/%d recs %d/%d", valid, valid2, recs, recs2)
		}
		// Round-trip: the recovered state re-encodes to bytes that
		// decode back to itself.
		if recs > 0 {
			rec := st.encode(binaryHeader())
			_, st3, recs3, err := replayCheckpoints(rec)
			if err != nil || recs3 != 1 || !sameState(st, st3) {
				t.Fatalf("state round-trip failed: %v", err)
			}
		}
	})
}

// binaryHeader returns a fresh checkpoint-log header.
func binaryHeader() []byte {
	hdr := binary.LittleEndian.AppendUint32(nil, ckptMagic)
	return append(hdr, ckptVersion)
}

// TestCheckpointEncodeDeterministic: encoding is a pure function of
// the state (windows sorted), so two equal states encode identically.
func TestCheckpointEncodeDeterministic(t *testing.T) {
	a := mkState(16, 3, 1, 1, 5, 2, 9)
	b := mkState(16, 2, 9, 3, 1, 1, 5)
	if !bytes.Equal(a.encode(nil), b.encode(nil)) {
		t.Fatal("equal states encoded differently")
	}
}
