package ingest

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"eva/internal/core"
	"eva/internal/costs"
	"eva/internal/expr"
	"eva/internal/faults"
	"eva/internal/optimizer"
	"eva/internal/parser"
	"eva/internal/server"
	"eva/internal/simclock"
	"eva/internal/types"
	"eva/internal/udf"
)

// Alert is one standing-query notification: the tumbling window
// [FrameLo, FrameHi) accumulated at least the query's threshold of
// result rows. Alert *state* is exactly-once — it is derived from the
// checkpointed window counts, so a crash-and-resume reproduces the
// same alerts — while *delivery* (the callback) is at-most-once:
// notification happens only after the durable checkpoint, so a crash
// between the two loses the delivery but never duplicates it.
type Alert struct {
	Query   string
	Window  int64
	FrameLo int64
	FrameHi int64
}

// StandingQuery is one registered SELECT incrementally maintained over
// a stream. Its mutable progress lives in two places: the durable
// checkpoint (pump-owned, see checkpointLog) and a mirror snapshot
// under mu that the public accessors read.
type StandingQuery struct {
	name       string
	stream     *Stream
	stmt       *parser.SelectStmt
	window     int64 // frames per tumbling window
	threshold  int64
	clock      *simclock.Clock // delta-execution charges
	domain     *udf.Domain
	ckpt       *checkpointLog
	notifySite string
	onAlert    func(Alert)
	alerted    map[int64]bool // pump-owned; windows that already fired

	mu        sync.Mutex
	lsn       int64           // guarded by mu; committed LSN mirror
	windows   map[int64]int64 // guarded by mu; committed counts mirror
	alerts    []Alert         // guarded by mu; fire order
	delivered int             // guarded by mu; successful notifications
	dropped   int             // guarded by mu; permanently failed notifications
}

// Register attaches a standing query to the stream. The SELECT must
// read from the stream's table and project the frame id (the window
// key); window aggregation counts result rows per tumbling window of
// windowFrames frames and fires an alert the first time a window
// reaches threshold. A previous incarnation's durable checkpoint (same
// storage root, same query name) is recovered: counts resume from the
// checkpointed LSN and already-fired alerts are rebuilt, not re-fired.
func (s *Stream) Register(name, sql string, windowFrames, threshold int64, onAlert func(Alert)) (*StandingQuery, error) {
	if name == "" {
		return nil, fmt.Errorf("ingest: standing query needs a name")
	}
	if windowFrames <= 0 || threshold <= 0 {
		return nil, fmt.Errorf("ingest: standing query %q: window (%d) and threshold (%d) must be positive", name, windowFrames, threshold)
	}
	stmt, err := parser.Parse(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*parser.SelectStmt)
	if !ok {
		return nil, fmt.Errorf("ingest: standing query %q: want a SELECT, got %T", name, stmt)
	}
	if err := s.validateStanding(name, sel); err != nil {
		return nil, err
	}
	if err := s.gate(); err != nil {
		return nil, err
	}
	path, err := s.eng.Store.CheckpointPath(s.cfg.Table + "-" + name)
	if err != nil {
		return nil, err
	}
	ckpt, err := openCheckpoint(path, faults.SiteIngestCheckpoint(name))
	if err != nil {
		return nil, err
	}
	ckpt.attach(s.eng.Store, func(attempt int) {
		s.clock.Charge(simclock.CatRetry, costs.RetryBackoff(attempt))
	})
	clock := &simclock.Clock{}
	q := &StandingQuery{
		name: name, stream: s, stmt: sel,
		window: windowFrames, threshold: threshold,
		clock: clock, domain: s.eng.Runtime.NewDomain(clock),
		ckpt: ckpt, notifySite: faults.SiteIngestNotify(name),
		onAlert: onAlert, alerted: map[int64]bool{},
		lsn: ckpt.st.lsn, windows: map[int64]int64{},
	}
	q.domain.SetInjector(s.injector())
	// Rebuild alert state from the recovered counts: exactly-once by
	// derivation, never re-delivered.
	for _, w := range sortedWindows(ckpt.st.windows) {
		q.windows[w] = ckpt.st.windows[w]
		if ckpt.st.windows[w] >= threshold {
			q.alerted[w] = true
			q.alerts = append(q.alerts, q.alert(w))
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		_ = ckpt.close()
		return nil, ErrStreamClosed
	}
	for _, other := range s.queries {
		if other.name == name {
			_ = ckpt.close()
			return nil, fmt.Errorf("ingest: standing query %q already registered", name)
		}
	}
	s.queries = append(s.queries, q)
	return q, nil
}

// validateStanding enforces the incremental-execution contract.
func (s *Stream) validateStanding(name string, sel *parser.SelectStmt) error {
	if !strings.EqualFold(sel.From, s.cfg.Table) {
		return fmt.Errorf("ingest: standing query %q reads %q, stream serves %q", name, sel.From, s.cfg.Table)
	}
	if len(sel.OrderBy) > 0 || len(sel.GroupBy) > 0 || sel.Limit >= 0 {
		return fmt.Errorf("ingest: standing query %q: ORDER BY, GROUP BY and LIMIT do not stream (windows aggregate incrementally)", name)
	}
	for _, item := range sel.Items {
		if item.Star {
			return nil
		}
		if col, ok := item.Expr.(*expr.Column); ok && strings.EqualFold(col.Name, "id") {
			return nil
		}
	}
	return fmt.Errorf("ingest: standing query %q must project id (the window key)", name)
}

// alert builds the Alert value for a window.
func (q *StandingQuery) alert(w int64) Alert {
	return Alert{Query: q.name, Window: w, FrameLo: w * q.window, FrameHi: (w + 1) * q.window}
}

// Name returns the query name.
func (q *StandingQuery) Name() string { return q.name }

// LastLSN returns the committed checkpoint LSN: every frame below it
// has been applied to the window counts exactly once.
func (q *StandingQuery) LastLSN() int64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.lsn
}

// Windows snapshots the committed per-window result counts.
func (q *StandingQuery) Windows() map[int64]int64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make(map[int64]int64, len(q.windows))
	// lint:unordered map copy; destination is a map, order-free
	for w, c := range q.windows {
		out[w] = c
	}
	return out
}

// Alerts snapshots the fired alerts in fire order (recovered alerts
// first, in window order).
func (q *StandingQuery) Alerts() []Alert {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]Alert, len(q.alerts))
	copy(out, q.alerts)
	return out
}

// Deliveries reports how many alerts were delivered to the callback
// and how many were dropped by permanent notification faults.
func (q *StandingQuery) Deliveries() (delivered, dropped int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.delivered, q.dropped
}

// RecoveredBytes returns the torn-tail bytes dropped from the
// checkpoint log when the query was registered (0 for a clean log).
func (q *StandingQuery) RecoveredBytes() int64 { return q.ckpt.recovered }

// SimulatedTime returns the query's delta-execution virtual time.
func (q *StandingQuery) SimulatedTime() simclock.Breakdown {
	return q.clock.Since(simclock.Snapshot{})
}

// advance runs increments along the cadence grid until the committed
// LSN reaches target. Pump-owned.
func (q *StandingQuery) advance(target, cadence int64) error {
	for lo := q.ckpt.st.lsn; lo < target; lo = q.ckpt.st.lsn {
		hi := (lo/cadence + 1) * cadence
		if hi > target {
			hi = target
		}
		if err := q.increment(lo, hi); err != nil {
			return err
		}
	}
	return nil
}

// increment applies frames [lo, hi) to the query exactly once:
//
//  1. execute the delta SELECT over the id range (view appends inside
//     are idempotent, so re-execution after a crash is safe),
//  2. fold the result rows into a candidate window state (pure),
//  3. durably checkpoint the candidate (the commit point),
//  4. commit the in-memory mirror,
//  5. notify newly alerting windows (after the checkpoint: at-most-once
//     delivery, exactly-once alert state).
//
// A crash at any step leaves the checkpoint either before or after the
// commit point; resume re-executes from the checkpointed LSN and the
// window counts converge to the uninterrupted run's bytes.
func (q *StandingQuery) increment(lo, hi int64) error {
	s := q.stream
	s.mu.Lock()
	s.stats.Increments++
	s.mu.Unlock()

	counts, err := q.runDelta(lo, hi)
	if err != nil {
		return err
	}
	st := q.ckpt.st.clone()
	st.lsn = hi
	// lint:unordered merging deltas into a map; order-free
	for w, c := range counts {
		st.windows[w] += c
	}

	inj := s.injector()
	for attempt := 1; ; attempt++ {
		err := q.ckpt.write(st, inj)
		if err == nil {
			break
		}
		if faults.IsTransient(err) && attempt < costs.RetryMaxAttempts {
			s.clock.Charge(simclock.CatRetry, costs.RetryBackoff(attempt+1))
			continue
		}
		return err
	}
	s.clock.Charge(simclock.CatMaterialize, costs.CheckpointWriteCost)

	// Commit the mirror, then derive the newly alerting windows in
	// window order (windows fill in frame order, so this is also fire
	// order).
	var fresh []Alert
	for _, w := range sortedWindows(st.windows) {
		if st.windows[w] >= q.threshold && !q.alerted[w] {
			q.alerted[w] = true
			fresh = append(fresh, q.alert(w))
		}
	}
	q.mu.Lock()
	q.lsn = st.lsn
	// lint:unordered map copy; destination is a map, order-free
	for w, c := range st.windows {
		q.windows[w] = c
	}
	q.alerts = append(q.alerts, fresh...)
	q.mu.Unlock()

	for _, a := range fresh {
		if err := q.notify(a, inj); err != nil {
			return err
		}
	}
	return nil
}

// runDelta executes the query over frames [lo, hi) and folds the
// result rows into per-window counts.
func (q *StandingQuery) runDelta(lo, hi int64) (map[int64]int64, error) {
	s := q.stream
	out, err := s.eng.ExecuteWith(q.deltaStmt(lo, hi), optimizer.EVAMode(), core.ExecOpts{
		Clock:    q.clock,
		Domain:   q.domain,
		Faults:   s.injector(),
		Budget:   server.NewMemBudget(s.cfg.MemoryBudget),
		Sessions: true,
	})
	if err != nil {
		return nil, fmt.Errorf("ingest: standing query %q delta [%d,%d): %w", q.name, lo, hi, err)
	}
	idIdx := out.Rows.Schema().IndexOf("id")
	if idIdx < 0 {
		return nil, fmt.Errorf("ingest: standing query %q: delta result lost the id column (schema %s)", q.name, out.Rows.Schema())
	}
	counts := map[int64]int64{}
	for r := 0; r < out.Rows.Len(); r++ {
		counts[out.Rows.At(r, idIdx).Int()/q.window]++
	}
	// The delta rows are fully folded into counts; hand the batch back
	// to the engine's pool instead of leaving it for the collector —
	// standing queries run once per ingest increment, forever.
	s.eng.Recycle(out.Rows)
	return counts, nil
}

// deltaStmt narrows the registered SELECT to the id range [lo, hi);
// the optimizer pushes the hull down into the scan, so the delta reads
// only the new frames.
func (q *StandingQuery) deltaStmt(lo, hi int64) *parser.SelectStmt {
	st := *q.stmt
	rng := expr.NewAnd(
		expr.NewCmp(expr.OpGe, expr.NewColumn("id"), expr.NewConst(types.NewInt(lo))),
		expr.NewCmp(expr.OpLt, expr.NewColumn("id"), expr.NewConst(types.NewInt(hi))),
	)
	if st.Where != nil {
		st.Where = expr.NewAnd(st.Where, rng)
	} else {
		st.Where = rng
	}
	return &st
}

// notify delivers one alert, consulting the injector at the query's
// notify site (serially consulted, so scripted kill points address the
// k-th notification). Transient faults retry with backoff; a crash
// kills the stream; a permanent fault drops the delivery — the alert
// itself is already durable state.
func (q *StandingQuery) notify(a Alert, inj *faults.Injector) error {
	s := q.stream
	for attempt := 1; ; attempt++ {
		err := inj.Check(q.notifySite)
		if err == nil {
			break
		}
		if faults.IsTransient(err) && attempt < costs.RetryMaxAttempts {
			s.clock.Charge(simclock.CatRetry, costs.RetryBackoff(attempt+1))
			continue
		}
		if faults.IsCrash(err) {
			return fmt.Errorf("ingest: standing query %q notify: %w", q.name, err)
		}
		q.mu.Lock()
		q.dropped++
		q.mu.Unlock()
		return nil
	}
	s.clock.Charge(simclock.CatOther, costs.NotifyCost)
	q.mu.Lock()
	q.delivered++
	q.mu.Unlock()
	if q.onAlert != nil {
		q.onAlert(a)
	}
	return nil
}

// sortedWindows returns the map's keys in ascending order.
func sortedWindows(m map[int64]int64) []int64 {
	ws := make([]int64, 0, len(m))
	// lint:unordered key collection; sorted below
	for w := range m {
		ws = append(ws, w)
	}
	sort.Slice(ws, func(i, j int) bool { return ws[i] < ws[j] })
	return ws
}
