package ingest

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"testing"

	"eva/internal/core"
	"eva/internal/faults"
	"eva/internal/optimizer"
	"eva/internal/simclock"
	"eva/internal/storage"
	"eva/internal/testutil"
	"eva/internal/vision"
)

const testFrames = 48

func testDS() vision.Dataset {
	return vision.Dataset{Name: "live-test", Frames: testFrames, Width: 320, Height: 240, Density: 6, Seed: 0x57AB1E}
}

const testSQL = `SELECT id, label FROM traffic CROSS APPLY YoloTiny(frame) WHERE label = 'car'`

// openTestStream builds a stream over a fresh core engine on dir.
func openTestStream(t *testing.T, dir string, cfg Config) (*core.Engine, *Stream) {
	t.Helper()
	store, err := storage.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	eng := core.New(store, 0)
	cfg.Engine = eng
	cfg.Table = "traffic"
	cfg.Dataset = testDS()
	s, err := OpenStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng, s
}

// queryDigest canonically renders a standing query's committed state.
func queryDigest(q *StandingQuery) string {
	var b strings.Builder
	fmt.Fprintf(&b, "lsn=%d\n", q.LastLSN())
	wins := q.Windows()
	ws := make([]int64, 0, len(wins))
	// lint:unordered key collection; sorted below
	for w := range wins {
		ws = append(ws, w)
	}
	sort.Slice(ws, func(i, j int) bool { return ws[i] < ws[j] })
	for _, w := range ws {
		fmt.Fprintf(&b, "window %d: %d\n", w, wins[w])
	}
	for _, a := range q.Alerts() {
		fmt.Fprintf(&b, "alert %+v\n", a)
	}
	return b.String()
}

// TestStreamStandingQuery is the happy path: ingest everything, drain,
// and the standing query's window counts must equal an independent
// batch execution of the same SELECT over the full range.
func TestStreamStandingQuery(t *testing.T) {
	eng, s := openTestStream(t, t.TempDir(), Config{CadenceFrames: 8})
	defer s.Close()
	var fired []Alert
	q, err := s.Register("cars", testSQL, 8, 3, func(a Alert) { fired = append(fired, a) })
	if err != nil {
		t.Fatal(err)
	}
	for sent := 0; sent < testFrames; sent += 7 {
		n := 7
		if sent+n > testFrames {
			n = testFrames - sent
		}
		if err := s.Ingest(n); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	if got := q.LastLSN(); got != testFrames {
		t.Fatalf("LastLSN = %d, want %d", got, testFrames)
	}

	// Independent recomputation on the same engine (views are shared,
	// but counting is over result rows either way).
	stmt := q.deltaStmt(0, testFrames)
	out, err := eng.ExecuteWith(stmt, optimizer.EVAMode(), core.ExecOpts{Sessions: true})
	if err != nil {
		t.Fatal(err)
	}
	want := map[int64]int64{}
	idIdx := out.Rows.Schema().IndexOf("id")
	for r := 0; r < out.Rows.Len(); r++ {
		want[out.Rows.At(r, idIdx).Int()/8]++
	}
	got := q.Windows()
	if len(got) != len(want) {
		t.Fatalf("windows = %v, want %v", got, want)
	}
	for w, c := range want {
		if got[w] != c {
			t.Fatalf("window %d = %d, want %d", w, got[w], c)
		}
	}
	// Alerts match the derived rule and arrived through the callback.
	var wantAlerts int
	for _, c := range want {
		if c >= 3 {
			wantAlerts++
		}
	}
	if len(q.Alerts()) != wantAlerts || len(fired) != wantAlerts {
		t.Fatalf("alerts state=%d delivered=%d, want %d", len(q.Alerts()), len(fired), wantAlerts)
	}
	delivered, dropped := q.Deliveries()
	if delivered != wantAlerts || dropped != 0 {
		t.Fatalf("deliveries = %d/%d", delivered, dropped)
	}
	if st := s.Stats(); st.Ingested != testFrames || st.Watermark != testFrames || st.Shed != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestStreamCadenceInvariant: the same ingestion at different cadences
// (and batch sizes) converges to byte-identical standing-query state —
// the property that makes degradation safe.
func TestStreamCadenceInvariant(t *testing.T) {
	var digests []string
	for _, tc := range []struct {
		cadence int64
		batch   int
	}{{4, 5}, {8, 7}, {16, 48}} {
		_, s := openTestStream(t, t.TempDir(), Config{CadenceFrames: tc.cadence})
		q, err := s.Register("cars", testSQL, 8, 3, nil)
		if err != nil {
			t.Fatal(err)
		}
		for sent := 0; sent < testFrames; sent += tc.batch {
			n := tc.batch
			if sent+n > testFrames {
				n = testFrames - sent
			}
			if err := s.Ingest(n); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Drain(); err != nil {
			t.Fatal(err)
		}
		digests = append(digests, queryDigest(q))
		s.Close()
	}
	for i := 1; i < len(digests); i++ {
		if digests[i] != digests[0] {
			t.Fatalf("cadence changed the result:\n%s\nvs\n%s", digests[i], digests[0])
		}
	}
}

// TestStreamBackpressureDegradeBeforeShed pins the typed backpressure
// ordering. With the pump stalled, TryIngest keeps succeeding while
// the backlog crosses the degrade high-water mark — degradation, not
// shedding, is the first response — and only a full queue sheds, with
// ErrFrameShed. Once the pump runs, the backlogged cycles execute at
// degraded cadence and every accepted frame survives.
func TestStreamBackpressureDegradeBeforeShed(t *testing.T) {
	store, err := storage.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s, err := newStream(Config{
		Engine: core.New(store, 0), Table: "traffic", Dataset: testDS(),
		QueueDepth: 4, DegradeHighWater: 2, CadenceFrames: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Register("cars", testSQL, 8, 3, nil); err != nil {
		t.Fatal(err)
	}
	// Pump not started: the queue fills deterministically.
	for i := 0; i < 4; i++ {
		// Past the high-water mark (backlog 2 and 3) enqueues must
		// still be accepted: degrade comes before shed.
		if err := s.TryIngest(6); err != nil {
			t.Fatalf("enqueue %d (backlog %d): %v", i, len(s.queue), err)
		}
	}
	if err := s.TryIngest(6); !errors.Is(err, ErrFrameShed) {
		t.Fatalf("full queue: err = %v, want ErrFrameShed", err)
	}
	if st := s.Stats(); st.Shed != 1 || st.Degraded != 0 {
		t.Fatalf("pre-pump stats = %+v", st)
	}

	s.start()
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Degraded == 0 {
		t.Fatal("backlogged cycles did not degrade cadence")
	}
	if st.Ingested != 24 || st.Watermark != 24 {
		t.Fatalf("accepted frames lost: %+v", st)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestStreamCrashResume: a crash at the checkpoint site kills the
// stream with a typed error; reopening everything on the same root and
// re-ingesting the un-durable frames converges byte-identically to an
// uninterrupted run, with no increment applied twice.
func TestStreamCrashResume(t *testing.T) {
	// Uninterrupted baseline.
	_, base := openTestStream(t, t.TempDir(), Config{CadenceFrames: 8})
	bq, err := base.Register("cars", testSQL, 8, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := base.Ingest(testFrames); err != nil {
		t.Fatal(err)
	}
	if err := base.Drain(); err != nil {
		t.Fatal(err)
	}
	golden := queryDigest(bq)
	base.Close()

	dir := t.TempDir()
	_, s := openTestStream(t, dir, Config{CadenceFrames: 8})
	if _, err := s.Register("cars", testSQL, 8, 3, nil); err != nil {
		t.Fatal(err)
	}
	inj := faults.New(7)
	inj.Rule(faults.SiteIngestCheckpoint("cars"), faults.Rule{Kind: faults.Crash, At: []int{3}})
	s.SetInjector(inj)
	for sent := 0; sent < testFrames; sent += 6 {
		if err := s.Ingest(6); err != nil {
			break
		}
	}
	err = s.Drain()
	if !errors.Is(err, ErrStreamDead) || !faults.IsCrash(err) {
		t.Fatalf("drain after crash = %v, want ErrStreamDead wrapping the crash fault", err)
	}
	// Dead stream refuses everything with the typed error.
	if err := s.Ingest(1); !errors.Is(err, ErrStreamDead) {
		t.Fatalf("ingest on dead stream = %v", err)
	}
	if inj.Injected() == 0 {
		t.Fatal("no fault was injected")
	}
	s.Close()

	// Resume: fresh engine over the same root recovers watermark and
	// checkpoint; re-ingest what is not yet durable.
	_, s2 := openTestStream(t, dir, Config{CadenceFrames: 8})
	defer s2.Close()
	q2, err := s2.Register("cars", testSQL, 8, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	resumedFrom := q2.LastLSN()
	if resumedFrom <= 0 || resumedFrom >= testFrames {
		t.Fatalf("checkpoint resumed from %d", resumedFrom)
	}
	missing := testFrames - s2.Stats().Watermark
	if missing > 0 {
		if err := s2.Ingest(int(missing)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s2.Drain(); err != nil {
		t.Fatal(err)
	}
	if got := queryDigest(q2); got != golden {
		t.Fatalf("resumed state diverged:\n%s\nvs golden\n%s", got, golden)
	}
}

// TestStreamTransientFaultsRecover: a transient-probability schedule
// across every ingest site retries to success — same final state as a
// fault-free run, with retry time charged to the virtual clock.
func TestStreamTransientFaultsRecover(t *testing.T) {
	_, base := openTestStream(t, t.TempDir(), Config{CadenceFrames: 8})
	bq, _ := base.Register("cars", testSQL, 8, 3, nil)
	if err := base.Ingest(testFrames); err != nil {
		t.Fatal(err)
	}
	if err := base.Drain(); err != nil {
		t.Fatal(err)
	}
	golden := queryDigest(bq)
	base.Close()

	_, s := openTestStream(t, t.TempDir(), Config{CadenceFrames: 8})
	defer s.Close()
	q, _ := s.Register("cars", testSQL, 8, 3, nil)
	inj := faults.New(11)
	inj.Rule(faults.SiteIngestAny, faults.Rule{Kind: faults.Transient, Prob: 0.3})
	s.SetInjector(inj)
	for sent := 0; sent < testFrames; sent += 5 {
		n := 5
		if sent+n > testFrames {
			n = testFrames - sent
		}
		if err := s.Ingest(n); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Drain(); err != nil {
		t.Fatalf("transient faults did not recover: %v", err)
	}
	if got := queryDigest(q); got != golden {
		t.Fatalf("transient run diverged:\n%s\nvs\n%s", got, golden)
	}
	if inj.Injected() == 0 {
		t.Fatal("no transient fault was injected")
	}
	if bd := s.SimulatedTime(); bd.Get(simclock.CatRetry) == 0 {
		t.Fatalf("no retry backoff charged: %v", bd)
	}
}

// TestStreamValidation rejects malformed standing queries with
// explanatory errors.
func TestStreamValidation(t *testing.T) {
	_, s := openTestStream(t, t.TempDir(), Config{})
	defer s.Close()
	cases := []struct {
		name, sql string
		window    int64
	}{
		{"wrong-table", `SELECT id FROM other`, 8},
		{"no-id", `SELECT label FROM traffic CROSS APPLY YoloTiny(frame)`, 8},
		{"limit", `SELECT id FROM traffic LIMIT 5`, 8},
		{"order", `SELECT id FROM traffic ORDER BY id`, 8},
		{"bad-window", `SELECT id FROM traffic`, 0},
	}
	for _, tc := range cases {
		if _, err := s.Register(tc.name, tc.sql, tc.window, 1, nil); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	if _, err := s.Register("ok", `SELECT id FROM traffic`, 8, 1, nil); err != nil {
		t.Fatalf("valid query rejected: %v", err)
	}
	if _, err := s.Register("ok", `SELECT id FROM traffic`, 8, 1, nil); err == nil {
		t.Error("duplicate name accepted")
	}
}

// TestStreamNoGoroutineLeak: a full open/register/ingest/drain/close
// cycle leaves no tracked goroutine behind.
func TestStreamNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	_, s := openTestStream(t, t.TempDir(), Config{CadenceFrames: 8})
	if _, err := s.Register("cars", testSQL, 8, 3, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Ingest(16); err != nil {
		t.Fatal(err)
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Closed stream rejects everything with the typed error.
	if err := s.Ingest(1); !errors.Is(err, ErrStreamClosed) {
		t.Fatalf("ingest after close = %v", err)
	}
	if err := s.Drain(); !errors.Is(err, ErrStreamClosed) {
		t.Fatalf("drain after close = %v", err)
	}
	testutil.CheckNoGoroutineLeak(t, before)
}
