package ingest

import (
	"os"
	"path/filepath"
	"testing"

	"eva/internal/storage"
)

// TestCheckpointRetentionBoundsLog: replay is last-record-wins, so the
// log folds itself once ckptCompactRecords accumulate. Writing many
// checkpoints keeps the file bounded, and reopen still recovers the
// newest state exactly.
func TestCheckpointRetentionBoundsLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "q.ckpt")
	c, err := openCheckpoint(path, ckptSite())
	if err != nil {
		t.Fatal(err)
	}
	var last ckptState
	for i := 1; i <= 40; i++ {
		last = mkState(int64(i*8), 0, int64(i))
		if err := c.write(last, nil); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	// Worst case on disk: the fold trigger fires *before* an append, so
	// at most ckptCompactRecords records plus the one just appended.
	recLen := int64(len(last.encode(nil)))
	bound := int64(ckptHeaderLen) + int64(ckptCompactRecords+1)*recLen
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() > bound {
		t.Fatalf("checkpoint log grew to %d bytes, retention bound %d", fi.Size(), bound)
	}
	if c.foot != fi.Size() {
		t.Fatalf("in-memory footprint %d != file size %d", c.foot, fi.Size())
	}
	if err := c.close(); err != nil {
		t.Fatal(err)
	}

	c2, err := openCheckpoint(path, ckptSite())
	if err != nil {
		t.Fatal(err)
	}
	if !sameState(c2.st, last) || c2.recovered != 0 {
		t.Fatalf("reopen after folds: state=%+v recovered=%d, want %+v", c2.st, c2.recovered, last)
	}
}

// TestCheckpointBudgetFoldFallback: a budget denial first tries folding
// the log's own history before surfacing disk-full — so a checkpoint
// whose fresh record fits in the folded footprint succeeds without
// evicting anyone.
func TestCheckpointBudgetFoldFallback(t *testing.T) {
	dir := t.TempDir()
	store, err := storage.Open(filepath.Join(dir, "store"))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "q.ckpt")
	c, err := openCheckpoint(path, ckptSite())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		if err := c.write(mkState(int64(i*8), 0, int64(i)), nil); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	// Cap the budget so the next record does not fit as-is but does fit
	// once the five history records fold to one; attach after setting
	// the budget so the log's footprint is charged against it.
	recLen := int64(len(mkState(48, 0, 6).encode(nil)))
	store.SetBudget(storage.NewDiskBudget(int64(ckptHeaderLen) + 2*recLen))
	c.attach(store, nil)
	if err := c.write(mkState(48, 0, 6), nil); err != nil {
		t.Fatalf("write under tight budget: %v", err)
	}
	if c.recs != 2 {
		t.Fatalf("recs after fold fallback = %d, want 2 (folded state + new record)", c.recs)
	}
	st := store.Budget().Stats()
	if st.Denials < 1 {
		t.Fatalf("budget denial not recorded: %+v", st)
	}
	if err := c.close(); err != nil {
		t.Fatal(err)
	}
	c2, err := openCheckpoint(path, ckptSite())
	if err != nil {
		t.Fatal(err)
	}
	if !sameState(c2.st, mkState(48, 0, 6)) {
		t.Fatalf("recovered %+v after fold fallback", c2.st)
	}
}
